#!/usr/bin/env python3
"""Figure 1, running: every box of the yanc architecture at once.

    master apps (topology, accounting)     tenant app (view 1)
            \\            |                     |
             \\           v                     v
              +-------- yanc fs <------- slicer/virtualizer
              |           ^
              |           |  distributed fs (remote worker)
              v           |
        OF1.0 driver   OF1.3 driver
              |           |
           switches    switches

Run:  python examples/full_architecture.py
"""

from repro import Credentials, Match, Output, YancController, build_linear
from repro.apps import AccountingDaemon, RouterDaemon, TopologyDaemon
from repro.distfs import ControllerCluster
from repro.drivers import OF13_VERSION
from repro.views import Slicer, grant_view, tenant_process
from repro.yancfs import YancClient


def main() -> None:
    net = build_linear(4)
    ctl = YancController(net)

    # Two drivers, two protocol versions, one fleet (paper §4.1).
    of10 = ctl.add_driver()
    of13 = ctl.add_driver(version=OF13_VERSION)
    switches = list(net.switches.values())
    for switch in switches[:2]:
        of10.attach_switch(switch)
    for switch in switches[2:]:
        of13.attach_switch(switch)
    for switch in switches:
        switch.start_expiry()
    ctl.run(0.1)

    # Master applications.
    TopologyDaemon(ctl.host.process(), ctl.sim).start()
    RouterDaemon(ctl.host.process(), ctl.sim).start()
    acct = AccountingDaemon(ctl.host.process(), ctl.sim).start()
    ctl.run(2.0)

    # A view with a tenant application behind a namespace jail.
    Slicer(
        ctl.host.process(), ctl.sim,
        view="tenant1", switches=["sw1", "sw2"],
        headerspace=Match(dl_type=0x0800, nw_proto=17),
    ).start()
    ctl.run(0.2)
    grant_view(ctl.host.root_sc, "/net/views/tenant1", 1001, 1001)
    tenant = tenant_process(ctl.host.vfs, "/net/views/tenant1", Credentials(uid=1001, gid=1001))
    YancClient(tenant).create_flow("sw1", "udp_fwd", Match(nw_proto=17), [Output(1)], priority=10)

    # A remote worker over the distributed file system.
    cluster = ControllerCluster(ctl.host)
    worker = cluster.add_worker()
    worker.client.create_flow("sw4", "remote_rule", Match(dl_vlan=7), [Output(1)], priority=10)
    ctl.run(1.0)

    # Everything met in the same tree and reached real switches.
    master = ctl.client()
    seq = net.hosts["h1"].ping(net.hosts["h4"].ip)
    ctl.run(3.0)
    print("mixed-version fleet:", {b.fs_name: hex(b.version) for d in (of10, of13) for b in d.bindings.values()})
    print("ping across mixed fleet:", net.hosts["h1"].reachable(seq))
    print("tenant flow on master sw1:", "v_tenant1_udp_fwd" in master.flows("sw1"))
    print("remote worker flow on hw sw4:", any(e.match.dl_vlan == 7 for e in net.switches["sw4"].table.entries()))
    print("accounting records:", len(acct.records()))


if __name__ == "__main__":
    main()
