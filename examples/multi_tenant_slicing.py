#!/usr/bin/env python3
"""Multi-tenant slicing with permissions and namespaces (§4.2, §5.1, §5.3).

Two tenants get views of the same physical network:

* ``web-slice``  — sw1+sw2, HTTP traffic only, owned by uid 1001;
* ``ssh-slice``  — sw2+sw3, SSH traffic only, owned by uid 1002.

Each tenant process is jailed in a mount namespace where its view *is*
``/net``: the other tenant's slice (and the master tree) is unreachable,
and file ownership stops cross-tenant writes even if a path leaked.

Run:  python examples/multi_tenant_slicing.py
"""

from repro import Credentials, Match, Output, YancController, build_linear
from repro.apps import TopologyDaemon
from repro.vfs.errors import FsError
from repro.views import Slicer, grant_view, tenant_process
from repro.yancfs import YancClient

WEB = Credentials(uid=1001, gid=1001)
SSH = Credentials(uid=1002, gid=1002)


def main() -> None:
    net = build_linear(3)
    ctl = YancController(net).start()
    TopologyDaemon(ctl.host.process(), ctl.sim).start()
    ctl.run(1.5)

    Slicer(
        ctl.host.process(), ctl.sim,
        view="web-slice", switches=["sw1", "sw2"],
        headerspace=Match(dl_type=0x0800, nw_proto=6, tp_dst=80),
    ).start()
    Slicer(
        ctl.host.process(), ctl.sim,
        view="ssh-slice", switches=["sw2", "sw3"],
        headerspace=Match(dl_type=0x0800, nw_proto=6, tp_dst=22),
    ).start()
    ctl.run(0.2)

    grant_view(ctl.host.root_sc, "/net/views/web-slice", WEB.uid, WEB.gid)
    grant_view(ctl.host.root_sc, "/net/views/ssh-slice", SSH.uid, SSH.gid)

    web = tenant_process(ctl.host.vfs, "/net/views/web-slice", WEB)
    ssh = tenant_process(ctl.host.vfs, "/net/views/ssh-slice", SSH)

    print("web tenant sees /net/switches:", web.listdir("/net/switches"))
    print("ssh tenant sees /net/switches:", ssh.listdir("/net/switches"))

    # Each tenant programs its slice through plain file I/O.
    YancClient(web).create_flow("sw1", "to_server", Match(tp_dst=80), [Output(1)], priority=10)
    YancClient(ssh).create_flow("sw3", "to_bastion", Match(tp_dst=22), [Output(1)], priority=10)
    ctl.run(0.5)

    master = ctl.client()
    print("master sw1 flows:", master.flows("sw1"))
    print("master sw3 flows:", master.flows("sw3"))
    print("web flow installed as:", master.read_flow("sw1", "v_web-slice_to_server").match)

    # The web tenant tries to capture SSH traffic: rejected in place.
    YancClient(web).create_flow("sw2", "sneaky", Match(tp_dst=22), [Output(1)], priority=10)
    ctl.run(0.5)
    print("web tenant's sneaky flow:", web.read_text("/net/switches/sw2/flows/sneaky/state.status"))
    print("leaked to master?", "v_web-slice_sneaky" in master.flows("sw2"))

    # And it cannot even see — let alone touch — the other tenant's view.
    try:
        web.listdir("/net/views")
        print("inside its namespace, /net/views holds:", web.listdir("/net/views"))
    except FsError as exc:
        print("web tenant reading /net/views:", exc)


if __name__ == "__main__":
    main()
