#!/usr/bin/env python3
"""The paper's section 5.4 one-liners, executed verbatim.

"A quick overview of the switches in a network can be provided by
``ls -l /net/switches``.  To list flow entries which affect ssh traffic:
``find /net -name tp.dst -exec grep 22``."  (Our match files are named
``match.tp_dst``.)

Run:  python examples/admin_oneliners.py
"""

from repro import Match, Output, YancController, build_linear
from repro.shell import Shell


def main() -> None:
    net = build_linear(3)
    ctl = YancController(net).start()
    yc = ctl.client()
    yc.create_flow("sw1", "ssh_in", Match(dl_type=0x0800, nw_proto=6, tp_dst=22), [Output(2)], priority=50)
    yc.create_flow("sw2", "ssh_transit", Match(dl_type=0x0800, nw_proto=6, tp_dst=22), [Output(1)], priority=50)
    yc.create_flow("sw2", "web", Match(dl_type=0x0800, nw_proto=6, tp_dst=80), [Output(2)], priority=50)
    ctl.run(0.2)

    sh = Shell(ctl.host.root_sc)
    for command in (
        "ls -l /net/switches",
        "find /net -name match.tp_dst -exec grep 22 {} ;",
        "echo 1 > /net/switches/sw1/ports/port_2/config.port_down",
        "cat /net/switches/sw1/ports/port_2/config.port_down",
        "grep -r -l 22 /net/switches/sw2/flows",
        "tree /net -L 2",
    ):
        print(f"$ {command}")
        output = sh.run(command)
        if output:
            print(output)
        print()

    # The port-down write is configuration, not decoration: the driver
    # turned it into a port-mod and the switch stopped forwarding.
    ctl.run(0.2)
    print("sw1 port 2 admin_up on hardware:", net.switches["sw1"].ports[2].admin_up)


if __name__ == "__main__":
    main()
