#!/usr/bin/env python3
"""Quickstart: the network as a file system.

Builds a three-switch line with a host on each end, starts the yanc
controller (yancfs mounted at /net + an OpenFlow 1.0 driver), pushes a
flood flow onto every switch *by writing files*, and pings across.

Run:  python examples/quickstart.py
"""

from repro import FLOOD, Match, Output, YancController, build_linear
from repro.shell import Shell


def main() -> None:
    net = build_linear(3, hosts_per_switch=1)
    ctl = YancController(net).start()

    # The network is now a file system: look around with ls/tree.
    sh = Shell(ctl.host.root_sc)
    print("$ ls /net/switches")
    print(sh.run("ls /net/switches"))
    print()
    print("$ tree /net/switches/sw1 -L 1")
    print(sh.run("tree /net/switches/sw1 -L 1"))
    print()

    # A flow entry is a directory of files; the version file commits it.
    yc = ctl.client()
    for switch in yc.switches():
        yc.create_flow(switch, "flood_all", Match(), [Output(FLOOD)], priority=1)
    ctl.run(0.2)  # let the drivers sync the tree to the switches

    # Prove the dataplane is programmed: ping end to end.
    h1, h3 = net.hosts["h1"], net.hosts["h3"]
    seq = h1.ping(h3.ip)
    ctl.run(1.0)
    result = h1.ping_results[-1] if h1.reachable(seq) else None
    print(f"ping {h1.name} -> {h3.name}: ", end="")
    print(f"ok, rtt = {result.rtt * 1000:.2f} ms" if result else "FAILED")

    # Counters flow back into the tree; read them like any file.
    print()
    print("$ cat /net/switches/sw2/flows/flood_all/counters/packet_count")
    ctl.run(1.0)  # one stats-poll interval
    print(sh.run("cat /net/switches/sw2/flows/flood_all/counters/packet_count"))


if __name__ == "__main__":
    main()
