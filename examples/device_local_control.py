#!/usr/bin/env python3
"""Network controller, or network device? (§7.1)

Every switch runs yanc itself: each device mounts the master's /net over
the distributed file system and reconciles its own switch directory with
its hardware tables.  There is **no OpenFlow connection anywhere** — when
an application on the master writes a flow file, "that will then show up
on the device (since it's a distributed file system), and the device can
read it and push it into the hardware tables."

Run:  python examples/device_local_control.py
"""

from repro import FLOOD, Match, Output, build_linear
from repro.distfs import DeviceRuntime, FileServer
from repro.runtime import ControllerHost


def main() -> None:
    net = build_linear(3)
    master = ControllerHost(net.sim)
    server = FileServer(master.root_sc.spawn(), "/net")
    devices = [
        DeviceRuntime(switch, master, server=server, poll_interval=0.1).start()
        for switch in net.switches.values()
    ]
    net.run(0.3)

    yc = master.client()
    print("devices self-registered:", yc.switches())

    # an ordinary master-side app writes flow files; devices pick them up
    for switch in yc.switches():
        yc.create_flow(switch, "flood", Match(), [Output(FLOOD)], priority=1)
    net.run(0.5)
    print("hardware tables:", {s.name: len(s.table) for s in net.switches.values()})

    h1, h3 = net.hosts["h1"], net.hosts["h3"]
    seq = h1.ping(h3.ip)
    net.run(1.0)
    print("ping via device-applied flows:", h1.reachable(seq))

    net.run(0.5)
    print("counters written back by sw2's device:", yc.flow_counters("sw2", "flood"))
    total_rpcs = sum(d.channel.calls for d in devices)
    print(f"control plane = {total_rpcs} file-system RPCs, 0 OpenFlow messages")


if __name__ == "__main__":
    main()
