#!/usr/bin/env python3
"""Live protocol upgrade: OpenFlow 1.0 -> 1.3 without losing the network.

"Drivers translate network activity ... Nodes in such a system can
therefore be gradually upgraded, live, to newer protocols" (§4.1).
Because the authoritative flow state lives in the file system, moving a
switch between drivers is detach + attach: the new driver re-reads the
committed tree and re-asserts it over the new protocol.

Run:  python examples/live_driver_upgrade.py
"""

from repro import Match, Output, YancController, build_linear
from repro.drivers import OF13_VERSION


def main() -> None:
    net = build_linear(2)
    ctl = YancController(net)
    of10 = ctl.add_driver()
    of13 = ctl.add_driver(version=OF13_VERSION)
    for switch in net.switches.values():
        of10.attach_switch(switch)
        switch.start_expiry()
    ctl.run(0.1)

    yc = ctl.client()
    yc.create_flow("sw1", "keepme", Match(dl_type=0x0800), [Output(2)], priority=9)
    ctl.run(0.2)
    sw1 = net.switches["sw1"]
    print("before upgrade: driver version", hex(of10.bindings[sw1.dpid].version), "entries:", len(sw1.table))

    # Upgrade sw1 live: detach from the 1.0 driver, attach to the 1.3 one.
    of10.detach_switch(sw1.dpid)
    of13.attach_switch(sw1)
    ctl.run(0.2)
    binding = of13.bindings[sw1.dpid]
    print("after upgrade: driver version", hex(binding.version), "entries:", len(sw1.table))
    assert binding.version == OF13_VERSION

    # The tree still drives the switch — through the new protocol.
    yc.create_flow("sw1", "post_upgrade", Match(dl_type=0x0806), [Output(2)], priority=9)
    ctl.run(0.2)
    print("flows on hardware after a post-upgrade push:", len(sw1.table))
    print("flow names in /net:", yc.flows("sw1"))


if __name__ == "__main__":
    main()
