#!/usr/bin/env python3
"""Live middlebox state migration with `mv` (§7.2).

A client talks to a server through a stateful NAT.  The NAT's connection
table is exposed as directories under /net/middleboxes/nat1/state/, so
elastic scale-out is a shell command: `mv` the binding to a second NAT
instance and the connection keeps working — "we can use command line
utilities such as cp or mv to move state around rather than custom
protocols."

Run:  python examples/middlebox_migration.py
"""

from repro.dataplane.host import HostSim
from repro.dataplane.link import Link
from repro.middlebox import MiddleboxDriver, NatMiddlebox
from repro.netpkt import MacAddress, ip
from repro.runtime import ControllerHost
from repro.shell import Shell
from repro.sim import Simulator


def wire(sim, a, b):
    link = Link(sim, a, b)
    for end in (a, b):
        end.link = link
    return link


def main() -> None:
    sim = Simulator()
    host = ControllerHost(sim)
    client = HostSim("client", MacAddress(0x01), ip("192.168.1.10"), sim)
    server = HostSim("server", MacAddress(0x02), ip("8.8.8.8"), sim)
    nat1 = NatMiddlebox("nat1", "203.0.113.1", sim)
    nat2 = NatMiddlebox("nat2", "203.0.113.1", sim)  # standby, same public IP
    wire(sim, client, nat1.inside)
    link_out = wire(sim, nat1.outside, server)
    client.arp_table[server.ip] = server.mac
    server.arp_table[ip("203.0.113.1")] = client.mac

    driver = MiddleboxDriver(host.root_sc.spawn(), sim)
    driver.attach(nat1)
    driver.attach(nat2)

    client.send_udp(server.ip, 5555, 53, b"query-1")
    sim.run_for(0.5)
    datagram = server.udp_received[-1][1]
    print(f"server saw: src port {datagram.src_port} (NAT-allocated public port)")

    sh = Shell(host.root_sc)
    print("\n$ tree /net/middleboxes/nat1/state")
    print(sh.run("tree /net/middleboxes/nat1/state"))

    conn = host.root_sc.listdir("/net/middleboxes/nat1/state")[0]
    print(f"\n$ mv /net/middleboxes/nat1/state/{conn} /net/middleboxes/nat2/state/{conn}")
    sh.run(f"mv /net/middleboxes/nat1/state/{conn} /net/middleboxes/nat2/state/{conn}")
    sim.run_for(0.5)
    print(f"nat1 bindings: {len(nat1.entries())}, nat2 bindings: {len(nat2.entries())}")

    # re-home the wire to nat2 (the "elastic expand" data-plane move)
    link_out.set_up(False)
    wire(sim, client, nat2.inside)
    wire(sim, nat2.outside, server)

    client.send_udp(server.ip, 5555, 53, b"query-2")
    sim.run_for(0.5)
    datagram2 = server.udp_received[-1][1]
    print(f"after migration, server saw: src port {datagram2.src_port}")
    assert datagram2.src_port == datagram.src_port, "the binding must survive the move"
    print("same public port — the connection survived the mv.")


if __name__ == "__main__":
    main()
