#!/usr/bin/env python3
"""Batched fastpath: whole flow tables and packet-in fan-outs in one crossing.

Builds a two-switch line, then drives the two batched APIs end to end:

* ``create_flows_batched`` installs a 32-entry flow table as linked
  mkdir → write → commit chains on a submission ring — one
  ``io_uring_enter`` instead of hundreds of per-file syscalls;
* ``write_packet_in_batched`` fans one packet-in out to four subscribed
  application buffers, each published by an atomic maildir rename, again
  in a single kernel crossing.

Prints the metered syscall/context-switch totals next to what the
per-syscall file path would have paid.

Run:  python examples/batched_fastpath.py
"""

from repro import Match, Output, YancController, build_linear
from repro.perf import SyscallMeter


def main() -> None:
    net = build_linear(2, hosts_per_switch=1)
    ctl = YancController(net).start()

    meter = SyscallMeter()
    yc = ctl.host.client(meter=meter)

    # One submission installs the whole table on each switch.
    n_flows = 32
    for switch in yc.switches():  # yancperf: disable=syscall-in-loop
        entries = [(f"vlan{index}", Match(dl_vlan=index), [Output(1)]) for index in range(n_flows)]
        created = yc.create_flows_batched(switch, entries, priority=5)
        assert created == n_flows
    install_syscalls, install_ctxsw = meter.syscalls, meter.context_switches
    print(f"installed {n_flows} flows x 2 switches: {install_syscalls} syscalls, {install_ctxsw} context switches")
    print(f"  (per-syscall file path: ~{n_flows * 2 * 16} syscalls)")
    ctl.run(0.2)  # drivers sync the committed tables to the switches

    # Fan one packet-in out to every subscriber in one crossing.
    apps = [f"monitor{index}" for index in range(4)]
    for app in apps:
        yc.subscribe_events("sw1", app)
    meter.reset()
    published = yc.write_packet_in_batched(
        "sw1", apps, 1, in_port=1, reason="no_match", buffer_id=0, total_len=4, data=b"miss"
    )
    assert published == len(apps)
    print(f"fanned 1 packet-in to {len(apps)} apps: {meter.syscalls} syscalls, {meter.context_switches} context switches")
    print(f"  (per-syscall file path: ~{len(apps) * 17} syscalls)")

    for app in apps:  # yancperf: disable=syscall-in-loop
        events = yc.read_events("sw1", app)
        assert len(events) == 1 and events[0].data == b"miss"
    print("every app drained its own copy of the event")


if __name__ == "__main__":
    main()
