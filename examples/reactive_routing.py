#!/usr/bin/env python3
"""Reactive routing on a fat tree: the paper's prototype app stack (§8).

The topology daemon discovers links with LLDP and records them as peer
symlinks; the router daemon handles every table miss and installs exact-
match shortest paths; the ARP responder answers from the controller; the
accounting daemon samples counters into a Unix log.  Four independent
processes, cooperating only through /net.

Run:  python examples/reactive_routing.py
"""

from repro import YancController, build_fat_tree
from repro.apps import AccountingDaemon, ArpResponder, RouterDaemon, TopologyDaemon
from repro.apps.topology import read_topology


def main() -> None:
    net = build_fat_tree(4)  # 20 switches, 16 hosts, 48 links
    ctl = YancController(net).start()

    TopologyDaemon(ctl.host.process(), ctl.sim).start()
    router = RouterDaemon(ctl.host.process(), ctl.sim).start()
    ArpResponder(ctl.host.process(), ctl.sim).start()
    acct = AccountingDaemon(ctl.host.process(), ctl.sim, interval=2.0).start()

    print("discovering topology ...")
    ctl.run(2.0)
    adjacency = read_topology(ctl.client())
    truth = ctl.expected_topology()
    print(f"peer symlinks: {len(adjacency)}/{len(truth)} directed links discovered")
    assert adjacency == truth, "discovery does not match ground truth"

    hosts = list(net.hosts.values())
    pairs = [(hosts[0], hosts[-1]), (hosts[1], hosts[8]), (hosts[3], hosts[12])]
    for src, dst in pairs:
        seq = src.ping(dst.ip)
        ctl.run(2.0)
        ok = src.reachable(seq)
        rtt = src.ping_results[-1].rtt * 1000 if ok else float("nan")
        print(f"ping {src.name} -> {dst.name}: {'ok' if ok else 'FAILED'}  rtt={rtt:.2f} ms")

    print(f"router: {router.paths_installed} paths installed, {router.floods} floods")
    print(f"hosts learned into /net/hosts: {len(ctl.client().hosts())}")
    print(f"accounting: {acct.samples_taken} samples, {len(acct.records())} records in {acct.log_path}")


if __name__ == "__main__":
    main()
