#!/usr/bin/env python3
"""A distributed controller by layering a remote FS over yanc (§6).

The master machine runs yancfs and the drivers.  Worker machines mount
the master's /net over an NFS-like remote file system and push flows
through it — "we mounted NFS on top of yanc and distributed computational
workload among multiple machines."  The makespan numbers show throughput
rising with worker count (and the sync cost that bounds it).

Run:  python examples/distributed_controller.py
"""

from repro import Match, Output, YancController, build_linear
from repro.distfs import ControllerCluster


def route_work(worker, item: int) -> None:
    """One unit of control work: compute + push one flow remotely."""
    switch = f"sw{item % 3 + 1}"
    worker.client.create_flow(
        switch,
        f"job_{worker.name}_{item}",
        Match(dl_vlan=item % 4000),
        [Output(1)],
        priority=5,
    )


def main() -> None:
    items = list(range(60))
    compute_cost = 2e-3  # 2 ms of route computation per item

    for n_workers in (1, 2, 4, 8):
        net = build_linear(3)
        ctl = YancController(net).start()
        cluster = ControllerCluster(ctl.host, consistency="cached", cache_ttl=0.5)
        for _ in range(n_workers):
            cluster.add_worker()
        makespan = cluster.map_items(items, route_work, compute_cost=compute_cost)
        ctl.run(0.5)
        installed = sum(len(sw.table) for sw in net.switches.values())
        rate = len(items) / makespan
        print(
            f"{n_workers} worker(s): makespan={makespan * 1000:7.2f} ms  "
            f"throughput={rate:7.1f} flows/s  hw entries={installed}"
        )


if __name__ == "__main__":
    main()
