#!/usr/bin/env python3
"""S-CORE-style VM migration driven entirely from /net (paper §8).

The paper's S-CORE port runs "a distributed VM migration scheme that
reduces communication cost" on yanc: traffic volumes come from port
counters in the file system, placement comes from the hosts/ directory,
and the "migration" is a host MAC moving to a different edge switch.

This example builds a spine-leaf Clos, aims a hotspot traffic matrix at
one VM that starts far from its talkers, scores every candidate edge
switch as

    cost(edge) = sum over talkers of  bytes(talker) * hops(talker, edge)

with bytes measured from each talker's edge-port counters over a live
window, then migrates the hot VM to the argmin edge and shows the
measured communication cost collapsing.

Run:  python examples/score_migration.py
"""

from repro import YancController, build_clos
from repro.apps import ArpResponder, RouterDaemon, TopologyDaemon
from repro.dataplane.traffic import TrafficMatrix, TrafficReplay


def host_edge_ports(ctl, net):
    """host name -> (switch, port) straight from /net/hosts (§3.4).

    The router records hosts under their MAC; map back to sim names.
    """
    mac_names = {str(host.mac): name for name, host in net.hosts.items()}
    yc = ctl.client()
    out = {}
    for entry in yc.hosts():
        name = mac_names.get(entry)
        if name is None:
            continue
        attached = ctl.host.process().read_text(f"/net/hosts/{entry}/attached_to").strip()
        switch, _, port = attached.partition(":")
        out[name] = (switch, int(port))
    return out


def measured_bytes(ctl, locations):
    """host name -> rx+tx bytes at its edge port, from port counters."""
    yc = ctl.client()
    out = {}
    for host, (switch, port) in locations.items():
        counters = yc.port_counters(switch, port)
        out[host] = counters.get("rx_bytes", 0) + counters.get("tx_bytes", 0)
    return out


def migration_cost(router, volumes, talker_locations, candidate_edge):
    """S-CORE cost of placing the hot VM on ``candidate_edge``."""
    cost = 0
    for talker, (switch, _port) in talker_locations.items():
        path = router.shortest_path(switch, candidate_edge)
        hops = len(path) - 1 if path else 10
        cost += volumes.get(talker, 0) * hops
    return cost


def migrate_host(net, host, dst_switch):
    """Move a host's MAC to a new port on another edge switch.

    The old access port disappears (the driver rmdirs its directory, the
    daemons' port caches invalidate via their watches), a fresh port
    appears on the destination switch, and the host re-announces itself
    with its next transmission.
    """
    old_link = host.link
    old_port = old_link.peer_of(host)
    old_link.set_up(False)
    old_port.link = None
    host.link = None
    net.links.remove(old_link)
    old_port.switch.remove_port(old_port.port_no)
    return net.attach_host(host, dst_switch)


def main() -> None:
    net = build_clos(2, 4, hosts_per_leaf=2)  # 2 spines, 4 leaves, 8 hosts
    ctl = YancController(net).start()

    TopologyDaemon(ctl.host.process(), ctl.sim).start()
    router = RouterDaemon(ctl.host.process(), ctl.sim, flow_idle_timeout=0.5).start()
    ArpResponder(ctl.host.process(), ctl.sim).start()

    print("discovering topology ...")
    ctl.run(2.0)
    assert router.topology() == ctl.expected_topology(), "discovery incomplete"

    # The hot VM lives on leaf1; its talkers all sit on leaf3 and leaf4.
    # /net names switches sw<dpid>; keep a map back to the sim names.
    fs_name = {name: ctl.fs_name_of(name) for name in net.switches}
    sim_name = {v: k for k, v in fs_name.items()}
    hot = net.hosts["h1"]
    mapping = net.host_ports()
    talkers = [name for name, (sw, _p) in mapping.items() if sw in ("leaf3", "leaf4")]
    print(f"hot VM {hot.name} on {mapping[hot.name][0]}; talkers {talkers} across the spine")

    # Warmup: one ping per talker so every host is learned into /net/hosts
    # before the measurement window opens.
    for name in talkers:
        net.hosts[name].ping(hot.ip)
    ctl.run(1.5)

    matrix = TrafficMatrix.hotspot(
        talkers + [hot.name], hot.name, num_flows=12, hot_fraction=1.0, packets_per_flow=6, seed=3
    )
    replay = TrafficReplay(net, matrix)

    locations = host_edge_ports(ctl, net)
    before = measured_bytes(ctl, locations)
    stats = replay.run(3.0)
    after = measured_bytes(ctl, locations)
    print(f"window 1: {stats.packets_delivered}/{stats.packets_offered} packets delivered")

    volumes = {h: after[h] - before[h] for h in talkers}
    talker_locations = {h: locations[h] for h in talkers}
    edges = [fs_name[name] for name in net.switches if name.startswith("leaf")]
    costs = {edge: migration_cost(router, volumes, talker_locations, edge) for edge in edges}
    current = fs_name[mapping[hot.name][0]]
    target = min(costs, key=costs.get)
    for edge in sorted(costs):
        marker = " <- current" if edge == current else (" <- target" if edge == target else "")
        print(f"  cost({edge}) = {costs[edge]} ({sim_name[edge]}){marker}")
    assert costs[target] < costs[current], "migration should be profitable"

    print(f"migrating {hot.name}: {sim_name[current]} -> {sim_name[target]}")
    migrate_host(net, hot, net.switches[sim_name[target]])
    ctl.run(1.0)  # old flows idle out, discovery sees the new port
    hot.ping(net.hosts[talkers[0]].ip)  # re-announce from the new location
    ctl.run(1.0)

    matrix2 = TrafficMatrix.hotspot(
        talkers + [hot.name], hot.name, num_flows=12, hot_fraction=1.0, packets_per_flow=6, seed=5
    )
    stats2 = TrafficReplay(net, matrix2).run(3.0)
    print(f"window 2: {stats2.packets_delivered}/{stats2.packets_offered} packets delivered")
    assert stats2.delivery_ratio > 0.9, "traffic must still flow after migration"

    locations2 = host_edge_ports(ctl, net)
    cost_before = migration_cost(router, volumes, talker_locations, current)
    cost_after = migration_cost(router, volumes, {h: locations2[h] for h in talkers}, locations2[hot.name][0])
    print(f"communication cost: {cost_before} -> {cost_after} "
          f"({100 * (1 - cost_after / cost_before):.0f}% lower)")
    assert cost_after < cost_before

    print(f"router: {router.paths_installed} paths, {router.full_topology_reads} full topology walks, "
          f"{router.deltas_applied} deltas applied")


if __name__ == "__main__":
    main()
