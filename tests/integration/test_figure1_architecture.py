"""Figure 1, as a test: every architectural box, one run, cross-checked."""

import pytest

from repro.apps import AccountingDaemon, RouterDaemon, TopologyDaemon, run_audit
from repro.dataplane import Match, Output, build_linear
from repro.distfs import ControllerCluster
from repro.drivers import OF10_VERSION, OF13_VERSION
from repro.runtime import YancController
from repro.vfs import Credentials
from repro.views import Slicer, grant_view, tenant_process
from repro.yancfs import YancClient


@pytest.fixture(scope="module")
def world():
    net = build_linear(4)
    ctl = YancController(net)
    of10 = ctl.add_driver()
    of13 = ctl.add_driver(version=OF13_VERSION)
    switches = list(net.switches.values())
    for switch in switches[:2]:
        of10.attach_switch(switch)
    for switch in switches[2:]:
        of13.attach_switch(switch)
    for switch in switches:
        switch.start_expiry()
    ctl.run(0.1)
    topod = TopologyDaemon(ctl.host.process(), ctl.sim).start()
    router = RouterDaemon(ctl.host.process(), ctl.sim).start()
    acct = AccountingDaemon(ctl.host.process(), ctl.sim).start()
    ctl.run(2.0)
    slicer = Slicer(
        ctl.host.process(), ctl.sim, view="tenant1", switches=["sw1", "sw2"],
        headerspace=Match(dl_type=0x0800, nw_proto=17),
    ).start()
    ctl.run(0.2)
    grant_view(ctl.host.root_sc, "/net/views/tenant1", 1001, 1001)
    cluster = ControllerCluster(ctl.host)
    worker = cluster.add_worker()
    return dict(
        ctl=ctl, of10=of10, of13=of13, topod=topod, router=router,
        acct=acct, slicer=slicer, worker=worker,
    )


def test_mixed_version_fleet_negotiated(world):
    versions = {b.fs_name: b.version for d in (world["of10"], world["of13"]) for b in d.bindings.values()}
    assert versions == {"sw1": OF10_VERSION, "sw2": OF10_VERSION, "sw3": OF13_VERSION, "sw4": OF13_VERSION}


def test_topology_spans_both_driver_versions(world):
    from repro.apps import read_topology

    ctl = world["ctl"]
    assert read_topology(ctl.client()) == ctl.expected_topology()


def test_ping_crosses_the_version_boundary(world):
    ctl = world["ctl"]
    h1, h4 = ctl.net.hosts["h1"], ctl.net.hosts["h4"]
    seq = h1.ping(h4.ip)
    ctl.run(3.0)
    assert h1.reachable(seq)


def test_tenant_app_in_namespace_programs_through_slicer(world):
    ctl = world["ctl"]
    tenant = tenant_process(ctl.host.vfs, "/net/views/tenant1", Credentials(uid=1001, gid=1001))
    YancClient(tenant).create_flow("sw1", "udp_fwd", Match(nw_proto=17), [Output(1)], priority=10)
    ctl.run(0.5)
    assert "v_tenant1_udp_fwd" in ctl.client().flows("sw1")
    spec = ctl.client().read_flow("sw1", "v_tenant1_udp_fwd")
    assert spec.match.dl_type == 0x0800  # slicer filled the headerspace in


def test_remote_worker_programs_of13_switch(world):
    ctl = world["ctl"]
    world["worker"].client.create_flow("sw4", "remote_rule", Match(dl_vlan=7), [Output(1)], priority=10)
    ctl.run(0.5)
    assert any(e.match.dl_vlan == 7 for e in ctl.net.switches["sw4"].table.entries())


def test_accounting_saw_the_whole_fleet(world):
    ctl = world["ctl"]
    ctl.run(1.2)
    records = world["acct"].records()
    for name in ("sw1", "sw2", "sw3", "sw4"):
        assert any(f" {name} " in line for line in records)


def test_final_audit_is_clean(world):
    ctl = world["ctl"]
    report = run_audit(ctl.host.process(), clock=ctl.sim.now)
    assert report.clean, report.findings
    assert report.switches_checked == 4
