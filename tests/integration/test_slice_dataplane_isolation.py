"""End-to-end slice isolation at the *dataplane* level.

Two tenants, one physical network.  Each programs only its own
headerspace through its own view; the hardware tables then forward each
tenant's traffic while the other tenant's flows can never capture it —
the FlowVisor property, realized with a file system.
"""

import pytest

from repro.dataplane import Match, Output, build_linear
from repro.netpkt import ETH_TYPE_IPV4, Ethernet, IPv4, Tcp, Udp, ip
from repro.netpkt.packet import build_frame
from repro.runtime import YancController
from repro.views import Slicer
from repro.yancfs import YancClient


@pytest.fixture
def sliced_world():
    """One switch, two hosts; tenant A owns UDP, tenant B owns TCP."""
    ctl = YancController(build_linear(1, hosts_per_switch=2)).start()
    Slicer(
        ctl.host.process(), ctl.sim, view="udp-tenant", switches=["sw1"],
        headerspace=Match(dl_type=0x0800, nw_proto=17),
    ).start()
    Slicer(
        ctl.host.process(), ctl.sim, view="tcp-tenant", switches=["sw1"],
        headerspace=Match(dl_type=0x0800, nw_proto=6),
    ).start()
    ctl.run(0.2)
    udp_tenant = ctl.client().in_view("udp-tenant")
    tcp_tenant = ctl.client().in_view("tcp-tenant")
    return ctl, udp_tenant, tcp_tenant


def _udp(src, dst, payload=b"u"):
    return build_frame(
        Ethernet(dst=dst.mac, src=src.mac, eth_type=ETH_TYPE_IPV4),
        IPv4(src=src.ip, dst=dst.ip, proto=17),
        Udp(src_port=1111, dst_port=2222, payload=payload),
    )


def _tcp(src, dst, payload=b"t"):
    return build_frame(
        Ethernet(dst=dst.mac, src=src.mac, eth_type=ETH_TYPE_IPV4),
        IPv4(src=src.ip, dst=dst.ip, proto=6),
        Tcp(src_port=1111, dst_port=2222, payload=payload),
    )


def test_each_tenant_forwards_only_its_protocol(sliced_world):
    ctl, udp_tenant, tcp_tenant = sliced_world
    h1, h2 = ctl.net.hosts["h1"], ctl.net.hosts["h2"]
    # each tenant forwards its own traffic to h2's port (port 2)
    udp_tenant.create_flow("sw1", "fwd", Match(nw_proto=17), [Output(2)], priority=10)
    tcp_tenant.create_flow("sw1", "fwd", Match(nw_proto=6), [Output(2)], priority=10)
    ctl.run(0.5)
    h1.send_raw(_udp(h1, h2))
    h1.send_raw(_tcp(h1, h2))
    ctl.run(0.5)
    kinds = sorted(type(f.inner).__name__ for f in h2.received)
    assert kinds == ["Tcp", "Udp"]


def test_tenant_cannot_steal_other_tenants_traffic(sliced_world):
    ctl, udp_tenant, _tcp_tenant = sliced_world
    h1, h2 = ctl.net.hosts["h1"], ctl.net.hosts["h2"]
    # the UDP tenant tries to install a wildcard flow stealing everything
    udp_tenant.create_flow("sw1", "steal", Match(), [Output(2)], priority=0x7FFF)
    ctl.run(0.5)
    # the installed flow is narrowed to the UDP headerspace...
    master = ctl.client()
    spec = master.read_flow("sw1", "v_udp-tenant_steal")
    assert spec.match.nw_proto == 17
    # ...so TCP traffic still misses (no theft), while UDP forwards
    h1.send_raw(_tcp(h1, h2))
    h1.send_raw(_udp(h1, h2))
    ctl.run(0.5)
    kinds = [type(f.inner).__name__ for f in h2.received]
    assert kinds == ["Udp"]


def test_tenants_see_disjoint_packet_ins(sliced_world):
    ctl, udp_tenant, tcp_tenant = sliced_world
    udp_tenant.subscribe_events("sw1", "udp-app")
    tcp_tenant.subscribe_events("sw1", "tcp-app")
    ctl.run(0.2)
    h1, h2 = ctl.net.hosts["h1"], ctl.net.hosts["h2"]
    h1.send_raw(_udp(h1, h2))
    h1.send_raw(_tcp(h1, h2))
    ctl.run(0.5)
    udp_events = udp_tenant.read_events("sw1", "udp-app")
    tcp_events = tcp_tenant.read_events("sw1", "tcp-app")
    assert len(udp_events) == 1 and len(tcp_events) == 1
    from repro.netpkt import parse_frame

    assert parse_frame(udp_events[0].data).key.nw_proto == 17
    assert parse_frame(tcp_events[0].data).key.nw_proto == 6


def test_tenant_counters_reflect_only_their_flows(sliced_world):
    ctl, udp_tenant, _tcp = sliced_world
    h1, h2 = ctl.net.hosts["h1"], ctl.net.hosts["h2"]
    udp_tenant.create_flow("sw1", "fwd", Match(nw_proto=17), [Output(2)], priority=10)
    ctl.run(0.5)
    for _ in range(3):
        h1.send_raw(_udp(h1, h2))
    ctl.run(2.5)  # traffic + driver stats poll + slicer counter sync
    counters = udp_tenant.flow_counters("sw1", "fwd")
    assert counters["packet_count"] == 3
