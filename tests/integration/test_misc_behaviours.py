"""Cross-cutting behaviours that fell between the module suites."""

import pytest

from repro.dataplane import Match, Output, build_linear
from repro.runtime import YancController
from repro.shell import Shell, ShellError
from repro.vfs import InvalidArgument


def test_shell_redirect_into_validated_file_surfaces_error(linear_controller):
    """echo garbage > priority must fail loudly and leave the old value."""
    ctl = linear_controller
    yc = ctl.client()
    yc.create_flow("sw1", "f", Match(dl_type=0x800), [Output(1)], priority=7)
    shell = Shell(ctl.host.root_sc)
    with pytest.raises(ShellError):
        shell.run("echo not-a-number > /net/switches/sw1/flows/f/priority")
    assert shell.run("cat /net/switches/sw1/flows/f/priority") == "7"


def test_shell_redirect_commit_drives_driver(linear_controller):
    ctl = linear_controller
    shell = Shell(ctl.host.root_sc)
    shell.run("mkdir /net/switches/sw1/flows/byhand")
    shell.run("echo 0x806 > /net/switches/sw1/flows/byhand/match.dl_type")
    shell.run("echo flood > /net/switches/sw1/flows/byhand/action.out")
    shell.run("echo 1 > /net/switches/sw1/flows/byhand/version")
    ctl.run(0.2)
    assert len(ctl.net.switches["sw1"].table) == 1


def test_host_attribute_validation(yanc_sc, yc):
    yc.create_host("h1")
    with pytest.raises(InvalidArgument):
        yanc_sc.write_text("/net/hosts/h1/mac", "not-a-mac")
    with pytest.raises(InvalidArgument):
        yanc_sc.write_text("/net/hosts/h1/ip", "999.1.1.1")
    yanc_sc.write_text("/net/hosts/h1/mac", "02:00:00:00:00:01")
    yanc_sc.write_text("/net/hosts/h1/ip", "10.0.0.1")


def test_merge_in_port_conflict():
    from repro.views import intersect

    assert intersect(Match(in_port=1), Match(in_port=2)) is None
    merged = intersect(Match(in_port=1), Match(in_port=1))
    assert merged is not None and merged.in_port == 1


def test_simulator_schedule_at():
    from repro.sim import Simulator

    sim = Simulator()
    fired = []
    sim.schedule_at(2.5, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [2.5]


def test_driver_meter_separate_from_apps(linear_controller):
    """Driver bookkeeping is not billed to application meters (§8.1
    accounting is about the *application's* syscalls)."""
    ctl = linear_controller
    from repro.perf import SyscallMeter

    meter = SyscallMeter()
    yc = ctl.client(meter=meter)
    yc.create_flow("sw1", "f", Match(dl_type=0x800), [Output(1)], priority=5)
    app_calls = meter.syscalls
    ctl.run(0.5)  # driver does its work on its own meter
    assert meter.syscalls == app_calls


def test_switch_num_buffers_zero_full_frame_punts(linear_controller):
    ctl = linear_controller
    ctl.net.switches["sw1"].num_buffers = 0
    yc = ctl.client()
    yc.subscribe_events("sw1", "app")
    ctl.run(0.1)
    host = ctl.net.hosts["h1"]
    from repro.netpkt import MacAddress, ip

    host.arp_table[ip("10.0.0.99")] = MacAddress(0x99)
    host.send_udp("10.0.0.99", 1, 2, b"p" * 500)
    ctl.run(0.3)
    events = yc.read_events("sw1", "app")
    assert len(events) == 1
    assert events[0].buffer_id == 0xFFFFFFFF
    assert len(events[0].data) == events[0].total_len  # nothing truncated


def test_miss_send_len_truncates_buffered_punts(linear_controller):
    ctl = linear_controller
    yc = ctl.client()
    yc.subscribe_events("sw1", "app")
    ctl.run(0.1)
    host = ctl.net.hosts["h1"]
    from repro.netpkt import MacAddress, ip

    host.arp_table[ip("10.0.0.99")] = MacAddress(0x99)
    host.send_udp("10.0.0.99", 1, 2, b"p" * 500)
    ctl.run(0.3)
    events = yc.read_events("sw1", "app")
    assert len(events) == 1
    assert events[0].buffer_id != 0xFFFFFFFF
    assert len(events[0].data) == 128  # miss_send_len
    assert events[0].total_len > 128


def test_view_inside_view_namespace(yanc_sc):
    """Nested views jail correctly too."""
    from repro.vfs import Credentials
    from repro.views import grant_view, tenant_process

    yanc_sc.mkdir("/net/views/outer")
    yanc_sc.mkdir("/net/views/outer/views/inner")
    grant_view(yanc_sc, "/net/views/outer/views/inner", 1234, 1234)
    tenant = tenant_process(yanc_sc.vfs, "/net/views/outer/views/inner", Credentials(uid=1234, gid=1234))
    assert tenant.listdir("/net") == ["hosts", "switches", "views"]
    assert tenant.listdir("/net/views") == []
