"""Failure injection: link cuts, driver migration under traffic, restarts."""

import pytest

from repro.apps import RouterDaemon, TopologyDaemon, read_topology
from repro.dataplane import Match, Output, build_ring
from repro.dataplane.switch import PortSim
from repro.drivers import OF13_VERSION
from repro.runtime import YancController


@pytest.fixture
def ring():
    ctl = YancController(build_ring(4)).start()
    topod = TopologyDaemon(ctl.host.process(), ctl.sim).start()
    router = RouterDaemon(ctl.host.process(), ctl.sim, flow_idle_timeout=2.0).start()
    ctl.run(2.0)
    return ctl, topod, router


def _inter_switch_links(net):
    return [l for l in net.links if isinstance(l.a, PortSim) and isinstance(l.b, PortSim)]


def test_reroute_after_link_cut(ring):
    ctl, topod, _router = ring
    h1, h3 = ctl.net.hosts["h1"], ctl.net.hosts["h3"]
    seq = h1.ping(h3.ip)
    ctl.run(3.0)
    assert h1.reachable(seq)
    # cut the link the current path uses (any inter-switch link will do on
    # a ring: the other direction still connects everything)
    link = _inter_switch_links(ctl.net)[0]
    link.set_up(False)
    # wait for: stale peer links pruned + stale flows idle out
    ctl.run(10.0)
    adjacency = read_topology(ctl.client())
    assert len(adjacency) == 6  # 8 directed entries - 2 for the dead link
    seq2 = h1.ping(h3.ip)
    ctl.run(5.0)
    assert h1.reachable(seq2), "traffic did not reroute around the cut"


def test_discovery_recovers_when_link_returns(ring):
    ctl, topod, _router = ring
    link = _inter_switch_links(ctl.net)[0]
    link.set_up(False)
    ctl.run(8.0)
    assert len(read_topology(ctl.client())) == 6
    link.set_up(True)
    ctl.run(3.0)
    assert read_topology(ctl.client()) == ctl.expected_topology()


def test_driver_migration_under_traffic(ring):
    ctl, _topod, _router = ring
    h1, h2 = ctl.net.hosts["h1"], ctl.net.hosts["h2"]
    seq = h1.ping(h2.ip)
    ctl.run(3.0)
    assert h1.reachable(seq)
    # migrate every switch to a new OF1.3 driver, live
    of13 = ctl.add_driver(version=OF13_VERSION)
    old = ctl.drivers[0]
    for switch in list(ctl.net.switches.values()):
        old.detach_switch(switch.dpid)
        of13.attach_switch(switch)
    ctl.run(0.5)
    seq2 = h1.ping(h2.ip)
    ctl.run(3.0)
    assert h1.reachable(seq2)
    assert all(b.version == OF13_VERSION for b in of13.bindings.values())


def test_router_restart_relearns(ring):
    ctl, _topod, router = ring
    h1, h2 = ctl.net.hosts["h1"], ctl.net.hosts["h2"]
    seq = h1.ping(h2.ip)
    ctl.run(3.0)
    assert h1.reachable(seq)
    router.stop()
    fresh = RouterDaemon(ctl.host.process(), ctl.sim, flow_idle_timeout=2.0).start()
    ctl.run(4.0)  # old flows idle out
    seq2 = h1.ping(h2.ip)
    ctl.run(4.0)
    assert h1.reachable(seq2)
    assert fresh.paths_installed + fresh.floods > 0


def test_app_crash_does_not_take_down_others(ring):
    """The paper's anti-monolith argument: one app's bug is contained."""
    from repro.proc import ProcState

    ctl, topod, _router = ring

    class CrashyApp(RouterDaemon):
        app_name = "crashy"

        def handle_packet_in(self, event):
            raise RuntimeError("bug in tenant code")

    # No wrapping needed: the process runtime contains the crash natively.
    crashy = CrashyApp(ctl.host.process(), ctl.sim).start()
    ctl.run(1.0)
    h1, h2 = ctl.net.hosts["h1"], ctl.net.hosts["h2"]
    seq = h1.ping(h2.ip)
    ctl.run(3.0)
    assert crashy.state is ProcState.CRASHED  # the process dies...
    assert isinstance(crashy.last_error, RuntimeError)
    assert h1.reachable(seq)  # ...and the rest of the system doesn't care
    assert topod.beacons_received > 0
