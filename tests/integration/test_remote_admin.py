"""Admin tooling over the distributed FS: coreutils against a remote /net.

The §5.4 + §6 combination: because the remote mount is just another file
system, the paper's one-liners work unchanged from another machine.
"""

import pytest

from repro.dataplane import Match, Output, build_linear
from repro.distfs import ControllerCluster
from repro.runtime import YancController
from repro.shell import Shell


@pytest.fixture
def remote_admin():
    ctl = YancController(build_linear(2)).start()
    yc = ctl.client()
    yc.create_flow("sw1", "ssh", Match(dl_type=0x800, nw_proto=6, tp_dst=22), [Output(1)], priority=9)
    ctl.run(0.2)
    cluster = ControllerCluster(ctl.host, consistency="strict")
    worker = cluster.add_worker("admin-box")
    return ctl, Shell(worker.sc), worker


def test_remote_ls(remote_admin):
    _ctl, shell, _worker = remote_admin
    assert shell.run("ls /net/switches").splitlines() == ["sw1", "sw2"]


def test_remote_find_grep_oneliner(remote_admin):
    _ctl, shell, _worker = remote_admin
    out = shell.run("find /net -name match.tp_dst -exec grep 22 {} ;")
    assert out.splitlines() == ["/net/switches/sw1/flows/ssh/match.tp_dst:22"]


def test_remote_tree(remote_admin):
    _ctl, shell, _worker = remote_admin
    out = shell.run("tree /net -L 1")
    assert [line.split()[-1] for line in out.splitlines()[1:]] == ["apps", "hosts", "switches", "views"]


def test_remote_echo_configures_hardware(remote_admin):
    ctl, shell, _worker = remote_admin
    shell.run("echo 1 > /net/switches/sw1/ports/port_1/config.port_down")
    ctl.run(0.3)
    assert not ctl.net.switches["sw1"].ports[1].admin_up


def test_remote_flow_push_via_shell(remote_admin):
    ctl, shell, _worker = remote_admin
    shell.run("mkdir /net/switches/sw2/flows/manual")
    shell.run("echo 0x806 > /net/switches/sw2/flows/manual/match.dl_type")
    shell.run("echo flood > /net/switches/sw2/flows/manual/action.out")
    shell.run("echo 3 > /net/switches/sw2/flows/manual/priority")
    shell.run("echo 1 > /net/switches/sw2/flows/manual/version")
    ctl.run(0.3)
    entries = ctl.net.switches["sw2"].table.entries()
    assert len(entries) == 1
    assert entries[0].match.dl_type == 0x0806


def test_remote_rm_deletes_flow(remote_admin):
    ctl, shell, _worker = remote_admin
    shell.run("rm -r /net/switches/sw1/flows/ssh")
    ctl.run(0.3)
    assert ctl.client().flows("sw1") == []
    assert len(ctl.net.switches["sw1"].table) == 0


def test_remote_cp_flow_between_switches(remote_admin):
    """cp -r a flow dir to another switch, bump version: cloned policy."""
    ctl, shell, _worker = remote_admin
    shell.run("cp -r /net/switches/sw1/flows/ssh /net/switches/sw2/flows/ssh")
    shell.run("echo 2 > /net/switches/sw2/flows/ssh/version")
    ctl.run(0.3)
    assert len(ctl.net.switches["sw2"].table) == 1
    assert ctl.net.switches["sw2"].table.entries()[0].match.tp_dst == 22


def test_remote_admin_rpc_accounting(remote_admin):
    _ctl, shell, worker = remote_admin
    before = worker.channel.calls
    shell.run("ls /net/switches")
    assert worker.channel.calls > before
