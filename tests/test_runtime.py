"""The runtime assembly helpers."""

import pytest

from repro import Credentials, Match, Output, Simulator, YancController, build_linear
from repro.runtime import ControllerHost


def test_controller_host_mounts_yancfs():
    host = ControllerHost(Simulator())
    assert host.root_sc.listdir("/net") == ["hosts", "switches", "views"]
    assert host.fs.fs_type == "yancfs"


def test_controller_host_custom_mount_point():
    host = ControllerHost(Simulator(), mount_point="/srv/net")
    assert host.root_sc.listdir("/srv/net") == ["hosts", "switches", "views"]
    assert host.client().root == "/srv/net"


def test_process_isolation_of_meters():
    host = ControllerHost(Simulator())
    a = host.process()
    b = host.process()
    a.listdir("/net")
    assert a.meter.syscalls == 1
    assert b.meter.syscalls == 0


def test_process_credentials():
    host = ControllerHost(Simulator())
    user = host.process(cred=Credentials(uid=42, gid=42))
    user.chdir("/net")
    assert user.cred.uid == 42


def test_controller_requires_shared_simulator():
    net = build_linear(2)
    with pytest.raises(ValueError):
        YancController(net, sim=Simulator())


def test_start_attaches_everything():
    ctl = YancController(build_linear(3)).start()
    assert len(ctl.drivers) == 1
    assert set(ctl.drivers[0].bindings) == {1, 2, 3}
    assert all(binding.ready for binding in ctl.drivers[0].bindings.values())


def test_fs_name_translation():
    ctl = YancController(build_linear(2)).start()
    assert ctl.fs_name_of("sw1") == "sw1"
    from repro.dataplane import build_fat_tree

    ctl2 = YancController(build_fat_tree(4)).start()
    assert ctl2.fs_name_of("core1") == "sw1"
    expected = ctl2.expected_topology()
    assert all(name.startswith("sw") for (name, _port) in expected)


def test_run_advances_shared_clock():
    ctl = YancController(build_linear(2))
    before = ctl.sim.now
    ctl.run(1.5)
    assert ctl.sim.now == before + 1.5
    assert ctl.net.sim is ctl.sim


def test_client_pushes_through_default_driver():
    ctl = YancController(build_linear(2)).start()
    yc = ctl.client()
    yc.create_flow("sw1", "f", Match(dl_type=0x806), [Output(1)], priority=2)
    ctl.run(0.2)
    assert len(ctl.net.switches["sw1"].table) == 1
