"""The slicer: mirroring, translation, rejection, forwarding, stacking."""

import pytest

from repro.apps import TopologyDaemon
from repro.dataplane import Match, Output, build_linear
from repro.runtime import YancController
from repro.views import MAX_TENANT_PRIORITY, Slicer
from repro.yancfs import YancClient

SSH = Match(dl_type=0x800, nw_proto=6, tp_dst=22)


@pytest.fixture
def sliced():
    ctl = YancController(build_linear(3)).start()
    TopologyDaemon(ctl.host.process(), ctl.sim).start()
    ctl.run(1.5)
    slicer = Slicer(ctl.host.process(), ctl.sim, view="ssh", switches=["sw1", "sw2"], headerspace=SSH).start()
    ctl.run(0.2)
    tenant = ctl.client().in_view("ssh")
    return ctl, slicer, tenant


def test_view_mirrors_sliced_switches_only(sliced):
    _ctl, _slicer, tenant = sliced
    assert tenant.switches() == ["sw1", "sw2"]


def test_view_mirrors_ports_and_dpid(sliced):
    ctl, _slicer, tenant = sliced
    assert tenant.ports("sw1") == ctl.client().ports("sw1")
    assert tenant.switch_dpid("sw1") == 1


def test_view_mirrors_intra_slice_peer_links(sliced):
    _ctl, _slicer, tenant = sliced
    # sw1<->sw2 (port 1 on each) is inside the slice; sw2<->sw3 is not
    target = tenant.peer_of("sw1", 1)
    assert target is not None and "/views/ssh/" in target and "sw2" in target
    # only the sw2 port facing sw1 has a peer inside the view
    peers = [tenant.peer_of("sw2", p) for p in tenant.ports("sw2")]
    assert sum(1 for p in peers if p) == 1


def test_tenant_flow_translated_with_intersection(sliced):
    ctl, slicer, tenant = sliced
    tenant.create_flow("sw1", "mine", Match(tp_dst=22), [Output(1)], priority=10)
    ctl.run(0.5)
    master = ctl.client()
    spec = master.read_flow("sw1", "v_ssh_mine")
    assert spec.match == SSH  # intersection filled in dl_type/nw_proto
    assert slicer.flows_translated == 1
    assert len(ctl.net.switches["sw1"].table) >= 1


def test_out_of_slice_flow_rejected_in_place(sliced):
    ctl, slicer, tenant = sliced
    tenant.create_flow("sw1", "web", Match(tp_dst=80), [Output(1)], priority=10)
    ctl.run(0.5)
    status = tenant.sc.read_text(tenant.flow_path("sw1", "web") + "/state.status")
    assert status.startswith("rejected")
    assert "v_ssh_web" not in ctl.client().flows("sw1")
    assert slicer.flows_rejected == 1


def test_tenant_priority_clamped(sliced):
    ctl, _slicer, tenant = sliced
    tenant.create_flow("sw1", "greedy", Match(tp_dst=22), [Output(1)], priority=0xFFFF)
    ctl.run(0.5)
    spec = ctl.client().read_flow("sw1", "v_ssh_greedy")
    assert spec.priority == MAX_TENANT_PRIORITY


def test_tenant_flow_delete_cleans_master(sliced):
    ctl, _slicer, tenant = sliced
    tenant.create_flow("sw1", "f", Match(tp_dst=22), [Output(1)], priority=10)
    ctl.run(0.5)
    assert "v_ssh_f" in ctl.client().flows("sw1")
    tenant.delete_flow("sw1", "f")
    ctl.run(0.5)
    assert "v_ssh_f" not in ctl.client().flows("sw1")


def test_recommit_updates_master_flow(sliced):
    ctl, _slicer, tenant = sliced
    tenant.create_flow("sw1", "f", Match(tp_dst=22), [Output(1)], priority=10)
    ctl.run(0.5)
    tenant.sc.write_text(tenant.flow_path("sw1", "f") + "/priority", "20")
    tenant.commit_flow("sw1", "f")
    ctl.run(0.5)
    assert ctl.client().read_flow("sw1", "v_ssh_f").priority == 20


def test_headerspace_packet_in_forwarded_to_tenant(sliced):
    ctl, slicer, tenant = sliced
    tenant.subscribe_events("sw1", "tenant-app")
    ctl.run(0.2)
    h1 = ctl.net.hosts["h1"]
    # SSH SYN: inside the headerspace
    from repro.netpkt import ETH_TYPE_IPV4, Ethernet, IPv4, Tcp
    from repro.netpkt.packet import build_frame

    ssh = build_frame(
        Ethernet(dst=ctl.net.hosts["h2"].mac, src=h1.mac, eth_type=ETH_TYPE_IPV4),
        IPv4(src=h1.ip, dst=ctl.net.hosts["h2"].ip, proto=6),
        Tcp(src_port=1000, dst_port=22),
    )
    web = build_frame(
        Ethernet(dst=ctl.net.hosts["h2"].mac, src=h1.mac, eth_type=ETH_TYPE_IPV4),
        IPv4(src=h1.ip, dst=ctl.net.hosts["h2"].ip, proto=6),
        Tcp(src_port=1000, dst_port=80),
    )
    h1.send_raw(ssh)
    h1.send_raw(web)
    ctl.run(0.5)
    events = tenant.read_events("sw1", "tenant-app")
    assert len(events) == 1  # only the in-headerspace packet crossed
    assert slicer.events_forwarded == 1


def test_tenant_packet_out_forwarded_when_in_headerspace(sliced):
    ctl, _slicer, tenant = sliced
    from repro.netpkt import ETH_TYPE_IPV4, Ethernet, IPv4, Tcp
    from repro.netpkt.packet import build_frame

    h2 = ctl.net.hosts["h2"]
    frame = build_frame(
        Ethernet(dst=h2.mac, src=ctl.net.hosts["h1"].mac, eth_type=ETH_TYPE_IPV4),
        IPv4(src=ctl.net.hosts["h1"].ip, dst=h2.ip, proto=6),
        Tcp(src_port=1, dst_port=22),
    )
    tenant.packet_out("sw2", [3], frame, tag="tenant")
    ctl.run(0.5)
    from repro.netpkt import Tcp

    tcp_frames = [f for f in h2.received if isinstance(f.inner, Tcp)]
    assert len(tcp_frames) == 1


def test_tenant_packet_out_blocked_outside_headerspace(sliced):
    ctl, _slicer, tenant = sliced
    from repro.netpkt import ETH_TYPE_IPV4, Ethernet, IPv4, Tcp
    from repro.netpkt.packet import build_frame

    h2 = ctl.net.hosts["h2"]
    frame = build_frame(
        Ethernet(dst=h2.mac, src=ctl.net.hosts["h1"].mac, eth_type=ETH_TYPE_IPV4),
        IPv4(src=ctl.net.hosts["h1"].ip, dst=h2.ip, proto=6),
        Tcp(src_port=1, dst_port=80),
    )
    tenant.packet_out("sw2", [3], frame, tag="tenant")
    ctl.run(0.5)
    from repro.netpkt import Tcp

    assert not any(isinstance(f.inner, Tcp) for f in h2.received)


def test_counter_mirroring(sliced):
    ctl, _slicer, tenant = sliced
    tenant.create_flow("sw1", "f", Match(tp_dst=22), [Output(1)], priority=10)
    ctl.run(0.5)
    # hand-crank the master counters and let the sync task copy them
    master = ctl.client()
    sc = ctl.host.root_sc
    sc.write_text("/net/switches/sw1/flows/v_ssh_f/counters/packet_count", "77")
    ctl.run(1.2)
    assert tenant.flow_counters("sw1", "f")["packet_count"] == 77
    del master


def test_views_stack(sliced):
    """A slicer on top of a slicer (§4.2: stacked arbitrarily)."""
    ctl, _outer, tenant = sliced
    inner_slicer = Slicer(
        ctl.host.process(),
        ctl.sim,
        view="inner",
        switches=["sw1"],
        headerspace=Match(dl_type=0x800, nw_proto=6, tp_dst=22, nw_dst=__import__("ipaddress").IPv4Network("10.0.0.0/24")),
        root="/net/views/ssh",
    ).start()
    ctl.run(0.3)
    inner = YancClient(ctl.host.process(), "/net/views/ssh/views/inner")
    assert inner.switches() == ["sw1"]
    inner.create_flow("sw1", "deep", Match(tp_dst=22), [Output(1)], priority=5)
    ctl.run(0.6)
    # the flow surfaced through both translations onto the master switch
    master_flows = ctl.client().flows("sw1")
    assert "v_ssh_v_inner_deep" in master_flows
    spec = ctl.client().read_flow("sw1", "v_ssh_v_inner_deep")
    assert spec.match.nw_dst == __import__("ipaddress").IPv4Network("10.0.0.0/24")
    assert inner_slicer.flows_translated == 1
