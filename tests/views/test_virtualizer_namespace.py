"""Big-switch virtualization and namespace isolation."""

import pytest

from repro.apps import TopologyDaemon
from repro.dataplane import Match, Output, build_linear
from repro.runtime import YancController
from repro.vfs import Credentials, FileNotFound, FsError, PermissionDenied
from repro.views import BigSwitchVirtualizer, Slicer, grant_view, tenant_process, view_namespace
from repro.yancfs import YancClient

TENANT = Credentials(uid=1500, gid=1500)


@pytest.fixture
def fabric():
    ctl = YancController(build_linear(3)).start()
    TopologyDaemon(ctl.host.process(), ctl.sim).start()
    ctl.run(1.5)
    return ctl


@pytest.fixture
def big(fabric):
    # virtual port 1 = h1's port on sw1; virtual port 2 = h3's port on sw3
    virt = BigSwitchVirtualizer(
        fabric.host.process(), fabric.sim, view="big", port_map={1: ("sw1", 2), 2: ("sw3", 2)}
    ).start()
    fabric.run(0.2)
    return fabric, virt, fabric.client().in_view("big")


def test_big_switch_presented_with_virtual_ports(big):
    _ctl, _virt, view = big
    assert view.switches() == ["big"]
    assert view.ports("big") == ["port_1", "port_2"]


def test_flow_compiles_to_fabric_path(big):
    ctl, virt, view = big
    view.create_flow("big", "cross", Match(in_port=1, dl_type=0x800), [Output(2)], priority=9)
    ctl.run(0.5)
    assert virt.flows_compiled == 1
    # the path sw1 -> sw2 -> sw3 got one segment each
    master = ctl.client()
    for switch in ("sw1", "sw2", "sw3"):
        assert any(name.startswith("virt_big_cross") for name in master.flows(switch))


def test_compiled_path_actually_forwards(big):
    ctl, _virt, view = big
    view.create_flow("big", "fwd", Match(in_port=1, dl_type=0x800), [Output(2)], priority=9)
    view.create_flow("big", "rev", Match(in_port=2, dl_type=0x800), [Output(1)], priority=9)
    view.create_flow("big", "fwd-arp", Match(in_port=1, dl_type=0x806), [Output(2)], priority=9)
    view.create_flow("big", "rev-arp", Match(in_port=2, dl_type=0x806), [Output(1)], priority=9)
    ctl.run(0.5)
    h1, h3 = ctl.net.hosts["h1"], ctl.net.hosts["h3"]
    seq = h1.ping(h3.ip)
    ctl.run(2.0)
    assert h1.reachable(seq)


def test_flow_to_unknown_virtual_port_rejected(big):
    ctl, virt, view = big
    view.create_flow("big", "bogus", Match(in_port=1), [Output(9)], priority=9)
    ctl.run(0.5)
    assert virt.flows_rejected == 1
    status = view.sc.read_text(view.flow_path("big", "bogus") + "/state.status")
    assert status.startswith("rejected")


def test_flow_delete_removes_segments(big):
    ctl, _virt, view = big
    view.create_flow("big", "f", Match(in_port=1, dl_type=0x800), [Output(2)], priority=9)
    ctl.run(0.5)
    view.delete_flow("big", "f")
    ctl.run(0.5)
    master = ctl.client()
    for switch in ("sw1", "sw2", "sw3"):
        assert not any(name.startswith("virt_big_f") for name in master.flows(switch))


def test_packet_in_surfaces_with_virtual_port(big):
    ctl, virt, view = big
    view.subscribe_events("big", "tenant")
    ctl.run(0.2)
    h1 = ctl.net.hosts["h1"]
    h1.send_udp("10.0.0.250", 1, 2, b"miss")  # no flows: punted at sw1 port 2
    ctl.run(0.5)
    events = view.read_events("big", "tenant")
    assert len(events) == 1
    assert events[0].in_port == 1  # translated to the virtual port
    assert virt.events_forwarded == 1


def test_view_packet_out_mapped_to_fabric_port(big):
    ctl, _virt, view = big
    from repro.netpkt import ETH_TYPE_IPV4, Ethernet
    h3 = ctl.net.hosts["h3"]
    raw = Ethernet(dst=h3.mac, src=ctl.net.hosts["h1"].mac, eth_type=ETH_TYPE_IPV4, payload=b"x" * 30).pack()
    view.packet_out("big", [2], raw, tag="tenant")
    ctl.run(0.5)
    assert any(len(f.raw) == len(raw) for f in h3.received)


# -- namespaces -----------------------------------------------------------------------


def test_view_namespace_hides_everything_else(fabric):
    ctl = fabric
    Slicer(ctl.host.process(), ctl.sim, view="v", switches=["sw1"], headerspace=Match(dl_vlan=5)).start()
    ctl.run(0.2)
    ns = view_namespace(ctl.host.vfs, "/net/views/v")
    from repro.vfs import Syscalls

    proc = Syscalls(ctl.host.vfs, ns=ns)
    assert proc.listdir("/net/switches") == ["sw1"]
    assert proc.listdir("/net/views") == []
    # the master path space is simply gone
    with pytest.raises(FileNotFound):
        proc.read_text("/net/switches/sw2/id")


def test_tenant_process_non_root_required(fabric):
    ctl = fabric
    ctl.client().create_view("v")
    from repro.vfs import InvalidArgument, ROOT

    with pytest.raises(InvalidArgument):
        tenant_process(ctl.host.vfs, "/net/views/v", ROOT)


def test_grant_view_enables_tenant_writes(fabric):
    ctl = fabric
    Slicer(ctl.host.process(), ctl.sim, view="v", switches=["sw1"], headerspace=Match(dl_vlan=5)).start()
    ctl.run(0.2)
    tenant = tenant_process(ctl.host.vfs, "/net/views/v", TENANT)
    tyc = YancClient(tenant)
    with pytest.raises(PermissionDenied):
        tyc.create_flow("sw1", "f", Match(dl_vlan=5), [Output(1)], priority=5)
    grant_view(ctl.host.root_sc, "/net/views/v", TENANT.uid, TENANT.gid)
    tyc.create_flow("sw1", "f", Match(dl_vlan=5), [Output(1)], priority=5)
    ctl.run(0.5)
    assert "v_v_f" in ctl.client().flows("sw1")


def test_tenant_cannot_touch_master_even_with_path(fabric):
    """Ownership is defense in depth under the namespace jail."""
    ctl = fabric
    ctl.client().create_view("v")
    grant_view(ctl.host.root_sc, "/net/views/v", TENANT.uid, TENANT.gid)
    tenant = tenant_process(ctl.host.vfs, "/net/views/v", TENANT)
    # even /net/switches (the view's own, granted) is the only thing there:
    # creating a switch dir at master scope is impossible by construction
    with pytest.raises(FsError):
        tenant.mkdir("/net/views/leak")  # views dir inside the view is tenant's...
        tenant.mkdir("/net/views/leak/escape/../../..")  # and .. cannot escape


def test_two_tenants_fully_isolated(fabric):
    ctl = fabric
    for name, uid in (("a", 2001), ("b", 2002)):
        Slicer(ctl.host.process(), ctl.sim, view=name, switches=["sw1"], headerspace=Match(dl_vlan=uid)).start()
    ctl.run(0.2)
    grant_view(ctl.host.root_sc, "/net/views/a", 2001, 2001)
    grant_view(ctl.host.root_sc, "/net/views/b", 2002, 2002)
    tenant_a = tenant_process(ctl.host.vfs, "/net/views/a", Credentials(uid=2001, gid=2001))
    tenant_b = tenant_process(ctl.host.vfs, "/net/views/b", Credentials(uid=2002, gid=2002))
    YancClient(tenant_a).create_flow("sw1", "mine", Match(dl_vlan=2001), [Output(1)], priority=5)
    ctl.run(0.3)
    # B's namespace has no path to A's flow, and A's files are not B's
    assert YancClient(tenant_b).flows("sw1") == []
    with pytest.raises(FileNotFound):
        tenant_b.read_text("/net/views/a/switches/sw1/flows/mine/priority")
