"""The match-intersection algebra behind slicing."""

from hypothesis import given
from hypothesis import strategies as st

from repro.dataplane import Match
from repro.netpkt import MacAddress, cidr, ip
from repro.netpkt.packet import FlowKey
from repro.views import admits, intersect


def test_intersect_disjoint_fields_unions():
    merged = intersect(Match(tp_dst=22), Match(dl_type=0x800, nw_proto=6))
    assert merged == Match(dl_type=0x800, nw_proto=6, tp_dst=22)


def test_intersect_equal_values_keep():
    assert intersect(Match(tp_dst=22), Match(tp_dst=22)) == Match(tp_dst=22)


def test_intersect_conflicting_values_empty():
    assert intersect(Match(tp_dst=22), Match(tp_dst=80)) is None
    assert not admits(Match(tp_dst=80), Match(tp_dst=22))


def test_intersect_cidr_narrower_wins():
    merged = intersect(Match(nw_dst=cidr("10.0.1.0/24")), Match(nw_dst=cidr("10.0.0.0/16")))
    assert merged is not None and merged.nw_dst == cidr("10.0.1.0/24")
    # and symmetrically
    merged2 = intersect(Match(nw_dst=cidr("10.0.0.0/16")), Match(nw_dst=cidr("10.0.1.0/24")))
    assert merged2 is not None and merged2.nw_dst == cidr("10.0.1.0/24")


def test_intersect_disjoint_cidrs_empty():
    assert intersect(Match(nw_src=cidr("10.0.0.0/24")), Match(nw_src=cidr("10.1.0.0/24"))) is None


def test_intersect_wildcard_identity():
    rich = Match(dl_type=0x800, tp_dst=22, nw_proto=6)
    assert intersect(rich, Match()) == rich
    assert intersect(Match(), rich) == rich


@given(
    tenant_port=st.one_of(st.none(), st.sampled_from([22, 80])),
    slice_port=st.one_of(st.none(), st.sampled_from([22, 80])),
    probe_port=st.sampled_from([22, 80, 443]),
)
def test_intersection_semantics_property(tenant_port, slice_port, probe_port):
    """A packet matches the intersection iff it matches both operands."""
    tenant = Match(tp_dst=tenant_port)
    headerspace = Match(tp_dst=slice_port)
    merged = intersect(tenant, headerspace)
    key = FlowKey(
        dl_src=MacAddress(1),
        dl_dst=MacAddress(2),
        dl_type=0x800,
        nw_src=ip("10.0.0.1"),
        nw_dst=ip("10.0.0.2"),
        nw_proto=6,
        nw_tos=0,
        tp_src=1,
        tp_dst=probe_port,
    )
    both = tenant.matches(key, 1) and headerspace.matches(key, 1)
    if merged is None:
        assert not both
    else:
        assert merged.matches(key, 1) == both
