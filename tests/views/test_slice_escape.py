"""Slice-escape attempts and §3.4 commit-surface ACLs, pinned as regressions.

The yancsec static pass flags ``..`` in view paths and ambient-authority
writes; these tests pin the *runtime* half of the contract: the namespace
jail actually rejects every escape route, and the version/spec files only
accept writes from the principals the schema intends.
"""

import pytest

from repro.dataplane import Match, Output, build_linear
from repro.runtime import YancController
from repro.vfs import Credentials, FileNotFound, FsError, PermissionDenied
from repro.views import Slicer, grant_view, tenant_process
from repro.yancfs import YancClient

TENANT = Credentials(uid=1500, gid=1500)
OTHER = Credentials(uid=1501, gid=1501)


@pytest.fixture
def sliced():
    ctl = YancController(build_linear(3)).start()
    Slicer(ctl.host.process(), ctl.sim, view="v", switches=["sw1"], headerspace=Match(dl_vlan=5)).start()
    ctl.run(0.2)
    grant_view(ctl.host.root_sc, "/net/views/v", TENANT.uid, TENANT.gid)
    return ctl, tenant_process(ctl.host.vfs, "/net/views/v", TENANT)


# -- `..` escapes ---------------------------------------------------------------------


def test_dotdot_cannot_reach_master_switches(sliced):
    _ctl, tenant = sliced
    # sw2 exists in the master tree but not in the slice; every `..`
    # spelling of its path must resolve inside the jail and miss.
    for path in (
        "/net/../net/switches/sw2/id",
        "/net/switches/../switches/sw2/id",
        "/../../net/switches/sw2/id",
        "/net/switches/sw1/../sw2/id",
    ):
        with pytest.raises(FileNotFound):
            tenant.read_text(path)


def test_dotdot_clamps_at_namespace_root(sliced):
    _ctl, tenant = sliced
    # Climbing above / lands back at the jail root, not the master root:
    # the listing is the view's, so the master 'views' subtree is empty.
    assert tenant.listdir("/../..") == tenant.listdir("/")
    assert tenant.listdir("/net/views") == []


def test_dotdot_write_cannot_escape(sliced):
    ctl, tenant = sliced
    with pytest.raises(FsError):
        tenant.write_text("/net/switches/sw1/../../../switches/sw2/id", "pwn")
    assert ctl.host.root_sc.read_text("/net/switches/sw2/id") != "pwn"


# -- symlink escapes ------------------------------------------------------------------


def test_schema_refuses_symlinks_in_switch_dirs(sliced):
    _ctl, tenant = sliced
    # First line of defense: switch subtrees accept no symlinks at all.
    with pytest.raises(FsError):
        tenant.symlink("/net/switches/sw2", "/net/switches/sw1/sneak")


@pytest.fixture
def scratch(sliced):
    ctl, tenant = sliced
    ctl.host.root_sc.makedirs("/tmp/scratch")
    ctl.host.root_sc.chmod("/tmp/scratch", 0o777)
    return ctl, tenant


def test_absolute_symlink_resolves_in_jail(scratch):
    _ctl, tenant = scratch
    # An absolute target re-walks from the *tenant's* root, where the
    # view shadows /net: the master switch set does not exist there.
    tenant.symlink("/net/switches/sw2/id", "/tmp/scratch/sneak")
    with pytest.raises(FileNotFound):
        tenant.read_text("/tmp/scratch/sneak")


def test_relative_symlink_climb_stays_in_jail(scratch):
    _ctl, tenant = scratch
    tenant.symlink("../../../../net/switches/sw2/id", "/tmp/scratch/climb")
    with pytest.raises(FileNotFound):
        tenant.read_text("/tmp/scratch/climb")


def test_symlink_to_granted_subtree_still_works(scratch):
    _ctl, tenant = scratch
    # The jail rejects escapes, not symlinks: an in-slice target is fine.
    tenant.symlink("/net/switches/sw1/id", "/tmp/scratch/alias")
    assert tenant.read_text("/tmp/scratch/alias") == tenant.read_text("/net/switches/sw1/id")


# -- §3.4 commit-surface ACLs ---------------------------------------------------------


@pytest.fixture
def flowed():
    ctl = YancController(build_linear(2)).start()
    owner = ctl.host.process(name="owner")
    YancClient(owner.sc).create_flow("sw1", "f1", Match(in_port=1), [Output(2)], priority=5)
    return ctl, owner


def test_version_file_writable_only_by_owner(flowed):
    ctl, owner = flowed
    version = "/net/switches/sw1/flows/f1/version"
    other = ctl.host.process(name="other")
    # Same `apps` group, world-readable — but commit authority is the
    # creating uid's alone (no ACL on version is deliberate policy).
    assert other.sc.read_text(version) is not None
    with pytest.raises(PermissionDenied):
        other.sc.write_text(version, "9")
    owner.sc.write_text(version, "2")
    assert ctl.host.root_sc.read_text(version) == "2"


def test_spec_files_writable_only_by_owner(flowed):
    ctl, _owner = flowed
    other = ctl.host.process(name="other")
    with pytest.raises(PermissionDenied):
        other.sc.write_text("/net/switches/sw1/flows/f1/match.in_port", "7")
    assert ctl.host.root_sc.read_text("/net/switches/sw1/flows/f1/match.in_port") == "1"


def test_foreign_app_cannot_delete_flow(flowed):
    # Regression for the sticky flow dirs: the collab ACL lets any app
    # *create* flows, but retracting another principal's staged spec or
    # committed version is owner-only (like /tmp's sticky bit).
    ctl, _owner = flowed
    other = ctl.host.process(name="other")
    with pytest.raises(FsError):
        other.sc.unlink("/net/switches/sw1/flows/f1/version")
    with pytest.raises(FsError):
        other.sc.rmdir("/net/switches/sw1/flows/f1")
    assert ctl.host.root_sc.exists("/net/switches/sw1/flows/f1/version")
