"""Codec robustness: hostile bytes must fail cleanly, never crash oddly.

A driver shares a network with black-box switch firmware; a codec that
raises anything other than CodecError on malformed input (or worse, loops)
would let one bad switch take the driver down.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.openflow.of10 as of10
import repro.openflow.of13 as of13
from repro.dataplane import Match, Output
from repro.openflow import messages as m
from repro.openflow.codec import decode_any
from repro.openflow.of10 import CodecError

CODECS = [of10, of13]


@settings(max_examples=300, deadline=None)
@given(data=st.binary(max_size=128))
@pytest.mark.parametrize("codec", CODECS, ids=["of10", "of13"])
def test_random_bytes_never_crash(codec, data):
    try:
        codec.decode(data)
    except CodecError:
        pass  # the only acceptable failure mode


@settings(max_examples=200, deadline=None)
@given(
    mutation_at=st.integers(min_value=0, max_value=79),
    mutation=st.integers(min_value=1, max_value=255),
)
@pytest.mark.parametrize("codec", CODECS, ids=["of10", "of13"])
def test_bitflipped_flowmod_decodes_or_fails_cleanly(codec, mutation_at, mutation):
    raw = bytearray(codec.encode(m.FlowMod(match=Match(dl_type=0x800, tp_dst=22, nw_proto=6), actions=[Output(1)], priority=9)))
    index = mutation_at % len(raw)
    raw[index] ^= mutation
    try:
        codec.decode(bytes(raw))
    except (CodecError, ValueError):
        pass  # ValueError: e.g. an enum value outside its range


@settings(max_examples=200, deadline=None)
@given(data=st.binary(min_size=8, max_size=64))
def test_decode_any_dispatches_or_rejects(data):
    try:
        decode_any(data)
    except (CodecError, ValueError):
        pass


@pytest.mark.parametrize("codec", CODECS, ids=["of10", "of13"])
def test_length_field_lies_short(codec):
    raw = bytearray(codec.encode(m.EchoRequest(payload=b"x" * 16)))
    raw[2:4] = (4).to_bytes(2, "big")  # shorter than the header itself
    with pytest.raises(CodecError):
        codec.decode(bytes(raw))


@pytest.mark.parametrize("codec", CODECS, ids=["of10", "of13"])
def test_length_field_lies_long(codec):
    raw = bytearray(codec.encode(m.EchoRequest(payload=b"x")))
    raw[2:4] = (1000).to_bytes(2, "big")
    with pytest.raises(CodecError):
        codec.decode(bytes(raw))


def test_of13_unknown_oxm_class_skipped():
    """Experimenter OXMs must be skipped, not fatal (spec behaviour)."""
    import struct

    # match with one experimenter TLV then a real eth_type TLV
    tlvs = struct.pack("!HBB", 0xFFFF, 0, 4) + b"\x00" * 4
    tlvs += struct.pack("!HBB", 0x8000, of13.OXM_ETH_TYPE << 1, 2) + struct.pack("!H", 0x0800)
    head = struct.pack("!HH", 1, 4 + len(tlvs))
    padded = head + tlvs + b"\x00" * ((8 - (4 + len(tlvs)) % 8) % 8)
    match, consumed = of13.unpack_match(padded)
    assert match.dl_type == 0x0800
    assert consumed == len(padded)


def test_agent_survives_garbage_stream():
    from repro.controlchannel import connect
    from repro.dataplane import Network
    from repro.openflow import SwitchAgent
    from repro.sim import Simulator

    sim = Simulator()
    net = Network(sim)
    switch = net.add_switch("s")
    driver_end, agent_end = connect(sim)
    agent = SwitchAgent(switch, agent_end)
    agent.start()
    # a garbage message with a coherent length header
    driver_end.send(b"\x01\xee\x00\x10" + b"\xff" * 12)
    # followed by a valid features request, which must still be answered
    driver_end.send(of10.encode(m.Hello(version=1)))
    driver_end.send(of10.encode(m.FeaturesRequest(xid=5)))
    sim.run_for(0.01)
    assert agent.errors_sent == 1
    received = driver_end.drain()
    assert received  # hello + error + features reply all arrived
