"""The codec registry and version helpers."""

import pytest

import repro.openflow.of10 as of10
import repro.openflow.of13 as of13
from repro.openflow import (
    CODECS,
    VERSION_NAMES,
    CodecError,
    codec_for,
    decode_any,
    messages as m,
    peek_version,
)


def test_registry_contents():
    assert set(CODECS) == {0x01, 0x04}
    assert CODECS[0x01] is of10
    assert CODECS[0x04] is of13
    assert VERSION_NAMES[0x01] == "OpenFlow 1.0"
    assert VERSION_NAMES[0x04] == "OpenFlow 1.3"


def test_peek_version():
    assert peek_version(of10.encode(m.Hello(version=1))) == 0x01
    assert peek_version(of13.encode(m.Hello(version=4))) == 0x04
    with pytest.raises(CodecError):
        peek_version(b"")


def test_codec_for_unknown_version():
    with pytest.raises(CodecError):
        codec_for(0x02)  # OpenFlow 1.1: not implemented


def test_decode_any_dispatches_by_version():
    for codec, version in ((of10, 0x01), (of13, 0x04)):
        raw = codec.encode(m.EchoRequest(payload=b"v"))
        msg, seen_version, rest = decode_any(raw)
        assert isinstance(msg, m.EchoRequest)
        assert seen_version == version
        assert rest == b""


def test_decode_any_mixed_stream():
    stream = of10.encode(m.Hello(version=1)) + of13.encode(m.Hello(version=4))
    first, v1, rest = decode_any(stream)
    second, v2, rest = decode_any(rest)
    assert (v1, v2) == (0x01, 0x04)
    assert rest == b""
