"""The switch-side agent: negotiation and message handling."""

import pytest

from repro.controlchannel import connect
from repro.dataplane import FlowEntry, Match, Network, Output
from repro.openflow import SwitchAgent, codec_for, messages as m, negotiate, peek_version
from repro.openflow.of10 import VERSION as OF10
from repro.openflow.of13 import VERSION as OF13
from repro.openflow.of10 import CodecError
from repro.sim import Simulator


class DriverStub:
    """Minimal driver end: collects decoded messages."""

    def __init__(self, sim, version=OF10):
        self.version = version
        self.received = []
        self._rx = b""

    def bind(self, conn):
        self.conn = conn
        conn.on_data = self._on_data

    def _on_data(self, data):
        self._rx += data
        while len(self._rx) >= 8:
            length = int.from_bytes(self._rx[2:4], "big")
            if len(self._rx) < length:
                return
            msg, self._rx = codec_for(peek_version(self._rx)).decode(self._rx)
            self.received.append(msg)

    def send(self, msg):
        self.conn.send(codec_for(self.version).encode(msg))

    def of(self, msg_type):
        return [r for r in self.received if isinstance(r, msg_type)]


@pytest.fixture
def rig():
    sim = Simulator()
    net = Network(sim)
    switch = net.add_switch("s")
    switch.add_port(1)
    switch.add_port(2)
    driver_end, agent_end = connect(sim)
    agent = SwitchAgent(switch, agent_end)
    stub = DriverStub(sim)
    stub.bind(driver_end)
    agent.start()
    stub.send(m.Hello(version=stub.version))
    sim.run_for(0.01)
    return sim, net, switch, agent, stub


def test_negotiate_function():
    assert negotiate(OF13, OF10) == OF10
    assert negotiate(OF10, OF13) == OF10
    assert negotiate(OF13, OF13) == OF13
    with pytest.raises(CodecError):
        negotiate(OF13, 0x02)  # OF 1.1: no codec


def test_hello_negotiates_version(rig):
    _sim, _net, _switch, agent, _stub = rig
    assert agent.version == OF10


def test_features_request_reply(rig):
    sim, _net, switch, _agent, stub = rig
    stub.send(m.FeaturesRequest())
    sim.run_for(0.01)
    replies = stub.of(m.FeaturesReply)
    assert len(replies) == 1
    assert replies[0].dpid == switch.dpid
    assert [p.port_no for p in replies[0].ports] == [1, 2]


def test_echo_mirrors_payload(rig):
    sim, _net, _switch, _agent, stub = rig
    stub.send(m.EchoRequest(payload=b"liveness", xid=55))
    sim.run_for(0.01)
    reply = stub.of(m.EchoReply)[0]
    assert reply.payload == b"liveness"
    assert reply.xid == 55


def test_barrier_reply_echoes_xid(rig):
    sim, _net, _switch, _agent, stub = rig
    stub.send(m.BarrierRequest(xid=9))
    sim.run_for(0.01)
    assert stub.of(m.BarrierReply)[0].xid == 9


def test_flow_mod_add_installs(rig):
    sim, _net, switch, _agent, stub = rig
    stub.send(m.FlowMod(match=Match(dl_type=0x800), actions=[Output(2)], priority=11, idle_timeout=6))
    sim.run_for(0.01)
    entries = switch.table.entries()
    assert len(entries) == 1
    assert entries[0].priority == 11
    assert entries[0].idle_timeout == 6.0


def test_flow_mod_delete_strict(rig):
    sim, _net, switch, _agent, stub = rig
    stub.send(m.FlowMod(match=Match(tp_dst=22), actions=[Output(1)], priority=5))
    sim.run_for(0.01)
    stub.send(m.FlowMod(match=Match(tp_dst=22), command=m.FlowModCommand.DELETE_STRICT, priority=6))
    sim.run_for(0.01)
    assert len(switch.table) == 1  # wrong priority: nothing deleted
    stub.send(m.FlowMod(match=Match(tp_dst=22), command=m.FlowModCommand.DELETE_STRICT, priority=5))
    sim.run_for(0.01)
    assert len(switch.table) == 0


def test_flow_mod_modify(rig):
    sim, _net, switch, _agent, stub = rig
    stub.send(m.FlowMod(match=Match(tp_dst=22), actions=[Output(1)], priority=5))
    sim.run_for(0.01)
    stub.send(m.FlowMod(match=Match(), command=m.FlowModCommand.MODIFY, actions=[Output(7)]))
    sim.run_for(0.01)
    assert switch.table.entries()[0].actions == [Output(7)]


def test_packet_in_forwarded_to_driver(rig):
    sim, net, switch, _agent, stub = rig
    host = net.add_host()
    net.attach_host(host, switch)  # port 3
    host.send_udp("10.0.0.99", 1, 2, b"hi")
    sim.run_for(0.01)
    packet_ins = stub.of(m.PacketIn)
    assert len(packet_ins) == 1
    assert packet_ins[0].in_port == 3


def test_port_mod_brings_port_down(rig):
    sim, _net, switch, _agent, stub = rig
    stub.send(m.PortMod(port_no=1, down=True))
    sim.run_for(0.01)
    assert not switch.ports[1].admin_up
    status = stub.of(m.PortStatus)
    assert any(p.port.port_no == 1 and p.port.config_down for p in status)


def test_port_stats_reply(rig):
    sim, _net, switch, _agent, stub = rig
    switch.ports[1].rx_packets = 42
    stub.send(m.PortStatsRequest(port_no=1))
    sim.run_for(0.01)
    entries = stub.of(m.PortStatsReply)[0].entries
    assert len(entries) == 1
    assert entries[0].rx_packets == 42


def test_flow_stats_reply_filters_by_match(rig):
    sim, _net, switch, _agent, stub = rig
    switch.install_flow(FlowEntry(match=Match(tp_dst=22, nw_proto=6, dl_type=0x800), actions=[Output(1)], priority=5))
    switch.install_flow(FlowEntry(match=Match(dl_type=0x806), actions=[Output(2)], priority=5))
    stub.send(m.FlowStatsRequest(match=Match(dl_type=0x800)))
    sim.run_for(0.01)
    entries = stub.of(m.FlowStatsReply)[0].entries
    assert len(entries) == 1
    assert entries[0].match.tp_dst == 22


def test_aggregate_stats(rig):
    sim, _net, switch, _agent, stub = rig
    entry = switch.install_flow(FlowEntry(match=Match(), actions=[Output(1)], priority=1))
    entry.hit(0.0, 100)
    stub.send(m.AggregateStatsRequest())
    sim.run_for(0.01)
    reply = stub.of(m.AggregateStatsReply)[0]
    assert (reply.flow_count, reply.packet_count, reply.byte_count) == (1, 1, 100)


def test_of13_session_uses_of13_bytes():
    sim = Simulator()
    net = Network(sim)
    switch = net.add_switch("s")
    driver_end, agent_end = connect(sim)
    agent = SwitchAgent(switch, agent_end)
    stub = DriverStub(sim, version=OF13)
    stub.bind(driver_end)
    agent.start()
    stub.send(m.Hello(version=OF13))
    stub.send(m.FeaturesRequest())
    stub.send(m.PortDescRequest())
    sim.run_for(0.01)
    assert agent.version == OF13
    assert stub.of(m.FeaturesReply)[0].ports == []  # 1.3: via port-desc
    assert isinstance(stub.of(m.PortDescReply)[0], m.PortDescReply)


def test_agent_detach_stops_forwarding(rig):
    sim, net, switch, agent, stub = rig
    agent.detach()
    host = net.add_host()
    net.attach_host(host, switch)
    host.send_udp("10.0.0.99", 1, 2, b"hi")
    sim.run_for(0.01)
    assert stub.of(m.PacketIn) == []


def test_garbage_bytes_produce_error_reply(rig):
    sim, _net, _switch, agent, stub = rig
    stub.conn.send(b"\x01\xff\x00\x0cXXXXXXXX")  # bad type, len 12
    sim.run_for(0.01)
    assert agent.errors_sent == 1
    assert stub.of(m.ErrorMsg)
