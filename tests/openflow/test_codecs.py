"""OF 1.0 and 1.3 wire codecs: round trips and error handling."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

import repro.openflow.of10 as of10
import repro.openflow.of13 as of13
from repro.dataplane import (
    FLOOD,
    Match,
    Output,
    SetDlDst,
    SetNwSrc,
    SetTpDst,
    SetVlan,
    StripVlan,
)
from repro.netpkt import MacAddress, cidr, ip
from repro.openflow import messages as m
from repro.openflow.of10 import CodecError

CODECS = [of10, of13]
RICH_MATCH = Match(
    in_port=3,
    dl_src=MacAddress("02:00:00:00:00:01"),
    dl_dst=MacAddress("02:00:00:00:00:02"),
    dl_type=0x0800,
    dl_vlan=100,
    dl_vlan_pcp=5,
    nw_src=cidr("10.1.0.0/16"),
    nw_dst=cidr("10.2.3.4/32"),
    nw_proto=6,
    tp_src=1000,
    tp_dst=22,
)


@pytest.mark.parametrize("codec", CODECS, ids=["of10", "of13"])
def test_match_roundtrip_rich(codec):
    if codec is of10:
        packed = codec.pack_match(RICH_MATCH)
        assert codec.unpack_match(packed) == RICH_MATCH
    else:
        packed = codec.pack_match(RICH_MATCH)
        match, consumed = codec.unpack_match(packed)
        assert consumed == len(packed)
        assert match == RICH_MATCH


@pytest.mark.parametrize("codec", CODECS, ids=["of10", "of13"])
def test_match_roundtrip_wildcard(codec):
    packed = codec.pack_match(Match())
    if codec is of10:
        assert codec.unpack_match(packed) == Match()
    else:
        assert codec.unpack_match(packed)[0] == Match()


def test_of10_match_is_fixed_40_bytes():
    assert len(of10.pack_match(Match())) == 40
    assert len(of10.pack_match(RICH_MATCH)) == 40


def test_of13_match_size_scales_with_fields():
    assert len(of13.pack_match(Match())) < len(of13.pack_match(RICH_MATCH))
    assert len(of13.pack_match(RICH_MATCH)) % 8 == 0


@pytest.mark.parametrize("codec", CODECS, ids=["of10", "of13"])
def test_actions_roundtrip(codec):
    actions = [
        SetDlDst(MacAddress(7)),
        SetNwSrc(ip("1.2.3.4")),
        SetTpDst(443),
        SetVlan(12),
        StripVlan(),
        Output(4),
        Output(FLOOD),
    ]
    assert codec.unpack_actions(codec.pack_actions(actions)) == actions


@pytest.mark.parametrize("codec", CODECS, ids=["of10", "of13"])
@pytest.mark.parametrize(
    "msg",
    [
        m.Hello(version=1),
        m.EchoRequest(payload=b"probe"),
        m.EchoReply(payload=b"probe"),
        m.ErrorMsg(err_type=1, err_code=2, data=b"prefix"),
        m.FeaturesRequest(),
        m.BarrierRequest(),
        m.BarrierReply(),
        m.PortMod(port_no=2, down=True),
        m.PacketOut(buffer_id=5, in_port=1, actions=[Output(2)], data=b"frame"),
        m.FlowMod(match=Match(tp_dst=22, nw_proto=6, dl_type=0x800), actions=[Output(1)], priority=7, idle_timeout=3),
        m.FlowRemoved(match=Match(dl_type=0x800), cookie=9, priority=4, packet_count=10, byte_count=1000),
        m.PortStatsRequest(port_no=0xFFFF),
        m.AggregateStatsReply(packet_count=1, byte_count=2, flow_count=3),
    ],
    ids=lambda msg: type(msg).__name__,
)
def test_message_roundtrip(codec, msg):
    raw = codec.encode(msg)
    decoded, rest = codec.decode(raw)
    assert rest == b""
    assert decoded.xid == msg.xid
    for attr in ("payload", "match", "actions", "priority", "data", "buffer_id", "packet_count", "port_no", "down"):
        if hasattr(msg, attr):
            assert getattr(decoded, attr) == getattr(msg, attr), attr


@pytest.mark.parametrize("codec", CODECS, ids=["of10", "of13"])
def test_packet_in_roundtrip(codec):
    msg = m.PacketIn(buffer_id=77, total_len=1500, in_port=9, reason=m.PacketInReasonWire.ACTION, data=b"\x01" * 60)
    decoded, _ = codec.decode(codec.encode(msg))
    assert decoded.buffer_id == 77
    assert decoded.in_port == 9
    assert decoded.reason is m.PacketInReasonWire.ACTION
    assert decoded.data == b"\x01" * 60


def test_of10_features_reply_with_ports():
    msg = m.FeaturesReply(
        dpid=0xABCDEF,
        n_buffers=128,
        n_tables=2,
        capabilities=7,
        ports=[
            m.PortDesc(1, b"\x02" * 6, "eth1"),
            m.PortDesc(2, b"\x03" * 6, "eth2", config_down=True, link_down=True),
        ],
    )
    decoded, _ = of10.decode(of10.encode(msg))
    assert decoded.dpid == 0xABCDEF
    assert [p.port_no for p in decoded.ports] == [1, 2]
    assert decoded.ports[1].config_down and decoded.ports[1].link_down


def test_of13_port_desc_multipart():
    msg = m.PortDescReply(ports=[m.PortDesc(4, b"\x09" * 6, "p4")])
    decoded, _ = of13.decode(of13.encode(msg))
    assert isinstance(decoded, m.PortDescReply)
    assert decoded.ports[0].name == "p4"


@pytest.mark.parametrize("codec", CODECS, ids=["of10", "of13"])
def test_flow_stats_roundtrip(codec):
    reply = m.FlowStatsReply(
        entries=[
            m.FlowStatsEntry(
                match=Match(dl_type=0x800, tp_dst=80, nw_proto=6),
                priority=5,
                duration_sec=10,
                idle_timeout=30,
                cookie=99,
                packet_count=1000,
                byte_count=64000,
                actions=[Output(2)],
            ),
            m.FlowStatsEntry(match=Match(), priority=1, actions=[]),
        ]
    )
    decoded, _ = codec.decode(codec.encode(reply))
    assert len(decoded.entries) == 2
    first = decoded.entries[0]
    assert first.match == reply.entries[0].match
    assert (first.packet_count, first.byte_count, first.cookie) == (1000, 64000, 99)
    assert first.actions == [Output(2)]


@pytest.mark.parametrize("codec", CODECS, ids=["of10", "of13"])
def test_port_stats_roundtrip(codec):
    reply = m.PortStatsReply(entries=[m.PortStatsEntry(port_no=3, rx_packets=5, tx_packets=6, rx_bytes=7, tx_bytes=8, tx_dropped=1)])
    decoded, _ = codec.decode(codec.encode(reply))
    entry = decoded.entries[0]
    assert (entry.port_no, entry.rx_packets, entry.tx_bytes, entry.tx_dropped) == (3, 5, 8, 1)


@pytest.mark.parametrize("codec", CODECS, ids=["of10", "of13"])
def test_flow_mod_command_flags(codec):
    for command in m.FlowModCommand:
        msg = m.FlowMod(match=Match(dl_type=0x800), command=command, send_flow_rem=True)
        decoded, _ = codec.decode(codec.encode(msg))
        assert decoded.command is command
        assert decoded.send_flow_rem


def test_decode_truncated_header():
    with pytest.raises(CodecError):
        of10.decode(b"\x01\x00")


def test_decode_wrong_version():
    raw = of10.encode(m.Hello(version=1))
    with pytest.raises(CodecError):
        of13.decode(raw)


def test_decode_truncated_body():
    raw = of10.encode(m.FlowMod(match=Match()))
    with pytest.raises(CodecError):
        of10.decode(raw[: len(raw) - 4])


def test_stream_of_messages_decodes_sequentially():
    stream = of10.encode(m.Hello(version=1, xid=1)) + of10.encode(m.EchoRequest(payload=b"x", xid=2))
    first, rest = of10.decode(stream)
    second, rest = of10.decode(rest)
    assert isinstance(first, m.Hello) and isinstance(second, m.EchoRequest)
    assert rest == b""


@given(
    dl_type=st.sampled_from([None, 0x0800, 0x0806]),
    addr=st.integers(min_value=0, max_value=2**32 - 1),
    prefix=st.integers(min_value=0, max_value=32),
    tp_dst=st.one_of(st.none(), st.integers(min_value=0, max_value=65535)),
    priority=st.integers(min_value=0, max_value=0xFFFF),
)
@pytest.mark.parametrize("codec", CODECS, ids=["of10", "of13"])
def test_flowmod_roundtrip_property(codec, dl_type, addr, prefix, tp_dst, priority):
    from ipaddress import IPv4Network

    network = IPv4Network((addr, prefix), strict=False) if prefix else None
    match = Match(
        dl_type=dl_type,
        nw_dst=network,
        nw_proto=6 if tp_dst is not None else None,
        tp_dst=tp_dst,
    )
    msg = m.FlowMod(match=match, actions=[Output(1)], priority=priority)
    decoded, _ = codec.decode(codec.encode(msg))
    assert decoded.match == match
    assert decoded.priority == priority
