"""yancperf: finding kinds, cost polynomials, CLI discipline, calibration."""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import yancperf as ypf
from repro.analysis.cli import ExitCode, main
from repro.analysis.core import SourceFile
from repro.analysis.loader import load_files
from repro.analysis.yancperf import CostExpr, CostIndex, KINDS, analyze_yancperf
from repro.analysis.yancperf.checker import analyze_sources
from repro.analysis.yancperf.report import cost_report

from tests.analysis.test_yancpath import expected_findings

HERE = Path(__file__).parent
BAD = HERE / "fixtures" / "bad" / "yancperf.py"
OK = HERE / "fixtures" / "ok" / "yancperf.py"
BASELINE = HERE / "yancperf_baseline.json"
REPO = HERE.parents[1]


def findings_of(path: Path) -> list[tuple[str, int]]:
    found = analyze_yancperf([str(path)])
    assert all(f.path == str(path) for f in found)
    return sorted(((f.rule, f.line) for f in found), key=lambda pair: (pair[1], pair[0]))


# -- finding kinds against the fixture pair -------------------------------------------


def test_bad_fixture_fires_every_kind():
    want = expected_findings(BAD)
    assert {rule for rule, _ in want} == set(KINDS), "fixture must seed all kinds"
    assert findings_of(BAD) == want


def test_ok_fixture_is_clean():
    assert findings_of(OK) == []


@pytest.mark.parametrize("kind", KINDS)
def test_every_kind_is_seeded_once(kind):
    assert any(rule == kind for rule, _ in expected_findings(BAD))


# -- the cost model -------------------------------------------------------------------


def _index_of(text: str) -> CostIndex:
    return CostIndex([SourceFile.parse("app.py", textwrap.dedent(text))])


def test_loop_depth_multiplies_cost():
    index = _index_of(
        """\
        def flat(sc, path):
            sc.stat(path)

        def nested(sc, paths):
            for a in paths:
                for b in paths:
                    sc.stat(f"{a}/{b}")
        """
    )
    assert index.cost(index.find(None, "flat")).render() == "1"
    assert index.cost(index.find(None, "nested")).render() == "n^2"


def test_facade_helpers_decompose_into_real_syscalls():
    index = _index_of(
        """\
        def save(sc, path):
            sc.write_text(path, "x")  # open + write + close
            sc.makedirs(path)         # exists + mkdir per component
        """
    )
    assert index.cost(index.find(None, "save")).evaluate(1) == 5


def test_callee_cost_rolls_up_shifted_by_call_depth():
    index = _index_of(
        """\
        def helper(sc, path):
            sc.stat(path)
            sc.unlink(path)

        def caller(sc, paths):
            for path in paths:
                helper(sc, path)
        """
    )
    decl = index.find(None, "caller")
    assert index.cost(decl).render() == "2n"
    assert index.rolled_callees(decl) == 1


def test_recursion_yields_an_approx_floor():
    index = _index_of(
        """\
        def walk_down(sc, path):
            sc.stat(path)
            for name in sc.listdir(path):
                walk_down(sc, f"{path}/{name}")
        """
    )
    cost = index.cost(index.find(None, "walk_down"))
    assert cost.approx
    assert cost.evaluate(1) >= 2  # stat + listdir at least


def test_cost_expr_renders_and_ranks():
    expr = CostExpr()
    expr.add_term(2, 3)
    expr.add_term(0, 7)
    assert expr.render() == "3n^2 + 7"
    assert expr.sort_key() > CostExpr(coeffs={1: 50}).sort_key()


# -- the report ranks the whole tree --------------------------------------------------


def test_report_ranks_at_least_25_functions_with_rollup():
    rows = cost_report([str(REPO / "src")])
    assert len(rows) >= 25
    assert rows == sorted(rows, key=lambda r: r.cost.sort_key(), reverse=True)
    assert any(row.rolled > 0 for row in rows[:25]), "rollup must reach the top"
    names = {row.name for row in rows}
    assert "YancClient.read_events" in names


def test_report_cli_json(capsys):
    rc = main(["yancperf", str(BAD), "--report", "--top", "3", "--json"])
    assert rc == ExitCode.CLEAN
    payload = json.loads(capsys.readouterr().out)
    assert 0 < len(payload) <= 3
    assert {"name", "path", "line", "cost", "degree", "at_n8", "rolled_callees"} <= set(payload[0])


# -- CLI discipline -------------------------------------------------------------------


def test_cli_findings_exit_one(capsys):
    rc = main(["yancperf", str(BAD)])
    out = capsys.readouterr().out
    assert rc == ExitCode.FINDINGS
    for rule, line in expected_findings(BAD):
        assert f"{BAD}:{line}:" in out
        assert f"[{rule}]" in out


def test_cli_clean_exit_zero(capsys):
    rc = main(["yancperf", str(OK)])
    assert rc == ExitCode.CLEAN
    assert "yancperf: 0 finding(s)" in capsys.readouterr().out


def test_cli_json_output(capsys):
    rc = main(["yancperf", str(BAD), "--json"])
    assert rc == ExitCode.FINDINGS
    payload = json.loads(capsys.readouterr().out)
    assert sorted((rec["rule"], rec["line"]) for rec in payload) == sorted(expected_findings(BAD))


def test_cli_baseline_filters_known_findings(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    assert main(["yancperf", str(BAD), "--out", str(baseline)]) == ExitCode.FINDINGS
    capsys.readouterr()
    rc = main(["yancperf", str(BAD), "--baseline", str(baseline)])
    out = capsys.readouterr().out
    assert rc == ExitCode.CLEAN
    assert "(baseline)" in out and "0 finding(s)" in out


def test_report_and_calibrate_are_mutually_exclusive(capsys):
    assert main(["yancperf", "--report", "--calibrate"]) == ExitCode.USAGE
    assert "mutually exclusive" in capsys.readouterr().err


def test_cli_internal_error_exit_three(monkeypatch, capsys):
    def boom(paths):
        raise RuntimeError("synthetic analyzer crash")

    monkeypatch.setattr("repro.analysis.yancperf.checker.analyze_yancperf", boom)
    rc = main(["yancperf", str(OK)])
    assert rc == ExitCode.INTERNAL
    assert "internal error" in capsys.readouterr().err


# -- the checked-in baseline stays fresh ----------------------------------------------


def test_checked_in_baseline_matches_the_tree(monkeypatch):
    """The CI gate's baseline must exactly mirror today's sweep.

    A stale extra entry would mask a regression at that site; a missing
    entry fails CI.  Regenerate with:
        python -m repro.analysis yancperf src examples --out tests/analysis/yancperf_baseline.json
    """
    monkeypatch.chdir(REPO)  # the baseline records repo-relative paths
    sweep = {(f.rule, f.path, f.line) for f in analyze_yancperf(["src", "examples"])}
    recorded = {
        (rec["rule"], rec["path"], rec["line"]) for rec in json.loads(BASELINE.read_text())
    }
    assert sweep == recorded


def test_fixed_findings_stay_fixed():
    """The PR's measured fixes must not be re-reported (they are not baselined)."""
    fixed_kinds = {"readdir-then-stat"}
    findings = analyze_yancperf([str(REPO / "src")])
    toolbox = [f for f in findings if f.path.endswith("shell/toolbox.py")]
    assert not [f for f in toolbox if f.rule in fixed_kinds]
    topology = [f for f in findings if f.path.endswith("apps/topology.py")]
    assert not [f for f in topology if f.rule == "path-reresolve"]


def test_indexed_flowtable_lookup_not_flagged():
    """The tuple-space FlowTable probes buckets; no linear-table-scan."""
    findings = analyze_yancperf([str(REPO / "src" / "repro" / "dataplane" / "flowtable.py")])
    assert not [f for f in findings if f.rule == "linear-table-scan"]


# -- entries provenance (indirected full-table scans) ---------------------------------


def test_indirected_entries_scan_still_fires():
    """Stashing table.entries() in a local does not launder the scan."""
    assert _analyze_text(
        """\
        def lookup(table, key):
            rows = table.entries()
            for entry in rows:
                if entry.key == key:
                    return entry
            return None
        """
    ) == [("linear-table-scan", 3)]


def test_sorted_wrapper_keeps_entries_provenance():
    assert _analyze_text(
        """\
        def classify(table, key):
            rows = sorted(table.entries())
            for entry in rows:
                if entry.key == key:
                    return entry
        """
    ) == [("linear-table-scan", 3)]


def test_rebinding_clears_entries_provenance():
    """A variable rebound to something else stops counting as table rows."""
    assert _analyze_text(
        """\
        def lookup(table, bucket_index, key):
            rows = table.entries()
            rows = bucket_index.get(key, [])
            for entry in rows:
                if entry.key == key:
                    return entry
        """
    ) == []


# -- calibration ----------------------------------------------------------------------


def test_calibration_static_bounds_hold_live():
    from repro.analysis.yancperf.calibrate import run_calibration

    rows = run_calibration([str(REPO / "src")])
    assert len(rows) == 4
    for row in rows:
        assert row.ok, f"{row.function}: live {row.live} > bound {row.bound}"
        assert row.bound > 0


# -- suppressions ---------------------------------------------------------------------


def _analyze_text(text: str) -> list[tuple[str, int]]:
    src = SourceFile.parse("app.py", textwrap.dedent(text))
    return [(f.rule, f.line) for f in analyze_sources([src])]


def test_disable_comment_silences_yancperf():
    assert _analyze_text(
        """\
        def push_all(sc, flows):
            for flow in flows:  # yancperf: disable=syscall-in-loop
                sc.write_text(f"/tmp/{flow}/priority", "1")
        """
    ) == []


def test_yanclint_spelling_also_works():
    assert _analyze_text(
        """\
        def stat_all(sc, path):
            return [
                sc.lstat(f"{path}/{n}")  # yanclint: disable=readdir-then-stat
                for n in sc.listdir(path)
            ]
        """
    ) == []


# -- public surface -------------------------------------------------------------------


def test_package_exports():
    assert ypf.KINDS == KINDS
    assert callable(ypf.analyze_yancperf)
    assert ypf.STORM_THRESHOLD >= 1
