"""yancsan: runtime detection of fd leaks, unvalidated writes, notify
inconsistencies, and flow-commit protocol violations."""

from __future__ import annotations

import pytest

from repro.analysis import sanitizer
from repro.analysis.sanitizer import Sanitizer
from repro.proc import ON_CRASH, Process, ProcessTable
from repro.vfs import O_APPEND, O_CREAT, O_WRONLY
from repro.vfs.notify import EventMask


@pytest.fixture
def san():
    s = Sanitizer().install()
    yield s
    s.uninstall()
    # Deliberate violations land in the YANCSAN-env sanitizer too (when
    # enabled); clear them so the autouse teardown check stays green.
    sanitizer.reset_all()


def kinds(findings):
    return [f.kind for f in findings]


def _make_flow(sc, name="f"):
    sc.mkdir("/net/switches/s1")
    sc.mkdir(f"/net/switches/s1/flows/{name}")
    base = f"/net/switches/s1/flows/{name}"
    sc.write_text(f"{base}/match.dl_type", "0x800")
    sc.write_text(f"{base}/action.out", "1")
    sc.write_text(f"{base}/priority", "5")
    return base


def test_clean_run_has_no_findings(yanc_sc, san):
    base = _make_flow(yanc_sc)
    yanc_sc.write_text(f"{base}/version", "1")
    assert san.check() == []


def test_fd_leak_reported(sc, san):
    fd = sc.open("/leaky", O_WRONLY | O_CREAT)
    sc.write(fd, b"x")
    findings = san.check()
    assert kinds(findings) == ["fd-leak"]
    assert "/leaky" in findings[0].detail
    sc.close(fd)
    assert san.check() == []


def test_leaked_writable_attribute_fd_is_validation_hole(yanc_sc, san):
    base = _make_flow(yanc_sc)
    fd = yanc_sc.open(f"{base}/priority", O_WRONLY)
    yanc_sc.write(fd, b"7")
    findings = san.check()
    assert "fd-leak" in kinds(findings)
    assert "unvalidated-write" in kinds(findings)
    yanc_sc.close(fd)


def test_direct_set_content_bypassing_validation(yanc_sc, san):
    base = _make_flow(yanc_sc)
    inode = yanc_sc.vfs.resolve(yanc_sc.ns, yanc_sc.cred, f"{base}/priority")
    inode.set_content(b"not-a-number")
    findings = san.check()
    assert kinds(findings) == ["unvalidated-write"]
    assert "not-a-number" in findings[0].detail


def test_version_regression_flagged(yanc_sc, san):
    base = _make_flow(yanc_sc)
    yanc_sc.write_text(f"{base}/version", "2")
    yanc_sc.write_text(f"{base}/version", "1")
    findings = san.check()
    assert kinds(findings) == ["flow-commit"]
    assert "decreased 2 -> 1" in findings[0].detail


def test_uncommitted_spec_mutation_flagged(yanc_sc, san):
    base = _make_flow(yanc_sc)
    yanc_sc.write_text(f"{base}/version", "1")
    # The torn commit is the point of this test (yancsan must flag it), so
    # yancrace is told to look away.
    yanc_sc.write_text(f"{base}/priority", "9")  # yancrace: disable=torn-commit
    findings = san.check()
    assert kinds(findings) == ["flow-commit"]
    assert "'priority'" in findings[0].detail


def test_commit_clears_pending_mutation(yanc_sc, san):
    base = _make_flow(yanc_sc)
    yanc_sc.write_text(f"{base}/version", "1")
    yanc_sc.write_text(f"{base}/priority", "9")
    yanc_sc.write_text(f"{base}/version", "2")
    assert san.check() == []


def test_notify_event_contradicting_tree_state(sc, san):
    sc.mkdir("/d")
    sc.write_text("/d/real", "x")
    parent = sc.vfs.resolve(sc.ns, sc.cred, "/d")
    child = sc.vfs.resolve(sc.ns, sc.cred, "/d/real")
    # IN_DELETE for a child that is still attached
    sc.vfs.hub.emit_dirent(parent, child, EventMask.IN_DELETE, "real")
    # IN_CREATE for a name the directory does not hold
    sc.vfs.hub.emit_dirent(parent, child, EventMask.IN_CREATE, "ghost")
    findings = san.check()
    assert kinds(findings) == ["notify-inconsistency", "notify-inconsistency"]


def test_unpaired_move_cookie(sc, san):
    sc.mkdir("/d")
    sc.write_text("/d/a", "x")
    parent = sc.vfs.resolve(sc.ns, sc.cred, "/d")
    child = sc.vfs.resolve(sc.ns, sc.cred, "/d/a")
    cookie = sc.vfs.hub.next_cookie()
    parent.detach("a", emit_mask=int(EventMask.IN_MOVED_FROM), cookie=cookie)
    findings = san.check()
    assert kinds(findings) == ["notify-inconsistency"]
    assert "without its pair" in findings[0].detail
    parent.attach("a", child, emit_mask=int(EventMask.IN_MOVED_TO), cookie=cookie)
    assert san.check() == []


def test_rename_emits_paired_cookies(sc, san):
    sc.mkdir("/d")
    sc.write_text("/d/a", "x")
    sc.rename("/d/a", "/d/b")
    assert san.check() == []


def test_rollback_restore_is_not_a_finding(yanc_sc, san):
    from repro.vfs.errors import InvalidArgument

    base = _make_flow(yanc_sc)
    with pytest.raises(InvalidArgument):
        yanc_sc.write_text(f"{base}/priority", "bogus")
    # close-time rollback ran set_content with the last-valid bytes;
    # the sanitizer must not mistake the restore for a bypass
    assert yanc_sc.read_text(f"{base}/priority") == "5"
    assert san.check() == []


def test_reset_clears_state(sc, san):
    fd = sc.open("/x", O_WRONLY | O_CREAT)
    san.reset()
    assert san.check() == []
    sc.close(fd)


def test_uninstall_stops_recording(sc, san):
    san.uninstall()
    fd = sc.open("/x", O_WRONLY | O_CREAT)
    assert san.check() == []
    sc.close(fd)


def test_supervised_restart_recycles_descriptors_cleanly(sim, sc, san):
    """A crash/restart cycle tears down and re-opens the process's event
    loop; with proper per-event file discipline nothing shows as leaked."""

    class Flaky(Process):
        proc_name = "flaky"

        def __init__(self, ctx, sim):
            super().__init__(ctx, sim)
            self.fail_next = False
            self.handled = []

        def on_start(self):
            self.watch("/spool", EventMask.IN_CREATE, ("dir",))

        def on_event(self, ctx, event):
            if self.fail_next:
                self.fail_next = False
                raise RuntimeError("injected fault")
            self.sc.write_text(f"/out/{event.name}", "ok")
            self.handled.append(event.name)

    table = ProcessTable(sc, sim)
    sc.mkdir("/spool")
    sc.mkdir("/out")
    proc = Flaky(sc.spawn(), sim)
    table.register(proc)
    table.supervise(proc, ON_CRASH)
    proc.start()
    sc.write_text("/spool/a", "1")
    sim.run()
    assert proc.handled == ["a"]
    proc.fail_next = True
    sc.write_text("/spool/b", "1")
    sim.run()  # crash, then the supervised restart (backoff elapses in-run)
    assert proc.crashes == 1 and proc.restarts == 1
    sc.write_text("/spool/c", "1")
    sim.run()
    assert "c" in proc.handled
    assert san.check() == []


def test_exec_takeover_keeps_leaked_fd_findings(sim, sc, san):
    """exec-style takeover adopts the donor's syscall context as-is: a
    descriptor the old image leaked is still open, and still reported."""
    table = ProcessTable(sc, sim)
    donor = table.spawn(name="legacy")
    fd = donor.sc.open("/leaked", O_WRONLY | O_CREAT)
    donor.sc.write(fd, b"x")
    successor = Process(donor, name="takeover")
    assert successor.pid == donor.pid and successor.sc is donor.sc
    findings = san.check()
    assert kinds(findings) == ["fd-leak"]
    assert "/leaked" in findings[0].detail
    successor.sc.close(fd)
    assert san.check() == []


def test_install_from_env(monkeypatch):
    prior = sanitizer.active()
    monkeypatch.setenv("YANCSAN", "0")
    assert not sanitizer.enabled()
    monkeypatch.setenv("YANCSAN", "1")
    assert sanitizer.enabled()
    env_san = sanitizer.install_from_env()
    try:
        assert env_san is not None and sanitizer.active() is env_san
        assert sanitizer.install_from_env() is env_san  # idempotent
    finally:
        if prior is None:
            env_san.uninstall()
        env_san.reset()
