"""yanccrash: static finding kinds, the crash-point explorer, CLI discipline."""

from __future__ import annotations

import json
import re
import textwrap
from pathlib import Path

import pytest

from repro.analysis import race, sanitizer
from repro.analysis import yanccrash as yc
from repro.analysis.cli import ExitCode, main
from repro.analysis.core import SourceFile
from repro.analysis.yanccrash.checker import KINDS, analyze_sources, analyze_yanccrash
from repro.analysis.yanccrash.explorer import ReplayTree, explore
from repro.analysis.yanccrash.recorder import CrashRecorder
from repro.dataplane.actions import Output
from repro.dataplane.match import Match
from repro.vfs.syscalls import Syscalls
from repro.vfs.vfs import VirtualFileSystem
from repro.yancfs.client import YancClient, mount_yancfs

HERE = Path(__file__).parent
BAD = HERE / "fixtures" / "bad" / "yanccrash.py"
OK = HERE / "fixtures" / "ok" / "yanccrash.py"
BASELINE = HERE / "yanccrash_baseline.json"

_BAD_MARK = re.compile(r"#\s*bad:\s*([\w,\-]+)")


def expected_findings(path: Path) -> list[tuple[str, int]]:
    pairs = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        match = _BAD_MARK.search(line)
        if match:
            pairs.extend((rule, lineno) for rule in match.group(1).split(","))
    return sorted(pairs, key=lambda pair: (pair[1], pair[0]))


def findings_of(path: Path) -> list[tuple[str, int]]:
    found = analyze_yanccrash([str(path)])
    assert all(f.path == str(path) for f in found)
    return sorted(((f.rule, f.line) for f in found), key=lambda pair: (pair[1], pair[0]))


# -- static pass: finding kinds against the fixture pair ------------------------------


def test_bad_fixture_fires_every_kind():
    want = expected_findings(BAD)
    assert {rule for rule, _ in want} == set(KINDS), "fixture must seed all kinds"
    assert findings_of(BAD) == want


def test_ok_fixture_is_clean():
    assert findings_of(OK) == []


@pytest.mark.parametrize("kind", KINDS)
def test_every_kind_is_seeded_once(kind):
    assert any(rule == kind for rule, _ in expected_findings(BAD))


def test_shipped_tree_is_yanccrash_clean():
    repo = HERE.parents[1]
    assert analyze_yanccrash([str(repo / "src"), str(repo / "examples")]) == []


def test_checked_in_baseline_is_empty():
    # The sweep is clean, so the baseline CI enforces must stay empty:
    # new findings fail the build instead of silently joining a blob.
    assert json.loads(BASELINE.read_text()) == []


# -- suppressions ---------------------------------------------------------------------


def _analyze_text(text: str) -> list[tuple[str, int]]:
    src = SourceFile.parse("app.py", textwrap.dedent(text))
    return [(f.rule, f.line) for f in analyze_sources([src])]


def test_disable_comment_silences_yanccrash():
    body = """\
    def publish(sc, name):
        out = f"/var/run/spool/{name}"
        sc.mkdir(out){comment}
        sc.write_text(f"{out}/head", "h")
        sc.write_text(f"{out}/body", "b")
    """
    noisy = _analyze_text(body.replace("{comment}", ""))
    assert ("non-atomic-publish", 3) in noisy
    quiet = _analyze_text(body.replace("{comment}", "  # yanccrash: disable=non-atomic-publish"))
    assert quiet == []


def test_middlebox_driver_publishes_atomically():
    # Regression: MiddleboxDriver.attach used to mkdir the device dir in
    # place and fill attributes afterwards; it now assembles under a
    # dot-temp and renames.  The suppressed _write_entry mkdir (state
    # entries stay plain files for cp/mv migration) must stay suppressed.
    repo = HERE.parents[1]
    paths = [
        str(repo / "src" / "repro" / "middlebox" / "driver.py"),
        # recovery.py carries the project's YANCCRASH_RECOVERS declaration
        # for /net; without it every dot-temp would read as unrecovered.
        str(repo / "src" / "repro" / "yancfs" / "recovery.py"),
    ]
    assert analyze_yanccrash(paths) == []


# -- the durable-op recorder ----------------------------------------------------------


def _record(fn, roots=("/net", "/var")):
    vfs = VirtualFileSystem()
    sc = Syscalls(vfs)
    recorder = CrashRecorder(roots=roots).install()
    try:
        fn(sc)
    finally:
        recorder.uninstall()
    return recorder.ops


def test_recorder_captures_only_in_scope_ops():
    def workload(sc):
        sc.makedirs("/var/spool")
        sc.write_text("/var/spool/a", "x")
        sc.makedirs("/tmp/out")
        sc.write_text("/tmp/out/b", "y")  # /tmp is out of scope

    ops = _record(workload)
    paths = [op.args[0] for op in ops if op.op in ("open", "mkdir")]
    assert any(p.startswith("/var/spool") for p in paths)
    assert not any(p.startswith("/tmp") for p in paths)


def test_recorder_is_inert_when_not_installed():
    vfs = VirtualFileSystem()
    sc = Syscalls(vfs)
    recorder = CrashRecorder()
    sc.makedirs("/var/spool")
    sc.write_text("/var/spool/a", "x")
    assert recorder.ops == []


def test_recorder_tags_uring_batches():
    def workload(sc):
        sc.makedirs("/var/spool")
        ring = sc.io_uring_setup(entries=8)
        ring.prep("mkdir", "/var/spool/d", link=True)
        ring.prep_write_file("/var/spool/d/f", b"x")
        ring.submit()

    ops = _record(workload)
    batched = [op for op in ops if op.batch is not None]
    assert batched, "ops dispatched inside submit() must carry a batch tag"
    assert len({op.batch for op in batched}) == 1


# -- the crash-point explorer ---------------------------------------------------------


def _clean_flow_workload(sc):
    mount_yancfs(sc, "/net")
    client = YancClient(sc)
    client.create_switch("s1")
    client.create_flow("s1", "f1", Match(in_port=3), [Output(1)])


def test_explorer_clean_workload_has_no_violations():
    result = explore(_record(_clean_flow_workload))
    assert result.violations == []
    assert result.prefixes == result.ops + 1  # every prefix, plus the empty trace


def test_explorer_recommit_is_crash_safe():
    # Regression: commit_flow used to rewrite version via write_text,
    # whose O_TRUNC open exposed an empty (= 0) version to a crash —
    # recovery would then sweep a committed flow as torn.  The pwrite
    # commit keeps every crash prefix clean.
    def workload(sc):
        _clean_flow_workload(sc)
        client = YancClient(sc)
        client.commit_flow("s1", "f1")
        client.commit_flow("s1", "f1")

    result = explore(_record(workload))
    assert result.violations == []


def test_explorer_flags_truncating_version_rewrite():
    # The old commit idiom, spelled raw: the checker must still see the
    # hazard the pwrite fix removed.
    def workload(sc):
        _clean_flow_workload(sc)
        sc.write_text("/net/switches/s1/flows/f1/version", "2")

    result = explore(_record(workload))
    assert any(v.kind == "version-regression" for v in result.violations)


def test_explorer_flags_version_regression():
    def workload(sc):
        _clean_flow_workload(sc)
        fd = sc.open("/net/switches/s1/flows/f1/version", 0o1)  # O_WRONLY
        sc.pwrite(fd, b"0", 0)
        sc.close(fd)

    result = explore(_record(workload))
    # The regression is deliberate; it lands in the YANCSAN-env sanitizer
    # too (live run and replay), so clear it for the autouse teardown.
    sanitizer.reset_all()
    assert any(v.kind == "version-regression" for v in result.violations)


def test_explorer_flags_write_into_published_entry():
    def workload(sc):
        sc.makedirs("/var/spool")
        sc.mkdir("/var/spool/.e1")
        sc.write_text("/var/spool/.e1/data", "d")
        sc.rename("/var/spool/.e1", "/var/spool/e1")
        sc.write_text("/var/spool/e1/late", "x")

    result = explore(_record(workload))
    assert any(v.kind == "torn-publication" for v in result.violations)


def test_explorer_flags_spec_write_after_commit():
    def workload(sc):
        _clean_flow_workload(sc)
        sc.write_text("/net/switches/s1/flows/f1/match.in_port", "4")

    result = explore(_record(workload))
    # The uncommitted spec rewrite is deliberate; yancsan and yancrace
    # flag it too (live run and replay).
    sanitizer.reset_all()
    race.reset_all()
    assert any(v.kind == "spec-after-commit" for v in result.violations)


def test_explorer_spec_rewrite_with_recommit_is_clean():
    def workload(sc):
        _clean_flow_workload(sc)
        client = YancClient(sc)
        sc.write_text("/net/switches/s1/flows/f1/match.in_port", "4")
        client.commit_flow("s1", "f1")

    result = explore(_record(workload))
    assert not any(v.kind == "spec-after-commit" for v in result.violations)


def test_explorer_consumed_publication_is_legal():
    def workload(sc):
        sc.makedirs("/var/spool")
        sc.mkdir("/var/spool/.e1")
        sc.write_text("/var/spool/.e1/data", "d")
        sc.rename("/var/spool/.e1", "/var/spool/e1")
        sc.unlink("/var/spool/e1/data")  # consumer drains...
        sc.rmdir("/var/spool/e1")  # ...and removes the entry

    result = explore(_record(workload))
    assert result.violations == []


def test_explorer_covers_mid_chain_severs():
    # Crash prefixes cut inside a submit()'s dispatched run; the chained
    # create (specs linked into the version tail) must survive every cut.
    def workload(sc):
        mount_yancfs(sc, "/net")
        client = YancClient(sc)
        client.create_switch("s1")
        ring = sc.io_uring_setup(entries=16)
        base = "/net/switches/s1/flows/f1"
        ring.prep("mkdir", base, link=True)
        ring.prep_write_file(f"{base}/match.in_port", b"3", link=True)
        ring.prep_write_file(f"{base}/action.out", b"1", link=True)
        ring.prep_write_file(f"{base}/version", b"1")
        ring.submit()

    ops = _record(workload)
    assert any(op.batch is not None for op in ops)
    result = explore(ops)
    assert result.violations == []


def test_explorer_enumerates_flush_window_subsets():
    from repro.libyanc.fastpath import LibYanc

    def workload(sc):
        fs = mount_yancfs(sc, "/net")
        client = YancClient(sc)
        client.create_switch("s1")
        ly = LibYanc(fs)
        ly.stage_flow("s1", "f1", Match(in_port=1), [Output(2)])
        ly.stage_flow("s1", "f2", Match(in_port=2), [Output(3)])
        ly.stage_flow("s1", "f3", Match(in_port=3), [Output(4)])
        ly.flush()

    ops = _record(workload)
    windowed = [op for op in ops if op.window is not None]
    assert len(windowed) == 3, "flush must tag one commit per staged flow"
    result = explore(ops)
    # 3 commits -> 2^3-1 subsets minus the 3 non-empty prefix-shaped ones.
    assert result.window_states == 4
    assert result.violations == []


def test_explorer_empty_trace():
    result = explore([])
    assert result.violations == [] and result.prefixes == 0


def test_replay_tree_reconstructs_the_live_tree():
    ops = _record(_clean_flow_workload)
    tree = ReplayTree()
    for op in ops:
        tree.apply(op)
    assert tree.sc.read_text("/net/switches/s1/flows/f1/version").strip() == "1"
    assert tree.sc.read_text("/net/switches/s1/flows/f1/match.in_port").strip() == "3"


# -- CLI discipline -------------------------------------------------------------------


def test_cli_findings_exit_one(capsys):
    rc = main(["yanccrash", str(BAD)])
    out = capsys.readouterr().out
    assert rc == ExitCode.FINDINGS
    for rule, line in expected_findings(BAD):
        assert f"{BAD}:{line}:" in out
        assert f"[{rule}]" in out


def test_cli_clean_exit_zero(capsys):
    rc = main(["yanccrash", str(OK)])
    assert rc == ExitCode.CLEAN
    assert "yanccrash: 0 finding(s)" in capsys.readouterr().out


def test_cli_json_output(capsys):
    rc = main(["yanccrash", str(BAD), "--json"])
    assert rc == ExitCode.FINDINGS
    payload = json.loads(capsys.readouterr().out)
    assert sorted((rec["rule"], rec["line"]) for rec in payload) == sorted(expected_findings(BAD))


def test_cli_baseline_filters_known_findings(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    assert main(["yanccrash", str(BAD), "--out", str(baseline)]) == ExitCode.FINDINGS
    capsys.readouterr()
    rc = main(["yanccrash", str(BAD), "--baseline", str(baseline)])
    out = capsys.readouterr().out
    assert rc == ExitCode.CLEAN
    assert "(baseline)" in out and "0 finding(s)" in out


def test_cli_internal_error_exit_three(monkeypatch, capsys):
    def boom(paths):
        raise RuntimeError("synthetic analyzer crash")

    monkeypatch.setattr("repro.analysis.yanccrash.checker.analyze_yanccrash", boom)
    rc = main(["yanccrash", str(OK)])
    assert rc == ExitCode.INTERNAL
    assert "internal error" in capsys.readouterr().err


def test_cli_explore_clean_workload(tmp_path, capsys):
    workload = tmp_path / "workload.py"
    workload.write_text(
        textwrap.dedent(
            """\
            from repro.dataplane.actions import Output
            from repro.dataplane.match import Match
            from repro.vfs.syscalls import Syscalls
            from repro.vfs.vfs import VirtualFileSystem
            from repro.yancfs.client import YancClient, mount_yancfs

            sc = Syscalls(VirtualFileSystem())
            mount_yancfs(sc, "/net")
            client = YancClient(sc)
            client.create_switch("s1")
            client.create_flow("s1", "f1", Match(in_port=3), [Output(1)])
            client.commit_flow("s1", "f1")
            """
        )
    )
    rc = main(["yanccrash", "--explore", str(workload)])
    out = capsys.readouterr().out
    assert rc == ExitCode.CLEAN
    assert "explored" in out and "0 invariant violation(s)" in out


def test_cli_explore_torn_workload(tmp_path, capsys):
    workload = tmp_path / "torn.py"
    workload.write_text(
        textwrap.dedent(
            """\
            from repro.vfs.syscalls import Syscalls
            from repro.vfs.vfs import VirtualFileSystem

            sc = Syscalls(VirtualFileSystem())
            sc.makedirs("/var/spool")
            sc.mkdir("/var/spool/.e1")
            sc.write_text("/var/spool/.e1/data", "d")
            sc.rename("/var/spool/.e1", "/var/spool/e1")
            sc.write_text("/var/spool/e1/late", "x")
            """
        )
    )
    rc = main(["yanccrash", "--explore", str(workload)])
    assert rc == ExitCode.FINDINGS
    assert "[torn-publication]" in capsys.readouterr().out


def test_cli_explore_crashing_workload_exit_three(tmp_path, capsys):
    workload = tmp_path / "dies.py"
    workload.write_text("import sys\nsys.exit(7)\n")
    rc = main(["yanccrash", "--explore", str(workload)])
    assert rc == ExitCode.INTERNAL
    assert "exited with 7" in capsys.readouterr().err


# -- public surface -------------------------------------------------------------------


def test_package_exports():
    assert yc.KINDS == KINDS
    assert callable(yc.analyze_yanccrash)
