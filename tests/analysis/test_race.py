"""yancrace: happens-before race detection across the process fleet and
the §3.4 flow-commit protocol model checker."""

from __future__ import annotations

import json

import pytest

from repro.analysis import race, sanitizer
from repro.analysis.cli import main as cli_main
from repro.analysis.race import RaceDetector
from repro.proc import Process, ProcessTable
from repro.sim import Simulator
from repro.vfs.notify import EventMask
from repro.vfs.syscalls import Syscalls


@pytest.fixture
def det():
    d = RaceDetector().install()
    yield d
    d.uninstall()
    # Deliberate violations land in the env-installed detectors too (the
    # torn commits here are yancsan flow-commit findings as well); clear
    # them so the autouse teardown checks stay green.
    race.reset_all()
    sanitizer.reset_all()


def kinds(findings):
    return [f.kind for f in findings]


def _fleet(sim, vfs):
    root = Syscalls(vfs)
    return root, ProcessTable(root, sim)


def _make_flow(sc, name="f"):
    sc.mkdir("/net/switches/s1")
    base = f"/net/switches/s1/flows/{name}"
    sc.mkdir(base)
    sc.write_text(f"{base}/match.dl_type", "0x800")
    sc.write_text(f"{base}/action.out", "1")
    sc.write_text(f"{base}/priority", "5")
    return base


# -- the happens-before core ----------------------------------------------------


def test_unsynchronized_writes_detected(sim, vfs, det):
    """The issue's positive case: two processes write one file in the same
    simulator window with no ordering edge between them."""
    root, table = _fleet(sim, vfs)
    root.mkdir("/shared")
    root.write_text("/shared/flowfile", "init")
    a = table.spawn(name="writer-a").start()
    b = table.spawn(name="writer-b").start()
    a.schedule(0.1, lambda: a.sc.write_text("/shared/flowfile", "from-a"))
    b.schedule(0.1, lambda: b.sc.write_text("/shared/flowfile", "from-b"))
    sim.run()
    findings = det.check()
    assert "race" in kinds(findings)
    racef = next(f for f in findings if f.kind == "race")
    assert racef.path == "/shared/flowfile"
    # Both parties named by PID, both syscall sites in this file.
    assert any("writer-a" in actor for actor in racef.actors)
    assert any("writer-b" in actor for actor in racef.actors)
    assert all("test_race.py" in site for site in racef.sites)


def test_quiescence_orders_separate_windows(sim, vfs, det):
    """The same two writes in *separate* run windows are ordered by the
    simulator-quiescence barrier: no race."""
    root, table = _fleet(sim, vfs)
    root.mkdir("/shared")
    a = table.spawn(name="writer-a").start()
    b = table.spawn(name="writer-b").start()
    a.schedule(0.1, lambda: a.sc.write_text("/shared/flowfile", "from-a"))
    sim.run()
    b.schedule(0.1, lambda: b.sc.write_text("/shared/flowfile", "from-b"))
    sim.run()
    assert det.check() == []


def test_notify_delivery_is_an_edge(sim, vfs, det):
    """A watcher that reads only after the writer's event is delivered is
    ordered through the notify queue — same window, no race."""

    class Watcher(Process):
        proc_name = "watcher"

        def __init__(self, sc, sim):
            super().__init__(sc, sim)
            self.seen = []

        def on_start(self):
            self.watch("/shared", EventMask.IN_CLOSE_WRITE | EventMask.IN_MODIFY, ("dir",))

        def on_event(self, ctx, event):
            self.seen.append(self.sc.read_text("/shared/flowfile"))

    root, table = _fleet(sim, vfs)
    root.mkdir("/shared")
    root.write_text("/shared/flowfile", "init")
    writer = table.spawn(name="writer").start()
    watcher = Watcher(root.spawn(), sim)
    table.register(watcher)
    watcher.start()
    writer.schedule(0.1, lambda: writer.sc.write_text("/shared/flowfile", "fresh"))
    sim.run()
    assert "fresh" in watcher.seen
    assert det.check() == []


def test_unrelated_files_do_not_race(sim, vfs, det):
    root, table = _fleet(sim, vfs)
    root.mkdir("/shared")
    a = table.spawn(name="a").start()
    b = table.spawn(name="b").start()
    a.schedule(0.1, lambda: a.sc.write_text("/shared/one", "x"))
    b.schedule(0.1, lambda: b.sc.write_text("/shared/two", "y"))
    sim.run()
    assert det.check() == []


def test_concurrent_reads_never_conflict(sim, vfs, det):
    root, table = _fleet(sim, vfs)
    root.mkdir("/shared")
    root.write_text("/shared/flowfile", "init")
    a = table.spawn(name="a").start()
    b = table.spawn(name="b").start()
    a.schedule(0.1, lambda: a.sc.read_text("/shared/flowfile"))
    b.schedule(0.1, lambda: b.sc.read_text("/shared/flowfile"))
    sim.run()
    assert det.check() == []


def test_harness_contexts_are_one_actor(vfs, det):
    """Several bare Syscalls driven sequentially from the test body are a
    single thread of control, not a process fleet."""
    one = Syscalls(vfs)
    two = one.spawn()
    one.write_text("/f", "from-one")
    two.write_text("/f", "from-two")
    assert one.read_text("/f") == "from-two"
    assert det.check() == []


# -- §3.4 commit-protocol model checking ----------------------------------------


def test_torn_commit_detected(yanc_sc, det):
    base = _make_flow(yanc_sc)
    yanc_sc.write_text(f"{base}/version", "1")
    yanc_sc.write_text(f"{base}/priority", "9")
    findings = det.check()
    assert kinds(findings) == ["torn-commit"]
    assert "'priority'" in findings[0].detail
    assert "version 1" in findings[0].detail


def test_commit_retires_pending_spec_write(yanc_sc, det):
    base = _make_flow(yanc_sc)
    yanc_sc.write_text(f"{base}/version", "1")
    yanc_sc.write_text(f"{base}/priority", "9")
    yanc_sc.write_text(f"{base}/version", "2")
    assert det.check() == []


def test_uncommitted_read_detected(sim, yanc_sc, det):
    """Another actor reading spec state while a commit is outstanding —
    concurrently, with no HB edge — violates the protocol."""
    base = _make_flow(yanc_sc)
    yanc_sc.write_text(f"{base}/version", "1")
    table = ProcessTable(yanc_sc, sim)
    a = table.spawn(name="editor").start()
    b = table.spawn(name="reader").start()
    a.schedule(0.1, lambda: a.sc.write_text(f"{base}/priority", "9"))
    b.schedule(0.2, lambda: b.sc.read_text(f"{base}/priority"))
    sim.run()
    # Retire the pending commit HB-after the window so only the
    # mid-commit read remains as a finding (plus the spec-file race).
    yanc_sc.write_text(f"{base}/version", "2")
    found = kinds(det.check())
    assert "uncommitted-read" in found
    assert "torn-commit" not in found


def test_hb_ordered_read_of_pending_spec_is_allowed(sim, yanc_sc, det):
    """A reader ordered after the spec write (separate windows) may observe
    mid-commit state coherently — only concurrent reads are violations."""
    base = _make_flow(yanc_sc)
    yanc_sc.write_text(f"{base}/version", "1")
    table = ProcessTable(yanc_sc, sim)
    a = table.spawn(name="editor").start()
    b = table.spawn(name="reader").start()
    a.schedule(0.1, lambda: a.sc.write_text(f"{base}/priority", "9"))
    sim.run()
    b.schedule(0.1, lambda: b.sc.read_text(f"{base}/priority"))
    sim.run()
    yanc_sc.write_text(f"{base}/version", "2")
    assert det.check() == []


def test_version_read_acquires_commit(sim, yanc_sc, det):
    """Observing the committed version orders the reader after every spec
    write the commit covered — the version file is the sync variable."""
    base = _make_flow(yanc_sc)
    table = ProcessTable(yanc_sc, sim)
    a = table.spawn(name="committer").start()
    b = table.spawn(name="follower").start()

    def commit():
        a.sc.write_text(f"{base}/priority", "9")
        a.sc.write_text(f"{base}/version", "1")

    def follow():
        b.sc.read_text(f"{base}/version")
        b.sc.read_text(f"{base}/priority")

    a.schedule(0.1, commit)
    b.schedule(0.2, follow)
    sim.run()
    assert det.check() == []


def test_suppression_comment_silences_kind(yanc_sc, det):
    base = _make_flow(yanc_sc)
    yanc_sc.write_text(f"{base}/version", "1")
    yanc_sc.write_text(f"{base}/priority", "9")  # yancrace: disable=torn-commit
    assert det.check() == []


def test_counters_are_exempt(sim, yanc_sc, det):
    """§3.5 monitoring state is lossy by design: concurrent counter
    traffic is not a race."""
    yanc_sc.mkdir("/net/switches/s1")
    yanc_sc.write_text("/net/switches/s1/counters/rx_packets", "1")
    table = ProcessTable(yanc_sc, sim)
    a = table.spawn(name="driver").start()
    b = table.spawn(name="monitor").start()
    a.schedule(0.1, lambda: a.sc.write_text("/net/switches/s1/counters/rx_packets", "2"))
    b.schedule(0.1, lambda: b.sc.read_text("/net/switches/s1/counters/rx_packets"))
    sim.run()
    assert det.check() == []


# -- lifecycle -------------------------------------------------------------------


def test_reset_clears_state(sim, vfs, det):
    root, table = _fleet(sim, vfs)
    root.mkdir("/shared")
    a = table.spawn(name="a").start()
    b = table.spawn(name="b").start()
    a.schedule(0.1, lambda: a.sc.write_text("/shared/f", "x"))
    b.schedule(0.1, lambda: b.sc.write_text("/shared/f", "y"))
    sim.run()
    assert det.check() != []
    det.reset()
    assert det.check() == []


def test_uninstall_stops_recording(sim, vfs, det):
    det.uninstall()
    root, table = _fleet(sim, vfs)
    root.mkdir("/shared")
    a = table.spawn(name="a").start()
    b = table.spawn(name="b").start()
    a.schedule(0.1, lambda: a.sc.write_text("/shared/f", "x"))
    b.schedule(0.1, lambda: b.sc.write_text("/shared/f", "y"))
    sim.run()
    assert det.check() == []


def test_install_from_env(monkeypatch):
    prior = race.active()
    monkeypatch.setenv("YANCRACE", "0")
    assert not race.enabled()
    monkeypatch.setenv("YANCRACE", "1")
    assert race.enabled()
    env_det = race.install_from_env()
    try:
        assert env_det is not None and race.active() is env_det
        assert race.install_from_env() is env_det  # idempotent
    finally:
        if prior is None:
            env_det.uninstall()
        env_det.reset()


# -- the race CLI ----------------------------------------------------------------

RACY_WORKLOAD = """\
from repro.proc import ProcessTable
from repro.sim import Simulator
from repro.vfs.syscalls import Syscalls
from repro.vfs.vfs import VirtualFileSystem

sim = Simulator()
vfs = VirtualFileSystem(clock=lambda: sim.now)
root = Syscalls(vfs)
table = ProcessTable(root, sim)
root.mkdir("/shared")
root.write_text("/shared/flowfile", "init")
a = table.spawn(name="writer-a").start()
b = table.spawn(name="writer-b").start()
a.schedule(0.1, lambda: a.sc.write_text("/shared/flowfile", "from-a"))
b.schedule(0.1, lambda: b.sc.write_text("/shared/flowfile", "from-b"))
sim.run()
"""

CLEAN_WORKLOAD = """\
from repro.vfs.syscalls import Syscalls
from repro.vfs.vfs import VirtualFileSystem

sc = Syscalls(VirtualFileSystem())
sc.write_text("/f", "x")
assert sc.read_text("/f") == "x"
"""


@pytest.fixture
def clean_race():
    yield
    race.reset_all()


def _workload(tmp_path, text, name="workload.py"):
    path = tmp_path / name
    path.write_text(text)
    return str(path)


def test_cli_race_reports_findings(tmp_path, capsys, clean_race):
    rc = cli_main(["race", _workload(tmp_path, RACY_WORKLOAD)])
    out = capsys.readouterr().out
    assert rc == 1
    assert "yancrace [race]" in out
    assert "writer-a" in out and "writer-b" in out


def test_cli_race_clean_workload(tmp_path, capsys, clean_race):
    rc = cli_main(["race", _workload(tmp_path, CLEAN_WORKLOAD)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "yancrace: 0 finding(s)" in out


def test_cli_race_json_output(tmp_path, capsys, clean_race):
    workload = _workload(tmp_path, RACY_WORKLOAD)
    rc = cli_main(["race", "--json", workload])
    assert rc == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload and payload[0]["kind"] == "race"
    assert payload[0]["path"] == "/shared/flowfile"
    assert all(workload in site for site in payload[0]["sites"])


def test_cli_race_baseline_roundtrip(tmp_path, capsys, clean_race):
    workload = _workload(tmp_path, RACY_WORKLOAD)
    baseline = tmp_path / "baseline.json"
    assert cli_main(["race", "--out", str(baseline), workload]) == 1
    capsys.readouterr()
    rc = cli_main(["race", "--baseline", str(baseline), workload])
    out = capsys.readouterr().out
    assert rc == 0
    assert "(baseline)" in out and "in baseline" in out


def test_cli_race_crashing_workload_is_internal_error(tmp_path, capsys, clean_race):
    rc = cli_main(["race", _workload(tmp_path, "raise RuntimeError('boom')\n")])
    err = capsys.readouterr().err
    assert rc == 3
    assert "internal error" in err and "boom" in err


def test_cli_race_failing_workload_exit(tmp_path, capsys, clean_race):
    rc = cli_main(["race", _workload(tmp_path, "raise SystemExit(5)\n")])
    err = capsys.readouterr().err
    assert rc == 3
    assert "workload exited with 5" in err


def test_cli_race_usage_error(clean_race):
    with pytest.raises(SystemExit) as exc:
        cli_main(["race"])  # missing workload
    assert exc.value.code == 2
