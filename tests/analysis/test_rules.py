"""yanclint: each rule fires on its bad fixture and stays quiet on the ok twin."""

from __future__ import annotations

import re
from pathlib import Path

from repro.analysis import analyze_paths, format_findings
from repro.analysis.cli import main
from repro.yancfs import validate

HERE = Path(__file__).parent
BAD = HERE / "fixtures" / "bad"
OK = HERE / "fixtures" / "ok"
REPO = HERE.parents[1]

_BAD_MARK = re.compile(r"#\s*bad:\s*([\w-]+)")


def expected_findings(path: Path) -> list[tuple[str, int]]:
    """(rule, line) pairs for every ``# bad: <rule>`` marker in a fixture."""
    pairs = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        match = _BAD_MARK.search(line)
        if match:
            pairs.append((match.group(1), lineno))
    return pairs


def fixture_findings(path: Path, *rules: str) -> list[tuple[str, int]]:
    found = analyze_paths([str(path)], select=set(rules))
    assert all(f.path == str(path) for f in found)
    return [(f.rule, f.line) for f in found]


def check_rule_pair(name: str, *rules: str) -> None:
    bad, ok = BAD / f"{name}.py", OK / f"{name}.py"
    want = expected_findings(bad)
    assert want, f"fixture {bad} declares no expected findings"
    assert fixture_findings(bad, *rules) == want
    assert fixture_findings(ok, *rules) == []


def test_determinism_rule():
    check_rule_pair("determinism", "determinism")


def test_vfs_bypass_rule():
    check_rule_pair("vfs_bypass", "vfs-bypass")


def test_error_discipline_rule():
    check_rule_pair("error_discipline", "error-discipline")


def test_hygiene_rules():
    check_rule_pair("hygiene", "mutable-default", "shadow-builtin")


def test_private_poke_rule():
    check_rule_pair("private_poke", "private-poke")


def test_proc_discipline_rule():
    check_rule_pair("proc_discipline", "proc-discipline")


def test_shared_write_discipline_rule():
    check_rule_pair("shared_write", "shared-write-discipline")


def test_notify_before_read_rule():
    check_rule_pair("notify_read", "notify-before-read")


def test_vfs_bypass_needs_scope():
    # The same constructs outside app/example scope are not flagged: the
    # bad fixture only fires because of its `# yanclint: scope=app` line.
    text = (BAD / "vfs_bypass.py").read_text()
    assert "# yanclint: scope=app" in text


def test_diagnostics_carry_file_and_line(capsys):
    rc = main([str(BAD / "determinism.py"), "--select", "determinism"])
    out = capsys.readouterr().out
    assert rc == 1
    for rule, line in expected_findings(BAD / "determinism.py"):
        assert f"{BAD / 'determinism.py'}:{line}:" in out
        assert f"[{rule}]" in out


def test_cli_clean_exit_zero(capsys):
    rc = main([str(OK / "determinism.py"), "--select", "determinism"])
    assert rc == 0
    assert "yanclint: clean" in capsys.readouterr().out


def test_cli_ignore_silences_rule(capsys):
    rc = main([str(BAD / "hygiene.py"), "--ignore", "mutable-default,shadow-builtin,schema-coverage"])
    assert rc == 0


def test_cli_list_rules(capsys):
    rc = main(["--list-rules"])
    out = capsys.readouterr().out
    assert rc == 0
    for rule in ("determinism", "vfs-bypass", "error-discipline", "schema-coverage", "mutable-default", "shadow-builtin", "private-poke", "proc-discipline", "shared-write-discipline", "notify-before-read"):
        assert rule in out


def test_cli_json_format(capsys):
    import json

    rc = main([str(BAD / "hygiene.py"), "--select", "mutable-default", "--format", "json"])
    assert rc == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload and payload[0]["rule"] == "mutable-default"
    assert payload[0]["line"] == expected_findings(BAD / "hygiene.py")[0][1]


def test_schema_coverage_clean_on_repo():
    assert analyze_paths([], select={"schema-coverage"}) == []


def test_schema_coverage_detects_missing_validator(monkeypatch):
    monkeypatch.delitem(validate.SWITCH_ATTRIBUTE_VALIDATORS, "id")
    findings = analyze_paths([], select={"schema-coverage"})
    assert any(f.rule == "schema-coverage" and "'id'" in f.message for f in findings)
    # anchored at the declaration in schema.py, not a dummy location
    assert all(f.path.endswith("schema.py") and f.line > 1 for f in findings)


def test_schema_coverage_detects_missing_flow_attr(monkeypatch):
    monkeypatch.delitem(validate.FLOW_ATTRIBUTE_VALIDATORS, "cookie")
    findings = analyze_paths([], select={"schema-coverage"})
    assert any("FLOW_ATTRIBUTE_VALIDATORS" in f.message and "'cookie'" in f.message for f in findings)


def test_whole_repo_is_clean():
    findings = analyze_paths([str(REPO / "src"), str(REPO / "tests"), str(REPO / "examples")])
    assert findings == [], format_findings(findings)


def test_missing_path_is_an_error(capsys):
    rc = main(["does/not/exist", "--select", "determinism"])
    out = capsys.readouterr().out
    assert rc == 1
    assert "does/not/exist:1:1" in out and "[usage]" in out


def test_unknown_rule_rejected(capsys):
    rc = main([str(OK / "hygiene.py"), "--select", "no-such-rule"])
    err = capsys.readouterr().err
    assert rc == 2
    assert "unknown rule(s): no-such-rule" in err


def test_parse_error_reported(tmp_path, capsys):
    broken = tmp_path / "broken.py"
    broken.write_text("def oops(:\n")
    rc = main([str(broken), "--select", "determinism"])
    out = capsys.readouterr().out
    assert rc == 1
    assert "[parse-error]" in out and f"{broken}:" in out
