"""yancpath: finding kinds, grammar derivation, CLI discipline, suppressions."""

from __future__ import annotations

import importlib
import json
import re
import textwrap
from pathlib import Path

import pytest

from repro.analysis import yancpath as yp
from repro.analysis.cli import ExitCode, main
from repro.analysis.core import SourceFile
from repro.analysis.yancpath import NamespaceModel, analyze_yancpath
from repro.analysis.yancpath import patterns as P
from repro.analysis.yancpath.checker import KINDS, analyze_sources

HERE = Path(__file__).parent
BAD = HERE / "fixtures" / "bad" / "yancpath.py"
OK = HERE / "fixtures" / "ok" / "yancpath.py"

_BAD_MARK = re.compile(r"#\s*bad:\s*([\w,\-]+)")


def expected_findings(path: Path) -> list[tuple[str, int]]:
    """Sorted (rule, line) pairs from the ``# bad: r1,r2`` fixture markers."""
    pairs = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        match = _BAD_MARK.search(line)
        if match:
            pairs.extend((rule, lineno) for rule in match.group(1).split(","))
    return sorted(pairs, key=lambda pair: (pair[1], pair[0]))


def findings_of(path: Path) -> list[tuple[str, int]]:
    found = analyze_yancpath([str(path)])
    assert all(f.path == str(path) for f in found)
    return sorted(((f.rule, f.line) for f in found), key=lambda pair: (pair[1], pair[0]))


def matches(model: NamespaceModel, path: str) -> bool:
    pattern = P.finalize(P.tokens_from_literal(path))
    assert pattern is not None
    return model.match(pattern).matched


# -- finding kinds against the fixture pair -------------------------------------------


def test_bad_fixture_fires_every_kind():
    want = expected_findings(BAD)
    assert {rule for rule, _ in want} == set(KINDS), "fixture must seed all kinds"
    assert findings_of(BAD) == want


def test_ok_fixture_is_clean():
    assert findings_of(OK) == []


# -- the grammar is derived, not hand-copied ------------------------------------------


def test_grammar_follows_schema_mutation(monkeypatch):
    from repro.yancfs import schema

    base = NamespaceModel.build()
    assert matches(base, "/net/switches/s1/num_buffers")
    assert not matches(base, "/net/switches/s1/shiny_new_attr")

    monkeypatch.setattr(schema, "SWITCH_ATTRIBUTE_FILES", ("id", "shiny_new_attr"))
    mutated = NamespaceModel.build()
    assert not matches(mutated, "/net/switches/s1/num_buffers")
    assert matches(mutated, "/net/switches/s1/shiny_new_attr")


def test_grammar_rejects_neighbour_typos():
    model = NamespaceModel.build()
    assert matches(model, "/net/switches/s1/flows/f1/version")
    for typo in (
        "/net/switchs/s1/id",
        "/net/switches/s1/flow/f1/version",
        "/net/switches/s1/flows/f1/priorty",
        "/net/switches/s1/flows/f1/match.bogus",
    ):
        assert not matches(model, typo), typo


def test_non_yanc_paths_are_not_judged():
    model = NamespaceModel.build()
    for path in ("/tmp/foo/bar", "output.txt", "config/settings"):
        pattern = P.finalize(P.tokens_from_literal(path))
        assert not model.match(pattern).applicable, path


# -- CLI discipline -------------------------------------------------------------------


def test_cli_findings_exit_one(capsys):
    rc = main(["yancpath", str(BAD)])
    out = capsys.readouterr().out
    assert rc == ExitCode.FINDINGS
    for rule, line in expected_findings(BAD):
        assert f"{BAD}:{line}:" in out
        assert f"[{rule}]" in out


def test_cli_clean_exit_zero(capsys):
    rc = main(["yancpath", str(OK)])
    assert rc == ExitCode.CLEAN
    assert "yancpath: 0 finding(s)" in capsys.readouterr().out


def test_cli_json_output(capsys):
    rc = main(["yancpath", str(BAD), "--json"])
    assert rc == ExitCode.FINDINGS
    payload = json.loads(capsys.readouterr().out)
    assert sorted((rec["rule"], rec["line"]) for rec in payload) == sorted(expected_findings(BAD))
    assert all(rec["path"] == str(BAD) for rec in payload)


def test_cli_baseline_filters_known_findings(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    assert main(["yancpath", str(BAD), "--out", str(baseline)]) == ExitCode.FINDINGS
    capsys.readouterr()
    rc = main(["yancpath", str(BAD), "--baseline", str(baseline)])
    out = capsys.readouterr().out
    assert rc == ExitCode.CLEAN
    assert "(baseline)" in out and "0 finding(s)" in out


def test_cli_syntax_error_elsewhere_does_not_stop_analysis(tmp_path, capsys):
    (tmp_path / "broken.py").write_text("def oops(:\n")
    (tmp_path / "app.py").write_text(
        "# yanclint: scope=app\n"
        "def read_id(sc, sw):\n"
        '    return sc.read_text(f"/net/switchs/{sw}/id")\n'
    )
    rc = main(["yancpath", str(tmp_path)])
    out = capsys.readouterr().out
    assert rc == ExitCode.FINDINGS  # findings, not an internal error
    assert "[parse-error]" in out and "[unknown-path]" in out


def test_cli_internal_error_exit_three(monkeypatch, capsys):
    def boom(paths):
        raise RuntimeError("synthetic analyzer crash")

    monkeypatch.setattr("repro.analysis.yancpath.checker.analyze_yancpath", boom)
    rc = main(["yancpath", str(OK)])
    assert rc == ExitCode.INTERNAL
    assert "internal error" in capsys.readouterr().err


def test_shipped_tree_is_yancpath_clean():
    repo = HERE.parents[1]
    assert analyze_yancpath([str(repo / "src"), str(repo / "examples")]) == []


# -- console scripts ------------------------------------------------------------------


def test_console_scripts_resolve():
    text = (HERE.parents[1] / "pyproject.toml").read_text()
    section = text.split("[project.scripts]", 1)[1].split("[", 1)[0]
    entries = dict(re.findall(r'(\w+)\s*=\s*"([\w.:]+)"', section))
    assert set(entries) == {"yanclint", "yancrace", "yancpath", "yancperf", "yanccrash", "yancsec"}
    for target in entries.values():
        module, func = target.split(":")
        assert callable(getattr(importlib.import_module(module), func))


# -- suppressions ---------------------------------------------------------------------


def _analyze_text(text: str) -> list[tuple[str, int]]:
    src = SourceFile.parse("app.py", textwrap.dedent(text))
    return [(f.rule, f.line) for f in analyze_sources([src])]


def test_disable_comment_silences_yancpath():
    assert _analyze_text(
        """\
        # yanclint: scope=app
        def read_id(sc, sw):
            return sc.read_text(f"/net/switchs/{sw}/id")  # yanclint: disable=unknown-path
        """
    ) == []


def test_disable_on_multiline_statement_tail():
    # The finding anchors at the statement's first line; the comment sits
    # on the closing line and must still apply.
    assert _analyze_text(
        """\
        # yanclint: scope=app
        def read_id(sc, sw):
            return sc.read_text(
                f"/net/switchs/{sw}/id"
            )  # yanclint: disable=unknown-path
        """
    ) == []


def test_disable_on_decorator_line_covers_the_def():
    src = SourceFile.parse(
        "t.py",
        textwrap.dedent(
            """\
            @property  # yanclint: disable=mutable-default
            def f(x=[]):
                return x
            """
        ),
    )
    assert src.is_suppressed("mutable-default", 2)


def test_disable_inside_a_body_does_not_cover_the_def():
    src = SourceFile.parse(
        "t.py",
        textwrap.dedent(
            """\
            def f(x=[]):
                return x  # yanclint: disable=mutable-default
            """
        ),
    )
    assert not src.is_suppressed("mutable-default", 1)
    assert src.is_suppressed("mutable-default", 2)


# -- public surface -------------------------------------------------------------------


def test_package_exports():
    assert yp.KINDS == KINDS
    assert callable(yp.analyze_yancpath)


@pytest.mark.parametrize("kind", KINDS)
def test_every_kind_is_seeded_once(kind):
    assert any(rule == kind for rule, _ in expected_findings(BAD))
