"""The legal spellings: public mutators, self-pokes, same-module classes."""

from repro.yancfs.schema import AttributeFile


def public_mutator(fs):
    attr = AttributeFile(fs, mode=0o644, uid=0, gid=0)
    attr.set_validated_content("7")  # the public API keeps _last_valid in sync
    return attr


class Holder:
    def __init__(self):
        self._cache = None  # writes to self are the class's own business

    def fill(self, value):
        self._cache = value


def same_module(fs):
    holder = Holder()
    holder._cache = 1  # Holder lives in this module: its privates are ours
    return holder


def rebound(fs):
    attr = AttributeFile(fs, mode=0o644, uid=0, gid=0)
    attr = object()
    attr._anything = 1  # no longer the imported class: not tracked
    return attr
