# yanclint: scope=app
"""The corrected twin of bad/yancpath.py: every operation is legal."""


class CorrectApp:
    def __init__(self, sc):
        self.sc = sc
        self.root = "/net"

    def read_switch_id(self, sw):
        return self.sc.read_text(f"{self.root}/switches/{sw}/id")

    def stage_flow_file(self, sw, flow, commit=True):
        self.sc.write_text(f"{self.root}/switches/{sw}/flows/{flow}/priority", "10")
        if commit:
            self.commit(sw, flow)

    def commit(self, sw, flow):
        path = f"{self.root}/switches/{sw}/flows/{flow}/version"
        version = int(self.sc.read_text(path))
        self.sc.write_text(path, str(version + 1))

    def pushes_match_then_commits(self, sw, flow):
        self.sc.write_text(f"{self.root}/switches/{sw}/flows/{flow}/match.in_port", "3")
        self.sc.write_text(f"{self.root}/switches/{sw}/flows/{flow}/version", "1")

    def closes_fd_on_every_path(self, path):
        fd = self.sc.open(path)
        try:
            return self.sc.read(fd, 100)
        finally:
            self.sc.close(fd)

    def reads_event_buffer(self, sw):
        return self.sc.listdir(f"/net/switches/{sw}/events/myapp")

    def writes_packet_out_spool(self, sw, payload):
        self.sc.write_text(f"/net/switches/{sw}/packet_out/p1.app.1", payload)
