# yanclint: scope=app
"""The well-behaved twins of bad/yancsec.py — yancsec must stay quiet."""

from repro.distfs.rpc import RpcChannel
from repro.vfs.cred import app_credentials
from repro.vfs.syscalls import Syscalls


def validate_name(name):
    return name.isalnum()


class PoliteApp:
    def __init__(self, sc):
        self.sc = sc

    def follow_tenant_data(self, sw, known_hosts):
        # Same flow as the bad twin, but a validator sits between the
        # tenant-controlled read and the path construction.
        owner = self.sc.read_text(f"/net/switches/{sw}/id")
        if owner in known_hosts:
            self.sc.write_text(f"/net/hosts/{owner}/owner", "claimed")

    def forward_payload(self, sw, app, msg):
        payload = self.sc.read_text(f"/net/switches/{sw}/events/{app}/{msg}/data")
        if validate_name(payload):
            self.sc.channel.call("write", payload, b"x")

    def publish_port_state(self, sw, port, down):
        # config.port_down carries a schema ACL — collaboration is policy.
        self.sc.write_text(f"/net/switches/{sw}/ports/{port}/config.port_down", down)

    def peek_slice(self, root, sw):
        # Views are addressed downward only; no `..` in the token string.
        return self.sc.read_text(f"{root}/switches/{sw}/id")


def proper_setup(vfs):
    # Per-app credentials from the start: least privilege by construction.
    sc = Syscalls(vfs, cred=app_credentials("polite"))
    sc.write_text("/net/switches/s1/id", "s1")
    return sc


def open_channel(server, cred):
    # Caller identity threads through the channel (AUTH_SYS-style).
    return RpcChannel(server.handle, cred=cred)
