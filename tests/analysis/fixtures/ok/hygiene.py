"""Fixture: the same constructs, suppressed."""


def collect(bucket=[]):  # yanclint: disable=mutable-default
    return bucket


def shadow():
    list = [1]  # yanclint: disable=shadow-builtin
    return list
