# yanclint: scope=app
"""The same publication shapes as the bad twin, done legally."""

#: Every staging directory below is declared (and swept at startup).
YANCCRASH_RECOVERS = ("/var/run/spool", "/var/cache/other")


class AtomicPublisher:
    def __init__(self, sc):
        self.sc = sc

    def maildir_publish(self, name):
        tmp = f"/var/run/spool/.{name}"
        self.sc.mkdir(tmp)
        self.sc.write_text(f"{tmp}/head", "h")
        self.sc.write_text(f"{tmp}/body", "b")
        self.sc.rename(tmp, f"/var/run/spool/{name}")

    def assemble_then_rename(self, name):
        tmp = f"/var/run/spool/tmp_{name}"
        self.sc.mkdir(tmp)
        self.sc.write_text(f"{tmp}/head", "h")
        self.sc.write_text(f"{tmp}/body", "b")
        self.sc.rename(tmp, f"/var/run/spool/{name}")

    def stage_then_commit(self, sw, flow):
        base = f"/net/switches/{sw}/flows/{flow}"
        self.sc.mkdir(base)
        self.sc.write_text(f"{base}/match.in_port", "3")
        self.sc.write_text(f"{base}/action.output", "1")
        self.sc.write_text(f"{base}/version", "1")

    def gate_with_version(self, name):
        out = f"/var/run/spool/{name}"
        self.sc.mkdir(out)
        self.sc.write_text(f"{out}/head", "h")
        self.sc.write_text(f"{out}/body", "b")
        self.sc.write_text(f"{out}/version", "1")

    def chained_commit(self, sw, flow):
        ring = self.sc.io_uring_setup(entries=64)
        base = f"/net/switches/{sw}/flows/{flow}"
        ring.prep("mkdir", base, link=True)
        ring.prep_write_file(f"{base}/match.in_port", b"3", link=True)
        ring.prep_write_file(f"{base}/action.output", b"1", link=True)
        ring.prep_write_file(f"{base}/version", b"1")
        ring.submit()

    def recovered_staging(self, name):
        self.sc.mkdir(f"/var/cache/other/.{name}")
        self.sc.write_text(f"/var/cache/other/.{name}/data", "d")
        self.sc.rename(f"/var/cache/other/.{name}", f"/var/cache/other/{name}")
