# yanclint: scope=app
"""The remedies: scandir batching, batched RPC, indexed lookup, held fds."""


class CoolPathApp:
    def __init__(self, sc, channel):
        self.sc = sc
        self.channel = channel
        self.index = {}

    def batched_scan(self, path):
        # One getdents+statx for the whole directory; no per-entry lstat.
        return self.sc.scandir(path)

    def batched_sync(self, items):
        # One round trip carries every item.
        self.channel.call("put_many", list(items))

    def lookup(self, key):
        # Indexed: no full-table scan on the hot path.
        return self.index.get(key)

    def lookup_bucketed(self, key):
        # Tuple-space probe: walks one hash bucket, never the whole table.
        for entry in self.index.get(key, []):
            if entry.live:
                return entry
        return None

    def relink_all(self, paths):
        for path in paths:
            try:
                self.sc.unlink(f"{path}/peer")  # EAFP: one resolution
            except FileNotFoundError:
                pass

    def drain(self, fd):
        # A held fd: fd-based reads resolve no paths, so no storm.
        out = []
        for _ in range(8):
            out.append(self.sc.read(fd, 512))
        return out
