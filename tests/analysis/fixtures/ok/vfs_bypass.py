# yanclint: scope=app
"""Fixture: the same constructs, suppressed (plus the legitimate idiom)."""

from repro.drivers import OpenFlowDriver  # yanclint: disable=vfs-bypass


def poke(switch_node):
    switch_node.set_content(b"x")  # yanclint: disable=vfs-bypass


def proper(sc):
    sc.write_text("/net/switches/sw1/flows/f/priority", "9")
