# yanclint: scope=app
"""Ok fixture: subscribe first (or don't poll) and the rule stays quiet."""


def wait_for_commit(app, sc, sim):
    # Subscribed: the loop only spins when the watch wakes it.
    app.watch("/net/switches/s1/flows/f")
    while sc.read_text("/net/switches/s1/flows/f/version") != "1":
        sim.run_for(0.1)


def wait_on_inotify(sc, fd, sim):
    sc.inotify_add_watch(fd, "/net/switches/s1/counters")
    while not sc.read_events(fd):
        sim.run_for(0.1)


def drain_backlog(sc, fd):
    # Reads without advancing time: not a polling loop.
    events = []
    for _ in range(3):
        events.extend(sc.read_events(fd))
    return events


def advance_only(sim):
    # Advancing time without re-reading state: also fine.
    for _ in range(3):
        sim.run_for(1.0)


def shell_session(sh, commands):
    # sh.run() dispatches a command; it is not the simulator's run().
    for command in commands:
        sh.run(command)
        print(sh.read_text("/proc/self/status"))
