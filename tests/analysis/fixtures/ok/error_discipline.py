# yanclint: scope=vfs
"""Fixture: compliant (or suppressed) error handling."""

from repro.vfs.errors import InvalidArgument


def typed():
    raise InvalidArgument(detail="nope")


def reraises():
    try:
        typed()
    except Exception:
        raise


def records():
    failures = []
    try:
        typed()
    except Exception as exc:
        failures.append(exc)
    return failures


def suppressed():
    try:
        typed()
    except Exception:  # yanclint: disable=error-discipline
        pass
