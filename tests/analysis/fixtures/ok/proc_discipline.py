# yanclint: scope=driver
"""Ok fixture: the same work routed through the Process helpers."""

from repro.proc.process import Process


class DisciplinedDriver(Process):
    def __init__(self, sc, sim):
        super().__init__(sc, sim, name="disciplined")
        self.start()

    def attach(self, device):
        # Crash-contained, stops with the process, charged to its cgroup.
        self.every(1.0, self._sync_counters)

    def _resync_soon(self):
        self.schedule(1e-5, self._sync_counters)

    def _sync_counters(self):
        pass


def boot(sim, fn):
    # Simulation harness code may drive the raw clock when it says so.
    sim.schedule(0.5, fn)  # yanclint: disable=proc-discipline
