"""Fixture: the same constructs, suppressed or correctly seeded."""

import random
import time


def wall_clock():
    return time.time()  # yanclint: disable=determinism


def seeded():
    return random.Random(7).random()
