# yanclint: scope=app
"""Ok fixture: every staging site commits in the same function."""


def stage_and_commit(sc, base):
    sc.write_text(f"{base}/match.dl_type", "0x800")
    sc.write_text(f"{base}/action.out", "2")
    sc.write_text(f"{base}/priority", "7")
    sc.write_text(f"{base}/version", "1")


def create_then_commit(client):
    client.create_flow("s1", "f1", {"match.dl_type": "0x800"}, commit=False)
    client.commit_flow("s1", "f1")


def create_with_default_commit(client):
    client.create_flow("s1", "f1", {"match.dl_type": "0x800"})


def unrelated_write(sc):
    sc.write_text("/tmp/notes", "nothing flow-shaped here")
