# yanclint: scope=driver
"""Bad fixture: device-facing code scheduling on the simulator directly."""


class LeakyDriver:
    def __init__(self, sc, sim):
        self.sc = sc
        self.sim = sim
        self._wake_pending = False

    def attach(self, device):
        # Periodic work outside the process runtime: survives crashes,
        # never stops with the driver, bills nobody.
        self.sim.every(1.0, self._sync_counters)  # bad: proc-discipline

    def _schedule_wake(self):
        if self._wake_pending:
            return
        self._wake_pending = True
        self.sim.schedule(1e-5, self._drain)  # bad: proc-discipline

    def _resync_at(self, when):
        self.sim.schedule_at(when, self._sync_counters)  # bad: proc-discipline

    def _sync_counters(self):
        pass

    def _drain(self):
        pass


def boot(ctl, fn):
    ctl.sim.schedule(0.5, fn)  # bad: proc-discipline
