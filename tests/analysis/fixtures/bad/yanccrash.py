# yanclint: scope=app
"""Seeded crash-consistency defects: one per yanccrash finding kind."""

#: The spool's dot-temps ARE recovered — the defects below are elsewhere.
YANCCRASH_RECOVERS = ("/var/run/spool",)


class TornPublisher:
    def __init__(self, sc):
        self.sc = sc

    def writes_after_publish(self, name):
        tmp = f"/var/run/spool/.{name}"
        self.sc.mkdir(tmp)
        self.sc.write_text(f"{tmp}/body", "payload")
        dst = f"/var/run/spool/{name}"
        self.sc.rename(tmp, dst)
        self.sc.write_text(f"{dst}/extra", "late")  # bad: publish-before-data

    def spec_after_commit(self, sw, flow):
        base = f"/net/switches/{sw}/flows/{flow}"
        self.sc.write_text(f"{base}/version", "1")
        self.sc.write_text(f"{base}/match.in_port", "3")  # bad: publish-before-data

    def visible_assembly(self, name):
        out = f"/var/run/spool/{name}"
        self.sc.mkdir(out)  # bad: non-atomic-publish
        self.sc.write_text(f"{out}/head", "h")
        self.sc.write_text(f"{out}/body", "b")

    def severed_commit(self, sw, flow):
        ring = self.sc.io_uring_setup(entries=64)
        base = f"/net/switches/{sw}/flows/{flow}"
        ring.prep("mkdir", base, link=True)
        ring.prep_write_file(f"{base}/match.in_port", b"3", link=True)
        ring.prep_write_file(f"{base}/action.output", b"1")  # chain ends: link omitted
        ring.prep_write_file(f"{base}/version", b"1")  # bad: commit-outside-chain
        ring.submit()

    def stages_without_recovery(self, name):
        self.sc.mkdir("/var/cache/other/.tmp0")  # bad: unrecovered-staging
        self.sc.write_text("/var/cache/other/.tmp0/data", "d")
