# yanclint: scope=app
"""Seeded syscall-amplification defects: one per yancperf finding kind."""


class HotPathApp:
    def __init__(self, sc, channel, table):
        self.sc = sc
        self.channel = channel
        self.table = table

    def stat_storm(self, path):
        out = []
        for name in self.sc.listdir(path):
            st = self.sc.lstat(f"{path}/{name}")  # bad: readdir-then-stat
            out.append((name, st))
        return out

    def chatty_sync(self, items):
        for item in items:
            self.channel.call("put", item)  # bad: chatty-rpc

    def lookup(self, key):
        for entry in self.table.entries():  # bad: linear-table-scan
            if entry.key == key:
                return entry
        return None

    def lookup_indirect(self, key):
        # Stashing the entry list first is still a full-table scan.
        rows = self.table.entries()
        for entry in rows:  # bad: linear-table-scan
            if entry.key == key:
                return entry
        return None

    def relink_all(self, paths):
        for path in paths:
            if self.sc.exists(f"{path}/peer"):
                self.sc.unlink(f"{path}/peer")  # bad: path-reresolve
            self.sc.symlink("/net/switches/sw1/ports/port_1", f"{path}/peer")

    def push_all(self, flows):
        for flow in flows:  # bad: syscall-in-loop
            self.sc.write_text(f"/tmp/staging/{flow}/priority", "1")
