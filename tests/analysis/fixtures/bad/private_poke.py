"""Cross-module private-attribute pokes (the AttributeFile._last_valid bug)."""

from repro.yancfs.schema import AttributeFile
from repro.yancfs.validate import flow_file_validator


def poke_validation_cache(fs):
    attr = AttributeFile(fs, mode=0o644, uid=0, gid=0, validator=flow_file_validator("priority"))
    attr.set_content(b"7")
    attr._last_valid = b"7"  # bad: private-poke
    return attr


def poke_in_branch(fs, fancy):
    attr = AttributeFile(fs, mode=0o644, uid=0, gid=0)
    if fancy:
        attr._dirty = True  # bad: private-poke
    return attr
