# yanclint: scope=app
"""Bad fixture: flow spec staged with no commit in the same function."""


def stage_without_commit(sc, base):
    # Spec files written, version never bumped: the driver never sees this.
    sc.write_text(f"{base}/match.dl_type", "0x800")  # bad: shared-write-discipline
    sc.write_text(f"{base}/action.out", "2")  # bad: shared-write-discipline
    sc.write_text(f"{base}/priority", "7")  # bad: shared-write-discipline


def create_and_forget(client):
    client.create_flow("s1", "f1", {"match.dl_type": "0x800"}, commit=False)  # bad: shared-write-discipline
