"""Fixture: hygiene violations (yanclint must flag)."""


def collect(bucket=[]):  # bad: mutable-default
    return bucket


def shadow():
    list = [1]  # bad: shadow-builtin
    return list
