# yanclint: scope=app
"""Seeded isolation mistakes — every yancsec kind must fire here."""

from repro.distfs.rpc import RpcChannel
from repro.vfs.syscalls import Syscalls


class LeakyApp:
    def __init__(self, sc):
        self.sc = sc

    def follow_tenant_data(self, sw):
        # Tenant-controlled attribute flows straight into a path: whoever
        # authored the switch id picks which host record gets rewritten.
        owner = self.sc.read_text(f"/net/switches/{sw}/id")
        self.sc.write_text(f"/net/hosts/{owner}/owner", "claimed")  # bad: tainted-path

    def forward_payload(self, sw, app, msg):
        payload = self.sc.read_text(f"/net/switches/{sw}/events/{app}/{msg}/data")
        self.sc.channel.call("write", payload.strip(), b"x")  # bad: tainted-path

    def publish_ip(self, mb, ip):
        # public_ip carries no schema ACL: only the creating driver uid can
        # write it, so this app-side publish silently relies on root.
        self.sc.write_text(f"/net/middleboxes/{mb}/public_ip", ip)  # bad: missing-acl

    def peek_master(self, root, sw):
        # Inside a shared namespace `..` climbs out of the slice root.
        return self.sc.read_text(f"{root}/../switches/{sw}/id")  # bad: slice-escape


def rogue_setup(vfs):
    # Ambient root: the receiver was built without credentials, so every
    # mutation below runs as uid 0 where ACLs would grant a per-app uid.
    sc = Syscalls(vfs)
    sc.write_text("/net/switches/s1/id", "spoofed")  # bad: root-ambient
    return sc


def open_channel(server):
    # No cred= — every op the channel carries runs as the *server*.
    return RpcChannel(server.handle)  # bad: unauthenticated-rpc
