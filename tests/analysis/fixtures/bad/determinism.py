"""Fixture: wall-clock time and unseeded randomness (yanclint must flag)."""

import random
import time


def wall_clock():
    return time.time()  # bad: determinism


def unseeded():
    return random.random()  # bad: determinism


def unseeded_rng():
    return random.Random()  # bad: determinism
