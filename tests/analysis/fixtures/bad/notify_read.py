# yanclint: scope=app
"""Bad fixture: polling loops that re-read state while advancing time."""


def poll_for_commit(sc, sim):
    while sc.read_text("/net/switches/s1/flows/f/version") != "1":  # bad: notify-before-read
        sim.run_for(0.1)


def poll_counters(sc, ctl):
    for _ in range(100):  # bad: notify-before-read
        ctl.run(0.5)
        if sc.read_text("/net/switches/s1/counters/rx") != "0":
            break


def poll_events(sc, fd, net_sim):
    while True:  # bad: notify-before-read
        net_sim.step()
        if sc.read_events(fd):
            return
