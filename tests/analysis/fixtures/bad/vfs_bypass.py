# yanclint: scope=app
"""Fixture: an app reaching around the file interface (yanclint must flag)."""

from repro.drivers import OpenFlowDriver  # bad: vfs-bypass
from repro.yancfs.schema import AttributeFile  # bad: vfs-bypass


def poke(switch_node):
    switch_node.set_content(b"x")  # bad: vfs-bypass


def graft(parent_inode, child):
    parent_inode.attach("rogue", child)  # bad: vfs-bypass
