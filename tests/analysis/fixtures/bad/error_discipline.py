# yanclint: scope=vfs
"""Fixture: error-discipline violations (yanclint must flag)."""


def swallow():
    try:
        risky()
    except Exception:  # bad: error-discipline
        pass


def bare():
    try:
        risky()
    except:  # bad: error-discipline
        pass


def untyped():
    raise ValueError("not a typed fs error")  # bad: error-discipline


def risky():
    raise RuntimeError
