# yanclint: scope=app
"""Seeded defects: at least one per yancpath finding kind, marked inline."""


class BrokenApp:
    def __init__(self, sc):
        self.sc = sc
        self.root = "/net"

    def typo_container(self, sw):
        return self.sc.read_text(f"{self.root}/switchs/{sw}/id")  # bad: unknown-path

    def typo_flow_file(self, sw, flow):
        self.sc.write_text(f"{self.root}/switches/{sw}/flows/{flow}/priorty", "1")  # bad: unknown-path

    def unparseable_payload(self, sw, flow):
        self.sc.write_text(f"{self.root}/switches/{sw}/flows/{flow}/priority", "high")  # bad: bad-write-format,flow-no-commit

    def forgets_commit(self, sw, flow):
        self.sc.write_text(f"{self.root}/switches/{sw}/flows/{flow}/match.in_port", "3")  # bad: flow-no-commit

    def leaks_fd(self, path):
        fd = self.sc.open(path)  # bad: fd-leak-on-exception
        data = self.sc.read(fd, 100)
        self.sc.close(fd)
        return data

    def writes_event_buffer(self, sw):
        self.sc.write_text(f"/net/switches/{sw}/events/myapp/pi_1/in_port", "2")  # bad: event-buffer-misuse

    def reads_packet_out_spool(self, sw):
        return self.sc.read_bytes(f"/net/switches/{sw}/packet_out/p1.app.1")  # bad: event-buffer-misuse
