"""yancsec: static finding kinds, the reference monitor, CLI discipline."""

from __future__ import annotations

import json
import re
import textwrap
from pathlib import Path

import pytest

from repro.analysis import yancsec as ys
from repro.analysis.cli import ExitCode, main
from repro.analysis.core import SourceFile
from repro.analysis.yancsec import monitor as secmon
from repro.analysis.yancsec.checker import KINDS, analyze_sources, analyze_yancsec
from repro.analysis.yancsec.monitor import SecurityMonitor
from repro.vfs.cred import app_credentials
from repro.vfs.syscalls import Syscalls
from repro.vfs.vfs import VirtualFileSystem

HERE = Path(__file__).parent
BAD = HERE / "fixtures" / "bad" / "yancsec.py"
OK = HERE / "fixtures" / "ok" / "yancsec.py"
BASELINE = HERE / "yancsec_baseline.json"

_BAD_MARK = re.compile(r"#\s*bad:\s*([\w,\-]+)")


def expected_findings(path: Path) -> list[tuple[str, int]]:
    pairs = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        match = _BAD_MARK.search(line)
        if match:
            pairs.extend((rule, lineno) for rule in match.group(1).split(","))
    return sorted(pairs, key=lambda pair: (pair[1], pair[0]))


def findings_of(path: Path) -> list[tuple[str, int]]:
    found = analyze_yancsec([str(path)])
    assert all(f.path == str(path) for f in found)
    return sorted(((f.rule, f.line) for f in found), key=lambda pair: (pair[1], pair[0]))


# -- static pass: finding kinds against the fixture pair ------------------------------


def test_bad_fixture_fires_every_kind():
    want = expected_findings(BAD)
    assert {rule for rule, _ in want} == set(KINDS), "fixture must seed all kinds"
    assert findings_of(BAD) == want


def test_ok_fixture_is_clean():
    assert findings_of(OK) == []


@pytest.mark.parametrize("kind", KINDS)
def test_every_kind_is_seeded_once(kind):
    assert any(rule == kind for rule, _ in expected_findings(BAD))


def test_shipped_tree_is_yancsec_clean():
    repo = HERE.parents[1]
    assert analyze_yancsec([str(repo / "src"), str(repo / "examples")]) == []


def test_checked_in_baseline_is_empty():
    # The sweep is clean, so the baseline CI enforces must stay empty:
    # new findings fail the build instead of silently joining a blob.
    assert json.loads(BASELINE.read_text()) == []


# -- the taint lattice and credential summaries ---------------------------------------


_SCOPE_APP = "# yanclint: " + "scope=app\n"  # split so this file gets no scope
_SCOPE_DRIVER = "# yanclint: " + "scope=driver\n"


def _analyze_text(text: str, path: str = "app.py") -> list[tuple[str, int]]:
    src = SourceFile.parse(path, _SCOPE_APP + textwrap.dedent(text))
    return [(f.rule, f.line) for f in analyze_sources([src])]


def test_validator_if_clears_taint():
    body = """\
    def relay(sc, sw, known):
        owner = sc.read_text(f"/net/switches/{sw}/id")
        {guard}sc.write_text(f"/net/hosts/{owner}/owner", "x")
    """
    noisy = _analyze_text(body.replace("{guard}", ""))
    assert ("tainted-path", 4) in noisy
    quiet = _analyze_text(body.replace("{guard}", "if owner in known:\n            "))
    assert not any(rule == "tainted-path" for rule, _ in quiet)


def test_sanitizer_call_clears_taint():
    quiet = _analyze_text(
        """\
        def relay(sc, sw, sanitize_name):
            owner = sanitize_name(sc.read_text(f"/net/switches/{sw}/id"))
            sc.write_text(f"/net/hosts/{owner}/owner", "x")
        """
    )
    assert not any(rule == "tainted-path" for rule, _ in quiet)


def test_taint_survives_string_assembly():
    noisy = _analyze_text(
        """\
        def relay(sc, sw):
            owner = sc.read_text(f"/net/switches/{sw}/id").strip()
            target = "/net/hosts/" + owner + "/owner"
            sc.write_text(target, "x")
        """
    )
    assert ("tainted-path", 5) in noisy


def test_nonroot_credentials_silence_root_ambient():
    body = """\
    from repro.vfs.syscalls import Syscalls
    from repro.vfs.cred import app_credentials

    def setup(vfs):
        sc = Syscalls(vfs{cred})
        sc.write_text("/net/switches/s1/id", "s1")
    """
    noisy = _analyze_text(body.replace("{cred}", ""))
    assert any(rule == "root-ambient" for rule, _ in noisy)
    quiet = _analyze_text(body.replace("{cred}", ', cred=app_credentials("a")'))
    assert not any(rule == "root-ambient" for rule, _ in quiet)


def test_missing_acl_is_scope_relative():
    # The driver that *creates* middlebox attributes may write them
    # without an ACL; an app writing the same file is the finding.
    body = """\
    def publish(sc, mb, ip):
        sc.write_text(f"/net/middleboxes/{mb}/public_ip", ip)
    """
    src = SourceFile.parse("x.py", _SCOPE_DRIVER + textwrap.dedent(body))
    assert analyze_sources([src]) == []
    assert any(rule == "missing-acl" for rule, _ in _analyze_text(body))


def test_disable_comment_silences_yancsec():
    body = """\
    from repro.vfs.syscalls import Syscalls

    def setup(vfs):
        sc = Syscalls(vfs)
        sc.write_text("/net/switches/s1/id", "x"){comment}
    """
    noisy = _analyze_text(body.replace("{comment}", ""))
    assert ("root-ambient", 6) in noisy
    quiet = _analyze_text(body.replace("{comment}", "  # yancsec: disable=root-ambient"))
    assert quiet == []


# -- the reference monitor ------------------------------------------------------------


@pytest.fixture
def mon():
    monitor = SecurityMonitor()
    monitor.install()
    monitor.register_root("/net")
    yield monitor
    monitor.uninstall()
    secmon.reset_all()  # seeded violations must not leak into YANCSEC=1 teardown


def _host_tree():
    """A root context with one chowned app home and a shared spool."""
    vfs = VirtualFileSystem()
    root = Syscalls(vfs)
    root.makedirs("/net/apps/alice")
    root.write_text("/net/apps/alice/secret", "s3cret")
    root.chown("/net/apps/alice", 501, 100)
    root.makedirs("/tmp")
    root.chmod("/tmp", 0o777)
    return vfs, root


def test_monitor_flags_root_running_app(mon):
    vfs, _ = _host_tree()
    sc = Syscalls(vfs)  # uid 0
    sc.role = "app"
    sc.listdir("/net")
    assert any(f.kind == "root-app" for f in mon.check())


def test_monitor_flags_cross_tenant_read(mon):
    vfs, root = _host_tree()
    # Perms alone would stop this (0o700 home); loosen them so only the
    # monitor's policy stands between bob and alice's home.
    root.chmod("/net/apps/alice", 0o755)
    bob = Syscalls(vfs, cred=app_credentials("bob"))
    bob.role = "app"
    assert bob.read_text("/net/apps/alice/secret") == "s3cret"
    assert any(f.kind == "cross-tenant-read" for f in mon.check())


def test_monitor_flags_write_into_foreign_home(mon):
    vfs, root = _host_tree()
    root.chmod("/net/apps/alice", 0o777)
    root.chmod("/net/apps/alice/secret", 0o666)
    bob = Syscalls(vfs, cred=app_credentials("bob"))
    bob.role = "app"
    bob.write_text("/net/apps/alice/secret", "overwritten")
    assert any(f.kind == "ambient-write" for f in mon.check())


def test_monitor_flags_stray_write(mon):
    vfs, root = _host_tree()
    root.mkdir("/stray", 0o777)
    bob = Syscalls(vfs, cred=app_credentials("bob"))
    bob.role = "app"
    bob.write_text("/stray/out", "x")
    assert any(f.kind == "ambient-write" for f in mon.check())


def test_monitor_quiet_on_controller_tree_and_spools(mon):
    vfs, root = _host_tree()
    root.makedirs("/net/hosts")
    root.chmod("/net/hosts", 0o777)
    bob = Syscalls(vfs, cred=app_credentials("bob"))
    bob.role = "app"
    bob.write_text("/net/hosts/h1", "mac")
    bob.mkdir("/tmp/bob", 0o755)
    bob.write_text("/tmp/bob/scratch", "x")
    assert mon.check() == []


def test_monitor_records_access_tuples(mon):
    vfs, root = _host_tree()
    root.chmod("/net/apps/alice", 0o755)
    bob = Syscalls(vfs, cred=app_credentials("bob"))
    bob.read_text("/net/apps/alice/secret")
    uid = app_credentials("bob").uid
    assert any(t[0] == uid and t[2] == "/net/apps" for t in mon.accesses)


def test_monitor_reset_keeps_registrations(mon):
    vfs, _ = _host_tree()
    sc = Syscalls(vfs)
    sc.role = "app"
    sc.listdir("/net")
    assert mon.check()
    mon.reset()
    assert mon.check() == [] and mon.accesses == set()
    # The /net registration survives: the same violation still resolves
    # against the controller tree after the per-test reset.
    sc.listdir("/net")
    assert any(f.kind == "root-app" for f in mon.check())


def test_install_from_env_is_off_by_default(monkeypatch):
    monkeypatch.delenv("YANCSEC", raising=False)
    assert not secmon.enabled()
    assert secmon.install_from_env() is None


# -- CLI discipline -------------------------------------------------------------------


def test_cli_findings_exit_one(capsys):
    rc = main(["yancsec", str(BAD)])
    out = capsys.readouterr().out
    assert rc == ExitCode.FINDINGS
    for rule, line in expected_findings(BAD):
        assert f"{BAD}:{line}:" in out
        assert f"[{rule}]" in out


def test_cli_clean_exit_zero(capsys):
    rc = main(["yancsec", str(OK)])
    assert rc == ExitCode.CLEAN
    assert "yancsec: 0 finding(s)" in capsys.readouterr().out


def test_cli_json_output(capsys):
    rc = main(["yancsec", str(BAD), "--json"])
    assert rc == ExitCode.FINDINGS
    payload = json.loads(capsys.readouterr().out)
    assert sorted((rec["rule"], rec["line"]) for rec in payload) == sorted(expected_findings(BAD))


def test_cli_baseline_filters_known_findings(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    assert main(["yancsec", str(BAD), "--out", str(baseline)]) == ExitCode.FINDINGS
    capsys.readouterr()
    rc = main(["yancsec", str(BAD), "--baseline", str(baseline)])
    out = capsys.readouterr().out
    assert rc == ExitCode.CLEAN
    assert "(baseline)" in out and "0 finding(s)" in out


def test_cli_internal_error_exit_three(monkeypatch, capsys):
    def boom(paths):
        raise RuntimeError("synthetic analyzer crash")

    monkeypatch.setattr("repro.analysis.yancsec.checker.analyze_yancsec", boom)
    rc = main(["yancsec", str(OK)])
    assert rc == ExitCode.INTERNAL
    assert "internal error" in capsys.readouterr().err


def test_cli_monitor_clean_workload(tmp_path, capsys):
    workload = tmp_path / "workload.py"
    workload.write_text(
        textwrap.dedent(
            """\
            from repro.vfs.syscalls import Syscalls
            from repro.vfs.vfs import VirtualFileSystem

            sc = Syscalls(VirtualFileSystem())
            sc.makedirs("/net/hosts")
            sc.write_text("/net/hosts/h1", "mac")
            """
        )
    )
    rc = main(["yancsec", "--monitor", str(workload)])
    out = capsys.readouterr().out
    assert rc == ExitCode.CLEAN
    assert "0 finding(s)" in out and "access tuple(s)" in out
    secmon.reset_all()


def test_cli_monitor_flags_root_app(tmp_path, capsys):
    workload = tmp_path / "rogue.py"
    workload.write_text(
        textwrap.dedent(
            """\
            from repro.vfs.syscalls import Syscalls
            from repro.vfs.vfs import VirtualFileSystem

            sc = Syscalls(VirtualFileSystem())
            sc.role = "app"
            sc.makedirs("/net/hosts")
            """
        )
    )
    rc = main(["yancsec", "--monitor", str(workload)])
    assert rc == ExitCode.FINDINGS
    assert "[root-app]" in capsys.readouterr().out
    secmon.reset_all()


def test_cli_monitor_crashing_workload_exit_three(tmp_path, capsys):
    workload = tmp_path / "dies.py"
    workload.write_text("import sys\nsys.exit(7)\n")
    rc = main(["yancsec", "--monitor", str(workload)])
    assert rc == ExitCode.INTERNAL
    assert "exited with 7" in capsys.readouterr().err
    secmon.reset_all()


# -- public surface -------------------------------------------------------------------


def test_package_exports():
    assert ys.KINDS == KINDS
    assert callable(ys.analyze_yancsec)
    assert callable(ys.install_from_env)
