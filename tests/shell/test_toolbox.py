"""The coreutils toolbox (paper section 5.4)."""

import pytest

from repro.shell import Shell, ShellError


@pytest.fixture
def sh(sc):
    sc.makedirs("/data/sub")
    sc.write_text("/data/alpha.txt", "line one\nssh port 22\nline three\n")
    sc.write_text("/data/beta.txt", "nothing here\n")
    sc.write_text("/data/sub/gamma.txt", "port 22 again\n")
    return Shell(sc)


def test_ls_plain(sh):
    assert sh.run("ls /data").splitlines() == ["alpha.txt", "beta.txt", "sub"]


def test_ls_long_shows_mode_and_size(sh):
    out = sh.run("ls -l /data")
    assert any(line.startswith("-rw-r--r--") and "alpha.txt" in line for line in out.splitlines())
    assert any(line.startswith("drwxr-xr-x") and "sub" in line for line in out.splitlines())


def test_ls_long_shows_symlink_target(sh, sc):
    sc.symlink("/data/alpha.txt", "/data/link")
    out = sh.run("ls -l /data")
    assert any("link -> /data/alpha.txt" in line for line in out.splitlines())


def test_cat_concatenates(sh):
    out = sh.run("cat /data/beta.txt /data/sub/gamma.txt")
    assert out == "nothing here\nport 22 again\n"


def test_echo_with_redirect(sh, sc):
    sh.run("echo hello world > /data/out.txt")
    assert sc.read_text("/data/out.txt") == "hello world"


def test_append_redirect(sh, sc):
    sh.run("echo first > /data/log")
    sh.run("echo second >> /data/log")
    assert sc.read_text("/data/log") == "firstsecond"


def test_grep_single_file(sh):
    assert sh.run("grep ssh /data/alpha.txt") == "/data/alpha.txt:ssh port 22"


def test_grep_recursive(sh):
    out = sh.run("grep -r 22 /data")
    assert "/data/alpha.txt:ssh port 22" in out
    assert "/data/sub/gamma.txt:port 22 again" in out


def test_grep_names_only(sh):
    out = sh.run("grep -r -l 22 /data")
    assert sorted(out.splitlines()) == ["/data/alpha.txt", "/data/sub/gamma.txt"]


def test_grep_directory_without_r_fails(sh):
    with pytest.raises(ShellError):
        sh.run("grep x /data")


def test_find_by_name(sh):
    out = sh.run("find /data -name *.txt")
    assert "/data/sub/gamma.txt" in out.splitlines()


def test_find_by_type(sh):
    assert sh.run("find /data -type d").splitlines() == ["/data", "/data/sub"]


def test_find_exec_grep_paper_oneliner(sh):
    out = sh.run("find /data -name *.txt -exec grep 22 {} ;")
    assert "/data/alpha.txt:ssh port 22" in out.splitlines()


def test_mkdir_and_p_flag(sh, sc):
    sh.run("mkdir /data/newdir")
    sh.run("mkdir -p /data/a/b/c")
    assert sc.exists("/data/a/b/c")


def test_rm_and_rm_r(sh, sc):
    sh.run("rm /data/beta.txt")
    assert not sc.exists("/data/beta.txt")
    sh.run("rm -r /data/sub")
    assert not sc.exists("/data/sub")


def test_cp_file_and_into_dir(sh, sc):
    sh.run("cp /data/alpha.txt /data/copy.txt")
    assert sc.read_text("/data/copy.txt") == sc.read_text("/data/alpha.txt")
    sh.run("cp /data/alpha.txt /data/sub")
    assert sc.exists("/data/sub/alpha.txt")


def test_cp_r_recursive(sh, sc):
    sh.run("cp -r /data/sub /data/sub2")
    assert sc.read_text("/data/sub2/gamma.txt") == "port 22 again\n"


def test_cp_preserves_symlinks(sh, sc):
    sc.symlink("/data/alpha.txt", "/data/sub/link")
    sh.run("cp -r /data/sub /data/sub3")
    assert sc.readlink("/data/sub3/link") == "/data/alpha.txt"


def test_mv_rename(sh, sc):
    sh.run("mv /data/beta.txt /data/renamed.txt")
    assert sc.exists("/data/renamed.txt")
    assert not sc.exists("/data/beta.txt")


def test_mv_across_filesystems_copies(sh, sc):
    from repro.vfs import MemFs

    sc.mkdir("/other")
    sc.mount("/other", MemFs())
    sh.run("mv /data/beta.txt /other/beta.txt")
    assert sc.read_text("/other/beta.txt") == "nothing here\n"
    assert not sc.exists("/data/beta.txt")


def test_ln_s(sh, sc):
    sh.run("ln -s /data/alpha.txt /data/shortcut")
    assert sc.readlink("/data/shortcut") == "/data/alpha.txt"


def test_stat_output(sh):
    out = sh.run("stat /data/alpha.txt")
    assert "type=file" in out and "mode=644" in out


def test_touch_creates_empty(sh, sc):
    sh.run("touch /data/empty")
    assert sc.read_text("/data/empty") == ""


def test_wc(sh):
    assert sh.run("wc -l /data/alpha.txt") == "3 /data/alpha.txt"
    counts = sh.run("wc /data/alpha.txt").split()
    assert counts[0] == "3"


def test_tree_rendering(sh):
    out = sh.run("tree /data")
    assert out.splitlines()[0] == "/data"
    assert any("gamma.txt" in line for line in out.splitlines())


def test_tree_depth_limit(sh):
    out = sh.run("tree /data -L 1")
    assert not any("gamma" in line for line in out.splitlines())


def test_unknown_command(sh):
    with pytest.raises(ShellError):
        sh.run("frobnicate /data")


def test_empty_command_line(sh):
    assert sh.run("") == ""


def test_fs_errors_become_shell_errors(sh):
    with pytest.raises(ShellError):
        sh.run("cat /does/not/exist")


def test_shell_respects_permissions(vfs, sc):
    from repro.vfs import Credentials, Syscalls

    sc.write_text("/secret", "top")
    sc.chmod("/secret", 0o600)
    user_shell = Shell(Syscalls(vfs, cred=Credentials(uid=500, gid=500)))
    with pytest.raises(ShellError):
        user_shell.run("cat /secret")
