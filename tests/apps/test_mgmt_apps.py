"""Firewall, load balancer, accounting daemon, auditor."""

import pytest

from repro.apps import (
    AccountingDaemon,
    Firewall,
    LoadBalancer,
    RouterDaemon,
    TopologyDaemon,
    run_audit,
)
from repro.apps.firewall import DENY_PRIORITY
from repro.dataplane import FLOOD, Match, Output, build_linear
from repro.runtime import YancController


# -- firewall ---------------------------------------------------------------------


def test_firewall_installs_drop_flows(linear_controller):
    ctl = linear_controller
    fw = Firewall(ctl.host.process(), ctl.sim).start()
    fw.add_rule("no-telnet", Match(dl_type=0x800, nw_proto=6, tp_dst=23))
    ctl.run(0.3)
    for switch in ctl.net.switches.values():
        entries = switch.table.entries()
        assert len(entries) == 1
        assert entries[0].actions == []  # drop
        assert entries[0].priority == DENY_PRIORITY


def test_firewall_blocks_matching_traffic(linear_controller):
    ctl = linear_controller
    yc = ctl.client()
    for sw in yc.switches():
        yc.create_flow(sw, "flood", Match(), [Output(FLOOD)], priority=1)
    fw = Firewall(ctl.host.process(), ctl.sim).start()
    fw.add_rule("no-udp9", Match(dl_type=0x800, nw_proto=17, tp_dst=9))
    ctl.run(0.3)
    h1, h2 = ctl.net.hosts["h1"], ctl.net.hosts["h2"]
    seq = h1.ping(h2.ip)  # ICMP passes
    h1.send_udp(h2.ip, 1, 9, b"blocked")
    h1.send_udp(h2.ip, 1, 10, b"allowed")
    ctl.run(2.0)
    assert h1.reachable(seq)
    ports = [u.dst_port for _s, u in h2.udp_received]
    assert ports == [10]


def test_firewall_applies_to_new_switches(linear_controller):
    ctl = linear_controller
    fw = Firewall(ctl.host.process(), ctl.sim).start()
    fw.add_rule("r", Match(tp_dst=23, nw_proto=6, dl_type=0x800))
    ctl.run(0.2)
    new_switch = ctl.net.add_switch("late")
    ctl.drivers[0].attach_switch(new_switch)
    ctl.run(0.3)
    assert len(new_switch.table) == 1


def test_firewall_remove_rule(linear_controller):
    ctl = linear_controller
    fw = Firewall(ctl.host.process(), ctl.sim).start()
    fw.add_rule("r", Match(tp_dst=23, nw_proto=6, dl_type=0x800))
    ctl.run(0.3)
    fw.remove_rule("r")
    ctl.run(0.3)
    assert all(len(sw.table) == 0 for sw in ctl.net.switches.values())


def test_firewall_config_file(linear_controller):
    ctl = linear_controller
    sc = ctl.host.process()
    sc.write_text(
        "/tmp/firewall.conf",
        """
        [no-ssh]
        match.dl_type = 0x800
        match.nw_proto = 6
        match.tp_dst = 22
        [no-telnet]
        match.dl_type = 0x800
        match.nw_proto = 6
        match.tp_dst = 23
        """,
    )
    fw = Firewall(sc, ctl.sim, config_path="/tmp/firewall.conf").start()
    ctl.run(0.3)
    assert len(fw.rules) == 2
    assert len(ctl.net.switches["sw1"].table) == 2


# -- load balancer -----------------------------------------------------------------


@pytest.fixture
def lb_rig():
    """One switch, one client, two backends."""
    net = build_linear(1, hosts_per_switch=3)
    ctl = YancController(net).start()
    client, b1, b2 = net.hosts["h1"], net.hosts["h2"], net.hosts["h3"]
    lb = LoadBalancer(ctl.host.process(), ctl.sim, vip="10.99.0.1").start()
    host_ports = net.host_ports()
    lb.add_backend(str(b1.ip), str(b1.mac), "sw1", host_ports["h2"][1])
    lb.add_backend(str(b2.ip), str(b2.mac), "sw1", host_ports["h3"][1])
    ctl.run(0.2)
    return ctl, lb, client, b1, b2


def test_lb_first_packet_rewritten_to_backend(lb_rig):
    ctl, lb, client, b1, _b2 = lb_rig
    client.arp_table[__import__("ipaddress").IPv4Address("10.99.0.1")] = b1.mac  # skip ARP for the VIP
    client.send_udp("10.99.0.1", 5555, 80, b"request")
    ctl.run(1.0)
    assert lb.connections_balanced == 1
    assert len(b1.udp_received) == 1
    assert b1.udp_received[0][1].payload == b"request"


def test_lb_round_robin_across_clients(lb_rig):
    ctl, lb, client, b1, b2 = lb_rig
    import ipaddress

    vip = ipaddress.IPv4Address("10.99.0.1")
    client.arp_table[vip] = b1.mac
    client.send_udp("10.99.0.1", 5555, 80, b"c1")
    ctl.run(0.5)
    # second "client": spoof a different source IP from the same host
    from repro.netpkt import ETH_TYPE_IPV4, Ethernet, IPv4, Udp
    from repro.netpkt.packet import build_frame

    spoofed = build_frame(
        Ethernet(dst=b1.mac, src=client.mac, eth_type=ETH_TYPE_IPV4),
        IPv4(src=ipaddress.IPv4Address("10.0.0.200"), dst=vip, proto=17),
        Udp(src_port=1, dst_port=80, payload=b"c2"),
    )
    client.send_raw(spoofed)
    ctl.run(0.5)
    backends_hit = {len(b1.udp_received) > 0, len(b2.udp_received) > 0}
    assert backends_hit == {True}
    assert lb.connections_balanced == 2
    assert len(lb.assignments) == 2


def test_lb_sticky_per_client(lb_rig):
    ctl, lb, client, b1, _b2 = lb_rig
    import ipaddress

    client.arp_table[ipaddress.IPv4Address("10.99.0.1")] = b1.mac
    client.send_udp("10.99.0.1", 5555, 80, b"one")
    ctl.run(0.5)
    first = lb.assignments[client.ip]
    client.send_udp("10.99.0.1", 5556, 80, b"two")
    ctl.run(0.5)
    assert lb.assignments[client.ip] is first


# -- accounting --------------------------------------------------------------------


def test_accounting_samples_ports_and_flows(linear_controller):
    ctl = linear_controller
    yc = ctl.client()
    yc.create_flow("sw1", "f", Match(dl_type=0x800), [Output(2)], priority=2)
    acct = AccountingDaemon(ctl.host.process(), ctl.sim, interval=0.5).start()
    ctl.run(1.6)
    records = acct.records()
    assert acct.samples_taken >= 2
    assert any("flow:f" in line for line in records)
    assert any("port_1" in line for line in records)


def test_accounting_log_is_plain_unix_file(linear_controller):
    ctl = linear_controller
    acct = AccountingDaemon(ctl.host.process(), ctl.sim, interval=0.5).start()
    ctl.run(1.0)
    content = ctl.host.root_sc.read_text("/var/log/yanc-accounting.log")
    assert content.strip()


# -- auditor -----------------------------------------------------------------------


def test_audit_clean_network(linear_controller):
    ctl = linear_controller
    yc = ctl.client()
    yc.create_flow("sw1", "good", Match(dl_type=0x800), [Output(2)], priority=4)
    report = run_audit(ctl.host.process(), clock=ctl.sim.now)
    assert report.clean
    assert report.switches_checked == 3
    assert report.flows_checked == 1


def test_audit_flags_actionless_flow(linear_controller):
    ctl = linear_controller
    yc = ctl.client()
    yc.create_flow("sw1", "noop", Match(dl_type=0x800), [], priority=4)
    report = run_audit(ctl.host.process())
    assert any("no actions" in finding for finding in report.findings)


def test_audit_accepts_firewall_drops(linear_controller):
    ctl = linear_controller
    fw = Firewall(ctl.host.process(), ctl.sim).start()
    fw.add_rule("blk", Match(dl_type=0x800, tp_dst=23, nw_proto=6))
    ctl.run(0.2)
    report = run_audit(ctl.host.process())
    assert report.clean


def test_audit_flags_duplicates(linear_controller):
    ctl = linear_controller
    yc = ctl.client()
    yc.create_flow("sw1", "a", Match(dl_type=0x800), [Output(1)], priority=4)
    yc.create_flow("sw1", "b", Match(dl_type=0x800), [Output(2)], priority=4)
    report = run_audit(ctl.host.process())
    assert any("duplicates" in finding for finding in report.findings)


def test_audit_flags_match_all_flow(linear_controller):
    ctl = linear_controller
    yc = ctl.client()
    yc.create_flow("sw1", "everything", Match(), [Output(1)], priority=4)
    report = run_audit(ctl.host.process())
    assert any("matches everything" in finding for finding in report.findings)


def test_audit_flags_asymmetric_peer(linear_controller):
    ctl = linear_controller
    yc = ctl.client()
    yc.set_peer("sw1", 1, "sw2", 1)  # one direction only
    report = run_audit(ctl.host.process())
    assert any("asymmetric" in finding for finding in report.findings)


def test_audit_writes_report_file(linear_controller):
    ctl = linear_controller
    sc = ctl.host.process()
    run_audit(sc, report_path="/var/audit.txt", clock=1.5)
    text = sc.read_text("/var/audit.txt")
    assert "yanc audit @ t=1.500" in text


def test_audit_from_cron(linear_controller):
    from repro.proc import Cron

    ctl = linear_controller
    sc = ctl.host.process()
    cron = Cron(ctl.sim)
    reports = []
    cron.add_job("audit", 1.0, lambda: reports.append(run_audit(sc, clock=ctl.sim.now)))
    ctl.run(3.5)
    cron.stop()
    assert len(reports) == 3
    assert all(r.clean for r in reports)
