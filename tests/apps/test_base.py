"""The application base classes (event loop, subscriptions)."""

import pytest

from repro.apps.base import PacketInApp, YancApp
from repro.dataplane import build_linear
from repro.runtime import YancController
from repro.vfs.notify import EventMask
from repro.yancfs.client import PacketInEvent


class CollectingApp(PacketInApp):
    app_name = "collector"

    def __init__(self, sc, sim, **kwargs):
        super().__init__(sc, sim, **kwargs)
        self.packets: list[PacketInEvent] = []
        self.switches_added: list[str] = []
        self.switches_removed: list[str] = []

    def handle_packet_in(self, event):
        self.packets.append(event)

    def on_switch_added(self, switch):
        self.switches_added.append(switch)

    def on_switch_removed(self, switch):
        self.switches_removed.append(switch)


@pytest.fixture
def rig():
    ctl = YancController(build_linear(2)).start()
    app = CollectingApp(ctl.host.process(), ctl.sim).start()
    ctl.run(0.1)
    return ctl, app


def test_subscribes_existing_switches(rig):
    ctl, app = rig
    assert sorted(app.switches_added) == ["sw1", "sw2"]
    sc = ctl.host.root_sc
    assert "collector" in sc.listdir("/net/switches/sw1/events")


def test_receives_punts(rig):
    ctl, app = rig
    ctl.net.hosts["h1"].send_udp("10.0.0.99", 1, 2, b"miss")
    ctl.run(0.3)
    assert len(app.packets) == 1
    assert app.packets[0].switch == "sw1"


def test_subscribes_late_switches(rig):
    ctl, app = rig
    late = ctl.net.add_switch("late")
    ctl.drivers[0].attach_switch(late)
    ctl.run(0.3)
    assert "sw3" in app.switches_added
    assert "collector" in ctl.host.root_sc.listdir("/net/switches/sw3/events")


def test_notices_switch_removal(rig):
    ctl, app = rig
    ctl.drivers[0].detach_switch(2)
    ctl.host.root_sc.rmdir("/net/switches/sw2")
    ctl.run(0.2)
    assert app.switches_removed == ["sw2"]


def test_stop_is_quiescent(rig):
    ctl, app = rig
    app.stop()
    ctl.net.hosts["h1"].send_udp("10.0.0.99", 1, 2, b"miss")
    ctl.run(0.3)
    assert app.packets == []
    assert not app.running


def test_watch_on_missing_path_returns_false(rig):
    ctl, app = rig
    assert app.watch("/does/not/exist", EventMask.IN_CREATE, ("ctx",)) is False
    assert app.watch("/net/switches", EventMask.IN_CREATE, ("ctx",)) is True


def test_periodic_task_stops_with_app(rig):
    ctl, _app = rig
    ticks = []
    worker = YancApp(ctl.host.process(), ctl.sim, name="ticker")
    worker.start()
    worker.every(0.1, lambda: ticks.append(ctl.sim.now))
    ctl.run(0.35)
    worker.stop()
    count = len(ticks)
    ctl.run(1.0)
    assert len(ticks) == count


def test_name_override():
    ctl = YancController(build_linear(1)).start()
    app = CollectingApp(ctl.host.process(), ctl.sim, name="custom").start()
    ctl.run(0.1)
    assert app.app_name == "custom"
    assert "custom" in ctl.host.root_sc.listdir("/net/switches/sw1/events")
