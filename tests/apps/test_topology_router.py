"""The topology daemon and the reactive router."""

import pytest

from repro.apps import RouterDaemon, TopologyDaemon, read_topology
from repro.dataplane import build_linear, build_ring, build_tree
from repro.runtime import YancController


def _stack(net, *, router=True):
    ctl = YancController(net).start()
    topod = TopologyDaemon(ctl.host.process(), ctl.sim).start()
    rd = RouterDaemon(ctl.host.process(), ctl.sim).start() if router else None
    return ctl, topod, rd


def test_discovery_matches_ground_truth_linear():
    ctl, topod, _ = _stack(build_linear(4), router=False)
    ctl.run(2.0)
    assert read_topology(ctl.client()) == ctl.expected_topology()
    assert topod.beacons_received > 0


def test_discovery_matches_ground_truth_tree():
    ctl, _, _ = _stack(build_tree(3, 2), router=False)
    ctl.run(2.0)
    assert read_topology(ctl.client()) == ctl.expected_topology()


def test_discovery_symmetric_links():
    ctl, _, _ = _stack(build_ring(4), router=False)
    ctl.run(2.0)
    adjacency = read_topology(ctl.client())
    for src, dst in adjacency.items():
        assert adjacency[dst] == src


def test_stale_links_pruned_after_port_down():
    ctl, topod, _ = _stack(build_linear(2), router=False)
    ctl.run(2.0)
    truth = ctl.expected_topology()
    assert read_topology(ctl.client()) == truth
    # cut the inter-switch link
    link = [l for l in ctl.net.links if hasattr(l.a, "switch") and hasattr(l.b, "switch")][0]
    link.set_up(False)
    ctl.run(3 * topod.link_ttl + 1.0)
    assert read_topology(ctl.client()) == {}


def test_lldp_punt_flow_has_top_priority():
    ctl, _, _ = _stack(build_linear(2), router=False)
    ctl.run(1.0)
    yc = ctl.client()
    spec = yc.read_flow("sw1", "lldp_punt")
    assert spec.priority == 0xFFFF


def test_router_ping_linear():
    ctl, _, router = _stack(build_linear(3))
    ctl.run(2.0)
    h1, h3 = ctl.net.hosts["h1"], ctl.net.hosts["h3"]
    seq = h1.ping(h3.ip)
    ctl.run(3.0)
    assert h1.reachable(seq)
    assert router.paths_installed >= 1


def test_router_ping_ring_no_storm():
    ctl, _, router = _stack(build_ring(5))
    ctl.run(2.0)
    h1, h3 = ctl.net.hosts["h1"], ctl.net.hosts["h3"]
    seq = h1.ping(h3.ip)
    ctl.run(3.0)
    assert h1.reachable(seq)
    # spanning-tree flooding: each broadcast visits each switch at most once
    assert router.floods <= 4 * len(ctl.net.switches)


def test_router_installs_exact_match_flows():
    ctl, _, _ = _stack(build_linear(2))
    ctl.run(2.0)
    h1, h2 = ctl.net.hosts["h1"], ctl.net.hosts["h2"]
    seq = h1.ping(h2.ip)
    ctl.run(3.0)
    assert h1.reachable(seq)
    yc = ctl.client()
    route_flows = [f for f in yc.flows("sw1") if f.startswith("rt-")]
    assert route_flows
    spec = yc.read_flow("sw1", route_flows[0])
    assert spec.match.dl_src is not None and spec.match.dl_dst is not None
    assert spec.match.in_port is not None
    assert spec.idle_timeout > 0


def test_router_learns_edge_hosts_only():
    ctl, _, router = _stack(build_linear(3))
    ctl.run(2.0)
    h1, h3 = ctl.net.hosts["h1"], ctl.net.hosts["h3"]
    seq = h1.ping(h3.ip)
    ctl.run(3.0)
    assert h1.reachable(seq)
    locations = {str(mac): loc for mac, loc in router.host_locations.items()}
    assert locations[str(h1.mac)] == ("sw1", 2)
    assert locations[str(h3.mac)] == ("sw3", 2)


def test_router_records_hosts_in_tree():
    ctl, _, _ = _stack(build_linear(2))
    ctl.run(2.0)
    h1, h2 = ctl.net.hosts["h1"], ctl.net.hosts["h2"]
    h1.ping(h2.ip)
    ctl.run(3.0)
    yc = ctl.client()
    hosts = yc.hosts()
    assert str(h1.mac) in hosts
    attached = ctl.host.root_sc.read_text(f"/net/hosts/{h1.mac}/attached_to")
    assert attached.startswith("sw1:")


def test_second_ping_uses_installed_path_without_new_punt():
    ctl, _, router = _stack(build_linear(2))
    ctl.run(2.0)
    h1, h2 = ctl.net.hosts["h1"], ctl.net.hosts["h2"]
    seq = h1.ping(h2.ip)
    ctl.run(3.0)
    assert h1.reachable(seq)
    paths_before = router.paths_installed
    seq2 = h1.ping(h2.ip)
    ctl.run(1.0)
    assert h1.reachable(seq2)
    assert router.paths_installed == paths_before  # flow already in hardware


def test_app_stop_ceases_processing():
    ctl, topod, router = _stack(build_linear(2))
    ctl.run(1.0)
    router.stop()
    before = router.paths_installed + router.floods
    h1, h2 = ctl.net.hosts["h1"], ctl.net.hosts["h2"]
    h1.ping(h2.ip)
    ctl.run(2.0)
    assert router.paths_installed + router.floods == before
    topod.stop()
