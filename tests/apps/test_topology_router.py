"""The topology daemon and the reactive router."""

from types import SimpleNamespace

import pytest

from repro.apps import RouterDaemon, TopologyDaemon, read_topology
from repro.apps.topology import (
    DEFAULT_DELTAS_PATH,
    TopologyDelta,
    format_delta,
    parse_delta,
)
from repro.dataplane import build_linear, build_ring, build_tree
from repro.perf import SyscallMeter
from repro.runtime import YancController


def _stack(net, *, router=True):
    ctl = YancController(net).start()
    topod = TopologyDaemon(ctl.host.process(), ctl.sim).start()
    rd = RouterDaemon(ctl.host.process(), ctl.sim).start() if router else None
    return ctl, topod, rd


def test_discovery_matches_ground_truth_linear():
    ctl, topod, _ = _stack(build_linear(4), router=False)
    ctl.run(2.0)
    assert read_topology(ctl.client()) == ctl.expected_topology()
    assert topod.beacons_received > 0


def test_discovery_matches_ground_truth_tree():
    ctl, _, _ = _stack(build_tree(3, 2), router=False)
    ctl.run(2.0)
    assert read_topology(ctl.client()) == ctl.expected_topology()


def test_discovery_symmetric_links():
    ctl, _, _ = _stack(build_ring(4), router=False)
    ctl.run(2.0)
    adjacency = read_topology(ctl.client())
    for src, dst in adjacency.items():
        assert adjacency[dst] == src


def test_stale_links_pruned_after_port_down():
    ctl, topod, _ = _stack(build_linear(2), router=False)
    ctl.run(2.0)
    truth = ctl.expected_topology()
    assert read_topology(ctl.client()) == truth
    # cut the inter-switch link
    link = [l for l in ctl.net.links if hasattr(l.a, "switch") and hasattr(l.b, "switch")][0]
    link.set_up(False)
    ctl.run(3 * topod.link_ttl + 1.0)
    assert read_topology(ctl.client()) == {}


def test_lldp_punt_flow_has_top_priority():
    ctl, _, _ = _stack(build_linear(2), router=False)
    ctl.run(1.0)
    yc = ctl.client()
    spec = yc.read_flow("sw1", "lldp_punt")
    assert spec.priority == 0xFFFF


def test_router_ping_linear():
    ctl, _, router = _stack(build_linear(3))
    ctl.run(2.0)
    h1, h3 = ctl.net.hosts["h1"], ctl.net.hosts["h3"]
    seq = h1.ping(h3.ip)
    ctl.run(3.0)
    assert h1.reachable(seq)
    assert router.paths_installed >= 1


def test_router_ping_ring_no_storm():
    ctl, _, router = _stack(build_ring(5))
    ctl.run(2.0)
    h1, h3 = ctl.net.hosts["h1"], ctl.net.hosts["h3"]
    seq = h1.ping(h3.ip)
    ctl.run(3.0)
    assert h1.reachable(seq)
    # spanning-tree flooding: each broadcast visits each switch at most once
    assert router.floods <= 4 * len(ctl.net.switches)


def test_router_installs_exact_match_flows():
    ctl, _, _ = _stack(build_linear(2))
    ctl.run(2.0)
    h1, h2 = ctl.net.hosts["h1"], ctl.net.hosts["h2"]
    seq = h1.ping(h2.ip)
    ctl.run(3.0)
    assert h1.reachable(seq)
    yc = ctl.client()
    route_flows = [f for f in yc.flows("sw1") if f.startswith("rt-")]
    assert route_flows
    spec = yc.read_flow("sw1", route_flows[0])
    assert spec.match.dl_src is not None and spec.match.dl_dst is not None
    assert spec.match.in_port is not None
    assert spec.idle_timeout > 0


def test_router_learns_edge_hosts_only():
    ctl, _, router = _stack(build_linear(3))
    ctl.run(2.0)
    h1, h3 = ctl.net.hosts["h1"], ctl.net.hosts["h3"]
    seq = h1.ping(h3.ip)
    ctl.run(3.0)
    assert h1.reachable(seq)
    locations = {str(mac): loc for mac, loc in router.host_locations.items()}
    assert locations[str(h1.mac)] == ("sw1", 2)
    assert locations[str(h3.mac)] == ("sw3", 2)


def test_router_records_hosts_in_tree():
    ctl, _, _ = _stack(build_linear(2))
    ctl.run(2.0)
    h1, h2 = ctl.net.hosts["h1"], ctl.net.hosts["h2"]
    h1.ping(h2.ip)
    ctl.run(3.0)
    yc = ctl.client()
    hosts = yc.hosts()
    assert str(h1.mac) in hosts
    attached = ctl.host.root_sc.read_text(f"/net/hosts/{h1.mac}/attached_to")
    assert attached.startswith("sw1:")


def test_second_ping_uses_installed_path_without_new_punt():
    ctl, _, router = _stack(build_linear(2))
    ctl.run(2.0)
    h1, h2 = ctl.net.hosts["h1"], ctl.net.hosts["h2"]
    seq = h1.ping(h2.ip)
    ctl.run(3.0)
    assert h1.reachable(seq)
    paths_before = router.paths_installed
    seq2 = h1.ping(h2.ip)
    ctl.run(1.0)
    assert h1.reachable(seq2)
    assert router.paths_installed == paths_before  # flow already in hardware


# -- the incremental delta stream ---------------------------------------------


def test_delta_format_parse_roundtrip():
    add = TopologyDelta("add", ("sw1", 1), ("sw2", 2))
    remove = TopologyDelta("remove", ("sw3", 4), None)
    assert parse_delta(format_delta(add)) == add
    assert parse_delta(format_delta(remove)) == remove
    assert parse_delta("gibberish\n") is None
    assert parse_delta("add sw1 x sw2 2") is None
    assert parse_delta("add sw1 1") is None


def test_discovery_publishes_parseable_add_deltas():
    ctl, topod, _ = _stack(build_linear(3), router=False)
    ctl.run(2.0)
    sc = ctl.host.root_sc
    names = [n for n in sc.listdir(DEFAULT_DELTAS_PATH) if not n.startswith(".")]
    assert len(names) == topod.deltas_published > 0
    deltas = [parse_delta(sc.read_text(f"{DEFAULT_DELTAS_PATH}/{n}")) for n in names]
    assert all(d is not None and d.kind == "add" for d in deltas)
    # the delta stream reconstructs exactly the adjacency in the tree
    assert {d.src: d.dst for d in deltas} == ctl.expected_topology()


def test_delta_backlog_is_pruned(monkeypatch):
    monkeypatch.setattr("repro.apps.topology.DELTA_BACKLOG", 4)
    ctl, topod, _ = _stack(build_linear(2), router=False)
    ctl.run(1.0)
    for n in range(10):
        topod._publish_delta(TopologyDelta("add", (f"x{n}", 1), (f"y{n}", 1)))
    sc = ctl.host.root_sc
    names = [n for n in sc.listdir(DEFAULT_DELTAS_PATH) if not n.startswith(".")]
    assert len(names) <= 4


def test_router_builds_topology_from_deltas_alone():
    """The router starts before discovery: its one walk sees an empty tree,
    and the entire adjacency arrives via the delta stream."""
    ctl, _, router = _stack(build_linear(3))
    ctl.run(2.0)
    assert router.topology() == ctl.expected_topology()
    assert router.full_topology_reads == 1
    assert router.deltas_applied >= len(ctl.expected_topology())


def test_router_steady_state_routes_with_zero_topology_syscalls():
    """Acceptance: routing a packet re-reads no topology in steady state.

    The router gets its own SyscallMeter; after a warm-up window that
    exercises every switch, a fresh host pair is routed end-to-end with
    zero listdir/readlink syscalls and no new full-topology walk.
    """
    net = build_linear(3)
    ctl = YancController(net).start()
    TopologyDaemon(ctl.host.process(), ctl.sim).start()
    meter = SyscallMeter()
    router = RouterDaemon(ctl.host.process(meter=meter), ctl.sim).start()
    ctl.run(2.0)
    h1, h2, h3 = (ctl.net.hosts[n] for n in ("h1", "h2", "h3"))
    seq = h1.ping(h3.ip)
    ctl.run(3.0)
    assert h1.reachable(seq)
    assert router.full_topology_reads == 1  # the startup walk, never again

    listdir_before = meter.counters.get("syscall.listdir")
    readlink_before = meter.counters.get("syscall.readlink")
    seq2 = h3.ping(h2.ip)  # a fresh pair: flood, learn, install a new path
    ctl.run(3.0)
    assert h3.reachable(seq2)
    assert router.full_topology_reads == 1
    assert meter.counters.get("syscall.listdir") == listdir_before
    assert meter.counters.get("syscall.readlink") == readlink_before


def test_router_resyncs_when_delta_file_already_pruned():
    ctl, _, router = _stack(build_linear(2))
    ctl.run(2.0)
    walks = router.full_topology_reads
    # a delta whose file the publisher already unlinked: fall back to a walk
    router.on_other_event(("deltas",), SimpleNamespace(name="d_999_1"))
    assert router.full_topology_reads == walks + 1
    assert router.topology() == ctl.expected_topology()
    # maildir dot-temp names are never read (and never force a walk)
    router.on_other_event(("deltas",), SimpleNamespace(name=".d_partial"))
    assert router.full_topology_reads == walks + 1


def test_link_cut_propagates_via_remove_deltas():
    ctl, topod, router = _stack(build_linear(2))
    ctl.run(2.0)
    assert router.topology() == ctl.expected_topology()
    link = [l for l in ctl.net.links if hasattr(l.a, "switch") and hasattr(l.b, "switch")][0]
    link.set_up(False)
    ctl.run(3 * topod.link_ttl + 1.0)
    assert router.topology() == {}
    assert router.full_topology_reads == 1  # the cut arrived as deltas


def test_app_stop_ceases_processing():
    ctl, topod, router = _stack(build_linear(2))
    ctl.run(1.0)
    router.stop()
    before = router.paths_installed + router.floods
    h1, h2 = ctl.net.hosts["h1"], ctl.net.hosts["h2"]
    h1.ping(h2.ip)
    ctl.run(2.0)
    assert router.paths_installed + router.floods == before
    topod.stop()
