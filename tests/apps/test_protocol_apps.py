"""ARP responder, DHCP server, learning switch, static flow pusher."""

import pytest

from repro.apps import (
    ArpResponder,
    DhcpServer,
    LearningSwitchApp,
    StaticFlowPusher,
    make_discover,
    parse_spec,
)
from repro.dataplane import Match, build_linear, build_star
from repro.netpkt import ip
from repro.runtime import YancController


def test_parse_spec_basics():
    spec = parse_spec(
        """
        # comment
        match.dl_type = 0x800
        action.out = 2

        priority = 10
        """
    )
    assert spec == {"match.dl_type": "0x800", "action.out": "2", "priority": "10"}


def test_parse_spec_rejects_garbage():
    with pytest.raises(ValueError):
        parse_spec("no equals sign here")


def test_static_flow_pusher_pushes(linear_controller):
    ctl = linear_controller
    pusher = StaticFlowPusher(ctl.host.process())
    pusher.push("sw1", "ssh", "match.dl_type=0x800\nmatch.nw_proto=6\nmatch.tp_dst=22\naction.out=2\npriority=40")
    ctl.run(0.2)
    entries = ctl.net.switches["sw1"].table.entries()
    assert len(entries) == 1
    assert entries[0].match.tp_dst == 22


def test_static_flow_pusher_everywhere(linear_controller):
    ctl = linear_controller
    pusher = StaticFlowPusher(ctl.host.process())
    count = pusher.push_everywhere("flood", "action.out=flood\npriority=1")
    ctl.run(0.2)
    assert count == 3
    assert all(len(sw.table) == 1 for sw in ctl.net.switches.values())


def test_static_flow_pusher_from_file(linear_controller):
    ctl = linear_controller
    sc = ctl.host.process()
    sc.write_text("/tmp/flow.conf", "match.dl_type=0x806\naction.out=controller\npriority=60")
    pusher = StaticFlowPusher(sc)
    pusher.push_from_file("sw2", "arp_punt", "/tmp/flow.conf")
    ctl.run(0.2)
    assert len(ctl.net.switches["sw2"].table) == 1


def test_learning_switch_single_switch():
    net = build_star(1)  # core+leaf... use linear(1) instead
    net = build_linear(1, hosts_per_switch=2)
    ctl = YancController(net).start()
    app = LearningSwitchApp(ctl.host.process(), ctl.sim).start()
    ctl.run(0.2)
    h1, h2 = net.hosts["h1"], net.hosts["h2"]
    seq = h1.ping(h2.ip)
    ctl.run(2.0)
    assert h1.reachable(seq)
    assert app.flows_installed >= 1
    assert str(h1.mac) in {str(m) for m in app.tables["sw1"]}


def test_learning_switch_installs_dst_flows():
    net = build_linear(1, hosts_per_switch=2)
    ctl = YancController(net).start()
    LearningSwitchApp(ctl.host.process(), ctl.sim).start()
    ctl.run(0.2)
    h1, h2 = net.hosts["h1"], net.hosts["h2"]
    seq = h1.ping(h2.ip)
    ctl.run(2.0)
    assert h1.reachable(seq)
    yc = ctl.client()
    assert any(name.startswith("l2-") for name in yc.flows("sw1"))


def test_arp_responder_answers_from_learned_bindings():
    net = build_linear(1, hosts_per_switch=2)
    ctl = YancController(net).start()
    LearningSwitchApp(ctl.host.process(), ctl.sim).start()
    arpd = ArpResponder(ctl.host.process(), ctl.sim).start()
    ctl.run(0.2)
    h1, h2 = net.hosts["h1"], net.hosts["h2"]
    # prime: h2's binding learned from its own ARP during first ping
    seq = h1.ping(h2.ip)
    ctl.run(2.0)
    assert h1.reachable(seq)
    assert arpd.bindings[h2.ip] == h2.mac
    # second resolution answered by the controller
    h1.arp_table.clear()
    before = arpd.replies_sent
    seq2 = h1.ping(h2.ip)
    ctl.run(2.0)
    assert h1.reachable(seq2)
    assert arpd.replies_sent > before


def test_arp_responder_loads_recorded_hosts(linear_controller):
    ctl = linear_controller
    yc = ctl.client()
    yc.create_host("h-static", mac="02:00:00:00:00:77", ip_addr="10.0.0.77")
    arpd = ArpResponder(ctl.host.process(), ctl.sim).start()
    assert arpd.bindings[ip("10.0.0.77")] == "02:00:00:00:00:77"


def test_arp_responder_records_hosts(linear_controller):
    ctl = linear_controller
    ArpResponder(ctl.host.process(), ctl.sim).start()
    ctl.run(0.2)
    h1, h2 = ctl.net.hosts["h1"], ctl.net.hosts["h2"]
    h1.ping(h2.ip)  # generates an ARP request packet-in
    ctl.run(1.0)
    assert str(h1.mac) in ctl.client().hosts()


def test_dhcp_discover_offer_cycle(linear_controller):
    ctl = linear_controller
    dhcpd = DhcpServer(ctl.host.process(), ctl.sim, pool="10.1.0.0/28").start()
    ctl.run(0.2)
    h1 = ctl.net.hosts["h1"]
    h1.send_raw(make_discover(h1.mac))
    ctl.run(1.0)
    assert dhcpd.offers_sent == 1
    lease = dhcpd.leases[h1.mac]
    assert lease in dhcpd.pool
    # the offer frame reached the host's NIC (the host has no DHCP client
    # stack, so inspect the frame log rather than the UDP queue)
    from repro.netpkt import Udp

    offers = [f.inner for f in h1.received if isinstance(f.inner, Udp) and f.inner.dst_port == 68]
    assert offers and offers[0].payload == b"DHCPOFFER " + str(lease).encode()


def test_dhcp_same_client_keeps_lease(linear_controller):
    ctl = linear_controller
    dhcpd = DhcpServer(ctl.host.process(), ctl.sim).start()
    ctl.run(0.2)
    h1 = ctl.net.hosts["h1"]
    h1.send_raw(make_discover(h1.mac))
    ctl.run(0.5)
    first = dhcpd.leases[h1.mac]
    h1.send_raw(make_discover(h1.mac))
    ctl.run(0.5)
    assert dhcpd.leases[h1.mac] == first
    assert len(dhcpd.leases) == 1


def test_dhcp_distinct_clients_distinct_leases(linear_controller):
    ctl = linear_controller
    dhcpd = DhcpServer(ctl.host.process(), ctl.sim).start()
    ctl.run(0.2)
    h1, h2 = ctl.net.hosts["h1"], ctl.net.hosts["h2"]
    h1.send_raw(make_discover(h1.mac))
    h2.send_raw(make_discover(h2.mac))
    ctl.run(0.5)
    assert len({dhcpd.leases[h1.mac], dhcpd.leases[h2.mac]}) == 2


def test_dhcp_records_lease_in_hosts_dir(linear_controller):
    ctl = linear_controller
    dhcpd = DhcpServer(ctl.host.process(), ctl.sim).start()
    ctl.run(0.2)
    h1 = ctl.net.hosts["h1"]
    h1.send_raw(make_discover(h1.mac))
    ctl.run(0.5)
    recorded = ctl.host.root_sc.read_text(f"/net/hosts/{h1.mac}/ip").strip()
    assert recorded == str(dhcpd.leases[h1.mac])


def test_dhcp_pool_exhaustion(linear_controller):
    ctl = linear_controller
    dhcpd = DhcpServer(ctl.host.process(), ctl.sim, pool="10.1.0.0/30").start()  # 1 usable after server ip
    ctl.run(0.2)
    from repro.netpkt import MacAddress

    h1 = ctl.net.hosts["h1"]
    for index in range(4):
        h1.send_raw(make_discover(MacAddress(0x0A_00_00_00_10_00 + index)))
    ctl.run(0.5)
    assert len(dhcpd.leases) <= 2
