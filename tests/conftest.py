"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.analysis import race, sanitizer
from repro.analysis.yancsec import monitor as yancsec_monitor
from repro.runtime import YancController
from repro.sim import Simulator
from repro.vfs.syscalls import Syscalls
from repro.vfs.vfs import VirtualFileSystem
from repro.yancfs.client import YancClient, mount_yancfs


@pytest.fixture(autouse=True)
def yancsan_check():
    """With YANCSAN=1, run every test under the runtime sanitizer and fail
    it if any invariant violation (fd leak, unvalidated write, notify
    inconsistency, flow-commit break) is recorded."""
    san = sanitizer.install_from_env()
    if san is None:
        yield
        return
    san.reset()
    yield
    findings = san.check()
    san.reset()
    assert not findings, "yancsan findings:\n" + "\n".join(str(f) for f in findings)


@pytest.fixture(autouse=True)
def yancrace_check():
    """With YANCRACE=1, run every test under the happens-before race
    detector and fail it on any unsynchronized access, torn commit, or
    read of uncommitted flow state."""
    det = race.install_from_env()
    if det is None:
        yield
        return
    det.reset()
    yield
    findings = det.check()
    det.reset()
    assert not findings, "yancrace findings:\n" + "\n".join(str(f) for f in findings)


@pytest.fixture(autouse=True)
def yancsec_check():
    """With YANCSEC=1, run every test under the reference monitor and fail
    it on any isolation violation (app running as root, cross-tenant read,
    ambient write outside the controller tree)."""
    mon = yancsec_monitor.install_from_env()
    if mon is None:
        yield
        return
    mon.reset()
    yield
    findings = mon.check()
    mon.reset()
    assert not findings, "yancsec findings:\n" + "\n".join(str(f) for f in findings)


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def vfs(sim: Simulator) -> VirtualFileSystem:
    return VirtualFileSystem(clock=lambda: sim.now)


@pytest.fixture
def sc(vfs: VirtualFileSystem) -> Syscalls:
    return Syscalls(vfs)


@pytest.fixture
def yanc_sc(sc: Syscalls) -> Syscalls:
    """A root process with a fresh yancfs mounted at /net."""
    mount_yancfs(sc)
    return sc


@pytest.fixture
def yc(yanc_sc: Syscalls) -> YancClient:
    return YancClient(yanc_sc)


@pytest.fixture
def linear_controller() -> YancController:
    """A started controller over a 3-switch line (1 host per switch)."""
    from repro.dataplane.topology import build_linear

    net = build_linear(3, hosts_per_switch=1)
    return YancController(net).start()
