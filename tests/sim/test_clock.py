"""The discrete-event simulator."""

import pytest

from repro.sim import Simulator


def test_time_starts_at_zero():
    assert Simulator().now == 0.0


def test_schedule_and_run_order():
    sim = Simulator()
    order = []
    sim.schedule(2.0, lambda: order.append("b"))
    sim.schedule(1.0, lambda: order.append("a"))
    sim.schedule(3.0, lambda: order.append("c"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_ties_resolve_in_scheduling_order():
    sim = Simulator()
    order = []
    for label in "abc":
        sim.schedule(1.0, lambda label=label: order.append(label))
    sim.run()
    assert order == ["a", "b", "c"]


def test_clock_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(1.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [1.5]
    assert sim.now == 1.5


def test_negative_delay_rejected():
    with pytest.raises(ValueError):
        Simulator().schedule(-1, lambda: None)


def test_schedule_at_past_rejected():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.schedule_at(0.5, lambda: None)


def test_cancel_prevents_firing():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, lambda: fired.append(1))
    event.cancel()
    sim.run()
    assert fired == []


def test_events_can_schedule_events():
    sim = Simulator()
    seen = []

    def first():
        sim.schedule(1.0, lambda: seen.append(sim.now))

    sim.schedule(1.0, first)
    sim.run()
    assert seen == [2.0]


def test_run_until_leaves_future_events():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append("early"))
    sim.schedule(5.0, lambda: fired.append("late"))
    sim.run_until(2.0)
    assert fired == ["early"]
    assert sim.now == 2.0
    assert sim.pending == 1


def test_run_for_is_relative():
    sim = Simulator()
    sim.run_for(2.0)
    sim.run_for(3.0)
    assert sim.now == 5.0


def test_runaway_loop_detected():
    sim = Simulator()

    def again():
        sim.schedule(0.0, again)

    sim.schedule(0.0, again)
    with pytest.raises(RuntimeError):
        sim.run(max_events=100)


def test_periodic_task_fires_until_stopped():
    sim = Simulator()
    ticks = []
    task = sim.every(1.0, lambda: ticks.append(sim.now))
    sim.run_until(3.5)
    task.stop()
    sim.run_until(10.0)
    assert ticks == [1.0, 2.0, 3.0]
    assert task.stopped


def test_periodic_start_delay():
    sim = Simulator()
    ticks = []
    sim.every(1.0, lambda: ticks.append(sim.now), start_delay=0.0)
    sim.run_until(2.5)
    assert ticks == [0.0, 1.0, 2.0]


def test_periodic_zero_interval_rejected():
    with pytest.raises(ValueError):
        Simulator().every(0, lambda: None)


def test_dispatched_counter():
    sim = Simulator()
    sim.schedule(1, lambda: None)
    sim.schedule(2, lambda: None)
    sim.run()
    assert sim.dispatched == 2


def test_pending_counts_live_events_without_heap_scans():
    sim = Simulator()
    events = [sim.schedule(float(i + 1), lambda: None) for i in range(5)]
    assert sim.pending == 5
    events[0].cancel()
    assert sim.pending == 4  # cancel decrements immediately
    sim.step()  # fires the 2.0 event (the cancelled one is skipped)
    assert sim.pending == 3
    sim.run()
    assert sim.pending == 0


def test_cancel_is_idempotent_for_pending():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    other = sim.schedule(2.0, lambda: None)
    event.cancel()
    event.cancel()  # double-cancel must not double-decrement
    assert sim.pending == 1
    sim.run()
    assert sim.pending == 0
    other.cancel()  # cancel-after-fire is a no-op
    assert sim.pending == 0
