"""Per-file consistency via extended attributes (§5.1 + §6).

"We plan on utilizing [extended attributes] to specify consistency
requirements for various network resources."  A file tagged
``user.consistency = strict`` is always refetched by remote clients, even
under a cached mount — the admin chooses the trade-off per resource.
"""

import pytest

from repro.distfs import FileServer, RemoteFs, RpcChannel
from repro.sim import Simulator
from repro.vfs import Syscalls, VirtualFileSystem


@pytest.fixture
def pair():
    sim = Simulator()
    server_vfs = VirtualFileSystem(clock=lambda: sim.now)
    server_sc = Syscalls(server_vfs)
    server_sc.makedirs("/export")
    server_sc.write_text("/export/plain", "v1")
    server_sc.write_text("/export/critical", "v1")
    server_sc.setxattr("/export/critical", "user.consistency", b"strict")
    server = FileServer(server_sc, "/export")
    client_vfs = VirtualFileSystem(clock=lambda: sim.now)
    client_sc = Syscalls(client_vfs)
    channel = RpcChannel(server.handle)
    fs = RemoteFs(channel, consistency="cached", cache_ttl=100.0, clock=lambda: sim.now)
    client_sc.mkdir("/mnt")
    client_sc.mount("/mnt", fs)
    return sim, server_sc, client_sc, channel


def test_plain_file_served_stale_from_cache(pair):
    sim, server, client, _channel = pair
    assert client.read_text("/mnt/plain") == "v1"
    server.write_text("/export/plain", "v2")
    sim.run_for(1.0)
    assert client.read_text("/mnt/plain") == "v1"  # stale: cache ttl 100s


def test_strict_tagged_file_always_fresh(pair):
    sim, server, client, _channel = pair
    assert client.read_text("/mnt/critical") == "v1"
    server.write_text("/export/critical", "v2")
    sim.run_for(1.0)
    assert client.read_text("/mnt/critical") == "v2"  # xattr forces refetch


def test_strict_tag_costs_rpcs(pair):
    _sim, _server, client, channel = pair
    client.read_text("/mnt/critical")
    calls = channel.calls
    client.read_text("/mnt/critical")
    assert channel.calls > calls
    client.read_text("/mnt/plain")
    calls = channel.calls
    client.read_text("/mnt/plain")
    assert channel.calls == calls  # cached


def test_tag_settable_through_the_mount(pair):
    sim, server, client, _channel = pair
    client.read_text("/mnt/plain")
    client.setxattr("/mnt/plain", "user.consistency", b"strict")
    assert server.getxattr("/export/plain", "user.consistency") == b"strict"
    server.write_text("/export/plain", "v3")
    sim.run_for(0.1)
    assert client.read_text("/mnt/plain") == "v3"


def test_xattrs_listable_and_readable_remotely(pair):
    _sim, _server, client, _channel = pair
    assert client.getxattr("/mnt/critical", "user.consistency") == b"strict"
    assert "user.consistency" in client.listxattr("/mnt/critical")


def test_tag_discovered_on_refresh(pair):
    """A tag set server-side reaches clients with the next readdir."""
    sim, server, client, _channel = pair
    client.read_text("/mnt/plain")  # cached under the long ttl
    server.setxattr("/export/plain", "user.consistency", b"strict")
    server.write_text("/export/plain", "v2")
    # force one directory refresh (e.g. the client lists the mount)
    from repro.distfs.client import RemoteFs as _R

    mount_entry = client.ns.mounts()[0]
    mount_entry.fs.invalidate()
    client.listdir("/mnt")
    sim.run_for(0.1)
    assert client.read_text("/mnt/plain") == "v2"
