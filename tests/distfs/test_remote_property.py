"""Property-based remote-FS testing: client and server must agree.

With a strict mount, every client observation must equal the server's
ground truth at all times, regardless of which side mutated last.
"""

from __future__ import annotations

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.distfs import FileServer, RemoteFs, RpcChannel
from repro.sim import Simulator
from repro.vfs import FsError, Syscalls, VirtualFileSystem

_NAMES = st.sampled_from(["a", "b", "sub", "data.txt"])
_CONTENT = st.sampled_from([b"", b"x", b"hello", b"\x00\x01\x02"])


def _tree(sc: Syscalls, root: str) -> dict[str, bytes | None]:
    out: dict[str, bytes | None] = {}
    for dirpath, dirnames, filenames in sc.walk(root):
        rel = dirpath[len(root) :] or "/"
        for name in dirnames:
            out[f"{rel.rstrip('/')}/{name}"] = None
        for name in filenames:
            out[f"{rel.rstrip('/')}/{name}"] = sc.read_bytes(f"{dirpath}/{name}")
    return out


class RemoteFsMachine(RuleBasedStateMachine):
    def __init__(self) -> None:
        super().__init__()
        self.sim = Simulator()
        server_vfs = VirtualFileSystem(clock=lambda: self.sim.now)
        self.server_sc = Syscalls(server_vfs)
        self.server_sc.mkdir("/export")
        server = FileServer(self.server_sc, "/export")
        client_vfs = VirtualFileSystem(clock=lambda: self.sim.now)
        self.client_sc = Syscalls(client_vfs)
        fs = RemoteFs(RpcChannel(server.handle), consistency="strict", clock=lambda: self.sim.now)
        self.client_sc.mkdir("/mnt")
        self.client_sc.mount("/mnt", fs)

    def _server_dirs(self) -> list[str]:
        return ["/"] + [p for p, v in _tree(self.server_sc, "/export").items() if v is None]

    def _abs(self, side: str, rel: str) -> str:
        base = "/export" if side == "server" else "/mnt"
        return base + (rel if rel != "/" else "")

    @rule(data=st.data(), side=st.sampled_from(["server", "client"]), name=_NAMES)
    def mkdir(self, data, side, name):
        parent = data.draw(st.sampled_from(self._server_dirs()))
        sc = self.server_sc if side == "server" else self.client_sc
        try:
            sc.mkdir(f"{self._abs(side, parent).rstrip('/')}/{name}")
        except FsError:
            pass

    @rule(data=st.data(), side=st.sampled_from(["server", "client"]), name=_NAMES, content=_CONTENT)
    def write(self, data, side, name, content):
        parent = data.draw(st.sampled_from(self._server_dirs()))
        sc = self.server_sc if side == "server" else self.client_sc
        try:
            sc.write_bytes(f"{self._abs(side, parent).rstrip('/')}/{name}", content)
        except FsError:
            pass

    @rule(data=st.data(), side=st.sampled_from(["server", "client"]))
    def remove(self, data, side):
        tree = _tree(self.server_sc, "/export")
        if not tree:
            return
        rel = data.draw(st.sampled_from(sorted(tree)))
        sc = self.server_sc if side == "server" else self.client_sc
        path = self._abs(side, rel)
        try:
            if tree[rel] is None:
                sc.rmdir(path)
            else:
                sc.unlink(path)
        except FsError:
            pass

    @rule(data=st.data(), new_name=st.sampled_from(["renamed", "moved"]))
    def client_rename(self, data, new_name):
        tree = _tree(self.server_sc, "/export")
        if not tree:
            return
        source = data.draw(st.sampled_from(sorted(tree)))
        parent = data.draw(st.sampled_from(self._server_dirs()))
        try:
            self.client_sc.rename(
                self._abs("client", source),
                f"{self._abs('client', parent).rstrip('/')}/{new_name}",
            )
        except FsError:
            pass

    @invariant()
    def client_sees_server_truth(self):
        assert _tree(self.client_sc, "/mnt") == _tree(self.server_sc, "/export")


RemoteFsTest = RemoteFsMachine.TestCase
RemoteFsTest.settings = settings(max_examples=25, stateful_step_count=20, deadline=None)
