"""The remote file system: RPC, proxies, consistency modes."""

import pytest

from repro.distfs import FileServer, RemoteFs, RpcChannel
from repro.sim import Simulator
from repro.vfs import (
    FileNotFound,
    InvalidArgument,
    Syscalls,
    TimedOut,
    VirtualFileSystem,
)


def _make_pair(consistency="strict", cache_ttl=0.5):
    """A server VFS exporting /export and a client mounting it at /mnt."""
    sim = Simulator()
    server_vfs = VirtualFileSystem(clock=lambda: sim.now)
    server_sc = Syscalls(server_vfs)
    server_sc.makedirs("/export/docs")
    server_sc.write_text("/export/hello", "from the server")
    server = FileServer(server_sc, "/export")
    client_vfs = VirtualFileSystem(clock=lambda: sim.now)
    client_sc = Syscalls(client_vfs)
    channel = RpcChannel(server.handle, counters=client_vfs.counters)
    fs = RemoteFs(channel, consistency=consistency, cache_ttl=cache_ttl, clock=lambda: sim.now)
    client_sc.mkdir("/mnt")
    client_sc.mount("/mnt", fs)
    return sim, server_sc, client_sc, fs, channel


def test_read_remote_file():
    _sim, _server, client, _fs, _ch = _make_pair()
    assert client.read_text("/mnt/hello") == "from the server"


def test_listdir_remote():
    _sim, _server, client, _fs, _ch = _make_pair()
    assert sorted(client.listdir("/mnt")) == ["docs", "hello"]


def test_write_is_visible_on_server():
    _sim, server, client, _fs, _ch = _make_pair()
    client.write_text("/mnt/new", "written remotely")
    assert server.read_text("/export/new") == "written remotely"


def test_mkdir_rmdir_remote():
    _sim, server, client, _fs, _ch = _make_pair()
    client.mkdir("/mnt/made")
    assert server.stat("/export/made").is_dir
    client.rmdir("/mnt/made")
    assert not server.exists("/export/made")


def test_unlink_remote():
    _sim, server, client, _fs, _ch = _make_pair()
    client.unlink("/mnt/hello")
    assert not server.exists("/export/hello")


def test_rename_remote_single_rpc_rename():
    _sim, server, client, _fs, channel = _make_pair()
    client.rename("/mnt/hello", "/mnt/docs/renamed")
    assert server.read_text("/export/docs/renamed") == "from the server"
    assert channel.counters.get("distfs.rpc.rename") == 1


def test_symlink_remote():
    _sim, server, client, _fs, _ch = _make_pair()
    client.symlink("/mnt/hello", "/mnt/link")
    assert server.readlink("/export/link") == "/mnt/hello"
    assert client.readlink("/mnt/link") == "/mnt/hello"


def test_stat_remote_attrs():
    _sim, server, client, _fs, _ch = _make_pair()
    server.chmod("/export/hello", 0o640)
    server.chown("/export/hello", 7, 8)
    st = client.stat("/mnt/hello")
    assert (st.mode, st.uid, st.gid) == (0o640, 7, 8)
    assert st.size == len("from the server")


def test_missing_remote_file():
    _sim, _server, client, _fs, _ch = _make_pair()
    with pytest.raises(FileNotFound):
        client.read_text("/mnt/nope")


def test_server_rejects_escape():
    _sim, _server, _client, _fs, channel = _make_pair()
    with pytest.raises(InvalidArgument):
        channel.call("read", "../outside")


def test_strict_mode_sees_server_changes_immediately():
    sim, server, client, _fs, _ch = _make_pair(consistency="strict")
    assert client.read_text("/mnt/hello") == "from the server"
    server.write_text("/export/hello", "v2")
    sim.run_for(0.01)
    assert client.read_text("/mnt/hello") == "v2"


def test_cached_mode_serves_stale_until_ttl():
    sim, server, client, _fs, _ch = _make_pair(consistency="cached", cache_ttl=1.0)
    assert client.read_text("/mnt/hello") == "from the server"
    server.write_text("/export/hello", "v2")
    sim.run_for(0.2)
    assert client.read_text("/mnt/hello") == "from the server"  # stale
    sim.run_for(1.0)  # past the TTL
    assert client.read_text("/mnt/hello") == "v2"


def test_cached_mode_fewer_rpcs():
    sim, _server, client, _fs, channel = _make_pair(consistency="cached", cache_ttl=10.0)
    client.read_text("/mnt/hello")
    calls_after_first = channel.calls
    for _ in range(10):
        client.read_text("/mnt/hello")
    assert channel.calls == calls_after_first  # all served from cache


def test_strict_mode_rpc_per_read():
    _sim, _server, client, _fs, channel = _make_pair(consistency="strict")
    client.read_text("/mnt/hello")
    first = channel.calls
    client.read_text("/mnt/hello")
    assert channel.calls > first


def test_eventual_mode_write_behind():
    _sim, server, client, fs, channel = _make_pair(consistency="eventual")
    client.write_text("/mnt/lazy", "pending")
    assert not server.exists("/export/lazy")  # not yet flushed
    write_rpcs = channel.counters.get("distfs.rpc.write")
    assert write_rpcs == 0
    assert fs.flush() == 1
    assert server.read_text("/export/lazy") == "pending"


def test_eventual_mode_local_read_your_writes():
    _sim, _server, client, _fs, _ch = _make_pair(consistency="eventual")
    client.write_text("/mnt/lazy", "pending")
    assert client.read_text("/mnt/lazy") == "pending"


def test_eventual_flush_coalesces_rewrites():
    _sim, server, client, fs, channel = _make_pair(consistency="eventual")
    for version in range(5):
        client.write_text("/mnt/lazy", f"v{version}")
    assert fs.flush() == 1  # one file, one RPC
    assert server.read_text("/export/lazy") == "v4"
    assert channel.counters.get("distfs.rpc.write") == 1


def test_channel_close_times_out():
    _sim, _server, client, _fs, channel = _make_pair()
    channel.close()
    with pytest.raises(TimedOut):
        client.read_text("/mnt/hello")


def test_rpc_accounting():
    _sim, _server, client, _fs, channel = _make_pair()
    client.read_text("/mnt/hello")
    assert channel.calls > 0
    assert channel.time_spent >= channel.calls * 2 * channel.latency
    assert channel.bytes_moved > 0


def test_invalidate_forces_refetch():
    sim, server, client, fs, _ch = _make_pair(consistency="cached", cache_ttl=100.0)
    assert client.read_text("/mnt/hello") == "from the server"
    server.write_text("/export/hello", "fresh")
    sim.run_for(0.01)
    fs.invalidate()
    assert client.read_text("/mnt/hello") == "fresh"


def test_server_side_validation_propagates():
    """yancfs semantics apply server-side, errors surface on the client."""
    sim = Simulator()
    server_vfs = VirtualFileSystem(clock=lambda: sim.now)
    server_sc = Syscalls(server_vfs)
    from repro.yancfs import mount_yancfs

    mount_yancfs(server_sc)
    server = FileServer(server_sc, "/net")
    client_vfs = VirtualFileSystem(clock=lambda: sim.now)
    client_sc = Syscalls(client_vfs)
    fs = RemoteFs(RpcChannel(server.handle), clock=lambda: sim.now)
    client_sc.mkdir("/net")
    client_sc.mount("/net", fs)
    client_sc.mkdir("/net/switches/sw1")
    # semantic mkdir happened on the server
    assert "flows" in client_sc.listdir("/net/switches/sw1")
    client_sc.mkdir("/net/switches/sw1/flows/f")
    with pytest.raises(InvalidArgument):
        client_sc.write_text("/net/switches/sw1/flows/f/priority", "garbage")
