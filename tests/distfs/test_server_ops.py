"""FileServer operations exercised directly (RPC surface completeness)."""

import pytest

from repro.distfs import FileServer, RpcChannel
from repro.vfs import FileNotFound, InvalidArgument, Syscalls, VirtualFileSystem


@pytest.fixture
def server():
    sc = Syscalls(VirtualFileSystem())
    sc.makedirs("/export/docs")
    sc.write_text("/export/file", "content")
    sc.symlink("/export/file", "/export/link")
    return FileServer(sc, "/export"), sc


def test_op_stat(server):
    srv, _sc = server
    ftype, mode, uid, gid, size = srv.handle("stat", ("file",))
    assert ftype == "file" and size == 7


def test_op_append(server):
    srv, sc = server
    srv.handle("append", ("file", b"+more"))
    assert sc.read_text("/export/file") == "content+more"


def test_op_truncate(server):
    srv, sc = server
    srv.handle("truncate", ("file", 3))
    assert sc.read_text("/export/file") == "con"


def test_op_readlink(server):
    srv, _sc = server
    assert srv.handle("readlink", ("link",)) == "/export/file"


def test_op_create_and_unlink(server):
    srv, sc = server
    srv.handle("create", ("fresh",))
    assert sc.read_text("/export/fresh") == ""
    srv.handle("unlink", ("fresh",))
    assert not sc.exists("/export/fresh")


def test_op_rename(server):
    srv, sc = server
    srv.handle("rename", ("file", "docs/moved"))
    assert sc.read_text("/export/docs/moved") == "content"


def test_unknown_op_rejected(server):
    srv, _sc = server
    with pytest.raises(InvalidArgument):
        srv.handle("format_disk", ())


def test_dotdot_escape_rejected_everywhere(server):
    srv, _sc = server
    for op, args in (
        ("read", ("../secret",)),
        ("write", ("../secret", b"x")),
        ("mkdir", ("../dir",)),
        ("rename", ("file", "../out")),
    ):
        with pytest.raises(InvalidArgument):
            srv.handle(op, args)


def test_missing_path_propagates(server):
    srv, _sc = server
    with pytest.raises(FileNotFound):
        srv.handle("read", ("ghost",))


def test_root_of_export_listable(server):
    srv, _sc = server
    names = [entry[0] for entry in srv.handle("readdir", ("",))]
    assert sorted(names) == ["docs", "file", "link"]


def test_busy_time_accrues(server):
    srv, _sc = server
    srv.handle("stat", ("file",))
    srv.handle("stat", ("file",))
    assert srv.busy_time == pytest.approx(2 * srv.service_time)
    assert srv.ops_served == 2


def test_rpc_channel_bytes_accounting():
    srv_sc = Syscalls(VirtualFileSystem())
    srv_sc.mkdir("/export")
    srv_sc.write_text("/export/big", "x" * 1000)
    channel = RpcChannel(FileServer(srv_sc, "/export").handle, latency=1e-3, bandwidth=1e6)
    data = channel.call("read", "big")
    assert len(data) == 1000
    # time = 2*latency + bytes/bandwidth
    assert channel.time_spent == pytest.approx(2e-3 + (1000 + len("big")) / 1e6)
