"""The distributed controller cluster (paper section 6)."""

import pytest

from repro.dataplane import Match, Output, build_linear
from repro.distfs import ControllerCluster
from repro.runtime import YancController


@pytest.fixture
def rig():
    ctl = YancController(build_linear(2)).start()
    cluster = ControllerCluster(ctl.host, consistency="cached", cache_ttl=0.2)
    return ctl, cluster


def test_worker_sees_master_tree(rig):
    ctl, cluster = rig
    worker = cluster.add_worker()
    assert worker.sc.listdir("/net/switches") == ["sw1", "sw2"]


def test_worker_flow_reaches_hardware(rig):
    ctl, cluster = rig
    worker = cluster.add_worker()
    worker.client.create_flow("sw1", "remote", Match(dl_type=0x806), [Output(1)], priority=3)
    ctl.run(0.3)
    assert len(ctl.net.switches["sw1"].table) == 1
    assert "remote" in ctl.client().flows("sw1")


def test_two_workers_see_each_other_after_ttl(rig):
    ctl, cluster = rig
    w1 = cluster.add_worker()
    w2 = cluster.add_worker()
    w2.client.flows("sw1")  # warm w2's cache
    w1.client.create_flow("sw1", "by-w1", Match(dl_vlan=3), [Output(1)], priority=3)
    ctl.run(0.5)  # beyond w2's cache ttl
    assert "by-w1" in w2.client.flows("sw1")


def test_makespan_scales_down_with_workers(rig):
    ctl, cluster = rig

    def work(worker, item):
        worker.client.create_flow("sw2", f"j{item}", Match(dl_vlan=item), [Output(1)], priority=3)

    items = list(range(24))
    cluster.add_worker()
    span1 = cluster.map_items(items[:12], work, compute_cost=1e-3)
    cluster.add_worker()
    cluster.add_worker()
    cluster.add_worker()
    span4 = cluster.map_items(items[12:], work, compute_cost=1e-3)
    # 4 machines do 12 items much faster than 1 machine did 12 items
    assert span4 < span1 / 2


def test_makespan_accounts_rpc_and_compute(rig):
    ctl, cluster = rig
    worker = cluster.add_worker()
    span = cluster.map_items([1, 2], lambda w, i: None, compute_cost=0.5)
    assert span == pytest.approx(1.0)
    assert worker.items_done == 2


def test_map_items_without_workers_rejected(rig):
    _ctl, cluster = rig
    with pytest.raises(RuntimeError):
        cluster.map_items([1], lambda w, i: None)


def test_flush_all_in_eventual_mode():
    ctl = YancController(build_linear(2)).start()
    cluster = ControllerCluster(ctl.host, consistency="eventual")
    worker = cluster.add_worker()
    worker.client.create_flow("sw1", "lazy", Match(dl_vlan=9), [Output(1)], priority=3, commit=False)
    assert "lazy" in ctl.client().flows("sw1")  # mkdir is synchronous
    files_before = ctl.host.root_sc.listdir("/net/switches/sw1/flows/lazy")
    assert "match.dl_vlan" not in files_before  # content writes buffered
    flushed = cluster.flush_all()
    assert flushed >= 1
    assert "match.dl_vlan" in ctl.host.root_sc.listdir("/net/switches/sw1/flows/lazy")


def test_workers_have_independent_rpc_accounting(rig):
    _ctl, cluster = rig
    w1 = cluster.add_worker()
    w2 = cluster.add_worker()
    w1.client.flows("sw1")
    assert w1.channel.calls > 0
    assert w2.channel.calls == 0
