"""Device-local control over the distributed FS (§7.1)."""

import pytest

from repro.dataplane import FLOOD, Match, Output, build_linear
from repro.distfs import DeviceRuntime, FileServer
from repro.runtime import ControllerHost


@pytest.fixture
def devnet():
    net = build_linear(2)
    master = ControllerHost(net.sim)
    server = FileServer(master.root_sc.spawn(), "/net")
    devices = [DeviceRuntime(sw, master, server=server, poll_interval=0.1).start() for sw in net.switches.values()]
    net.run(0.3)
    return net, master, devices


def test_devices_self_register(devnet):
    _net, master, _devices = devnet
    yc = master.client()
    assert yc.switches() == ["sw1", "sw2"]
    assert yc.ports("sw1") == ["port_1", "port_2"]
    assert yc.switch_dpid("sw1") == 1


def test_flow_file_reaches_hardware_without_openflow(devnet):
    net, master, devices = devnet
    yc = master.client()
    yc.create_flow("sw1", "f", Match(dl_type=0x800), [Output(2)], priority=5)
    net.run(0.5)
    assert len(net.switches["sw1"].table) == 1
    assert devices[0].flows_applied == 1
    assert master.vfs.counters.get("openflow.tx") == 0  # truly no OpenFlow


def test_end_to_end_traffic(devnet):
    net, master, _devices = devnet
    yc = master.client()
    for sw in yc.switches():
        yc.create_flow(sw, "flood", Match(), [Output(FLOOD)], priority=1)
    net.run(0.5)
    h1, h2 = net.hosts["h1"], net.hosts["h2"]
    seq = h1.ping(h2.ip)
    net.run(1.0)
    assert h1.reachable(seq)


def test_flow_delete_propagates(devnet):
    net, master, _devices = devnet
    yc = master.client()
    yc.create_flow("sw1", "f", Match(dl_type=0x800), [Output(2)], priority=5)
    net.run(0.5)
    yc.delete_flow("sw1", "f")
    net.run(0.5)
    assert len(net.switches["sw1"].table) == 0


def test_recommit_updates_entry(devnet):
    net, master, _devices = devnet
    yc = master.client()
    yc.create_flow("sw1", "f", Match(dl_type=0x800), [Output(2)], priority=5)
    net.run(0.5)
    master.root_sc.write_text("/net/switches/sw1/flows/f/priority", "9")
    yc.commit_flow("sw1", "f")
    net.run(0.5)
    assert net.switches["sw1"].table.entries()[0].priority == 9


def test_counters_written_back(devnet):
    net, master, _devices = devnet
    yc = master.client()
    for sw in yc.switches():
        yc.create_flow(sw, "flood", Match(), [Output(FLOOD)], priority=1)
    net.run(0.5)
    h1, h2 = net.hosts["h1"], net.hosts["h2"]
    h1.ping(h2.ip)
    net.run(1.0)
    assert yc.flow_counters("sw1", "flood")["packet_count"] > 0


def test_port_down_file_honoured(devnet):
    net, master, _devices = devnet
    yc = master.client()
    yc.set_port_down("sw1", 1, True)
    net.run(0.5)
    assert not net.switches["sw1"].ports[1].admin_up


def test_packet_ins_published_into_buffers(devnet):
    net, master, devices = devnet
    yc = master.client()
    yc.subscribe_events("sw1", "app")
    net.run(0.2)
    net.hosts["h1"].send_udp("10.0.0.99", 1, 2, b"miss")
    net.run(0.3)
    events = yc.read_events("sw1", "app")
    assert len(events) == 1
    assert devices[0].events_published == 1


def test_idle_timeout_retires_tree_entry(devnet):
    net, master, _devices = devnet
    yc = master.client()
    yc.create_flow("sw1", "brief", Match(dl_type=0x800), [Output(2)], priority=5, idle_timeout=0.3)
    net.switches["sw1"].start_expiry(0.2)
    net.run(2.0)
    assert yc.flows("sw1") == []
    assert len(net.switches["sw1"].table) == 0


def test_stop_ceases_reconciliation(devnet):
    net, master, devices = devnet
    devices[0].stop()
    yc = master.client()
    yc.create_flow("sw1", "late", Match(dl_type=0x800), [Output(2)], priority=5)
    net.run(0.5)
    assert len(net.switches["sw1"].table) == 0
