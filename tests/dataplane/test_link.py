"""Links: latency, up/down, endpoint wiring."""

import pytest

from repro.dataplane import Link, Network
from repro.sim import Simulator


class SinkEndpoint:
    def __init__(self, name):
        self.name = name
        self.frames = []

    @property
    def endpoint_name(self):
        return self.name

    def handle_frame(self, raw):
        self.frames.append(raw)


def test_transmit_both_directions():
    sim = Simulator()
    a, b = SinkEndpoint("a"), SinkEndpoint("b")
    link = Link(sim, a, b)
    link.transmit(a, b"to-b")
    link.transmit(b, b"to-a")
    sim.run()
    assert b.frames == [b"to-b"]
    assert a.frames == [b"to-a"]
    assert link.tx_frames == 2


def test_latency_delays_delivery():
    sim = Simulator()
    a, b = SinkEndpoint("a"), SinkEndpoint("b")
    link = Link(sim, a, b, latency=0.25)
    link.transmit(a, b"x")
    sim.run_until(0.2)
    assert b.frames == []
    sim.run_until(0.3)
    assert b.frames == [b"x"]


def test_down_link_drops_and_counts():
    sim = Simulator()
    a, b = SinkEndpoint("a"), SinkEndpoint("b")
    link = Link(sim, a, b)
    link.set_up(False)
    link.transmit(a, b"lost")
    sim.run()
    assert b.frames == []
    assert link.dropped_frames == 1
    link.set_up(True)
    link.transmit(a, b"ok")
    sim.run()
    assert b.frames == [b"ok"]


def test_peer_of_and_foreign_endpoint():
    sim = Simulator()
    a, b, c = SinkEndpoint("a"), SinkEndpoint("b"), SinkEndpoint("c")
    link = Link(sim, a, b)
    assert link.peer_of(a) is b
    assert link.peer_of(b) is a
    with pytest.raises(ValueError):
        link.peer_of(c)


def test_negative_latency_rejected():
    sim = Simulator()
    a, b = SinkEndpoint("a"), SinkEndpoint("b")
    with pytest.raises(ValueError):
        Link(sim, a, b, latency=-1)


def test_repr_shows_endpoints_and_state():
    sim = Simulator()
    a, b = SinkEndpoint("a"), SinkEndpoint("b")
    link = Link(sim, a, b)
    assert "a <-> b" in repr(link) and "up" in repr(link)
    link.set_up(False)
    assert "down" in repr(link)


def test_network_default_latency_applies():
    net = Network(Simulator(), default_latency=0.123)
    s1, s2 = net.add_switch(), net.add_switch()
    net.link_switches(s1, s2)
    assert net.links[0].latency == 0.123
    net.link_switches(s1, s2, latency=0.5)
    assert net.links[1].latency == 0.5
