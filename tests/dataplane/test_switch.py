"""The switch pipeline: forwarding, punts, buffers, ports."""

import pytest

from repro.dataplane import (
    FLOOD,
    TO_CONTROLLER,
    FlowEntry,
    FlowRemovedReason,
    Match,
    Network,
    Output,
    PacketInReason,
    SetNwDst,
)
from repro.dataplane.switch import NO_BUFFER
from repro.netpkt import ETH_TYPE_IPV4, Ethernet, IPv4, MacAddress, Udp, ip, parse_frame
from repro.netpkt.packet import build_frame
from repro.sim import Simulator


class RecordingController:
    """Captures the hooks a driver would receive."""

    def __init__(self):
        self.packet_ins = []
        self.removed = []
        self.port_events = []

    def packet_in(self, switch, in_port, reason, buffer_id, data, total_len):
        self.packet_ins.append((switch.name, in_port, reason, buffer_id, data, total_len))

    def flow_removed(self, switch, entry, reason):
        self.removed.append((switch.name, entry, reason))

    def port_status(self, switch, port, reason):
        self.port_events.append((switch.name, port.port_no, reason))


def _udp_frame(dst_ip="10.0.0.2", payload=b"x", dst_mac=None):
    return build_frame(
        Ethernet(dst=dst_mac or MacAddress(2), src=MacAddress(1), eth_type=ETH_TYPE_IPV4),
        IPv4(src=ip("10.0.0.1"), dst=ip(dst_ip), proto=17),
        Udp(src_port=1, dst_port=2, payload=payload),
    )


@pytest.fixture
def wired():
    """Two switches joined by a link, a host port on each side."""
    net = Network(Simulator())
    a = net.add_switch("a")
    b = net.add_switch("b")
    net.link_switches(a, b)  # port 1 on both
    ha = net.add_host()
    hb = net.add_host()
    net.attach_host(ha, a)  # port 2 on a
    net.attach_host(hb, b)  # port 2 on b
    return net, a, b, ha, hb


def test_miss_punts_to_controller(wired):
    net, a, _b, ha, _hb = wired
    ctl = RecordingController()
    a.controller = ctl
    ha.send_raw(_udp_frame())
    net.run(0.01)
    assert len(ctl.packet_ins) == 1
    name, in_port, reason, buffer_id, data, total_len = ctl.packet_ins[0]
    assert (name, in_port, reason) == ("a", 2, PacketInReason.NO_MATCH)
    assert buffer_id != NO_BUFFER
    assert total_len == len(_udp_frame())


def test_miss_without_controller_drops(wired):
    net, a, _b, ha, hb = wired
    ha.send_raw(_udp_frame())
    net.run(0.01)
    assert hb.rx_frames == 0


def test_matching_entry_forwards(wired):
    net, a, b, ha, hb = wired
    for sw in (a, b):
        sw.install_flow(FlowEntry(match=Match(), actions=[Output(FLOOD)], priority=1))
    ha.send_raw(_udp_frame())
    net.run(0.01)
    assert hb.rx_frames == 1


def test_flood_excludes_ingress_and_down_ports(wired):
    net, a, _b, ha, _hb = wired
    a.install_flow(FlowEntry(match=Match(), actions=[Output(FLOOD)], priority=1))
    a.ports[1].set_admin_up(False)
    before = a.ports[1].tx_packets
    ha.send_raw(_udp_frame())
    net.run(0.01)
    assert a.ports[1].tx_packets == before  # down port skipped
    assert a.ports[2].tx_packets == 0  # ingress skipped


def test_action_rewrite_then_output(wired):
    net, a, _b, ha, hb = wired
    a.install_flow(FlowEntry(match=Match(), actions=[SetNwDst(ip("9.9.9.9")), Output(1)], priority=1))
    _b, b = None, net.switches["b"]
    b.install_flow(FlowEntry(match=Match(), actions=[Output(2)], priority=1))
    ha.send_raw(_udp_frame(dst_mac=hb.mac))
    net.run(0.01)
    assert hb.rx_frames == 1
    assert parse_frame(hb.received[-1].raw).key.nw_dst == ip("9.9.9.9")


def test_output_to_controller_action(wired):
    net, a, _b, ha, _hb = wired
    ctl = RecordingController()
    a.controller = ctl
    a.install_flow(FlowEntry(match=Match(), actions=[Output(TO_CONTROLLER)], priority=1))
    ha.send_raw(_udp_frame())
    net.run(0.01)
    assert ctl.packet_ins[0][2] == PacketInReason.ACTION


def test_counters_on_hit(wired):
    net, a, _b, ha, _hb = wired
    entry = a.install_flow(FlowEntry(match=Match(), actions=[Output(1)], priority=1))
    ha.send_raw(_udp_frame())
    ha.send_raw(_udp_frame(payload=b"yy"))
    net.run(0.01)
    assert entry.packet_count == 2
    assert entry.byte_count > 0


def test_buffered_packet_released_by_flow_install(wired):
    net, a, _b, ha, hb = wired
    ctl = RecordingController()
    a.controller = ctl
    ha.send_raw(_udp_frame())
    net.run(0.01)
    buffer_id = ctl.packet_ins[0][3]
    a.install_flow(FlowEntry(match=Match(), actions=[Output(1)], priority=1), buffer_id=buffer_id)
    net.switches["b"].install_flow(FlowEntry(match=Match(), actions=[Output(2)], priority=1))
    net.run(0.01)
    assert hb.rx_frames == 1


def test_packet_out_with_raw_data(wired):
    net, a, _b, _ha, hb = wired
    a.install_flow(FlowEntry(match=Match(), actions=[], priority=1))  # drop everything inline
    net.switches["b"].install_flow(FlowEntry(match=Match(), actions=[Output(2)], priority=1))
    a.packet_out([Output(1)], data=_udp_frame())
    net.run(0.01)
    assert hb.rx_frames == 1


def test_packet_out_unknown_buffer_is_noop(wired):
    net, a, _b, _ha, hb = wired
    a.packet_out([Output(1)], buffer_id=12345)
    net.run(0.01)
    assert hb.rx_frames == 0


def test_expiry_sweep_notifies(wired):
    net, a, _b, _ha, _hb = wired
    ctl = RecordingController()
    a.controller = ctl
    a.install_flow(FlowEntry(match=Match(), actions=[Output(1)], priority=1, hard_timeout=0.5))
    a.start_expiry(interval=0.25)
    net.run(1.0)
    assert len(ctl.removed) == 1
    assert ctl.removed[0][2] is FlowRemovedReason.HARD_TIMEOUT
    a.stop_expiry()


def test_port_status_hooks(wired):
    _net, a, _b, _ha, _hb = wired
    ctl = RecordingController()
    a.controller = ctl
    port = a.add_port()
    port.set_admin_up(False)
    assert ("a", port.port_no, "add") in ctl.port_events
    assert ("a", port.port_no, "modify") in ctl.port_events


def test_admin_down_port_drops_rx(wired):
    net, a, _b, ha, _hb = wired
    ctl = RecordingController()
    a.controller = ctl
    a.ports[2].set_admin_up(False)
    ha.send_raw(_udp_frame())
    net.run(0.01)
    assert ctl.packet_ins == []


def test_duplicate_port_number_rejected(wired):
    _net, a, *_ = wired
    with pytest.raises(ValueError):
        a.add_port(1)


def test_malformed_frame_counted_not_crashing(wired):
    net, a, _b, _ha, _hb = wired
    a.ports[2].handle_frame(b"\x01")
    assert a.rx_errors == 1


def test_delete_flows_with_notify(wired):
    _net, a, _b, _ha, _hb = wired
    ctl = RecordingController()
    a.controller = ctl
    a.install_flow(FlowEntry(match=Match(tp_dst=22), actions=[Output(1)], priority=5))
    count = a.delete_flows(Match(), notify=True)
    assert count == 1
    assert ctl.removed[0][2] is FlowRemovedReason.DELETE
