"""Hosts (ARP/ping/UDP) and topology builders."""

import pytest

from repro.dataplane import (
    FLOOD,
    FlowEntry,
    Match,
    Network,
    Output,
    build_fat_tree,
    build_linear,
    build_random,
    build_ring,
    build_star,
    build_tree,
)
from repro.sim import Simulator


def _flood_everything(net: Network) -> None:
    for switch in net.switches.values():
        switch.install_flow(FlowEntry(match=Match(), actions=[Output(FLOOD)], priority=1))


def test_hosts_resolve_arp_then_ping():
    net = build_linear(2)
    _flood_everything(net)
    h1, h2 = net.hosts["h1"], net.hosts["h2"]
    seq = h1.ping(h2.ip)
    net.run(1.0)
    assert h1.reachable(seq)
    assert h2.ip in h1.arp_table
    assert h1.ip in h2.arp_table


def test_ping_rtt_scales_with_hops():
    short = build_linear(2)
    long = build_linear(6)
    for net in (short, long):
        _flood_everything(net)
    s1, s2 = short.hosts["h1"], short.hosts["h2"]
    l1, l6 = long.hosts["h1"], long.hosts["h6"]
    seq_s = s1.ping(s2.ip)
    seq_l = l1.ping(l6.ip)
    short.run(2.0)
    long.run(2.0)
    assert s1.reachable(seq_s) and l1.reachable(seq_l)
    assert l1.ping_results[-1].rtt > s1.ping_results[-1].rtt


def test_udp_delivery_and_payload():
    net = build_linear(2)
    _flood_everything(net)
    h1, h2 = net.hosts["h1"], net.hosts["h2"]
    h1.send_udp(h2.ip, 5000, 53, b"query")
    net.run(1.0)
    assert len(h2.udp_received) == 1
    src, datagram = h2.udp_received[0]
    assert src == h1.ip
    assert datagram.payload == b"query"


def test_pending_packets_flushed_after_arp():
    net = build_linear(2)
    _flood_everything(net)
    h1, h2 = net.hosts["h1"], net.hosts["h2"]
    for index in range(3):
        h1.send_udp(h2.ip, 5000, 53, f"m{index}".encode())
    net.run(1.0)
    assert len(h2.udp_received) == 3


def test_host_ignores_foreign_unicast():
    net = build_linear(2)
    _flood_everything(net)
    h1, h2 = net.hosts["h1"], net.hosts["h2"]
    # craft a frame addressed to a third MAC; h2 must not process it
    from repro.netpkt import ETH_TYPE_IPV4, Ethernet, IPv4, MacAddress, Udp
    from repro.netpkt.packet import build_frame

    raw = build_frame(
        Ethernet(dst=MacAddress(0xDEAD), src=h1.mac, eth_type=ETH_TYPE_IPV4),
        IPv4(src=h1.ip, dst=h2.ip, proto=17),
        Udp(src_port=1, dst_port=2),
    )
    h1.send_raw(raw)
    net.run(1.0)
    assert h2.udp_received == []


def test_linear_topology_shape():
    net = build_linear(4, hosts_per_switch=2)
    assert len(net.switches) == 4
    assert len(net.hosts) == 8
    assert len(net.links) == 3 + 8


def test_ring_topology_shape():
    net = build_ring(5)
    assert len(net.switches) == 5
    inter = [l for l in net.links if l not in []]
    assert len(net.links) == 5 + 5  # ring links + host links


def test_ring_minimum_size():
    with pytest.raises(ValueError):
        build_ring(2)


def test_star_topology_shape():
    net = build_star(4)
    assert len(net.switches) == 5
    assert len(net.hosts) == 4


def test_tree_topology_shape():
    net = build_tree(3, 2)
    assert len(net.switches) == 1 + 2 + 4
    assert len(net.hosts) == 4


def test_fat_tree_shape():
    net = build_fat_tree(4)
    assert len(net.switches) == 4 + 8 + 8  # cores + agg + edge
    assert len(net.hosts) == 16
    assert len(net.links) == 48


def test_fat_tree_odd_k_rejected():
    with pytest.raises(ValueError):
        build_fat_tree(3)


def test_random_topology_is_connected_and_deterministic():
    net1 = build_random(8, seed=3)
    net2 = build_random(8, seed=3)
    assert net1.switch_port_peers().keys() == net2.switch_port_peers().keys()
    # spanning chain guarantees switch connectivity
    peers = net1.switch_port_peers()
    assert len(peers) >= 2 * 7


def test_switch_port_peers_symmetry():
    net = build_tree(2, 3)
    peers = net.switch_port_peers()
    for key, value in peers.items():
        assert peers[value] == key


def test_host_ports_mapping():
    net = build_linear(2)
    mapping = net.host_ports()
    assert set(mapping) == {"h1", "h2"}
    assert mapping["h1"][0] == "sw1"


def test_duplicate_names_rejected():
    net = Network(Simulator())
    net.add_switch("x")
    with pytest.raises(ValueError):
        net.add_switch("x")
    net.add_host("h")
    with pytest.raises(ValueError):
        net.add_host("h")


def test_link_down_drops_frames():
    net = build_linear(2)
    _flood_everything(net)
    link = net.links[0]  # sw1<->sw2
    link.set_up(False)
    h1, h2 = net.hosts["h1"], net.hosts["h2"]
    seq = h1.ping(h2.ip)
    net.run(1.0)
    assert not h1.reachable(seq)
    assert h2.rx_frames == 0
