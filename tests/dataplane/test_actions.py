"""Actions: header rewrites and the yanc file representation."""

import pytest

from repro.dataplane import (
    FLOOD,
    Output,
    SetDlDst,
    SetDlSrc,
    SetNwDst,
    SetNwSrc,
    SetTpDst,
    SetTpSrc,
    SetVlan,
    StripVlan,
    parse_action,
)
from repro.netpkt import ETH_TYPE_IPV4, Ethernet, IPv4, MacAddress, Tcp, ip, parse_frame
from repro.netpkt.packet import build_frame

MAC_A = MacAddress("02:00:00:00:00:01")
MAC_B = MacAddress("02:00:00:00:00:02")


def _frame():
    raw = build_frame(
        Ethernet(dst=MAC_B, src=MAC_A, eth_type=ETH_TYPE_IPV4),
        IPv4(src=ip("10.0.0.1"), dst=ip("10.0.0.2"), proto=6),
        Tcp(src_port=1000, dst_port=22),
    )
    return parse_frame(raw)


def test_set_dl_rewrites():
    frame = _frame()
    SetDlSrc(MacAddress(0xAA)).apply(frame)
    SetDlDst(MacAddress(0xBB)).apply(frame)
    reparsed = parse_frame(frame.repack())
    assert int(reparsed.eth.src) == 0xAA
    assert int(reparsed.eth.dst) == 0xBB


def test_set_nw_rewrites_and_checksum_stays_valid():
    frame = _frame()
    SetNwSrc(ip("1.2.3.4")).apply(frame)
    SetNwDst(ip("5.6.7.8")).apply(frame)
    reparsed = parse_frame(frame.repack())
    assert reparsed.key.nw_src == ip("1.2.3.4")
    assert reparsed.key.nw_dst == ip("5.6.7.8")


def test_set_tp_rewrites():
    frame = _frame()
    SetTpSrc(1111).apply(frame)
    SetTpDst(2222).apply(frame)
    key = parse_frame(frame.repack()).key
    assert (key.tp_src, key.tp_dst) == (1111, 2222)


def test_set_nw_noop_on_arp():
    from repro.netpkt import ETH_TYPE_ARP, Arp

    raw = build_frame(
        Ethernet(dst=MAC_B, src=MAC_A, eth_type=ETH_TYPE_ARP),
        Arp.request(MAC_A, ip("10.0.0.1"), ip("10.0.0.2")),
    )
    frame = parse_frame(raw)
    SetNwDst(ip("9.9.9.9")).apply(frame)  # must not blow up / corrupt
    assert parse_frame(frame.repack()).key.nw_dst == ip("10.0.0.2")


def test_vlan_set_and_strip():
    frame = _frame()
    SetVlan(123).apply(frame)
    tagged = parse_frame(frame.repack())
    assert tagged.key.dl_vlan == 123
    StripVlan().apply(tagged)
    untagged = parse_frame(tagged.repack())
    assert untagged.key.dl_vlan is None


def test_set_vlan_preserves_pcp():
    frame = _frame()
    from repro.netpkt.ethernet import Vlan

    frame.eth.vlan = Vlan(vid=1, pcp=5)
    SetVlan(99).apply(frame)
    assert frame.eth.vlan.vid == 99 and frame.eth.vlan.pcp == 5


def test_action_file_roundtrip_all_kinds():
    actions = [
        Output(3),
        Output(FLOOD),
        SetDlSrc(MAC_A),
        SetDlDst(MAC_B),
        SetNwSrc(ip("1.1.1.1")),
        SetNwDst(ip("2.2.2.2")),
        SetTpSrc(10),
        SetTpDst(20),
        SetVlan(77),
        StripVlan(),
    ]
    for action in actions:
        filename, content = action.to_file()
        assert parse_action(filename, content) == action


def test_output_reserved_port_names():
    assert Output(FLOOD).to_file() == ("action.out", "flood")
    assert parse_action("action.out", "controller").port == 0xFFFD


def test_parse_action_rejects_unknown():
    with pytest.raises(ValueError):
        parse_action("action.teleport", "1")
    with pytest.raises(ValueError):
        parse_action("priority", "1")
