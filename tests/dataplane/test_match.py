"""Match semantics: wildcards, CIDR, subset relation, file round-trip."""

from ipaddress import IPv4Network

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dataplane import Match
from repro.netpkt import MacAddress, cidr, ip
from repro.netpkt.packet import FlowKey

MAC_A = MacAddress("02:00:00:00:00:01")
MAC_B = MacAddress("02:00:00:00:00:02")


def _key(**overrides) -> FlowKey:
    base = dict(
        dl_src=MAC_A,
        dl_dst=MAC_B,
        dl_type=0x0800,
        nw_src=ip("10.0.1.5"),
        nw_dst=ip("10.0.2.9"),
        nw_proto=6,
        nw_tos=0,
        tp_src=4000,
        tp_dst=22,
    )
    base.update(overrides)
    return FlowKey(**base)


def test_empty_match_matches_everything():
    assert Match().matches(_key(), in_port=1)


def test_exact_field_match_and_mismatch():
    match = Match(dl_type=0x0800, tp_dst=22)
    assert match.matches(_key(), 1)
    assert not match.matches(_key(tp_dst=80), 1)


def test_in_port_match():
    match = Match(in_port=3)
    assert match.matches(_key(), 3)
    assert not match.matches(_key(), 4)


def test_cidr_prefix_match():
    match = Match(nw_src=cidr("10.0.0.0/16"))
    assert match.matches(_key(), 1)
    assert not match.matches(_key(nw_src=ip("10.1.0.1")), 1)


def test_cidr_requires_ip_field_present():
    match = Match(nw_dst=cidr("10.0.0.0/8"))
    assert not match.matches(_key(nw_dst=None), 1)


def test_exact_from_key_includes_all_fields():
    match = Match.exact(_key(), in_port=2)
    assert match.matches(_key(), 2)
    assert not match.matches(_key(tp_src=4001), 2)
    assert not match.matches(_key(), 3)


def test_subset_relation_wildcards():
    narrow = Match(dl_type=0x0800, nw_proto=6, tp_dst=22)
    broad = Match(dl_type=0x0800)
    assert narrow.is_subset_of(broad)
    assert not broad.is_subset_of(narrow)
    assert narrow.is_subset_of(Match())


def test_subset_relation_cidr():
    narrow = Match(nw_dst=cidr("10.0.1.0/24"))
    broad = Match(nw_dst=cidr("10.0.0.0/16"))
    assert narrow.is_subset_of(broad)
    assert not broad.is_subset_of(narrow)


def test_to_files_and_back():
    match = Match(dl_type=0x0800, nw_dst=cidr("10.0.0.0/24"), nw_proto=6, tp_dst=22, dl_src=MAC_A)
    files = match.to_files()
    assert files["match.tp_dst"] == "22"
    assert files["match.nw_dst"] == "10.0.0.0/24"
    assert Match.from_files(files) == match


def test_from_files_ignores_non_match_entries():
    match = Match.from_files({"match.dl_type": "0x800", "priority": "5", "action.out": "2"})
    assert match == Match(dl_type=0x0800)


def test_from_files_unknown_field_rejected():
    with pytest.raises(ValueError):
        Match.from_files({"match.bogus": "1"})


def test_str_rendering():
    assert str(Match()) == "Match(*)"
    assert "tp_dst=22" in str(Match(tp_dst=22))


@given(
    prefix_len=st.integers(min_value=0, max_value=32),
    addr=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_cidr_match_agrees_with_ipaddress(prefix_len, addr):
    network = IPv4Network((addr & (2**32 - 2 ** (32 - prefix_len)) if prefix_len else 0, prefix_len))
    match = Match(nw_src=network)
    probe = _key(nw_src=ip(addr))
    assert match.matches(probe, 1) == (probe.nw_src in network)


@given(st.data())
def test_subset_implies_match_implication(data):
    """If A ⊆ B then any key matching A matches B (spot-checked)."""
    fields = {}
    if data.draw(st.booleans()):
        fields["dl_type"] = 0x0800
    if data.draw(st.booleans()):
        fields["nw_proto"] = 6
    if data.draw(st.booleans()):
        fields["tp_dst"] = 22
    narrow = Match(dl_type=0x0800, nw_proto=6, tp_dst=22)
    broad = Match(**fields)
    assert narrow.is_subset_of(broad)
    key = _key()
    if narrow.matches(key, 1):
        assert broad.matches(key, 1)
