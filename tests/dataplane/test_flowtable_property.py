"""Flow-table fuzzing against a brute-force reference model."""

from __future__ import annotations

from ipaddress import IPv4Address, IPv4Network

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataplane import FlowEntry, FlowTable, Match, Output
from repro.netpkt import MacAddress
from repro.netpkt.packet import FlowKey

_MACS = [MacAddress(i) for i in range(1, 4)]
_IPS = [IPv4Address(f"10.0.{i}.{j}") for i in range(2) for j in range(1, 3)]


def _match_strategy() -> st.SearchStrategy[Match]:
    maybe = lambda strat: st.one_of(st.none(), strat)  # noqa: E731
    return st.builds(
        Match,
        in_port=maybe(st.integers(min_value=1, max_value=3)),
        dl_src=maybe(st.sampled_from(_MACS)),
        dl_dst=maybe(st.sampled_from(_MACS)),
        dl_type=maybe(st.sampled_from([0x0800, 0x0806])),
        dl_vlan=maybe(st.integers(min_value=0, max_value=5)),
        nw_src=maybe(st.sampled_from([IPv4Network("10.0.0.0/16"), IPv4Network("10.0.0.0/24"), IPv4Network("10.0.0.1/32")])),
        nw_dst=maybe(st.sampled_from([IPv4Network("10.0.0.0/16"), IPv4Network("10.0.1.0/24")])),
        nw_proto=maybe(st.sampled_from([6, 17])),
        tp_src=maybe(st.integers(min_value=1, max_value=4)),
        tp_dst=maybe(st.sampled_from([22, 80])),
    )


def _key_strategy() -> st.SearchStrategy[FlowKey]:
    return st.builds(
        FlowKey,
        dl_src=st.sampled_from(_MACS),
        dl_dst=st.sampled_from(_MACS),
        dl_type=st.sampled_from([0x0800, 0x0806]),
        dl_vlan=st.one_of(st.none(), st.integers(min_value=0, max_value=5)),
        dl_vlan_pcp=st.none(),
        nw_src=st.one_of(st.none(), st.sampled_from(_IPS)),
        nw_dst=st.one_of(st.none(), st.sampled_from(_IPS)),
        nw_proto=st.one_of(st.none(), st.sampled_from([6, 17])),
        nw_tos=st.none(),
        tp_src=st.one_of(st.none(), st.integers(min_value=1, max_value=4)),
        tp_dst=st.one_of(st.none(), st.sampled_from([22, 80])),
    )


@settings(max_examples=200, deadline=None)
@given(
    specs=st.lists(st.tuples(_match_strategy(), st.integers(min_value=0, max_value=10)), max_size=12),
    key=_key_strategy(),
    in_port=st.integers(min_value=1, max_value=3),
)
def test_lookup_agrees_with_bruteforce(specs, key, in_port):
    table = FlowTable()
    entries = [
        table.install(FlowEntry(match=match, actions=[Output(1)], priority=priority), replace=False)
        for match, priority in specs
    ]
    winner = table.lookup(key, in_port)
    candidates = [e for e in entries if e.match.matches(key, in_port)]
    if not candidates:
        assert winner is None
    else:
        best = max(candidates, key=lambda e: (e.priority, -e.entry_id))
        assert winner is best


@settings(max_examples=150, deadline=None)
@given(
    specs=st.lists(_match_strategy(), min_size=1, max_size=10),
    selector=_match_strategy(),
)
def test_nonstrict_delete_agrees_with_subset(specs, selector):
    table = FlowTable()
    entries = [table.install(FlowEntry(match=m, actions=[], priority=5), replace=False) for m in specs]
    removed = table.delete(selector)
    expected = [e for e in entries if e.match.is_subset_of(selector)]
    assert set(id(e) for e in removed) == set(id(e) for e in expected)
    assert len(table) == len(entries) - len(expected)


@settings(max_examples=150, deadline=None)
@given(narrow=_match_strategy(), broad=_match_strategy(), key=_key_strategy(), in_port=st.integers(min_value=1, max_value=3))
def test_subset_relation_sound(narrow, broad, key, in_port):
    """If is_subset_of holds, matching narrow implies matching broad."""
    if narrow.is_subset_of(broad) and narrow.matches(key, in_port):
        assert broad.matches(key, in_port)
