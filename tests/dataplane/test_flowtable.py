"""Flow table: priorities, timeouts, modify/delete, counters."""

from hypothesis import given
from hypothesis import strategies as st

from repro.dataplane import FlowEntry, FlowRemovedReason, FlowTable, Match, Output
from repro.netpkt import MacAddress, ip
from repro.netpkt.packet import FlowKey

KEY = FlowKey(
    dl_src=MacAddress(1),
    dl_dst=MacAddress(2),
    dl_type=0x0800,
    nw_src=ip("10.0.0.1"),
    nw_dst=ip("10.0.0.2"),
    nw_proto=6,
    nw_tos=0,
    tp_src=1,
    tp_dst=22,
)


def _entry(priority=100, match=None, port=1, **kwargs) -> FlowEntry:
    return FlowEntry(match=match or Match(), actions=[Output(port)], priority=priority, **kwargs)


def test_lookup_highest_priority_wins():
    table = FlowTable()
    low = table.install(_entry(priority=10, port=1))
    high = table.install(_entry(priority=20, port=2))
    assert table.lookup(KEY, 1) is high
    table.remove_entry(high)
    assert table.lookup(KEY, 1) is low


def test_priority_tie_breaks_to_oldest():
    table = FlowTable()
    first = table.install(_entry(priority=10, port=1))
    table.install(_entry(priority=10, match=Match(dl_type=0x0800), port=2))
    assert table.lookup(KEY, 1) is first


def test_no_match_returns_none():
    table = FlowTable()
    table.install(_entry(match=Match(tp_dst=80)))
    assert table.lookup(KEY, 1) is None


def test_install_replaces_same_match_priority():
    table = FlowTable()
    table.install(_entry(priority=5, match=Match(tp_dst=22), port=1))
    table.install(_entry(priority=5, match=Match(tp_dst=22), port=9))
    assert len(table) == 1
    entry = table.lookup(KEY, 1)
    assert entry is not None and entry.actions == [Output(9)]


def test_install_no_replace_keeps_both():
    table = FlowTable()
    table.install(_entry(priority=5, match=Match(tp_dst=22)))
    table.install(_entry(priority=5, match=Match(tp_dst=22)), replace=False)
    assert len(table) == 2


def test_hit_updates_counters():
    table = FlowTable()
    entry = table.install(_entry())
    entry.hit(now=1.0, nbytes=100)
    entry.hit(now=2.0, nbytes=50)
    assert entry.packet_count == 2
    assert entry.byte_count == 150
    assert entry.last_hit == 2.0


def test_idle_timeout_expiry():
    table = FlowTable()
    entry = table.install(_entry(idle_timeout=5.0), now=0.0)
    assert table.expire(4.0) == []
    expired = table.expire(5.0)
    assert expired == [(entry, FlowRemovedReason.IDLE_TIMEOUT)]
    assert len(table) == 0


def test_idle_timeout_reset_by_traffic():
    table = FlowTable()
    entry = table.install(_entry(idle_timeout=5.0), now=0.0)
    entry.hit(now=4.0, nbytes=1)
    assert table.expire(8.0) == []
    assert table.expire(9.0) != []


def test_hard_timeout_ignores_traffic():
    table = FlowTable()
    entry = table.install(_entry(hard_timeout=5.0), now=0.0)
    entry.hit(now=4.9, nbytes=1)
    assert table.expire(5.0) == [(entry, FlowRemovedReason.HARD_TIMEOUT)]


def test_zero_timeouts_never_expire():
    table = FlowTable()
    table.install(_entry(), now=0.0)
    assert table.expire(1e9) == []


def test_delete_nonstrict_subset_semantics():
    table = FlowTable()
    table.install(_entry(match=Match(dl_type=0x0800, tp_dst=22), priority=1))
    table.install(_entry(match=Match(dl_type=0x0800, tp_dst=80), priority=2))
    table.install(_entry(match=Match(dl_type=0x0806), priority=3))
    removed = table.delete(Match(dl_type=0x0800))
    assert len(removed) == 2
    assert len(table) == 1


def test_delete_strict_requires_exact_match_and_priority():
    table = FlowTable()
    table.install(_entry(match=Match(tp_dst=22), priority=7))
    assert table.delete(Match(tp_dst=22), strict=True, priority=8) == []
    assert len(table.delete(Match(tp_dst=22), strict=True, priority=7)) == 1


def test_modify_rewrites_actions():
    table = FlowTable()
    table.install(_entry(match=Match(tp_dst=22), priority=7, port=1))
    changed = table.modify(Match(), [Output(42)])
    assert changed == 1
    entry = table.lookup(KEY, 1)
    assert entry is not None and entry.actions == [Output(42)]


def test_delete_nonstrict_ignores_priority():
    table = FlowTable()
    table.install(_entry(match=Match(tp_dst=22), priority=7))
    assert len(table.delete(Match(tp_dst=22), priority=9999)) == 1
    assert len(table) == 0


def test_modify_strict_requires_exact_match_and_priority():
    table = FlowTable()
    table.install(_entry(match=Match(tp_dst=22), priority=7, port=1))
    assert table.modify(Match(tp_dst=22), [Output(5)], strict=True, priority=8) == 0
    assert table.modify(Match(tp_dst=22, dl_type=0x0800), [Output(5)], strict=True, priority=7) == 0
    assert table.modify(Match(tp_dst=22), [Output(5)], strict=True, priority=7) == 1


def test_modify_preserves_counters_and_timeouts():
    """OpenFlow 1.0 §4.6: MODIFY leaves counters (and clocks) untouched."""
    table = FlowTable()
    entry = table.install(_entry(match=Match(tp_dst=22), idle_timeout=5.0), now=1.0)
    entry.hit(now=2.0, nbytes=77)
    assert table.modify(Match(), [Output(9)]) == 1
    assert entry.actions == [Output(9)]
    assert entry.packet_count == 1 and entry.byte_count == 77
    assert entry.installed_at == 1.0 and entry.idle_timeout == 5.0
    # The idle clock keeps ticking from the old last-hit, not the modify.
    assert table.expire(6.9) == []
    assert table.expire(7.0) == [(entry, FlowRemovedReason.IDLE_TIMEOUT)]


def test_delete_nonstrict_cidr_selector_removes_only_narrower():
    table = FlowTable()
    narrow = table.install(_entry(match=Match(dl_type=0x0800, nw_dst="10.0.0.0/24")))
    table.install(_entry(match=Match(dl_type=0x0800, nw_dst="10.0.0.0/8")))
    removed = table.delete(Match(dl_type=0x0800, nw_dst="10.0.0.0/16"))
    assert removed == [narrow]  # the /24 is inside the /16; the /8 is wider
    assert len(table) == 1


def test_delete_returns_entries_in_installation_order():
    table = FlowTable()
    low = table.install(_entry(match=Match(tp_dst=22), priority=1))
    high = table.install(_entry(match=Match(tp_dst=80), priority=9))
    removed = table.delete(Match())
    assert removed == [low, high]  # install order, not priority order


def test_hard_timeout_beats_idle_at_same_instant():
    table = FlowTable()
    entry = table.install(_entry(idle_timeout=5.0, hard_timeout=5.0), now=0.0)
    assert table.expire(5.0) == [(entry, FlowRemovedReason.HARD_TIMEOUT)]


def test_lookup_watermark_skips_lower_priority_shapes():
    table = FlowTable()
    high = table.install(_entry(match=Match(dl_type=0x0800), priority=100, port=1))
    table.install(_entry(match=Match(tp_dst=22), priority=5, port=2))
    assert table.lookup(KEY, 1) is high
    # The tp_dst shape's max priority (5) can't beat 100: never probed.
    assert table.entries_examined == 1


def test_equal_max_priority_shapes_all_probed_for_the_tie_break():
    table = FlowTable()
    first = table.install(_entry(match=Match(tp_dst=22), priority=7, port=2))
    table.install(_entry(match=Match(dl_type=0x0800), priority=7, port=1))
    assert table.lookup(KEY, 1) is first  # oldest entry wins the tie
    assert table.entries_examined == 2  # an equal-max shape is still probed


def test_aggregate_stats():
    table = FlowTable()
    a = table.install(_entry(match=Match(tp_dst=22)))
    a.hit(0.0, 100)
    table.install(_entry(match=Match(tp_dst=80), priority=5))
    table.lookup(KEY, 1)
    stats = table.aggregate_stats()
    assert stats["flow_count"] == 2
    assert stats["packet_count"] == 1
    assert stats["byte_count"] == 100
    assert stats["lookup_count"] == 1
    assert stats["matched_count"] == 1


def test_entries_sorted_by_priority():
    table = FlowTable()
    table.install(_entry(priority=1))
    table.install(_entry(priority=9, match=Match(tp_dst=22)))
    priorities = [e.priority for e in table.entries()]
    assert priorities == [9, 1]


@given(st.lists(st.integers(min_value=0, max_value=0xFFFF), min_size=1, max_size=20))
def test_lookup_always_returns_max_priority_match(priorities):
    """Against a brute-force model: winner is max priority, oldest first."""
    table = FlowTable()
    entries = [table.install(_entry(priority=p, match=Match(), port=i), replace=False) for i, p in enumerate(priorities)]
    winner = table.lookup(KEY, 1)
    best = max(entries, key=lambda e: (e.priority, -e.entry_id))
    assert winner is best
