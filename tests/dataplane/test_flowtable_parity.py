"""Randomized parity: the indexed FlowTable vs the linear reference model.

Both tables receive the *same* FlowEntry objects through identical
randomized op sequences (install/replace, non/strict delete, modify,
expire, traffic hits), so every lookup can be checked by object identity:
the tuple-space index must produce exactly the winner the full scan does.
"""

import random

from repro.dataplane import FlowEntry, FlowTable, LinearFlowTable, Match, Output
from repro.netpkt import MacAddress, ip
from repro.netpkt.packet import FlowKey

MACS = [MacAddress(n) for n in range(1, 5)]
DL_TYPES = [0x0800, 0x0806]
PORTS = [1, 2, 3]
TP_PORTS = [22, 80]
# Mixed prefix lengths so distinct CIDR shapes land in distinct groups.
PREFIXES = ["10.0.0.1/32", "10.0.0.2/32", "10.0.0.0/24", "10.0.0.0/16"]
IPS = [ip("10.0.0.1"), ip("10.0.0.2"), ip("10.0.0.3"), ip("10.1.0.1")]


def random_match(rng: random.Random) -> Match:
    kwargs = {}
    if rng.random() < 0.3:
        kwargs["in_port"] = rng.choice(PORTS)
    if rng.random() < 0.4:
        kwargs["dl_src"] = rng.choice(MACS)
    if rng.random() < 0.4:
        kwargs["dl_dst"] = rng.choice(MACS)
    if rng.random() < 0.5:
        kwargs["dl_type"] = rng.choice(DL_TYPES)
    if rng.random() < 0.3:
        kwargs["nw_src"] = rng.choice(PREFIXES)
    if rng.random() < 0.3:
        kwargs["nw_dst"] = rng.choice(PREFIXES)
    if rng.random() < 0.3:
        kwargs["tp_dst"] = rng.choice(TP_PORTS)
    return Match(**kwargs)


def random_key(rng: random.Random) -> tuple[FlowKey, int]:
    has_ip = rng.random() < 0.8  # sometimes an ARP-ish key with no nw fields
    key = FlowKey(
        dl_src=rng.choice(MACS),
        dl_dst=rng.choice(MACS),
        dl_type=rng.choice(DL_TYPES),
        nw_src=rng.choice(IPS) if has_ip else None,
        nw_dst=rng.choice(IPS) if has_ip else None,
        nw_proto=6 if has_ip else None,
        nw_tos=0 if has_ip else None,
        tp_src=rng.choice(TP_PORTS) if has_ip else None,
        tp_dst=rng.choice(TP_PORTS) if has_ip else None,
    )
    return key, rng.choice(PORTS)


def _ids(entries) -> list[int]:
    return sorted(e.entry_id for e in entries)


def _run_parity(seed: int, steps: int = 250) -> None:
    rng = random.Random(seed)
    indexed, linear = FlowTable(), LinearFlowTable()
    now = 0.0
    for _ in range(steps):
        now += rng.random() * 0.3
        op = rng.random()
        if op < 0.55:
            entry = FlowEntry(
                match=random_match(rng),
                actions=[Output(rng.choice(PORTS))],
                priority=rng.randrange(1, 7),  # small range: plenty of ties
                idle_timeout=rng.choice([0.0, 0.0, 1.0]),
                hard_timeout=rng.choice([0.0, 0.0, 2.0]),
            )
            replace = rng.random() < 0.7
            indexed.install(entry, now=now, replace=replace)
            linear.install(entry, now=now, replace=replace)
        elif op < 0.70:
            match = random_match(rng)
            strict = rng.random() < 0.5
            priority = rng.randrange(1, 7)
            removed_indexed = indexed.delete(match, strict=strict, priority=priority)
            removed_linear = linear.delete(match, strict=strict, priority=priority)
            assert _ids(removed_indexed) == _ids(removed_linear)
        elif op < 0.80:
            match = random_match(rng)
            strict = rng.random() < 0.5
            priority = rng.randrange(1, 7)
            out_port = rng.choice(PORTS)
            assert indexed.modify(
                match, [Output(out_port)], strict=strict, priority=priority
            ) == linear.modify(match, [Output(out_port)], strict=strict, priority=priority)
        elif op < 0.90:
            expired_indexed = indexed.expire(now)
            expired_linear = linear.expire(now)
            assert sorted((e.entry_id, r) for e, r in expired_indexed) == sorted(
                (e.entry_id, r) for e, r in expired_linear
            )
        for _ in range(3):
            key, in_port = random_key(rng)
            got = indexed.lookup(key, in_port)
            want = linear.lookup(key, in_port)
            assert got is want, f"seed={seed} key={key} got={got} want={want}"
            if got is not None and rng.random() < 0.3:
                got.hit(now, 64)  # shared object: re-arms the idle clock in both worlds
    assert len(indexed) == len(linear)
    # entries() agrees on membership *and* on priority/age ordering.
    assert [e.entry_id for e in indexed.entries()] == [e.entry_id for e in linear.entries()]


def test_randomized_op_sequences_agree():
    for seed in range(8):
        _run_parity(seed)


def test_install_replace_parity():
    """ADD-with-overwrite resolves through one bucket probe, not a scan."""
    indexed, linear = FlowTable(), LinearFlowTable()
    rng = random.Random(99)
    for _ in range(200):
        entry = FlowEntry(
            match=random_match(rng), actions=[Output(rng.choice(PORTS))], priority=rng.randrange(1, 4)
        )
        indexed.install(entry)
        linear.install(entry)
    assert len(indexed) == len(linear)
    assert [e.entry_id for e in indexed.entries()] == [e.entry_id for e in linear.entries()]
    for _ in range(200):
        key, in_port = random_key(rng)
        assert indexed.lookup(key, in_port) is linear.lookup(key, in_port)


def test_exact_match_heavy_table_parity():
    """The router's workload shape: thousands of exact entries, few tiers."""
    indexed, linear = FlowTable(), LinearFlowTable()
    rng = random.Random(7)
    keys = []
    for _ in range(500):
        key, in_port = random_key(rng)
        keys.append((key, in_port))
        entry = FlowEntry(match=Match.exact(key, in_port=in_port), actions=[Output(1)])
        indexed.install(entry, replace=False)
        linear.install(entry, replace=False)
    tier = FlowEntry(match=Match(dl_type=0x0800), actions=[Output(2)], priority=1)
    indexed.install(tier)
    linear.install(tier)
    for key, in_port in keys:
        assert indexed.lookup(key, in_port) is linear.lookup(key, in_port)
    stranger = FlowKey(dl_src=MacAddress(0x99), dl_dst=MacAddress(0x98), dl_type=0x86DD)
    assert indexed.lookup(stranger, 1) is linear.lookup(stranger, 1) is None
