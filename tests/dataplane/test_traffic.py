"""Scenario pack: Clos/campus builders and traffic-matrix replay."""

import pytest

from repro.dataplane import (
    FLOOD,
    FlowEntry,
    Match,
    Network,
    Output,
    TrafficFlow,
    TrafficMatrix,
    TrafficReplay,
    build_campus,
    build_clos,
    build_linear,
)


def _flood_everything(net: Network) -> None:
    for switch in net.switches.values():
        switch.install_flow(FlowEntry(match=Match(), actions=[Output(FLOOD)], priority=1))


def _switch_links(net: Network) -> list:
    return [l for l in net.links if hasattr(l.a, "switch") and hasattr(l.b, "switch")]


# -- topology builders ----------------------------------------------------------------


def test_build_clos_structure():
    net = build_clos(2, 4, hosts_per_leaf=3)
    assert set(net.switches) == {"spine1", "spine2", "leaf1", "leaf2", "leaf3", "leaf4"}
    assert len(net.hosts) == 12
    assert len(_switch_links(net)) == 8  # every leaf uplinks to every spine


def test_build_clos_validates():
    with pytest.raises(ValueError):
        build_clos(0, 4)
    with pytest.raises(ValueError):
        build_clos(2, 0)


def test_build_campus_structure():
    net = build_campus(3, 2, hosts_per_floor=2)
    names = set(net.switches)
    assert {"core1", "core2", "b1d", "b2d", "b3d"} <= names
    assert {"b1f1", "b1f2", "b3f2"} <= names
    assert len(names) == 2 + 3 + 3 * 2
    assert len(net.hosts) == 3 * 2 * 2
    # core pair + dual-homed distribution + access uplinks
    assert len(_switch_links(net)) == 1 + 3 * 2 + 3 * 2


def test_build_campus_validates():
    with pytest.raises(ValueError):
        build_campus(0, 1)


# -- traffic matrices -----------------------------------------------------------------


def test_uniform_random_is_reproducible_with_unique_ports():
    hosts = [f"h{i}" for i in range(1, 9)]
    a = TrafficMatrix.uniform_random(hosts, num_flows=20, seed=3)
    b = TrafficMatrix.uniform_random(hosts, num_flows=20, seed=3)
    assert a.flows == b.flows
    assert a.flows != TrafficMatrix.uniform_random(hosts, num_flows=20, seed=4).flows
    ports = [f.dst_port for f in a.flows]
    assert len(set(ports)) == len(ports)  # attribution key is per-flow
    assert a.packets_offered == 20 * 4
    assert all(f.src != f.dst for f in a.flows)


def test_all_pairs_is_the_dense_permutation():
    hosts = ["h1", "h2", "h3"]
    matrix = TrafficMatrix.all_pairs(hosts, packets_per_flow=2)
    assert len(matrix.flows) == 6
    assert {(f.src, f.dst) for f in matrix.flows} == {
        (a, b) for a in hosts for b in hosts if a != b
    }


def test_hotspot_concentrates_on_the_hot_host():
    hosts = [f"h{i}" for i in range(1, 9)]
    matrix = TrafficMatrix.hotspot(hosts, "h1", num_flows=30, hot_fraction=1.0)
    assert all(f.dst == "h1" and f.src != "h1" for f in matrix.flows)
    with pytest.raises(ValueError):
        TrafficMatrix.hotspot(hosts, "nope", num_flows=3)


def test_matrix_and_replay_validate_hosts():
    with pytest.raises(ValueError):
        TrafficMatrix.uniform_random(["h1"], num_flows=1)
    net = build_linear(2)
    ghost = TrafficMatrix([TrafficFlow("h1", "ghost", 1, 0.0, 0.05, 20000)])
    with pytest.raises(ValueError):
        TrafficReplay(net, ghost)


# -- replay scoring -------------------------------------------------------------------


def test_replay_delivers_all_pairs_on_flooded_linear():
    net = build_linear(3)
    _flood_everything(net)
    matrix = TrafficMatrix.all_pairs(list(net.hosts), packets_per_flow=2, spread=0.2)
    stats = TrafficReplay(net, matrix).run(3.0)
    assert stats.flows == 6
    assert stats.flows_completed == 6
    assert stats.packets_offered == 12
    assert stats.delivery_ratio == 1.0


def test_replay_attributes_deliveries_per_flow():
    net = build_linear(2)
    _flood_everything(net)
    matrix = TrafficMatrix(
        [
            TrafficFlow("h1", "h2", packets=3, start=0.0, interval=0.05, dst_port=20000),
            TrafficFlow("h2", "h1", packets=1, start=0.1, interval=0.05, dst_port=20001),
        ]
    )
    replay = TrafficReplay(net, matrix)
    stats = replay.run(2.0)
    assert replay.delivered_for(matrix.flows[0]) == 3
    assert replay.delivered_for(matrix.flows[1]) == 1
    assert stats.packets_delivered == 4
    assert stats.delivery_ratio == 1.0


def test_replay_scores_partial_delivery():
    net = build_linear(2)  # no flows installed: everything is dropped
    matrix = TrafficMatrix.all_pairs(list(net.hosts), packets_per_flow=2)
    stats = TrafficReplay(net, matrix).run(2.0)
    assert stats.packets_delivered == 0
    assert stats.flows_completed == 0
    assert stats.delivery_ratio == 0.0
