"""Cron scheduling and cgroup accounting."""

import pytest

from repro.proc import ON_CRASH, Cgroup, CgroupManager, Cron, ResourceLimitExceeded, Supervisor
from repro.sim import Simulator


# -- cron ------------------------------------------------------------------------


def test_cron_runs_on_interval():
    sim = Simulator()
    cron = Cron(sim)
    runs = []
    cron.add_job("tick", 1.0, lambda: runs.append(sim.now))
    sim.run_until(3.5)
    assert runs == [1.0, 2.0, 3.0]


def test_cron_job_failure_isolated():
    sim = Simulator()
    cron = Cron(sim)

    def flaky():
        raise RuntimeError("boom")

    ok_runs = []
    cron.add_job("flaky", 1.0, flaky)
    cron.add_job("steady", 1.0, lambda: ok_runs.append(1))
    sim.run_until(3.5)
    assert cron.jobs["flaky"].failures == 3
    assert cron.jobs["flaky"].runs == 0
    assert len(ok_runs) == 3
    # the cause is recorded, not swallowed
    err = cron.jobs["flaky"].last_error
    assert isinstance(err, RuntimeError) and str(err) == "boom"
    assert cron.jobs["steady"].last_error is None


def test_cron_last_error_cleared_on_recovery():
    sim = Simulator()
    cron = Cron(sim)
    state = {"fail": True}

    def sometimes():
        if state["fail"]:
            raise ValueError("transient")

    job = cron.add_job("sometimes", 1.0, sometimes)
    sim.run_until(1.5)
    assert job.failures == 1
    assert isinstance(job.last_error, ValueError)
    state["fail"] = False
    sim.run_until(2.5)
    assert job.runs == 1
    assert job.last_error is None


def test_cron_remove_job():
    sim = Simulator()
    cron = Cron(sim)
    runs = []
    cron.add_job("j", 1.0, lambda: runs.append(1))
    sim.run_until(1.5)
    cron.remove_job("j")
    sim.run_until(5.0)
    assert len(runs) == 1


def test_cron_duplicate_name_rejected():
    cron = Cron(Simulator())
    cron.add_job("j", 1.0, lambda: None)
    with pytest.raises(ValueError):
        cron.add_job("j", 2.0, lambda: None)


def test_cron_stop_all():
    sim = Simulator()
    cron = Cron(sim)
    runs = []
    cron.add_job("a", 1.0, lambda: runs.append(1))
    cron.add_job("b", 1.0, lambda: runs.append(1))
    cron.stop()
    sim.run_until(5.0)
    assert runs == []


def test_cron_supervised_restart_keeps_schedule():
    """A crash stops every periodic task, but the job table survives — the
    supervised restart must come back with the schedule re-armed, not as a
    silently empty daemon."""
    sim = Simulator()
    cron = Cron(sim)
    runs = []
    cron.add_job("tick", 1.0, lambda: runs.append(sim.now))
    Supervisor(sim).supervise(cron, ON_CRASH)
    sim.run_until(2.5)
    assert len(runs) == 2
    cron._crash(RuntimeError("daemon fault"))
    sim.run_until(6.5)
    assert cron.restarts == 1
    assert "tick" in cron.jobs
    # the job fired again after the restart
    assert len(runs) > 2
    assert max(runs) > 2.5


def test_cron_restart_does_not_double_schedule():
    """Restarting must only re-arm dead tasks: a stop/start cycle on a
    healthy daemon keeps one task per job, not two."""
    sim = Simulator()
    cron = Cron(sim)
    runs = []
    cron.add_job("tick", 1.0, lambda: runs.append(sim.now))
    cron._crash(RuntimeError("fault"))
    cron.start()
    cron.start()  # idempotent; must not stack another task either
    sim.run_until(3.5)
    assert runs == [1.0, 2.0, 3.0]


def test_cron_last_run_recorded():
    sim = Simulator()
    cron = Cron(sim)
    job = cron.add_job("j", 2.0, lambda: None)
    sim.run_until(4.5)
    assert job.last_run == 4.0


# -- cgroups ---------------------------------------------------------------------


def test_cgroup_paths_and_hierarchy():
    mgr = CgroupManager()
    tenants = mgr.create("/tenants")
    gold = mgr.create("/tenants/gold")
    assert gold.path == "/tenants/gold"
    assert gold.parent is tenants


def test_charge_propagates_to_ancestors():
    mgr = CgroupManager()
    mgr.create("/tenants")
    mgr.create("/tenants/gold")
    mgr.attach("app1", "/tenants/gold")
    mgr.charge("app1", "cpu", 3.0)
    assert mgr.get("/tenants/gold").used("cpu") == 3.0
    assert mgr.get("/tenants").used("cpu") == 3.0
    assert mgr.root.used("cpu") == 3.0


def test_limit_enforced_at_any_ancestor():
    mgr = CgroupManager()
    mgr.create("/tenants", limits={"flows": 10})
    mgr.create("/tenants/gold", limits={"flows": 8})
    mgr.attach("app", "/tenants/gold")
    mgr.charge("app", "flows", 8)
    with pytest.raises(ResourceLimitExceeded):
        mgr.charge("app", "flows", 1)


def test_parent_limit_caps_children_jointly():
    mgr = CgroupManager()
    mgr.create("/t", limits={"flows": 10})
    mgr.create("/t/a")
    mgr.create("/t/b")
    mgr.attach("pa", "/t/a")
    mgr.attach("pb", "/t/b")
    mgr.charge("pa", "flows", 6)
    mgr.charge("pb", "flows", 4)
    with pytest.raises(ResourceLimitExceeded) as info:
        mgr.charge("pb", "flows", 1)
    assert info.value.group == "/t"


def test_rejected_charge_leaves_no_partial_accounting():
    mgr = CgroupManager()
    mgr.create("/t", limits={"mem": 5})
    mgr.create("/t/a")  # unlimited child
    mgr.attach("p", "/t/a")
    with pytest.raises(ResourceLimitExceeded):
        mgr.charge("p", "mem", 6)
    assert mgr.get("/t/a").used("mem") == 0.0


def test_unplaced_process_unaccounted():
    mgr = CgroupManager()
    mgr.charge("ghost", "cpu", 100)  # no-op, no error
    assert mgr.root.used("cpu") == 0.0


def test_attach_moves_between_groups():
    mgr = CgroupManager()
    mgr.create("/a")
    mgr.create("/b")
    mgr.attach("p", "/a")
    mgr.attach("p", "/b")
    assert mgr.group_of("p").path == "/b"
    assert "p" not in mgr.get("/a").members


def test_usage_report():
    mgr = CgroupManager()
    mgr.create("/x")
    mgr.attach("p", "/x")
    mgr.charge("p", "io", 2.5)
    report = mgr.usage_report()
    assert report["/x"] == {"io": 2.5}


def test_bad_paths_rejected():
    mgr = CgroupManager()
    with pytest.raises(ValueError):
        mgr.create("/no/parent/yet")
    with pytest.raises(ValueError):
        mgr.get("/absent")
    mgr.create("/dup")
    with pytest.raises(ValueError):
        mgr.create("/dup")


def test_negative_charge_rejected():
    mgr = CgroupManager()
    mgr.create("/g")
    mgr.attach("p", "/g")
    with pytest.raises(ValueError):
        mgr.charge("p", "cpu", -1)
