"""Process runtime: PIDs, crash containment, supervised restart, /proc."""

import pytest

from repro.analysis.sanitizer import Sanitizer
from repro.proc import NEVER, ON_CRASH, ProcState, Process, ProcessTable, RestartPolicy
from repro.shell import Shell
from repro.vfs.notify import EventMask
from repro.vfs.syscalls import Syscalls
from repro.vfs.vfs import VirtualFileSystem
from repro.sim import Simulator


class WatcherApp(Process):
    """Watches one directory; crashes on demand to exercise supervision."""

    proc_name = "watcher"

    def __init__(self, sc, sim, path, *, name=""):
        super().__init__(sc, sim, name=name)
        self.path = path
        self.events = []
        self.fail_next = False

    def on_start(self):
        self.watch(self.path, EventMask.IN_CREATE, ("dir",))

    def on_event(self, ctx, event):
        if self.fail_next:
            self.fail_next = False
            raise RuntimeError("injected fault")
        self.events.append(event.name)


@pytest.fixture
def rt():
    sim = Simulator()
    vfs = VirtualFileSystem(clock=lambda: sim.now)
    sc = Syscalls(vfs)
    table = ProcessTable(sc, sim)
    sc.makedirs("/proc")
    sc.mount("/proc", table.procfs, source="proc")
    sc.mkdir("/spool")
    return sim, sc, table


def spawn_watcher(table, sim, sc, *, name=""):
    app = WatcherApp(table.spawn(), sim, "/spool", name=name)
    return app.start()


# -- pids, ps, /proc ---------------------------------------------------------


def test_pids_are_sequential_and_ps_reports_state(rt):
    sim, sc, table = rt
    a = spawn_watcher(table, sim, sc, name="alpha")
    b = spawn_watcher(table, sim, sc, name="beta")
    assert table.pids() == [a.pid, b.pid] == [1, 2]
    assert table.get(a.pid) is a
    assert table.ps() == [(1, "alpha", "blocked"), (2, "beta", "blocked")]
    b.stop()
    assert table.ps()[1] == (2, "beta", "exited")


def test_proc_files_readable_with_shell(rt):
    sim, sc, table = rt
    app = spawn_watcher(table, sim, sc, name="alpha")
    sh = Shell(sc)
    assert str(app.pid) in sh.run("ls /proc").split()
    status = sh.run(f"cat /proc/{app.pid}/status")
    assert "Name:\talpha" in status
    assert f"Pid:\t{app.pid}" in status
    assert "State:\tblocked" in status
    assert "Watches:\t1" in status
    assert sh.run(f"cat /proc/{app.pid}/cmdline") == "alpha\n"
    assert sh.run(f"cat /proc/{app.pid}/cgroup") == "0::/\n"


def test_proc_status_is_live_not_a_snapshot(rt):
    sim, sc, table = rt
    app = spawn_watcher(table, sim, sc)
    sh = Shell(sc)
    assert "State:\tblocked" in sh.run(f"cat /proc/{app.pid}/status")
    app.stop()
    assert "State:\texited" in sh.run(f"cat /proc/{app.pid}/status")


def test_reap_retires_the_proc_entry(rt):
    sim, sc, table = rt
    app = spawn_watcher(table, sim, sc)
    app.stop()
    table.reap(app)
    assert table.get(app.pid) is None
    assert str(app.pid) not in Shell(sc).run("ls /proc").split()


def test_exec_takeover_keeps_the_pid(rt):
    sim, sc, table = rt
    donor = table.spawn(name="donor")
    pid = donor.pid
    app = WatcherApp(donor, sim, "/spool", name="image")
    assert app.pid == pid
    assert table.get(pid) is app
    assert "Name:\timage" in Shell(sc).run(f"cat /proc/{pid}/status")


# -- crash containment -------------------------------------------------------


def test_crash_is_contained_and_recorded(rt):
    sim, sc, table = rt
    flaky = spawn_watcher(table, sim, sc, name="flaky")
    steady = spawn_watcher(table, sim, sc, name="steady")
    flaky.fail_next = True
    sc.write_bytes("/spool/one", b"x")
    sim.run()
    # the raising handler crashed its process, not the simulator
    assert flaky.state is ProcState.CRASHED
    assert isinstance(flaky.last_error, RuntimeError)
    assert flaky._watch_ctx == {}
    assert table.counters.get("proc.crashes") == 1
    # the other process saw the same event and keeps running
    assert steady.events == ["one"]
    sc.write_bytes("/spool/two", b"x")
    sim.run()
    assert steady.events == ["one", "two"]
    assert flaky.events == []


def test_unsupervised_crash_stays_down(rt):
    sim, sc, table = rt
    flaky = spawn_watcher(table, sim, sc)
    flaky.fail_next = True
    sc.write_bytes("/spool/one", b"x")
    sim.run()
    assert flaky.state is ProcState.CRASHED
    assert flaky.restarts == 0


def test_never_policy_is_explicitly_respected(rt):
    sim, sc, table = rt
    flaky = spawn_watcher(table, sim, sc)
    table.supervise(flaky, NEVER)
    flaky.fail_next = True
    sc.write_bytes("/spool/one", b"x")
    sim.run()
    assert flaky.state is ProcState.CRASHED
    assert flaky.restarts == 0


# -- supervised restart ------------------------------------------------------


def test_restart_delay_backs_off_exponentially_to_the_cap():
    policy = RestartPolicy(mode="on-crash", backoff=0.1, backoff_cap=0.4)
    assert [policy.restart_delay(n) for n in (1, 2, 3, 4, 5)] == [0.1, 0.2, 0.4, 0.4, 0.4]


def test_supervised_restart_reestablishes_watches(rt):
    sim, sc, table = rt
    flaky = spawn_watcher(table, sim, sc, name="flaky")
    table.supervise(flaky, ON_CRASH)
    flaky.fail_next = True
    sc.write_bytes("/spool/one", b"x")
    sim.run()
    # restarted: on_start ran again, watch is back, new events flow
    assert flaky.state is ProcState.BLOCKED
    assert flaky.crashes == 1 and flaky.restarts == 1
    assert table.counters.get("proc.restarts") == 1
    sc.write_bytes("/spool/two", b"x")
    sim.run()
    assert flaky.events == ["two"]
    assert "Crashes:\t1" in Shell(sc).run(f"cat /proc/{flaky.pid}/status")


def test_restart_backoff_timing_and_restart_budget(rt):
    sim, sc, table = rt
    proc = table.spawn(name="bomb")
    policy = RestartPolicy(mode="on-crash", backoff=0.1, backoff_cap=0.4, max_restarts=3)
    table.supervise(proc, policy)
    starts = []

    def on_start():
        starts.append(sim.now)
        proc.schedule(0.0, boom)

    def boom():
        raise RuntimeError("boom")

    proc.on_start = on_start
    proc.start()
    sim.run()
    # crash at t=0, then restarts 0.1, 0.2, 0.4 seconds apart (capped),
    # and the fourth crash exhausts the restart budget
    assert starts == pytest.approx([0.0, 0.1, 0.3, 0.7])
    assert proc.crashes == 4
    assert proc.restarts == 3
    assert proc.state is ProcState.CRASHED


def test_stopped_process_is_not_restarted(rt):
    sim, sc, table = rt
    flaky = spawn_watcher(table, sim, sc)
    table.supervise(flaky, RestartPolicy(mode="on-crash", backoff=5.0))
    flaky.fail_next = True
    sc.write_bytes("/spool/one", b"x")
    sim.run_for(1.0)
    assert flaky.state is ProcState.CRASHED
    flaky.stop()  # operator intervened while the restart was pending
    sim.run()
    assert flaky.state is ProcState.EXITED
    assert flaky.restarts == 0


def test_no_fd_leaks_across_crash_and_restart(rt):
    sim, sc, table = rt
    san = Sanitizer().install()
    try:
        san.reset()
        flaky = spawn_watcher(table, sim, sc)
        table.supervise(flaky, ON_CRASH)
        for _ in range(3):
            flaky.fail_next = True
            sc.write_bytes(f"/spool/f{sim.now}", b"x")
            sim.run()
        assert flaky.crashes == 3 and flaky.restarts == 3
        assert san.check() == []
    finally:
        san.uninstall()


# -- scheduling and accounting -----------------------------------------------


def test_tasks_stop_with_the_process(rt):
    sim, sc, table = rt
    proc = table.spawn(name="ticker").start()
    ticks = []
    proc.every(0.5, lambda: ticks.append(sim.now))
    sim.run_for(2.0)
    assert len(ticks) == 4
    proc.stop()
    sim.run_for(2.0)
    assert len(ticks) == 4  # periodic work died with the process


def test_dispatch_charges_cpu_to_the_cgroup(rt):
    sim, sc, table = rt
    app = spawn_watcher(table, sim, sc)
    group = table.cgroups.group_of(f"pid:{app.pid}")
    assert group.used("cpu") == 0.0
    sc.write_bytes("/spool/one", b"x")
    sim.run()
    assert app.events == ["one"]
    assert group.used("cpu") > 0.0
    assert group.used("syscalls") > 0.0


def test_cgroup_limit_throttles_without_crashing(rt):
    sim, sc, table = rt
    app = spawn_watcher(table, sim, sc)
    table.cgroups.create("/jail", limits={"cpu": 1e-12})
    table.assign_cgroup(app, "/jail")
    sc.write_bytes("/spool/one", b"x")
    sim.run()
    # the breach is recorded, never raised into the dispatch loop
    assert app.running
    assert app.state is ProcState.BLOCKED
    assert table.counters.get("proc.throttled") >= 1
    assert app.last_error is not None


# -- /proc/counters ---------------------------------------------------------------


def test_proc_counters_exposes_machine_counters(rt):
    sim, sc, table = rt
    spawn_watcher(table, sim, sc)
    text = sc.read_text("/proc/counters")
    lines = dict(line.rsplit(" ", 1) for line in text.splitlines())
    assert int(lines["proc.spawned"]) >= 1
    assert all(value.isdigit() for value in lines.values())
    assert list(lines) == sorted(lines)  # stable, sorted rendering


def test_proc_counters_shows_shmring_overflow_drops(rt):
    from repro.libyanc import ShmRing

    sim, sc, table = rt
    del sim
    # A ring wired to the machine's counters, overflowed twice: the drops
    # must be readable through the file system, not just the ring object.
    ring = ShmRing(2, counters=sc.vfs.counters)
    assert ring.put(b"a") and ring.put(b"b")
    assert not ring.put(b"c") and not ring.put(b"d")
    text = sc.read_text("/proc/counters")
    lines = dict(line.rsplit(" ", 1) for line in text.splitlines())
    assert lines["shm.dropped"] == "2"
    assert lines["shm.put"] == "4"
    assert ring.dropped == 2


def test_proc_counters_reads_are_live(rt):
    sim, sc, table = rt
    del sim
    assert "demo.widget" not in sc.read_text("/proc/counters")
    table.counters.add("demo.widget", 3)
    assert "demo.widget 3" in sc.read_text("/proc/counters")
    table.counters.add("demo.widget", 2)
    # No open fd caching: every read re-renders the current values.
    assert "demo.widget 5" in sc.read_text("/proc/counters")
