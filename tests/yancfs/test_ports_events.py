"""Ports (with peer symlinks, §3.3) and event buffers (§3.5)."""

import pytest

from repro.vfs import InvalidArgument, NotPermitted


@pytest.fixture
def two_switches(yanc_sc, yc):
    yc.create_switch("sw1")
    yc.create_switch("sw2")
    yc.create_port("sw1", 1)
    yc.create_port("sw1", 2)
    yc.create_port("sw2", 1)
    return yanc_sc


def test_port_mkdir_populates(two_switches):
    children = set(two_switches.listdir("/net/switches/sw1/ports/port_1"))
    assert {"counters", "config.port_down", "config.port_status", "hw_addr", "name"} <= children


def test_port_down_idiom(two_switches, yc):
    """The paper's `echo 1 > port_2/config.port_down`."""
    two_switches.write_text("/net/switches/sw1/ports/port_2/config.port_down", "1")
    assert yc.port_is_down("sw1", 2)
    with pytest.raises(InvalidArgument):
        two_switches.write_text("/net/switches/sw1/ports/port_2/config.port_down", "maybe")


def test_peer_symlink_roundtrip(two_switches, yc):
    yc.set_peer("sw1", 1, "sw2", 1)
    assert yc.peer_of("sw1", 1) == "/net/switches/sw2/ports/port_1"
    # the link resolves to a real port directory
    assert "counters" in two_switches.listdir("/net/switches/sw1/ports/port_1/peer")


def test_peer_symlink_replaceable(two_switches, yc):
    yc.set_peer("sw1", 1, "sw2", 1)
    yc.set_peer("sw1", 1, "sw1", 2)  # re-point
    assert yc.peer_of("sw1", 1) == "/net/switches/sw1/ports/port_2"


def test_only_peer_symlinks_allowed_in_ports(two_switches):
    with pytest.raises(NotPermitted):
        two_switches.symlink("/net/switches/sw2", "/net/switches/sw1/ports/port_1/uplink")


def test_no_symlinks_in_switch_dir(two_switches):
    with pytest.raises(NotPermitted):
        two_switches.symlink("/net", "/net/switches/sw1/shortcut")


def test_bad_hw_addr_rejected(two_switches):
    with pytest.raises(InvalidArgument):
        two_switches.write_text("/net/switches/sw1/ports/port_1/hw_addr", "zz:zz")
    two_switches.write_text("/net/switches/sw1/ports/port_1/hw_addr", "02:00:00:00:00:09")


def test_ports_dir_only_holds_port_dirs(two_switches):
    with pytest.raises(NotPermitted):
        two_switches.write_text("/net/switches/sw1/ports/notes.txt", "x")


# -- event buffers ------------------------------------------------------------------


def test_subscribe_creates_private_buffer(two_switches, yc):
    path = yc.subscribe_events("sw1", "router")
    assert path == "/net/switches/sw1/events/router"
    assert two_switches.listdir("/net/switches/sw1/events") == ["router"]


def test_events_dir_only_holds_buffers(two_switches):
    with pytest.raises(NotPermitted):
        two_switches.write_text("/net/switches/sw1/events/file", "x")


def test_packet_in_write_and_read(two_switches, yc):
    yc.subscribe_events("sw1", "app")
    yc.write_packet_in("sw1", "app", 1, in_port=3, reason="no_match", buffer_id=9, total_len=64, data=b"\x00" * 20)
    events = yc.read_events("sw1", "app")
    assert len(events) == 1
    event = events[0]
    assert (event.switch, event.in_port, event.reason, event.buffer_id, event.total_len) == ("sw1", 3, "no_match", 9, 64)
    assert event.data == b"\x00" * 20
    # consumed: buffer is empty again
    assert two_switches.listdir("/net/switches/sw1/events/app") == []


def test_read_events_ordering(two_switches, yc):
    yc.subscribe_events("sw1", "app")
    for seq in (1, 2, 10):  # pi_10 must sort after pi_2 numerically
        yc.write_packet_in("sw1", "app", seq, in_port=seq, reason="no_match", buffer_id=0, total_len=0, data=b"")
    assert [e.in_port for e in yc.read_events("sw1", "app")] == [1, 2, 10]


def test_read_events_peek_mode(two_switches, yc):
    yc.subscribe_events("sw1", "app")
    yc.write_packet_in("sw1", "app", 1, in_port=1, reason="no_match", buffer_id=0, total_len=0, data=b"")
    assert len(yc.read_events("sw1", "app", consume=False)) == 1
    assert len(yc.read_events("sw1", "app")) == 1  # still there


def test_buffers_are_private(two_switches, yc):
    """Section 3.5: each app gets a private buffer."""
    yc.subscribe_events("sw1", "alpha")
    yc.subscribe_events("sw1", "beta")
    yc.write_packet_in("sw1", "alpha", 1, in_port=1, reason="no_match", buffer_id=0, total_len=0, data=b"")
    assert len(yc.read_events("sw1", "alpha")) == 1
    assert yc.read_events("sw1", "beta") == []


def test_unsubscribe_discards_pending(two_switches, yc):
    yc.subscribe_events("sw1", "app")
    yc.write_packet_in("sw1", "app", 1, in_port=1, reason="no_match", buffer_id=0, total_len=0, data=b"")
    yc.unsubscribe_events("sw1", "app")
    assert "app" not in two_switches.listdir("/net/switches/sw1/events")
