"""Figure 3 (right): the flow directory and its commit protocol."""

import pytest

from repro.dataplane import FLOOD, Match, Output, SetNwDst
from repro.netpkt import cidr, ip
from repro.vfs import EventMask, FsError, InvalidArgument, NotPermitted


@pytest.fixture
def sw(yanc_sc, yc):
    yc.create_switch("sw1")
    return yanc_sc


def test_flow_mkdir_populates_counters_and_version(sw):
    sw.mkdir("/net/switches/sw1/flows/arp_flow")
    children = set(sw.listdir("/net/switches/sw1/flows/arp_flow"))
    assert {"counters", "version"} <= children
    assert sw.read_text("/net/switches/sw1/flows/arp_flow/version") == "0"
    assert set(sw.listdir("/net/switches/sw1/flows/arp_flow/counters")) == {"packet_count", "byte_count"}


def test_figure3_flow_files(sw, yc):
    """The exact files of the figure: match.*, action.out, priority,
    timeout, version, counters/."""
    yc.create_flow(
        "sw1",
        "arp_flow",
        Match(dl_type=0x0806, dl_src="02:00:00:00:00:01"),
        [Output(FLOOD)],
        priority=100,
        idle_timeout=30,
    )
    files = set(sw.listdir("/net/switches/sw1/flows/arp_flow"))
    assert {"counters", "match.dl_type", "match.dl_src", "action.out", "priority", "timeout", "version"} <= files


def test_wildcard_is_absence_of_match_file(sw, yc):
    """Section 3.4: 'Absence of a match file implies a wildcard.'"""
    yc.create_flow("sw1", "all", Match(), [Output(1)])
    files = sw.listdir("/net/switches/sw1/flows/all")
    assert not any(name.startswith("match.") for name in files)
    assert yc.read_flow("sw1", "all").match == Match()


def test_cidr_notation_in_match_files(sw, yc):
    """Section 3.4: 'fields such as IP source take the CIDR notation.'"""
    yc.create_flow("sw1", "pfx", Match(nw_src=cidr("10.0.0.0/24")), [Output(1)])
    assert sw.read_text("/net/switches/sw1/flows/pfx/match.nw_src") == "10.0.0.0/24"
    assert yc.read_flow("sw1", "pfx").match.nw_src == cidr("10.0.0.0/24")


def test_version_commit_increments(sw, yc):
    yc.create_flow("sw1", "f", Match(dl_type=0x800), [Output(1)], commit=False)
    assert yc.read_flow("sw1", "f").version == 0
    assert yc.commit_flow("sw1", "f") == 1
    assert yc.commit_flow("sw1", "f") == 2


def test_version_rejects_garbage(sw, yc):
    yc.create_flow("sw1", "f", Match(), [Output(1)])
    with pytest.raises(InvalidArgument):
        sw.write_text("/net/switches/sw1/flows/f/version", "not-a-number")
    assert sw.read_text("/net/switches/sw1/flows/f/version") == "1"


def test_unknown_flow_file_rejected(sw):
    sw.mkdir("/net/switches/sw1/flows/f")
    with pytest.raises(InvalidArgument):
        sw.write_text("/net/switches/sw1/flows/f/random_name", "x")


def test_flow_subdirectory_rejected(sw):
    sw.mkdir("/net/switches/sw1/flows/f")
    with pytest.raises(NotPermitted):
        sw.mkdir("/net/switches/sw1/flows/f/subdir")


def test_flow_symlink_rejected(sw):
    sw.mkdir("/net/switches/sw1/flows/f")
    with pytest.raises(NotPermitted):
        sw.symlink("/anywhere", "/net/switches/sw1/flows/f/link")


def test_bad_match_content_rolls_back(sw):
    sw.mkdir("/net/switches/sw1/flows/f")
    sw.write_text("/net/switches/sw1/flows/f/match.nw_src", "10.0.0.0/24")
    with pytest.raises(InvalidArgument):
        sw.write_text("/net/switches/sw1/flows/f/match.nw_src", "999.999.0.0/99")
    assert sw.read_text("/net/switches/sw1/flows/f/match.nw_src") == "10.0.0.0/24"


def test_bad_action_content_rejected(sw):
    sw.mkdir("/net/switches/sw1/flows/f")
    with pytest.raises(InvalidArgument):
        sw.write_text("/net/switches/sw1/flows/f/action.out", "not-a-port")


def test_priority_range_enforced(sw):
    sw.mkdir("/net/switches/sw1/flows/f")
    with pytest.raises(InvalidArgument):
        sw.write_text("/net/switches/sw1/flows/f/priority", "70000")
    sw.write_text("/net/switches/sw1/flows/f/priority", "65535")


def test_negative_timeout_rejected(sw):
    sw.mkdir("/net/switches/sw1/flows/f")
    with pytest.raises(InvalidArgument):
        sw.write_text("/net/switches/sw1/flows/f/timeout", "-1")


def test_state_files_free_form(sw):
    sw.mkdir("/net/switches/sw1/flows/f")
    sw.write_text("/net/switches/sw1/flows/f/state.status", "anything goes here")


def test_read_flow_multiple_actions_ordered(sw, yc):
    yc.create_flow("sw1", "multi", Match(dl_type=0x800), [SetNwDst(ip("9.9.9.9")), Output(3)])
    spec = yc.read_flow("sw1", "multi")
    assert spec.actions == (SetNwDst(ip("9.9.9.9")), Output(3))


def test_flow_rmdir_recursive(sw, yc):
    yc.create_flow("sw1", "f", Match(dl_type=0x800), [Output(1)])
    sw.rmdir("/net/switches/sw1/flows/f")
    assert yc.flows("sw1") == []


def test_version_watch_sees_commit(sw, yc):
    """The driver's trigger: a watch on the flow dir sees the version write."""
    yc.create_flow("sw1", "f", Match(), [Output(1)], commit=False)
    ino = sw.inotify_init()
    sw.inotify_add_watch(ino, "/net/switches/sw1/flows/f", EventMask.IN_CLOSE_WRITE)
    yc.commit_flow("sw1", "f")
    names = [e.name for e in sw.inotify_read(ino)]
    assert "version" in names
