"""Figure 2: the /net hierarchy and semantic mkdir."""

import pytest

from repro.shell import Shell
from repro.vfs import FileExists, NotPermitted
from repro.yancfs.schema import SWITCH_ATTRIBUTE_FILES, SWITCH_SUBDIRS, TOP_LEVEL_DIRS


def test_root_has_exactly_the_figure2_dirs(yanc_sc):
    assert yanc_sc.listdir("/net") == list(TOP_LEVEL_DIRS)


def test_root_is_fixed(yanc_sc):
    with pytest.raises(NotPermitted):
        yanc_sc.mkdir("/net/other")
    with pytest.raises(NotPermitted):
        yanc_sc.write_text("/net/file", "x")
    with pytest.raises(NotPermitted):
        yanc_sc.rmdir("/net/switches")


def test_view_mkdir_auto_populates(yanc_sc):
    """The paper's example: mkdir views/new_view creates the subdirs."""
    yanc_sc.mkdir("/net/views/new_view")
    assert yanc_sc.listdir("/net/views/new_view") == list(TOP_LEVEL_DIRS)


def test_views_nest_arbitrarily(yanc_sc):
    yanc_sc.mkdir("/net/views/outer")
    yanc_sc.mkdir("/net/views/outer/views/inner")
    yanc_sc.mkdir("/net/views/outer/views/inner/views/innermost")
    assert yanc_sc.listdir("/net/views/outer/views/inner/views/innermost") == list(TOP_LEVEL_DIRS)


def test_view_structural_dirs_protected(yanc_sc):
    yanc_sc.mkdir("/net/views/v")
    with pytest.raises(NotPermitted):
        yanc_sc.rmdir("/net/views/v/switches")


def test_view_rmdir_is_recursive(yanc_sc):
    yanc_sc.mkdir("/net/views/v")
    yanc_sc.mkdir("/net/views/v/switches/sw1")
    yanc_sc.rmdir("/net/views/v")
    assert yanc_sc.listdir("/net/views") == []


def test_figure2_tree_rendering(yanc_sc):
    """The rendered tree matches the figure's structure."""
    yanc_sc.mkdir("/net/switches/sw1")
    yanc_sc.mkdir("/net/switches/sw2")
    yanc_sc.mkdir("/net/views/http")
    yanc_sc.mkdir("/net/views/management-net")
    rendered = Shell(yanc_sc).run("tree /net -L 3")
    expected = """\
/net
├── hosts
├── switches
│   ├── sw1
│   ├── sw2
│   └── views
└── views
    ├── http
    └── management-net
        ├── hosts
        ├── switches
        └── views"""
    # figure 2 shows switches/ contents at depth 1 only; compare the
    # stable top-level structure instead of byte equality
    lines = rendered.splitlines()
    assert lines[0] == "/net"
    assert "├── hosts" in lines[1]
    assert any("management-net" in line for line in lines)
    for name in ("hosts", "switches", "views"):
        assert any(line.endswith(name) for line in lines)
    del expected


def test_hosts_dir_takes_only_directories(yanc_sc):
    with pytest.raises(NotPermitted):
        yanc_sc.write_text("/net/hosts/afile", "x")
    yanc_sc.mkdir("/net/hosts/h1")
    yanc_sc.write_text("/net/hosts/h1/mac", "02:00:00:00:00:01")


def test_switches_dir_takes_only_directories(yanc_sc):
    with pytest.raises(NotPermitted):
        yanc_sc.write_text("/net/switches/notaswitch", "x")


def test_switch_mkdir_populates_figure3_children(yanc_sc):
    yanc_sc.mkdir("/net/switches/sw1")
    children = set(yanc_sc.listdir("/net/switches/sw1"))
    for name in SWITCH_SUBDIRS + SWITCH_ATTRIBUTE_FILES:
        assert name in children


def test_duplicate_switch_rejected(yanc_sc):
    yanc_sc.mkdir("/net/switches/sw1")
    with pytest.raises(FileExists):
        yanc_sc.mkdir("/net/switches/sw1")


def test_switch_rename_preserves_contents(yanc_sc, yc):
    """Section 3.2: switches can be renamed with rename()."""
    yanc_sc.mkdir("/net/switches/sw1")
    yanc_sc.write_text("/net/switches/sw1/id", "42")
    yanc_sc.rename("/net/switches/sw1", "/net/switches/edge-rack1")
    assert yanc_sc.read_text("/net/switches/edge-rack1/id") == "42"
    assert not yanc_sc.exists("/net/switches/sw1")


def test_switch_rmdir_is_automatically_recursive(yanc_sc):
    """Section 3.2: 'the rmdir() call for switches is automatically
    recursive' — children need not be removed first."""
    yanc_sc.mkdir("/net/switches/sw1")
    yanc_sc.mkdir("/net/switches/sw1/flows/f1")
    yanc_sc.write_text("/net/switches/sw1/flows/f1/priority", "5")
    yanc_sc.rmdir("/net/switches/sw1")
    assert yanc_sc.listdir("/net/switches") == []
