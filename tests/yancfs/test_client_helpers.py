"""YancClient path helpers and composite operations."""

import pytest

from repro.dataplane import Match, Output
from repro.yancfs import YancClient


def test_path_helpers(yc):
    assert yc.switch_path("sw1") == "/net/switches/sw1"
    assert yc.flow_path("sw1", "f") == "/net/switches/sw1/flows/f"
    assert yc.port_path("sw1", 3) == "/net/switches/sw1/ports/port_3"
    assert yc.port_path("sw1", "port_3") == "/net/switches/sw1/ports/port_3"
    assert yc.events_path("sw1", "app") == "/net/switches/sw1/events/app"


def test_view_path_nesting(yc):
    assert yc.view_path("a") == "/net/views/a"
    assert yc.view_path("a", "b") == "/net/views/a/views/b"
    nested = yc.in_view("a", "b")
    assert nested.root == "/net/views/a/views/b"
    assert nested.switch_path("sw1") == "/net/views/a/views/b/switches/sw1"


def test_in_view_client_operates_in_subtree(yc):
    yc.create_view("outer")
    inner_client = yc.in_view("outer").create_view("inner")
    assert inner_client.root == "/net/views/outer/views/inner"
    assert yc.sc.exists("/net/views/outer/views/inner/switches")


def test_custom_root_normalization(yanc_sc):
    client = YancClient(yanc_sc, "/net/")
    assert client.root == "/net"


def test_switch_dpid_default_zero(yc):
    yc.create_switch("sw-nodpid")
    assert yc.switch_dpid("sw-nodpid") == 0


def test_create_flow_without_optional_fields(yc):
    yc.create_switch("sw1")
    yc.create_flow("sw1", "bare", Match(dl_type=0x800), [Output(1)])
    spec = yc.read_flow("sw1", "bare")
    assert spec.priority == 0x8000  # OpenFlow default
    assert spec.idle_timeout == 0.0
    assert spec.hard_timeout == 0.0
    files = yc.sc.listdir(yc.flow_path("sw1", "bare"))
    assert "priority" not in files  # optional attributes stay absent


def test_hosts_roundtrip(yc):
    yc.create_host("h1", mac="02:00:00:00:00:01", ip_addr="10.0.0.1", attached_to="sw1:2")
    assert yc.hosts() == ["h1"]
    assert yc.sc.read_text("/net/hosts/h1/attached_to") == "sw1:2"


def test_flow_counters_missing_flow_raises(yc):
    yc.create_switch("sw1")
    from repro.vfs import FileNotFound

    with pytest.raises(FileNotFound):
        yc.flow_counters("sw1", "ghost")


def test_packet_out_tokens(yc):
    yc.create_switch("sw1")
    path = yc.packet_out("sw1", [3, "flood"], b"frame", in_port=2, buffer_id=9, tag="me")
    name = path.rsplit("/", 1)[-1]
    assert name.startswith("p3.flood.in2.b9.me.")
    assert yc.sc.read_bytes(path) == b"frame"


def test_read_events_skips_nothing_on_empty(yc):
    yc.create_switch("sw1")
    yc.subscribe_events("sw1", "app")
    assert yc.read_events("sw1", "app") == []


def test_commit_flow_on_fresh_dir(yc):
    yc.create_switch("sw1")
    yc.sc.mkdir(yc.flow_path("sw1", "manual"))
    assert yc.commit_flow("sw1", "manual") == 1
