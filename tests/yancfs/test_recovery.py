"""Mount-time fsck, the flat staging sweep, and the mount recover hook."""

from __future__ import annotations

from repro.dataplane import Match, Output
from repro.vfs.syscalls import Syscalls
from repro.vfs.vfs import VirtualFileSystem
from repro.yancfs.client import YancClient, mount_yancfs
from repro.yancfs.recovery import flow_version, fsck, sweep_staging


def _seed_debris(yc: YancClient) -> tuple[str, str]:
    """One stale dot-temp and one version-0 flow, amid committed state."""
    yc.create_switch("sw1")
    yc.create_flow("sw1", "good", Match(in_port=1), [Output(2)])
    stale = "/net/switches/.sw2"  # crashed create_switch: never renamed
    yc.sc.mkdir(stale)
    yc.sc.write_text(f"{stale}/id", "2")
    torn = yc.flow_path("sw1", "half")  # crashed create_flow: never committed
    yc.sc.mkdir(torn)
    yc.sc.write_text(f"{torn}/match.in_port", "9")
    return stale, torn


def test_fsck_sweeps_dot_temps_and_torn_flows(yc):
    stale, torn = _seed_debris(yc)
    report = fsck(yc.sc, "/net")
    assert sorted(report.removed()) == sorted([stale, torn])
    assert not report.failures
    assert not yc.sc.exists(stale)
    assert not yc.sc.exists(torn)
    # Committed state is untouched.
    assert flow_version(yc.sc, yc.flow_path("sw1", "good")) == 1


def test_fsck_dry_run_reports_without_mutating(yc):
    stale, torn = _seed_debris(yc)
    report = fsck(yc.sc, "/net", dry_run=True)
    assert report.dry_run
    assert stale in report.stale_entries
    assert torn in report.torn_flows
    assert yc.sc.exists(stale) and yc.sc.exists(torn)
    # The dry run predicts exactly what the real sweep removes.
    assert sorted(report.removed()) == sorted(fsck(yc.sc, "/net").removed())


def test_fsck_clean_tree_reports_clean(yc):
    yc.create_switch("sw1")
    yc.create_flow("sw1", "f", Match(in_port=1), [Output(2)])
    report = fsck(yc.sc, "/net")
    assert report.clean and report.removed() == []


def test_fsck_missing_root_is_vacuously_clean(sc):
    assert fsck(sc, "/nowhere").clean


def test_flow_version_unparseable_reads_zero(yc):
    yc.create_switch("sw1")
    path = yc.flow_path("sw1", "f")
    yc.sc.mkdir(path)
    assert flow_version(yc.sc, path) == 0  # schema populates version as 0
    assert flow_version(yc.sc, "/net/switches/sw1/flows/absent") == 0


def test_mount_yancfs_runs_the_recover_sweep(monkeypatch):
    calls = []
    import repro.yancfs.recovery as recovery

    real_fsck = recovery.fsck
    monkeypatch.setattr(
        recovery, "fsck", lambda sc, root: calls.append(root) or real_fsck(sc, root)
    )
    sc = Syscalls(VirtualFileSystem())
    mount_yancfs(sc, "/net")
    assert calls == ["/net"]  # a fresh mount still sweeps (it is empty, so cheap)


def test_mount_yancfs_recover_false_skips_the_sweep(monkeypatch):
    import repro.yancfs.recovery as recovery

    monkeypatch.setattr(
        recovery, "fsck", lambda *a, **k: (_ for _ in ()).throw(AssertionError("swept"))
    )
    sc = Syscalls(VirtualFileSystem())
    mount_yancfs(sc, "/net", recover=False)
    assert sc.exists("/net/switches")


def test_sweep_staging_flat_spool(sc):
    sc.makedirs("/var/spool")
    sc.write_text("/var/spool/.d1", "half a delta")
    sc.mkdir("/var/spool/.d2")
    sc.write_text("/var/spool/d3", "published")
    removed = sweep_staging(sc, "/var/spool")
    assert sorted(removed) == ["/var/spool/.d1", "/var/spool/.d2"]
    assert sc.read_text("/var/spool/d3") == "published"


def test_sweep_staging_missing_dir_is_noop(sc):
    assert sweep_staging(sc, "/var/absent") == []
