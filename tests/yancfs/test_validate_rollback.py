"""Rollback-on-close edge cases for validated attribute files.

The contract (yancfs/validate): a write whose content does not parse is
rejected with EINVAL at close and the previous content is restored — the
tree never holds an unparseable configuration, even transiently across
odd write shapes (empty, whitespace-only, append-mode)."""

from __future__ import annotations

import pytest

from repro.vfs import O_APPEND, O_WRONLY
from repro.vfs.errors import InvalidArgument


@pytest.fixture
def flow(yanc_sc):
    yanc_sc.mkdir("/net/switches/s1")
    yanc_sc.mkdir("/net/switches/s1/flows/f")
    base = "/net/switches/s1/flows/f"
    yanc_sc.write_text(f"{base}/match.dl_type", "0x800")
    return yanc_sc, base


def test_empty_write_rolls_back(flow):
    sc, base = flow
    with pytest.raises(InvalidArgument):
        sc.write_text(f"{base}/match.dl_type", "")
    assert sc.read_text(f"{base}/match.dl_type") == "0x800"


def test_whitespace_only_write_rolls_back(flow):
    sc, base = flow
    with pytest.raises(InvalidArgument):
        sc.write_text(f"{base}/match.dl_type", "   \n\t")
    assert sc.read_text(f"{base}/match.dl_type") == "0x800"


def test_append_mode_garbage_rolls_back(flow):
    sc, base = flow
    fd = sc.open(f"{base}/match.dl_type", O_WRONLY | O_APPEND)
    sc.write(fd, b"zz")  # "0x800zz" does not parse
    with pytest.raises(InvalidArgument):
        sc.close(fd)
    assert sc.read_text(f"{base}/match.dl_type") == "0x800"


def test_append_mode_valid_extension_kept(flow):
    sc, base = flow
    fd = sc.open(f"{base}/match.dl_type", O_WRONLY | O_APPEND)
    sc.write(fd, b"6")  # "0x8006" still parses as an integer
    sc.close(fd)
    assert sc.read_text(f"{base}/match.dl_type") == "0x8006"


def test_restore_is_byte_for_byte(flow):
    sc, base = flow
    odd = "  0x800 \n"  # valid but deliberately unnormalized
    sc.write_text(f"{base}/match.dl_type", odd)
    with pytest.raises(InvalidArgument):
        sc.write_text(f"{base}/match.dl_type", "not hex")
    assert sc.read_bytes(f"{base}/match.dl_type") == odd.encode()


def test_repeated_rejections_keep_last_valid(flow):
    sc, base = flow
    for garbage in ("nope", "", "0x", "dl"):
        with pytest.raises(InvalidArgument):
            sc.write_text(f"{base}/match.dl_type", garbage)
    assert sc.read_text(f"{base}/match.dl_type") == "0x800"


def test_new_file_rejected_at_close_holds_rollback_value(flow):
    sc, base = flow
    # a brand-new attribute file whose first-ever write is invalid
    with pytest.raises(InvalidArgument):
        sc.write_text(f"{base}/match.nw_proto", "not-a-proto")
    assert sc.read_text(f"{base}/match.nw_proto") == ""
