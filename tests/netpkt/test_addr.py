"""MAC addresses and CIDR helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.netpkt import BROADCAST_MAC, MacAddress, cidr, ip


def test_mac_from_string_roundtrip():
    mac = MacAddress("00:1a:2b:3c:4d:5e")
    assert str(mac) == "00:1a:2b:3c:4d:5e"


def test_mac_from_bytes():
    assert MacAddress(b"\x00\x00\x00\x00\x00\x01") == MacAddress(1)


def test_mac_packed():
    assert MacAddress("ff:ff:ff:ff:ff:ff").packed == b"\xff" * 6


def test_mac_malformed_string():
    with pytest.raises(ValueError):
        MacAddress("not-a-mac")


def test_mac_wrong_byte_count():
    with pytest.raises(ValueError):
        MacAddress(b"\x00\x01")


def test_mac_int_out_of_range():
    with pytest.raises(ValueError):
        MacAddress(1 << 48)


def test_mac_broadcast_and_multicast():
    assert BROADCAST_MAC.is_broadcast
    assert BROADCAST_MAC.is_multicast
    assert MacAddress("01:00:5e:00:00:01").is_multicast
    assert not MacAddress("02:00:00:00:00:01").is_multicast


def test_mac_equality_with_string():
    assert MacAddress("aa:bb:cc:dd:ee:ff") == "AA:BB:CC:DD:EE:FF"


def test_mac_ordering_and_hash():
    a, b = MacAddress(1), MacAddress(2)
    assert a < b
    assert len({a, MacAddress(1)}) == 1


@given(st.integers(min_value=0, max_value=(1 << 48) - 1))
def test_mac_int_roundtrip(value):
    assert int(MacAddress(value)) == value
    assert MacAddress(str(MacAddress(value))) == MacAddress(value)


def test_cidr_parses_prefix():
    network = cidr("10.0.0.0/8")
    assert ip("10.1.2.3") in network


def test_cidr_bare_address_is_host_route():
    assert cidr("10.0.0.1").prefixlen == 32


def test_cidr_rejects_host_bits():
    with pytest.raises(ValueError):
        cidr("10.0.0.1/8")
