"""Header pack/unpack for every protocol layer."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.netpkt import (
    ETH_TYPE_ARP,
    ETH_TYPE_IPV4,
    Arp,
    Ethernet,
    Icmp,
    IPv4,
    Lldp,
    MacAddress,
    Tcp,
    Udp,
    ip,
)
from repro.netpkt.arp import ARP_REPLY, ARP_REQUEST
from repro.netpkt.ethernet import Vlan
from repro.netpkt.ipv4 import internet_checksum

MAC_A = MacAddress("02:00:00:00:00:01")
MAC_B = MacAddress("02:00:00:00:00:02")


def test_ethernet_roundtrip():
    frame = Ethernet(dst=MAC_B, src=MAC_A, eth_type=ETH_TYPE_IPV4, payload=b"hello")
    parsed = Ethernet.unpack(frame.pack())
    assert (parsed.dst, parsed.src, parsed.eth_type, parsed.payload) == (MAC_B, MAC_A, ETH_TYPE_IPV4, b"hello")


def test_ethernet_vlan_roundtrip():
    frame = Ethernet(dst=MAC_B, src=MAC_A, eth_type=ETH_TYPE_IPV4, vlan=Vlan(vid=100, pcp=5), payload=b"x")
    parsed = Ethernet.unpack(frame.pack())
    assert parsed.vlan is not None
    assert (parsed.vlan.vid, parsed.vlan.pcp) == (100, 5)
    assert parsed.eth_type == ETH_TYPE_IPV4


def test_ethernet_truncated():
    with pytest.raises(ValueError):
        Ethernet.unpack(b"\x00" * 10)


def test_vlan_tci_roundtrip():
    tag = Vlan(vid=4095, pcp=7, dei=True)
    assert Vlan.from_tci(tag.tci) == tag


def test_vlan_bad_vid():
    with pytest.raises(ValueError):
        Vlan(vid=4096)


def test_arp_request_reply_roundtrip():
    request = Arp.request(MAC_A, ip("10.0.0.1"), ip("10.0.0.2"))
    parsed = Arp.unpack(request.pack())
    assert parsed.opcode == ARP_REQUEST
    reply = parsed.reply_from(MAC_B)
    parsed_reply = Arp.unpack(reply.pack())
    assert parsed_reply.opcode == ARP_REPLY
    assert parsed_reply.sender_mac == MAC_B
    assert parsed_reply.target_ip == ip("10.0.0.1")


def test_arp_rejects_non_ethernet():
    raw = bytearray(Arp.request(MAC_A, ip("1.1.1.1"), ip("2.2.2.2")).pack())
    raw[0:2] = b"\x00\x06"  # hardware type: IEEE 802
    with pytest.raises(ValueError):
        Arp.unpack(bytes(raw))


def test_ipv4_roundtrip_and_checksum():
    packet = IPv4(src=ip("10.0.0.1"), dst=ip("10.0.0.2"), proto=17, ttl=3, tos=8, payload=b"data")
    raw = packet.pack()
    assert internet_checksum(raw[:20]) == 0
    parsed = IPv4.unpack(raw)
    assert (parsed.src, parsed.dst, parsed.proto, parsed.ttl, parsed.tos, parsed.payload) == (
        ip("10.0.0.1"),
        ip("10.0.0.2"),
        17,
        3,
        8,
        b"data",
    )


def test_ipv4_corrupted_checksum_rejected():
    raw = bytearray(IPv4(src=ip("1.1.1.1"), dst=ip("2.2.2.2"), proto=6).pack())
    raw[8] ^= 0xFF
    with pytest.raises(ValueError):
        IPv4.unpack(bytes(raw))


def test_ipv4_ttl_decrement():
    packet = IPv4(src=ip("1.1.1.1"), dst=ip("2.2.2.2"), proto=6, ttl=1)
    assert packet.decremented().ttl == 0
    with pytest.raises(ValueError):
        packet.decremented().decremented()


def test_icmp_echo_roundtrip():
    echo = Icmp.echo_request(ident=7, seq=3, payload=b"ping")
    parsed = Icmp.unpack(echo.pack())
    assert (parsed.ident, parsed.seq, parsed.payload) == (7, 3, b"ping")
    reply = parsed.echo_reply()
    assert Icmp.unpack(reply.pack()).icmp_type == 0


def test_icmp_bad_checksum():
    raw = bytearray(Icmp.echo_request(1, 1).pack())
    raw[4] ^= 0x01
    with pytest.raises(ValueError):
        Icmp.unpack(bytes(raw))


def test_udp_roundtrip():
    parsed = Udp.unpack(Udp(src_port=53, dst_port=5353, payload=b"q").pack())
    assert (parsed.src_port, parsed.dst_port, parsed.payload) == (53, 5353, b"q")


def test_udp_bad_length_field():
    raw = bytearray(Udp(src_port=1, dst_port=2, payload=b"abc").pack())
    raw[4:6] = (100).to_bytes(2, "big")
    with pytest.raises(ValueError):
        Udp.unpack(bytes(raw))


def test_udp_port_range():
    with pytest.raises(ValueError):
        Udp(src_port=70000, dst_port=1)


def test_tcp_roundtrip():
    seg = Tcp(src_port=1234, dst_port=22, seq=99, ack=100, flags=0x12, window=1000, payload=b"ssh")
    parsed = Tcp.unpack(seg.pack())
    assert (parsed.src_port, parsed.dst_port, parsed.seq, parsed.ack) == (1234, 22, 99, 100)
    assert parsed.flags == 0x12 and parsed.payload == b"ssh"


def test_lldp_roundtrip():
    pdu = Lldp(chassis_id="sw1", port_id="3", ttl=60)
    parsed = Lldp.unpack(pdu.pack())
    assert (parsed.chassis_id, parsed.port_id, parsed.ttl) == ("sw1", "3", 60)


def test_lldp_preserves_unknown_tlvs():
    pdu = Lldp(chassis_id="a", port_id="1", extra_tlvs=[(5, b"sysname")])
    parsed = Lldp.unpack(pdu.pack())
    assert parsed.extra_tlvs == [(5, b"sysname")]


def test_lldp_missing_mandatory_tlv():
    with pytest.raises(ValueError):
        Lldp.unpack(b"\x00\x00")


@given(
    src=st.integers(min_value=0, max_value=2**32 - 1),
    dst=st.integers(min_value=0, max_value=2**32 - 1),
    proto=st.integers(min_value=0, max_value=255),
    payload=st.binary(max_size=64),
)
def test_ipv4_roundtrip_property(src, dst, proto, payload):
    packet = IPv4(src=ip(src), dst=ip(dst), proto=proto, payload=payload)
    parsed = IPv4.unpack(packet.pack())
    assert parsed.src == packet.src and parsed.dst == packet.dst
    assert parsed.proto == proto and parsed.payload == payload


@given(
    sport=st.integers(min_value=0, max_value=65535),
    dport=st.integers(min_value=0, max_value=65535),
    payload=st.binary(max_size=64),
)
def test_tcp_roundtrip_property(sport, dport, payload):
    parsed = Tcp.unpack(Tcp(src_port=sport, dst_port=dport, payload=payload).pack())
    assert (parsed.src_port, parsed.dst_port, parsed.payload) == (sport, dport, payload)
