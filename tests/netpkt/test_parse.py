"""Full-frame parsing and the flow key."""

from repro.netpkt import (
    ETH_TYPE_ARP,
    ETH_TYPE_IPV4,
    ETH_TYPE_LLDP,
    Arp,
    Ethernet,
    Icmp,
    IPv4,
    Lldp,
    MacAddress,
    Tcp,
    Udp,
    ip,
    parse_frame,
)
from repro.netpkt.ethernet import Vlan
from repro.netpkt.ipv4 import IPPROTO_ICMP, IPPROTO_TCP, IPPROTO_UDP
from repro.netpkt.packet import build_frame

MAC_A = MacAddress("02:00:00:00:00:01")
MAC_B = MacAddress("02:00:00:00:00:02")


def _tcp_frame(**tcp_kwargs):
    return build_frame(
        Ethernet(dst=MAC_B, src=MAC_A, eth_type=ETH_TYPE_IPV4),
        IPv4(src=ip("10.0.0.1"), dst=ip("10.0.0.2"), proto=IPPROTO_TCP),
        Tcp(src_port=1000, dst_port=22, **tcp_kwargs),
    )


def test_parse_tcp_key():
    key = parse_frame(_tcp_frame()).key
    assert key.dl_type == ETH_TYPE_IPV4
    assert key.nw_proto == IPPROTO_TCP
    assert (key.tp_src, key.tp_dst) == (1000, 22)
    assert key.nw_src == ip("10.0.0.1")


def test_parse_udp_inner():
    raw = build_frame(
        Ethernet(dst=MAC_B, src=MAC_A, eth_type=ETH_TYPE_IPV4),
        IPv4(src=ip("10.0.0.1"), dst=ip("10.0.0.2"), proto=IPPROTO_UDP),
        Udp(src_port=67, dst_port=68, payload=b"dhcp"),
    )
    frame = parse_frame(raw)
    assert isinstance(frame.inner, Udp)
    assert frame.inner.payload == b"dhcp"


def test_parse_icmp_overloads_tp_fields():
    raw = build_frame(
        Ethernet(dst=MAC_B, src=MAC_A, eth_type=ETH_TYPE_IPV4),
        IPv4(src=ip("10.0.0.1"), dst=ip("10.0.0.2"), proto=IPPROTO_ICMP),
        Icmp.echo_request(1, 1),
    )
    key = parse_frame(raw).key
    assert (key.tp_src, key.tp_dst) == (8, 0)  # type/code


def test_parse_arp_key_uses_sender_target():
    raw = build_frame(
        Ethernet(dst=MacAddress("ff:ff:ff:ff:ff:ff"), src=MAC_A, eth_type=ETH_TYPE_ARP),
        Arp.request(MAC_A, ip("10.0.0.1"), ip("10.0.0.9")),
    )
    key = parse_frame(raw).key
    assert key.nw_src == ip("10.0.0.1")
    assert key.nw_dst == ip("10.0.0.9")
    assert key.nw_proto == 1  # opcode


def test_parse_lldp():
    raw = build_frame(
        Ethernet(dst=MacAddress("01:80:c2:00:00:0e"), src=MAC_A, eth_type=ETH_TYPE_LLDP),
        Lldp(chassis_id="sw9", port_id="2"),
    )
    frame = parse_frame(raw)
    assert isinstance(frame.inner, Lldp)
    assert frame.inner.chassis_id == "sw9"


def test_parse_vlan_in_key():
    eth = Ethernet(dst=MAC_B, src=MAC_A, eth_type=ETH_TYPE_IPV4, vlan=Vlan(vid=42, pcp=3))
    raw = build_frame(eth, IPv4(src=ip("1.1.1.1"), dst=ip("2.2.2.2"), proto=IPPROTO_TCP), Tcp(src_port=1, dst_port=2))
    key = parse_frame(raw).key
    assert (key.dl_vlan, key.dl_vlan_pcp) == (42, 3)


def test_parse_garbage_payload_degrades_gracefully():
    eth = Ethernet(dst=MAC_B, src=MAC_A, eth_type=ETH_TYPE_IPV4, payload=b"\xde\xad")
    frame = parse_frame(eth.pack())
    assert frame.ipv4 is None
    assert frame.inner == b"\xde\xad"
    assert frame.key.nw_src is None


def test_unknown_ethertype_keeps_raw_payload():
    eth = Ethernet(dst=MAC_B, src=MAC_A, eth_type=0x9999, payload=b"opaque")
    frame = parse_frame(eth.pack())
    assert frame.inner == b"opaque"


def test_repack_after_field_rewrite():
    frame = parse_frame(_tcp_frame())
    frame.ipv4.dst = ip("10.9.9.9")
    frame.inner.dst_port = 2222
    reparsed = parse_frame(frame.repack())
    assert reparsed.key.nw_dst == ip("10.9.9.9")
    assert reparsed.key.tp_dst == 2222


def test_repack_recomputes_ip_checksum():
    frame = parse_frame(_tcp_frame())
    frame.ipv4.ttl = 5
    parse_frame(frame.repack())  # would raise on a bad checksum


def test_build_frame_preserves_inner_payload():
    raw = build_frame(
        Ethernet(dst=MAC_B, src=MAC_A, eth_type=ETH_TYPE_IPV4),
        IPv4(src=ip("1.1.1.1"), dst=ip("2.2.2.2"), proto=IPPROTO_UDP),
        Udp(src_port=1, dst_port=2, payload=b"keepme"),
    )
    frame = parse_frame(raw)
    assert frame.inner.payload == b"keepme"


def test_field_values_excludes_wildcards():
    eth = Ethernet(dst=MAC_B, src=MAC_A, eth_type=0x9999)
    values = parse_frame(eth.pack()).key.field_values()
    assert set(values) == {"dl_src", "dl_dst", "dl_type"}
