"""libyanc: the no-syscall fastpath (paper section 8.1)."""

import pytest

from repro.dataplane import Match, Output, build_linear
from repro.libyanc import LibYanc
from repro.runtime import YancController
from repro.vfs import EventMask, FileExists


@pytest.fixture
def rig():
    ctl = YancController(build_linear(2)).start()
    lib = LibYanc(ctl.host.fs, counters=ctl.host.vfs.counters)
    return ctl, lib


def test_create_flow_writes_whole_directory(rig):
    ctl, lib = rig
    lib.create_flow("sw1", "fast", Match(dl_type=0x800, tp_dst=443, nw_proto=6), [Output(2)], priority=9, idle_timeout=5)
    yc = ctl.client()
    spec = yc.read_flow("sw1", "fast")
    assert spec.priority == 9
    assert spec.match.tp_dst == 443
    assert spec.version == 1


def test_fastpath_flow_reaches_hardware(rig):
    ctl, lib = rig
    lib.create_flow("sw1", "fast", Match(dl_type=0x800), [Output(2)], priority=9)
    ctl.run(0.2)
    assert len(ctl.net.switches["sw1"].table) == 1


def test_fastpath_costs_zero_syscalls(rig):
    ctl, lib = rig
    meter_counters = ctl.host.root_sc.meter.counters
    before = meter_counters.get("syscall.total")
    lib.create_flow("sw1", "fast", Match(dl_type=0x800), [Output(2)])
    assert meter_counters.get("syscall.total") == before
    assert lib.counters.get("libyanc.op") > 0


def test_file_path_costs_many_syscalls(rig):
    """The contrast the paper draws: the same flow via files is dozens of
    syscalls, each a context switch."""
    ctl, _lib = rig
    from repro.perf import SyscallMeter

    meter = SyscallMeter()
    yc = ctl.client(meter=meter)
    yc.create_flow("sw1", "slow", Match(dl_type=0x800), [Output(2)], priority=5)
    assert meter.syscalls >= 10
    assert meter.context_switches >= 40


def test_fastpath_emits_same_events_as_file_path(rig):
    """Drivers cannot tell the two paths apart (same watch events)."""
    ctl, lib = rig
    sc = ctl.host.root_sc
    ino = sc.inotify_init()
    sc.inotify_add_watch(ino, "/net/switches/sw1/flows", EventMask.IN_CREATE)
    lib.create_flow("sw1", "fast", Match(dl_type=0x800), [Output(2)])
    assert [e.name for e in sc.inotify_read(ino)] == ["fast"]


def test_fastpath_validation_still_applies(rig):
    _ctl, lib = rig
    from repro.vfs import InvalidArgument

    with pytest.raises(InvalidArgument):
        lib.create_flow("sw1", "bad", Match(dl_type=0x800), [Output(2)], priority=99999)


def test_duplicate_flow_rejected(rig):
    _ctl, lib = rig
    lib.create_flow("sw1", "f", Match(), [Output(1)])
    with pytest.raises(FileExists):
        lib.create_flow("sw1", "f", Match(), [Output(1)])


def test_commit_increments_version(rig):
    ctl, lib = rig
    lib.create_flow("sw1", "f", Match(), [Output(1)], commit=False)
    assert lib.commit_flow("sw1", "f") == 1
    assert lib.commit_flow("sw1", "f") == 2
    assert ctl.client().read_flow("sw1", "f").version == 2


def test_delete_flow_removes_from_tree_and_hw(rig):
    ctl, lib = rig
    lib.create_flow("sw1", "f", Match(dl_type=0x800), [Output(2)])
    ctl.run(0.2)
    lib.delete_flow("sw1", "f")
    ctl.run(0.2)
    assert ctl.client().flows("sw1") == []
    assert len(ctl.net.switches["sw1"].table) == 0


def test_bulk_create(rig):
    ctl, lib = rig
    entries = [(f"bulk{i}", Match(dl_vlan=i), [Output(1)]) for i in range(10)]
    assert lib.bulk_create("sw1", entries, priority=3) == 10
    ctl.run(0.3)
    assert len(ctl.net.switches["sw1"].table) == 10


def test_flow_counters_readable(rig):
    _ctl, lib = rig
    lib.create_flow("sw1", "f", Match(), [Output(1)])
    assert lib.flow_counters("sw1", "f") == {"packet_count": 0, "byte_count": 0}


def test_read_attribute(rig):
    _ctl, lib = rig
    lib.create_flow("sw1", "f", Match(tp_dst=80, nw_proto=6, dl_type=0x800), [Output(1)], priority=8)
    assert lib.read_attribute("sw1", "f", "priority") == "8"
    assert lib.read_attribute("sw1", "f", "match.tp_dst") == "80"


def test_list_switches(rig):
    _ctl, lib = rig
    assert lib.list_switches() == ["sw1", "sw2"]
