"""libyanc: the no-syscall fastpath (paper section 8.1)."""

import pytest

from repro.dataplane import Match, Output, build_linear
from repro.libyanc import LibYanc
from repro.runtime import YancController
from repro.vfs import EventMask, FileExists, FileNotFound


@pytest.fixture
def rig():
    ctl = YancController(build_linear(2)).start()
    lib = LibYanc(ctl.host.fs, counters=ctl.host.vfs.counters)
    return ctl, lib


def test_create_flow_writes_whole_directory(rig):
    ctl, lib = rig
    lib.create_flow("sw1", "fast", Match(dl_type=0x800, tp_dst=443, nw_proto=6), [Output(2)], priority=9, idle_timeout=5)
    yc = ctl.client()
    spec = yc.read_flow("sw1", "fast")
    assert spec.priority == 9
    assert spec.match.tp_dst == 443
    assert spec.version == 1


def test_fastpath_flow_reaches_hardware(rig):
    ctl, lib = rig
    lib.create_flow("sw1", "fast", Match(dl_type=0x800), [Output(2)], priority=9)
    ctl.run(0.2)
    assert len(ctl.net.switches["sw1"].table) == 1


def test_fastpath_costs_zero_syscalls(rig):
    ctl, lib = rig
    meter_counters = ctl.host.root_sc.meter.counters
    before = meter_counters.get("syscall.total")
    lib.create_flow("sw1", "fast", Match(dl_type=0x800), [Output(2)])
    assert meter_counters.get("syscall.total") == before
    assert lib.counters.get("libyanc.op") > 0


def test_file_path_costs_many_syscalls(rig):
    """The contrast the paper draws: the same flow via files is dozens of
    syscalls, each a context switch."""
    ctl, _lib = rig
    from repro.perf import SyscallMeter

    meter = SyscallMeter()
    yc = ctl.client(meter=meter)
    yc.create_flow("sw1", "slow", Match(dl_type=0x800), [Output(2)], priority=5)
    assert meter.syscalls >= 10
    assert meter.context_switches >= 40


def test_fastpath_emits_same_events_as_file_path(rig):
    """Drivers cannot tell the two paths apart (same watch events)."""
    ctl, lib = rig
    sc = ctl.host.root_sc
    ino = sc.inotify_init()
    sc.inotify_add_watch(ino, "/net/switches/sw1/flows", EventMask.IN_CREATE)
    lib.create_flow("sw1", "fast", Match(dl_type=0x800), [Output(2)])
    assert [e.name for e in sc.inotify_read(ino)] == ["fast"]


def test_fastpath_validation_still_applies(rig):
    _ctl, lib = rig
    from repro.vfs import InvalidArgument

    with pytest.raises(InvalidArgument):
        lib.create_flow("sw1", "bad", Match(dl_type=0x800), [Output(2)], priority=99999)


def test_duplicate_flow_rejected(rig):
    _ctl, lib = rig
    lib.create_flow("sw1", "f", Match(), [Output(1)])
    with pytest.raises(FileExists):
        lib.create_flow("sw1", "f", Match(), [Output(1)])


def test_commit_increments_version(rig):
    ctl, lib = rig
    lib.create_flow("sw1", "f", Match(), [Output(1)], commit=False)
    assert lib.commit_flow("sw1", "f") == 1
    assert lib.commit_flow("sw1", "f") == 2
    assert ctl.client().read_flow("sw1", "f").version == 2


def test_delete_flow_removes_from_tree_and_hw(rig):
    ctl, lib = rig
    lib.create_flow("sw1", "f", Match(dl_type=0x800), [Output(2)])
    ctl.run(0.2)
    lib.delete_flow("sw1", "f")
    ctl.run(0.2)
    assert ctl.client().flows("sw1") == []
    assert len(ctl.net.switches["sw1"].table) == 0


def test_bulk_create(rig):
    ctl, lib = rig
    entries = [(f"bulk{i}", Match(dl_vlan=i), [Output(1)]) for i in range(10)]
    assert lib.bulk_create("sw1", entries, priority=3) == 10
    ctl.run(0.3)
    assert len(ctl.net.switches["sw1"].table) == 10


def test_flow_counters_readable(rig):
    _ctl, lib = rig
    lib.create_flow("sw1", "f", Match(), [Output(1)])
    assert lib.flow_counters("sw1", "f") == {"packet_count": 0, "byte_count": 0}


def test_read_attribute(rig):
    _ctl, lib = rig
    lib.create_flow("sw1", "f", Match(tp_dst=80, nw_proto=6, dl_type=0x800), [Output(1)], priority=8)
    assert lib.read_attribute("sw1", "f", "priority") == "8"
    assert lib.read_attribute("sw1", "f", "match.tp_dst") == "80"


def test_list_switches(rig):
    _ctl, lib = rig
    assert lib.list_switches() == ["sw1", "sw2"]


# -- bugfix regressions (fastpath v2) --------------------------------------------------


def test_delete_flow_events_match_file_path_rm_r(rig):
    """Recursive delete: a watcher on counters/ sees the same IN_DELETE
    stream whether the flow dies via libyanc or via ``rm -r``.

    Regression: delete_flow used to detach only direct children (with
    events suppressed), so counters/ entries never detached and its
    watchers saw nothing.
    """
    ctl, lib = rig
    sc = ctl.host.root_sc
    yc = ctl.client()
    lib.create_flow("sw1", "f", Match(dl_type=0x800), [Output(2)])
    yc.create_flow("sw2", "f", Match(dl_type=0x800), [Output(2)])
    mask = EventMask.IN_DELETE | EventMask.IN_DELETE_SELF
    streams = {}
    for switch in ("sw1", "sw2"):
        ino = sc.inotify_init()
        base = f"/net/switches/{switch}/flows"
        sc.inotify_add_watch(ino, base, mask)
        sc.inotify_add_watch(ino, f"{base}/f", mask)
        sc.inotify_add_watch(ino, f"{base}/f/counters", mask)
        streams[switch] = ino
    lib.delete_flow("sw1", "f")
    yc.delete_flow("sw2", "f")
    fast = [(int(e.mask), e.name) for e in sc.inotify_read(streams["sw1"])]
    file_path = [(int(e.mask), e.name) for e in sc.inotify_read(streams["sw2"])]
    assert fast == file_path
    deleted_names = [name for _m, name in fast]
    assert "packet_count" in deleted_names and "byte_count" in deleted_names


def test_create_and_modify_events_match_file_path(rig):
    """Create/modify parity: flows-dir IN_CREATE and version IN_MODIFY are
    byte-identical across the two paths, and so is the resulting tree."""
    ctl, lib = rig
    sc = ctl.host.root_sc
    yc = ctl.client()
    create_inos = {}
    for switch in ("sw1", "sw2"):
        ino = sc.inotify_init()
        sc.inotify_add_watch(ino, f"/net/switches/{switch}/flows", EventMask.IN_CREATE)
        create_inos[switch] = ino
    lib.create_flow("sw1", "f", Match(dl_type=0x800, tp_dst=80, nw_proto=6), [Output(2)], priority=7)
    yc.create_flow("sw2", "f", Match(dl_type=0x800, tp_dst=80, nw_proto=6), [Output(2)], priority=7)
    fast = [(int(e.mask), e.name) for e in sc.inotify_read(create_inos["sw1"])]
    file_path = [(int(e.mask), e.name) for e in sc.inotify_read(create_inos["sw2"])]
    assert fast == file_path
    assert yc.read_flow("sw1", "f") == yc.read_flow("sw2", "f")
    modify_inos = {}
    for switch in ("sw1", "sw2"):
        ino = sc.inotify_init()
        sc.inotify_add_watch(ino, f"/net/switches/{switch}/flows/f", EventMask.IN_MODIFY)
        modify_inos[switch] = ino
    lib.commit_flow("sw1", "f")
    yc.commit_flow("sw2", "f")
    fast = [(int(e.mask), e.name) for e in sc.inotify_read(modify_inos["sw1"])]
    file_path = [(int(e.mask), e.name) for e in sc.inotify_read(modify_inos["sw2"])]
    assert fast == file_path == [(int(EventMask.IN_MODIFY), "version")]


def test_set_validated_content_keeps_rollback_point(rig):
    """Regression: create_flow used to poke AttributeFile._last_valid by
    hand; the public mutator must validate first and record the new
    rollback point only on success."""
    from repro.vfs import InvalidArgument

    _ctl, lib = rig
    lib.create_flow("sw1", "f", Match(), [Output(1)], priority=5)
    attr = lib._flow("sw1", "f").lookup("priority")
    attr.set_validated_content("7")
    assert attr.read_all() == b"7"
    assert attr._last_valid == b"7"
    with pytest.raises(InvalidArgument):
        attr.set_validated_content("99999")
    assert attr.read_all() == b"7"
    assert attr._last_valid == b"7"
    lib.commit_flow("sw1", "f")  # make the hand-edited spec §3.4-visible


def test_bulk_create_plumbs_timeouts(rig):
    """Regression: bulk_create silently dropped idle/hard timeouts."""
    ctl, lib = rig
    entries = [(f"b{i}", Match(dl_vlan=i), [Output(1)]) for i in range(3)]
    assert lib.bulk_create("sw1", entries, priority=4, idle_timeout=5, hard_timeout=9) == 3
    for i in range(3):
        spec = ctl.client().read_flow("sw1", f"b{i}")
        assert spec.priority == 4
        assert spec.idle_timeout == 5.0
        assert spec.hard_timeout == 9.0
        assert spec.version == 1


def test_bulk_create_commits_after_all_specs_land(rig, monkeypatch):
    """Regression: bulk_create used to commit per entry, interleaving
    visibility points with later entries' spec writes."""
    _ctl, lib = rig
    order = []
    orig_create, orig_commit = LibYanc.create_flow, LibYanc.commit_flow

    def spy_create(self, switch, name, *args, **kwargs):
        order.append(("create", name))
        return orig_create(self, switch, name, *args, **kwargs)

    def spy_commit(self, switch, name):
        order.append(("commit", name))
        return orig_commit(self, switch, name)

    monkeypatch.setattr(LibYanc, "create_flow", spy_create)
    monkeypatch.setattr(LibYanc, "commit_flow", spy_commit)
    entries = [(f"b{i}", Match(dl_vlan=i), [Output(1)]) for i in range(3)]
    lib.bulk_create("sw1", entries)
    creates = [i for i, (kind, _n) in enumerate(order) if kind == "create"]
    commits = [i for i, (kind, _n) in enumerate(order) if kind == "commit"]
    assert commits and max(creates) < min(commits)
    assert [n for kind, n in order if kind == "commit"] == ["b0", "b1", "b2"]


def test_bulk_create_uncommitted_stays_staged(rig):
    ctl, lib = rig
    entries = [(f"b{i}", Match(dl_vlan=i), [Output(1)]) for i in range(2)]
    lib.bulk_create("sw1", entries, commit=False)
    assert lib.dirty_flows == [("sw1", "b0"), ("sw1", "b1")]
    assert ctl.client().read_flow("sw1", "b0").version == 0
    assert lib.flush() == [("sw1", "b0", 1), ("sw1", "b1", 1)]
    assert lib.dirty_flows == []


# -- write-behind commits --------------------------------------------------------------


def test_stage_flow_defers_the_visibility_point(rig):
    ctl, lib = rig
    lib.stage_flow("sw1", "w", Match(dl_type=0x800), [Output(2)])
    assert lib.dirty_flows == [("sw1", "w")]
    assert ctl.client().read_flow("sw1", "w").version == 0
    ctl.run(0.2)
    assert len(ctl.net.switches["sw1"].table) == 0  # invisible until flushed
    assert lib.flush() == [("sw1", "w", 1)]
    ctl.run(0.2)
    assert len(ctl.net.switches["sw1"].table) == 1


def test_flush_skips_flows_deleted_since_staging(rig):
    _ctl, lib = rig
    lib.stage_flow("sw1", "gone", Match(), [Output(1)])
    lib.delete_flow("sw1", "gone")
    assert lib.flush() == []


def test_direct_commit_clears_the_dirty_mark(rig):
    _ctl, lib = rig
    lib.stage_flow("sw1", "w", Match(), [Output(1)])
    lib.commit_flow("sw1", "w")
    assert lib.dirty_flows == []
    assert lib.flush() == []


# -- vectored directory I/O ------------------------------------------------------------


def test_read_flow_dir_returns_every_attribute(rig):
    _ctl, lib = rig
    lib.create_flow("sw1", "f", Match(dl_type=0x800, tp_dst=443, nw_proto=6), [Output(2)], priority=9)
    files = lib.read_flow_dir("sw1", "f")
    assert files["priority"] == "9"
    assert files["match.tp_dst"] == "443"
    assert files["version"] == "1"
    assert "counters" not in files


def test_read_flows_returns_the_whole_table(rig):
    _ctl, lib = rig
    lib.create_flow("sw1", "a", Match(dl_vlan=1), [Output(1)])
    lib.create_flow("sw1", "b", Match(dl_vlan=2), [Output(2)])
    table = lib.read_flows("sw1")
    assert sorted(table) == ["a", "b"]
    assert table["b"]["match.dl_vlan"] == "2"


def test_write_flow_files_vectored_and_staged(rig):
    ctl, lib = rig
    lib.create_flow("sw1", "f", Match(), [Output(1)], priority=5)
    lib.write_flow_files("sw1", "f", {"priority": "6", "cookie": "12"})
    assert lib.read_attribute("sw1", "f", "priority") == "6"
    assert lib.read_attribute("sw1", "f", "cookie") == "12"
    assert ctl.client().read_flow("sw1", "f").version == 1  # not yet visible
    assert lib.dirty_flows == [("sw1", "f")]
    lib.flush()
    assert ctl.client().read_flow("sw1", "f").version == 2


def test_write_flow_files_is_all_or_nothing(rig):
    from repro.vfs import InvalidArgument

    _ctl, lib = rig
    lib.create_flow("sw1", "f", Match(), [Output(1)], priority=5)
    with pytest.raises(InvalidArgument):
        lib.write_flow_files("sw1", "f", {"cookie": "1", "priority": "99999"})
    assert lib.read_attribute("sw1", "f", "priority") == "5"
    with pytest.raises(FileNotFound):
        lib.read_attribute("sw1", "f", "cookie")  # first write rolled back too


def test_write_flow_files_rejects_version(rig):
    _ctl, lib = rig
    lib.create_flow("sw1", "f", Match(), [Output(1)])
    with pytest.raises(FileExists):
        lib.write_flow_files("sw1", "f", {"version": "9"})


# -- zero-copy packet rings ------------------------------------------------------------


def test_push_packet_in_fans_out_references(rig):
    _ctl, lib = rig
    r1 = lib.packet_in_ring("sw1", "app1")
    r2 = lib.packet_in_ring("sw1", "app2")
    other = lib.packet_in_ring("sw2", "app1")
    payload = bytearray(b"frame")
    assert lib.push_packet_in("sw1", payload) == 2
    v1, v2 = r1.get(), r2.get()
    assert v1.obj is payload and v2.obj is payload  # same buffer, no copies
    assert len(other) == 0
    assert lib.counters.get("bytes.copied") == 0


def test_packet_in_ring_is_stable_per_subscriber(rig):
    _ctl, lib = rig
    assert lib.packet_in_ring("sw1", "app") is lib.packet_in_ring("sw1", "app")
    lib.drop_packet_in_ring("sw1", "app")
    lib.packet_in_ring("sw1", "app").put(b"x")
    assert lib.push_packet_in("sw1", b"y") == 1


def test_full_packet_ring_drops(rig):
    _ctl, lib = rig
    ring = lib.packet_in_ring("sw1", "app", capacity=1)
    assert lib.push_packet_in("sw1", b"a") == 1
    assert lib.push_packet_in("sw1", b"b") == 0  # full: dropped, counted
    assert ring.dropped == 1
    assert lib.counters.get("shm.dropped") == 1


def test_packet_out_ring_round_trip(rig):
    _ctl, lib = rig
    assert lib.push_packet_out("sw1", b"out") is True
    assert bytes(lib.packet_out_ring("sw1").get()) == b"out"


def test_packet_ring_requires_existing_switch(rig):
    _ctl, lib = rig
    with pytest.raises(FileNotFound):
        lib.packet_in_ring("nope", "app")
