"""ShmRing: zero-copy bulk data passing."""

import pytest

from repro.libyanc import ShmRing
from repro.perf import PerfCounters


def test_put_get_fifo_order():
    ring = ShmRing(8)
    ring.put(b"one")
    ring.put(b"two")
    assert bytes(ring.get()) == b"one"
    assert bytes(ring.get()) == b"two"
    assert ring.get() is None


def test_zero_copy_identity():
    """The consumer sees the producer's buffer, not a copy."""
    ring = ShmRing(4)
    buffer = bytearray(b"shared-payload")
    ring.put(buffer)
    view = ring.get()
    buffer[0:6] = b"SHARED"
    assert bytes(view[:6]) == b"SHARED"


def test_zero_copy_bills_no_bytes():
    counters = PerfCounters()
    ring = ShmRing(4, counters=counters)
    ring.put(b"x" * 10_000)
    assert counters.get("bytes.copied") == 0


def test_put_copy_bills_payload_bytes():
    counters = PerfCounters()
    ring = ShmRing(4, counters=counters)
    ring.put_copy(b"x" * 10_000)
    assert counters.get("bytes.copied") == 10_000


def test_full_ring_drops():
    ring = ShmRing(2)
    assert ring.put(b"a")
    assert ring.put(b"b")
    assert ring.full
    assert not ring.put(b"c")
    assert ring.dropped == 1
    assert len(ring) == 2


def test_wraparound():
    ring = ShmRing(2)
    for index in range(10):
        ring.put(str(index).encode())
        assert bytes(ring.get()) == str(index).encode()


def test_drain():
    ring = ShmRing(8)
    for index in range(5):
        ring.put(bytes([index]))
    assert [bytes(b) for b in ring.drain()] == [bytes([i]) for i in range(5)]
    assert len(ring) == 0


def test_op_counters():
    counters = PerfCounters()
    ring = ShmRing(4, counters=counters)
    ring.put(b"a")
    ring.get()
    ring.get()
    assert counters.get("shm.put") == 1
    assert counters.get("shm.get") == 2


def test_capacity_validation():
    with pytest.raises(ValueError):
        ShmRing(0)
