"""ShmRing: zero-copy bulk data passing."""

import pytest

from repro.libyanc import ShmRing
from repro.perf import PerfCounters


def test_put_get_fifo_order():
    ring = ShmRing(8)
    ring.put(b"one")
    ring.put(b"two")
    assert bytes(ring.get()) == b"one"
    assert bytes(ring.get()) == b"two"
    assert ring.get() is None


def test_zero_copy_identity():
    """The consumer sees the producer's buffer, not a copy."""
    ring = ShmRing(4)
    buffer = bytearray(b"shared-payload")
    ring.put(buffer)
    view = ring.get()
    buffer[0:6] = b"SHARED"
    assert bytes(view[:6]) == b"SHARED"


def test_zero_copy_bills_no_bytes():
    counters = PerfCounters()
    ring = ShmRing(4, counters=counters)
    ring.put(b"x" * 10_000)
    assert counters.get("bytes.copied") == 0


def test_put_copy_bills_payload_bytes():
    counters = PerfCounters()
    ring = ShmRing(4, counters=counters)
    ring.put_copy(b"x" * 10_000)
    assert counters.get("bytes.copied") == 10_000


def test_full_ring_drops():
    ring = ShmRing(2)
    assert ring.put(b"a")
    assert ring.put(b"b")
    assert ring.full
    assert not ring.put(b"c")
    assert ring.dropped == 1
    assert len(ring) == 2


def test_wraparound():
    ring = ShmRing(2)
    for index in range(10):
        ring.put(str(index).encode())
        assert bytes(ring.get()) == str(index).encode()


def test_drain():
    ring = ShmRing(8)
    for index in range(5):
        ring.put(bytes([index]))
    assert [bytes(b) for b in ring.drain()] == [bytes([i]) for i in range(5)]
    assert len(ring) == 0


def test_op_counters():
    counters = PerfCounters()
    ring = ShmRing(4, counters=counters)
    ring.put(b"a")
    ring.get()
    ring.get()
    assert counters.get("shm.put") == 1
    assert counters.get("shm.get") == 2


def test_capacity_validation():
    with pytest.raises(ValueError):
        ShmRing(0)


# -- pollability (the run-loop integration of fastpath v2) ------------------------------


def test_ring_plugs_into_epoll():
    from repro.vfs.poll import Epoll

    ring = ShmRing(4)
    ep = Epoll()
    ep.add(ring)
    assert ep.wait() == []
    ring.put(b"x")
    # Level-triggered: ready until drained.
    assert ep.wait() == [ring]
    assert ep.wait() == [ring]
    ring.get()
    assert ep.wait() == []


def test_ring_notifies_only_on_empty_to_nonempty_edge():
    from repro.vfs.poll import Epoll

    ring = ShmRing(4)
    ep = Epoll()
    edges = []
    ep.wakeup = lambda: edges.append(1)
    ep.add(ring)
    ring.put(b"a")
    assert len(edges) == 1
    ring.put(b"b")  # still non-empty: no second edge
    assert len(edges) == 1
    ring.drain()
    ep.wait()  # consume the first edge's signal
    ring.put(b"c")  # drained back to empty: a fresh edge
    assert len(edges) == 2


def test_unregistered_ring_stops_notifying():
    from repro.vfs.poll import Epoll

    ring = ShmRing(4)
    ep = Epoll()
    ep.add(ring)
    ep.remove(ring)
    ring.put(b"x")
    assert ep.wait() == []


def test_wraparound_with_interleaved_overflow_drops():
    counters = PerfCounters()
    ring = ShmRing(3, counters=counters)
    accepted, dropped = 0, 0
    for i in range(10):
        if ring.put(f"m{i}".encode()):
            accepted += 1
        else:
            dropped += 1
        if i % 2:
            ring.get()
    # Slots recycle across the wrap point; order survives.
    remaining = [bytes(view) for view in ring.drain()]
    assert ring.dropped == dropped
    assert counters.get("shm.dropped") == dropped
    assert accepted - dropped >= 0
    assert remaining == sorted(remaining, key=lambda m: int(m[1:]))
    assert len(ring) == 0


def test_full_ring_readability_unaffected_by_drops():
    ring = ShmRing(1)
    ring.put(b"a")
    assert ring.readable() and ring.full
    assert ring.put(b"b") is False  # dropped, not queued
    assert bytes(ring.get()) == b"a"
    assert not ring.readable()
