"""Cost models and the syscall meter."""

from repro.perf import FUSE_COST_MODEL, SHM_COST_MODEL, PerfCounters, SyscallMeter
from repro.perf.cost import CostModel, TimeCharger


def test_fuse_model_charges_context_switches():
    t = FUSE_COST_MODEL.syscall_time(10)
    assert t == 10 * FUSE_COST_MODEL.syscall_cost + 40 * FUSE_COST_MODEL.ctxsw_cost


def test_shm_model_is_free_per_call():
    assert SHM_COST_MODEL.syscall_time(1000) == 0.0


def test_copy_time_linear_in_bytes():
    model = CostModel(name="t", byte_copy_cost=1e-9)
    assert model.copy_time(2000) == 2 * model.copy_time(1000)


def test_meter_counts_syscalls_and_ctxsw():
    meter = SyscallMeter()
    meter.enter("read")
    meter.enter("write", nbytes=100)
    assert meter.syscalls == 2
    assert meter.context_switches == 2 * FUSE_COST_MODEL.ctxsw_per_syscall
    assert meter.counters.get("bytes.copied") == 100


def test_meter_per_name_counters():
    meter = SyscallMeter()
    meter.enter("open")
    meter.enter("open")
    meter.enter("close")
    assert meter.counters.get("syscall.open") == 2
    assert meter.counters.get("syscall.close") == 1


def test_meter_pause_suppresses_accounting():
    meter = SyscallMeter()
    with meter.pause():
        meter.enter("read")
    assert meter.syscalls == 0


def test_meter_pause_nests():
    meter = SyscallMeter()
    with meter.pause():
        with meter.pause():
            meter.enter("read")
        meter.enter("read")
    meter.enter("read")
    assert meter.syscalls == 1


def test_charge_prices_delta_only():
    counters = PerfCounters()
    counters.add("syscall.read", 5)
    mark = counters.snapshot()
    counters.add("syscall.read", 3)
    assert FUSE_COST_MODEL.charge(counters, mark) == FUSE_COST_MODEL.syscall_time(3)


def test_time_charger_accumulates():
    counters = PerfCounters()
    charger = TimeCharger(model=FUSE_COST_MODEL, counters=counters)
    counters.add("syscall.read", 2)
    charger.settle()
    counters.add("syscall.read", 1)
    charger.settle()
    assert charger.elapsed == FUSE_COST_MODEL.syscall_time(3)


def test_meter_reset():
    meter = SyscallMeter()
    meter.enter("read")
    meter.reset()
    assert meter.syscalls == 0 and meter.context_switches == 0
