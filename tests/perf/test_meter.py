"""SyscallMeter semantics, pause nesting, and the measured §8.1 remedies.

The "before/after" tests at the bottom pin the syscall savings of the
yancperf-guided fixes (scandir batching in the shell toolbox, EAFP peer
relinking) with live :class:`~repro.perf.meter.SyscallMeter` counts, so a
regression back to the storm shape fails loudly.
"""

import pytest

from repro import Simulator, YancController, build_linear
from repro.perf import CostModel, PerfCounters, SyscallMeter
from repro.proc import Process, ProcessTable
from repro.shell import Shell
from repro.vfs.notify import EventMask
from repro.vfs.syscalls import Syscalls
from repro.vfs.vfs import VirtualFileSystem
from repro.yancfs.client import YancClient


# -- SyscallMeter ------------------------------------------------------------


def test_enter_counts_name_total_and_ctxsw():
    meter = SyscallMeter()
    meter.enter("stat")
    meter.enter("stat")
    meter.enter("open")
    assert meter.counters.get("syscall.stat") == 2
    assert meter.counters.get("syscall.open") == 1
    assert meter.syscalls == 3
    assert meter.context_switches == 3 * meter.model.ctxsw_per_syscall


def test_enter_bills_payload_bytes():
    meter = SyscallMeter()
    meter.enter("read", nbytes=100)
    meter.enter("read")  # no payload, no bytes billed
    assert meter.counters.get("bytes.copied") == 100


def test_shared_memory_model_bills_no_context_switches():
    meter = SyscallMeter(model=CostModel(name="shm", ctxsw_per_syscall=0))
    meter.enter("read")
    assert meter.syscalls == 1
    assert meter.context_switches == 0


def test_pause_suspends_metering():
    meter = SyscallMeter()
    meter.enter("stat")
    with meter.pause():
        meter.enter("stat")
        meter.enter("open")
    meter.enter("stat")
    assert meter.syscalls == 2
    assert meter.counters.get("syscall.open") == 0


def test_pause_nests_and_resumes_only_at_outer_exit():
    meter = SyscallMeter()
    with meter.pause():
        with meter.pause():
            meter.enter("stat")
        meter.enter("stat")  # inner exited, outer still active
    meter.enter("stat")
    assert meter.syscalls == 1


def test_reset_zeroes_everything():
    meter = SyscallMeter()
    meter.enter("stat", nbytes=10)
    meter.reset()
    assert meter.syscalls == 0
    assert meter.counters.names() == []


# -- the facade bills one enter() per syscall --------------------------------


def test_facade_bills_one_syscall_per_call(sc: Syscalls):
    sc.mkdir("/d")
    assert sc.meter.counters.get("syscall.mkdir") == 1
    before = sc.meter.syscalls
    sc.write_text("/d/f", "x")  # open + write + close
    assert sc.meter.syscalls - before == 3
    before = sc.meter.syscalls
    sc.scandir("/d")
    assert sc.meter.syscalls - before == 1
    assert sc.meter.counters.get("syscall.scandir") == 1


def test_scandir_replaces_listdir_plus_lstat(sc: Syscalls):
    sc.mkdir("/d")
    for name in "abcd":
        sc.write_text(f"/d/{name}", name)

    before = sc.meter.syscalls
    names = sc.listdir("/d")
    stats = {name: sc.lstat(f"/d/{name}") for name in names}
    storm = sc.meter.syscalls - before

    before = sc.meter.syscalls
    batched = dict(sc.scandir("/d"))
    assert sc.meter.syscalls - before == 1
    assert storm == 1 + len(names)

    assert set(batched) == set(stats)
    for name, st in stats.items():
        assert batched[name].ino == st.ino
        assert batched[name].ftype is st.ftype


# -- dcache counters publish as deltas ---------------------------------------


def test_dcache_publish_reports_hits_as_deltas(sc: Syscalls):
    sc.makedirs("/net/switches/sw1")
    sc.stat("/net/switches/sw1")
    sc.stat("/net/switches/sw1")  # second walk should hit the cache

    counters = PerfCounters()
    sc.ns.dcache.publish(counters)
    hits = counters.get("dcache.hits") + counters.get("dcache.path_hits")
    assert hits > 0

    # No new activity: a second publish adds nothing (delta, not absolute).
    sc.ns.dcache.publish(counters)
    assert counters.get("dcache.hits") + counters.get("dcache.path_hits") == hits


# -- the epoll-dispatch counter ----------------------------------------------


class _Recorder(Process):
    proc_name = "recorder"

    def __init__(self, proc, sim, path):
        super().__init__(proc, sim)
        self.seen = []

    def on_start(self):
        self.watch("/spool", EventMask.IN_CREATE, ("dir",))

    def on_event(self, ctx, event):
        self.seen.append(event.name)


def test_dispatch_counter_counts_epoll_wakeups():
    sim = Simulator()
    vfs = VirtualFileSystem(clock=lambda: sim.now)
    sc = Syscalls(vfs)
    table = ProcessTable(sc, sim)
    sc.mkdir("/spool")
    app = _Recorder(table.spawn(), sim, "/spool").start()

    assert table.counters.get("proc.dispatches") == 0
    sc.write_bytes("/spool/one", b"x")
    sim.run()
    assert app.seen == ["one"]
    dispatches = table.counters.get("proc.dispatches")
    assert dispatches >= 1

    sc.write_bytes("/spool/two", b"x")
    sim.run()
    assert table.counters.get("proc.dispatches") > dispatches


# -- before/after: the yancperf-guided fixes, measured -----------------------


def test_ls_long_syscalls_no_longer_scale_with_entries(sc: Syscalls):
    sc.mkdir("/d")
    entries = 6
    for index in range(entries):
        sc.write_text(f"/d/f{index}", "x")
    shell = Shell(sc)

    before = sc.meter.syscalls
    out = shell.run("ls -l /d")
    used = sc.meter.syscalls - before

    assert len(out.splitlines()) == entries
    # Fixed shape: stat(dir) + one scandir.  The old readdir-then-stat
    # storm paid stat + listdir + one lstat per entry.
    assert used == 2
    assert used < 2 + entries


def test_rm_recursive_drops_the_per_entry_lstat(sc: Syscalls):
    sc.mkdir("/d")
    entries = 5
    for index in range(entries):
        sc.write_text(f"/d/f{index}", "x")
    shell = Shell(sc)

    before = sc.meter.syscalls
    shell.run("rm -r /d")
    used = sc.meter.syscalls - before

    assert not sc.exists("/d")
    # lstat(root) + scandir + N unlink + rmdir; the old shape added one
    # lstat per entry on top (2*N + 3 total).
    assert used == entries + 3
    assert used < 2 * entries + 3


def test_set_peer_relinks_in_two_syscalls():
    ctl = YancController(build_linear(2, hosts_per_switch=1)).start()
    yc = YancClient(ctl.host.root_sc.spawn(meter=SyscallMeter()))
    meter = yc.sc.meter

    before = meter.syscalls
    yc.set_peer("sw1", 2, "sw2", 1)  # the link exists: unlink + symlink
    assert meter.syscalls - before == 2

    yc.sc.unlink(f"{yc.port_path('sw1', 2)}/peer")
    before = meter.syscalls
    yc.set_peer("sw1", 2, "sw2", 1)  # absent: failed unlink + symlink
    assert meter.syscalls - before == 2
    assert yc.peer_of("sw1", 2) == yc.port_path("sw2", 1)
