"""PerfCounters and snapshots."""

import pytest

from repro.perf import CounterSnapshot, PerfCounters


def test_counters_start_at_zero():
    counters = PerfCounters()
    assert counters.get("anything") == 0


def test_add_and_get():
    counters = PerfCounters()
    counters.add("syscall.read")
    counters.add("syscall.read", 4)
    assert counters.get("syscall.read") == 5


def test_negative_increment_rejected():
    counters = PerfCounters()
    with pytest.raises(ValueError):
        counters.add("x", -1)


def test_total_prefix_sum():
    counters = PerfCounters()
    counters.add("syscall.read", 2)
    counters.add("syscall.write", 3)
    counters.add("ctxsw", 10)
    assert counters.total("syscall.") == 5


def test_snapshot_is_immutable_copy():
    counters = PerfCounters()
    counters.add("a", 1)
    snap = counters.snapshot()
    counters.add("a", 1)
    assert snap.get("a") == 1
    assert counters.get("a") == 2


def test_delta_between_snapshots():
    counters = PerfCounters()
    counters.add("a", 1)
    before = counters.snapshot()
    counters.add("a", 2)
    counters.add("b", 7)
    delta = counters.snapshot().delta(before)
    assert delta == {"a": 2, "b": 7}


def test_delta_omits_unchanged():
    counters = PerfCounters()
    counters.add("steady", 5)
    before = counters.snapshot()
    counters.add("moving", 1)
    assert "steady" not in counters.snapshot().delta(before)


def test_reset_zeroes_everything():
    counters = PerfCounters()
    counters.add("a", 3)
    counters.reset()
    assert counters.get("a") == 0
    assert counters.names() == []


def test_names_sorted():
    counters = PerfCounters()
    counters.add("zeta")
    counters.add("alpha")
    assert counters.names() == ["alpha", "zeta"]
