"""The dentry cache: hits, negative entries, and every invalidation edge.

Each mutation that can strand a cached translation — rename, unlink,
rmdir, mount, umount, symlink retargeting, permission changes — gets a
test proving the next resolution sees the post-mutation truth, plus
checks that the hit/miss/invalidation counters and the PerfCounters
bridge behave.
"""

import pytest

from repro.vfs import (
    Acl,
    Credentials,
    FileNotFound,
    MemFs,
    PermissionDenied,
    Syscalls,
)
from repro.vfs.inode import require_dir


def _dir(sc, path):
    return require_dir(sc.vfs.resolve(sc.ns, sc.cred, path))


# -- basic caching behavior ---------------------------------------------------


def test_repeat_resolution_hits_the_cache(sc):
    sc.makedirs("/net/switches/s1")
    sc.write_text("/net/switches/s1/ports", "4")
    assert sc.read_text("/net/switches/s1/ports") == "4"
    before = sc.ns.dcache.stats()
    for _ in range(3):
        assert sc.read_text("/net/switches/s1/ports") == "4"
    after = sc.ns.dcache.stats()
    assert after["path_hits"] > before["path_hits"]
    assert after["invalidations"] == before["invalidations"]


def test_component_entries_shared_across_sibling_paths(sc):
    sc.makedirs("/a/b")
    sc.write_text("/a/b/one", "1")
    sc.write_text("/a/b/two", "2")
    assert sc.read_text("/a/b/one") == "1"
    before = sc.ns.dcache.hits
    # a different leaf under the same prefix re-uses the /a and /a/b entries
    assert sc.read_text("/a/b/two") == "2"
    assert sc.ns.dcache.hits >= before + 2


def test_lookup_twin_reports_live_entries(sc):
    sc.mkdir("/d")
    sc.write_text("/d/f", "x")
    sc.stat("/d/f")
    root = _dir(sc, "/")
    d = _dir(sc, "/d")
    assert sc.ns.dcache.lookup(root, "d") is not None
    assert sc.ns.dcache.lookup(d, "f") is not None
    assert sc.ns.dcache.lookup(d, "missing") is None


def test_cache_disabled_still_resolves(sc):
    sc.ns.dcache.enabled = False
    sc.makedirs("/x/y")
    sc.write_text("/x/y/f", "plain")
    assert sc.read_text("/x/y/f") == "plain"
    assert sc.ns.dcache.stats()["entries"] == 0
    assert sc.ns.dcache.stats()["path_entries"] == 0
    assert sc.ns.dcache.hits == 0 and sc.ns.dcache.path_hits == 0


# -- invalidation edges -------------------------------------------------------


def test_rename_over_a_cached_entry(sc):
    sc.mkdir("/etc")
    sc.write_text("/etc/conf", "old")
    sc.write_text("/etc/conf.new", "new")
    assert sc.read_text("/etc/conf") == "old"  # now cached
    sc.rename("/etc/conf.new", "/etc/conf")
    assert sc.read_text("/etc/conf") == "new"


def test_rename_away_kills_the_old_name(sc):
    sc.mkdir("/d")
    sc.write_text("/d/f", "x")
    sc.stat("/d/f")
    sc.rename("/d/f", "/d/g")
    with pytest.raises(FileNotFound):
        sc.stat("/d/f")
    assert sc.read_text("/d/g") == "x"


def test_renamed_directory_invalidates_cached_descendants(sc):
    sc.makedirs("/a/b/c")
    sc.write_text("/a/b/c/f", "deep")
    assert sc.read_text("/a/b/c/f") == "deep"  # whole chain cached
    sc.rename("/a/b", "/a/z")
    with pytest.raises(FileNotFound):
        sc.stat("/a/b/c/f")
    assert sc.read_text("/a/z/c/f") == "deep"


def test_unlink_invalidates(sc):
    sc.write_text("/gone", "x")
    sc.stat("/gone")
    sc.unlink("/gone")
    with pytest.raises(FileNotFound):
        sc.stat("/gone")


def test_rmdir_invalidates(sc):
    sc.mkdir("/tmpdir")
    sc.stat("/tmpdir")
    sc.rmdir("/tmpdir")
    with pytest.raises(FileNotFound):
        sc.stat("/tmpdir")


def test_mount_over_a_cached_entry(sc):
    sc.mkdir("/m")
    sc.write_text("/m/under", "below")
    assert sc.read_text("/m/under") == "below"  # /m cached as the rootfs dir
    sc.mount("/m", MemFs())
    with pytest.raises(FileNotFound):
        sc.read_text("/m/under")


def test_umount_under_a_cached_prefix(sc):
    sc.mkdir("/m")
    sc.write_text("/m/under", "below")
    extra = MemFs()
    sc.mount("/m", extra)
    sc.write_text("/m/f", "on extra")
    assert sc.read_text("/m/f") == "on extra"  # cached across the crossing
    flushes = sc.ns.dcache.flushes
    sc.umount("/m")
    assert sc.ns.dcache.flushes == flushes + 1
    with pytest.raises(FileNotFound):
        sc.read_text("/m/f")
    assert sc.read_text("/m/under") == "below"


def test_symlink_retarget_is_seen(sc):
    sc.makedirs("/v1")
    sc.makedirs("/v2")
    sc.write_text("/v1/data", "one")
    sc.write_text("/v2/data", "two")
    sc.symlink("/v1", "/current")
    assert sc.read_text("/current/data") == "one"
    sc.unlink("/current")
    sc.symlink("/v2", "/current")
    assert sc.read_text("/current/data") == "two"


def test_negative_entry_then_create(sc):
    sc.mkdir("/spool")
    with pytest.raises(FileNotFound):
        sc.stat("/spool/job")
    neg = sc.ns.dcache.neg_hits
    with pytest.raises(FileNotFound):
        sc.stat("/spool/job")  # served by the negative entry
    assert sc.ns.dcache.neg_hits == neg + 1
    sc.write_text("/spool/job", "queued")
    assert sc.read_text("/spool/job") == "queued"


def test_acl_change_on_intermediate_dir_is_enforced(vfs, sc):
    sc.makedirs("/p/q")
    sc.write_text("/p/q/f", "secret")
    user = Syscalls(vfs, cred=Credentials(uid=1000, gid=1000))
    assert user.read_text("/p/q/f") == "secret"
    assert user.read_text("/p/q/f") == "secret"  # memoized under user's cred
    sc.set_acl("/p", Acl.from_mode(0o700))  # root-only from now on
    with pytest.raises(PermissionDenied):
        user.stat("/p/q/f")
    assert sc.read_text("/p/q/f") == "secret"  # root still passes


# -- namespace scoping --------------------------------------------------------


def test_clone_starts_with_an_empty_cache(vfs, sc):
    sc.makedirs("/warm/path")
    sc.stat("/warm/path")
    clone = sc.ns.clone()
    assert len(clone.dcache) == 0
    assert clone.dcache.stats()["path_entries"] == 0
    proc = Syscalls(vfs, ns=clone)
    proc.stat("/warm/path")  # resolves and warms the clone's own cache
    assert len(clone.dcache) > 0


def test_private_mounts_do_not_flush_other_namespaces(vfs, sc):
    sc.mkdir("/shared")
    sc.stat("/shared")
    flushes = sc.ns.dcache.flushes
    proc = Syscalls(vfs, ns=sc.ns.clone())
    proc.mount("/shared", MemFs())
    assert sc.ns.dcache.flushes == flushes  # only the clone's cache flushed


# -- bounds and counters ------------------------------------------------------


def test_capacity_bound_evicts_instead_of_growing(sc):
    sc.ns.dcache.capacity = 4
    sc.mkdir("/many")
    for i in range(10):
        sc.write_text(f"/many/f{i}", "x")
        sc.stat(f"/many/f{i}")
    assert len(sc.ns.dcache.entries) <= 4
    assert len(sc.ns.dcache.paths) <= 4
    assert sc.ns.dcache.evictions > 0


def test_counters_publish_into_perfcounters(vfs, sc):
    sc.makedirs("/n/s")
    sc.write_text("/n/s/f", "x")
    for _ in range(5):
        sc.read_text("/n/s/f")
    sc.ns.dcache.publish(vfs.counters)
    assert vfs.counters.get("dcache.path_hits") > 0
    assert vfs.counters.get("dcache.stores") > 0
    # publishing is delta-based: an immediate re-publish adds nothing
    hits = vfs.counters.get("dcache.path_hits")
    sc.ns.dcache.publish(vfs.counters)
    assert vfs.counters.get("dcache.path_hits") == hits
