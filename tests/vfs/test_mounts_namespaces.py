"""Mount table, bind mounts, and mount namespaces (paper section 5.3)."""

import pytest

from repro.vfs import (
    Credentials,
    DeviceBusy,
    FileNotFound,
    InvalidArgument,
    MemFs,
    NotPermitted,
    Syscalls,
)


def test_mount_and_cross(sc):
    sc.mkdir("/mnt")
    extra = MemFs()
    sc.mount("/mnt", extra)
    sc.write_text("/mnt/f", "on extra fs")
    assert sc.read_text("/mnt/f") == "on extra fs"
    assert sc.stat("/mnt/f").dev == extra.dev != sc.stat("/").dev


def test_mount_hides_underlying_content(sc):
    sc.mkdir("/mnt")
    sc.write_text("/mnt/hidden", "below")
    sc.mount("/mnt", MemFs())
    assert sc.listdir("/mnt") == []
    sc.umount("/mnt")
    assert sc.read_text("/mnt/hidden") == "below"


def test_mount_requires_root(vfs, sc):
    sc.mkdir("/mnt")
    user = Syscalls(vfs, cred=Credentials(uid=1000, gid=1000))
    with pytest.raises(NotPermitted):
        user.mount("/mnt", MemFs())


def test_double_mount_same_point_rejected(sc):
    sc.mkdir("/mnt")
    sc.mount("/mnt", MemFs())
    with pytest.raises(DeviceBusy):
        sc.mount("/mnt", MemFs())


def test_umount_not_mounted_rejected(sc):
    sc.mkdir("/plain")
    with pytest.raises(InvalidArgument):
        sc.umount("/plain")


def test_rmdir_mountpoint_rejected(sc):
    sc.mkdir("/mnt")
    sc.mount("/mnt", MemFs())
    with pytest.raises(DeviceBusy):
        sc.rmdir("/mnt")


def test_dotdot_crosses_mount_back(sc):
    sc.mkdir("/mnt")
    sc.write_text("/marker", "root fs")
    sc.mount("/mnt", MemFs())
    assert sc.read_text("/mnt/../marker") == "root fs"


def test_bind_mount_aliases_subtree(sc):
    sc.makedirs("/data/deep")
    sc.write_text("/data/deep/f", "x")
    sc.mkdir("/alias")
    sc.bind_mount("/data/deep", "/alias")
    assert sc.read_text("/alias/f") == "x"
    sc.write_text("/alias/g", "via alias")
    assert sc.read_text("/data/deep/g") == "via alias"


def test_namespace_clone_sees_existing_mounts(vfs, sc):
    sc.mkdir("/mnt")
    sc.mount("/mnt", MemFs())
    sc.write_text("/mnt/f", "x")
    clone = sc.ns.clone()
    proc = Syscalls(vfs, ns=clone)
    assert proc.read_text("/mnt/f") == "x"


def test_namespace_mounts_are_private_after_clone(vfs, sc):
    sc.mkdir("/mnt")
    clone = sc.ns.clone()
    proc = Syscalls(vfs, ns=clone)
    proc.mount("/mnt", MemFs())
    proc.write_text("/mnt/private", "ns-only")
    # the original namespace never sees the clone's mount
    assert not sc.exists("/mnt/private")


def test_pivoted_namespace_restricts_root(vfs, sc):
    sc.makedirs("/jail/inside")
    sc.write_text("/jail/inside/f", "jailed")
    sc.write_text("/secret", "outside")
    from repro.vfs.inode import require_dir

    jail_dir = require_dir(vfs.resolve(sc.ns, sc.cred, "/jail"))
    ns = sc.ns.pivoted(jail_dir)
    proc = Syscalls(vfs, ns=ns)
    assert proc.read_text("/inside/f") == "jailed"
    with pytest.raises(FileNotFound):
        proc.read_text("/secret")
    # dot-dot cannot climb out of the pivoted root
    assert proc.listdir("/..") == proc.listdir("/")


def test_mount_inside_namespace_only(vfs, sc):
    sc.mkdir("/shared")
    private_ns = sc.ns.clone(name="priv")
    proc = Syscalls(vfs, ns=private_ns)
    proc.mount("/shared", MemFs())
    proc.write_text("/shared/f", "private")
    assert sc.listdir("/shared") == []


def test_umount_requires_root(vfs, sc):
    sc.mkdir("/mnt")
    sc.mount("/mnt", MemFs())
    user = Syscalls(vfs, cred=Credentials(uid=1000, gid=1000))
    with pytest.raises(NotPermitted):
        user.umount("/mnt")


def test_mounts_listing(sc):
    sc.mkdir("/a")
    sc.mkdir("/b")
    sc.mount("/a", MemFs(), source="fs-a")
    sc.mount("/b", MemFs(), source="fs-b")
    sources = sorted(entry.source for entry in sc.ns.mounts())
    assert sources == ["fs-a", "fs-b"]
