"""POSIX ACLs and extended attributes (paper section 5.1)."""

import pytest

from repro.vfs import (
    Acl,
    AclEntry,
    AclTag,
    Credentials,
    InvalidArgument,
    NoData,
    PermissionDenied,
    Syscalls,
)

ALICE = Credentials(uid=1000, gid=1000)
BOB = Credentials(uid=1001, gid=1001)
CHARLIE = Credentials(uid=1002, gid=1002)


def test_acl_from_mode_matches_mode_bits():
    acl = Acl.from_mode(0o640)
    assert acl.check(ALICE, 1000, 1000, 4)
    assert acl.check(ALICE, 1000, 1000, 6)
    assert not acl.check(BOB, 1000, 1000, 4)


def test_named_user_entry_grants(vfs, sc):
    sc.write_text("/f", "x")
    sc.chown("/f", ALICE.uid, ALICE.gid)
    sc.chmod("/f", 0o600)
    bob = Syscalls(vfs, cred=BOB)
    with pytest.raises(PermissionDenied):
        bob.read_text("/f")
    acl = Acl(
        entries=(
            AclEntry(AclTag.USER_OBJ, 6),
            AclEntry(AclTag.USER, 4, qualifier=BOB.uid),
            AclEntry(AclTag.GROUP_OBJ, 0),
            AclEntry(AclTag.OTHER, 0),
        )
    )
    sc.set_acl("/f", acl)
    assert bob.read_text("/f") == "x"
    charlie = Syscalls(vfs, cred=CHARLIE)
    with pytest.raises(PermissionDenied):
        charlie.read_text("/f")


def test_mask_caps_named_entries():
    acl = Acl(
        entries=(
            AclEntry(AclTag.USER_OBJ, 7),
            AclEntry(AclTag.USER, 7, qualifier=BOB.uid),
            AclEntry(AclTag.GROUP_OBJ, 0),
            AclEntry(AclTag.MASK, 4),
            AclEntry(AclTag.OTHER, 0),
        )
    )
    assert acl.check(BOB, ALICE.uid, ALICE.gid, 4)
    assert not acl.check(BOB, ALICE.uid, ALICE.gid, 2)


def test_mask_does_not_cap_owner():
    acl = Acl(
        entries=(
            AclEntry(AclTag.USER_OBJ, 7),
            AclEntry(AclTag.MASK, 0),
            AclEntry(AclTag.OTHER, 0),
        )
    )
    assert acl.check(ALICE, ALICE.uid, ALICE.gid, 7)


def test_group_entries_any_match_grants():
    member = Credentials(uid=50, gid=10, groups=frozenset({20}))
    acl = Acl(
        entries=(
            AclEntry(AclTag.USER_OBJ, 7),
            AclEntry(AclTag.GROUP, 0, qualifier=10),
            AclEntry(AclTag.GROUP, 4, qualifier=20),
            AclEntry(AclTag.OTHER, 0),
        )
    )
    assert acl.check(member, 0, 10, 4)


def test_group_match_blocks_other_fallback():
    member = Credentials(uid=50, gid=10)
    acl = Acl(
        entries=(
            AclEntry(AclTag.USER_OBJ, 7),
            AclEntry(AclTag.GROUP_OBJ, 0),
            AclEntry(AclTag.OTHER, 7),
        )
    )
    # gid matches the owning group, which denies; "other" must not rescue.
    assert not acl.check(member, 0, 10, 4)


def test_root_always_passes_acl():
    acl = Acl(entries=(AclEntry(AclTag.USER_OBJ, 0), AclEntry(AclTag.OTHER, 0)))
    assert acl.check(Credentials(uid=0, gid=0), 1, 1, 7)


def test_acl_text_roundtrip():
    acl = Acl(
        entries=(
            AclEntry(AclTag.USER_OBJ, 7),
            AclEntry(AclTag.USER, 5, qualifier=1001),
            AclEntry(AclTag.GROUP_OBJ, 4),
            AclEntry(AclTag.MASK, 5),
            AclEntry(AclTag.OTHER, 0),
        )
    )
    assert Acl.from_text(acl.to_text()) == acl


def test_acl_entry_validation():
    with pytest.raises(InvalidArgument):
        AclEntry(AclTag.USER, 4)  # missing qualifier
    with pytest.raises(InvalidArgument):
        AclEntry(AclTag.OTHER, 4, qualifier=5)  # spurious qualifier
    with pytest.raises(InvalidArgument):
        AclEntry(AclTag.OTHER, 9)  # bad perms


def test_setfacl_requires_ownership(vfs, sc):
    sc.write_text("/f", "x")
    bob = Syscalls(vfs, cred=BOB)
    from repro.vfs import NotPermitted

    with pytest.raises(NotPermitted):
        bob.set_acl("/f", Acl.from_mode(0o777))


# -- xattrs ---------------------------------------------------------------------------


def test_xattr_set_get_list_remove(sc):
    sc.write_text("/f", "x")
    sc.setxattr("/f", "user.consistency", b"strict")
    sc.setxattr("/f", "user.owner-team", b"neteng")
    assert sc.getxattr("/f", "user.consistency") == b"strict"
    assert sc.listxattr("/f") == ["user.consistency", "user.owner-team"]
    sc.removexattr("/f", "user.consistency")
    assert sc.listxattr("/f") == ["user.owner-team"]


def test_getxattr_missing_raises_nodata(sc):
    sc.write_text("/f", "x")
    with pytest.raises(NoData):
        sc.getxattr("/f", "user.absent")


def test_removexattr_missing_raises_nodata(sc):
    sc.write_text("/f", "x")
    with pytest.raises(NoData):
        sc.removexattr("/f", "user.absent")


def test_xattr_needs_write_access(vfs, sc):
    sc.write_text("/f", "x")
    sc.chmod("/f", 0o644)
    bob = Syscalls(vfs, cred=BOB)
    with pytest.raises(PermissionDenied):
        bob.setxattr("/f", "user.sneak", b"1")
    assert bob.listxattr("/f") == []


def test_xattr_on_directories(sc):
    sc.mkdir("/d")
    sc.setxattr("/d", "user.view", b"gold")
    assert sc.getxattr("/d", "user.view") == b"gold"
