"""Path resolution: symlinks, dot-dot, loops, lexical utilities."""

import pytest

from repro.vfs import FileNotFound, InvalidArgument, TooManyLinks
from repro.vfs.path import basename, dirname, is_relative_to, join, normalize, split_path


def test_split_path_rejects_relative():
    with pytest.raises(InvalidArgument):
        split_path("relative/path")


def test_split_path_collapses_slashes():
    assert split_path("//a///b/./c") == ["a", "b", "c"]


def test_normalize_dotdot():
    assert normalize("/a/b/../c") == "/a/c"
    assert normalize("/../..") == "/"


def test_join_and_parts():
    assert join("/a", "b", "c") == "/a/b/c"
    assert dirname("/a/b/c") == "/a/b"
    assert basename("/a/b/c") == "c"
    assert dirname("/") == "/"


def test_is_relative_to():
    assert is_relative_to("/net/switches/sw1", "/net")
    assert not is_relative_to("/network", "/net")


def test_symlink_to_file(sc):
    sc.write_text("/target", "data")
    sc.symlink("/target", "/link")
    assert sc.read_text("/link") == "data"
    assert sc.readlink("/link") == "/target"


def test_symlink_to_directory(sc):
    sc.makedirs("/dir/sub")
    sc.symlink("/dir", "/dlink")
    assert sc.listdir("/dlink") == ["sub"]
    sc.write_text("/dlink/sub/f", "via link")
    assert sc.read_text("/dir/sub/f") == "via link"


def test_relative_symlink(sc):
    sc.makedirs("/a/b")
    sc.write_text("/a/file", "rel")
    sc.symlink("../file", "/a/b/link")
    assert sc.read_text("/a/b/link") == "rel"


def test_lstat_vs_stat(sc):
    sc.write_text("/t", "x")
    sc.symlink("/t", "/l")
    assert sc.lstat("/l").is_symlink
    assert not sc.stat("/l").is_symlink


def test_dangling_symlink(sc):
    sc.symlink("/nowhere", "/l")
    with pytest.raises(FileNotFound):
        sc.read_text("/l")
    assert sc.lstat("/l").is_symlink


def test_symlink_loop_detected(sc):
    sc.symlink("/b", "/a")
    sc.symlink("/a", "/b")
    with pytest.raises(TooManyLinks):
        sc.read_text("/a")


def test_self_symlink_loop(sc):
    sc.symlink("/self", "/self")
    with pytest.raises(TooManyLinks):
        sc.stat("/self")


def test_chained_symlinks_within_budget(sc):
    sc.write_text("/real", "deep")
    previous = "/real"
    for index in range(10):
        link = f"/link{index}"
        sc.symlink(previous, link)
        previous = link
    assert sc.read_text(previous) == "deep"


def test_dotdot_walks_up(sc):
    sc.makedirs("/a/b/c")
    sc.write_text("/a/x", "up")
    assert sc.read_text("/a/b/c/../../x") == "up"


def test_dotdot_at_root_stays_at_root(sc):
    sc.mkdir("/a")
    assert sc.listdir("/../../..") == ["a"]


def test_dotdot_through_symlink_uses_link_target_parent(sc):
    # /link -> /a/b ; /link/.. resolves to /a (stack-based, like the kernel)
    sc.makedirs("/a/b")
    sc.write_text("/a/marker", "here")
    sc.symlink("/a/b", "/link")
    assert sc.read_text("/link/../marker") == "here"


def test_symlink_at_existing_path_fails(sc):
    sc.write_text("/f", "x")
    with pytest.raises(Exception):
        sc.symlink("/elsewhere", "/f")


def test_readlink_on_regular_file(sc):
    sc.write_text("/f", "x")
    with pytest.raises(InvalidArgument):
        sc.readlink("/f")


def test_empty_symlink_target_rejected(sc):
    with pytest.raises(InvalidArgument):
        sc.symlink("", "/l")
