"""Positional I/O (pread/pwrite) must honor the same gates as read/write."""

import pytest

from repro.vfs import BadFileDescriptor, FanMask, NotPermitted, O_RDONLY, O_RDWR


def _inode(sc, path):
    return sc.vfs.resolve(sc.ns, sc.cred, path)


def test_pread_matches_read_content(sc):
    sc.write_text("/f", "0123456789")
    fd = sc.open("/f", O_RDONLY)
    assert sc.pread(fd, 4, 3) == b"3456"
    # pread does not move the shared offset
    assert sc.read(fd, 2) == b"01"
    sc.close(fd)


def test_pread_respects_fanotify_access_perm(sc):
    sc.write_text("/f", "secret")
    fd = sc.open("/f", O_RDONLY)  # opened before the mark
    group = sc.vfs.fanotify.group(lambda event: False)
    group.mark(_inode(sc, "/f"), FanMask.FAN_ACCESS_PERM)
    with pytest.raises(NotPermitted):
        sc.pread(fd, 3, 0)
    group.close()
    assert sc.pread(fd, 3, 0) == b"sec"  # gate lifted with the group
    sc.close(fd)


def test_pread_and_read_gated_identically(sc):
    """A FAN_ACCESS_PERM listener sees every byte access, positional or not."""
    sc.write_text("/f", "data")
    fd = sc.open("/f", O_RDONLY)
    group = sc.vfs.fanotify.group(lambda event: True)
    group.mark(_inode(sc, "/f"), FanMask.FAN_ACCESS_PERM)
    sc.read(fd, 1)
    sc.pread(fd, 1, 2)
    assert group.events_seen == 2
    group.close()
    sc.close(fd)


def test_pwrite_rejected_on_readonly_descriptor(sc):
    sc.write_text("/f", "data")
    fd = sc.open("/f", O_RDONLY)
    with pytest.raises(BadFileDescriptor):
        sc.pwrite(fd, b"x", 0)  # EBADF, exactly as write() reports it
    sc.close(fd)
    assert sc.read_text("/f") == "data"


def test_pwrite_at_offset(sc):
    sc.write_text("/f", "aaaaaa")
    fd = sc.open("/f", O_RDWR)
    sc.pwrite(fd, b"ZZ", 2)
    sc.close(fd)
    assert sc.read_text("/f") == "aaZZaa"
