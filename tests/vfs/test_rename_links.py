"""rename(2) and hard links."""

import pytest

from repro.vfs import (
    CrossDevice,
    DirectoryNotEmpty,
    FileExists,
    InvalidArgument,
    IsADirectory,
    MemFs,
    NotADirectory,
    NotPermitted,
)


def test_rename_file_same_dir(sc):
    sc.write_text("/a", "x")
    sc.rename("/a", "/b")
    assert not sc.exists("/a")
    assert sc.read_text("/b") == "x"


def test_rename_preserves_inode(sc):
    sc.write_text("/a", "x")
    ino = sc.stat("/a").ino
    sc.rename("/a", "/b")
    assert sc.stat("/b").ino == ino


def test_rename_into_other_dir(sc):
    sc.mkdir("/d")
    sc.write_text("/f", "x")
    sc.rename("/f", "/d/f")
    assert sc.read_text("/d/f") == "x"


def test_rename_replaces_existing_file(sc):
    sc.write_text("/a", "new")
    sc.write_text("/b", "old")
    sc.rename("/a", "/b")
    assert sc.read_text("/b") == "new"


def test_rename_dir_over_empty_dir(sc):
    sc.mkdir("/src")
    sc.write_text("/src/f", "x")
    sc.mkdir("/dst")
    sc.rename("/src", "/dst")
    assert sc.read_text("/dst/f") == "x"


def test_rename_dir_over_nonempty_dir_fails(sc):
    sc.mkdir("/src")
    sc.mkdir("/dst")
    sc.write_text("/dst/keep", "x")
    with pytest.raises(DirectoryNotEmpty):
        sc.rename("/src", "/dst")


def test_rename_file_over_dir_fails(sc):
    sc.write_text("/f", "x")
    sc.mkdir("/d")
    with pytest.raises(IsADirectory):
        sc.rename("/f", "/d")


def test_rename_dir_over_file_fails(sc):
    sc.mkdir("/d")
    sc.write_text("/f", "x")
    with pytest.raises(NotADirectory):
        sc.rename("/d", "/f")


def test_rename_into_own_subtree_fails(sc):
    sc.makedirs("/d/sub")
    with pytest.raises(InvalidArgument):
        sc.rename("/d", "/d/sub/moved")


def test_rename_to_self_is_noop(sc):
    sc.write_text("/f", "x")
    sc.rename("/f", "/f")
    assert sc.read_text("/f") == "x"


def test_rename_across_filesystems_fails(sc):
    sc.mkdir("/other")
    sc.mount("/other", MemFs(), source="tmpfs2")
    sc.write_text("/f", "x")
    with pytest.raises(CrossDevice):
        sc.rename("/f", "/other/f")


def test_rename_missing_source(sc):
    from repro.vfs import FileNotFound

    with pytest.raises(FileNotFound):
        sc.rename("/missing", "/anywhere")


def test_hard_link_shares_content(sc):
    sc.write_text("/a", "shared")
    sc.link("/a", "/b")
    sc.write_text("/a", "updated")
    assert sc.read_text("/b") == "updated"
    assert sc.stat("/a").ino == sc.stat("/b").ino


def test_hard_link_nlink_counting(sc):
    sc.write_text("/a", "x")
    assert sc.stat("/a").nlink == 1
    sc.link("/a", "/b")
    assert sc.stat("/a").nlink == 2
    sc.unlink("/a")
    assert sc.stat("/b").nlink == 1
    assert sc.read_text("/b") == "x"


def test_hard_link_to_directory_rejected(sc):
    sc.mkdir("/d")
    with pytest.raises(NotPermitted):
        sc.link("/d", "/d2")


def test_hard_link_existing_target_rejected(sc):
    sc.write_text("/a", "x")
    sc.write_text("/b", "y")
    with pytest.raises(FileExists):
        sc.link("/a", "/b")


def test_hard_link_across_filesystems_rejected(sc):
    sc.mkdir("/other")
    sc.mount("/other", MemFs())
    sc.write_text("/f", "x")
    with pytest.raises(CrossDevice):
        sc.link("/f", "/other/f")


def test_rename_directory_updates_paths(sc):
    sc.makedirs("/old/nested")
    sc.write_text("/old/nested/f", "deep")
    sc.rename("/old", "/new")
    assert sc.read_text("/new/nested/f") == "deep"
    assert not sc.exists("/old")
