"""Resolution edge cases: dot-dot physicality, stacked mounts, _abspath.

These pin the three resolution bugs fixed alongside the dentry cache:

* ``_abspath`` used to collapse ``..`` lexically, so a relative path from
  a symlinked cwd resolved against the *textual* parent instead of the
  physical one (and un-normalized spellings leaked through as distinct
  cache/meter keys).
* The walker crossed only one mount per component, so a mount stacked on
  top of another mount's root stayed invisible.
"""

import pytest

from repro.vfs import FileNotFound, MemFs


def test_relative_dotdot_from_symlinked_cwd_is_physical(sc):
    sc.makedirs("/a/b")
    fs2 = MemFs()
    sc.mount("/a/b", fs2)
    sc.mkdir("/a/b/d")
    sc.write_text("/a/b/marker", "inside the mount")
    sc.mkdir("/x")
    sc.symlink("/a/b/d", "/x/l")
    sc.chdir("/x/l")
    # Lexical resolution would look at /x/marker (and fail); the physical
    # parent of the cwd is the mounted /a/b.
    assert sc.read_text("../marker") == "inside the mount"
    with pytest.raises(FileNotFound):
        sc.read_text("/x/marker")


def test_stacked_mounts_cross_to_topmost(sc):
    sc.mkdir("/m")
    lower = MemFs()
    sc.mount("/m", lower)
    sc.write_text("/m/lower-file", "lower")
    upper = MemFs()
    # stack a second file system directly on the first one's root
    sc.ns.mount(lower.root, upper, source="upper")
    assert sc.listdir("/m") == []  # the upper (empty) fs now wins
    sc.write_text("/m/upper-file", "upper")
    assert sc.read_text("/m/upper-file") == "upper"
    sc.ns.umount(lower.root)
    assert sc.read_text("/m/lower-file") == "lower"


def test_abspath_normalizes_both_branches(sc):
    assert sc._abspath("/net//switches/./s1") == "/net/switches/s1"
    sc.mkdir("/wd")
    sc.chdir("/wd")
    assert sc._abspath("sub//x/.") == "/wd/sub/x"
    # '..' must survive for the physical walk, never collapse lexically
    assert sc._abspath("../etc") == "/wd/../etc"
    assert sc._abspath("/a/../b") == "/a/../b"


def test_equivalent_spellings_resolve_identically(sc):
    sc.makedirs("/net/switches")
    sc.write_text("/net/switches/s1", "cfg")
    plain = sc.stat("/net/switches/s1")
    messy = sc.stat("/net//switches/./s1")
    assert plain.ino == messy.ino and plain.dev == messy.dev


def test_dotdot_at_mountpoint_reaches_parent(sc):
    sc.makedirs("/srv/mnt")
    sc.write_text("/srv/sibling", "outside")
    sc.mount("/srv/mnt", MemFs())
    assert sc.read_text("/srv/mnt/../sibling") == "outside"
