"""fanotify permission events: blocking verdicts on opens and reads."""

import pytest

from repro.vfs import (
    Credentials,
    FanMask,
    InvalidArgument,
    NotPermitted,
    O_RDONLY,
    O_WRONLY,
    Syscalls,
)


def _inode(sc, path):
    return sc.vfs.resolve(sc.ns, sc.cred, path)


def test_open_perm_deny_blocks_open(sc):
    sc.write_text("/guarded", "x")
    group = sc.vfs.fanotify.group(lambda event: False)
    group.mark(_inode(sc, "/guarded"), FanMask.FAN_OPEN_PERM)
    with pytest.raises(NotPermitted):
        sc.open("/guarded", O_RDONLY)
    assert group.denials == 1
    group.close()


def test_open_perm_allow_passes(sc):
    sc.write_text("/guarded", "x")
    group = sc.vfs.fanotify.group(lambda event: True)
    group.mark(_inode(sc, "/guarded"), FanMask.FAN_OPEN_PERM)
    assert sc.read_text("/guarded") == "x"
    assert group.events_seen == 1
    group.close()


def test_write_perm_mask_ignores_readonly_opens(sc):
    sc.write_text("/config", "v1")
    group = sc.vfs.fanotify.group(lambda event: False)
    group.mark(_inode(sc, "/config"), FanMask.FAN_OPEN_WRITE_PERM)
    assert sc.read_text("/config") == "v1"  # reads untouched
    with pytest.raises(NotPermitted):
        sc.open("/config", O_WRONLY)
    group.close()


def test_subtree_mark_covers_descendants(sc):
    sc.makedirs("/zone/deep")
    sc.write_text("/zone/deep/f", "x")
    sc.write_text("/outside", "y")
    group = sc.vfs.fanotify.group(lambda event: False)
    group.mark(_inode(sc, "/zone"), FanMask.FAN_OPEN_PERM, subtree=True)
    with pytest.raises(NotPermitted):
        sc.read_text("/zone/deep/f")
    assert sc.read_text("/outside") == "y"
    group.close()


def test_access_perm_gates_reads_on_open_handles(sc):
    sc.write_text("/f", "secret")
    fd = sc.open("/f", O_RDONLY)  # opened before the mark
    group = sc.vfs.fanotify.group(lambda event: False)
    group.mark(_inode(sc, "/f"), FanMask.FAN_ACCESS_PERM)
    with pytest.raises(NotPermitted):
        sc.read(fd)
    group.close()
    sc.close(fd)


def test_verdict_sees_credentials(sc, vfs):
    sc.write_text("/f", "x")
    allowed_uids = {0, 100}
    group = sc.vfs.fanotify.group(lambda event: event.cred.uid in allowed_uids)
    group.mark(_inode(sc, "/f"), FanMask.FAN_OPEN_PERM)
    assert sc.read_text("/f") == "x"  # root
    user100 = Syscalls(vfs, cred=Credentials(uid=100, gid=100))
    assert user100.read_text("/f") == "x"
    user200 = Syscalls(vfs, cred=Credentials(uid=200, gid=200))
    with pytest.raises(NotPermitted):
        user200.read_text("/f")
    group.close()


def test_closed_group_stops_interfering(sc):
    sc.write_text("/f", "x")
    group = sc.vfs.fanotify.group(lambda event: False)
    group.mark(_inode(sc, "/f"), FanMask.FAN_OPEN_PERM)
    group.close()
    assert sc.read_text("/f") == "x"


def test_change_freeze_scenario(yanc_sc, yc):
    """The yanc use case: a guard process freezes flow writes fleet-wide,
    while reads (monitoring) continue."""
    yc.create_switch("sw1")
    yc.create_flow("sw1", "f", __import__("repro.dataplane", fromlist=["Match"]).Match(dl_vlan=1), [], priority=5, commit=False)
    flows_inode = yanc_sc.vfs.resolve(yanc_sc.ns, yanc_sc.cred, "/net/switches/sw1/flows")
    guard = yanc_sc.vfs.fanotify.group(lambda event: not event.writable)
    guard.mark(flows_inode, FanMask.FAN_OPEN_WRITE_PERM, subtree=True)
    with pytest.raises(NotPermitted):
        yc.commit_flow("sw1", "f")  # version write blocked
    assert yc.read_flow("sw1", "f").version == 0  # reads fine
    guard.close()
    yc.commit_flow("sw1", "f")  # freeze lifted
    assert yc.read_flow("sw1", "f").version == 1


def test_empty_mask_rejected(sc):
    sc.write_text("/f", "x")
    group = sc.vfs.fanotify.group(lambda event: True)
    with pytest.raises(InvalidArgument):
        group.mark(_inode(sc, "/f"), FanMask(0))
    group.close()
