"""Unix permissions, ownership, and sticky-bit semantics."""

import pytest

from repro.vfs import Credentials, NotPermitted, PermissionDenied, Syscalls

ALICE = Credentials(uid=1000, gid=1000)
BOB = Credentials(uid=1001, gid=1001)
GROUPIE = Credentials(uid=1002, gid=2000, groups=frozenset({1000}))


@pytest.fixture
def alice(vfs, sc):
    sc.mkdir("/home")
    sc.mkdir("/home/alice")
    sc.chown("/home/alice", ALICE.uid, ALICE.gid)
    return Syscalls(vfs, cred=ALICE)


@pytest.fixture
def bob(vfs, alice):
    return Syscalls(vfs, cred=BOB)


def test_owner_reads_and_writes(alice):
    alice.write_text("/home/alice/f", "mine")
    assert alice.read_text("/home/alice/f") == "mine"


def test_other_denied_write_0644(alice, bob):
    alice.write_text("/home/alice/f", "mine")
    with pytest.raises(PermissionDenied):
        bob.write_text("/home/alice/f", "theirs")


def test_other_can_read_0644(alice, bob):
    alice.write_text("/home/alice/f", "mine")
    assert bob.read_text("/home/alice/f") == "mine"


def test_mode_0600_blocks_other_read(alice, bob):
    alice.write_text("/home/alice/secret", "s")
    alice.chmod("/home/alice/secret", 0o600)
    with pytest.raises(PermissionDenied):
        bob.read_text("/home/alice/secret")


def test_group_bits_apply_to_group_members(alice, vfs):
    alice.write_text("/home/alice/shared", "g")
    alice.chmod("/home/alice/shared", 0o640)
    group_member = Syscalls(vfs, cred=GROUPIE)
    assert group_member.read_text("/home/alice/shared") == "g"
    stranger = Syscalls(vfs, cred=BOB)
    with pytest.raises(PermissionDenied):
        stranger.read_text("/home/alice/shared")


def test_exec_bit_required_to_traverse(alice, bob):
    alice.mkdir("/home/alice/private")
    alice.write_text("/home/alice/private/f", "x")
    alice.chmod("/home/alice/private", 0o600)  # no exec for anyone but traversal needs it
    with pytest.raises(PermissionDenied):
        bob.read_text("/home/alice/private/f")


def test_write_into_unwritable_dir_denied(alice, bob):
    with pytest.raises(PermissionDenied):
        bob.write_text("/home/alice/intruder", "x")


def test_unlink_needs_parent_write(alice, bob):
    alice.write_text("/home/alice/f", "x")
    with pytest.raises(PermissionDenied):
        bob.unlink("/home/alice/f")


def test_root_bypasses_everything(alice, sc):
    alice.write_text("/home/alice/secret", "s")
    alice.chmod("/home/alice/secret", 0o000)
    assert sc.read_text("/home/alice/secret") == "s"
    sc.write_text("/home/alice/secret", "root was here")


def test_chmod_requires_ownership(alice, bob):
    alice.write_text("/home/alice/f", "x")
    with pytest.raises(NotPermitted):
        bob.chmod("/home/alice/f", 0o777)


def test_chown_requires_root(alice):
    alice.write_text("/home/alice/f", "x")
    with pytest.raises(NotPermitted):
        alice.chown("/home/alice/f", 0, 0)


def test_owner_may_chgrp_to_own_group(vfs, sc):
    member = Credentials(uid=1000, gid=1000, groups=frozenset({3000}))
    sc.mkdir("/d")
    sc.chown("/d", 1000, 1000)
    proc = Syscalls(vfs, cred=member)
    proc.chown("/d", 1000, 3000)
    assert proc.stat("/d").gid == 3000


def test_created_files_get_creator_ownership(alice):
    alice.write_text("/home/alice/f", "x")
    st = alice.stat("/home/alice/f")
    assert (st.uid, st.gid) == (ALICE.uid, ALICE.gid)


def test_sticky_directory_protects_entries(vfs, sc):
    sc.mkdir("/tmp")
    sc.chmod("/tmp", 0o1777)
    alice = Syscalls(vfs, cred=ALICE)
    bob = Syscalls(vfs, cred=BOB)
    alice.write_text("/tmp/alice_file", "x")
    with pytest.raises(NotPermitted):
        bob.unlink("/tmp/alice_file")
    alice.unlink("/tmp/alice_file")  # the owner may


def test_readdir_needs_read_bit(alice, bob):
    alice.mkdir("/home/alice/d")
    alice.chmod("/home/alice/d", 0o711)
    alice.write_text("/home/alice/d/f", "x")
    with pytest.raises(PermissionDenied):
        bob.listdir("/home/alice/d")
    assert bob.read_text("/home/alice/d/f") == "x"  # exec-only traversal works
