"""Read-only file systems, name limits, and handle edge cases."""

import pytest

from repro.vfs import (
    InvalidArgument,
    MemFs,
    NameTooLong,
    O_CREAT,
    O_RDONLY,
    O_RDWR,
    O_WRONLY,
    ReadOnly,
)


@pytest.fixture
def ro(sc):
    """A read-only fs mounted at /ro, pre-populated before sealing."""
    fs = MemFs()
    sc.mkdir("/ro")
    sc.mount("/ro", fs)
    sc.write_text("/ro/existing", "frozen")
    fs.readonly = True
    return sc


def test_readonly_blocks_writes(ro):
    with pytest.raises(ReadOnly):
        ro.write_text("/ro/new", "x")
    with pytest.raises(ReadOnly):
        ro.write_text("/ro/existing", "y")


def test_readonly_blocks_mkdir_unlink(ro):
    with pytest.raises(ReadOnly):
        ro.mkdir("/ro/dir")
    with pytest.raises(ReadOnly):
        ro.unlink("/ro/existing")


def test_readonly_blocks_truncate(ro):
    with pytest.raises(ReadOnly):
        ro.truncate("/ro/existing", 1)


def test_readonly_allows_reads(ro):
    assert ro.read_text("/ro/existing") == "frozen"
    assert ro.listdir("/ro") == ["existing"]


def test_readonly_open_for_write_rejected(ro):
    with pytest.raises(ReadOnly):
        ro.open("/ro/existing", O_WRONLY)
    fd = ro.open("/ro/existing", O_RDONLY)
    ro.close(fd)


def test_name_too_long(sc):
    with pytest.raises(NameTooLong):
        sc.mkdir("/" + "x" * 300)


def test_name_with_slash_or_nul_rejected(sc):
    with pytest.raises(InvalidArgument):
        sc.vfs.mkdir(sc.ns, sc.cred, "/a\x00b")


def test_dot_names_rejected_for_creation(sc):
    with pytest.raises(InvalidArgument):
        sc.mkdir("/.")
    from repro.vfs import IsADirectory

    with pytest.raises(IsADirectory):
        sc.write_text("/..", "x")  # resolves to the root directory


def test_operations_on_root_rejected(sc):
    with pytest.raises(InvalidArgument):
        sc.rmdir("/")
    with pytest.raises(InvalidArgument):
        sc.unlink("/")


def test_negative_read_write_params(sc):
    sc.write_text("/f", "abc")
    fd = sc.open("/f", O_RDWR)
    with pytest.raises(InvalidArgument):
        sc.lseek(fd, -1)
    with pytest.raises(InvalidArgument):
        sc.pread(fd, -1, 0)
    sc.close(fd)


def test_read_at_eof_returns_empty(sc):
    sc.write_text("/f", "abc")
    fd = sc.open("/f", O_RDONLY)
    sc.read(fd)
    assert sc.read(fd) == b""
    sc.close(fd)


def test_pread_beyond_eof(sc):
    sc.write_text("/f", "abc")
    fd = sc.open("/f", O_RDONLY)
    assert sc.pread(fd, 10, 100) == b""
    sc.close(fd)


def test_open_creat_through_dangling_symlink_errors(sc):
    sc.symlink("/nowhere", "/link")
    from repro.vfs import FileExists

    with pytest.raises(FileExists):
        sc.open("/link", O_WRONLY | O_CREAT)


def test_two_handles_share_inode_state(sc):
    sc.write_text("/f", "start")
    fd1 = sc.open("/f", O_RDWR)
    fd2 = sc.open("/f", O_RDONLY)
    sc.write(fd1, b"WRITE")
    assert sc.read(fd2) == b"WRITE"
    sc.close(fd1)
    sc.close(fd2)


def test_makedirs_idempotent(sc):
    sc.makedirs("/a/b/c")
    sc.makedirs("/a/b/c")  # no error
    assert sc.exists("/a/b/c")


def test_spawned_process_has_independent_fds(vfs, sc):
    sc.write_text("/f", "x")
    fd = sc.open("/f", O_RDONLY)
    child = sc.spawn()
    from repro.vfs import BadFileDescriptor

    with pytest.raises(BadFileDescriptor):
        child.read(fd)
    sc.close(fd)


def test_meter_inherited_model_on_spawn(sc):
    child = sc.spawn()
    assert child.meter is not sc.meter
    assert child.meter.model is sc.meter.model
