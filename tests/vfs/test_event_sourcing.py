"""Notify completeness: the tree can be reconstructed from events alone.

If inotify is to be the *only* coupling between yanc and its applications
(the paper's design), the event stream must be complete: a mirror process
that watches every directory and applies create/delete/move events to a
shadow model must end up with exactly the real tree structure — no silent
mutations.  This is the strongest form of the §5.2 "comes free" property,
checked here both on handwritten scenarios and under hypothesis-driven
random operation sequences.
"""

from __future__ import annotations

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.vfs import (
    EventMask,
    FsError,
    Inotify,
    Syscalls,
    VirtualFileSystem,
)

_WATCH_MASK = (
    EventMask.IN_CREATE
    | EventMask.IN_DELETE
    | EventMask.IN_MOVED_FROM
    | EventMask.IN_MOVED_TO
)


class TreeMirror:
    """Reconstructs directory structure purely from inotify events."""

    def __init__(self, sc: Syscalls, root: str = "/") -> None:
        self.sc = sc
        self.ino: Inotify = sc.inotify_init()
        self.root = root.rstrip("/") or "/"
        #: path -> "dir" | "file" | "symlink"
        self.shadow: dict[str, str] = {}
        self._wd_to_path: dict[int, str] = {}
        self._watch(self.root)
        self._scan(self.root)

    def _watch(self, path: str) -> None:
        wd = self.sc.inotify_add_watch(self.ino, path, _WATCH_MASK)
        self._wd_to_path[wd] = path

    def _scan(self, path: str) -> None:
        for name in self.sc.listdir(path):
            child = f"{path.rstrip('/')}/{name}"
            stat = self.sc.lstat(child)
            kind = "dir" if stat.is_dir else ("symlink" if stat.is_symlink else "file")
            self.shadow[child] = kind
            if kind == "dir":
                self._watch(child)
                self._scan(child)

    def pump(self) -> None:
        """Apply all pending events to the shadow."""
        pending_moves: dict[int, str] = {}
        for event in self.ino.read():
            base = self._wd_to_path.get(event.wd)
            if base is None or event.name is None:
                continue
            path = f"{base.rstrip('/')}/{event.name}"
            if event.mask & EventMask.IN_CREATE:
                self._add(path, event.is_dir)
            elif event.mask & EventMask.IN_DELETE:
                self._remove(path)
            elif event.mask & EventMask.IN_MOVED_FROM:
                pending_moves[event.cookie] = path
            elif event.mask & EventMask.IN_MOVED_TO:
                source = pending_moves.pop(event.cookie, None)
                if source is not None:
                    self._move(source, path)
                else:
                    self._add(path, event.is_dir)
        # moves whose IN_MOVED_TO landed outside our watch scope
        for source in pending_moves.values():
            self._remove(source)

    def _add(self, path: str, is_dir: bool) -> None:
        if is_dir:
            self.shadow[path] = "dir"
            try:
                self._watch(path)
                self._scan(path)  # semantic mkdir may have auto-populated it
            except FsError:
                pass
        else:
            try:
                kind = "symlink" if self.sc.lstat(path).is_symlink else "file"
            except FsError:
                kind = "file"
            self.shadow[path] = kind

    def _remove(self, path: str) -> None:
        prefix = path + "/"
        for known in list(self.shadow):
            if known == path or known.startswith(prefix):
                del self.shadow[known]

    def _move(self, old: str, new: str) -> None:
        prefix = old + "/"
        renames = {}
        for known, kind in list(self.shadow.items()):
            if known == old or known.startswith(prefix):
                renames[new + known[len(old) :]] = kind
                del self.shadow[known]
        self.shadow.update(renames)
        # Watches follow inodes, so our path labels for watch descriptors
        # inside the moved subtree are now stale — relabel them (exactly
        # what real inotify consumers must do after IN_MOVED_*).
        for wd, path in list(self._wd_to_path.items()):
            if path == old or path.startswith(prefix):
                self._wd_to_path[wd] = new + path[len(old) :]

    def real_tree(self) -> dict[str, str]:
        """Ground truth, read directly."""
        out: dict[str, str] = {}

        def scan(path: str) -> None:
            for name in self.sc.listdir(path):
                child = f"{path.rstrip('/')}/{name}"
                stat = self.sc.lstat(child)
                kind = "dir" if stat.is_dir else ("symlink" if stat.is_symlink else "file")
                out[child] = kind
                if kind == "dir":
                    scan(child)

        scan(self.root)
        return out


@pytest.fixture
def mirror_rig():
    vfs = VirtualFileSystem()
    sc = Syscalls(vfs)
    return sc, TreeMirror(sc)


def test_mirror_tracks_creates(mirror_rig):
    sc, mirror = mirror_rig
    sc.makedirs("/a/b")
    sc.write_text("/a/b/f", "x")
    sc.symlink("/a", "/lnk")
    mirror.pump()
    assert mirror.shadow == mirror.real_tree()
    assert mirror.shadow["/a/b/f"] == "file"
    assert mirror.shadow["/lnk"] == "symlink"


def test_mirror_tracks_deletes(mirror_rig):
    sc, mirror = mirror_rig
    sc.makedirs("/a/b")
    sc.write_text("/a/f", "x")
    mirror.pump()
    sc.unlink("/a/f")
    sc.rmdir("/a/b")
    mirror.pump()
    assert mirror.shadow == mirror.real_tree() == {"/a": "dir"}


def test_mirror_tracks_renames_with_subtrees(mirror_rig):
    sc, mirror = mirror_rig
    sc.makedirs("/old/deep/deeper")
    sc.write_text("/old/deep/file", "x")
    mirror.pump()
    sc.rename("/old", "/new")
    mirror.pump()
    assert mirror.shadow == mirror.real_tree()
    assert "/new/deep/file" in mirror.shadow


def test_mirror_tracks_semantic_mkdir():
    """yancfs auto-population is fully visible through events."""
    from repro.yancfs import mount_yancfs

    vfs = VirtualFileSystem()
    sc = Syscalls(vfs)
    mount_yancfs(sc)
    mirror = TreeMirror(sc, "/net")
    sc.mkdir("/net/switches/sw1")
    mirror.pump()
    sc.mkdir("/net/switches/sw1/flows/f1")
    mirror.pump()
    assert mirror.shadow == mirror.real_tree()
    assert mirror.shadow["/net/switches/sw1/flows/f1/version"] == "file"


class MirrorMachine(RuleBasedStateMachine):
    """Random op sequences; the mirror must never diverge."""

    def __init__(self) -> None:
        super().__init__()
        self.sc = Syscalls(VirtualFileSystem())
        self.mirror = TreeMirror(self.sc)

    def _dirs(self) -> list[str]:
        dirs = ["/"] + [p for p, k in self.mirror.real_tree().items() if k == "dir"]
        return sorted(dirs)

    @rule(data=st.data(), name=st.sampled_from(["a", "b", "c"]))
    def mkdir(self, data, name):
        parent = data.draw(st.sampled_from(self._dirs()))
        try:
            self.sc.mkdir(f"{parent.rstrip('/')}/{name}")
        except FsError:
            pass

    @rule(data=st.data(), name=st.sampled_from(["f", "g"]))
    def write(self, data, name):
        parent = data.draw(st.sampled_from(self._dirs()))
        try:
            self.sc.write_text(f"{parent.rstrip('/')}/{name}", "content")
        except FsError:
            pass

    @rule(data=st.data())
    def remove_something(self, data):
        tree = self.mirror.real_tree()
        if not tree:
            return
        path = data.draw(st.sampled_from(sorted(tree)))
        try:
            if tree[path] == "dir":
                self.sc.rmdir(path)
            else:
                self.sc.unlink(path)
        except FsError:
            pass

    @rule(data=st.data(), new_name=st.sampled_from(["moved", "renamed"]))
    def rename_something(self, data, new_name):
        tree = self.mirror.real_tree()
        if not tree:
            return
        source = data.draw(st.sampled_from(sorted(tree)))
        target_parent = data.draw(st.sampled_from(self._dirs()))
        try:
            self.sc.rename(source, f"{target_parent.rstrip('/')}/{new_name}")
        except FsError:
            pass

    @invariant()
    def mirror_matches_reality(self):
        self.mirror.pump()
        assert self.mirror.shadow == self.mirror.real_tree()


MirrorTest = MirrorMachine.TestCase
MirrorTest.settings = settings(max_examples=30, stateful_step_count=25, deadline=None)
