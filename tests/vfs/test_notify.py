"""inotify-style monitoring (paper section 5.2)."""

import pytest

from repro.vfs import IN_ALL_EVENTS, EventMask, InvalidArgument


def _events(sc, ino):
    return sc.inotify_read(ino)


def test_create_event_on_directory_watch(sc):
    ino = sc.inotify_init()
    sc.mkdir("/d")
    sc.inotify_add_watch(ino, "/d", IN_ALL_EVENTS)
    sc.write_text("/d/f", "x")
    masks = [(e.mask & ~EventMask.IN_ISDIR, e.name) for e in _events(sc, ino)]
    assert (EventMask.IN_CREATE, "f") in masks
    assert (EventMask.IN_CLOSE_WRITE, "f") in masks


def test_mkdir_event_carries_isdir(sc):
    ino = sc.inotify_init()
    sc.mkdir("/d")
    sc.inotify_add_watch(ino, "/d", EventMask.IN_CREATE)
    sc.mkdir("/d/sub")
    events = _events(sc, ino)
    assert len(events) == 1
    assert events[0].is_dir
    assert events[0].name == "sub"


def test_modify_event_on_file_watch(sc):
    sc.write_text("/f", "orig")
    ino = sc.inotify_init()
    sc.inotify_add_watch(ino, "/f", EventMask.IN_MODIFY)
    sc.write_text("/f", "changed")
    assert any(e.mask & EventMask.IN_MODIFY for e in _events(sc, ino))


def test_mask_filters_events(sc):
    sc.mkdir("/d")
    ino = sc.inotify_init()
    sc.inotify_add_watch(ino, "/d", EventMask.IN_DELETE)
    sc.write_text("/d/f", "x")  # creates: filtered out
    assert _events(sc, ino) == []
    sc.unlink("/d/f")
    events = _events(sc, ino)
    assert len(events) == 1
    assert events[0].mask & EventMask.IN_DELETE


def test_delete_self_on_watched_file(sc):
    sc.write_text("/f", "x")
    ino = sc.inotify_init()
    sc.inotify_add_watch(ino, "/f", EventMask.IN_DELETE_SELF)
    sc.unlink("/f")
    events = _events(sc, ino)
    assert any(e.mask & EventMask.IN_DELETE_SELF and e.name is None for e in events)


def test_rename_pairs_moved_from_to_with_cookie(sc):
    sc.mkdir("/d")
    sc.write_text("/d/a", "x")
    ino = sc.inotify_init()
    sc.inotify_add_watch(ino, "/d", IN_ALL_EVENTS)
    sc.rename("/d/a", "/d/b")
    events = _events(sc, ino)
    moved_from = [e for e in events if e.mask & EventMask.IN_MOVED_FROM]
    moved_to = [e for e in events if e.mask & EventMask.IN_MOVED_TO]
    assert moved_from[0].name == "a"
    assert moved_to[0].name == "b"
    assert moved_from[0].cookie == moved_to[0].cookie != 0


def test_attrib_event_on_chmod(sc):
    sc.write_text("/f", "x")
    ino = sc.inotify_init()
    sc.inotify_add_watch(ino, "/f", EventMask.IN_ATTRIB)
    sc.chmod("/f", 0o600)
    assert any(e.mask & EventMask.IN_ATTRIB for e in _events(sc, ino))


def test_access_event_on_read(sc):
    sc.write_text("/f", "x")
    ino = sc.inotify_init()
    sc.inotify_add_watch(ino, "/f", EventMask.IN_ACCESS)
    sc.read_text("/f")
    assert any(e.mask & EventMask.IN_ACCESS for e in _events(sc, ino))


def test_two_instances_both_receive(sc):
    sc.mkdir("/d")
    first = sc.inotify_init()
    second = sc.inotify_init()
    sc.inotify_add_watch(first, "/d", EventMask.IN_CREATE)
    sc.inotify_add_watch(second, "/d", EventMask.IN_CREATE)
    sc.mkdir("/d/x")
    assert len(_events(sc, first)) == 1
    assert len(_events(sc, second)) == 1


def test_rm_watch_stops_delivery(sc):
    sc.mkdir("/d")
    ino = sc.inotify_init()
    wd = sc.inotify_add_watch(ino, "/d", EventMask.IN_CREATE)
    ino.rm_watch(wd)
    sc.mkdir("/d/x")
    assert _events(sc, ino) == []


def test_rm_unknown_watch_rejected(sc):
    ino = sc.inotify_init()
    with pytest.raises(InvalidArgument):
        ino.rm_watch(42)


def test_rewatch_same_inode_returns_same_wd(sc):
    sc.mkdir("/d")
    ino = sc.inotify_init()
    wd1 = sc.inotify_add_watch(ino, "/d", EventMask.IN_CREATE)
    wd2 = sc.inotify_add_watch(ino, "/d", EventMask.IN_DELETE)
    assert wd1 == wd2
    sc.mkdir("/d/x")
    assert _events(sc, ino) == []  # mask was replaced


def test_wakeup_fires_once_per_batch(sc):
    sc.mkdir("/d")
    ino = sc.inotify_init()
    wakeups = []
    ino.wakeup = lambda: wakeups.append(1)
    sc.inotify_add_watch(ino, "/d", EventMask.IN_CREATE)
    sc.mkdir("/d/a")
    sc.mkdir("/d/b")
    assert wakeups == [1]  # queue went non-empty exactly once
    ino.read()
    sc.mkdir("/d/c")
    assert wakeups == [1, 1]


def test_close_drops_watches_and_queue(sc):
    sc.mkdir("/d")
    ino = sc.inotify_init()
    sc.inotify_add_watch(ino, "/d", EventMask.IN_CREATE)
    sc.mkdir("/d/a")
    ino.close()
    assert ino.read() == []
    sc.mkdir("/d/b")
    assert ino.read() == []


def test_empty_mask_rejected(sc):
    sc.mkdir("/d")
    ino = sc.inotify_init()
    with pytest.raises(InvalidArgument):
        sc.inotify_add_watch(ino, "/d", EventMask(0))


def test_events_free_for_semantic_population(yanc_sc):
    """The 'comes free' property: auto-populated children emit events."""
    ino = yanc_sc.inotify_init()
    yanc_sc.inotify_add_watch(ino, "/net/switches", EventMask.IN_CREATE)
    yanc_sc.mkdir("/net/switches/sw1")
    created = [e.name for e in yanc_sc.inotify_read(ino)]
    assert created == ["sw1"]
    # and inside the new switch, the auto-created children are watchable
    yanc_sc.inotify_add_watch(ino, "/net/switches/sw1/flows", EventMask.IN_CREATE)
    yanc_sc.mkdir("/net/switches/sw1/flows/f1")
    assert [e.name for e in yanc_sc.inotify_read(ino)] == ["f1"]


# -- coalescing and the bounded queue ----------------------------------------


def test_identical_consecutive_events_coalesce(sc):
    sc.write_text("/f", "v0")
    ino = sc.inotify_init()
    sc.inotify_add_watch(ino, "/f", EventMask.IN_MODIFY)
    for i in range(10):
        sc.write_text("/f", f"v{i}")
    events = _events(sc, ino)
    modifies = [e for e in events if e.mask & EventMask.IN_MODIFY and e.name is None]
    assert len(modifies) == 1  # ten identical IN_MODIFYs -> one record
    assert ino.coalesced >= 9


def test_distinct_events_are_not_coalesced(sc):
    sc.mkdir("/d")
    ino = sc.inotify_init()
    sc.inotify_add_watch(ino, "/d", EventMask.IN_CREATE)
    sc.write_text("/d/a", "x")
    sc.write_text("/d/b", "x")
    names = [e.name for e in _events(sc, ino) if e.mask & EventMask.IN_CREATE]
    assert names == ["a", "b"]
    assert ino.coalesced == 0


def test_queue_overflow_appends_single_marker(sc):
    sc.mkdir("/d")
    ino = sc.inotify_init(max_queued_events=4)
    sc.inotify_add_watch(ino, "/d", EventMask.IN_CREATE)
    for i in range(10):
        sc.write_text(f"/d/f{i}", "x")  # distinct names: no coalescing
    events = _events(sc, ino)
    assert len(events) == 5  # 4 real events + the overflow marker
    assert events[-1].mask == EventMask.IN_Q_OVERFLOW
    assert events[-1].wd == -1
    assert ino.overflows == 1
    assert ino.dropped == 10 - 4


def test_overflow_rearms_after_read(sc):
    sc.mkdir("/d")
    ino = sc.inotify_init(max_queued_events=2)
    sc.inotify_add_watch(ino, "/d", EventMask.IN_CREATE)
    for i in range(5):
        sc.write_text(f"/d/a{i}", "x")
    first = _events(sc, ino)
    assert first[-1].mask == EventMask.IN_Q_OVERFLOW
    for i in range(5):
        sc.write_text(f"/d/b{i}", "x")
    second = _events(sc, ino)
    assert second[-1].mask == EventMask.IN_Q_OVERFLOW
    assert ino.overflows == 2  # one marker per overflow episode


def test_rename_cookie_shared_across_watchers(sc):
    sc.makedirs("/src")
    sc.makedirs("/dst")
    sc.write_text("/src/f", "x")
    watcher_src = sc.inotify_init()
    watcher_dst = sc.inotify_init()
    sc.inotify_add_watch(watcher_src, "/src", EventMask.IN_MOVED_FROM)
    sc.inotify_add_watch(watcher_dst, "/dst", EventMask.IN_MOVED_TO)
    sc.rename("/src/f", "/dst/g")
    moved_from = [e for e in _events(sc, watcher_src) if e.mask & EventMask.IN_MOVED_FROM]
    moved_to = [e for e in _events(sc, watcher_dst) if e.mask & EventMask.IN_MOVED_TO]
    assert moved_from[0].name == "f"
    assert moved_to[0].name == "g"
    # the two halves pair up even when seen by different instances
    assert moved_from[0].cookie == moved_to[0].cookie != 0


def test_coalescing_counts_published_to_perfcounters(vfs, sc):
    sc.write_text("/f", "v")
    ino = sc.inotify_init()
    sc.inotify_add_watch(ino, "/f", EventMask.IN_MODIFY)
    for _ in range(5):
        sc.write_text("/f", "same-shape-event")
    assert vfs.counters.get("notify.coalesced") >= 4
