"""Stat formatting, inode metadata, and remaining facade surface."""

import pytest

from repro.vfs import FileType, MemFs, Stat, format_mode


def test_format_mode_rendering():
    assert format_mode(FileType.DIRECTORY, 0o755) == "drwxr-xr-x"
    assert format_mode(FileType.REGULAR, 0o640) == "-rw-r-----"
    assert format_mode(FileType.SYMLINK, 0o777) == "lrwxrwxrwx"
    assert format_mode(FileType.REGULAR, 0o000) == "----------"


def test_st_mode_combines_type_and_perm_bits(sc):
    sc.mkdir("/d")
    st = sc.stat("/d")
    assert st.st_mode == 0o040755
    sc.write_text("/f", "")
    assert sc.stat("/f").st_mode == 0o100644


def test_symlink_size_is_target_length(sc):
    sc.symlink("/some/target", "/l")
    assert sc.lstat("/l").size == len("/some/target")


def test_directory_size_is_entry_count(sc):
    sc.mkdir("/d")
    assert sc.stat("/d").size == 0
    sc.write_text("/d/a", "")
    sc.write_text("/d/b", "")
    assert sc.stat("/d").size == 2


def test_nlink_for_directories_counts_subdirs(sc):
    sc.mkdir("/d")
    assert sc.stat("/d").nlink == 2  # "." and parent entry
    sc.mkdir("/d/sub")
    assert sc.stat("/d").nlink == 3  # + sub's ".."
    sc.rmdir("/d/sub")
    assert sc.stat("/d").nlink == 2


def test_timestamps_advance_with_clock(sim, sc):
    sc.write_text("/f", "v1")
    first = sc.stat("/f").mtime
    sim.run_for(2.0)
    sc.write_text("/f", "v2")
    assert sc.stat("/f").mtime == first + 2.0
    assert sc.stat("/f").ctime >= first


def test_ctime_updates_on_chmod_not_mtime(sim, sc):
    sc.write_text("/f", "x")
    before = sc.stat("/f")
    sim.run_for(1.0)
    sc.chmod("/f", 0o600)
    after = sc.stat("/f")
    assert after.ctime > before.ctime
    assert after.mtime == before.mtime


def test_dev_distinguishes_filesystems(sc):
    sc.mkdir("/mnt")
    sc.mount("/mnt", MemFs())
    sc.write_text("/mnt/f", "")
    sc.write_text("/f", "")
    assert sc.stat("/f").dev != sc.stat("/mnt/f").dev


def test_stat_is_frozen_snapshot(sc):
    sc.write_text("/f", "abc")
    snap = sc.stat("/f")
    sc.write_text("/f", "abcdef")
    assert snap.size == 3
    with pytest.raises(Exception):
        snap.size = 99  # frozen dataclass


def test_stat_flags():
    st = Stat(ino=1, ftype=FileType.DIRECTORY, mode=0o755, uid=0, gid=0, size=0, nlink=2, atime=0, mtime=0, ctime=0)
    assert st.is_dir and not st.is_symlink
