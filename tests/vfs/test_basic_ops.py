"""Core file and directory operations through the syscall facade."""

import pytest

from repro.vfs import (
    O_APPEND,
    O_CREAT,
    O_EXCL,
    O_RDONLY,
    O_RDWR,
    O_TRUNC,
    O_WRONLY,
    BadFileDescriptor,
    DirectoryNotEmpty,
    FileExists,
    FileNotFound,
    IsADirectory,
    NotADirectory,
)


def test_mkdir_and_listdir(sc):
    sc.mkdir("/a")
    sc.mkdir("/a/b")
    assert sc.listdir("/") == ["a"]
    assert sc.listdir("/a") == ["b"]


def test_mkdir_existing_fails(sc):
    sc.mkdir("/a")
    with pytest.raises(FileExists):
        sc.mkdir("/a")


def test_mkdir_missing_parent_fails(sc):
    with pytest.raises(FileNotFound):
        sc.mkdir("/missing/child")


def test_makedirs_creates_chain(sc):
    sc.makedirs("/a/b/c/d")
    assert sc.listdir("/a/b/c") == ["d"]


def test_write_read_roundtrip(sc):
    sc.write_text("/f", "hello world")
    assert sc.read_text("/f") == "hello world"


def test_write_bytes_binary_safe(sc):
    payload = bytes(range(256))
    sc.write_bytes("/bin", payload)
    assert sc.read_bytes("/bin") == payload


def test_append_mode(sc):
    sc.write_text("/log", "one\n")
    sc.write_text("/log", "two\n", append=True)
    assert sc.read_text("/log") == "one\ntwo\n"


def test_truncate_via_open_flag(sc):
    sc.write_text("/f", "long content")
    sc.write_text("/f", "x")
    assert sc.read_text("/f") == "x"


def test_o_excl_on_existing(sc):
    sc.write_text("/f", "a")
    with pytest.raises(FileExists):
        sc.open("/f", O_WRONLY | O_CREAT | O_EXCL)


def test_open_missing_without_creat(sc):
    with pytest.raises(FileNotFound):
        sc.open("/nope", O_RDONLY)


def test_read_on_writeonly_fd(sc):
    fd = sc.open("/f", O_WRONLY | O_CREAT)
    with pytest.raises(BadFileDescriptor):
        sc.read(fd)
    sc.close(fd)


def test_write_on_readonly_fd(sc):
    sc.write_text("/f", "x")
    fd = sc.open("/f", O_RDONLY)
    with pytest.raises(BadFileDescriptor):
        sc.write(fd, b"y")
    sc.close(fd)


def test_closed_fd_rejected(sc):
    fd = sc.open("/f", O_WRONLY | O_CREAT)
    sc.close(fd)
    with pytest.raises(BadFileDescriptor):
        sc.write(fd, b"x")
    with pytest.raises(BadFileDescriptor):
        sc.close(fd)


def test_pread_pwrite_do_not_move_offset(sc):
    sc.write_text("/f", "abcdef")
    fd = sc.open("/f", O_RDWR)
    assert sc.pread(fd, 2, 2) == b"cd"
    sc.pwrite(fd, b"XY", 0)
    assert sc.read(fd) == b"XYcdef"
    sc.close(fd)


def test_lseek_and_sparse_write(sc):
    fd = sc.open("/f", O_RDWR | O_CREAT)
    sc.lseek(fd, 4)
    sc.write(fd, b"end")
    sc.close(fd)
    assert sc.read_bytes("/f") == b"\x00\x00\x00\x00end"


def test_append_flag_writes_at_eof(sc):
    sc.write_text("/f", "base")
    fd = sc.open("/f", O_WRONLY | O_APPEND)
    sc.lseek(fd, 0)
    sc.write(fd, b"+tail")
    sc.close(fd)
    assert sc.read_text("/f") == "base+tail"


def test_unlink_removes_file(sc):
    sc.write_text("/f", "x")
    sc.unlink("/f")
    assert not sc.exists("/f")


def test_unlink_directory_rejected(sc):
    sc.mkdir("/d")
    with pytest.raises(IsADirectory):
        sc.unlink("/d")


def test_rmdir_empty_only(sc):
    sc.mkdir("/d")
    sc.write_text("/d/f", "x")
    with pytest.raises(DirectoryNotEmpty):
        sc.rmdir("/d")
    sc.unlink("/d/f")
    sc.rmdir("/d")
    assert not sc.exists("/d")


def test_rmdir_file_rejected(sc):
    sc.write_text("/f", "x")
    with pytest.raises(NotADirectory):
        sc.rmdir("/f")


def test_listdir_on_file_rejected(sc):
    sc.write_text("/f", "x")
    with pytest.raises(NotADirectory):
        sc.listdir("/f")


def test_read_through_file_component_rejected(sc):
    sc.write_text("/f", "x")
    with pytest.raises(NotADirectory):
        sc.read_text("/f/sub")


def test_stat_basics(sc, sim):
    sim.run_for(5.0)
    sc.write_text("/f", "12345")
    st = sc.stat("/f")
    assert st.size == 5
    assert not st.is_dir
    assert st.mtime == 5.0


def test_fstat_matches_stat(sc):
    sc.write_text("/f", "abc")
    fd = sc.open("/f", O_RDONLY)
    assert sc.fstat(fd).ino == sc.stat("/f").ino
    sc.close(fd)


def test_truncate_by_path(sc):
    sc.write_text("/f", "abcdef")
    sc.truncate("/f", 3)
    assert sc.read_text("/f") == "abc"
    sc.truncate("/f", 6)
    assert sc.read_bytes("/f") == b"abc\x00\x00\x00"


def test_cwd_relative_paths(sc):
    sc.makedirs("/a/b")
    sc.chdir("/a")
    sc.write_text("b/file", "rel")
    assert sc.read_text("/a/b/file") == "rel"
    assert sc.getcwd() == "/a"


def test_chdir_to_file_rejected(sc):
    sc.write_text("/f", "x")
    with pytest.raises(NotADirectory):
        sc.chdir("/f")


def test_file_handle_context_manager(vfs, sc):
    with vfs.open(sc.ns, sc.cred, "/f", O_WRONLY | O_CREAT) as handle:
        handle.write(b"ctx")
    assert sc.read_text("/f") == "ctx"


def test_walk_yields_all_levels(sc):
    sc.makedirs("/a/b")
    sc.write_text("/a/f1", "")
    sc.write_text("/a/b/f2", "")
    seen = {dirpath: (sorted(dirs), sorted(files)) for dirpath, dirs, files in sc.walk("/a")}
    assert seen["/a"] == (["b"], ["f1"])
    assert seen["/a/b"] == ([], ["f2"])
