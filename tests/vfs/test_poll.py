"""Epoll readiness: level-triggered wait, edge-triggered wakeup."""

import pytest

from repro.vfs import EPOLL_CTL_ADD, EPOLL_CTL_DEL, InvalidArgument
from repro.vfs.notify import EventMask
from repro.vfs.vfs import VirtualFileSystem
from repro.vfs.syscalls import Syscalls


@pytest.fixture
def sc():
    vfs = VirtualFileSystem()
    return Syscalls(vfs)


def test_wait_empty(sc):
    ep = sc.epoll_create()
    assert ep.wait() == []
    assert len(ep) == 0


def test_inotify_becomes_readable(sc):
    ep = sc.epoll_create()
    ino = sc.inotify_init()
    sc.mkdir("/d")
    sc.inotify_add_watch(ino, "/d", EventMask.IN_CREATE)
    sc.epoll_ctl(ep, EPOLL_CTL_ADD, ino)
    assert ep.wait() == []
    sc.write_bytes("/d/f", b"x")
    assert ep.wait() == [ino]


def test_level_triggered_until_drained(sc):
    ep = sc.epoll_create()
    ino = sc.inotify_init()
    sc.mkdir("/d")
    sc.inotify_add_watch(ino, "/d", EventMask.IN_CREATE)
    sc.epoll_ctl(ep, EPOLL_CTL_ADD, ino)
    sc.write_bytes("/d/f", b"x")
    # Level-triggered: undrained events keep the fd ready across waits.
    assert sc.epoll_wait(ep) == [ino]
    assert sc.epoll_wait(ep) == [ino]
    sc.inotify_read(ino)
    assert sc.epoll_wait(ep) == []


def test_wakeup_fires_once_per_idle_to_ready_edge(sc):
    ep = sc.epoll_create()
    wakeups = []
    ep.wakeup = lambda: wakeups.append(1)
    ino = sc.inotify_init()
    sc.mkdir("/d")
    sc.inotify_add_watch(ino, "/d", EventMask.IN_CREATE)
    sc.epoll_ctl(ep, EPOLL_CTL_ADD, ino)
    sc.write_bytes("/d/a", b"x")
    sc.write_bytes("/d/b", b"x")  # still ready: no second edge
    assert len(wakeups) == 1
    ep.wait()
    sc.inotify_read(ino)
    sc.write_bytes("/d/c", b"x")
    assert len(wakeups) == 2


def test_one_epoll_many_descriptors(sc):
    ep = sc.epoll_create()
    instances = []
    for i in range(3):
        ino = sc.inotify_init()
        sc.mkdir(f"/d{i}")
        sc.inotify_add_watch(ino, f"/d{i}", EventMask.IN_CREATE)
        sc.epoll_ctl(ep, EPOLL_CTL_ADD, ino, f"fd{i}")
        instances.append(ino)
    sc.write_bytes("/d0/f", b"x")
    sc.write_bytes("/d2/f", b"x")
    # Ready descriptors report their registration data.
    assert set(sc.epoll_wait(ep)) == {"fd0", "fd2"}


def test_add_already_readable_is_ready_immediately(sc):
    ino = sc.inotify_init()
    sc.mkdir("/d")
    sc.inotify_add_watch(ino, "/d", EventMask.IN_CREATE)
    sc.write_bytes("/d/f", b"x")
    ep = sc.epoll_create()
    sc.epoll_ctl(ep, EPOLL_CTL_ADD, ino)
    assert sc.epoll_wait(ep) == [ino]


def test_duplicate_add_and_unknown_remove_rejected(sc):
    ep = sc.epoll_create()
    ino = sc.inotify_init()
    sc.epoll_ctl(ep, EPOLL_CTL_ADD, ino)
    with pytest.raises(InvalidArgument):
        sc.epoll_ctl(ep, EPOLL_CTL_ADD, ino)
    with pytest.raises(InvalidArgument):
        sc.epoll_ctl(ep, EPOLL_CTL_DEL, sc.inotify_init())
    with pytest.raises(InvalidArgument):
        sc.epoll_ctl(ep, 99, ino)


def test_del_stops_notifications(sc):
    ep = sc.epoll_create()
    ino = sc.inotify_init()
    sc.mkdir("/d")
    sc.inotify_add_watch(ino, "/d", EventMask.IN_CREATE)
    sc.epoll_ctl(ep, EPOLL_CTL_ADD, ino)
    sc.epoll_ctl(ep, EPOLL_CTL_DEL, ino)
    sc.write_bytes("/d/f", b"x")
    assert ep.wait() == []
    assert ino._pollers == []


def test_close_unregisters_everywhere(sc):
    ep = sc.epoll_create()
    ino = sc.inotify_init()
    sc.epoll_ctl(ep, EPOLL_CTL_ADD, ino)
    ep.close()
    assert ep.closed
    assert ino._pollers == []
    with pytest.raises(InvalidArgument):
        ep.add(ino)


def test_epoll_calls_are_metered(sc):
    before = sc.meter.syscalls
    ep = sc.epoll_create()
    ino = sc.inotify_init()
    sc.epoll_ctl(ep, EPOLL_CTL_ADD, ino)
    sc.epoll_wait(ep)
    assert sc.meter.syscalls == before + 4  # create + init + ctl + wait
