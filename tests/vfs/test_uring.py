"""IoUring: batched submission, linked chains, completion ordering, polling."""

import pytest

from repro.vfs import EPOLL_CTL_ADD, LINK_FD, InvalidArgument, O_RDONLY
from repro.vfs.syscalls import Syscalls
from repro.vfs.vfs import VirtualFileSystem


@pytest.fixture
def sc():
    vfs = VirtualFileSystem()
    return Syscalls(vfs)


@pytest.fixture
def ring(sc):
    return sc.io_uring_setup()


# -- completion ordering ---------------------------------------------------------------


def test_completions_arrive_in_submission_order(sc, ring):
    ring.prep("mkdir", "/a")
    ring.prep("mkdir", "/b")
    ring.prep("listdir", "/")
    assert ring.submit() == 3
    cqes = ring.completions()
    assert [c.op for c in cqes] == ["mkdir", "mkdir", "listdir"]
    assert [c.index for c in cqes] == [0, 1, 2]
    assert sorted(cqes[2].result) == ["a", "b"]


def test_order_preserved_across_submits(sc, ring):
    ring.prep("mkdir", "/a")
    ring.submit()
    ring.prep("mkdir", "/b")
    ring.submit()
    cqes = ring.completions()
    assert [(c.index, c.op) for c in cqes] == [(0, "mkdir"), (1, "mkdir")]


def test_partial_reap_keeps_remainder(sc, ring):
    for name in ("/a", "/b", "/c"):
        ring.prep("mkdir", name)
    ring.submit()
    first = ring.completions(max_entries=1)
    assert [c.index for c in first] == [0]
    assert ring.cq_pending == 2
    assert [c.index for c in ring.completions()] == [1, 2]


def test_failed_op_reports_error_without_stopping_batch(sc, ring):
    ring.prep("mkdir", "/ok")
    ring.prep("listdir", "/missing")  # independent entries: no link
    ring.prep("mkdir", "/also_ok")
    ring.submit()
    cqes = ring.completions()
    assert cqes[0].ok and cqes[2].ok
    assert not cqes[1].ok and cqes[1].error is not None and not cqes[1].canceled
    assert sc.exists("/also_ok")


# -- linked chains ---------------------------------------------------------------------


def test_link_fd_threads_open_write_close(sc, ring):
    ring.prep_write_file("/f", b"hello")
    ring.submit()
    cqes = ring.completions()
    assert [c.op for c in cqes] == ["open", "write", "close"]
    assert all(c.ok for c in cqes)
    assert sc.read_bytes("/f") == b"hello"


def test_chain_failure_cancels_the_rest(sc, ring):
    ring.prep("mkdir", "/missing/deep", link=True)  # fails: parent absent
    ring.prep("mkdir", "/never", link=True)
    ring.prep("mkdir", "/never2")
    ring.prep("mkdir", "/independent")  # next chain: unaffected
    ring.submit()
    cqes = ring.completions()
    assert cqes[0].error is not None
    assert cqes[1].canceled and cqes[2].canceled
    assert cqes[3].ok
    assert not sc.exists("/never") and sc.exists("/independent")


def test_severed_chain_autocloses_its_fd(sc, ring):
    sc.write_bytes("/f", b"x")
    ring.prep("open", "/f", O_RDONLY, link=True)
    ring.prep("listdir", "/missing", link=True)  # fails mid-chain
    ring.prep("close", LINK_FD)
    ring.submit()
    cqes = ring.completions()
    assert cqes[0].ok and cqes[1].error is not None and cqes[2].canceled
    # The chain's fd was reclaimed: the table is empty again.
    assert not sc._fds
    assert sc.meter.counters.get("uring.chain_autoclose") == 1


def test_link_fd_without_open_is_an_error(sc, ring):
    ring.prep("close", LINK_FD)
    ring.submit()
    (cqe,) = ring.completions()
    assert cqe.error is not None and not cqe.canceled


def test_batched_fd_usable_by_direct_calls(sc, ring):
    sc.write_bytes("/f", b"payload")
    ring.prep("open", "/f", O_RDONLY)
    ring.submit()
    (cqe,) = ring.completions()
    assert sc.read(cqe.result, 7) == b"payload"
    sc.close(cqe.result)


def test_maildir_chain_publishes_atomically(sc, ring):
    sc.mkdir("/spool")
    ring.prep("mkdir", "/spool/.tmp", link=True)
    ring.prep_write_file("/spool/.tmp/data", b"x", link=True)
    ring.prep("rename", "/spool/.tmp", "/spool/item")
    ring.submit()
    assert all(c.ok for c in ring.completions())
    assert sc.listdir("/spool") == ["item"]


# -- metering --------------------------------------------------------------------------


def test_submit_is_one_syscall_regardless_of_batch_size(sc, ring):
    sc.meter.reset()
    for i in range(20):
        ring.prep("mkdir", f"/d{i}")
    ring.submit()
    assert sc.meter.counters.get("syscall.io_uring_enter") == 1
    assert sc.meter.counters.get("syscall.total") == 1
    assert sc.meter.counters.get("syscall.mkdir") == 0  # batched, not direct
    assert sc.meter.counters.get("uring.sqe") == 20
    assert sc.meter.counters.get("uring.mkdir") == 20


def test_empty_submit_is_free(sc, ring):
    sc.meter.reset()
    assert ring.submit() == 0
    assert sc.meter.syscalls == 0


def test_batched_payload_bytes_still_billed(sc, ring):
    sc.meter.reset()
    ring.prep_write_file("/f", b"12345")
    ring.submit()
    assert sc.meter.counters.get("bytes.copied") == 5
    ring.prep("open", "/f", O_RDONLY, link=True)
    ring.prep("read", LINK_FD, 5, link=True)
    ring.prep("close", LINK_FD)
    ring.submit()
    assert sc.meter.counters.get("bytes.copied") == 10


# -- validation ------------------------------------------------------------------------


def test_unknown_op_rejected(ring):
    with pytest.raises(InvalidArgument):
        ring.prep("spawn")


def test_queue_full_rejected(sc):
    ring = sc.io_uring_setup(entries=2)
    ring.prep("mkdir", "/a")
    ring.prep("mkdir", "/b")
    with pytest.raises(InvalidArgument):
        ring.prep("mkdir", "/c")
    ring.submit()
    ring.prep("mkdir", "/c")  # room again after the flush


def test_bad_ring_size_rejected(sc):
    with pytest.raises(InvalidArgument):
        sc.io_uring_setup(entries=0)


# -- the pollable completion queue ------------------------------------------------------


def test_cq_plugs_into_epoll(sc, ring):
    ep = sc.epoll_create()
    sc.epoll_ctl(ep, EPOLL_CTL_ADD, ring)
    assert sc.epoll_wait(ep) == []
    ring.prep("mkdir", "/d")
    assert sc.epoll_wait(ep) == []  # prepared but not submitted
    ring.submit()
    # Level-triggered: ready until the CQ drains.
    assert sc.epoll_wait(ep) == [ring]
    assert sc.epoll_wait(ep) == [ring]
    ring.completions()
    assert sc.epoll_wait(ep) == []


def test_cq_edge_fires_wakeup(sc, ring):
    ep = sc.epoll_create()
    wakeups = []
    ep.wakeup = lambda: wakeups.append(1)
    sc.epoll_ctl(ep, EPOLL_CTL_ADD, ring)
    ring.prep("mkdir", "/a")
    ring.submit()
    assert len(wakeups) == 1
    ring.prep("mkdir", "/b")
    ring.submit()  # CQ was already non-empty: no second edge
    assert len(wakeups) == 1


def test_severed_chain_autocloses_under_race_detector(sc, ring):
    # YANCRACE=1 runs the suite with Syscalls methods patched by the
    # happens-before detector; the autoclose of a severed chain goes
    # through the same patched close and must still be billed exactly
    # once (and must not be misread as an app-level fd access).
    from repro.analysis.race import RaceDetector

    detector = RaceDetector().install()
    try:
        sc.write_bytes("/f", b"x")
        ring.prep("open", "/f", O_RDONLY, link=True)
        ring.prep("listdir", "/missing", link=True)  # fails mid-chain
        ring.prep("close", LINK_FD)
        ring.submit()
    finally:
        detector.uninstall()
    cqes = ring.completions()
    assert cqes[0].ok and cqes[1].error is not None and cqes[2].canceled
    assert not sc._fds
    assert sc.meter.counters.get("uring.chain_autoclose") == 1
    findings = detector.check()
    detector.reset()
    assert findings == []
