"""Property-based VFS testing against a pure-dict model."""

from __future__ import annotations

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.vfs import (
    DirectoryNotEmpty,
    FileExists,
    FileNotFound,
    IsADirectory,
    NotADirectory,
    Syscalls,
    VirtualFileSystem,
)

_NAMES = st.sampled_from(["a", "b", "c", "dir1", "file2", "x"])
_CONTENT = st.binary(max_size=32)


class VfsModelMachine(RuleBasedStateMachine):
    """Drive the real VFS and a dict model with the same operations.

    Model: path -> bytes for files, path -> None for directories.
    """

    def __init__(self) -> None:
        super().__init__()
        self.sc = Syscalls(VirtualFileSystem())
        self.model: dict[str, bytes | None] = {"/": None}

    # -- helpers --------------------------------------------------------------------

    def _existing_dirs(self) -> list[str]:
        return sorted(p for p, v in self.model.items() if v is None)

    def _join(self, parent: str, name: str) -> str:
        return f"{parent.rstrip('/')}/{name}"

    def _subtree(self, path: str) -> list[str]:
        prefix = path.rstrip("/") + "/"
        return [p for p in self.model if p == path or p.startswith(prefix)]

    # -- rules ----------------------------------------------------------------------

    @rule(data=st.data(), name=_NAMES)
    def mkdir(self, data, name):
        parent = data.draw(st.sampled_from(self._existing_dirs()))
        path = self._join(parent, name)
        if path in self.model:
            with pytest.raises(FileExists):
                self.sc.mkdir(path)
        else:
            self.sc.mkdir(path)
            self.model[path] = None

    @rule(data=st.data(), name=_NAMES, content=_CONTENT)
    def write(self, data, name, content):
        parent = data.draw(st.sampled_from(self._existing_dirs()))
        path = self._join(parent, name)
        if self.model.get(path, b"") is None:
            with pytest.raises(IsADirectory):
                self.sc.write_bytes(path, content)
        else:
            self.sc.write_bytes(path, content)
            self.model[path] = content

    @rule(data=st.data())
    def read(self, data):
        files = sorted(p for p, v in self.model.items() if v is not None)
        if not files:
            return
        path = data.draw(st.sampled_from(files))
        assert self.sc.read_bytes(path) == self.model[path]

    @rule(data=st.data(), name=_NAMES)
    def unlink(self, data, name):
        parent = data.draw(st.sampled_from(self._existing_dirs()))
        path = self._join(parent, name)
        value = self.model.get(path, "missing")
        if value == "missing":
            with pytest.raises(FileNotFound):
                self.sc.unlink(path)
        elif value is None:
            with pytest.raises(IsADirectory):
                self.sc.unlink(path)
        else:
            self.sc.unlink(path)
            del self.model[path]

    @rule(data=st.data())
    def rmdir(self, data):
        dirs = [d for d in self._existing_dirs() if d != "/"]
        if not dirs:
            return
        path = data.draw(st.sampled_from(dirs))
        if len(self._subtree(path)) > 1:
            with pytest.raises(DirectoryNotEmpty):
                self.sc.rmdir(path)
        else:
            self.sc.rmdir(path)
            del self.model[path]

    @rule(data=st.data(), name=_NAMES)
    def rename_file(self, data, name):
        files = sorted(p for p, v in self.model.items() if v is not None)
        if not files:
            return
        src = data.draw(st.sampled_from(files))
        parent = data.draw(st.sampled_from(self._existing_dirs()))
        dst = self._join(parent, name)
        if dst == src or dst not in self.model or self.model[dst] is not None:
            if self.model.get(dst, b"") is None and dst != src:
                return  # directory target: covered elsewhere
            self.sc.rename(src, dst)
            content = self.model.pop(src)
            self.model[dst] = content
        else:
            with pytest.raises(IsADirectory):
                self.sc.rename(src, dst)

    # -- invariants ------------------------------------------------------------------

    @invariant()
    def model_and_fs_agree(self):
        real: dict[str, bytes | None] = {"/": None}
        for dirpath, dirnames, filenames in self.sc.walk("/"):
            for name in dirnames:
                real[self._join(dirpath, name)] = None
            for name in filenames:
                path = self._join(dirpath, name)
                real[path] = self.sc.read_bytes(path)
        assert real == self.model


VfsModelTest = VfsModelMachine.TestCase
VfsModelTest.settings = settings(max_examples=40, stateful_step_count=30, deadline=None)
