"""The NAT middlebox and its file-system driver (§7.2)."""

import pytest

from repro.dataplane.host import HostSim
from repro.dataplane.link import Link
from repro.middlebox import MiddleboxDriver, NatEntry, NatMiddlebox
from repro.netpkt import MacAddress, Udp, ip
from repro.runtime import ControllerHost
from repro.shell import Shell
from repro.sim import Simulator


def _wire(sim, a, b):
    link = Link(sim, a, b)
    a.link = link
    b.link = link
    return link


@pytest.fixture
def natnet():
    sim = Simulator()
    host = ControllerHost(sim)
    client = HostSim("client", MacAddress(0x01), ip("192.168.1.10"), sim)
    server = HostSim("server", MacAddress(0x02), ip("8.8.8.8"), sim)
    nat = NatMiddlebox("nat1", "203.0.113.1", sim)
    _wire(sim, client, nat.inside)
    _wire(sim, nat.outside, server)
    client.arp_table[server.ip] = server.mac
    server.arp_table[ip("203.0.113.1")] = client.mac
    driver = MiddleboxDriver(host.root_sc.spawn(), sim)
    driver.attach(nat)
    return sim, host, client, server, nat, driver


def test_outbound_translation(natnet):
    sim, _host, client, server, nat, _driver = natnet
    client.send_udp(server.ip, 5555, 53, b"q")
    sim.run_for(0.2)
    src_ip, datagram = server.udp_received[0]
    assert src_ip == ip("203.0.113.1")
    assert datagram.src_port == 20000  # first allocated public port
    assert nat.translated == 1


def test_reply_translated_back(natnet):
    sim, _host, client, server, nat, _driver = natnet
    client.send_udp(server.ip, 5555, 53, b"q")
    sim.run_for(0.2)
    public_port = server.udp_received[0][1].src_port
    server.send_udp("203.0.113.1", 53, public_port, b"a")
    sim.run_for(0.2)
    src_ip, datagram = client.udp_received[0]
    assert src_ip == server.ip
    assert datagram.dst_port == 5555  # the original client port


def test_same_flow_reuses_binding(natnet):
    sim, _host, client, server, nat, _driver = natnet
    for _ in range(3):
        client.send_udp(server.ip, 5555, 53, b"q")
    sim.run_for(0.3)
    ports = {u.src_port for _s, u in server.udp_received}
    assert ports == {20000}
    assert len(nat.entries()) == 1


def test_distinct_flows_distinct_ports(natnet):
    sim, _host, client, server, nat, _driver = natnet
    client.send_udp(server.ip, 5555, 53, b"a")
    client.send_udp(server.ip, 5556, 53, b"b")
    sim.run_for(0.3)
    ports = {u.src_port for _s, u in server.udp_received}
    assert len(ports) == 2


def test_unknown_inbound_dropped(natnet):
    sim, _host, client, server, nat, _driver = natnet
    server.send_udp("203.0.113.1", 53, 29999, b"scan")
    sim.run_for(0.2)
    assert client.udp_received == []
    assert nat.dropped == 1


def test_port_pool_exhaustion():
    sim = Simulator()
    nat = NatMiddlebox("n", "203.0.113.1", sim, port_range=(30000, 30001))
    assert nat._allocate(17, ip("10.0.0.1"), 1) is not None
    assert nat._allocate(17, ip("10.0.0.1"), 2) is not None
    assert nat._allocate(17, ip("10.0.0.1"), 3) is None


def test_state_appears_in_tree(natnet):
    sim, host, client, server, _nat, _driver = natnet
    client.send_udp(server.ip, 5555, 53, b"q")
    sim.run_for(0.2)
    sc = host.root_sc
    entries = sc.listdir("/net/middleboxes/nat1/state")
    assert entries == ["udp-192.168.1.10-5555"]
    base = f"/net/middleboxes/nat1/state/{entries[0]}"
    assert sc.read_text(f"{base}/proto") == "udp"
    assert sc.read_text(f"{base}/public_port") == "20000"


def test_counters_synced_periodically(natnet):
    sim, host, client, server, _nat, _driver = natnet
    client.send_udp(server.ip, 5555, 53, b"q")
    sim.run_for(1.5)
    translated = int(host.root_sc.read_text("/net/middleboxes/nat1/counters/translated"))
    assert translated >= 1
    connections = int(host.root_sc.read_text("/net/middleboxes/nat1/counters/connections"))
    assert connections == 1


def test_rm_state_entry_tears_binding_down(natnet):
    sim, host, client, server, nat, _driver = natnet
    client.send_udp(server.ip, 5555, 53, b"q")
    sim.run_for(0.2)
    host.root_sc.rmdir("/net/middleboxes/nat1/state/udp-192.168.1.10-5555")
    sim.run_for(0.2)
    assert nat.entries() == []
    # the reply now has nowhere to go
    server.send_udp("203.0.113.1", 53, 20000, b"late")
    sim.run_for(0.2)
    assert client.udp_received == []


def test_manual_state_injection(natnet):
    """An admin (or another tool) writes a binding; the device honours it."""
    sim, host, client, server, nat, _driver = natnet
    sc = host.root_sc
    base = "/net/middleboxes/nat1/state/udp-192.168.1.10-7777"
    sc.mkdir(base)
    sc.write_text(f"{base}/proto", "udp")
    sc.write_text(f"{base}/client_ip", "192.168.1.10")
    sc.write_text(f"{base}/client_port", "7777")
    sc.write_text(f"{base}/public_port", "25000")
    sim.run_for(0.2)
    entry = nat.lookup_conn("udp-192.168.1.10-7777")
    assert entry is not None and entry.public_port == 25000
    # inbound traffic to the injected port reaches the client
    server.send_udp("203.0.113.1", 53, 25000, b"hello")
    sim.run_for(0.2)
    assert client.udp_received[0][1].dst_port == 7777


@pytest.fixture
def migration(natnet):
    sim, host, client, server, nat1, driver = natnet
    nat2 = NatMiddlebox("nat2", "203.0.113.1", sim)
    driver.attach(nat2)
    client.send_udp(server.ip, 5555, 53, b"q")
    sim.run_for(0.2)
    return sim, host, client, server, nat1, nat2, driver


def test_mv_migrates_binding(migration):
    sim, host, _client, _server, nat1, nat2, driver = migration
    shell = Shell(host.root_sc)
    shell.run("mv /net/middleboxes/nat1/state/udp-192.168.1.10-5555 /net/middleboxes/nat2/state/udp-192.168.1.10-5555")
    sim.run_for(0.2)
    assert nat1.entries() == []
    moved = nat2.lookup_conn("udp-192.168.1.10-5555")
    assert moved is not None and moved.public_port == 20000
    assert driver.migrations_in == 1 and driver.migrations_out == 1


def test_migrated_connection_keeps_working(migration):
    sim, host, client, server, nat1, nat2, _driver = migration
    shell = Shell(host.root_sc)
    shell.run("mv /net/middleboxes/nat1/state/udp-192.168.1.10-5555 /net/middleboxes/nat2/state/udp-192.168.1.10-5555")
    sim.run_for(0.2)
    # re-home the wire to nat2 (dataplane side of the elastic move)
    link = Link(sim, client, nat2.inside)
    client.link = link
    nat2.inside.link = link
    link2 = Link(sim, nat2.outside, server)
    nat2.outside.link = link2
    server.link = link2
    client.send_udp(server.ip, 5555, 53, b"after")
    sim.run_for(0.2)
    assert server.udp_received[-1][1].src_port == 20000  # same public port


def test_cp_duplicates_binding(migration):
    """cp (not mv) = split: both instances can translate the flow."""
    sim, host, _client, _server, nat1, nat2, _driver = migration
    shell = Shell(host.root_sc)
    shell.run("cp -r /net/middleboxes/nat1/state/udp-192.168.1.10-5555 /net/middleboxes/nat2/state/udp-192.168.1.10-5555")
    sim.run_for(0.2)
    assert nat1.lookup_conn("udp-192.168.1.10-5555") is not None
    assert nat2.lookup_conn("udp-192.168.1.10-5555") is not None


def test_middleboxes_dir_is_lazy(yanc_sc):
    assert yanc_sc.listdir("/net") == ["hosts", "switches", "views"]
    yanc_sc.mkdir("/net/middleboxes")
    assert "middleboxes" in yanc_sc.listdir("/net")
    yanc_sc.mkdir("/net/middleboxes/mb1")
    assert set(yanc_sc.listdir("/net/middleboxes/mb1")) == {"counters", "state", "type", "public_ip"}


def test_state_dir_schema_rules(yanc_sc):
    from repro.vfs import NotPermitted

    yanc_sc.mkdir("/net/middleboxes")
    yanc_sc.mkdir("/net/middleboxes/mb1")
    with pytest.raises(NotPermitted):
        yanc_sc.write_text("/net/middleboxes/mb1/state/notadir", "x")
    yanc_sc.mkdir("/net/middleboxes/mb1/state/conn1")
    with pytest.raises(NotPermitted):
        yanc_sc.mkdir("/net/middleboxes/mb1/state/conn1/nested")
    # recursive rmdir works on state entries
    yanc_sc.write_text("/net/middleboxes/mb1/state/conn1/proto", "udp")
    yanc_sc.rmdir("/net/middleboxes/mb1/state/conn1")


def test_non_udp_tcp_traffic_passes_through(natnet):
    sim, _host, client, server, nat, _driver = natnet
    seq = client.ping(server.ip)  # ICMP: untranslated pass-through
    sim.run_for(0.3)
    assert client.reachable(seq)
    assert nat.translated == 0
