"""Control-channel byte streams."""

from repro.controlchannel import connect
from repro.perf import PerfCounters
from repro.sim import Simulator


def test_bidirectional_delivery():
    sim = Simulator()
    a, b = connect(sim)
    a.send(b"to-b")
    b.send(b"to-a")
    sim.run_for(0.01)
    assert b.drain() == b"to-b"
    assert a.drain() == b"to-a"


def test_in_order_delivery():
    sim = Simulator()
    a, b = connect(sim)
    for index in range(10):
        a.send(bytes([index]))
    sim.run_for(0.01)
    assert b.drain() == bytes(range(10))


def test_latency_applies():
    sim = Simulator()
    a, b = connect(sim, latency=0.5)
    a.send(b"x")
    sim.run_for(0.4)
    assert b.rx_buffer == b""
    sim.run_for(0.2)
    assert b.drain() == b"x"


def test_handler_consumes_instead_of_buffering():
    sim = Simulator()
    a, b = connect(sim)
    seen = []
    b.on_data = seen.append
    a.send(b"handled")
    sim.run_for(0.01)
    assert seen == [b"handled"]
    assert b.rx_buffer == b""


def test_close_stops_both_directions():
    sim = Simulator()
    a, b = connect(sim)
    a.close()
    a.send(b"lost")
    b.send(b"also lost")
    sim.run_for(0.01)
    assert a.drain() == b"" and b.drain() == b""


def test_in_flight_data_dropped_on_close():
    sim = Simulator()
    a, b = connect(sim, latency=0.5)
    a.send(b"in flight")
    b.close()
    sim.run_for(1.0)
    assert b.drain() == b""


def test_counters_track_traffic():
    sim = Simulator()
    counters = PerfCounters()
    a, b = connect(sim, counters=counters)
    a.send(b"12345")
    sim.run_for(0.01)
    assert counters.get("openflow.tx") == 1
    assert counters.get("openflow.rx") == 1
    assert counters.get("openflow.tx_bytes") == 5
    assert a.tx_bytes == 5 and b.rx_bytes == 5
