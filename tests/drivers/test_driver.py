"""The OpenFlow driver: FS <-> switch synchronization."""

import pytest

from repro.dataplane import FLOOD, Match, Output, build_linear
from repro.drivers import OF10_VERSION, OF13_VERSION
from repro.runtime import YancController


@pytest.fixture
def ctl():
    return YancController(build_linear(2)).start()


def test_switch_dirs_created_on_attach(ctl):
    yc = ctl.client()
    assert yc.switches() == ["sw1", "sw2"]
    assert yc.switch_dpid("sw1") == 1


def test_ports_mirrored_with_attributes(ctl):
    yc = ctl.client()
    assert yc.ports("sw1") == ["port_1", "port_2"]
    sc = ctl.host.root_sc
    assert sc.read_text("/net/switches/sw1/ports/port_1/name").strip() == "sw1-eth1"
    assert sc.read_text("/net/switches/sw1/ports/port_1/config.port_status").strip() == "up"


def test_committed_flow_reaches_switch(ctl):
    yc = ctl.client()
    yc.create_flow("sw1", "f", Match(dl_type=0x800), [Output(2)], priority=7)
    ctl.run(0.2)
    entries = ctl.net.switches["sw1"].table.entries()
    assert len(entries) == 1
    assert entries[0].priority == 7


def test_uncommitted_flow_stays_off_hardware(ctl):
    yc = ctl.client()
    yc.create_flow("sw1", "f", Match(dl_type=0x800), [Output(2)], commit=False)
    ctl.run(0.2)
    assert len(ctl.net.switches["sw1"].table) == 0
    yc.commit_flow("sw1", "f")
    ctl.run(0.2)
    assert len(ctl.net.switches["sw1"].table) == 1


def test_same_version_not_resent(ctl):
    yc = ctl.client()
    yc.create_flow("sw1", "f", Match(dl_type=0x800), [Output(2)])
    ctl.run(0.2)
    sent_before = ctl.drivers[0].flow_mods_sent
    # touch an attribute without committing
    ctl.host.root_sc.write_text("/net/switches/sw1/flows/f/priority", "9")
    ctl.run(0.2)
    assert ctl.drivers[0].flow_mods_sent == sent_before
    # ... until the commit lands, at which point the update goes out
    yc.commit_flow("sw1", "f")
    ctl.run(0.2)
    assert ctl.drivers[0].flow_mods_sent > sent_before
    assert ctl.net.switches["sw1"].table.entries()[0].priority == 9


def test_recommit_after_edit_replaces_entry(ctl):
    yc = ctl.client()
    yc.create_flow("sw1", "f", Match(dl_type=0x800), [Output(2)], priority=5)
    ctl.run(0.2)
    ctl.host.root_sc.write_text("/net/switches/sw1/flows/f/priority", "9")
    yc.commit_flow("sw1", "f")
    ctl.run(0.2)
    entries = ctl.net.switches["sw1"].table.entries()
    assert len(entries) == 1
    assert entries[0].priority == 9


def test_flow_dir_delete_removes_hardware_entry(ctl):
    yc = ctl.client()
    yc.create_flow("sw1", "f", Match(dl_type=0x800), [Output(2)])
    ctl.run(0.2)
    yc.delete_flow("sw1", "f")
    ctl.run(0.2)
    assert len(ctl.net.switches["sw1"].table) == 0


def test_idle_timeout_removes_fs_dir(ctl):
    yc = ctl.client()
    yc.create_flow("sw1", "f", Match(dl_type=0x800), [Output(2)], idle_timeout=1.0)
    ctl.run(0.3)
    assert yc.flows("sw1") == ["f"]
    ctl.run(3.0)  # expiry sweep fires flow-removed; driver prunes the dir
    assert yc.flows("sw1") == []
    assert len(ctl.net.switches["sw1"].table) == 0


def test_port_down_file_drives_port_mod(ctl):
    yc = ctl.client()
    yc.set_port_down("sw1", 1, True)
    ctl.run(0.2)
    assert not ctl.net.switches["sw1"].ports[1].admin_up
    yc.set_port_down("sw1", 1, False)
    ctl.run(0.2)
    assert ctl.net.switches["sw1"].ports[1].admin_up


def test_counters_sync_into_fs(ctl):
    yc = ctl.client()
    for sw in yc.switches():
        yc.create_flow(sw, "flood", Match(), [Output(FLOOD)], priority=1)
    ctl.run(0.2)
    h1, h2 = ctl.net.hosts["h1"], ctl.net.hosts["h2"]
    h1.ping(h2.ip)
    ctl.run(2.5)  # traffic + stats poll
    counters = yc.flow_counters("sw1", "flood")
    assert counters["packet_count"] > 0
    port_counters = yc.port_counters("sw1", 1)
    assert port_counters["tx_packets"] > 0


def test_packet_out_spool_consumed(ctl):
    yc = ctl.client()
    from repro.netpkt import ETH_TYPE_IPV4, Ethernet, MacAddress
    raw = Ethernet(dst=ctl.net.hosts["h1"].mac, src=MacAddress(0x42), eth_type=ETH_TYPE_IPV4, payload=b"x" * 30).pack()
    yc.packet_out("sw1", [2], raw, tag="test")
    ctl.run(0.2)
    sc = ctl.host.root_sc
    assert sc.listdir("/net/switches/sw1/packet_out") == []
    assert ctl.net.hosts["h1"].rx_frames == 1


def test_unroutable_spool_entry_discarded(ctl):
    sc = ctl.host.root_sc
    sc.write_bytes("/net/switches/sw1/packet_out/nonsense.tag.1", b"data")
    ctl.run(0.2)
    assert sc.listdir("/net/switches/sw1/packet_out") == []


def test_packet_in_fans_out_to_all_buffers(ctl):
    yc = ctl.client()
    yc.subscribe_events("sw1", "alpha")
    yc.subscribe_events("sw1", "beta")
    ctl.run(0.1)
    ctl.net.hosts["h1"].send_udp("10.0.0.99", 1, 2, b"miss")
    ctl.run(0.2)
    assert len(yc.read_events("sw1", "alpha")) == 1
    assert len(yc.read_events("sw1", "beta")) == 1


def test_event_buffer_backpressure(ctl):
    from repro.drivers import MAX_PENDING_EVENTS

    yc = ctl.client()
    yc.subscribe_events("sw1", "slow")
    ctl.run(0.1)
    host = ctl.net.hosts["h1"]
    for index in range(MAX_PENDING_EVENTS + 20):
        host.send_udp("10.0.0.99", 1, index % 65536, bytes([index % 256]))
    ctl.run(2.0)
    binding = ctl.drivers[0].bindings[1]
    pending = len(ctl.host.root_sc.listdir("/net/switches/sw1/events/slow"))
    assert pending <= MAX_PENDING_EVENTS
    assert binding.dropped_events > 0


def test_live_upgrade_of10_to_of13(ctl):
    yc = ctl.client()
    yc.create_flow("sw1", "keep", Match(dl_type=0x800), [Output(2)], priority=4)
    ctl.run(0.2)
    of13 = ctl.add_driver(version=OF13_VERSION)
    sw1 = ctl.net.switches["sw1"]
    ctl.drivers[0].detach_switch(sw1.dpid)
    of13.attach_switch(sw1)
    ctl.run(0.2)
    binding = of13.bindings[sw1.dpid]
    assert binding.version == OF13_VERSION
    assert binding.fs_name == "sw1"  # adopted, not recreated
    assert len(sw1.table) == 1  # re-asserted from the tree
    # new commits flow through the new driver
    yc.create_flow("sw1", "after", Match(dl_type=0x806), [Output(2)], priority=4)
    ctl.run(0.2)
    assert len(sw1.table) == 2


def test_switch_rename_followed_by_driver(ctl):
    yc = ctl.client()
    sc = ctl.host.root_sc
    sc.rename("/net/switches/sw1", "/net/switches/leftmost")
    ctl.run(0.2)
    yc.create_flow("leftmost", "f", Match(dl_type=0x800), [Output(2)], priority=3)
    ctl.run(0.2)
    assert len(ctl.net.switches["sw1"].table) == 1
    assert ctl.drivers[0].bindings[1].fs_name == "leftmost"


def test_detach_leaves_fs_state(ctl):
    yc = ctl.client()
    yc.create_flow("sw1", "f", Match(dl_type=0x800), [Output(2)])
    ctl.run(0.2)
    ctl.drivers[0].detach_switch(1)
    assert yc.flows("sw1") == ["f"]  # tree survives the session


def test_driver_stop_detaches_all(ctl):
    ctl.drivers[0].stop()
    assert ctl.drivers[0].bindings == {}


def test_invalid_version_rejected():
    from repro.drivers import OpenFlowDriver
    from repro.sim import Simulator
    from repro.vfs import Syscalls, VirtualFileSystem

    vfs = VirtualFileSystem()
    with pytest.raises(ValueError):
        OpenFlowDriver(Syscalls(vfs), Simulator(), version=0x02)
