"""Driver-agent version negotiation corners and fleet-scale operation."""

import pytest

from repro.dataplane import Match, Network, Output
from repro.drivers import OF10_VERSION, OF13_VERSION, OpenFlowDriver
from repro.runtime import ControllerHost, YancController
from repro.sim import Simulator


def test_of13_driver_and_agent_settle_on_of13():
    sim = Simulator()
    net = Network(sim)
    switch = net.add_switch("s")
    switch.add_port(1)
    host = ControllerHost(sim)
    driver = OpenFlowDriver(host.process(role="driver"), sim, version=OF13_VERSION)
    binding = driver.attach_switch(switch)
    sim.run_for(0.1)
    assert binding.version == OF13_VERSION
    assert binding.agent.version == OF13_VERSION
    # the session really speaks 1.3 bytes: a flow push works end to end
    yc = host.client()
    yc.create_flow(binding.fs_name, "f", Match(dl_type=0x800), [Output(1)], priority=3)
    sim.run_for(0.2)
    assert len(switch.table) == 1


def test_of10_driver_with_of13_agent_settles_on_of10():
    sim = Simulator()
    net = Network(sim)
    switch = net.add_switch("s")
    host = ControllerHost(sim)
    driver = OpenFlowDriver(host.process(role="driver"), sim, version=OF10_VERSION)
    binding = driver.attach_switch(switch)
    sim.run_for(0.1)
    assert binding.version == OF10_VERSION
    assert binding.agent.version == OF10_VERSION


def test_fifty_switch_fleet_bulk_program():
    """Scale check: one driver, 50 switches, 5 flows each."""
    net_sim = Simulator()
    net = Network(net_sim)
    for _ in range(50):
        switch = net.add_switch()
        switch.add_port(1)
    ctl = YancController(net)
    ctl.start()
    yc = ctl.client()
    assert len(yc.switches()) == 50
    for name in yc.switches():
        for index in range(5):
            yc.create_flow(name, f"f{index}", Match(dl_vlan=index), [Output(1)], priority=4)
    ctl.run(0.5)
    sizes = {sw.name: len(sw.table) for sw in net.switches.values()}
    assert all(size == 5 for size in sizes.values()), sizes
    assert ctl.drivers[0].flow_mods_sent == 250


def test_two_drivers_never_share_a_switch():
    ctl = YancController(__import__("repro.dataplane", fromlist=["build_linear"]).build_linear(2))
    of10 = ctl.add_driver()
    of13 = ctl.add_driver(version=OF13_VERSION)
    switches = list(ctl.net.switches.values())
    of10.attach_switch(switches[0])
    of13.attach_switch(switches[1])
    ctl.run(0.1)
    assert set(of10.bindings) == {1}
    assert set(of13.bindings) == {2}
    # each binding's tree work is visible in one shared /net
    assert ctl.client().switches() == ["sw1", "sw2"]


def test_detach_unknown_dpid_is_noop():
    ctl = YancController(__import__("repro.dataplane", fromlist=["build_linear"]).build_linear(1)).start()
    ctl.drivers[0].detach_switch(999)  # must not raise
    assert set(ctl.drivers[0].bindings) == {1}
