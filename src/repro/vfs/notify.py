"""inotify-style file system monitoring.

The paper (section 5.2) has applications watch the yanc tree with the Linux
fsnotify APIs: a watch on ``switches/`` learns about new switches, a watch
on a flow's ``version`` file learns about commits, and — crucially — this
"comes free, requiring no additional lines of code to the yanc file
system".  We reproduce that property: the notify hub lives in the VFS layer
and file systems emit generic events; no yanc-specific notification code
exists anywhere.

API shape follows inotify: an application creates an :class:`Inotify`
instance, adds watches with an event mask, and reads batched
:class:`NotifyEvent` records.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.vfs.errors import InvalidArgument

if TYPE_CHECKING:
    from repro.vfs.inode import Inode

#: Observers called as ``tap(instance, event)`` for every event delivered
#: to an :class:`Inotify` instance, *before* coalescing/overflow handling —
#: so an observer sees the delivery even when the queue merges or drops it.
#: Used by yancrace to propagate the emitter's clock to watchers.
_delivery_taps: list[Callable[["Inotify", "NotifyEvent"], None]] = []


def add_delivery_tap(tap: Callable[["Inotify", "NotifyEvent"], None]) -> None:
    """Register a delivery observer (idempotent)."""
    if tap not in _delivery_taps:
        _delivery_taps.append(tap)


def remove_delivery_tap(tap: Callable[["Inotify", "NotifyEvent"], None]) -> None:
    """Unregister a delivery observer previously added."""
    if tap in _delivery_taps:
        _delivery_taps.remove(tap)


class EventMask(enum.IntFlag):
    """inotify event bits (same names as ``<sys/inotify.h>``)."""

    IN_ACCESS = 0x0001
    IN_MODIFY = 0x0002
    IN_ATTRIB = 0x0004
    IN_CLOSE_WRITE = 0x0008
    IN_CLOSE_NOWRITE = 0x0010
    IN_OPEN = 0x0020
    IN_MOVED_FROM = 0x0040
    IN_MOVED_TO = 0x0080
    IN_CREATE = 0x0100
    IN_DELETE = 0x0200
    IN_DELETE_SELF = 0x0400
    IN_MOVE_SELF = 0x0800
    IN_Q_OVERFLOW = 0x4000
    IN_ISDIR = 0x4000_0000

    @classmethod
    def all_events(cls) -> "EventMask":
        """Every event bit (IN_ALL_EVENTS)."""
        return (
            cls.IN_ACCESS
            | cls.IN_MODIFY
            | cls.IN_ATTRIB
            | cls.IN_CLOSE_WRITE
            | cls.IN_CLOSE_NOWRITE
            | cls.IN_OPEN
            | cls.IN_MOVED_FROM
            | cls.IN_MOVED_TO
            | cls.IN_CREATE
            | cls.IN_DELETE
            | cls.IN_DELETE_SELF
            | cls.IN_MOVE_SELF
        )


IN_ALL_EVENTS = EventMask.all_events()

#: Linux default for /proc/sys/fs/inotify/max_queued_events.
DEFAULT_MAX_QUEUED_EVENTS = 16384


@dataclass(frozen=True)
class NotifyEvent:
    """One delivered event.

    ``name`` is the child name for events observed via a directory watch
    and None for events on the watched node itself.  ``cookie`` pairs the
    IN_MOVED_FROM / IN_MOVED_TO halves of a rename.
    """

    wd: int
    mask: EventMask
    name: str | None = None
    cookie: int = 0

    @property
    def is_dir(self) -> bool:
        """True when the subject of the event is a directory."""
        return bool(self.mask & EventMask.IN_ISDIR)


class Watch:
    """One watch descriptor: an inode, a mask, and its owner instance."""

    def __init__(self, wd: int, inode: "Inode", mask: EventMask, owner: "Inotify") -> None:
        self.wd = wd
        self.inode = inode
        self.mask = mask
        self.owner = owner
        self.removed = False


class Inotify:
    """An application's notification instance (one event queue).

    The queue is bounded (inotify's ``max_queued_events``) and coalesces an
    event identical to the one at the tail of the queue, exactly as the
    kernel's ``inotify_merge`` does — a flow-table churn storm repeating
    the same modification therefore costs one queued record, and a reader
    that falls too far behind sees a single ``IN_Q_OVERFLOW`` record
    (wd -1) instead of unbounded queue growth.
    """

    def __init__(self, hub: "NotifyHub", *, max_queued_events: int | None = None) -> None:
        self._hub = hub
        self._queue: list[NotifyEvent] = []
        self._watches: dict[int, Watch] = {}
        self.max_queued_events = max(1, max_queued_events or DEFAULT_MAX_QUEUED_EVENTS)
        #: Lifetime tallies for this instance (also published to the hub's
        #: PerfCounters as notify.coalesced / notify.dropped / notify.overflows).
        self.coalesced = 0
        self.dropped = 0
        self.overflows = 0
        self._overflowed = False
        #: Called once whenever the queue goes empty -> non-empty; the
        #: simulation runtime uses it to schedule a daemon wakeup.
        self.wakeup: Callable[[], None] | None = None
        #: Epoll instances watching this descriptor (see repro.vfs.poll);
        #: they get the same empty -> non-empty edge as ``wakeup``.
        self._pollers: list = []

    # -- readiness (the pollable protocol, see repro.vfs.poll) ---------------

    def readable(self) -> bool:
        """True when at least one event is queued."""
        return bool(self._queue)

    def poll_register(self, poller) -> None:
        """Attach an epoll instance to this descriptor's readiness edge."""
        if poller not in self._pollers:
            self._pollers.append(poller)

    def poll_unregister(self, poller) -> None:
        """Detach an epoll instance (no-op when not attached)."""
        if poller in self._pollers:
            self._pollers.remove(poller)

    def add_watch(self, inode: "Inode", mask: EventMask) -> int:
        """Watch ``inode`` for the events in ``mask``; returns the wd.

        Re-watching an inode replaces the mask (as inotify does) and
        returns the existing wd.
        """
        if not mask:
            raise InvalidArgument(detail="empty watch mask")
        for watch in self._watches.values():
            if watch.inode is inode:
                watch.mask = mask
                return watch.wd
        wd = self._hub.register(self, inode, mask)
        return wd

    def rm_watch(self, wd: int) -> None:
        """Remove watch ``wd``; raises InvalidArgument if unknown."""
        if wd not in self._watches:
            raise InvalidArgument(detail=f"unknown watch descriptor {wd}")
        self._hub.unregister(self._watches.pop(wd))

    def read(self) -> list[NotifyEvent]:
        """Drain and return all queued events (empty list if none)."""
        events, self._queue = self._queue, []
        self._overflowed = False
        return events

    def pending(self) -> int:
        """Number of undelivered events."""
        return len(self._queue)

    def close(self) -> None:
        """Drop all watches and queued events."""
        for watch in list(self._watches.values()):
            self._hub.unregister(watch)
        self._watches.clear()
        self._queue.clear()
        self._pollers.clear()

    # -- hub side -------------------------------------------------------------

    def _register(self, watch: Watch) -> None:
        self._watches[watch.wd] = watch

    def _deliver(self, event: NotifyEvent) -> None:
        if _delivery_taps:
            for tap in _delivery_taps:
                tap(self, event)
        queue = self._queue
        if queue:
            last = queue[-1]
            if last.wd == event.wd and last.mask == event.mask and last.name == event.name and last.cookie == event.cookie:
                self.coalesced += 1
                self._hub.count("notify.coalesced")
                return
            if len(queue) >= self.max_queued_events:
                self.dropped += 1
                self._hub.count("notify.dropped")
                if not self._overflowed:
                    self._overflowed = True
                    self.overflows += 1
                    self._hub.count("notify.overflows")
                    queue.append(NotifyEvent(wd=-1, mask=EventMask.IN_Q_OVERFLOW))
                return
            queue.append(event)
            return
        queue.append(event)
        if self.wakeup is not None:
            self.wakeup()
        for poller in list(self._pollers):
            poller.notify_readable(self)


class NotifyHub:
    """The per-VFS event fan-out: inode -> interested watches."""

    def __init__(self, counters=None) -> None:
        self._wd_counter = itertools.count(1)
        self._cookie_counter = itertools.count(1)
        self._by_inode: dict[int, list[Watch]] = {}
        self._counters = counters

    def instance(self, *, max_queued_events: int | None = None) -> Inotify:
        """Create a new notification instance (``inotify_init``)."""
        return Inotify(self, max_queued_events=max_queued_events)

    def count(self, name: str) -> None:
        """Increment a delivery counter (no-op without a counter registry)."""
        if self._counters is not None:
            self._counters.add(name)

    def next_cookie(self) -> int:
        """Allocate a cookie pairing the two halves of a rename."""
        return next(self._cookie_counter)

    def register(self, owner: Inotify, inode: "Inode", mask: EventMask) -> int:
        """Create a watch; returns the new watch descriptor."""
        wd = next(self._wd_counter)
        watch = Watch(wd, inode, mask, owner)
        self._by_inode.setdefault(id(inode), []).append(watch)
        owner._register(watch)
        return wd

    def unregister(self, watch: Watch) -> None:
        """Tear down a watch."""
        watch.removed = True
        bucket = self._by_inode.get(id(watch.inode), [])
        if watch in bucket:
            bucket.remove(watch)
        if not bucket:
            self._by_inode.pop(id(watch.inode), None)

    def emit(self, inode: "Inode", mask: int, *, name: str | None = None, cookie: int = 0) -> None:
        """Deliver an event to watches on ``inode`` and on its parents.

        Watches on the node itself see the event with ``name=None``;
        watches on each directory holding a dentry for the node see it with
        the child name — mirroring how fsnotify propagates one level up.
        """
        event_mask = EventMask(mask)
        self._fanout(inode, event_mask, name, cookie)
        for parent, child_name in list(inode.dentries):
            self._fanout(parent, event_mask, child_name, cookie)

    def emit_dirent(
        self,
        parent: "Inode",
        child: "Inode",
        mask: int,
        name: str,
        cookie: int = 0,
    ) -> None:
        """Deliver a directory-entry event (create/delete/move) by name."""
        event_mask = EventMask(mask)
        if child.is_dir:
            event_mask |= EventMask.IN_ISDIR
        self._fanout(parent, event_mask, name, cookie)

    def _fanout(self, inode: "Inode", mask: EventMask, name: str | None, cookie: int) -> None:
        for watch in list(self._by_inode.get(id(inode), [])):
            if watch.removed:
                continue
            wanted = mask & watch.mask
            if not wanted & ~EventMask.IN_ISDIR:
                continue
            delivered = wanted | (mask & EventMask.IN_ISDIR)
            watch.owner._deliver(NotifyEvent(wd=watch.wd, mask=delivered, name=name, cookie=cookie))
            if self._counters is not None:
                self._counters.add("notify.events")
