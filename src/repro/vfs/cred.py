"""Process credentials for permission checking."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.vfs.errors import InvalidArgument


@dataclass(frozen=True)
class Credentials:
    """Who is making a VFS call: uid, primary gid, supplementary groups.

    The paper (section 5.1) leans on ordinary multi-user permissions to
    protect flows, switches, and whole views; tests and examples run apps
    under distinct non-root credentials to exercise that enforcement.
    """

    uid: int
    gid: int
    groups: frozenset[int] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if self.uid < 0 or self.gid < 0:
            raise InvalidArgument(detail="uid/gid must be non-negative")

    @property
    def is_root(self) -> bool:
        """Root (uid 0) bypasses permission checks, as on Linux."""
        return self.uid == 0

    def in_group(self, gid: int) -> bool:
        """True when ``gid`` is the primary or a supplementary group."""
        return gid == self.gid or gid in self.groups


#: The superuser.
ROOT = Credentials(uid=0, gid=0)
