"""Process credentials for permission checking."""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

from repro.vfs.errors import InvalidArgument


@dataclass(frozen=True)
class Credentials:
    """Who is making a VFS call: uid, primary gid, supplementary groups.

    The paper (section 5.1) leans on ordinary multi-user permissions to
    protect flows, switches, and whole views; tests and examples run apps
    under distinct non-root credentials to exercise that enforcement.
    """

    uid: int
    gid: int
    groups: frozenset[int] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if self.uid < 0 or self.gid < 0:
            raise InvalidArgument(detail="uid/gid must be non-negative")

    @property
    def is_root(self) -> bool:
        """Root (uid 0) bypasses permission checks, as on Linux."""
        return self.uid == 0

    def in_group(self, gid: int) -> bool:
        """True when ``gid`` is the primary or a supplementary group."""
        return gid == self.gid or gid in self.groups


#: The superuser.
ROOT = Credentials(uid=0, gid=0)

#: Shared group for controller applications (clients, daemons, slicers).
APPS_GID = 100

#: Shared group for protocol drivers (OpenFlow, middlebox, distfs servers).
DRIVERS_GID = 60

#: Where stable per-name uids land (app names hash into this range).
APP_UID_BASE = 10000
_APP_UID_SPAN = 49999

#: Driver uids live below apps, above the static system range.
DRIVER_UID_BASE = 200
_DRIVER_UID_SPAN = 499


def _stable_uid(name: str, base: int, span: int) -> int:
    """A deterministic uid for ``name`` — same name, same uid, every run."""
    return base + zlib.crc32(name.encode()) % span


def app_credentials(name: str) -> Credentials:
    """Least-privilege credentials for the application ``name`` (§5.1).

    Every app gets a distinct non-root uid (stable per name) plus
    membership in the shared ``apps`` group the yancfs schema grants
    collaboration surfaces (flows, events, hosts, views) to.
    """
    uid = _stable_uid(name, APP_UID_BASE, _APP_UID_SPAN)
    return Credentials(uid=uid, gid=APPS_GID, groups=frozenset({APPS_GID}))


def driver_credentials(name: str) -> Credentials:
    """Least-privilege credentials for the driver ``name``.

    Drivers own switch subtrees; the ``drivers`` group is what the schema
    ACLs grant switch creation and counter/event delivery rights to.
    """
    uid = _stable_uid(name, DRIVER_UID_BASE, _DRIVER_UID_SPAN)
    return Credentials(uid=uid, gid=DRIVERS_GID, groups=frozenset({DRIVERS_GID}))
