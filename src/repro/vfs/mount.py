"""Mount table and mount namespaces.

A :class:`MountNamespace` maps mountpoint directories to mounted file-system
roots.  Namespaces clone cheaply and can be *pivoted* so that an arbitrary
directory becomes ``/`` — the mechanism the reproduction uses for the
paper's section 5.3: giving a tenant application a namespace whose root is
its own network view, so the rest of ``/net`` simply does not exist for it.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.vfs.dcache import DentryCache
from repro.vfs.errors import DeviceBusy, InvalidArgument, NotADirectory
from repro.vfs.inode import DirInode, Filesystem, Inode

_ns_counter = itertools.count(1)


@dataclass
class MountEntry:
    """One mount: a file system (or bind subtree) grafted onto a directory."""

    fs: Filesystem
    root: DirInode
    mountpoint: DirInode | None  # None for the namespace root
    source: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.root, DirInode):
            raise NotADirectory(self.source, "mount root must be a directory")


class MountNamespace:
    """A per-process view of what is mounted where."""

    def __init__(self, root_fs: Filesystem, root_node: DirInode | None = None, *, name: str = "") -> None:
        self.ns_id = next(_ns_counter)
        self.name = name or f"ns{self.ns_id}"
        self.root_entry = MountEntry(fs=root_fs, root=root_node or root_fs.root, mountpoint=None, source=root_fs.fs_type)
        self._mounts: dict[int, MountEntry] = {}
        #: Per-namespace dentry cache.  Entries hold post-mount-crossing
        #: children, so every mount-table change below flushes it; clones
        #: and pivots start empty (a fresh namespace gets a fresh cache).
        self.dcache = DentryCache()

    def mounts(self) -> list[MountEntry]:
        """All non-root mounts in this namespace."""
        return list(self._mounts.values())

    def mount(self, mountpoint: Inode, fs: Filesystem, *, root: DirInode | None = None, source: str = "") -> MountEntry:
        """Graft ``fs`` (or a bind subtree ``root`` of it) onto ``mountpoint``."""
        if not isinstance(mountpoint, DirInode):
            raise NotADirectory(source, "mountpoint must be a directory")
        if id(mountpoint) in self._mounts:
            raise DeviceBusy(source, "mountpoint already in use")
        entry = MountEntry(fs=fs, root=root or fs.root, mountpoint=mountpoint, source=source or fs.fs_type)
        self._mounts[id(mountpoint)] = entry
        self.dcache.flush()
        return entry

    def bind(self, mountpoint: Inode, subtree: DirInode, *, source: str = "bind") -> MountEntry:
        """Bind-mount an existing directory onto ``mountpoint``."""
        return self.mount(mountpoint, subtree.fs, root=subtree, source=source)

    def umount(self, mountpoint: Inode) -> MountEntry:
        """Remove the mount at ``mountpoint``; raises InvalidArgument if none."""
        entry = self._mounts.pop(id(mountpoint), None)
        if entry is None:
            raise InvalidArgument(detail="not a mountpoint")
        self.dcache.flush()
        return entry

    def mount_at(self, node: Inode) -> MountEntry | None:
        """The mount whose mountpoint is ``node``, if any."""
        return self._mounts.get(id(node))

    def clone(self, *, name: str = "") -> "MountNamespace":
        """Copy this namespace (CLONE_NEWNS): same mounts, independent table."""
        ns = MountNamespace(self.root_entry.fs, self.root_entry.root, name=name)
        ns._mounts = dict(self._mounts)
        return ns

    def pivoted(self, new_root: DirInode, *, name: str = "") -> "MountNamespace":
        """A clone whose ``/`` is ``new_root`` (pivot_root + CLONE_NEWNS).

        Mounts below the new root remain visible; everything else is
        unreachable, which is the isolation property views rely on.
        """
        ns = MountNamespace(new_root.fs, new_root, name=name)
        ns._mounts = dict(self._mounts)
        return ns
