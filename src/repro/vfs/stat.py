"""File types, mode bits, and the ``stat`` result structure."""

from __future__ import annotations

import enum
from dataclasses import dataclass

# Permission bit masks (same values as the POSIX constants).
S_IRUSR = 0o400
S_IWUSR = 0o200
S_IXUSR = 0o100
S_IRGRP = 0o040
S_IWGRP = 0o020
S_IXGRP = 0o010
S_IROTH = 0o004
S_IWOTH = 0o002
S_IXOTH = 0o001
S_ISVTX = 0o1000

#: Default creation modes (before umask).
DEFAULT_FILE_MODE = 0o644
DEFAULT_DIR_MODE = 0o755

MAY_READ = 4
MAY_WRITE = 2
MAY_EXEC = 1


class FileType(enum.Enum):
    """The node types the VFS understands."""

    REGULAR = "file"
    DIRECTORY = "dir"
    SYMLINK = "symlink"

    @property
    def mode_bits(self) -> int:
        """The S_IFMT bits for this type (matches POSIX encodings)."""
        return {
            FileType.REGULAR: 0o100000,
            FileType.DIRECTORY: 0o040000,
            FileType.SYMLINK: 0o120000,
        }[self]


@dataclass(frozen=True)
class Stat:
    """The metadata returned by ``stat()``/``lstat()``."""

    ino: int
    ftype: FileType
    mode: int
    uid: int
    gid: int
    size: int
    nlink: int
    atime: float
    mtime: float
    ctime: float
    dev: int = 0

    @property
    def st_mode(self) -> int:
        """Full POSIX-style mode word (type bits | permission bits)."""
        return self.ftype.mode_bits | self.mode

    @property
    def is_dir(self) -> bool:
        """True for directories."""
        return self.ftype is FileType.DIRECTORY

    @property
    def is_symlink(self) -> bool:
        """True for symbolic links."""
        return self.ftype is FileType.SYMLINK


def format_mode(ftype: FileType, mode: int) -> str:
    """Render mode like ``ls -l`` does (``drwxr-xr-x``)."""
    type_char = {FileType.REGULAR: "-", FileType.DIRECTORY: "d", FileType.SYMLINK: "l"}[ftype]
    out = [type_char]
    for shift in (6, 3, 0):
        bits = mode >> shift & 0o7
        out.append("r" if bits & 4 else "-")
        out.append("w" if bits & 2 else "-")
        out.append("x" if bits & 1 else "-")
    return "".join(out)
