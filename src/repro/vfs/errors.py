"""POSIX-style file system errors.

Every VFS operation fails by raising an :class:`FsError` subclass carrying
the matching ``errno`` value, so applications can be written exactly like
their C counterparts (``except FileNotFound`` instead of checking
``errno == ENOENT``).
"""

from __future__ import annotations

import errno


class FsError(OSError):
    """Base class for all file system errors."""

    errno_value: int = errno.EIO

    def __init__(self, path: str = "", detail: str = "") -> None:
        self.path = path
        self.detail = detail
        message = errno.errorcode.get(self.errno_value, "EIO")
        if path:
            message += f": {path}"
        if detail:
            message += f" ({detail})"
        super().__init__(self.errno_value, message)


class FileNotFound(FsError):
    """ENOENT: no such file or directory."""

    errno_value = errno.ENOENT


class FileExists(FsError):
    """EEXIST: target already exists."""

    errno_value = errno.EEXIST


class NotADirectory(FsError):
    """ENOTDIR: a path component is not a directory."""

    errno_value = errno.ENOTDIR


class IsADirectory(FsError):
    """EISDIR: operation needs a non-directory."""

    errno_value = errno.EISDIR


class DirectoryNotEmpty(FsError):
    """ENOTEMPTY: rmdir on a non-empty directory."""

    errno_value = errno.ENOTEMPTY


class PermissionDenied(FsError):
    """EACCES: permission bits or ACL forbid the access."""

    errno_value = errno.EACCES


class NotPermitted(FsError):
    """EPERM: the operation itself is not permitted (e.g. chown by non-root)."""

    errno_value = errno.EPERM


class InvalidArgument(FsError):
    """EINVAL: malformed argument (bad name, bad value for a semantic file)."""

    errno_value = errno.EINVAL


class CrossDevice(FsError):
    """EXDEV: rename/link across file systems."""

    errno_value = errno.EXDEV


class TooManyLinks(FsError):
    """ELOOP: symbolic link loop (or nesting too deep)."""

    errno_value = errno.ELOOP


class NotSupported(FsError):
    """ENOTSUP: the file system does not implement this operation."""

    errno_value = errno.ENOTSUP


class ReadOnly(FsError):
    """EROFS: write to a read-only file system or file."""

    errno_value = errno.EROFS


class BadFileDescriptor(FsError):
    """EBADF: stale or wrong-mode file descriptor."""

    errno_value = errno.EBADF


class NoData(FsError):
    """ENODATA: extended attribute not present."""

    errno_value = errno.ENODATA


class DeviceBusy(FsError):
    """EBUSY: resource in use (e.g. unmounting a busy mount)."""

    errno_value = errno.EBUSY


class NameTooLong(FsError):
    """ENAMETOOLONG: path component exceeds the limit."""

    errno_value = errno.ENAMETOOLONG


class StaleHandle(FsError):
    """ESTALE: remote file handle no longer valid (distributed FS)."""

    errno_value = errno.ESTALE


class TimedOut(FsError):
    """ETIMEDOUT: remote operation timed out (distributed FS)."""

    errno_value = errno.ETIMEDOUT
