"""The VFS core: path resolution, permission checks, and operations.

This is the analogue of the Linux VFS layer the paper builds on: one
namespace-aware object tree under which any :class:`Filesystem` — tmpfs,
yancfs, a distributed-FS client — can be mounted, with uniform permissions,
ACLs, xattrs, symlinks, and notification.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.perf.counters import PerfCounters
from repro.vfs.cred import Credentials
from repro.vfs.errors import (
    BadFileDescriptor,
    CrossDevice,
    DeviceBusy,
    DirectoryNotEmpty,
    FileExists,
    FileNotFound,
    InvalidArgument,
    IsADirectory,
    NotADirectory,
    NotPermitted,
    PermissionDenied,
    ReadOnly,
    TooManyLinks,
)
from repro.vfs.inode import (
    DirInode,
    FileInode,
    Filesystem,
    Inode,
    SymlinkInode,
    bump_tree_epoch,
    require_dir,
    require_file,
    tree_epoch,
    validate_name,
)
from repro.vfs.memfs import MemFs
from repro.vfs.mount import MountEntry, MountNamespace
from repro.vfs.notify import EventMask, Inotify, NotifyHub
from repro.vfs.path import split_path
from repro.vfs.stat import MAY_EXEC, MAY_READ, MAY_WRITE, S_ISVTX, FileType, Stat

MAX_SYMLINK_DEPTH = 40

# open(2) flags.
O_RDONLY = 0o0
O_WRONLY = 0o1
O_RDWR = 0o2
O_CREAT = 0o100
O_EXCL = 0o200
O_TRUNC = 0o1000
O_APPEND = 0o2000
_ACCMODE = 0o3


class FileHandle:
    """An open file description: inode, flags, offset."""

    def __init__(self, vfs: "VirtualFileSystem", inode: FileInode, flags: int, cred: Credentials) -> None:
        self._vfs = vfs
        self.inode = inode
        self.flags = flags
        self.cred = cred
        self.offset = 0
        self.closed = False

    @property
    def readable(self) -> bool:
        """True when the handle was opened for reading."""
        return self.flags & _ACCMODE in (O_RDONLY, O_RDWR)

    @property
    def writable(self) -> bool:
        """True when the handle was opened for writing."""
        return self.flags & _ACCMODE in (O_WRONLY, O_RDWR)

    def _alive(self) -> None:
        if self.closed:
            raise BadFileDescriptor(detail="handle closed")

    def read(self, size: int = -1) -> bytes:
        """Read up to ``size`` bytes from the current offset (-1 = to EOF)."""
        self._alive()
        if not self.readable:
            raise BadFileDescriptor(detail="not open for reading")
        self._vfs.fanotify.check_access(self.inode, self.cred)
        if size < 0:
            size = max(0, self.inode.size - self.offset)
        data = self.inode.read(self.offset, size)
        self.offset += len(data)
        self.inode.fs.emit(self.inode, EventMask.IN_ACCESS)
        return data

    def pread(self, size: int, offset: int) -> bytes:
        """Positional read; does not move the handle offset."""
        self._alive()
        if not self.readable:
            raise BadFileDescriptor(detail="not open for reading")
        # Positional I/O must pass the same fanotify permission gate as
        # read(): FAN_ACCESS_PERM listeners see every byte access.
        self._vfs.fanotify.check_access(self.inode, self.cred)
        data = self.inode.read(offset, size)
        self.inode.fs.emit(self.inode, EventMask.IN_ACCESS)
        return data

    def write(self, data: bytes) -> int:
        """Write at the current offset (or at EOF with O_APPEND)."""
        self._alive()
        if not self.writable:
            raise BadFileDescriptor(detail="not open for writing")
        if self.inode.fs.readonly:
            raise ReadOnly(detail="read-only file system")
        if self.flags & O_APPEND:
            self.offset = self.inode.size
        written = self.inode.write(self.offset, bytes(data))
        self.offset += written
        return written

    def pwrite(self, data: bytes, offset: int) -> int:
        """Positional write; does not move the handle offset."""
        self._alive()
        if not self.writable:
            raise BadFileDescriptor(detail="not open for writing")
        if self.inode.fs.readonly:
            raise ReadOnly(detail="read-only file system")
        return self.inode.write(offset, bytes(data))

    def seek(self, offset: int) -> int:
        """Set the handle offset (absolute)."""
        self._alive()
        if offset < 0:
            raise InvalidArgument(detail="negative seek offset")
        self.offset = offset
        return offset

    def truncate(self, size: int = 0) -> None:
        """Truncate the open file."""
        self._alive()
        if not self.writable:
            raise BadFileDescriptor(detail="not open for writing")
        self.inode.truncate(size)

    def close(self) -> None:
        """Close; fires the attribute-apply hook for written-to files."""
        if self.closed:
            return
        self.closed = True
        if self.writable:
            self.inode.on_close_write(self.cred)
            self.inode.fs.emit(self.inode, EventMask.IN_CLOSE_WRITE)
        else:
            self.inode.fs.emit(self.inode, EventMask.IN_CLOSE_NOWRITE)

    def __enter__(self) -> "FileHandle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class VirtualFileSystem:
    """The kernel-side VFS: one of these per simulated host."""

    def __init__(
        self,
        *,
        clock: Callable[[], float] | None = None,
        counters: PerfCounters | None = None,
        root_fs: Filesystem | None = None,
    ) -> None:
        self.clock = clock or (lambda: 0.0)
        self.counters = counters or PerfCounters()
        self.hub = NotifyHub(self.counters)
        from repro.vfs.fanotify import FanotifyRegistry

        self.fanotify = FanotifyRegistry()
        self.root_fs = root_fs or MemFs(clock=self.clock)
        self.root_fs.hub = self.hub
        self.root_ns = MountNamespace(self.root_fs, name="init")
        # path string -> component tuple (see resolve()).
        self._parts_memo: dict[str, tuple[str, ...]] = {}

    # -- namespaces and mounts -------------------------------------------------

    def inotify(self, *, max_queued_events: int | None = None) -> Inotify:
        """Create a notification instance for an application."""
        return self.hub.instance(max_queued_events=max_queued_events)

    def mount(
        self,
        ns: MountNamespace,
        cred: Credentials,
        path: str,
        fs: Filesystem,
        *,
        root: DirInode | None = None,
        source: str = "",
    ) -> MountEntry:
        """Mount ``fs`` at ``path`` (root only)."""
        if not cred.is_root:
            raise NotPermitted(path, "mount requires root")
        mountpoint = require_dir(self._mountpoint_node(ns, cred, path), path)
        fs.hub = self.hub
        return ns.mount(mountpoint, fs, root=root, source=source)

    def _mountpoint_node(self, ns: MountNamespace, cred: Credentials, path: str) -> Inode:
        """Resolve ``path`` without crossing a mount at the final node."""
        parts = split_path(path)
        if not parts:
            return ns.root_entry.root
        parent = self._resolve_dir(ns, cred, parts[:-1], path)
        node = parent.lookup(parts[-1])
        if isinstance(node, SymlinkInode):
            return self.resolve(ns, cred, path)
        return node

    def bind_mount(self, ns: MountNamespace, cred: Credentials, source_path: str, target_path: str) -> MountEntry:
        """Bind ``source_path`` over ``target_path`` (root only)."""
        if not cred.is_root:
            raise NotPermitted(target_path, "mount requires root")
        subtree = require_dir(self.resolve(ns, cred, source_path), source_path)
        mountpoint = require_dir(self._mountpoint_node(ns, cred, target_path), target_path)
        return ns.bind(mountpoint, subtree, source=source_path)

    def umount(self, ns: MountNamespace, cred: Credentials, path: str) -> None:
        """Unmount whatever is mounted at ``path`` (root only)."""
        if not cred.is_root:
            raise NotPermitted(path, "umount requires root")
        node = self._mountpoint_node(ns, cred, path)
        ns.umount(node)

    # -- path resolution ---------------------------------------------------------

    def resolve(
        self,
        ns: MountNamespace,
        cred: Credentials,
        path: str,
        *,
        follow_last: bool = True,
    ) -> Inode:
        """Resolve ``path`` to an inode (symlinks followed; mounts crossed)."""
        # Tokenizing is pure string work, so memoize it; the tuple doubles
        # as the dentry cache's whole-path key without a copy.
        parts = self._parts_memo.get(path)
        if parts is None:
            parts = tuple(split_path(path))
            if len(self._parts_memo) >= 4096:
                self._parts_memo.clear()
            self._parts_memo[path] = parts
        return self._resolve_parts(ns, cred, parts, follow_last, path)

    def resolve_parent(self, ns: MountNamespace, cred: Credentials, path: str) -> tuple[DirInode, str]:
        """Resolve the parent directory of ``path``; return (dir, last name)."""
        parts = split_path(path)
        if not parts:
            raise InvalidArgument(path, "operation on / is not allowed")
        parent = self._resolve_dir(ns, cred, parts[:-1], path)
        return parent, validate_name(parts[-1])

    def _resolve_dir(self, ns: MountNamespace, cred: Credentials, parts: list[str], path: str) -> DirInode:
        return require_dir(self._resolve_parts(ns, cred, parts, True, path), path)

    def _resolve_parts(
        self,
        ns: MountNamespace,
        cred: Credentials,
        parts: list[str],
        follow_last: bool,
        full_path: str,
    ) -> Inode:
        """Walk ``parts`` from the namespace root: path memo, dentry cache, slow path."""
        dcache = ns.dcache
        deps: list | None = None
        key = None
        if parts and dcache.enabled:
            key = (tuple(parts), follow_last)
            entry = dcache.paths.get(key)
            if entry is not None and entry[2] is cred:
                epoch = tree_epoch()
                if entry[0] == epoch:
                    dcache.path_hits += 1
                    return entry[3]
                for dep in entry[1]:
                    node = dep[0]
                    if node.dgen != dep[1] or node.acl is not dep[2] or node.uid != dep[3] or node.gid != dep[4]:
                        del dcache.paths[key]
                        dcache.invalidations += 1
                        break
                else:
                    # Nothing this resolution depends on moved: re-stamp the
                    # entry with the current epoch and serve it.
                    dcache.paths[key] = (epoch, entry[1], cred, entry[3])
                    dcache.path_hits += 1
                    return entry[3]
            dcache.path_misses += 1
            deps = []
        stack: list[Inode] = [ns.root_entry.root]
        consumed = 0
        if parts and dcache.enabled:
            consumed = self._walk_cached(ns, cred, stack, parts, full_path, deps)
        if consumed < len(parts):
            budget = [MAX_SYMLINK_DEPTH]
            remaining = parts[consumed:] if consumed else parts
            self._walk(ns, cred, stack, remaining, follow_last, budget, full_path, deps)
        result = stack[-1]
        # Memoize the whole resolution unless a non-cacheable file system
        # poisoned the dependency list (None marker).
        if deps and None not in deps:
            dcache.store_path(key, tree_epoch(), deps, cred, result)
        return result

    def _walk_cached(
        self,
        ns: MountNamespace,
        cred: Credentials,
        stack: list[Inode],
        parts: list[str],
        full_path: str,
        deps: list | None = None,
    ) -> int:
        """Consume a prefix of ``parts`` from the namespace's dentry cache.

        Returns the number of components consumed (``stack`` is extended in
        place); the slow walk picks up from there.  Cached entries are never
        symlinks and already sit on the far side of any mount crossing, so a
        hit replaces lookup + symlink test + mount-table probe with one dict
        probe and a generation compare.  MAY_EXEC is still enforced on every
        traversed directory against the live inode — only *lookups* are
        memoized, never permissions.
        """
        dcache = ns.dcache
        entries = dcache.entries
        entries_get = entries.get
        is_root = cred.is_root
        check_access = self.check_access
        hits = 0
        index = 0
        for index, part in enumerate(parts):
            if part == "..":
                break
            current = stack[-1]
            entry = entries_get((id(current), part))
            if entry is None or entry[0] is not current:
                break
            if entry[1] != current.dgen:
                del entries[(id(current), part)]
                dcache.invalidations += 1
                break
            if current.acl is not None or not is_root:
                check_access(current, cred, MAY_EXEC, full_path)
            if deps is not None:
                deps.append((current, entry[1], current.acl, current.uid, current.gid))
            child = entry[2]
            if child is None:
                dcache.hits += hits
                dcache.neg_hits += 1
                raise FileNotFound(part)
            hits += 1
            stack.append(child)
        else:
            dcache.hits += hits
            return len(parts)
        dcache.hits += hits
        dcache.misses += 1
        return index

    def _walk(
        self,
        ns: MountNamespace,
        cred: Credentials,
        stack: list[Inode],
        parts: list[str],
        follow_last: bool,
        budget: list[int],
        full_path: str,
        deps: list | None = None,
    ) -> None:
        dcache = ns.dcache
        for index, part in enumerate(parts):
            is_last = index == len(parts) - 1
            current = stack[-1]
            cur_dir = require_dir(current, full_path)
            self.check_access(cur_dir, cred, MAY_EXEC, full_path)
            if deps is not None:
                if cur_dir.fs.cacheable:
                    deps.append((cur_dir, cur_dir.dgen, cur_dir.acl, cur_dir.uid, cur_dir.gid))
                else:
                    deps.append(None)  # poison: this resolution may not be memoized
            if part == "..":
                if len(stack) > 1:
                    stack.pop()
                continue
            try:
                child = cur_dir.lookup(part)
            except FileNotFound:
                if dcache.enabled and cur_dir.fs.cacheable:
                    dcache.store(cur_dir, part, None)
                raise
            if isinstance(child, SymlinkInode) and (not is_last or follow_last):
                budget[0] -= 1
                if budget[0] < 0:
                    raise TooManyLinks(full_path, "too many levels of symbolic links")
                target_parts = [p for p in child.target.split("/") if p and p != "."]
                if child.target.startswith("/"):
                    del stack[1:]
                self._walk(ns, cred, stack, target_parts, True, budget, full_path, deps)
                continue
            mount = ns.mount_at(child)
            while mount is not None:  # cross stacked mounts to the topmost root
                child = mount.root
                mount = ns.mount_at(child)
            stack.append(child)
            # Symlinks are never cached: whether they are followed depends
            # on position and follow_last, which the key cannot express.
            if dcache.enabled and cur_dir.fs.cacheable and not isinstance(child, SymlinkInode):
                dcache.store(cur_dir, part, child)

    # -- permissions ---------------------------------------------------------------

    def check_access(self, inode: Inode, cred: Credentials, want: int, path: str = "") -> None:
        """Raise PermissionDenied unless ``cred`` may access ``inode``."""
        if inode.acl is not None:
            if not inode.acl.check(cred, inode.uid, inode.gid, want):
                raise PermissionDenied(path, "ACL forbids access")
            return
        if cred.is_root:
            return
        if cred.uid == inode.uid:
            bits = inode.mode >> 6
        elif cred.in_group(inode.gid):
            bits = inode.mode >> 3
        else:
            bits = inode.mode
        if bits & 7 & want != want:
            raise PermissionDenied(path)

    def _check_write_dir(self, parent: DirInode, cred: Credentials, path: str) -> None:
        if parent.fs.readonly:
            raise ReadOnly(path, "read-only file system")
        self.check_access(parent, cred, MAY_WRITE | MAY_EXEC, path)

    def _check_sticky(self, parent: DirInode, node: Inode, cred: Credentials, path: str) -> None:
        if parent.mode & S_ISVTX and not cred.is_root and cred.uid not in (node.uid, parent.uid):
            raise NotPermitted(path, "sticky directory")

    # -- directory operations -----------------------------------------------------

    def mkdir(self, ns: MountNamespace, cred: Credentials, path: str, mode: int = 0o755) -> DirInode:
        """Create a directory (semantic file systems may auto-populate it)."""
        parent, name = self.resolve_parent(ns, cred, path)
        if parent.has_child(name):
            raise FileExists(path)
        self._check_write_dir(parent, cred, path)
        parent.may_create(name, FileType.DIRECTORY, cred)
        node = parent.child_factory(name, FileType.DIRECTORY, cred)
        node.mode = mode & 0o7777
        node.uid, node.gid = cred.uid, cred.gid
        parent.attach(name, node)
        return require_dir(node, path)

    def rmdir(self, ns: MountNamespace, cred: Credentials, path: str) -> None:
        """Remove a directory.

        Plain directories must be empty (ENOTEMPTY); yanc object
        directories opt in to recursive removal (paper section 3.2).
        """
        parent, name = self.resolve_parent(ns, cred, path)
        node = parent.lookup(name)
        target = require_dir(node, path)
        if ns.mount_at(node) is not None:
            raise DeviceBusy(path, "is a mountpoint")
        self._check_write_dir(parent, cred, path)
        self._check_sticky(parent, node, cred, path)
        parent.may_remove(name, node, cred)
        if not target.is_empty():
            if not target.recursive_rmdir_ok():
                raise DirectoryNotEmpty(path)
            self._remove_subtree(target)
        parent.detach(name)

    def _remove_subtree(self, node: DirInode) -> None:
        for name, child in list(node.children()):
            if isinstance(child, DirInode):
                self._remove_subtree(child)
            node.detach(name)

    def readdir(self, ns: MountNamespace, cred: Credentials, path: str) -> list[str]:
        """List directory entries (requires read permission)."""
        node = require_dir(self.resolve(ns, cred, path), path)
        self.check_access(node, cred, MAY_READ, path)
        return node.names()

    def scandir(self, ns: MountNamespace, cred: Credentials, path: str) -> list[tuple[str, Stat]]:
        """readdir + per-entry lstat metadata, resolving the directory once.

        Entries that are mountpoints report the mounted root's stat (as
        ``walk`` does); symlinks report their own stat (lstat semantics).
        """
        node = require_dir(self.resolve(ns, cred, path), path)
        self.check_access(node, cred, MAY_READ, path)
        out: list[tuple[str, Stat]] = []
        for name, child in node.children():
            mount = ns.mount_at(child)
            target = mount.root if mount is not None else child
            out.append((name, target.stat()))
        return out

    # -- file operations ---------------------------------------------------------

    def open(
        self,
        ns: MountNamespace,
        cred: Credentials,
        path: str,
        flags: int = O_RDONLY,
        mode: int = 0o644,
    ) -> FileHandle:
        """Open (optionally creating) a regular file."""
        created = False
        try:
            node = self.resolve(ns, cred, path)
        except FileNotFound:
            if not flags & O_CREAT:
                raise
            parent, name = self.resolve_parent(ns, cred, path)
            if parent.has_child(name):
                # The final component resolved to a dangling symlink.
                raise FileExists(path, "dangling symlink in the way")
            self._check_write_dir(parent, cred, path)
            parent.may_create(name, FileType.REGULAR, cred)
            node = parent.child_factory(name, FileType.REGULAR, cred)
            node.mode = mode & 0o7777
            node.uid, node.gid = cred.uid, cred.gid
            parent.attach(name, node)
            created = True
        else:
            if flags & O_CREAT and flags & O_EXCL:
                raise FileExists(path)
        inode = require_file(node, path)
        accmode = flags & _ACCMODE
        if not created:
            if accmode in (O_RDONLY, O_RDWR):
                self.check_access(inode, cred, MAY_READ, path)
            if accmode in (O_WRONLY, O_RDWR):
                self.check_access(inode, cred, MAY_WRITE, path)
        if accmode in (O_WRONLY, O_RDWR) and inode.fs.readonly:
            raise ReadOnly(path, "read-only file system")
        # fanotify permission events: a listener may veto this open (§5.2)
        self.fanotify.check_open(inode, cred, writable=accmode in (O_WRONLY, O_RDWR))
        inode.fs.emit(inode, EventMask.IN_OPEN)
        if flags & O_TRUNC and accmode in (O_WRONLY, O_RDWR) and not created:
            inode.truncate(0)
        return FileHandle(self, inode, flags, cred)

    def read_file(self, ns: MountNamespace, cred: Credentials, path: str) -> bytes:
        """Convenience: open-read-close."""
        with self.open(ns, cred, path, O_RDONLY) as handle:
            return handle.read()

    def write_file(self, ns: MountNamespace, cred: Credentials, path: str, data: bytes, *, append: bool = False) -> int:
        """Convenience: open-write-close (creating or truncating)."""
        flags = O_WRONLY | O_CREAT | (O_APPEND if append else O_TRUNC)
        with self.open(ns, cred, path, flags) as handle:
            return handle.write(data)

    def truncate(self, ns: MountNamespace, cred: Credentials, path: str, size: int) -> None:
        """Truncate by path."""
        inode = require_file(self.resolve(ns, cred, path), path)
        self.check_access(inode, cred, MAY_WRITE, path)
        if inode.fs.readonly:
            raise ReadOnly(path)
        inode.truncate(size)

    def unlink(self, ns: MountNamespace, cred: Credentials, path: str) -> None:
        """Remove a non-directory."""
        parent, name = self.resolve_parent(ns, cred, path)
        node = parent.lookup(name)
        if isinstance(node, DirInode):
            raise IsADirectory(path)
        self._check_write_dir(parent, cred, path)
        self._check_sticky(parent, node, cred, path)
        parent.may_remove(name, node, cred)
        parent.detach(name)

    # -- links -------------------------------------------------------------------

    def symlink(self, ns: MountNamespace, cred: Credentials, target: str, linkpath: str) -> SymlinkInode:
        """Create a symbolic link at ``linkpath`` pointing to ``target``."""
        parent, name = self.resolve_parent(ns, cred, linkpath)
        if parent.has_child(name):
            raise FileExists(linkpath)
        self._check_write_dir(parent, cred, linkpath)
        parent.may_create(name, FileType.SYMLINK, cred)
        node = parent.fs.make_symlink(target, uid=cred.uid, gid=cred.gid)
        parent.attach(name, node)
        return node

    def readlink(self, ns: MountNamespace, cred: Credentials, path: str) -> str:
        """Read a symlink's target."""
        node = self.resolve(ns, cred, path, follow_last=False)
        if not isinstance(node, SymlinkInode):
            raise InvalidArgument(path, "not a symlink")
        return node.target

    def link(self, ns: MountNamespace, cred: Credentials, oldpath: str, newpath: str) -> None:
        """Create a hard link (non-directories, same file system)."""
        node = self.resolve(ns, cred, oldpath)
        if isinstance(node, DirInode):
            raise NotPermitted(oldpath, "cannot hard-link directories")
        parent, name = self.resolve_parent(ns, cred, newpath)
        if node.fs is not parent.fs:
            raise CrossDevice(newpath)
        if parent.has_child(name):
            raise FileExists(newpath)
        self._check_write_dir(parent, cred, newpath)
        parent.may_create(name, node.ftype, cred)
        parent.attach(name, node)

    # -- rename --------------------------------------------------------------------

    def rename(self, ns: MountNamespace, cred: Credentials, oldpath: str, newpath: str) -> None:
        """POSIX rename, with IN_MOVED_FROM/IN_MOVED_TO event pairing."""
        old_parent, old_name = self.resolve_parent(ns, cred, oldpath)
        new_parent, new_name = self.resolve_parent(ns, cred, newpath)
        node = old_parent.lookup(old_name)
        if node.fs is not new_parent.fs:
            raise CrossDevice(newpath, "rename across file systems")
        if ns.mount_at(node) is not None:
            raise DeviceBusy(oldpath, "is a mountpoint")
        if old_parent is new_parent and old_name == new_name:
            return
        if isinstance(node, DirInode) and self._is_same_or_descendant(new_parent, node):
            raise InvalidArgument(newpath, "cannot move a directory into itself")
        self._check_write_dir(old_parent, cred, oldpath)
        self._check_write_dir(new_parent, cred, newpath)
        self._check_sticky(old_parent, node, cred, oldpath)
        old_parent.may_rename_from(old_name, node, cred)
        new_parent.may_rename_into(new_name, node, cred)
        if new_parent.has_child(new_name):
            existing = new_parent.lookup(new_name)
            if existing is node:
                return
            if isinstance(existing, DirInode):
                if not isinstance(node, DirInode):
                    raise IsADirectory(newpath)
                if not existing.is_empty():
                    raise DirectoryNotEmpty(newpath)
            elif isinstance(node, DirInode):
                raise NotADirectory(newpath)
            self._check_sticky(new_parent, existing, cred, newpath)
            new_parent.may_remove(new_name, existing, cred)
            new_parent.detach(new_name)
        cookie = self.hub.next_cookie()
        old_parent.detach(old_name, emit_mask=int(EventMask.IN_MOVED_FROM), cookie=cookie)
        new_parent.attach(new_name, node, emit_mask=int(EventMask.IN_MOVED_TO), cookie=cookie)
        node.fs.emit(node, EventMask.IN_MOVE_SELF)

    @staticmethod
    def _is_same_or_descendant(candidate: DirInode, ancestor: DirInode) -> bool:
        seen = set()
        node: Inode = candidate
        while True:
            if node is ancestor:
                return True
            if id(node) in seen or not node.dentries:
                return False
            seen.add(id(node))
            node = next(iter(node.dentries))[0]

    # -- metadata ------------------------------------------------------------------

    def stat(self, ns: MountNamespace, cred: Credentials, path: str) -> Stat:
        """stat(2): follows symlinks."""
        return self.resolve(ns, cred, path).stat()

    def lstat(self, ns: MountNamespace, cred: Credentials, path: str) -> Stat:
        """lstat(2): does not follow a final symlink."""
        return self.resolve(ns, cred, path, follow_last=False).stat()

    def exists(self, ns: MountNamespace, cred: Credentials, path: str) -> bool:
        """True when ``path`` resolves."""
        try:
            self.resolve(ns, cred, path)
        except (FileNotFound, NotADirectory):
            return False
        return True

    def chmod(self, ns: MountNamespace, cred: Credentials, path: str, mode: int) -> None:
        """Change permission bits (owner or root)."""
        node = self.resolve(ns, cred, path)
        if not cred.is_root and cred.uid != node.uid:
            raise NotPermitted(path, "chmod by non-owner")
        node.mode = mode & 0o7777
        node.ctime = node.fs.now()
        node.fs.emit(node, EventMask.IN_ATTRIB)

    def chown(self, ns: MountNamespace, cred: Credentials, path: str, uid: int, gid: int) -> None:
        """Change ownership (root; owners may change group to one of theirs)."""
        node = self.resolve(ns, cred, path)
        if cred.is_root:
            node.uid, node.gid = uid, gid
        elif cred.uid == node.uid and uid == node.uid and cred.in_group(gid):
            node.gid = gid
        else:
            raise NotPermitted(path, "chown requires root")
        bump_tree_epoch()  # ownership feeds ACL checks; wake the path memo
        node.ctime = node.fs.now()
        node.fs.emit(node, EventMask.IN_ATTRIB)

    def set_acl(self, ns: MountNamespace, cred: Credentials, path: str, acl) -> None:
        """Attach a POSIX ACL (owner or root)."""
        node = self.resolve(ns, cred, path)
        if not cred.is_root and cred.uid != node.uid:
            raise NotPermitted(path, "setfacl by non-owner")
        node.acl = acl
        bump_tree_epoch()  # ACL rebound; path-memo entries must revalidate
        node.ctime = node.fs.now()
        node.fs.emit(node, EventMask.IN_ATTRIB)

    # -- extended attributes ----------------------------------------------------------

    def setxattr(self, ns: MountNamespace, cred: Credentials, path: str, name: str, value: bytes) -> None:
        """Set an extended attribute (needs write access)."""
        node = self.resolve(ns, cred, path)
        self.check_access(node, cred, MAY_WRITE, path)
        node.set_xattr(name, value)
        node.fs.emit(node, EventMask.IN_ATTRIB)

    def getxattr(self, ns: MountNamespace, cred: Credentials, path: str, name: str) -> bytes:
        """Get an extended attribute (needs read access)."""
        node = self.resolve(ns, cred, path)
        self.check_access(node, cred, MAY_READ, path)
        return node.get_xattr(name)

    def listxattr(self, ns: MountNamespace, cred: Credentials, path: str) -> list[str]:
        """List extended attribute names."""
        node = self.resolve(ns, cred, path)
        self.check_access(node, cred, MAY_READ, path)
        return node.list_xattrs()

    def removexattr(self, ns: MountNamespace, cred: Credentials, path: str, name: str) -> None:
        """Remove an extended attribute."""
        node = self.resolve(ns, cred, path)
        self.check_access(node, cred, MAY_WRITE, path)
        node.remove_xattr(name)
        node.fs.emit(node, EventMask.IN_ATTRIB)

    # -- traversal helpers -------------------------------------------------------------

    def walk(self, ns: MountNamespace, cred: Credentials, path: str) -> Iterator[tuple[str, list[str], list[str]]]:
        """os.walk-style traversal yielding (dirpath, dirnames, filenames)."""
        node = require_dir(self.resolve(ns, cred, path), path)
        base = "/" + "/".join(split_path(path))
        stack: list[tuple[str, DirInode]] = [(base, node)]
        while stack:
            dirpath, dirnode = stack.pop(0)
            dirnames, filenames = [], []
            for name, child in dirnode.children():
                mount = ns.mount_at(child)
                target = mount.root if mount is not None else child
                if isinstance(target, DirInode):
                    dirnames.append(name)
                    child_path = dirpath.rstrip("/") + "/" + name
                    stack.append((child_path, target))
                else:
                    filenames.append(name)
            yield dirpath, dirnames, filenames
