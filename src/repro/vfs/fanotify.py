"""fanotify-style blocking permission events.

Section 5.2 names both Linux fsnotify APIs: inotify (after-the-fact
events, :mod:`repro.vfs.notify`) and fanotify.  What fanotify adds is
*permission events*: a privileged listener is consulted synchronously
before an open proceeds and may deny it.  That gives yanc deployments a
hook the paper's security story (§5.1) wants but mode bits cannot
express — e.g. "no process may open flow files for writing during the
change freeze", enforced by an ordinary monitoring process.

Scope: FAN_OPEN_PERM / FAN_ACCESS_PERM equivalents, mark-by-inode with
optional subtree ("mount mark") semantics.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.vfs.cred import Credentials
from repro.vfs.errors import InvalidArgument, NotPermitted

if TYPE_CHECKING:
    from repro.vfs.inode import Inode


class FanMask(enum.IntFlag):
    """Permission-event classes (names follow <linux/fanotify.h>)."""

    FAN_OPEN_PERM = 0x1
    FAN_ACCESS_PERM = 0x2
    FAN_OPEN_WRITE_PERM = 0x4  # this repo's addition: write-opens only


@dataclass(frozen=True)
class FanEvent:
    """What a listener sees when asked for a verdict."""

    mask: FanMask
    inode: "Inode"
    cred: Credentials
    writable: bool


Verdict = bool  # True = allow, False = deny
Listener = Callable[[FanEvent], Verdict]


class _Mark:
    def __init__(self, inode: "Inode", mask: FanMask, subtree: bool) -> None:
        self.inode = inode
        self.mask = mask
        self.subtree = subtree


class FanotifyGroup:
    """One listener's set of marks (``fanotify_init`` + marks).

    The listener callback runs synchronously inside the open path —
    exactly fanotify's contract — so it must be fast and must not touch
    the file being opened (classic fanotify deadlock, avoided here by the
    listener receiving the inode, not a path to re-open).
    """

    def __init__(self, registry: "FanotifyRegistry", listener: Listener) -> None:
        self._registry = registry
        self.listener = listener
        self._marks: list[_Mark] = []
        self.events_seen = 0
        self.denials = 0

    def mark(self, inode: "Inode", mask: FanMask, *, subtree: bool = False) -> None:
        """Watch ``inode`` (or its whole subtree) for permission events."""
        if not mask:
            raise InvalidArgument(detail="empty fanotify mask")
        self._marks.append(_Mark(inode, mask, subtree))

    def close(self) -> None:
        """Remove this group; pending verdicts are implicitly allowed."""
        self._registry._groups.discard(self)
        self._marks.clear()

    # -- registry side --------------------------------------------------------------

    def _matches(self, inode: "Inode", mask: FanMask) -> bool:
        for mark in self._marks:
            if not mark.mask & mask:
                continue
            if mark.inode is inode:
                return True
            if mark.subtree and _is_ancestor(mark.inode, inode):
                return True
        return False

    def _ask(self, event: FanEvent) -> Verdict:
        self.events_seen += 1
        verdict = self.listener(event)
        if not verdict:
            self.denials += 1
        return verdict


def _is_ancestor(ancestor: "Inode", node: "Inode") -> bool:
    seen: set[int] = set()
    current = node
    while True:
        if current is ancestor:
            return True
        if id(current) in seen or not current.dentries:
            return False
        seen.add(id(current))
        current = next(iter(current.dentries))[0]


class FanotifyRegistry:
    """All fanotify groups of one VFS; consulted by the open path."""

    def __init__(self) -> None:
        self._groups: set[FanotifyGroup] = set()

    def group(self, listener: Listener) -> FanotifyGroup:
        """fanotify_init: create a group with a verdict callback."""
        group = FanotifyGroup(self, listener)
        self._groups.add(group)
        return group

    def check_open(self, inode: "Inode", cred: Credentials, *, writable: bool) -> None:
        """Consult every interested group; any deny blocks the open."""
        if not self._groups:
            return
        mask = FanMask.FAN_OPEN_PERM
        if writable:
            mask |= FanMask.FAN_OPEN_WRITE_PERM
        for group in list(self._groups):
            if not group._matches(inode, mask):
                continue
            event = FanEvent(mask=mask, inode=inode, cred=cred, writable=writable)
            if not group._ask(event):
                raise NotPermitted(detail="denied by fanotify listener")

    def check_access(self, inode: "Inode", cred: Credentials) -> None:
        """FAN_ACCESS_PERM: consulted on reads of marked files."""
        if not self._groups:
            return
        for group in list(self._groups):
            if not group._matches(inode, FanMask.FAN_ACCESS_PERM):
                continue
            event = FanEvent(mask=FanMask.FAN_ACCESS_PERM, inode=inode, cred=cred, writable=False)
            if not group._ask(event):
                raise NotPermitted(detail="denied by fanotify listener")
