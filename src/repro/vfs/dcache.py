"""The dentry cache: memoized path-component lookups, per mount namespace.

Every syscall re-walks its path component by component through
``VirtualFileSystem._walk``, so on hot yanc paths (``/net/switches/<s>/
flows/<f>/...``) the §8.1 syscall-cost story was dominated by redundant
lookups rather than the kernel-crossing cost the paper measures.  This
module adds the Linux-style fix: a per-:class:`~repro.vfs.mount.
MountNamespace` cache mapping ``(parent inode id, component name)`` to the
child inode the walk would have produced (after mount crossing), plus
*negative* entries recording that a name was absent.

Correctness rests on two invalidation mechanisms:

* **Directory generations** — every :class:`~repro.vfs.inode.DirInode`
  carries a ``dgen`` counter bumped by ``attach``/``detach``, the two choke
  points through which every create, unlink, rmdir, symlink, link, and
  rename mutates a directory.  A cache entry records the parent's ``dgen``
  at store time and is dead the moment the parent changes — in *every*
  namespace sharing that inode tree, with no cross-namespace bookkeeping.
* **Namespace flushes** — mount table changes (``mount``/``umount``/
  ``bind``) flush the owning namespace's cache, because entries hold
  post-mount-crossing children.  Namespace clones and pivots start with an
  empty cache.

Entries hold a strong reference to the parent directory, which makes the
``id(parent)`` key collision-free: a cached parent cannot be garbage
collected (and its id reused) while its entry lives.  The cache is bounded
(FIFO eviction) so detached subtrees are only pinned temporarily.

Permission data is never cached by the component layer: the resolver
re-checks MAY_EXEC on every traversed directory against the live inode, so
``chmod``/``chown``/``setfacl`` need no invalidation hooks there.

On top of the component entries sits a **whole-path memo** (``paths``):
``(components tuple, follow_last) -> (epoch, deps, cred, result)``.  A
memoized resolution is served in O(1) when the global tree epoch
(:func:`~repro.vfs.inode.tree_epoch`, bumped by every attach/detach and
every permission change anywhere) has not moved since the entry was
validated — the seqlock trick Linux plays with ``rename_lock``.  When the
epoch *has* moved, ``deps`` — one ``(dir, dgen, acl, uid, gid)`` record per
directory the original walk traversed — is re-checked precisely: any
directory whose generation, ACL object, or ownership changed kills the
entry, otherwise the entry is re-stamped with the current epoch.  Because
:class:`~repro.vfs.acl.Acl` is frozen and only ever *rebound* on an inode,
identity comparison is an exact permission-change detector; entries are
additionally keyed to the exact ``Credentials`` object they were resolved
under, so a hit can never leak a resolution across principals.

File systems with dynamic directory semantics (the distributed-FS client
refreshes directory contents over RPC inside ``lookup``) opt out via
``Filesystem.cacheable = False``; the walk never stores entries under
their directories.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.perf.counters import PerfCounters
    from repro.vfs.inode import DirInode, Inode

#: Default entry bound; mirrors the spirit of Linux's bounded dcache.
DEFAULT_CAPACITY = 32768

#: Counter names published into :class:`~repro.perf.counters.PerfCounters`.
_COUNTER_FIELDS = (
    "hits",
    "neg_hits",
    "misses",
    "stores",
    "invalidations",
    "evictions",
    "flushes",
    "path_hits",
    "path_misses",
)


class DentryCache:
    """A bounded ``(parent id, name) -> child`` cache with negative entries.

    Entry values are ``(parent, parent_dgen, child)`` tuples; ``child`` is
    ``None`` for a negative entry.  An entry is valid only while the stored
    parent is the same object *and* its ``dgen`` is unchanged.
    """

    __slots__ = (
        "capacity",
        "enabled",
        "entries",
        "paths",
        "hits",
        "neg_hits",
        "misses",
        "stores",
        "invalidations",
        "evictions",
        "flushes",
        "path_hits",
        "path_misses",
        "_published",
    )

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self.capacity = capacity
        self.enabled = True
        self.entries: dict[tuple[int, str], tuple["DirInode", int, "Inode | None"]] = {}
        #: Whole-path memo: (parts tuple, follow_last) -> (epoch, deps, cred,
        #: result).  See the module docstring for the validation protocol.
        self.paths: dict = {}
        self.hits = 0
        self.neg_hits = 0
        self.misses = 0
        self.stores = 0
        self.invalidations = 0
        self.evictions = 0
        self.flushes = 0
        self.path_hits = 0
        self.path_misses = 0
        self._published: dict[str, int] = {}

    def __len__(self) -> int:
        return len(self.entries)

    def store(self, parent: "DirInode", name: str, child: "Inode | None") -> None:
        """Record that ``name`` under ``parent`` resolves to ``child``.

        ``child`` is the post-mount-crossing inode the walk produced, or
        ``None`` to record a confirmed absence (negative entry).
        """
        entries = self.entries
        if len(entries) >= self.capacity:
            entries.pop(next(iter(entries)))
            self.evictions += 1
        entries[(id(parent), name)] = (parent, parent.dgen, child)
        self.stores += 1

    def lookup(self, parent: "DirInode", name: str) -> tuple["DirInode", int, "Inode | None"] | None:
        """Return the live entry for ``(parent, name)``, or None.

        Stale entries (parent ``dgen`` moved on) are dropped and counted as
        invalidations.  This is the out-of-line twin of the inlined fast
        path in ``VirtualFileSystem._walk_cached``; tests use it to inspect
        cache state without resolving.
        """
        key = (id(parent), name)
        entry = self.entries.get(key)
        if entry is None or entry[0] is not parent:
            return None
        if entry[1] != parent.dgen:
            del self.entries[key]
            self.invalidations += 1
            return None
        return entry

    def store_path(self, key, epoch: int, deps, cred, result) -> None:
        """Memoize a complete successful resolution.

        ``deps`` is the ordered list of ``(dir, dgen, acl, uid, gid)``
        records for every directory the walk traversed; the entry is valid
        while the tree epoch stands still or every dep re-checks clean.
        """
        paths = self.paths
        if len(paths) >= self.capacity:
            paths.pop(next(iter(paths)))
            self.evictions += 1
        paths[key] = (epoch, deps, cred, result)

    def invalidate(self, parent: "DirInode", name: str) -> None:
        """Drop the entry for ``(parent, name)`` if present."""
        if self.entries.pop((id(parent), name), None) is not None:
            self.invalidations += 1

    def flush(self) -> None:
        """Drop every entry (mount table changed under this namespace)."""
        dropped = len(self.entries) + len(self.paths)
        self.entries.clear()
        self.paths.clear()
        self.invalidations += dropped
        self.flushes += 1

    def stats(self) -> dict[str, int]:
        """Current counter values plus the live entry count."""
        out = {field: getattr(self, field) for field in _COUNTER_FIELDS}
        out["entries"] = len(self.entries)
        out["path_entries"] = len(self.paths)
        return out

    def publish(self, counters: "PerfCounters", prefix: str = "dcache") -> None:
        """Push counter deltas since the last publish into ``counters``.

        Exposes hit/miss/invalidation counts through the same
        :class:`~repro.perf.counters.PerfCounters` registry the benchmarks
        report, without paying a counter update per path component on the
        hot path.
        """
        for field in _COUNTER_FIELDS:
            value = getattr(self, field)
            delta = value - self._published.get(field, 0)
            if delta:
                counters.add(f"{prefix}.{field}", delta)
            self._published[field] = value
