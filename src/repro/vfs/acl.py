"""POSIX-style access control lists.

Section 5.1 of the paper points at the VFS layer's "basic Unix permissions,
access control lists (ACLs), and extended attributes" as the mechanism for
fine-grained control of network resources.  This module implements the
POSIX.1e access-check algorithm (simplified: no default/inherited ACLs):

1. root is always allowed;
2. a ``user::`` / ``USER_OBJ`` entry applies to the owner;
3. a named ``user:<uid>`` entry applies to that uid (masked);
4. the owning group / named groups apply if any grants the bits (masked);
5. ``other::`` applies to everyone else.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.vfs.cred import Credentials
from repro.vfs.errors import InvalidArgument


class AclTag(enum.Enum):
    """The POSIX.1e entry tags we support."""

    USER_OBJ = "user_obj"  # the owning user (user::)
    USER = "user"  # a named user (user:<uid>:)
    GROUP_OBJ = "group_obj"  # the owning group (group::)
    GROUP = "group"  # a named group (group:<gid>:)
    MASK = "mask"  # upper bound for named users and all groups
    OTHER = "other"  # everyone else


@dataclass(frozen=True)
class AclEntry:
    """One ACL entry: a tag, an optional qualifier, and rwx permission bits."""

    tag: AclTag
    perms: int
    qualifier: int | None = None

    def __post_init__(self) -> None:
        if not 0 <= self.perms <= 7:
            raise InvalidArgument(detail=f"ACL perms must be 0..7, got {self.perms}")
        needs_qualifier = self.tag in (AclTag.USER, AclTag.GROUP)
        if needs_qualifier and self.qualifier is None:
            raise InvalidArgument(detail=f"{self.tag.value} entry requires a qualifier")
        if not needs_qualifier and self.qualifier is not None:
            raise InvalidArgument(detail=f"{self.tag.value} entry takes no qualifier")


@dataclass(frozen=True)
class Acl:
    """An ordered set of ACL entries."""

    entries: tuple[AclEntry, ...]

    @classmethod
    def from_mode(cls, mode: int) -> "Acl":
        """The minimal ACL equivalent to plain mode bits."""
        return cls(
            entries=(
                AclEntry(AclTag.USER_OBJ, mode >> 6 & 7),
                AclEntry(AclTag.GROUP_OBJ, mode >> 3 & 7),
                AclEntry(AclTag.OTHER, mode & 7),
            )
        )

    def _mask(self) -> int:
        for entry in self.entries:
            if entry.tag is AclTag.MASK:
                return entry.perms
        return 7

    def check(self, cred: Credentials, owner_uid: int, owner_gid: int, want: int) -> bool:
        """POSIX.1e access check: does ``cred`` get all bits in ``want``?"""
        if cred.is_root:
            return True
        mask = self._mask()
        # 1. owning user.
        if cred.uid == owner_uid:
            for entry in self.entries:
                if entry.tag is AclTag.USER_OBJ:
                    return entry.perms & want == want
            return False
        # 2. named user (masked).
        for entry in self.entries:
            if entry.tag is AclTag.USER and entry.qualifier == cred.uid:
                return entry.perms & mask & want == want
        # 3. owning group + named groups: allowed if any matching entry grants.
        group_matched = False
        for entry in self.entries:
            if entry.tag is AclTag.GROUP_OBJ and cred.in_group(owner_gid):
                group_matched = True
                if entry.perms & mask & want == want:
                    return True
            elif entry.tag is AclTag.GROUP and entry.qualifier is not None and cred.in_group(entry.qualifier):
                group_matched = True
                if entry.perms & mask & want == want:
                    return True
        if group_matched:
            return False
        # 4. other.
        for entry in self.entries:
            if entry.tag is AclTag.OTHER:
                return entry.perms & want == want
        return False

    def to_text(self) -> str:
        """Render in getfacl-like short text (``u::rwx,g:100:r-x,...``)."""
        parts = []
        for entry in self.entries:
            tag = {
                AclTag.USER_OBJ: "u:",
                AclTag.USER: f"u:{entry.qualifier}:",
                AclTag.GROUP_OBJ: "g:",
                AclTag.GROUP: f"g:{entry.qualifier}:",
                AclTag.MASK: "m:",
                AclTag.OTHER: "o:",
            }[entry.tag]
            rwx = ("r" if entry.perms & 4 else "-") + ("w" if entry.perms & 2 else "-") + ("x" if entry.perms & 1 else "-")
            parts.append(tag + rwx)
        return ",".join(parts)

    @classmethod
    def from_text(cls, text: str) -> "Acl":
        """Parse the format produced by :meth:`to_text`."""
        entries = []
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            fields = part.split(":")
            if len(fields) == 2:
                kind, rwx = fields
                qualifier = None
            elif len(fields) == 3:
                kind, qual_text, rwx = fields
                qualifier = int(qual_text) if qual_text else None
            else:
                raise InvalidArgument(detail=f"malformed ACL entry: {part!r}")
            perms = 0
            for ch in rwx:
                if ch == "r":
                    perms |= 4
                elif ch == "w":
                    perms |= 2
                elif ch == "x":
                    perms |= 1
                elif ch != "-":
                    raise InvalidArgument(detail=f"bad permission char {ch!r} in {part!r}")
            tag = {
                ("u", True): AclTag.USER,
                ("u", False): AclTag.USER_OBJ,
                ("g", True): AclTag.GROUP,
                ("g", False): AclTag.GROUP_OBJ,
                ("m", False): AclTag.MASK,
                ("o", False): AclTag.OTHER,
            }.get((kind, qualifier is not None))
            if tag is None:
                raise InvalidArgument(detail=f"malformed ACL entry: {part!r}")
            entries.append(AclEntry(tag, perms, qualifier))
        return cls(entries=tuple(entries))
