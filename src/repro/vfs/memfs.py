"""tmpfs: the plain in-memory file system.

This is the reference :class:`~repro.vfs.inode.Filesystem` with no semantic
behaviour — the root file system of every simulated host, and the substrate
regular applications write their own state to.
"""

from __future__ import annotations

from repro.vfs.inode import Filesystem


class MemFs(Filesystem):
    """An ordinary read-write in-memory file system."""

    fs_type = "tmpfs"
