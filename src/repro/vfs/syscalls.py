"""The metered syscall facade: what an application process sees.

Applications never touch :class:`~repro.vfs.vfs.VirtualFileSystem` directly;
they hold a :class:`Syscalls` object that carries their credentials, mount
namespace, working directory, and file-descriptor table, and meters every
call through a :class:`~repro.perf.meter.SyscallMeter`.  This boundary is
what makes section 8.1's syscall/context-switch accounting exact: one
``Syscalls`` method call == one system call.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.perf.meter import SyscallMeter
from repro.vfs.acl import Acl
from repro.vfs.cred import ROOT, Credentials
from repro.vfs.errors import BadFileDescriptor, InvalidArgument
from repro.vfs.inode import Filesystem
from repro.vfs.mount import MountNamespace
from repro.vfs.notify import EventMask, Inotify, NotifyEvent
from repro.vfs.path import clean, join, normalize
from repro.vfs.poll import EPOLL_CTL_ADD, EPOLL_CTL_DEL, Epoll
from repro.vfs.stat import Stat
from repro.vfs.vfs import (
    O_APPEND,
    O_CREAT,
    O_EXCL,
    O_RDONLY,
    O_RDWR,
    O_TRUNC,
    O_WRONLY,
    FileHandle,
    VirtualFileSystem,
)

if TYPE_CHECKING:
    from repro.vfs.uring import IoUring

__all__ = [
    "Syscalls",
    "O_APPEND",
    "O_CREAT",
    "O_EXCL",
    "O_RDONLY",
    "O_RDWR",
    "O_TRUNC",
    "O_WRONLY",
]


class Syscalls:
    """A process's system-call interface to one VFS."""

    def __init__(
        self,
        vfs: VirtualFileSystem,
        *,
        cred: Credentials = ROOT,
        ns: MountNamespace | None = None,
        meter: SyscallMeter | None = None,
        cwd: str = "/",
    ) -> None:
        self.vfs = vfs
        self.cred = cred
        self.ns = ns or vfs.root_ns
        self.meter = meter or SyscallMeter()
        self._cwd = cwd
        self._fds: dict[int, FileHandle] = {}
        self._next_fd = 3
        #: Owning-process identity, stamped by the process table at
        #: registration; 0/"" for bare contexts (test harnesses, shells).
        #: Diagnostics only (yancrace names racing parties with these).
        self.owner_pid = 0
        self.owner_name = ""
        #: Lexical (cwd, path) -> absolute-path memo.  _abspath is a pure
        #: string function, so the memo needs no invalidation — only a size
        #: bound against pathological workloads.
        self._abs_memo: dict[tuple[str, str], str] = {}

    def spawn(
        self,
        *,
        cred: Credentials | None = None,
        ns: MountNamespace | None = None,
        meter: SyscallMeter | None = None,
        cwd: str | None = None,
    ) -> "Syscalls":
        """Fork-like: a new process context on the same VFS.

        The child gets its own fd table and (by default) its own meter;
        credentials, namespace, and cwd are inherited unless overridden.
        """
        return Syscalls(
            self.vfs,
            cred=cred or self.cred,
            ns=ns or self.ns,
            meter=meter or SyscallMeter(model=self.meter.model),
            cwd=cwd or self._cwd,
        )

    # -- path handling ------------------------------------------------------------

    def _abspath(self, path: str) -> str:
        """Make ``path`` absolute and canonical without resolving ``..``.

        Both branches collapse ``//`` and ``.`` so equivalent spellings
        produce one key; ``..`` is preserved for the VFS walk, which
        resolves it physically (mount- and symlink-aware).  Lexically
        collapsing ``..`` here would mis-resolve any path whose prefix
        crosses a symlink (e.g. ``../x`` from a symlinked cwd).
        """
        key = (self._cwd, path)
        cached = self._abs_memo.get(key)
        if cached is not None:
            return cached
        if path.startswith("/"):
            out = clean(path)
        else:
            out = clean(join(self._cwd, path))
        if len(self._abs_memo) >= 4096:
            self._abs_memo.clear()
        self._abs_memo[key] = out
        return out

    def getcwd(self) -> str:
        """Current working directory."""
        return self._cwd

    def chdir(self, path: str) -> None:
        """Change working directory (must resolve to a directory)."""
        self.meter.enter("chdir")
        path = self._abspath(path)
        from repro.vfs.inode import require_dir

        require_dir(self.vfs.resolve(self.ns, self.cred, path), path)
        self._cwd = normalize(path)

    # -- descriptors ---------------------------------------------------------------

    def _handle(self, fd: int) -> FileHandle:
        try:
            return self._fds[fd]
        except KeyError:
            raise BadFileDescriptor(detail=f"fd {fd}") from None

    def open(self, path: str, flags: int = O_RDONLY, mode: int = 0o644) -> int:
        """open(2); returns a file descriptor."""
        self.meter.enter("open")
        handle = self.vfs.open(self.ns, self.cred, self._abspath(path), flags, mode)
        fd = self._next_fd
        self._next_fd += 1
        self._fds[fd] = handle
        return fd

    def close(self, fd: int) -> None:
        """close(2)."""
        self.meter.enter("close")
        handle = self._fds.pop(fd, None)
        if handle is None:
            raise BadFileDescriptor(detail=f"fd {fd}")
        handle.close()

    def read(self, fd: int, size: int = -1) -> bytes:
        """read(2) from the descriptor's offset."""
        handle = self._handle(fd)
        data = handle.read(size)
        self.meter.enter("read", nbytes=len(data))
        return data

    def write(self, fd: int, data: bytes) -> int:
        """write(2) at the descriptor's offset."""
        self.meter.enter("write", nbytes=len(data))
        return self._handle(fd).write(data)

    def pread(self, fd: int, size: int, offset: int) -> bytes:
        """pread(2)."""
        data = self._handle(fd).pread(size, offset)
        self.meter.enter("pread", nbytes=len(data))
        return data

    def pwrite(self, fd: int, data: bytes, offset: int) -> int:
        """pwrite(2)."""
        self.meter.enter("pwrite", nbytes=len(data))
        return self._handle(fd).pwrite(data, offset)

    def lseek(self, fd: int, offset: int) -> int:
        """lseek(2) (absolute only)."""
        self.meter.enter("lseek")
        return self._handle(fd).seek(offset)

    def ftruncate(self, fd: int, size: int) -> None:
        """ftruncate(2)."""
        self.meter.enter("ftruncate")
        self._handle(fd).truncate(size)

    def fstat(self, fd: int) -> Stat:
        """fstat(2)."""
        self.meter.enter("fstat")
        return self._handle(fd).inode.stat()

    # -- whole-file helpers (decompose into real syscalls for the meter) -----------

    def read_text(self, path: str) -> str:
        """open + read + close, decoded as UTF-8."""
        fd = self.open(path, O_RDONLY)
        try:
            return self.read(fd).decode()
        finally:
            self.close(fd)

    def read_bytes(self, path: str) -> bytes:
        """open + read + close."""
        fd = self.open(path, O_RDONLY)
        try:
            return self.read(fd)
        finally:
            self.close(fd)

    def write_text(self, path: str, text: str, *, append: bool = False) -> int:
        """open + write + close (the ``echo value > file`` idiom)."""
        flags = O_WRONLY | O_CREAT | (O_APPEND if append else O_TRUNC)
        fd = self.open(path, flags)
        try:
            return self.write(fd, text.encode())
        finally:
            self.close(fd)

    def write_bytes(self, path: str, data: bytes, *, append: bool = False) -> int:
        """open + write + close with raw bytes."""
        flags = O_WRONLY | O_CREAT | (O_APPEND if append else O_TRUNC)
        fd = self.open(path, flags)
        try:
            return self.write(fd, data)
        finally:
            self.close(fd)

    # -- namespace / tree operations -------------------------------------------------

    def mkdir(self, path: str, mode: int = 0o755) -> None:
        """mkdir(2)."""
        self.meter.enter("mkdir")
        self.vfs.mkdir(self.ns, self.cred, self._abspath(path), mode)

    def makedirs(self, path: str, mode: int = 0o755) -> None:
        """mkdir -p: create missing ancestors."""
        parts = [p for p in self._abspath(path).split("/") if p]
        current = ""
        for part in parts:
            current += "/" + part
            if not self.exists(current):
                self.mkdir(current, mode)

    def rmdir(self, path: str) -> None:
        """rmdir(2)."""
        self.meter.enter("rmdir")
        self.vfs.rmdir(self.ns, self.cred, self._abspath(path))

    def unlink(self, path: str) -> None:
        """unlink(2)."""
        self.meter.enter("unlink")
        self.vfs.unlink(self.ns, self.cred, self._abspath(path))

    def rename(self, oldpath: str, newpath: str) -> None:
        """rename(2)."""
        self.meter.enter("rename")
        self.vfs.rename(self.ns, self.cred, self._abspath(oldpath), self._abspath(newpath))

    def symlink(self, target: str, linkpath: str) -> None:
        """symlink(2)."""
        self.meter.enter("symlink")
        self.vfs.symlink(self.ns, self.cred, target, self._abspath(linkpath))

    def readlink(self, path: str) -> str:
        """readlink(2)."""
        self.meter.enter("readlink")
        return self.vfs.readlink(self.ns, self.cred, self._abspath(path))

    def link(self, oldpath: str, newpath: str) -> None:
        """link(2)."""
        self.meter.enter("link")
        self.vfs.link(self.ns, self.cred, self._abspath(oldpath), self._abspath(newpath))

    def stat(self, path: str) -> Stat:
        """stat(2)."""
        self.meter.enter("stat")
        return self.vfs.stat(self.ns, self.cred, self._abspath(path))

    def lstat(self, path: str) -> Stat:
        """lstat(2)."""
        self.meter.enter("lstat")
        return self.vfs.lstat(self.ns, self.cred, self._abspath(path))

    def exists(self, path: str) -> bool:
        """access(2)-style existence probe."""
        self.meter.enter("access")
        return self.vfs.exists(self.ns, self.cred, self._abspath(path))

    def listdir(self, path: str) -> list[str]:
        """getdents(2): directory entry names."""
        self.meter.enter("getdents")
        return self.vfs.readdir(self.ns, self.cred, self._abspath(path))

    def scandir(self, path: str) -> list[tuple[str, Stat]]:
        """Batched getdents(2)+statx: entry names with lstat-style metadata.

        The §8.1 batching remedy for readdir-then-stat storms: one metered
        call replaces ``listdir`` plus an ``lstat`` per entry.
        """
        self.meter.enter("scandir")
        return self.vfs.scandir(self.ns, self.cred, self._abspath(path))

    def truncate(self, path: str, size: int) -> None:
        """truncate(2)."""
        self.meter.enter("truncate")
        self.vfs.truncate(self.ns, self.cred, self._abspath(path), size)

    def chmod(self, path: str, mode: int) -> None:
        """chmod(2)."""
        self.meter.enter("chmod")
        self.vfs.chmod(self.ns, self.cred, self._abspath(path), mode)

    def chown(self, path: str, uid: int, gid: int) -> None:
        """chown(2)."""
        self.meter.enter("chown")
        self.vfs.chown(self.ns, self.cred, self._abspath(path), uid, gid)

    def set_acl(self, path: str, acl: Acl) -> None:
        """setfacl equivalent."""
        self.meter.enter("setxattr")  # ACLs ride the xattr syscall on Linux
        self.vfs.set_acl(self.ns, self.cred, self._abspath(path), acl)

    def setxattr(self, path: str, name: str, value: bytes) -> None:
        """setxattr(2)."""
        self.meter.enter("setxattr")
        self.vfs.setxattr(self.ns, self.cred, self._abspath(path), name, value)

    def getxattr(self, path: str, name: str) -> bytes:
        """getxattr(2)."""
        self.meter.enter("getxattr")
        return self.vfs.getxattr(self.ns, self.cred, self._abspath(path), name)

    def listxattr(self, path: str) -> list[str]:
        """listxattr(2)."""
        self.meter.enter("listxattr")
        return self.vfs.listxattr(self.ns, self.cred, self._abspath(path))

    def removexattr(self, path: str, name: str) -> None:
        """removexattr(2)."""
        self.meter.enter("removexattr")
        self.vfs.removexattr(self.ns, self.cred, self._abspath(path), name)

    def mount(self, path: str, fs: Filesystem, *, source: str = "") -> None:
        """mount(2)."""
        self.meter.enter("mount")
        self.vfs.mount(self.ns, self.cred, self._abspath(path), fs, source=source)

    def bind_mount(self, source_path: str, target_path: str) -> None:
        """mount(2) with MS_BIND."""
        self.meter.enter("mount")
        self.vfs.bind_mount(self.ns, self.cred, self._abspath(source_path), self._abspath(target_path))

    def umount(self, path: str) -> None:
        """umount(2)."""
        self.meter.enter("umount")
        self.vfs.umount(self.ns, self.cred, self._abspath(path))

    # -- batched submission (§8.1: amortize the kernel crossing) -----------------------

    def io_uring_setup(self, entries: int = 256) -> "IoUring":
        """io_uring_setup(2): create a submission/completion ring.

        The ring shares this context's fd table and meter; queueing
        entries and reaping completions touch only the ring memory, and
        each :meth:`~repro.vfs.uring.IoUring.submit` costs exactly one
        metered ``io_uring_enter`` however many entries it carries.
        """
        self.meter.enter("io_uring_setup")
        from repro.vfs.uring import IoUring

        return IoUring(self, entries)

    # -- notification ------------------------------------------------------------------

    def inotify_init(self, *, max_queued_events: int | None = None) -> Inotify:
        """inotify_init(2); the queue bound mirrors fs.inotify.max_queued_events."""
        self.meter.enter("inotify_init")
        return self.vfs.inotify(max_queued_events=max_queued_events)

    def inotify_add_watch(self, instance: Inotify, path: str, mask: EventMask) -> int:
        """inotify_add_watch(2): watch a path."""
        self.meter.enter("inotify_add_watch")
        inode = self.vfs.resolve(self.ns, self.cred, self._abspath(path))
        return instance.add_watch(inode, mask)

    def inotify_read(self, instance: Inotify) -> list[NotifyEvent]:
        """read(2) on the inotify descriptor: drain queued events."""
        self.meter.enter("read")
        return instance.read()

    def epoll_create(self) -> Epoll:
        """epoll_create(2): a readiness set over notification descriptors."""
        self.meter.enter("epoll_create")
        return Epoll()

    def epoll_ctl(self, ep: Epoll, op: int, pollable: object, data: object | None = None) -> None:
        """epoll_ctl(2): add/remove a pollable; ``data`` rides the event."""
        self.meter.enter("epoll_ctl")
        if op == EPOLL_CTL_ADD:
            ep.add(pollable, data)
        elif op == EPOLL_CTL_DEL:
            ep.remove(pollable)
        else:
            raise InvalidArgument(detail=f"unknown epoll_ctl op {op}")

    def epoll_wait(self, ep: Epoll) -> list[object]:
        """epoll_wait(2): the ``data`` of every ready pollable (no blocking)."""
        self.meter.enter("epoll_wait")
        return ep.wait()

    # -- traversal ---------------------------------------------------------------------

    def walk(self, path: str) -> Iterator[tuple[str, list[str], list[str]]]:
        """os.walk equivalent (each directory visit is one getdents)."""
        for dirpath, dirnames, filenames in self.vfs.walk(self.ns, self.cred, self._abspath(path)):
            self.meter.enter("getdents")
            yield dirpath, dirnames, filenames
