"""io_uring-style batched syscall submission (paper §8.1).

Every method on :class:`~repro.vfs.syscalls.Syscalls` is one metered
system call — one kernel crossing, ``ctxsw_per_syscall`` context switches
under the FUSE cost model.  The hot paths of a controller (installing a
table of flows, fanning one packet-in out to N application buffers)
therefore pay a crossing *per file touched*.  :class:`IoUring` amortizes
that the way ``io_uring(7)`` does:

* callers **prepare** submission-queue entries (:meth:`IoUring.prep`, or
  the :meth:`IoUring.prep_write_file` convenience that expands into a
  linked ``open → write → close`` chain);
* one :meth:`IoUring.submit` crosses into the kernel **once** (a single
  metered ``io_uring_enter``) and executes every queued entry;
* results come back as :class:`Cqe` records on a completion queue that is
  *pollable* — it implements the same ``readable()`` /
  ``poll_register`` / ``poll_unregister`` protocol as
  :class:`~repro.vfs.notify.Inotify`, so a process can park its
  :class:`~repro.vfs.poll.Epoll` loop on ring completions exactly as it
  does on inotify events.  Reaping completions touches only the shared
  ring memory: no syscall.

**Linked chains.**  An entry prepared with ``link=True`` ties the *next*
entry to its success: if it fails, every remaining entry of the chain
completes with ``canceled=True`` instead of executing (io_uring's
``IOSQE_IO_LINK``).  Inside a chain the :data:`LINK_FD` sentinel stands
for the descriptor produced by the chain's most recent ``open``, which is
what makes ``open → write → close`` expressible before the fd exists.  If
a chain is severed while its descriptor is still open, the ring closes it
(billed as ``uring.chain_autoclose``) so a failed batch cannot leak fds.

**Observability.**  Entries execute through the real bound ``Syscalls``
methods — the same choke points yancrace and yancsan patch at class
level — with the meter paused so the facade's per-call billing does not
double-count; each executed entry is instead billed via
:meth:`~repro.perf.meter.SyscallMeter.batch_op` (``uring.sqe`` /
``uring.<op>`` / payload bytes).  Batching changes the *cost*, never the
event stream or the analysis coverage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.vfs.errors import FsError, InvalidArgument
from repro.vfs.vfs import O_CREAT, O_TRUNC, O_WRONLY

if TYPE_CHECKING:
    from repro.vfs.syscalls import Syscalls


class _LinkFd:
    """Sentinel: the fd opened earlier in this linked chain."""

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return "LINK_FD"


#: Placeholder argument for the descriptor a chain's preceding ``open``
#: produced (usable anywhere an op takes an fd).
LINK_FD = _LinkFd()

#: Operations a ring accepts: every fd- or path-based Syscalls method a
#: batch can meaningfully contain.  Readiness/notification descriptors
#: (inotify, epoll) stay direct calls — they *are* the wait primitives.
SUPPORTED_OPS = frozenset(
    {
        "open",
        "close",
        "read",
        "write",
        "pread",
        "pwrite",
        "lseek",
        "ftruncate",
        "fstat",
        "mkdir",
        "rmdir",
        "unlink",
        "rename",
        "symlink",
        "link",
        "stat",
        "lstat",
        "exists",
        "listdir",
        "scandir",
        "truncate",
    }
)


@dataclass
class Sqe:
    """One submission-queue entry."""

    op: str
    args: tuple
    link: bool = False  # ties the NEXT entry to this one's success
    user_data: object = None


@dataclass
class Cqe:
    """One completion-queue entry, in submission order.

    Exactly one of the three outcomes holds: ``result`` (success),
    ``error`` (the op raised an :class:`~repro.vfs.errors.FsError`), or
    ``canceled=True`` (an earlier entry of the same linked chain failed,
    so this one never ran).
    """

    index: int  # submission order within the batch
    op: str
    result: object = None
    error: FsError | None = None
    canceled: bool = False
    user_data: object = None

    @property
    def ok(self) -> bool:
        """True when the operation executed and succeeded."""
        return self.error is None and not self.canceled


@dataclass
class IoUring:
    """A submission/completion ring bound to one syscall context.

    Created via :meth:`Syscalls.io_uring_setup`; the ring shares the
    context's credentials, namespace, fd table, and meter, so a batched
    ``open`` yields an fd usable by direct calls and vice versa.
    """

    sc: "Syscalls"
    entries: int = 256
    _sq: list[Sqe] = field(default_factory=list)
    _cq: list[Cqe] = field(default_factory=list)
    _pollers: list = field(default_factory=list)
    _seq: int = 0

    def __post_init__(self) -> None:
        if self.entries < 1:
            raise InvalidArgument(detail=f"ring size must be >= 1, got {self.entries}")

    # -- preparation (no syscalls: the SQ lives in shared memory) ------------

    def prep(self, op: str, *args, link: bool = False, user_data: object = None) -> int:
        """Queue one operation; returns its submission index.

        ``link=True`` makes the *next* prepared entry conditional on this
        one succeeding (chains compose by linking every entry but the
        last).  Raises when the op is unknown or the queue is full.
        """
        if op not in SUPPORTED_OPS:
            raise InvalidArgument(detail=f"unsupported ring op {op!r}")
        if len(self._sq) >= self.entries:
            raise InvalidArgument(detail=f"submission queue full ({self.entries} entries)")
        self._sq.append(Sqe(op=op, args=args, link=link, user_data=user_data))
        return len(self._sq) - 1

    def prep_write_file(self, path: str, data: bytes, *, link: bool = False, user_data: object = None) -> int:
        """Queue ``open → write → close`` as one linked chain.

        The batched equivalent of ``Syscalls.write_bytes`` (the ``echo
        value > file`` idiom).  ``link=True`` extends the chain into the
        *next* prepared entry, so whole multi-file sequences — assemble a
        maildir temp, then rename it into place — cancel together when any
        step fails.  Returns the index of the ``open``.
        """
        index = self.prep("open", path, O_WRONLY | O_CREAT | O_TRUNC, link=True, user_data=user_data)
        self.prep("write", LINK_FD, data, link=True, user_data=user_data)
        self.prep("close", LINK_FD, link=link, user_data=user_data)
        return index

    @property
    def sq_pending(self) -> int:
        """Entries queued but not yet submitted."""
        return len(self._sq)

    # -- submission (the one metered kernel crossing) ------------------------

    def submit(self) -> int:
        """Execute every queued entry under a single ``io_uring_enter``.

        Entries run in submission order through the real ``Syscalls``
        methods (so sanitizers, race detection, and notify events all see
        them) with the meter paused; each executed entry is billed as a
        batch op instead.  Returns the number of entries consumed.
        """
        if not self._sq:
            return 0
        meter = self.sc.meter
        meter.enter("io_uring_enter")
        batch, self._sq = self._sq, []
        was_empty = not self._cq
        chain_fd: int | None = None
        chain_broken = False
        for sqe in batch:
            index = self._seq
            self._seq += 1
            if chain_broken:
                self._cq.append(Cqe(index=index, op=sqe.op, canceled=True, user_data=sqe.user_data))
                meter.batch_op("canceled")
            else:
                cqe = self._execute(index, sqe, chain_fd)
                self._cq.append(cqe)
                if cqe.error is not None:
                    # Cancels the rest of a linked chain; for a chain-final
                    # entry the boundary reset below runs this same
                    # iteration, so only the autoclose side effect remains.
                    chain_broken = True
                elif cqe.ok:
                    if sqe.op == "open":
                        chain_fd = cqe.result
                    elif sqe.op == "close" and self._is_link_fd(sqe.args):
                        chain_fd = None
            if not sqe.link:  # chain boundary: reset link state
                if chain_fd is not None and chain_broken:
                    self._autoclose(chain_fd)
                chain_fd = None
                chain_broken = False
        if chain_fd is not None and chain_broken:
            self._autoclose(chain_fd)
        if self._cq and was_empty:
            self._notify_pollers()
        return len(batch)

    def _execute(self, index: int, sqe: Sqe, chain_fd: int | None) -> Cqe:
        meter = self.sc.meter
        args = sqe.args
        if any(isinstance(a, _LinkFd) for a in args):
            if chain_fd is None:
                err = InvalidArgument(detail=f"{sqe.op}: LINK_FD with no open earlier in the chain")
                meter.batch_op(sqe.op)
                return Cqe(index=index, op=sqe.op, error=err, user_data=sqe.user_data)
            args = tuple(chain_fd if isinstance(a, _LinkFd) else a for a in args)
        # Bound method lookup happens here, per entry, so class-level
        # patches (yancrace's choke points) wrap batched ops too.
        fn = getattr(self.sc, sqe.op)
        try:
            with meter.pause():
                result = fn(*args)
        except FsError as exc:
            meter.batch_op(sqe.op)
            return Cqe(index=index, op=sqe.op, error=exc, user_data=sqe.user_data)
        meter.batch_op(sqe.op, nbytes=self._payload_bytes(sqe.op, args, result))
        return Cqe(index=index, op=sqe.op, result=result, user_data=sqe.user_data)

    @staticmethod
    def _payload_bytes(op: str, args: tuple, result: object) -> int:
        if op in ("read", "pread") and isinstance(result, bytes):
            return len(result)
        if op in ("write", "pwrite") and len(args) >= 2 and isinstance(args[1], (bytes, bytearray, memoryview)):
            return len(args[1])
        return 0

    @staticmethod
    def _is_link_fd(args: tuple) -> bool:
        return bool(args) and isinstance(args[0], _LinkFd)

    def _autoclose(self, fd: int) -> None:
        """Close the fd a severed chain left open (no descriptor leaks)."""
        meter = self.sc.meter
        try:
            with meter.pause():
                self.sc.close(fd)
        except FsError:
            return
        meter.batch_op("chain_autoclose")

    # -- completion reaping (shared memory: free) ----------------------------

    def completions(self, max_entries: int | None = None) -> list[Cqe]:
        """Drain up to ``max_entries`` completions, oldest first.

        Like reading the CQ tail from the mapped ring: costs nothing and
        is unmetered.
        """
        if max_entries is None or max_entries >= len(self._cq):
            out, self._cq = self._cq, []
        else:
            out, self._cq = self._cq[:max_entries], self._cq[max_entries:]
        return out

    @property
    def cq_pending(self) -> int:
        """Completions waiting to be reaped."""
        return len(self._cq)

    # -- the pollable protocol (see repro.vfs.poll) --------------------------

    def readable(self) -> bool:
        """True when completions are waiting (the pollable protocol)."""
        return bool(self._cq)

    def poll_register(self, poller) -> None:
        """An :class:`~repro.vfs.poll.Epoll` started watching this ring."""
        if poller not in self._pollers:
            self._pollers.append(poller)

    def poll_unregister(self, poller) -> None:
        """An :class:`~repro.vfs.poll.Epoll` stopped watching this ring."""
        if poller in self._pollers:
            self._pollers.remove(poller)

    def _notify_pollers(self) -> None:
        for poller in list(self._pollers):
            poller.notify_readable(self)


__all__ = ["Cqe", "IoUring", "LINK_FD", "SUPPORTED_OPS", "Sqe"]
