"""Path string utilities (purely lexical)."""

from __future__ import annotations

from repro.vfs.errors import InvalidArgument


def split_path(path: str) -> list[str]:
    """Split an absolute path into components; rejects relative paths."""
    if not path or not path.startswith("/"):
        raise InvalidArgument(path, "path must be absolute")
    return [part for part in path.split("/") if part and part != "."]


def normalize(path: str) -> str:
    """Lexically normalize: collapse slashes and '.', resolve '..'.

    Resolving ``..`` lexically is only safe when no component on its left
    can be a symlink or a mount root; path *resolution* must use
    :func:`clean` instead and leave ``..`` to the mount- and symlink-aware
    walk in :class:`~repro.vfs.vfs.VirtualFileSystem`.
    """
    stack: list[str] = []
    for part in split_path(path):
        if part == "..":
            if stack:
                stack.pop()
        else:
            stack.append(part)
    return "/" + "/".join(stack)


def clean(path: str) -> str:
    """Collapse duplicate slashes and '.' components; preserve '..'.

    ``/net//switches/./s1`` and ``/net/switches/s1`` become the same string
    (one canonical key for metering and caching) without taking a stance on
    ``..``, which only the resolver can interpret correctly.
    """
    return "/" + "/".join(split_path(path))


def join(base: str, *parts: str) -> str:
    """Join path fragments with single slashes."""
    out = base.rstrip("/")
    for part in parts:
        out += "/" + part.strip("/")
    return out or "/"


def dirname(path: str) -> str:
    """The parent of ``path`` ('/' has itself as parent)."""
    parts = split_path(path)
    if not parts:
        return "/"
    return "/" + "/".join(parts[:-1])


def basename(path: str) -> str:
    """The final component of ``path`` ('' for '/')."""
    parts = split_path(path)
    return parts[-1] if parts else ""


def is_relative_to(path: str, prefix: str) -> bool:
    """True when ``path`` equals or lives under ``prefix`` (both absolute)."""
    path_parts = split_path(path)
    prefix_parts = split_path(prefix)
    return path_parts[: len(prefix_parts)] == prefix_parts
