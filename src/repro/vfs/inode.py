"""The inode layer: nodes, dentries, and the filesystem base class.

A :class:`Filesystem` owns a tree of :class:`Inode` objects.  The three
concrete node kinds mirror what the yanc design needs: directories
(:class:`DirInode`), regular files (:class:`FileInode`), and symbolic links
(:class:`SymlinkInode`).  File system types — tmpfs (:mod:`repro.vfs.memfs`),
yancfs (:mod:`repro.yancfs`), the distributed-FS client — subclass these and
override the ``may_*`` policy hooks and the node factories to attach
semantics to plain file operations, exactly the trick FUSE lets the paper's
prototype play.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Callable, Iterator

from repro.vfs.acl import Acl
from repro.vfs.cred import Credentials
from repro.vfs.errors import (
    FileExists,
    FileNotFound,
    InvalidArgument,
    IsADirectory,
    NameTooLong,
    NoData,
    NotADirectory,
    NotSupported,
)
from repro.vfs.notify import EventMask
from repro.vfs.stat import (
    DEFAULT_DIR_MODE,
    DEFAULT_FILE_MODE,
    FileType,
    Stat,
)

if TYPE_CHECKING:
    from repro.vfs.notify import NotifyHub

_NAME_MAX = 255
_dev_counter = itertools.count(1)

#: Tree-wide mutation epoch (the moral equivalent of Linux's ``rename_lock``
#: sequence count).  Bumped by every attach/detach anywhere and by every
#: permission change (chmod/chown/setfacl).  While it stands still, *no*
#: resolution-relevant state has changed, so the dentry cache's whole-path
#: memo can revalidate an entry with one integer compare instead of
#: re-checking each traversed directory.
_tree_epoch = 0


def bump_tree_epoch() -> None:
    """Advance the global resolution epoch (any namespace, any file system)."""
    global _tree_epoch
    _tree_epoch += 1


def tree_epoch() -> int:
    """Current resolution epoch; equality means nothing relevant changed."""
    return _tree_epoch


def validate_name(name: str) -> str:
    """Reject names no POSIX file system would accept."""
    if not name or name in (".", ".."):
        raise InvalidArgument(name, "invalid file name")
    if "/" in name or "\x00" in name:
        raise InvalidArgument(name, "name contains '/' or NUL")
    if len(name) > _NAME_MAX:
        raise NameTooLong(name)
    return name


class Filesystem:
    """A mountable file system instance.

    Subclasses override the ``*_class`` attributes (or :meth:`make_dir`,
    :meth:`make_file`, :meth:`make_symlink`) to substitute semantic node
    types, and may set ``readonly``.
    """

    fs_type = "none"

    #: Whether directory lookups on this file system may be memoized by the
    #: per-namespace dentry cache.  File systems whose ``lookup`` has side
    #: effects or whose directory contents change outside ``attach``/
    #: ``detach`` (e.g. the distributed-FS client, which refreshes over RPC
    #: inside ``lookup``) must set this False.
    cacheable = True

    def __init__(self, *, clock: Callable[[], float] | None = None, readonly: bool = False) -> None:
        self.dev = next(_dev_counter)
        self.readonly = readonly
        self.clock: Callable[[], float] = clock or (lambda: 0.0)
        self._ino_counter = itertools.count(1)
        self.hub: "NotifyHub | None" = None  # set by the VFS at mount time
        self.root: DirInode = self.make_root()

    def make_root(self) -> "DirInode":
        """Create the root directory node.  Subclasses may override."""
        return self.make_dir(mode=DEFAULT_DIR_MODE, uid=0, gid=0)

    def next_ino(self) -> int:
        """Allocate the next inode number."""
        return next(self._ino_counter)

    def make_dir(self, *, mode: int = DEFAULT_DIR_MODE, uid: int = 0, gid: int = 0) -> "DirInode":
        """Create a detached directory node."""
        return DirInode(self, mode=mode, uid=uid, gid=gid)

    def make_file(self, *, mode: int = DEFAULT_FILE_MODE, uid: int = 0, gid: int = 0) -> "FileInode":
        """Create a detached regular-file node."""
        return FileInode(self, mode=mode, uid=uid, gid=gid)

    def make_symlink(self, target: str, *, uid: int = 0, gid: int = 0) -> "SymlinkInode":
        """Create a detached symlink node."""
        return SymlinkInode(self, target, uid=uid, gid=gid)

    def now(self) -> float:
        """Current time for timestamp updates."""
        return self.clock()

    def emit(self, inode: "Inode", mask: int, name: str | None = None, cookie: int = 0) -> None:
        """Publish a notify event for ``inode`` (no-op when unmounted)."""
        if self.hub is not None:
            self.hub.emit(inode, mask, name=name, cookie=cookie)

    def emit_dirent(self, parent: "Inode", child: "Inode", mask: int, name: str, cookie: int = 0) -> None:
        """Publish a directory-entry event (no-op when unmounted)."""
        if self.hub is not None:
            self.hub.emit_dirent(parent, child, mask, name, cookie=cookie)


class Inode:
    """Base node: identity, ownership, permissions, timestamps, xattrs."""

    ftype: FileType

    def __init__(self, fs: Filesystem, *, mode: int, uid: int, gid: int) -> None:
        self.fs = fs
        self.ino = fs.next_ino()
        self.mode = mode & 0o7777
        self.uid = uid
        self.gid = gid
        now = fs.now()
        self.atime = now
        self.mtime = now
        self.ctime = now
        self.xattrs: dict[str, bytes] = {}
        self.acl: Acl | None = None
        self.nlink = 1
        #: dentries referencing this node: (parent directory, name) pairs.
        self.dentries: set[tuple["DirInode", str]] = set()

    @property
    def size(self) -> int:
        """Size in bytes (0 for directories with no better answer)."""
        return 0

    @property
    def is_dir(self) -> bool:
        """True for directory nodes."""
        return self.ftype is FileType.DIRECTORY

    def stat(self) -> Stat:
        """Snapshot this node's metadata."""
        return Stat(
            ino=self.ino,
            ftype=self.ftype,
            mode=self.mode,
            uid=self.uid,
            gid=self.gid,
            size=self.size,
            nlink=self.nlink,
            atime=self.atime,
            mtime=self.mtime,
            ctime=self.ctime,
            dev=self.fs.dev,
        )

    def touch_mtime(self) -> None:
        """Update modification (and change) time to now."""
        now = self.fs.now()
        self.mtime = now
        self.ctime = now

    # -- extended attributes ------------------------------------------------

    def set_xattr(self, name: str, value: bytes) -> None:
        """Set extended attribute ``name``."""
        if not name:
            raise InvalidArgument(detail="empty xattr name")
        self.xattrs[name] = bytes(value)
        self.ctime = self.fs.now()

    def get_xattr(self, name: str) -> bytes:
        """Get extended attribute ``name``; raises NoData when absent."""
        try:
            return self.xattrs[name]
        except KeyError:
            raise NoData(detail=f"xattr {name!r}") from None

    def remove_xattr(self, name: str) -> None:
        """Remove extended attribute ``name``; raises NoData when absent."""
        if name not in self.xattrs:
            raise NoData(detail=f"xattr {name!r}")
        del self.xattrs[name]
        self.ctime = self.fs.now()

    def list_xattrs(self) -> list[str]:
        """All extended attribute names, sorted."""
        return sorted(self.xattrs)


class DirInode(Inode):
    """A directory: an ordered name -> inode mapping plus policy hooks."""

    ftype = FileType.DIRECTORY

    def __init__(self, fs: Filesystem, *, mode: int, uid: int, gid: int) -> None:
        super().__init__(fs, mode=mode, uid=uid, gid=gid)
        self._children: dict[str, Inode] = {}
        self.nlink = 2  # "." and the parent's entry
        #: Directory generation: bumped on every attach/detach.  Dentry-cache
        #: entries record the generation they were stored under and die the
        #: moment it moves — this is the precise invalidation point for
        #: create, unlink, rmdir, symlink, link, and both halves of rename.
        self.dgen = 0

    @property
    def size(self) -> int:
        return len(self._children)

    def lookup(self, name: str) -> Inode:
        """Find the child called ``name``; raises FileNotFound."""
        try:
            return self._children[name]
        except KeyError:
            raise FileNotFound(name) from None

    def has_child(self, name: str) -> bool:
        """True if a child called ``name`` exists."""
        return name in self._children

    def names(self) -> list[str]:
        """Child names in creation order."""
        return list(self._children)

    def children(self) -> Iterator[tuple[str, Inode]]:
        """Iterate (name, inode) pairs in creation order."""
        return iter(list(self._children.items()))

    def is_empty(self) -> bool:
        """True when the directory has no entries."""
        return not self._children

    # -- policy hooks (overridden by semantic file systems) ------------------

    def may_create(self, name: str, ftype: FileType, cred: Credentials) -> None:
        """Veto hook before a child is created.  Raise to reject."""

    def may_remove(self, name: str, node: Inode, cred: Credentials) -> None:
        """Veto hook before a child is removed.  Raise to reject."""

    def may_rename_from(self, name: str, node: Inode, cred: Credentials) -> None:
        """Veto hook before a child is renamed away.  Raise to reject."""

    def may_rename_into(self, name: str, node: Inode, cred: Credentials) -> None:
        """Veto hook before a node is renamed into this directory."""

    def child_factory(self, name: str, ftype: FileType, cred: Credentials) -> Inode:
        """Build the node that mkdir/create will attach.

        Semantic file systems override this to return subclassed nodes (the
        yanc "semantic mkdir" of paper section 3.1).
        """
        if ftype is FileType.DIRECTORY:
            return self.fs.make_dir(mode=DEFAULT_DIR_MODE, uid=cred.uid, gid=cred.gid)
        if ftype is FileType.REGULAR:
            return self.fs.make_file(mode=DEFAULT_FILE_MODE, uid=cred.uid, gid=cred.gid)
        raise NotSupported(name, "child_factory cannot build this type")

    def on_child_attached(self, name: str, node: Inode) -> None:
        """Post hook after a child is linked in (semantic population point)."""

    def on_child_detached(self, name: str, node: Inode) -> None:
        """Post hook after a child is unlinked."""

    def recursive_rmdir_ok(self) -> bool:
        """If True, rmdir on this directory removes its subtree.

        Plain POSIX directories return False (ENOTEMPTY applies); yanc
        object directories return True (paper section 3.2: "the rmdir()
        call for switches is automatically recursive").
        """
        return False

    # -- structural operations ------------------------------------------------

    def attach(self, name: str, node: Inode, *, emit_mask: int | None = int(EventMask.IN_CREATE), cookie: int = 0) -> None:
        """Link ``node`` in as ``name`` (low level; no permission checks).

        Emits ``emit_mask`` (IN_CREATE by default; IN_MOVED_TO for the
        rename path; None to suppress) so that semantic auto-population
        inside hooks generates watchable events with no extra code —
        the paper's "comes free" property (section 5.2).
        """
        validate_name(name)
        if name in self._children:
            raise FileExists(name)
        if node.is_dir and node.dentries:
            raise InvalidArgument(name, "directories cannot be hard-linked")
        self.dgen += 1
        bump_tree_epoch()
        self._children[name] = node
        node.dentries.add((self, name))
        if node.is_dir:
            self.nlink += 1  # the child's ".."
        else:
            node.nlink = len(node.dentries)
        self.touch_mtime()
        if emit_mask is not None:
            self.fs.emit_dirent(self, node, emit_mask, name, cookie=cookie)
        self.on_child_attached(name, node)

    def detach(self, name: str, *, emit_mask: int | None = int(EventMask.IN_DELETE), cookie: int = 0) -> Inode:
        """Unlink child ``name`` and return it (low level)."""
        try:
            node = self._children[name]
        except KeyError:
            raise FileNotFound(name) from None
        self.dgen += 1
        bump_tree_epoch()
        del self._children[name]
        node.dentries.discard((self, name))
        if node.is_dir:
            self.nlink -= 1
            node.nlink = 0 if not node.dentries else node.nlink
        else:
            node.nlink = len(node.dentries)
        self.touch_mtime()
        if emit_mask is not None:
            self.fs.emit_dirent(self, node, emit_mask, name, cookie=cookie)
            if not node.dentries:
                self.fs.emit(node, EventMask.IN_DELETE_SELF)
        self.on_child_detached(name, node)
        return node


class FileInode(Inode):
    """A regular file holding bytes."""

    ftype = FileType.REGULAR

    def __init__(self, fs: Filesystem, *, mode: int, uid: int, gid: int) -> None:
        super().__init__(fs, mode=mode, uid=uid, gid=gid)
        self._data = bytearray()

    @property
    def size(self) -> int:
        return len(self._data)

    def read(self, offset: int, size: int) -> bytes:
        """Read up to ``size`` bytes starting at ``offset``."""
        if offset < 0 or size < 0:
            raise InvalidArgument(detail="negative offset or size")
        self.atime = self.fs.now()
        return bytes(self._data[offset : offset + size])

    def read_all(self) -> bytes:
        """Read the whole file."""
        return self.read(0, len(self._data))

    def write(self, offset: int, data: bytes) -> int:
        """Write ``data`` at ``offset`` (zero-filling any gap); return count."""
        if offset < 0:
            raise InvalidArgument(detail="negative offset")
        if offset > len(self._data):
            self._data.extend(b"\x00" * (offset - len(self._data)))
        self._data[offset : offset + len(data)] = data
        self.touch_mtime()
        self.fs.emit(self, EventMask.IN_MODIFY)
        return len(data)

    def truncate(self, size: int) -> None:
        """Cut or zero-extend the file to ``size`` bytes."""
        if size < 0:
            raise InvalidArgument(detail="negative truncate size")
        if size < len(self._data):
            del self._data[size:]
        else:
            self._data.extend(b"\x00" * (size - len(self._data)))
        self.touch_mtime()
        self.fs.emit(self, EventMask.IN_MODIFY)

    def set_content(self, data: bytes) -> None:
        """Replace the whole content (used by semantic attribute files)."""
        self._data = bytearray(data)
        self.touch_mtime()
        self.fs.emit(self, EventMask.IN_MODIFY)

    def on_close_write(self, cred: Credentials) -> None:
        """Hook invoked when a writable handle is closed.

        yanc attribute files validate and apply their new content here,
        matching the write-then-close idiom of ``echo 1 > config.port_down``.
        """


class SymlinkInode(Inode):
    """A symbolic link."""

    ftype = FileType.SYMLINK

    def __init__(self, fs: Filesystem, target: str, *, uid: int, gid: int) -> None:
        super().__init__(fs, mode=0o777, uid=uid, gid=gid)
        if not target:
            raise InvalidArgument(detail="empty symlink target")
        self.target = target

    @property
    def size(self) -> int:
        return len(self.target)


def require_dir(node: Inode, path: str = "") -> DirInode:
    """Downcast to DirInode or raise NotADirectory."""
    if not isinstance(node, DirInode):
        raise NotADirectory(path)
    return node


def require_file(node: Inode, path: str = "") -> FileInode:
    """Downcast to FileInode or raise the right POSIX error."""
    if isinstance(node, DirInode):
        raise IsADirectory(path)
    if not isinstance(node, FileInode):
        raise InvalidArgument(path, "not a regular file")
    return node
