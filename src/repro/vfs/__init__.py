"""The in-memory virtual file system (the reproduction's Linux VFS).

Public surface:

* :class:`VirtualFileSystem` — the kernel side (one per simulated host).
* :class:`Syscalls` — the metered per-process facade applications use.
* :class:`MemFs` — tmpfs; :class:`Filesystem` and the inode classes are the
  extension points semantic file systems (yancfs, distfs) subclass.
* :class:`MountNamespace` — per-process mount tables (isolation, §5.3).
* :mod:`repro.vfs.notify` — inotify-style monitoring (§5.2).
* :mod:`repro.vfs.acl` — POSIX ACLs (§5.1).
"""

from repro.vfs.acl import Acl, AclEntry, AclTag
from repro.vfs.cred import ROOT, Credentials
from repro.vfs.dcache import DentryCache
from repro.vfs.fanotify import FanEvent, FanMask, FanotifyGroup, FanotifyRegistry
from repro.vfs.errors import (
    BadFileDescriptor,
    CrossDevice,
    DeviceBusy,
    DirectoryNotEmpty,
    FileExists,
    FileNotFound,
    FsError,
    InvalidArgument,
    IsADirectory,
    NameTooLong,
    NoData,
    NotADirectory,
    NotPermitted,
    NotSupported,
    PermissionDenied,
    ReadOnly,
    StaleHandle,
    TimedOut,
    TooManyLinks,
)
from repro.vfs.inode import (
    DirInode,
    FileInode,
    Filesystem,
    Inode,
    SymlinkInode,
)
from repro.vfs.memfs import MemFs
from repro.vfs.mount import MountEntry, MountNamespace
from repro.vfs.notify import IN_ALL_EVENTS, EventMask, Inotify, NotifyEvent, NotifyHub
from repro.vfs.poll import EPOLL_CTL_ADD, EPOLL_CTL_DEL, Epoll
from repro.vfs.stat import FileType, Stat, format_mode
from repro.vfs.syscalls import (
    O_APPEND,
    O_CREAT,
    O_EXCL,
    O_RDONLY,
    O_RDWR,
    O_TRUNC,
    O_WRONLY,
    Syscalls,
)
from repro.vfs.uring import LINK_FD, Cqe, IoUring, Sqe
from repro.vfs.vfs import FileHandle, VirtualFileSystem

__all__ = [
    "Acl",
    "AclEntry",
    "AclTag",
    "ROOT",
    "Credentials",
    "DentryCache",
    "FanEvent",
    "FanMask",
    "FanotifyGroup",
    "FanotifyRegistry",
    "BadFileDescriptor",
    "CrossDevice",
    "DeviceBusy",
    "DirectoryNotEmpty",
    "FileExists",
    "FileNotFound",
    "FsError",
    "InvalidArgument",
    "IsADirectory",
    "NameTooLong",
    "NoData",
    "NotADirectory",
    "NotPermitted",
    "NotSupported",
    "PermissionDenied",
    "ReadOnly",
    "StaleHandle",
    "TimedOut",
    "TooManyLinks",
    "DirInode",
    "FileInode",
    "Filesystem",
    "Inode",
    "SymlinkInode",
    "MemFs",
    "MountEntry",
    "MountNamespace",
    "IN_ALL_EVENTS",
    "EventMask",
    "Inotify",
    "NotifyEvent",
    "NotifyHub",
    "EPOLL_CTL_ADD",
    "EPOLL_CTL_DEL",
    "Epoll",
    "FileType",
    "Stat",
    "format_mode",
    "O_APPEND",
    "O_CREAT",
    "O_EXCL",
    "O_RDONLY",
    "O_RDWR",
    "O_TRUNC",
    "O_WRONLY",
    "Syscalls",
    "LINK_FD",
    "Cqe",
    "IoUring",
    "Sqe",
    "FileHandle",
    "VirtualFileSystem",
]
