"""Readiness polling: epoll over event-queue descriptors.

The paper's applications are ordinary processes, and an ordinary process
does not poll each notification descriptor separately — it parks in one
``epoll_wait`` covering everything it watches and is woken once, whatever
fired.  :class:`Epoll` reproduces that: any object exposing the small
*pollable* protocol (``readable()`` plus ``poll_register``/
``poll_unregister``, implemented by :class:`~repro.vfs.notify.Inotify`)
can be registered, and a single wakeup callback covers the whole set.

Semantics follow Linux epoll where it matters here:

* **level-triggered wait** — :meth:`Epoll.wait` reports every registered
  pollable that currently has data, so a consumer that failed to drain
  fully is re-told on the next wait instead of hanging;
* **edge-triggered wakeup** — the ``wakeup`` callback fires only when the
  ready set goes empty -> non-empty, so a burst of deliveries costs one
  scheduled process wakeup, not one per event.
"""

from __future__ import annotations

from typing import Callable

from repro.vfs.errors import InvalidArgument

#: epoll_ctl(2) operations (same meaning as EPOLL_CTL_ADD / EPOLL_CTL_DEL).
EPOLL_CTL_ADD = 1
EPOLL_CTL_DEL = 2


class Epoll:
    """One epoll instance: a set of pollables and a shared wakeup."""

    def __init__(self) -> None:
        #: id(pollable) -> (pollable, user data returned by wait()).
        self._entries: dict[int, tuple[object, object]] = {}
        #: Keys that signalled readiness since the last wait (insertion
        #: ordered, for deterministic wait() output).
        self._ready: dict[int, None] = {}
        self._closed = False
        #: Called once when the ready set goes empty -> non-empty; the
        #: process runtime points this at its wakeup scheduler.
        self.wakeup: Callable[[], None] | None = None

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run."""
        return self._closed

    def __len__(self) -> int:
        return len(self._entries)

    def add(self, pollable: object, data: object | None = None) -> None:
        """Register ``pollable``; ``data`` is what :meth:`wait` reports.

        Registering an already-watched pollable raises (epoll's EEXIST).
        """
        if self._closed:
            raise InvalidArgument(detail="epoll instance is closed")
        key = id(pollable)
        if key in self._entries:
            raise InvalidArgument(detail="pollable already registered")
        self._entries[key] = (pollable, pollable if data is None else data)
        pollable.poll_register(self)
        if pollable.readable():
            self.notify_readable(pollable)

    def remove(self, pollable: object) -> None:
        """Unregister ``pollable``; raises when it was never added."""
        key = id(pollable)
        if key not in self._entries:
            raise InvalidArgument(detail="pollable not registered")
        del self._entries[key]
        self._ready.pop(key, None)
        pollable.poll_unregister(self)

    def pollables(self) -> list[object]:
        """Every registered pollable, in registration order.

        Introspection for observers (yancrace maps a ready descriptor back
        to the clock its emitters released); not part of the epoll API.
        """
        return [pollable for pollable, _data in self._entries.values()]

    def notify_readable(self, pollable: object) -> None:
        """Pollable-side upcall: ``pollable`` went empty -> non-empty."""
        key = id(pollable)
        if key not in self._entries or self._closed:
            return
        was_idle = not self._ready
        self._ready[key] = None
        if was_idle and self.wakeup is not None:
            self.wakeup()

    def wait(self) -> list[object]:
        """Report the ``data`` of every pollable that has events queued.

        Level-triggered: anything still readable is reported even if its
        edge notification was consumed by an earlier wait.  Returns an
        empty list when nothing is ready (a real process would block).
        """
        signalled = list(self._ready)
        self._ready.clear()
        order = signalled + [key for key in self._entries if key not in set(signalled)]
        out = []
        for key in order:
            entry = self._entries.get(key)
            if entry is None:
                continue
            pollable, data = entry
            if pollable.readable():
                out.append(data)
        return out

    def close(self) -> None:
        """Unregister everything; further adds are rejected."""
        for pollable, _data in list(self._entries.values()):
            pollable.poll_unregister(self)
        self._entries.clear()
        self._ready.clear()
        self._closed = True
