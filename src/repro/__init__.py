"""yanc — Applying Operating System Principles to SDN Controller Design.

A full-system reproduction of the HotNets 2013 paper (Monaco, Michel,
Keller): the network's configuration and state is a file system, network
applications are ordinary processes doing file I/O, drivers translate the
tree to OpenFlow, views slice and virtualize it, distributed file systems
layered on top make the controller distributed, and libyanc is the
shared-memory fastpath.

Quick start::

    from repro import YancController, build_linear, Match, Output, FLOOD

    net = build_linear(3)
    ctl = YancController(net).start()
    yc = ctl.client()
    yc.create_flow("sw1", "flood", Match(), [Output(FLOOD)], priority=1)
    ctl.run(0.5)

Package map (bottom-up):

========================  ====================================================
``repro.perf``            syscall / context-switch metering and cost models
``repro.sim``             the discrete-event clock everything runs on
``repro.netpkt``          packet headers (Ethernet/ARP/IPv4/TCP/UDP/ICMP/LLDP)
``repro.vfs``             the in-memory Linux-style VFS (+inotify, ACLs, ns)
``repro.dataplane``       switches, links, hosts, flow tables, topologies
``repro.openflow``        OpenFlow 1.0 + 1.3 wire codecs and the switch agent
``repro.controlchannel``  driver<->switch byte streams
``repro.yancfs``          THE CONTRIBUTION: the yanc file system
``repro.drivers``         FS <-> OpenFlow drivers (per protocol version)
``repro.libyanc``         the shared-memory fastpath (§8.1)
``repro.apps``            topology, router, pusher, ARP, DHCP, firewall, ...
``repro.views``           slicer, big-switch virtualizer, namespace jails
``repro.distfs``          remote FS + distributed controller (§6)
``repro.shell``           coreutils over the VFS (§5.4)
``repro.proc``            cron + cgroups (§2, §5.3)
``repro.runtime``         one-call assembly of all of the above
========================  ====================================================
"""

from repro.dataplane import (
    FLOOD,
    TO_CONTROLLER,
    Match,
    Network,
    Output,
    TrafficMatrix,
    TrafficReplay,
    build_campus,
    build_clos,
    build_fat_tree,
    build_linear,
    build_random,
    build_ring,
    build_star,
    build_tree,
)
from repro.runtime import ControllerHost, YancController
from repro.sim import Simulator
from repro.vfs import Credentials, Syscalls, VirtualFileSystem
from repro.yancfs import YancClient, YancFs, mount_yancfs

__version__ = "1.0.0"

__all__ = [
    "FLOOD",
    "TO_CONTROLLER",
    "Match",
    "Network",
    "Output",
    "TrafficMatrix",
    "TrafficReplay",
    "build_campus",
    "build_clos",
    "build_fat_tree",
    "build_linear",
    "build_random",
    "build_ring",
    "build_star",
    "build_tree",
    "ControllerHost",
    "YancController",
    "Simulator",
    "Credentials",
    "Syscalls",
    "VirtualFileSystem",
    "YancClient",
    "YancFs",
    "mount_yancfs",
    "__version__",
]
