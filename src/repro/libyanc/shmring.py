"""Zero-copy bulk-data passing between applications.

Models the paper's "efficient, zero-copy passing of bulk data — packet in
buffers, for example — among applications": a fixed-capacity single-
producer ring whose slots hold *references* to immutable buffers.  A
consumer receives exactly the producer's buffer object (a memoryview over
the same bytes), so the handoff cost is O(1) regardless of payload size.

For contrast, :meth:`ShmRing.put_copy` moves the same data the way the
file path would — through a byte copy — and bills ``bytes.copied``; the E2
benchmark shows the two curves diverge linearly in payload size.

A ring is *pollable* (the ``readable()`` / ``poll_register`` /
``poll_unregister`` protocol of :mod:`repro.vfs.poll`): a consumer
process registers the ring in its :class:`~repro.vfs.poll.Epoll` set and
is woken on the empty → non-empty edge, exactly as it would be for an
inotify descriptor — so shared-memory delivery plugs into the ordinary
process run loop instead of requiring a second wait primitive.
"""

from __future__ import annotations

from repro.perf.counters import PerfCounters


class ShmRing:
    """A bounded ring of buffer references in shared memory."""

    def __init__(self, capacity: int = 1024, *, counters: PerfCounters | None = None) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.counters = counters or PerfCounters()
        self._slots: list[memoryview | None] = [None] * capacity
        self._head = 0  # next slot to read
        self._tail = 0  # next slot to write
        self._size = 0
        self.dropped = 0
        #: Epoll instances watching this ring (see repro.vfs.poll).
        self._pollers: list = []

    def __len__(self) -> int:
        return self._size

    # -- readiness (the pollable protocol, see repro.vfs.poll) ---------------

    def readable(self) -> bool:
        """True when buffers are waiting (the pollable protocol)."""
        return self._size > 0

    def poll_register(self, poller) -> None:
        """An :class:`~repro.vfs.poll.Epoll` started watching this ring."""
        if poller not in self._pollers:
            self._pollers.append(poller)

    def poll_unregister(self, poller) -> None:
        """An :class:`~repro.vfs.poll.Epoll` stopped watching this ring."""
        if poller in self._pollers:
            self._pollers.remove(poller)

    @property
    def full(self) -> bool:
        """True when a put would be refused."""
        return self._size == self.capacity

    def put(self, data: bytes | bytearray | memoryview) -> bool:
        """Enqueue a reference to ``data`` — zero bytes copied.

        Returns False (and counts a drop) when the ring is full.
        """
        self.counters.add("shm.put")
        if self._size == self.capacity:
            self.dropped += 1
            self.counters.add("shm.dropped")
            return False
        was_empty = self._size == 0
        self._slots[self._tail] = data if isinstance(data, memoryview) else memoryview(data)
        self._tail = (self._tail + 1) % self.capacity
        self._size += 1
        if was_empty:
            for poller in list(self._pollers):
                poller.notify_readable(self)
        return True

    def put_copy(self, data: bytes) -> bool:
        """The copying alternative: what moving the payload through file
        descriptors costs.  Bills one byte-copy per payload byte."""
        self.counters.add("shm.put")
        self.counters.add("bytes.copied", len(data))
        return self.put(bytes(data))

    def get(self) -> memoryview | None:
        """Dequeue the oldest buffer reference (None when empty)."""
        self.counters.add("shm.get")
        if self._size == 0:
            return None
        slot = self._slots[self._head]
        self._slots[self._head] = None
        self._head = (self._head + 1) % self.capacity
        self._size -= 1
        return slot

    def drain(self) -> list[memoryview]:
        """Dequeue everything."""
        out = []
        while self._size:
            item = self.get()
            assert item is not None
            out.append(item)
        return out
