"""Direct-store flow operations (no system calls).

v2 (paper §8.1, ROADMAP item 1): beyond the original per-call fastpath,
the library now speaks in *batches*:

* **write-behind commits** — :meth:`LibYanc.stage_flow` /
  :meth:`LibYanc.write_flow_files` record spec mutations without bumping
  ``version``; one :meth:`LibYanc.flush` commits every dirty flow, so a
  burst of staged changes pays one visibility point per flow instead of
  one per mutation.  §3.4 semantics are preserved exactly: nothing a
  driver acts on becomes visible until its version increments, and
  versions only ever grow.
* **vectored directory I/O** — :meth:`LibYanc.read_flow_dir` and
  :meth:`LibYanc.read_flows` return whole flow directories (or the whole
  table) in one library call; :meth:`LibYanc.write_flow_files` applies a
  dict of validated attribute writes at once.
* **zero-copy packet rings** — per-(switch, app) :class:`ShmRing`
  packet-in rings and a per-switch packet-out ring; one
  :meth:`LibYanc.push_packet_in` fans a single buffer *reference* out to
  every subscribed ring.  Rings are pollable, so consumers park their
  epoll loop on them like any descriptor.
"""

from __future__ import annotations

from repro.dataplane.actions import Action
from repro.dataplane.match import Match
from repro.libyanc.shmring import ShmRing
from repro.perf.counters import PerfCounters
from repro.vfs.errors import FileExists, FileNotFound, NotADirectory
from repro.vfs.inode import DirInode
from repro.yancfs import validate
from repro.yancfs.schema import AttributeFile, FlowNode, FlowsDir, SwitchNode, YancFs

#: Default capacity of a packet ring created on first use.
DEFAULT_RING_CAPACITY = 1024


class LibYanc:
    """A process's handle on the shared-memory mapping of the yanc store.

    Each operation counts one ``libyanc.op`` (and its touched bytes) in the
    shared counters, but zero syscalls and zero context switches — the
    quantity the benchmark of experiment E2 compares against the file path.
    """

    def __init__(self, fs: YancFs, *, counters: PerfCounters | None = None) -> None:
        self.fs = fs
        self.counters = counters or PerfCounters()
        #: Flows staged but not yet committed, in staging order (the
        #: write-behind set :meth:`flush` drains).
        self._dirty: dict[tuple[str, str], None] = {}
        self._packet_in_rings: dict[tuple[str, str], ShmRing] = {}
        self._packet_out_rings: dict[str, ShmRing] = {}

    def _op(self, name: str) -> None:
        self.counters.add("libyanc.op")
        self.counters.add(f"libyanc.{name}")

    # -- store navigation (in-process pointer chasing, not path resolution) ----------

    def _switch(self, switch: str) -> SwitchNode:
        switches = self.fs.root.lookup("switches")
        if not isinstance(switches, DirInode):
            raise NotADirectory("switches")
        node = switches.lookup(switch)
        if not isinstance(node, SwitchNode):
            raise NotADirectory(switch, "not a switch object")
        return node

    def _flows(self, switch: str) -> FlowsDir:
        flows = self._switch(switch).lookup("flows")
        assert isinstance(flows, FlowsDir)
        return flows

    def _flow(self, switch: str, name: str) -> FlowNode:
        node = self._flows(switch).lookup(name)
        if not isinstance(node, FlowNode):
            raise NotADirectory(name, "not a flow object")
        return node

    # -- fastpath operations -------------------------------------------------------------

    def list_switches(self) -> list[str]:
        """All switch names (one shared-memory read)."""
        self._op("list_switches")
        switches = self.fs.root.lookup("switches")
        assert isinstance(switches, DirInode)
        return sorted(switches.names())

    def create_flow(
        self,
        switch: str,
        name: str,
        match: Match,
        actions: list[Action],
        *,
        priority: int | None = None,
        idle_timeout: float | None = None,
        hard_timeout: float | None = None,
        commit: bool = True,
    ) -> None:
        """Create a whole flow entry atomically (paper: "a fastpath for
        e.g. creating flow entries atomically and without any context
        switchings").

        The flow directory appears in the tree fully formed: watchers see
        the same IN_CREATE / IN_MODIFY events the file path produces, but
        the caller crossed into the kernel zero times.
        """
        self._op("create_flow")
        flows = self._flows(switch)
        if flows.has_child(name):
            raise FileExists(name)
        node = FlowNode(self.fs, mode=0o755, uid=0, gid=0)
        files = dict(match.to_files())
        for index, action in enumerate(actions):
            filename, content = action.to_file()
            if index:
                filename = f"{filename}.{index}"
            files[filename] = content
        if priority is not None:
            files["priority"] = str(priority)
        if idle_timeout is not None:
            files["timeout"] = str(idle_timeout)
        if hard_timeout is not None:
            files["hard_timeout"] = str(hard_timeout)
        flows.attach(name, node)  # populates counters/ + version
        for filename, content in files.items():
            attr = AttributeFile(
                self.fs, mode=0o644, uid=0, gid=0, validator=validate.flow_file_validator(filename)
            )
            attr.set_validated_content(content)  # same validation as close-time checks
            node.attach(filename, attr)
        if commit:
            self.commit_flow(switch, name)

    def commit_flow(self, switch: str, name: str) -> int:
        """Bump the version file in place; returns the new version."""
        self._op("commit_flow")
        version_node = self._flow(switch, name).lookup("version")
        assert isinstance(version_node, AttributeFile)
        new_version = int(version_node.read_all().decode().strip() or "0") + 1
        version_node.set_content(str(new_version).encode())
        self._dirty.pop((switch, name), None)
        return new_version

    def delete_flow(self, switch: str, name: str) -> None:
        """Remove a flow entry recursively (watchers see IN_DELETE as usual).

        Emits the exact event stream ``rm -r`` of the flow path produces:
        depth-first IN_DELETE for every descendant (so a watcher on
        ``counters/`` sees its children go), IN_DELETE_SELF on each
        emptied directory, and finally IN_DELETE for the flow itself on
        the flows directory.
        """
        self._op("delete_flow")
        flows = self._flows(switch)
        node = flows.lookup(name)
        if isinstance(node, DirInode) and not node.is_empty():
            self._remove_subtree(node)
        flows.detach(name)
        self._dirty.pop((switch, name), None)

    def _remove_subtree(self, node: DirInode) -> None:
        # Mirrors VirtualFileSystem._remove_subtree so the fastpath and the
        # file path are indistinguishable to watchers.
        for child_name, child in list(node.children()):
            if isinstance(child, DirInode):
                self._remove_subtree(child)
            node.detach(child_name)

    def flow_counters(self, switch: str, name: str) -> dict[str, int]:
        """Read a flow's counters without a single stat()/read() call."""
        self._op("flow_counters")
        counters = self._flow(switch, name).lookup("counters")
        assert isinstance(counters, DirInode)
        out = {}
        for child_name, child in counters.children():
            assert isinstance(child, AttributeFile)
            out[child_name] = int(child.read_all().decode().strip() or "0")
        return out

    def bulk_create(
        self,
        switch: str,
        entries: list[tuple[str, Match, list[Action]]],
        *,
        priority: int | None = None,
        idle_timeout: float | None = None,
        hard_timeout: float | None = None,
        commit: bool = True,
    ) -> int:
        """Create many flows in one library call; returns how many.

        Every entry's spec files land first, then (with ``commit=True``)
        each flow's version bumps in one pass at the end of the batch —
        the §3.4 visibility point fires once per flow per batch, never
        interleaved with later entries' writes.  With ``commit=False``
        the whole batch stays staged for a later :meth:`flush`.
        """
        self._op("bulk_create")
        for name, match, actions in entries:
            self.create_flow(
                switch,
                name,
                match,
                actions,
                priority=priority,
                idle_timeout=idle_timeout,
                hard_timeout=hard_timeout,
                commit=False,
            )
        for name, _match, _actions in entries:
            if commit:
                self.commit_flow(switch, name)
            else:
                self._dirty[(switch, name)] = None
        return len(entries)

    def read_attribute(self, switch: str, flow: str, filename: str) -> str:
        """Read one attribute file's content directly."""
        self._op("read_attribute")
        node = self._flow(switch, flow).lookup(filename)
        if not isinstance(node, AttributeFile):
            raise FileNotFound(filename)
        return node.read_all().decode()

    # -- vectored directory I/O (one library call per directory, not per file) -------

    def read_flow_dir(self, switch: str, name: str) -> dict[str, str]:
        """Every attribute file of one flow in a single operation.

        The vectored read the file path spells as listdir + one
        open/read/close per entry.  ``counters/`` is skipped (use
        :meth:`flow_counters`).
        """
        self._op("read_flow_dir")
        return self._snapshot_flow(self._flow(switch, name))

    def read_flows(self, switch: str) -> dict[str, dict[str, str]]:
        """The whole flow table — every flow's attribute files — at once."""
        self._op("read_flows")
        out: dict[str, dict[str, str]] = {}
        for name, node in sorted(self._flows(switch).children()):
            if isinstance(node, FlowNode):
                out[name] = self._snapshot_flow(node)
        return out

    @staticmethod
    def _snapshot_flow(node: FlowNode) -> dict[str, str]:
        out = {}
        for filename, child in node.children():
            if isinstance(child, AttributeFile):
                out[filename] = child.read_all().decode()
        return out

    def write_flow_files(self, switch: str, name: str, files: dict[str, str], *, commit: bool = False) -> None:
        """Apply many attribute writes to one flow as a single operation.

        Each value passes the same validator the file path runs at close
        time; validation failures raise before *any* file changes, so a
        vectored write is all-or-nothing.  Without ``commit`` the flow is
        marked dirty for the next :meth:`flush` (write-behind).
        """
        self._op("write_flow_files")
        node = self._flow(switch, name)
        staged: list[tuple[str, AttributeFile, str, bool]] = []
        for filename, content in files.items():
            if filename == "version":
                raise FileExists(filename, "version is written by commit/flush, not directly")
            is_new = not node.has_child(filename)
            if is_new:
                attr = AttributeFile(
                    self.fs, mode=0o644, uid=0, gid=0, validator=validate.flow_file_validator(filename)
                )
            else:
                attr = node.lookup(filename)
                if not isinstance(attr, AttributeFile):
                    raise FileNotFound(filename)
            if attr.validator is not None:
                attr.validator(content)  # all-or-nothing: reject before any write lands
            staged.append((filename, attr, content, is_new))
        for filename, attr, content, is_new in staged:
            attr.set_validated_content(content)
            if is_new:
                node.attach(filename, attr)
        if commit:
            self.commit_flow(switch, name)
        else:
            self._dirty[(switch, name)] = None

    # -- write-behind commits (§3.4 visibility, batched) -----------------------------

    def stage_flow(
        self,
        switch: str,
        name: str,
        match: Match,
        actions: list[Action],
        *,
        priority: int | None = None,
        idle_timeout: float | None = None,
        hard_timeout: float | None = None,
    ) -> None:
        """Create a flow with its commit deferred to the next :meth:`flush`.

        The directory and spec files appear immediately (version 0 — a
        driver ignores it until committed); the visibility point is paid
        later, once, by :meth:`flush`.
        """
        self._op("stage_flow")
        self.create_flow(
            switch,
            name,
            match,
            actions,
            priority=priority,
            idle_timeout=idle_timeout,
            hard_timeout=hard_timeout,
            commit=False,
        )
        self._dirty[(switch, name)] = None

    @property
    def dirty_flows(self) -> list[tuple[str, str]]:
        """(switch, flow) pairs staged and awaiting :meth:`flush`."""
        return list(self._dirty)

    def flush(self) -> list[tuple[str, str, int]]:
        """Commit every staged flow, in staging order.

        Returns (switch, flow, new_version) per commit.  Flows deleted
        since staging are skipped silently — there is nothing left to make
        visible.
        """
        self._op("flush")
        out: list[tuple[str, str, int]] = []
        pending, self._dirty = self._dirty, {}
        for switch, name in pending:
            try:
                out.append((switch, name, self.commit_flow(switch, name)))
            except (NotADirectory, FileNotFound):
                continue
        return out

    # -- zero-copy packet rings (pollable shared-memory transport) -------------------

    def packet_in_ring(self, switch: str, app: str, *, capacity: int = DEFAULT_RING_CAPACITY) -> ShmRing:
        """This app's packet-in ring on ``switch`` (created on first use).

        The shared-memory counterpart of the §3.5 ``events/<app>`` buffer:
        subscribing returns a pollable ring the consumer parks its epoll
        loop on; :meth:`push_packet_in` fans references into every ring.
        """
        self._switch(switch)  # same existence check as the file path's mkdir
        key = (switch, app)
        ring = self._packet_in_rings.get(key)
        if ring is None:
            self._op("packet_in_ring")
            ring = ShmRing(capacity, counters=self.counters)
            self._packet_in_rings[key] = ring
        return ring

    def drop_packet_in_ring(self, switch: str, app: str) -> None:
        """Unsubscribe: pending buffers are discarded with the ring."""
        self._op("drop_packet_in_ring")
        self._packet_in_rings.pop((switch, app), None)

    def push_packet_in(self, switch: str, payload: bytes | bytearray | memoryview) -> int:
        """Fan one packet-in buffer out to every subscribed ring, zero-copy.

        Each subscriber receives a reference to the *same* buffer (a
        memoryview), so fan-out is O(subscribers) pointer stores with no
        bytes copied.  Full rings drop (counted per ring); returns how
        many rings accepted the buffer.
        """
        self._op("push_packet_in")
        view = payload if isinstance(payload, memoryview) else memoryview(payload)
        delivered = 0
        for (ring_switch, _app), ring in self._packet_in_rings.items():
            if ring_switch == switch and ring.put(view):
                delivered += 1
        return delivered

    def packet_out_ring(self, switch: str, *, capacity: int = DEFAULT_RING_CAPACITY) -> ShmRing:
        """The switch's outbound packet ring (driver-consumed)."""
        self._switch(switch)
        ring = self._packet_out_rings.get(switch)
        if ring is None:
            self._op("packet_out_ring")
            ring = ShmRing(capacity, counters=self.counters)
            self._packet_out_rings[switch] = ring
        return ring

    def push_packet_out(self, switch: str, payload: bytes | bytearray | memoryview) -> bool:
        """Queue one outbound frame reference; False when the ring is full."""
        self._op("push_packet_out")
        return self.packet_out_ring(switch).put(payload)
