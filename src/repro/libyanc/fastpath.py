"""Direct-store flow operations (no system calls)."""

from __future__ import annotations

from repro.dataplane.actions import Action
from repro.dataplane.match import Match
from repro.perf.counters import PerfCounters
from repro.vfs.errors import FileExists, FileNotFound, NotADirectory
from repro.vfs.inode import DirInode
from repro.yancfs import validate
from repro.yancfs.schema import AttributeFile, FlowNode, FlowsDir, SwitchNode, YancFs


class LibYanc:
    """A process's handle on the shared-memory mapping of the yanc store.

    Each operation counts one ``libyanc.op`` (and its touched bytes) in the
    shared counters, but zero syscalls and zero context switches — the
    quantity the benchmark of experiment E2 compares against the file path.
    """

    def __init__(self, fs: YancFs, *, counters: PerfCounters | None = None) -> None:
        self.fs = fs
        self.counters = counters or PerfCounters()

    def _op(self, name: str) -> None:
        self.counters.add("libyanc.op")
        self.counters.add(f"libyanc.{name}")

    # -- store navigation (in-process pointer chasing, not path resolution) ----------

    def _switch(self, switch: str) -> SwitchNode:
        switches = self.fs.root.lookup("switches")
        if not isinstance(switches, DirInode):
            raise NotADirectory("switches")
        node = switches.lookup(switch)
        if not isinstance(node, SwitchNode):
            raise NotADirectory(switch, "not a switch object")
        return node

    def _flows(self, switch: str) -> FlowsDir:
        flows = self._switch(switch).lookup("flows")
        assert isinstance(flows, FlowsDir)
        return flows

    def _flow(self, switch: str, name: str) -> FlowNode:
        node = self._flows(switch).lookup(name)
        if not isinstance(node, FlowNode):
            raise NotADirectory(name, "not a flow object")
        return node

    # -- fastpath operations -------------------------------------------------------------

    def list_switches(self) -> list[str]:
        """All switch names (one shared-memory read)."""
        self._op("list_switches")
        switches = self.fs.root.lookup("switches")
        assert isinstance(switches, DirInode)
        return sorted(switches.names())

    def create_flow(
        self,
        switch: str,
        name: str,
        match: Match,
        actions: list[Action],
        *,
        priority: int | None = None,
        idle_timeout: float | None = None,
        hard_timeout: float | None = None,
        commit: bool = True,
    ) -> None:
        """Create a whole flow entry atomically (paper: "a fastpath for
        e.g. creating flow entries atomically and without any context
        switchings").

        The flow directory appears in the tree fully formed: watchers see
        the same IN_CREATE / IN_MODIFY events the file path produces, but
        the caller crossed into the kernel zero times.
        """
        self._op("create_flow")
        flows = self._flows(switch)
        if flows.has_child(name):
            raise FileExists(name)
        node = FlowNode(self.fs, mode=0o755, uid=0, gid=0)
        files = dict(match.to_files())
        for index, action in enumerate(actions):
            filename, content = action.to_file()
            if index:
                filename = f"{filename}.{index}"
            files[filename] = content
        if priority is not None:
            files["priority"] = str(priority)
        if idle_timeout is not None:
            files["timeout"] = str(idle_timeout)
        if hard_timeout is not None:
            files["hard_timeout"] = str(hard_timeout)
        flows.attach(name, node)  # populates counters/ + version
        for filename, content in files.items():
            attr = AttributeFile(
                self.fs, mode=0o644, uid=0, gid=0, validator=validate.flow_file_validator(filename)
            )
            attr.validator(content)  # same validation as close-time checks
            attr.set_content(content.encode())
            attr._last_valid = content.encode()
            node.attach(filename, attr)
        if commit:
            self.commit_flow(switch, name)

    def commit_flow(self, switch: str, name: str) -> int:
        """Bump the version file in place; returns the new version."""
        self._op("commit_flow")
        version_node = self._flow(switch, name).lookup("version")
        assert isinstance(version_node, AttributeFile)
        new_version = int(version_node.read_all().decode().strip() or "0") + 1
        version_node.set_content(str(new_version).encode())
        return new_version

    def delete_flow(self, switch: str, name: str) -> None:
        """Remove a flow entry (watchers see IN_DELETE as usual)."""
        self._op("delete_flow")
        flows = self._flows(switch)
        node = flows.lookup(name)
        if isinstance(node, DirInode):
            for child_name, _child in list(node.children()):
                node.detach(child_name, emit_mask=None)
        flows.detach(name)

    def flow_counters(self, switch: str, name: str) -> dict[str, int]:
        """Read a flow's counters without a single stat()/read() call."""
        self._op("flow_counters")
        counters = self._flow(switch, name).lookup("counters")
        assert isinstance(counters, DirInode)
        out = {}
        for child_name, child in counters.children():
            assert isinstance(child, AttributeFile)
            out[child_name] = int(child.read_all().decode().strip() or "0")
        return out

    def bulk_create(
        self,
        switch: str,
        entries: list[tuple[str, Match, list[Action]]],
        *,
        priority: int | None = None,
    ) -> int:
        """Create many flows in one library call; returns how many."""
        self._op("bulk_create")
        for name, match, actions in entries:
            self.create_flow(switch, name, match, actions, priority=priority)
        return len(entries)

    def read_attribute(self, switch: str, flow: str, filename: str) -> str:
        """Read one attribute file's content directly."""
        self._op("read_attribute")
        node = self._flow(switch, flow).lookup(filename)
        if not isinstance(node, AttributeFile):
            raise FileNotFound(filename)
        return node.read_all().decode()
