"""libyanc: the shared-memory fastpath of paper section 8.1.

The file interface pays per-access system calls; libyanc is "a set of
network-centric library calls atop a shared memory system" providing

* a fastpath for creating flow entries **atomically and without any
  context switches** (:meth:`LibYanc.create_flow` touches the store
  directly — in this reproduction, the same address space stands in for
  the mapped shared-memory segment), and
* **zero-copy passing of bulk data** — packet-in buffers — among
  applications (:class:`ShmRing`).

Notify events still fire for every mutation (the store emits them itself),
so drivers and watchers cannot tell whether a flow arrived via ``echo`` or
via libyanc — only the cost differs.
"""

from repro.libyanc.fastpath import LibYanc
from repro.libyanc.shmring import ShmRing

__all__ = ["LibYanc", "ShmRing"]
