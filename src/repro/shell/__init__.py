"""The standard-utilities toolbox (paper section 5.4)."""

from repro.shell.toolbox import Shell, ShellError

__all__ = ["Shell", "ShellError"]
