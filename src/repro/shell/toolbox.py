"""Coreutils over the VFS: the paper's section 5.4 made executable.

    $ ls -l /net/switches
    $ find /net -name match.tp_dst -exec grep 22 {} ;
    $ echo 1 > /net/switches/sw1/ports/port_2/config.port_down

Every command runs through an ordinary :class:`~repro.vfs.Syscalls`
context, so permissions, namespaces, and metering apply exactly as they
would to any other application.
"""

from __future__ import annotations

import fnmatch
import re
import shlex

from repro.vfs.errors import CrossDevice, FsError
from repro.vfs.stat import FileType, format_mode
from repro.vfs.syscalls import Syscalls


class ShellError(Exception):
    """A command failed (bad usage or an FsError it chose to surface)."""


class Shell:
    """A tiny non-interactive shell: ``run("ls -l /net/switches")``."""

    def __init__(self, sc: Syscalls) -> None:
        self.sc = sc

    # -- entry point ----------------------------------------------------------------

    def run(self, command_line: str) -> str:
        """Execute one command line; returns its stdout as a string."""
        tokens = shlex.split(command_line)
        if not tokens:
            return ""
        redirect = None
        append = False
        if ">>" in tokens:
            index = tokens.index(">>")
            redirect, append = tokens[index + 1], True
            tokens = tokens[:index]
        elif ">" in tokens:
            index = tokens.index(">")
            redirect = tokens[index + 1]
            tokens = tokens[:index]
        name, args = tokens[0], tokens[1:]
        handler = getattr(self, f"cmd_{name.replace('-', '_')}", None)
        if handler is None:
            raise ShellError(f"unknown command: {name}")
        try:
            output = handler(args)
            if redirect is not None:
                self.sc.write_text(redirect, output, append=append)
                return ""
        except FsError as exc:
            raise ShellError(f"{name}: {exc}") from exc
        return output

    # -- commands ---------------------------------------------------------------------

    def cmd_ls(self, args: list[str]) -> str:
        """ls [-l] [path...]"""
        long_format = "-l" in args
        paths = [a for a in args if not a.startswith("-")] or [self.sc.getcwd()]
        blocks = []
        for path in paths:
            st = self.sc.stat(path)
            if not long_format:
                if st.is_dir:
                    names = self.sc.listdir(path)
                else:
                    names = [path.rstrip("/").rsplit("/", 1)[-1]]
                blocks.append("\n".join(sorted(names)))
                continue
            if st.is_dir:
                entries = self.sc.scandir(path)
            else:
                name = path.rstrip("/").rsplit("/", 1)[-1]
                entries = [(name, self.sc.lstat(path))]
                path = path.rsplit("/", 1)[0] or "/"
            lines = []
            for entry, entry_stat in sorted(entries, key=lambda e: e[0]):
                suffix = ""
                if entry_stat.is_symlink:
                    target = self.sc.readlink(f"{path.rstrip('/')}/{entry}")
                    suffix = f" -> {target}"
                lines.append(
                    f"{format_mode(entry_stat.ftype, entry_stat.mode)} "
                    f"{entry_stat.nlink:>2} {entry_stat.uid:>4} {entry_stat.gid:>4} "
                    f"{entry_stat.size:>8} {entry}{suffix}"
                )
            blocks.append("\n".join(lines))
        return "\n".join(blocks)

    def cmd_cat(self, args: list[str]) -> str:
        """cat file..."""
        if not args:
            raise ShellError("cat: missing operand")
        return "".join(self.sc.read_text(path) for path in args)

    def cmd_echo(self, args: list[str]) -> str:
        """echo words... (combine with > for the paper's config idiom)"""
        return " ".join(args)

    def cmd_grep(self, args: list[str]) -> str:
        """grep [-r] [-l] pattern path..."""
        recursive = "-r" in args
        names_only = "-l" in args
        rest = [a for a in args if not a.startswith("-")]
        if len(rest) < 2:
            raise ShellError("grep: usage: grep [-r] [-l] pattern path...")
        pattern, paths = rest[0], rest[1:]
        regex = re.compile(pattern)
        matches = []
        for path in paths:
            for file_path in self._grep_targets(path, recursive):
                try:
                    content = self.sc.read_text(file_path)
                except (FsError, UnicodeDecodeError):
                    continue
                hit = False
                for line in content.splitlines():
                    if regex.search(line):
                        hit = True
                        if not names_only:
                            matches.append(f"{file_path}:{line}")
                if hit and names_only:
                    matches.append(file_path)
        return "\n".join(matches)

    def _grep_targets(self, path: str, recursive: bool):
        st = self.sc.stat(path)
        if not st.is_dir:
            yield path
            return
        if not recursive:
            raise ShellError(f"grep: {path}: is a directory (use -r)")
        for dirpath, _dirnames, filenames in self.sc.walk(path):
            for name in filenames:
                yield f"{dirpath}/{name}"

    def cmd_find(self, args: list[str]) -> str:
        """find path [-name glob] [-type f|d|l] [-exec grep pat {} ;]"""
        if not args:
            raise ShellError("find: missing path")
        path = args[0]
        name_glob = None
        type_filter = None
        exec_grep = None
        index = 1
        while index < len(args):
            arg = args[index]
            if arg == "-name":
                name_glob = args[index + 1]
                index += 2
            elif arg == "-type":
                type_filter = args[index + 1]
                index += 2
            elif arg == "-exec":
                # only 'grep PATTERN {} ;' is supported, like the paper's one-liner
                if args[index + 1] != "grep":
                    raise ShellError("find: only '-exec grep' is supported")
                exec_grep = args[index + 2]
                index += 3
                while index < len(args) and args[index] in ("{}", ";", "\\;"):
                    index += 1
            else:
                raise ShellError(f"find: unknown predicate {arg!r}")
        results = []
        for found_path, ftype in self._find_walk(path):
            base = found_path.rstrip("/").rsplit("/", 1)[-1]
            if name_glob is not None and not fnmatch.fnmatch(base, name_glob):
                continue
            if type_filter is not None:
                wanted = {"f": FileType.REGULAR, "d": FileType.DIRECTORY, "l": FileType.SYMLINK}[type_filter]
                if ftype is not wanted:
                    continue
            if exec_grep is not None:
                if ftype is not FileType.REGULAR:
                    continue
                try:
                    content = self.sc.read_text(found_path)
                except (FsError, UnicodeDecodeError):
                    continue
                regex = re.compile(exec_grep)
                for line in content.splitlines():
                    if regex.search(line):
                        results.append(f"{found_path}:{line}")
            else:
                results.append(found_path)
        return "\n".join(results)

    def _find_walk(self, path: str):
        # Breadth-first like walk(), but one scandir() per directory gives
        # every child's ftype without the per-file lstat() storm.
        yield path, self.sc.stat(path).ftype
        queue = [path]
        while queue:
            dirpath = queue.pop(0)
            entries = self.sc.scandir(dirpath)
            subdirs = []
            for name, stat in entries:
                if stat.ftype is FileType.DIRECTORY:
                    child = f"{dirpath.rstrip('/')}/{name}"
                    subdirs.append(child)
                    yield child, FileType.DIRECTORY
            for name, stat in entries:
                if stat.ftype is not FileType.DIRECTORY:
                    yield f"{dirpath.rstrip('/')}/{name}", stat.ftype
            queue.extend(subdirs)

    def cmd_tree(self, args: list[str]) -> str:
        """tree [path] [-L depth] — render like paper figure 2."""
        depth_limit = None
        paths = []
        index = 0
        while index < len(args):
            if args[index] == "-L":
                depth_limit = int(args[index + 1])
                index += 2
            else:
                paths.append(args[index])
                index += 1
        path = paths[0] if paths else self.sc.getcwd()
        lines = [path]
        self._tree(path, "", lines, depth_limit, 1)
        return "\n".join(lines)

    def _tree(self, path: str, prefix: str, lines: list[str], depth_limit: int | None, depth: int) -> None:
        if depth_limit is not None and depth > depth_limit:
            return
        try:
            entries = sorted(self.sc.scandir(path), key=lambda e: e[0])
        except FsError:
            return
        for position, (name, stat) in enumerate(entries):
            last = position == len(entries) - 1
            connector = "└── " if last else "├── "
            child = f"{path.rstrip('/')}/{name}"
            label = name
            if stat.is_symlink:
                label += f" -> {self.sc.readlink(child)}"
            lines.append(prefix + connector + label)
            if stat.is_dir:
                extension = "    " if last else "│   "
                self._tree(child, prefix + extension, lines, depth_limit, depth + 1)

    def cmd_mkdir(self, args: list[str]) -> str:
        """mkdir [-p] dir..."""
        parents = "-p" in args
        for path in (a for a in args if not a.startswith("-")):
            if parents:
                self.sc.makedirs(path)
            else:
                self.sc.mkdir(path)
        return ""

    def cmd_rmdir(self, args: list[str]) -> str:
        """rmdir dir..."""
        for path in args:
            self.sc.rmdir(path)
        return ""

    def cmd_rm(self, args: list[str]) -> str:
        """rm [-r] path..."""
        recursive = "-r" in args
        for path in (a for a in args if not a.startswith("-")):
            if recursive and self.sc.lstat(path).is_dir:
                self._rm_tree(path)
            else:
                self.sc.unlink(path)
        return ""

    def _rm_tree(self, path: str) -> None:
        for name, stat in self.sc.scandir(path):
            child = f"{path.rstrip('/')}/{name}"
            if stat.is_dir:
                self._rm_tree(child)
            else:
                self.sc.unlink(child)
        self.sc.rmdir(path)

    def cmd_cp(self, args: list[str]) -> str:
        """cp [-r] src dst"""
        recursive = "-r" in args
        rest = [a for a in args if not a.startswith("-")]
        if len(rest) != 2:
            raise ShellError("cp: usage: cp [-r] src dst")
        src, dst = rest
        self._copy(src, dst, recursive)
        return ""

    def _copy(self, src: str, dst: str, recursive: bool) -> None:
        stat = self.sc.lstat(src)
        if stat.is_symlink:
            self.sc.symlink(self.sc.readlink(src), dst)
            return
        if stat.is_dir:
            if not recursive:
                raise ShellError(f"cp: {src}: is a directory (use -r)")
            if not self.sc.exists(dst):
                self.sc.mkdir(dst)
            for name in self.sc.listdir(src):
                self._copy(f"{src.rstrip('/')}/{name}", f"{dst.rstrip('/')}/{name}", True)
            return
        if self.sc.exists(dst) and self.sc.stat(dst).is_dir:
            dst = f"{dst.rstrip('/')}/{src.rstrip('/').rsplit('/', 1)[-1]}"
        self.sc.write_bytes(dst, self.sc.read_bytes(src))

    def cmd_mv(self, args: list[str]) -> str:
        """mv src dst (copy+remove across file systems)"""
        if len(args) != 2:
            raise ShellError("mv: usage: mv src dst")
        src, dst = args
        try:
            self.sc.rename(src, dst)
        except CrossDevice:
            self._copy(src, dst, True)
            if self.sc.lstat(src).is_dir:
                self._rm_tree(src)
            else:
                self.sc.unlink(src)
        return ""

    def cmd_ln(self, args: list[str]) -> str:
        """ln -s target linkpath (symbolic only)"""
        if "-s" not in args:
            raise ShellError("ln: only symbolic links (-s) are supported")
        rest = [a for a in args if a != "-s"]
        if len(rest) != 2:
            raise ShellError("ln: usage: ln -s target linkpath")
        self.sc.symlink(rest[0], rest[1])
        return ""

    def cmd_stat(self, args: list[str]) -> str:
        """stat path..."""
        lines = []
        for path in args:
            st = self.sc.stat(path)
            lines.append(
                f"{path}: ino={st.ino} type={st.ftype.value} mode={st.mode:o} "
                f"uid={st.uid} gid={st.gid} size={st.size} nlink={st.nlink}"
            )
        return "\n".join(lines)

    def cmd_touch(self, args: list[str]) -> str:
        """touch file..."""
        for path in args:
            if not self.sc.exists(path):
                self.sc.write_text(path, "")
        return ""

    def cmd_wc(self, args: list[str]) -> str:
        """wc [-l] file..."""
        lines_only = "-l" in args
        out = []
        for path in (a for a in args if not a.startswith("-")):
            content = self.sc.read_text(path)
            line_count = len(content.splitlines())
            if lines_only:
                out.append(f"{line_count} {path}")
            else:
                out.append(f"{line_count} {len(content.split())} {len(content)} {path}")
        return "\n".join(out)
