"""Namespace isolation for views (paper section 5.3).

A tenant application should not merely be *asked* to stay inside its view
— with Linux mount namespaces it can be *unable* to see anything else.
:func:`view_namespace` builds a namespace in which the view subtree is
bind-mounted over ``/net``, so the tenant's ``/net/switches`` is its
slice's switches and the master tree is unreachable by any path.
"""

from __future__ import annotations

from repro.vfs.cred import Credentials
from repro.vfs.errors import InvalidArgument
from repro.vfs.inode import require_dir
from repro.vfs.mount import MountNamespace
from repro.vfs.syscalls import Syscalls
from repro.vfs.vfs import VirtualFileSystem


def view_namespace(
    vfs: VirtualFileSystem,
    view_path: str,
    *,
    mount_point: str = "/net",
    name: str = "",
) -> MountNamespace:
    """A cloned namespace where ``view_path`` is mounted over ``/net``."""
    root_ns = vfs.root_ns
    from repro.vfs.cred import ROOT

    view_dir = require_dir(vfs.resolve(root_ns, ROOT, view_path), view_path)
    ns = root_ns.clone(name=name or f"view:{view_path}")
    # Find the mount-point directory in the *root* file system (not the
    # mounted root) so the bind shadows the whole yanc mount.
    from repro.vfs.path import split_path

    parts = split_path(mount_point)
    node = ns.root_entry.root
    for part in parts:
        node = require_dir(node, mount_point).lookup(part)
    mountpoint = require_dir(node, mount_point)
    if ns.mount_at(mountpoint) is not None:
        ns.umount(mountpoint)
    ns.bind(mountpoint, view_dir, source=view_path)
    return ns


def grant_view(sc: Syscalls, view_path: str, uid: int, gid: int) -> int:
    """Hand a view subtree to a tenant: chown everything under it.

    This is the paper's section 5.1 in action — the admin uses ordinary
    ownership to delegate a slice.  Returns the number of nodes chowned.
    """
    count = 0
    sc.chown(view_path, uid, gid)
    count += 1
    for dirpath, dirnames, filenames in sc.walk(view_path):
        for name in dirnames + filenames:
            sc.chown(f"{dirpath}/{name}", uid, gid)
            count += 1
    return count


def tenant_process(
    vfs: VirtualFileSystem,
    view_path: str,
    cred: Credentials,
    *,
    mount_point: str = "/net",
) -> Syscalls:
    """A process context jailed inside a view.

    The returned facade sees the view as ``/net`` and runs with the given
    (non-root, typically) credentials.
    """
    if cred.is_root:
        raise InvalidArgument(detail="tenant processes should not run as root")
    ns = view_namespace(vfs, view_path, mount_point=mount_point)
    return Syscalls(vfs, cred=cred, ns=ns)
