"""The slicer: a translation application between two portions of the tree.

"To create a new view, an application effectively interacts with two
portions of the file system simultaneously — providing a translation
between them" (paper section 4.2).  A :class:`Slicer` materializes a view
directory holding a *subset* of the switches and a *headerspace* subset of
traffic; tenants operate on the view exactly as they would on ``/net``
(same schema — views are structurally identical), and the slicer:

* mirrors sliced switches (ids, ports, intra-slice peer links) into the
  view;
* write-through-translates committed tenant flows: the installed match is
  the intersection of the tenant match with the slice headerspace, the
  priority is clamped below the system band, and flows outside the slice
  are rejected in place (a ``state.status`` file in the tenant's flow
  directory);
* forwards headerspace-matching packet-ins from the master tree into the
  tenant buffers inside the view;
* mirrors flow counters back into the view.

Because a view contains a ``views/`` directory too, slicers stack: run a
second slicer with ``root`` pointing inside the first view (§4.2:
"views can be stacked arbitrarily").
"""

from __future__ import annotations

from repro.dataplane.match import Match
from repro.netpkt.packet import parse_frame
from repro.vfs.errors import FileExists, FsError
from repro.vfs.notify import EventMask
from repro.yancfs.client import YancClient
from repro.apps.base import YancApp
from repro.views.merge import intersect

_DIR_MASK = EventMask.IN_CREATE | EventMask.IN_DELETE | EventMask.IN_MOVED_FROM | EventMask.IN_MOVED_TO
_FLOW_MASK = EventMask.IN_MODIFY | EventMask.IN_CLOSE_WRITE

#: Tenant flows are clamped below the system apps' priority band.
MAX_TENANT_PRIORITY = 0x7FFF


class Slicer(YancApp):
    """One view's translation process."""

    def __init__(
        self,
        sc,
        sim,
        *,
        view: str,
        switches: list[str],
        headerspace: Match,
        root: str = "/net",
        counter_sync_interval: float = 1.0,
    ) -> None:
        super().__init__(sc, sim, root=root, name=f"slicer_{view}")
        self.view = view
        self.sliced_switches = list(switches)
        self.headerspace = headerspace
        self.counter_sync_interval = counter_sync_interval
        self.view_yc: YancClient = self.yc.in_view(view)
        #: (switch, tenant flow) -> master flow name
        self._installed: dict[tuple[str, str], str] = {}
        self._flow_versions: dict[tuple[str, str], int] = {}
        self.flows_translated = 0
        self.flows_rejected = 0
        self.events_forwarded = 0

    # -- setup ---------------------------------------------------------------------

    def on_start(self) -> None:
        if not self.sc.exists(self.view_yc.root):
            self.yc.create_view(self.view)
        for switch in self.sliced_switches:
            self._mirror_switch(switch)
        self._mirror_peer_links()
        if self.counter_sync_interval > 0:
            self.every(self.counter_sync_interval, self.sync_counters)

    def _mirror_switch(self, switch: str) -> None:
        if not self.sc.exists(self.yc.switch_path(switch)):
            return
        view_path = self.view_yc.switch_path(switch)
        if not self.sc.exists(view_path):
            self.view_yc.create_switch(switch)
            try:
                dpid = self.yc.switch_dpid(switch)
                self.sc.write_text(f"{view_path}/id", str(dpid))
            except (FsError, ValueError):
                pass
        for port_name in self.yc.ports(switch):
            if not self.sc.exists(self.view_yc.port_path(switch, port_name)):
                try:
                    port_no = int(port_name.rsplit("_", 1)[-1])
                except ValueError:
                    continue
                self.view_yc.create_port(switch, port_no)
        # master-side packet-in subscription for this sliced switch
        self.yc.subscribe_events(switch, self.app_name)
        self.watch(self.yc.events_path(switch, self.app_name), EventMask.IN_CREATE | EventMask.IN_MOVED_TO, ("master_buffer", switch))
        # tenant-side watches
        self.watch(f"{view_path}/flows", _DIR_MASK, ("view_flows", switch))
        for flow in self.view_yc.flows(switch):
            self.watch(self.view_yc.flow_path(switch, flow), _FLOW_MASK, ("view_flow", switch, flow))
        self.watch(f"{view_path}/packet_out", _DIR_MASK | EventMask.IN_CLOSE_WRITE, ("view_pktout", switch))

    def _mirror_peer_links(self) -> None:
        for switch in self.sliced_switches:
            try:
                port_names = self.yc.ports(switch)
            except FsError:
                continue
            for port_name in port_names:
                target = self.yc.peer_of(switch, port_name)
                if target is None:
                    continue
                parts = target.rstrip("/").split("/")
                peer_switch, peer_port_name = parts[-3], parts[-1]
                if peer_switch in self.sliced_switches:
                    try:
                        self.view_yc.set_peer(switch, port_name, peer_switch, peer_port_name)
                    except FsError:
                        continue

    # -- events -----------------------------------------------------------------------

    def on_event(self, ctx, event) -> None:
        kind = ctx[0]
        if kind == "view_flows":
            self._on_view_flows_event(ctx[1], event)
        elif kind == "view_flow":
            if event.name == "version":
                self._sync_tenant_flow(ctx[1], ctx[2])
        elif kind == "master_buffer":
            self._forward_packet_ins(ctx[1])
        elif kind == "view_pktout":
            self._forward_packet_out(ctx[1], event)

    def _on_view_flows_event(self, switch: str, event) -> None:
        if event.name is None:
            return
        if event.mask & (EventMask.IN_CREATE | EventMask.IN_MOVED_TO):
            self.watch(self.view_yc.flow_path(switch, event.name), _FLOW_MASK, ("view_flow", switch, event.name))
            self._sync_tenant_flow(switch, event.name)
        elif event.mask & (EventMask.IN_DELETE | EventMask.IN_MOVED_FROM):
            master_name = self._installed.pop((switch, event.name), None)
            self._flow_versions.pop((switch, event.name), None)
            if master_name is not None:
                try:
                    self.yc.delete_flow(switch, master_name)
                except FsError:
                    pass

    # -- flow translation -----------------------------------------------------------------

    def _sync_tenant_flow(self, switch: str, flow: str) -> None:
        try:
            spec = self.view_yc.read_flow(switch, flow)
        except FsError:
            return
        key = (switch, flow)
        if spec.version <= self._flow_versions.get(key, 0):
            return
        self._flow_versions[key] = spec.version
        merged = intersect(spec.match, self.headerspace)
        if merged is None:
            self.flows_rejected += 1
            self._set_status(switch, flow, "rejected: match outside slice headerspace")
            return
        master_name = f"v_{self.view}_{flow}"
        priority = min(spec.priority, MAX_TENANT_PRIORITY)
        old = self._installed.get(key)
        try:
            if old is not None and self.sc.exists(self.yc.flow_path(switch, old)):
                self.yc.delete_flow(switch, old)
            self.yc.create_flow(
                switch,
                master_name,
                merged,
                list(spec.actions),
                priority=priority,
                idle_timeout=spec.idle_timeout or None,
                hard_timeout=spec.hard_timeout or None,
            )
        except (FileExists, FsError) as exc:
            self.flows_rejected += 1
            self._set_status(switch, flow, f"rejected: {exc}")
            return
        self._installed[key] = master_name
        self.flows_translated += 1
        self._set_status(switch, flow, "installed")

    def _set_status(self, switch: str, flow: str, status: str) -> None:
        try:
            self.sc.write_text(f"{self.view_yc.flow_path(switch, flow)}/state.status", status)
        except FsError:
            pass

    # -- packet-in / packet-out forwarding ---------------------------------------------------

    def _forward_packet_ins(self, switch: str) -> None:
        try:
            events = self.yc.read_events(switch, self.app_name)
        except FsError:
            return
        for pkt in events:
            if not self._in_headerspace(pkt.data, pkt.in_port):
                continue
            try:
                apps = self.sc.listdir(f"{self.view_yc.switch_path(switch)}/events")
            except FsError:
                continue
            for app in apps:
                try:
                    self.view_yc.write_packet_in(
                        switch,
                        app,
                        pkt.seq,
                        in_port=pkt.in_port,
                        reason=pkt.reason,
                        buffer_id=0xFFFFFFFF,  # buffers do not cross views
                        total_len=pkt.total_len,
                        data=pkt.data,
                    )
                    self.events_forwarded += 1
                except FsError:
                    continue

    def _in_headerspace(self, data: bytes, in_port: int) -> bool:
        try:
            frame = parse_frame(data)
        except ValueError:
            return False
        return self.headerspace.matches(frame.key, in_port)

    def _forward_packet_out(self, switch: str, event) -> None:
        if event.name is None or not event.mask & EventMask.IN_CLOSE_WRITE:
            return
        spool = f"{self.view_yc.switch_path(switch)}/packet_out/{event.name}"
        try:
            data = self.sc.read_bytes(spool)
            self.sc.unlink(spool)
        except FsError:
            return
        # Only forward frames the tenant is allowed to source.
        if data and not self._in_headerspace(data, 0):
            return
        try:
            self.sc.write_bytes(f"{self.yc.switch_path(switch)}/packet_out/{event.name}", data)
        except FsError:
            pass

    # -- counters ----------------------------------------------------------------------------

    def sync_counters(self) -> None:
        """Mirror master flow counters into the tenant's flow dirs."""
        for (switch, flow), master_name in list(self._installed.items()):
            try:
                counters = self.yc.flow_counters(switch, master_name)
                base = f"{self.view_yc.flow_path(switch, flow)}/counters"
                for name, value in counters.items():
                    self.sc.write_text(f"{base}/{name}", str(value))
            except FsError:
                continue
