"""Match algebra for view translation.

A slice is defined by a *headerspace* match; a tenant flow is admitted iff
its match has a non-empty intersection with the headerspace, and the flow
actually installed on hardware is that intersection — so a tenant can
never capture traffic outside its slice, even by leaving fields wildcard.
"""

from __future__ import annotations

from dataclasses import fields

from repro.dataplane.match import Match


def intersect(tenant: Match, headerspace: Match) -> Match | None:
    """The match hitting exactly the packets both matches hit.

    Returns None when the intersection is empty (the tenant asked for
    traffic outside the slice).
    """
    kwargs: dict[str, object] = {}
    for f in fields(Match):
        mine = getattr(tenant, f.name)
        theirs = getattr(headerspace, f.name)
        if mine is None and theirs is None:
            continue
        if mine is None:
            kwargs[f.name] = theirs
        elif theirs is None:
            kwargs[f.name] = mine
        elif f.name in ("nw_src", "nw_dst"):
            if mine.subnet_of(theirs):
                kwargs[f.name] = mine
            elif theirs.subnet_of(mine):
                kwargs[f.name] = theirs
            else:
                return None
        elif mine == theirs:
            kwargs[f.name] = mine
        else:
            return None
    return Match(**kwargs)  # type: ignore[arg-type]


def admits(headerspace: Match, tenant: Match) -> bool:
    """True when the tenant match overlaps the slice at all."""
    return intersect(tenant, headerspace) is not None
