"""The virtualizer: one big switch over the whole fabric.

The second canonical transformation of paper section 4.2: "network
virtualization ... provides any arbitrary transformation, such as
combining multiple switches and forming a new topology."  This
application presents a view containing a single switch (``big`` by
default) whose ports map onto chosen edge ports of the real network.  A
tenant flow ``in_port=1 -> out 2`` on the big switch is compiled into
exact path segments across the fabric using the topology daemon's peer
symlinks; packet-ins on mapped ports surface in the view with virtual
port numbers.
"""

from __future__ import annotations

from repro.dataplane.actions import Action, Output
from repro.dataplane.match import Match
from repro.vfs.errors import FileExists, FsError
from repro.vfs.notify import EventMask
from repro.yancfs.client import YancClient
from repro.apps.base import YancApp
from repro.apps.topology import read_topology

_DIR_MASK = EventMask.IN_CREATE | EventMask.IN_DELETE | EventMask.IN_MOVED_FROM | EventMask.IN_MOVED_TO
_FLOW_MASK = EventMask.IN_MODIFY | EventMask.IN_CLOSE_WRITE

MAX_TENANT_PRIORITY = 0x7FFF


class BigSwitchVirtualizer(YancApp):
    """Collapse the fabric into one virtual switch."""

    def __init__(
        self,
        sc,
        sim,
        *,
        view: str,
        port_map: dict[int, tuple[str, int]],
        root: str = "/net",
        big_switch_name: str = "big",
    ) -> None:
        super().__init__(sc, sim, root=root, name=f"virt_{view}")
        self.view = view
        self.port_map = dict(port_map)
        self.big_switch_name = big_switch_name
        self.view_yc: YancClient = self.yc.in_view(view)
        self._reverse_map = {real: virtual for virtual, real in self.port_map.items()}
        self._flow_versions: dict[str, int] = {}
        #: tenant flow -> [(master switch, master flow name)]
        self._segments: dict[str, list[tuple[str, str]]] = {}
        self.flows_compiled = 0
        self.flows_rejected = 0
        self.events_forwarded = 0

    # -- setup ------------------------------------------------------------------------

    def on_start(self) -> None:
        if not self.sc.exists(self.view_yc.root):
            self.yc.create_view(self.view)
        big_path = self.view_yc.switch_path(self.big_switch_name)
        if not self.sc.exists(big_path):
            self.view_yc.create_switch(self.big_switch_name)
            for virtual_port in sorted(self.port_map):
                self.view_yc.create_port(self.big_switch_name, virtual_port)
        self.watch(f"{big_path}/flows", _DIR_MASK, ("flows",))
        for flow in self.view_yc.flows(self.big_switch_name):
            self.watch(self.view_yc.flow_path(self.big_switch_name, flow), _FLOW_MASK, ("flow", flow))
        self.watch(f"{big_path}/packet_out", _DIR_MASK | EventMask.IN_CLOSE_WRITE, ("pktout",))
        for switch in {switch for switch, _port in self.port_map.values()}:
            self.yc.subscribe_events(switch, self.app_name)
            self.watch(self.yc.events_path(switch, self.app_name), EventMask.IN_CREATE | EventMask.IN_MOVED_TO, ("master_buffer", switch))

    # -- events ------------------------------------------------------------------------

    def on_event(self, ctx, event) -> None:
        kind = ctx[0]
        if kind == "flows" and event.name is not None:
            if event.mask & (EventMask.IN_CREATE | EventMask.IN_MOVED_TO):
                self.watch(self.view_yc.flow_path(self.big_switch_name, event.name), _FLOW_MASK, ("flow", event.name))
                self._compile_flow(event.name)
            elif event.mask & (EventMask.IN_DELETE | EventMask.IN_MOVED_FROM):
                self._tear_down(event.name)
        elif kind == "flow" and event.name == "version":
            self._compile_flow(ctx[1])
        elif kind == "master_buffer":
            self._forward_packet_ins(ctx[1])
        elif kind == "pktout":
            self._forward_packet_out(event)

    # -- compilation ---------------------------------------------------------------------

    def _compile_flow(self, flow: str) -> None:
        try:
            spec = self.view_yc.read_flow(self.big_switch_name, flow)
        except FsError:
            return
        if spec.version <= self._flow_versions.get(flow, 0):
            return
        self._flow_versions[flow] = spec.version
        self._tear_down(flow, keep_version=True)
        out_ports = [action.port for action in spec.actions if isinstance(action, Output)]
        rewrites: list[Action] = [action for action in spec.actions if not isinstance(action, Output)]
        if not out_ports or any(port not in self.port_map for port in out_ports):
            self.flows_rejected += 1
            self._set_status(flow, "rejected: output must name virtual ports")
            return
        if spec.match.in_port is not None and spec.match.in_port not in self.port_map:
            self.flows_rejected += 1
            self._set_status(flow, "rejected: in_port is not a virtual port")
            return
        ingress_ports = [spec.match.in_port] if spec.match.in_port is not None else sorted(self.port_map)
        topology = read_topology(self.yc)
        graph: dict[str, dict[str, int]] = {}
        for (src_sw, src_port), (dst_sw, _dst_port) in topology.items():
            graph.setdefault(src_sw, {})[dst_sw] = src_port
            graph.setdefault(dst_sw, {})
        segments: list[tuple[str, str]] = []
        ok = True
        for virtual_in in ingress_ports:
            for virtual_out in out_ports:
                if virtual_in == virtual_out:
                    continue
                if not self._compile_path(flow, spec, rewrites, virtual_in, virtual_out, graph, topology, segments):
                    ok = False
        self._segments[flow] = segments
        if ok:
            self.flows_compiled += 1
            self._set_status(flow, f"installed: {len(segments)} segments")
        else:
            self.flows_rejected += 1
            self._set_status(flow, "rejected: no fabric path between mapped ports")

    def _compile_path(
        self,
        flow: str,
        spec,
        rewrites: list[Action],
        virtual_in: int,
        virtual_out: int,
        graph: dict[str, dict[str, int]],
        topology: dict[tuple[str, int], tuple[str, int]],
        segments: list[tuple[str, str]],
    ) -> bool:
        src_switch, src_port = self.port_map[virtual_in]
        dst_switch, dst_port = self.port_map[virtual_out]
        path = _bfs(graph, src_switch, dst_switch)
        if path is None:
            return False
        in_port = src_port
        priority = min(spec.priority, MAX_TENANT_PRIORITY)
        for index, switch in enumerate(path):
            if index + 1 < len(path):
                out_port = graph[switch][path[index + 1]]
            else:
                out_port = dst_port
            base = Match(**{**spec.match.specified_fields(), "in_port": in_port})  # type: ignore[arg-type]
            # Header rewrites are applied only at the final hop, so
            # intermediate matches still see the original headers.
            actions: list[Action] = [Output(out_port)]
            if index + 1 == len(path):
                actions = list(rewrites) + [Output(out_port)]
            name = f"virt_{self.view}_{flow}_{virtual_in}_{virtual_out}_{index}"
            try:
                self.yc.create_flow(
                    switch,
                    name,
                    base,
                    actions,
                    priority=priority,
                    idle_timeout=spec.idle_timeout or None,
                    hard_timeout=spec.hard_timeout or None,
                )
                segments.append((switch, name))
            except FileExists:
                segments.append((switch, name))
            except FsError:
                return False
            if index + 1 < len(path):
                in_port = topology.get((switch, out_port), (path[index + 1], 0))[1]
        return True

    def _tear_down(self, flow: str, *, keep_version: bool = False) -> None:
        for switch, name in self._segments.pop(flow, []):
            try:
                self.yc.delete_flow(switch, name)
            except FsError:
                continue
        if not keep_version:
            self._flow_versions.pop(flow, None)

    def _set_status(self, flow: str, status: str) -> None:
        try:
            self.sc.write_text(f"{self.view_yc.flow_path(self.big_switch_name, flow)}/state.status", status)
        except FsError:
            pass

    # -- packet-in / packet-out ------------------------------------------------------------

    def _forward_packet_ins(self, switch: str) -> None:
        try:
            events = self.yc.read_events(switch, self.app_name)
        except FsError:
            return
        for pkt in events:
            virtual_port = self._reverse_map.get((switch, pkt.in_port))
            if virtual_port is None:
                continue
            try:
                apps = self.sc.listdir(f"{self.view_yc.switch_path(self.big_switch_name)}/events")
            except FsError:
                continue
            for app in apps:
                try:
                    self.view_yc.write_packet_in(
                        self.big_switch_name,
                        app,
                        pkt.seq,
                        in_port=virtual_port,
                        reason=pkt.reason,
                        buffer_id=0xFFFFFFFF,
                        total_len=pkt.total_len,
                        data=pkt.data,
                    )
                    self.events_forwarded += 1
                except FsError:
                    continue

    def _forward_packet_out(self, event) -> None:
        if event.name is None or not event.mask & EventMask.IN_CLOSE_WRITE:
            return
        spool = f"{self.view_yc.switch_path(self.big_switch_name)}/packet_out/{event.name}"
        try:
            data = self.sc.read_bytes(spool)
            self.sc.unlink(spool)
        except FsError:
            return
        for token in event.name.split("."):
            if token.startswith("p") and token[1:].isdigit():
                virtual_port = int(token[1:])
                mapped = self.port_map.get(virtual_port)
                if mapped is not None:
                    try:
                        self.yc.packet_out(mapped[0], [mapped[1]], data, tag=self.app_name)
                    except FsError:
                        continue


def _bfs(graph: dict[str, dict[str, int]], src: str, dst: str) -> list[str] | None:
    if src == dst:
        return [src]
    from collections import deque

    previous: dict[str, str] = {}
    seen = {src}
    queue = deque([src])
    while queue:
        current = queue.popleft()
        for neighbour in sorted(graph.get(current, {})):
            if neighbour in seen:
                continue
            seen.add(neighbour)
            previous[neighbour] = current
            if neighbour == dst:
                path = [dst]
                while path[-1] != src:
                    path.append(previous[path[-1]])
                return path[::-1]
            queue.append(neighbour)
    return None
