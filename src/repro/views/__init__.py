"""Network views: slicing, virtualization, and namespace isolation (§4.2).

* :class:`Slicer` — headerspace + switch-subset views, stackable.
* :class:`BigSwitchVirtualizer` — the whole fabric as one switch.
* :func:`view_namespace` / :func:`tenant_process` — mount-namespace jails
  so a tenant's ``/net`` *is* its view (§5.3).
* :func:`intersect` / :func:`admits` — the match algebra underneath.
"""

from repro.views.merge import admits, intersect
from repro.views.namespace import grant_view, tenant_process, view_namespace
from repro.views.slicer import MAX_TENANT_PRIORITY, Slicer
from repro.views.virtualizer import BigSwitchVirtualizer

__all__ = [
    "admits",
    "grant_view",
    "intersect",
    "tenant_process",
    "view_namespace",
    "MAX_TENANT_PRIORITY",
    "Slicer",
    "BigSwitchVirtualizer",
]
