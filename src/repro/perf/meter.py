"""The syscall meter hooked into the VFS facade."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.perf.counters import PerfCounters
from repro.perf.cost import CostModel, FUSE_COST_MODEL


@dataclass
class SyscallMeter:
    """Counts syscalls and the context switches they imply.

    The VFS syscall facade (:class:`repro.vfs.syscalls.Syscalls`) calls
    :meth:`enter` once per syscall with the call's name.  The meter bumps
    ``syscall.<name>``, the aggregate ``syscall.total``, and ``ctxsw``
    according to the active cost model's ``ctxsw_per_syscall``.

    A meter can be temporarily suspended (:meth:`pause`) so that internal
    bookkeeping traffic — e.g. a driver's own consistency scan — is not
    billed to an application.
    """

    counters: PerfCounters = field(default_factory=PerfCounters)
    model: CostModel = FUSE_COST_MODEL
    _paused: int = 0

    def enter(self, name: str, nbytes: int = 0) -> None:
        """Record one syscall named ``name`` moving ``nbytes`` payload bytes."""
        if self._paused:
            return
        self.counters.add(f"syscall.{name}")
        self.counters.add("syscall.total")
        if self.model.ctxsw_per_syscall:
            self.counters.add("ctxsw", self.model.ctxsw_per_syscall)
        if nbytes:
            self.counters.add("bytes.copied", nbytes)

    def batch_op(self, name: str, nbytes: int = 0) -> None:
        """Record one ring-submitted operation (see :mod:`repro.vfs.uring`).

        A batched operation crosses no protection boundary of its own —
        the batch's single ``io_uring_enter`` already paid the syscall and
        context switches — so this bills only the per-op bookkeeping
        (``uring.sqe``, ``uring.<name>``) and the payload bytes it moved.
        """
        if self._paused:
            return
        self.counters.add("uring.sqe")
        self.counters.add(f"uring.{name}")
        if nbytes:
            self.counters.add("bytes.copied", nbytes)

    def pause(self) -> "_MeterPause":
        """Return a context manager that suspends metering while active."""
        return _MeterPause(self)

    @property
    def syscalls(self) -> int:
        """Total syscalls recorded."""
        return self.counters.get("syscall.total")

    @property
    def context_switches(self) -> int:
        """Total context switches recorded."""
        return self.counters.get("ctxsw")

    def reset(self) -> None:
        """Zero all counters."""
        self.counters.reset()


class _MeterPause:
    """Context manager produced by :meth:`SyscallMeter.pause`."""

    def __init__(self, meter: SyscallMeter) -> None:
        self._meter = meter

    def __enter__(self) -> SyscallMeter:
        self._meter._paused += 1
        return self._meter

    def __exit__(self, *exc_info: object) -> None:
        self._meter._paused -= 1
