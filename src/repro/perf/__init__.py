"""Performance metering: syscall and context-switch accounting.

Section 8.1 of the yanc paper argues that the file-system interface pays a
per-access cost: every ``read()``/``write()``/``stat()`` is a system call
that context-switches from the application into the kernel (and, with FUSE,
back out into the file-system daemon).  The quantitative claims in the paper
are claims about *counts* of these transitions, so this package meters them
exactly:

* :class:`PerfCounters` — a registry of named monotonic counters.
* :class:`CostModel` — converts counts into simulated elapsed time, so
  benchmarks can report latency figures with a calibrated per-syscall cost.
* :class:`SyscallMeter` — the hook the VFS syscall facade calls on entry.

The module is dependency-free so every other subsystem can use it.
"""

from repro.perf.counters import CounterSnapshot, PerfCounters
from repro.perf.cost import CostModel, FUSE_COST_MODEL, SHM_COST_MODEL
from repro.perf.meter import SyscallMeter

__all__ = [
    "CounterSnapshot",
    "PerfCounters",
    "CostModel",
    "FUSE_COST_MODEL",
    "SHM_COST_MODEL",
    "SyscallMeter",
]
