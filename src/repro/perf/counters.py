"""Named monotonic counters with snapshot/delta support."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class CounterSnapshot:
    """An immutable point-in-time copy of a :class:`PerfCounters`."""

    values: dict[str, int]

    def get(self, name: str) -> int:
        """Return the snapshotted value of ``name`` (0 if never counted)."""
        return self.values.get(name, 0)

    def delta(self, earlier: "CounterSnapshot") -> dict[str, int]:
        """Return per-counter increments between ``earlier`` and this snapshot.

        Counters absent from either side are treated as zero; counters whose
        increment is zero are omitted from the result.
        """
        names = set(self.values) | set(earlier.values)
        out = {}
        for name in sorted(names):
            diff = self.get(name) - earlier.get(name)
            if diff:
                out[name] = diff
        return out


@dataclass
class PerfCounters:
    """A registry of named monotonic event counters.

    Counters are created on first use.  Typical counter names used across
    the repo:

    * ``syscall.<name>`` — one per VFS syscall entry (e.g. ``syscall.read``).
    * ``ctxsw`` — context switches (two per FUSE-mediated syscall: app->kernel
      and kernel->fs daemon; see :mod:`repro.perf.cost`).
    * ``notify.events`` — inotify events delivered.
    * ``notify.coalesced`` / ``notify.dropped`` / ``notify.overflows`` —
      events merged into the queue tail, dropped at the queue bound, and
      IN_Q_OVERFLOW records queued (see :mod:`repro.vfs.notify`).
    * ``dcache.hits`` / ``dcache.neg_hits`` / ``dcache.misses`` /
      ``dcache.invalidations`` — dentry-cache activity, published per
      namespace by :meth:`repro.vfs.dcache.DentryCache.publish`.
    * ``openflow.tx`` / ``openflow.rx`` — wire messages moved.
    """

    _values: dict[str, int] = field(default_factory=dict)

    def add(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name`` by ``amount`` (must be >= 0)."""
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        self._values[name] = self._values.get(name, 0) + amount

    def get(self, name: str) -> int:
        """Return the current value of ``name`` (0 if never incremented)."""
        return self._values.get(name, 0)

    def total(self, prefix: str) -> int:
        """Sum all counters whose name starts with ``prefix``."""
        return sum(v for k, v in self._values.items() if k.startswith(prefix))

    def snapshot(self) -> CounterSnapshot:
        """Capture an immutable copy of all current counter values."""
        return CounterSnapshot(values=dict(self._values))

    def reset(self) -> None:
        """Zero every counter."""
        self._values.clear()

    def names(self) -> list[str]:
        """Return all counter names, sorted."""
        return sorted(self._values)
