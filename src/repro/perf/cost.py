"""Cost models translating metered events into simulated elapsed time.

The paper (section 8.1) contrasts two access paths to the yanc store:

* the **file path**, where each access is a system call and, because yanc is
  a FUSE file system, each call crosses app -> kernel -> FUSE daemon and
  back (four context switches per call in the worst case, two in the common
  cached case we model);
* the **libyanc fastpath**, shared memory between application and store,
  with no per-access context switch.

A :class:`CostModel` assigns a time price to each metered event so that
benchmarks can report latencies whose *shape* tracks the paper's argument.
The default prices are calibrated to commodity-Linux magnitudes circa the
paper (a syscall ~1 microsecond, a context switch ~2 microseconds) — the
absolute values do not matter for the reproduction, only the ratio between
the file path and the fastpath.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.perf.counters import CounterSnapshot, PerfCounters


@dataclass(frozen=True)
class CostModel:
    """Per-event time prices, in seconds.

    Attributes:
        syscall_cost: time charged per system call entry/exit pair.
        ctxsw_cost: time charged per context switch.
        ctxsw_per_syscall: context switches charged for every syscall (2 for
            a plain kernel FS, 4 for a FUSE round trip; 0 for shared memory).
        byte_copy_cost: time per byte for buffer copies (zero-copy paths
            charge this for 0 bytes).
    """

    name: str
    syscall_cost: float = 1.0e-6
    ctxsw_cost: float = 2.0e-6
    ctxsw_per_syscall: int = 4
    byte_copy_cost: float = 2.5e-10

    def syscall_time(self, n_syscalls: int) -> float:
        """Total simulated time for ``n_syscalls`` calls, context switches included."""
        switches = n_syscalls * self.ctxsw_per_syscall
        return n_syscalls * self.syscall_cost + switches * self.ctxsw_cost

    def copy_time(self, n_bytes: int) -> float:
        """Simulated time to memcpy ``n_bytes``."""
        return n_bytes * self.byte_copy_cost

    def charge(self, counters: PerfCounters, since: CounterSnapshot) -> float:
        """Price the counter activity since ``since`` under this model."""
        delta = counters.snapshot().delta(since)
        syscalls = sum(v for k, v in delta.items() if k.startswith("syscall."))
        copied = delta.get("bytes.copied", 0)
        return self.syscall_time(syscalls) + self.copy_time(copied)


#: The file path: yanc as a FUSE file system (app->kernel->daemon and back).
FUSE_COST_MODEL = CostModel(name="fuse", ctxsw_per_syscall=4)

#: The libyanc fastpath: shared memory, no kernel transition per access.
SHM_COST_MODEL = CostModel(name="shm", syscall_cost=0.0, ctxsw_per_syscall=0)


@dataclass
class TimeCharger:
    """Accumulates simulated time for a metered component under a cost model."""

    model: CostModel
    counters: PerfCounters
    elapsed: float = 0.0
    _mark: CounterSnapshot = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self._mark = self.counters.snapshot()

    def settle(self) -> float:
        """Charge all activity since the last settle; return the increment."""
        increment = self.model.charge(self.counters, self._mark)
        self.elapsed += increment
        self._mark = self.counters.snapshot()
        return increment
