"""The switch-side OpenFlow agent.

In a real deployment this is the firmware endpoint of the OpenFlow TCP
session.  It binds a :class:`~repro.dataplane.switch.SwitchSim` to one end
of a control channel, negotiates a protocol version with whatever driver is
on the other end, and translates between wire messages and switch
operations.  Because negotiation is per-connection, the same switch can be
moved live between an OpenFlow 1.0 driver and a 1.3 driver — the gradual
upgrade story of paper section 4.1.
"""

from __future__ import annotations

from repro.controlchannel import ControlConnection
from repro.dataplane.flowtable import FlowEntry, FlowRemovedReason
from repro.dataplane.switch import PacketInReason, PortSim, SwitchSim
from repro.openflow import messages as m
from repro.openflow.codec import codec_for, negotiate, peek_version
from repro.openflow.of10 import CodecError
from repro.openflow.of13 import VERSION as OF13_VERSION

_REASON_TO_WIRE = {
    FlowRemovedReason.IDLE_TIMEOUT: m.FlowRemovedReasonWire.IDLE_TIMEOUT,
    FlowRemovedReason.HARD_TIMEOUT: m.FlowRemovedReasonWire.HARD_TIMEOUT,
    FlowRemovedReason.DELETE: m.FlowRemovedReasonWire.DELETE,
}

_PORT_REASON_TO_WIRE = {
    "add": m.PortStatusReason.ADD,
    "delete": m.PortStatusReason.DELETE,
    "modify": m.PortStatusReason.MODIFY,
}


class SwitchAgent:
    """Glue between one switch and one control connection."""

    def __init__(self, switch: SwitchSim, conn: ControlConnection, *, max_version: int = OF13_VERSION) -> None:
        self.switch = switch
        self.conn = conn
        self.max_version = max_version
        self.version: int | None = None
        self._rx = b""
        self._xid = 0
        self.errors_sent = 0
        conn.on_data = self._on_data
        switch.controller = self

    def start(self) -> None:
        """Open the session by sending our hello."""
        self._send(m.Hello(version=self.max_version))

    def detach(self) -> None:
        """Unbind from the switch and stop processing (driver migration)."""
        if self.switch.controller is self:
            self.switch.controller = None
        self.conn.on_data = None

    # -- outbound -------------------------------------------------------------------

    def _next_xid(self) -> int:
        self._xid += 1
        return self._xid

    def _send(self, msg: m.Message) -> None:
        if msg.xid == 0:
            msg.xid = self._next_xid()
        version = self.version if self.version is not None else self.max_version
        self.conn.send(codec_for(version).encode(msg))

    # -- ControllerHooks (switch -> wire) -------------------------------------------

    def packet_in(
        self,
        switch: SwitchSim,
        in_port: int,
        reason: PacketInReason,
        buffer_id: int,
        data: bytes,
        total_len: int,
    ) -> None:
        wire_reason = m.PacketInReasonWire.NO_MATCH if reason is PacketInReason.NO_MATCH else m.PacketInReasonWire.ACTION
        self._send(
            m.PacketIn(buffer_id=buffer_id, total_len=total_len, in_port=in_port, reason=wire_reason, data=data)
        )

    def flow_removed(self, switch: SwitchSim, entry: FlowEntry, reason: FlowRemovedReason) -> None:
        self._send(
            m.FlowRemoved(
                match=entry.match,
                cookie=entry.cookie,
                priority=entry.priority,
                reason=_REASON_TO_WIRE[reason],
                duration_sec=int(self.switch.sim.now - entry.installed_at),
                idle_timeout=int(entry.idle_timeout),
                packet_count=entry.packet_count,
                byte_count=entry.byte_count,
            )
        )

    def port_status(self, switch: SwitchSim, port: PortSim, reason: str) -> None:
        self._send(m.PortStatus(reason=_PORT_REASON_TO_WIRE[reason], port=self._port_desc(port)))

    @staticmethod
    def _port_desc(port: PortSim) -> m.PortDesc:
        return m.PortDesc(
            port_no=port.port_no,
            hw_addr=port.mac.packed,
            name=port.name,
            config_down=not port.admin_up,
            link_down=not port.link_up,
        )

    # -- inbound (wire -> switch) ------------------------------------------------------

    def _on_data(self, data: bytes) -> None:
        self._rx += data
        while self._rx:
            if len(self._rx) < 8:
                return
            length = int.from_bytes(self._rx[2:4], "big")
            if len(self._rx) < length:
                return
            try:
                version = peek_version(self._rx)
                msg, self._rx = codec_for(version).decode(self._rx)
            except CodecError:
                self.errors_sent += 1
                self._send(m.ErrorMsg(err_type=1, err_code=0))
                self._rx = self._rx[length:]
                continue
            self._handle(msg, version)

    def _handle(self, msg: m.Message, version: int) -> None:
        if isinstance(msg, m.Hello):
            self.version = negotiate(self.max_version, msg.version)
            return
        if isinstance(msg, m.EchoRequest):
            self._send(m.EchoReply(payload=msg.payload, xid=msg.xid))
        elif isinstance(msg, m.FeaturesRequest):
            self._send(self._features_reply(msg.xid))
        elif isinstance(msg, m.PortDescRequest):
            ports = [self._port_desc(p) for _, p in sorted(self.switch.ports.items())]
            self._send(m.PortDescReply(ports=ports, xid=msg.xid))
        elif isinstance(msg, m.FlowMod):
            self._apply_flow_mod(msg)
        elif isinstance(msg, m.PacketOut):
            self.switch.packet_out(msg.actions, buffer_id=msg.buffer_id, data=msg.data, in_port=msg.in_port)
        elif isinstance(msg, m.PortMod):
            port = self.switch.ports.get(msg.port_no)
            if port is not None:
                port.set_admin_up(not msg.down)
        elif isinstance(msg, m.BarrierRequest):
            self._send(m.BarrierReply(xid=msg.xid))
        elif isinstance(msg, m.PortStatsRequest):
            self._send(self._port_stats_reply(msg))
        elif isinstance(msg, m.FlowStatsRequest):
            self._send(self._flow_stats_reply(msg))
        elif isinstance(msg, m.AggregateStatsRequest):
            stats = self.switch.table.aggregate_stats()
            self._send(
                m.AggregateStatsReply(
                    packet_count=stats["packet_count"],
                    byte_count=stats["byte_count"],
                    flow_count=stats["flow_count"],
                    xid=msg.xid,
                )
            )

    def _features_reply(self, xid: int) -> m.FeaturesReply:
        ports: list[m.PortDesc] = []
        if self.version != OF13_VERSION:
            # 1.0 inlines ports; 1.3 drivers fetch them via port-desc.
            ports = [self._port_desc(p) for _, p in sorted(self.switch.ports.items())]
        return m.FeaturesReply(
            dpid=self.switch.dpid,
            n_buffers=self.switch.num_buffers,
            n_tables=len(self.switch.tables),
            capabilities=0b111,  # flow/table/port stats
            ports=ports,
            xid=xid,
        )

    def _apply_flow_mod(self, msg: m.FlowMod) -> None:
        command = msg.command
        if command is m.FlowModCommand.ADD:
            entry = FlowEntry(
                match=msg.match,
                actions=list(msg.actions),
                priority=msg.priority,
                cookie=msg.cookie,
                idle_timeout=float(msg.idle_timeout),
                hard_timeout=float(msg.hard_timeout),
            )
            self.switch.install_flow(entry, buffer_id=msg.buffer_id)
        elif command in (m.FlowModCommand.MODIFY, m.FlowModCommand.MODIFY_STRICT):
            strict = command is m.FlowModCommand.MODIFY_STRICT
            self.switch.table.modify(msg.match, list(msg.actions), strict=strict, priority=msg.priority)
        else:
            strict = command is m.FlowModCommand.DELETE_STRICT
            self.switch.delete_flows(
                msg.match, strict=strict, priority=msg.priority, notify=msg.send_flow_rem
            )

    def _port_stats_reply(self, msg: m.PortStatsRequest) -> m.PortStatsReply:
        if msg.port_no in (0xFFFF, 0xFFFFFFFF):
            ports = [p for _, p in sorted(self.switch.ports.items())]
        else:
            port = self.switch.ports.get(msg.port_no)
            ports = [port] if port is not None else []
        entries = [
            m.PortStatsEntry(
                port_no=p.port_no,
                rx_packets=p.rx_packets,
                tx_packets=p.tx_packets,
                rx_bytes=p.rx_bytes,
                tx_bytes=p.tx_bytes,
                tx_dropped=p.tx_dropped,
            )
            for p in ports
        ]
        return m.PortStatsReply(entries=entries, xid=msg.xid)

    def _flow_stats_reply(self, msg: m.FlowStatsRequest) -> m.FlowStatsReply:
        now = self.switch.sim.now
        entries = [
            m.FlowStatsEntry(
                match=entry.match,
                priority=entry.priority,
                duration_sec=int(now - entry.installed_at),
                idle_timeout=int(entry.idle_timeout),
                hard_timeout=int(entry.hard_timeout),
                cookie=entry.cookie,
                packet_count=entry.packet_count,
                byte_count=entry.byte_count,
                actions=list(entry.actions),
            )
            for entry in self.switch.table.entries()
            if entry.match.is_subset_of(msg.match)
        ]
        return m.FlowStatsReply(entries=entries, xid=msg.xid)
