"""OpenFlow 1.0 wire codec (version byte 0x01).

Implements the 1.0 binary structures the paper's C++ driver speaks:
fixed 40-byte matches with a wildcard bitmap, inline action lists, and the
stats request/reply family.  Layouts follow the openflow.h of the 1.0.0
specification.
"""

from __future__ import annotations

import struct
from ipaddress import IPv4Address, IPv4Network

from repro.dataplane.actions import (
    Action,
    Output,
    SetDlDst,
    SetDlSrc,
    SetNwDst,
    SetNwSrc,
    SetTpDst,
    SetTpSrc,
    SetVlan,
    StripVlan,
)
from repro.dataplane.match import Match
from repro.netpkt.addr import MacAddress
from repro.openflow import messages as m

VERSION = 0x01

# Message types (ofp_type).
OFPT_HELLO = 0
OFPT_ERROR = 1
OFPT_ECHO_REQUEST = 2
OFPT_ECHO_REPLY = 3
OFPT_FEATURES_REQUEST = 5
OFPT_FEATURES_REPLY = 6
OFPT_PACKET_IN = 10
OFPT_FLOW_REMOVED = 11
OFPT_PORT_STATUS = 12
OFPT_PACKET_OUT = 13
OFPT_FLOW_MOD = 14
OFPT_PORT_MOD = 15
OFPT_STATS_REQUEST = 16
OFPT_STATS_REPLY = 17
OFPT_BARRIER_REQUEST = 18
OFPT_BARRIER_REPLY = 19

# Stats types.
OFPST_FLOW = 1
OFPST_AGGREGATE = 2
OFPST_PORT = 4

# Wildcard bits (ofp_flow_wildcards).
OFPFW_IN_PORT = 1 << 0
OFPFW_DL_VLAN = 1 << 1
OFPFW_DL_SRC = 1 << 2
OFPFW_DL_DST = 1 << 3
OFPFW_DL_TYPE = 1 << 4
OFPFW_NW_PROTO = 1 << 5
OFPFW_TP_SRC = 1 << 6
OFPFW_TP_DST = 1 << 7
OFPFW_NW_SRC_SHIFT = 8
OFPFW_NW_DST_SHIFT = 14
OFPFW_DL_VLAN_PCP = 1 << 20
OFPFW_NW_TOS = 1 << 21

# Action types.
OFPAT_OUTPUT = 0
OFPAT_SET_VLAN_VID = 1
OFPAT_STRIP_VLAN = 3
OFPAT_SET_DL_SRC = 4
OFPAT_SET_DL_DST = 5
OFPAT_SET_NW_SRC = 6
OFPAT_SET_NW_DST = 7
OFPAT_SET_TP_SRC = 9
OFPAT_SET_TP_DST = 10

# Port config / state bits.
OFPPC_PORT_DOWN = 1 << 0
OFPPS_LINK_DOWN = 1 << 0

OFPP_NONE = 0xFFFF

_HEADER = struct.Struct("!BBHI")
_MATCH = struct.Struct("!IH6s6sHBxHBBxxIIHH")
_PHY_PORT = struct.Struct("!H6s16sIIIIII")
_FLOW_MOD_TAIL = struct.Struct("!QHHHHIHH")
_PACKET_IN_HEAD = struct.Struct("!IHHBx")
_PACKET_OUT_HEAD = struct.Struct("!IHH")
_FEATURES_HEAD = struct.Struct("!QIB3xII")
_FLOW_REMOVED_TAIL = struct.Struct("!QHBxIIH2xQQ")
_PORT_STATUS_HEAD = struct.Struct("!B7x")
_PORT_MOD = struct.Struct("!H6sIII4x")
_STATS_HEAD = struct.Struct("!HH")
_PORT_STATS_REQ = struct.Struct("!H6x")
_PORT_STATS_ENTRY = struct.Struct("!H6xQQQQQQQQQQQQ")
_FLOW_STATS_REQ_TAIL = struct.Struct("!BxH")
_FLOW_STATS_ENTRY_HEAD = struct.Struct("!HBx")
_FLOW_STATS_ENTRY_MID = struct.Struct("!IIHHH6xQQQ")
_AGG_REPLY = struct.Struct("!QQI4x")

OFPFF_SEND_FLOW_REM = 1 << 0


class CodecError(ValueError):
    """Raised on malformed wire bytes or unencodable messages."""


def _pack_header(msg_type: int, body: bytes, xid: int) -> bytes:
    return _HEADER.pack(VERSION, msg_type, _HEADER.size + len(body), xid) + body


# -- match ---------------------------------------------------------------------


def pack_match(match: Match) -> bytes:
    """Encode a Match as the 40-byte ofp_match."""
    wildcards = 0
    if match.in_port is None:
        wildcards |= OFPFW_IN_PORT
    if match.dl_vlan is None:
        wildcards |= OFPFW_DL_VLAN
    if match.dl_src is None:
        wildcards |= OFPFW_DL_SRC
    if match.dl_dst is None:
        wildcards |= OFPFW_DL_DST
    if match.dl_type is None:
        wildcards |= OFPFW_DL_TYPE
    if match.nw_proto is None:
        wildcards |= OFPFW_NW_PROTO
    if match.tp_src is None:
        wildcards |= OFPFW_TP_SRC
    if match.tp_dst is None:
        wildcards |= OFPFW_TP_DST
    if match.dl_vlan_pcp is None:
        wildcards |= OFPFW_DL_VLAN_PCP
    if match.nw_tos is None:
        wildcards |= OFPFW_NW_TOS
    nw_src_bits = 32 if match.nw_src is None else 32 - match.nw_src.prefixlen
    nw_dst_bits = 32 if match.nw_dst is None else 32 - match.nw_dst.prefixlen
    wildcards |= nw_src_bits << OFPFW_NW_SRC_SHIFT
    wildcards |= nw_dst_bits << OFPFW_NW_DST_SHIFT
    return _MATCH.pack(
        wildcards,
        match.in_port or 0,
        match.dl_src.packed if match.dl_src else b"\x00" * 6,
        match.dl_dst.packed if match.dl_dst else b"\x00" * 6,
        match.dl_vlan or 0,
        match.dl_vlan_pcp or 0,
        match.dl_type or 0,
        match.nw_tos or 0,
        match.nw_proto or 0,
        int(match.nw_src.network_address) if match.nw_src else 0,
        int(match.nw_dst.network_address) if match.nw_dst else 0,
        match.tp_src or 0,
        match.tp_dst or 0,
    )


def unpack_match(data: bytes, offset: int = 0) -> Match:
    """Decode a 40-byte ofp_match."""
    if len(data) - offset < _MATCH.size:
        raise CodecError("truncated ofp_match")
    (
        wildcards,
        in_port,
        dl_src,
        dl_dst,
        dl_vlan,
        dl_vlan_pcp,
        dl_type,
        nw_tos,
        nw_proto,
        nw_src,
        nw_dst,
        tp_src,
        tp_dst,
    ) = _MATCH.unpack_from(data, offset)
    nw_src_bits = min(32, wildcards >> OFPFW_NW_SRC_SHIFT & 0x3F)
    nw_dst_bits = min(32, wildcards >> OFPFW_NW_DST_SHIFT & 0x3F)

    def prefix(raw: int, wildcard_bits: int) -> IPv4Network | None:
        if wildcard_bits >= 32:
            return None
        prefix_len = 32 - wildcard_bits
        network = IPv4Address(raw)
        return IPv4Network(f"{network}/{prefix_len}", strict=False)

    return Match(
        in_port=None if wildcards & OFPFW_IN_PORT else in_port,
        dl_src=None if wildcards & OFPFW_DL_SRC else MacAddress(dl_src),
        dl_dst=None if wildcards & OFPFW_DL_DST else MacAddress(dl_dst),
        dl_type=None if wildcards & OFPFW_DL_TYPE else dl_type,
        dl_vlan=None if wildcards & OFPFW_DL_VLAN else dl_vlan,
        dl_vlan_pcp=None if wildcards & OFPFW_DL_VLAN_PCP else dl_vlan_pcp,
        nw_src=prefix(nw_src, nw_src_bits),
        nw_dst=prefix(nw_dst, nw_dst_bits),
        nw_proto=None if wildcards & OFPFW_NW_PROTO else nw_proto,
        nw_tos=None if wildcards & OFPFW_NW_TOS else nw_tos,
        tp_src=None if wildcards & OFPFW_TP_SRC else tp_src,
        tp_dst=None if wildcards & OFPFW_TP_DST else tp_dst,
    )


# -- actions --------------------------------------------------------------------


def pack_actions(actions: list[Action]) -> bytes:
    """Encode an action list."""
    out = b""
    for action in actions:
        if isinstance(action, Output):
            out += struct.pack("!HHHH", OFPAT_OUTPUT, 8, action.port, 0xFFFF)
        elif isinstance(action, SetVlan):
            out += struct.pack("!HHH2x", OFPAT_SET_VLAN_VID, 8, action.vid)
        elif isinstance(action, StripVlan):
            out += struct.pack("!HH4x", OFPAT_STRIP_VLAN, 8)
        elif isinstance(action, SetDlSrc):
            out += struct.pack("!HH6s6x", OFPAT_SET_DL_SRC, 16, action.mac.packed)
        elif isinstance(action, SetDlDst):
            out += struct.pack("!HH6s6x", OFPAT_SET_DL_DST, 16, action.mac.packed)
        elif isinstance(action, SetNwSrc):
            out += struct.pack("!HHI", OFPAT_SET_NW_SRC, 8, int(action.addr))
        elif isinstance(action, SetNwDst):
            out += struct.pack("!HHI", OFPAT_SET_NW_DST, 8, int(action.addr))
        elif isinstance(action, SetTpSrc):
            out += struct.pack("!HHH2x", OFPAT_SET_TP_SRC, 8, action.port)
        elif isinstance(action, SetTpDst):
            out += struct.pack("!HHH2x", OFPAT_SET_TP_DST, 8, action.port)
        else:
            raise CodecError(f"OpenFlow 1.0 cannot encode {type(action).__name__}")
    return out


def unpack_actions(data: bytes) -> list[Action]:
    """Decode an action list."""
    actions: list[Action] = []
    offset = 0
    while offset < len(data):
        if len(data) - offset < 4:
            raise CodecError("truncated action header")
        act_type, act_len = struct.unpack_from("!HH", data, offset)
        if act_len < 8 or offset + act_len > len(data):
            raise CodecError(f"bad action length {act_len}")
        body = data[offset + 4 : offset + act_len]
        if act_type == OFPAT_OUTPUT:
            port, _max_len = struct.unpack_from("!HH", body)
            actions.append(Output(port))
        elif act_type == OFPAT_SET_VLAN_VID:
            (vid,) = struct.unpack_from("!H", body)
            actions.append(SetVlan(vid))
        elif act_type == OFPAT_STRIP_VLAN:
            actions.append(StripVlan())
        elif act_type == OFPAT_SET_DL_SRC:
            actions.append(SetDlSrc(MacAddress(body[:6])))
        elif act_type == OFPAT_SET_DL_DST:
            actions.append(SetDlDst(MacAddress(body[:6])))
        elif act_type == OFPAT_SET_NW_SRC:
            (addr,) = struct.unpack_from("!I", body)
            actions.append(SetNwSrc(IPv4Address(addr)))
        elif act_type == OFPAT_SET_NW_DST:
            (addr,) = struct.unpack_from("!I", body)
            actions.append(SetNwDst(IPv4Address(addr)))
        elif act_type == OFPAT_SET_TP_SRC:
            (port,) = struct.unpack_from("!H", body)
            actions.append(SetTpSrc(port))
        elif act_type == OFPAT_SET_TP_DST:
            (port,) = struct.unpack_from("!H", body)
            actions.append(SetTpDst(port))
        else:
            raise CodecError(f"unknown OpenFlow 1.0 action type {act_type}")
        offset += act_len
    return actions


# -- ports ----------------------------------------------------------------------


def _pack_port(port: m.PortDesc) -> bytes:
    config = OFPPC_PORT_DOWN if port.config_down else 0
    state = OFPPS_LINK_DOWN if port.link_down else 0
    return _PHY_PORT.pack(
        port.port_no,
        port.hw_addr,
        port.name.encode()[:16].ljust(16, b"\x00"),
        config,
        state,
        0,
        0,
        0,
        0,
    )


def _unpack_port(data: bytes, offset: int) -> m.PortDesc:
    port_no, hw_addr, name, config, state, _c, _a, _s, _p = _PHY_PORT.unpack_from(data, offset)
    return m.PortDesc(
        port_no=port_no,
        hw_addr=hw_addr,
        name=name.rstrip(b"\x00").decode(),
        config_down=bool(config & OFPPC_PORT_DOWN),
        link_down=bool(state & OFPPS_LINK_DOWN),
    )


# -- encode ----------------------------------------------------------------------


def encode(msg: m.Message) -> bytes:
    """Serialize a message to OpenFlow 1.0 wire bytes."""
    xid = msg.xid
    if isinstance(msg, m.Hello):
        return _pack_header(OFPT_HELLO, b"", xid)
    if isinstance(msg, m.EchoRequest):
        return _pack_header(OFPT_ECHO_REQUEST, msg.payload, xid)
    if isinstance(msg, m.EchoReply):
        return _pack_header(OFPT_ECHO_REPLY, msg.payload, xid)
    if isinstance(msg, m.ErrorMsg):
        return _pack_header(OFPT_ERROR, struct.pack("!HH", msg.err_type, msg.err_code) + msg.data, xid)
    if isinstance(msg, m.FeaturesRequest):
        return _pack_header(OFPT_FEATURES_REQUEST, b"", xid)
    if isinstance(msg, m.FeaturesReply):
        body = _FEATURES_HEAD.pack(msg.dpid, msg.n_buffers, msg.n_tables, msg.capabilities, 0)
        for port in msg.ports:
            body += _pack_port(port)
        return _pack_header(OFPT_FEATURES_REPLY, body, xid)
    if isinstance(msg, m.PacketIn):
        body = _PACKET_IN_HEAD.pack(msg.buffer_id, msg.total_len, msg.in_port, msg.reason.value) + msg.data
        return _pack_header(OFPT_PACKET_IN, body, xid)
    if isinstance(msg, m.PacketOut):
        actions = pack_actions(msg.actions)
        body = _PACKET_OUT_HEAD.pack(msg.buffer_id, msg.in_port, len(actions)) + actions + msg.data
        return _pack_header(OFPT_PACKET_OUT, body, xid)
    if isinstance(msg, m.FlowMod):
        flags = OFPFF_SEND_FLOW_REM if msg.send_flow_rem else 0
        body = pack_match(msg.match) + _FLOW_MOD_TAIL.pack(
            msg.cookie,
            msg.command.value,
            msg.idle_timeout,
            msg.hard_timeout,
            msg.priority,
            msg.buffer_id,
            OFPP_NONE,
            flags,
        )
        return _pack_header(OFPT_FLOW_MOD, body + pack_actions(msg.actions), xid)
    if isinstance(msg, m.FlowRemoved):
        body = pack_match(msg.match) + _FLOW_REMOVED_TAIL.pack(
            msg.cookie,
            msg.priority,
            msg.reason.value,
            msg.duration_sec,
            0,
            msg.idle_timeout,
            msg.packet_count,
            msg.byte_count,
        )
        return _pack_header(OFPT_FLOW_REMOVED, body, xid)
    if isinstance(msg, m.PortStatus):
        body = _PORT_STATUS_HEAD.pack(msg.reason.value) + _pack_port(msg.port)
        return _pack_header(OFPT_PORT_STATUS, body, xid)
    if isinstance(msg, m.PortMod):
        config = OFPPC_PORT_DOWN if msg.down else 0
        body = _PORT_MOD.pack(msg.port_no, msg.hw_addr, config, OFPPC_PORT_DOWN, 0)
        return _pack_header(OFPT_PORT_MOD, body, xid)
    if isinstance(msg, m.BarrierRequest):
        return _pack_header(OFPT_BARRIER_REQUEST, b"", xid)
    if isinstance(msg, m.BarrierReply):
        return _pack_header(OFPT_BARRIER_REPLY, b"", xid)
    if isinstance(msg, m.PortStatsRequest):
        body = _STATS_HEAD.pack(OFPST_PORT, 0) + _PORT_STATS_REQ.pack(msg.port_no)
        return _pack_header(OFPT_STATS_REQUEST, body, xid)
    if isinstance(msg, m.PortStatsReply):
        body = _STATS_HEAD.pack(OFPST_PORT, 0)
        for entry in msg.entries:
            body += _PORT_STATS_ENTRY.pack(
                entry.port_no,
                entry.rx_packets,
                entry.tx_packets,
                entry.rx_bytes,
                entry.tx_bytes,
                entry.tx_dropped,
                0,
                0,
                0,
                0,
                0,
                0,
                0,
            )
        return _pack_header(OFPT_STATS_REPLY, body, xid)
    if isinstance(msg, m.FlowStatsRequest):
        body = _STATS_HEAD.pack(OFPST_FLOW, 0) + pack_match(msg.match) + _FLOW_STATS_REQ_TAIL.pack(msg.table_id, OFPP_NONE)
        return _pack_header(OFPT_STATS_REQUEST, body, xid)
    if isinstance(msg, m.FlowStatsReply):
        body = _STATS_HEAD.pack(OFPST_FLOW, 0)
        for entry in msg.entries:
            actions = pack_actions(entry.actions)
            length = _FLOW_STATS_ENTRY_HEAD.size + _MATCH.size + _FLOW_STATS_ENTRY_MID.size + len(actions)
            body += _FLOW_STATS_ENTRY_HEAD.pack(length, 0)
            body += pack_match(entry.match)
            body += _FLOW_STATS_ENTRY_MID.pack(
                entry.duration_sec,
                0,
                entry.priority,
                entry.idle_timeout,
                entry.hard_timeout,
                entry.cookie,
                entry.packet_count,
                entry.byte_count,
            )
            body += actions
        return _pack_header(OFPT_STATS_REPLY, body, xid)
    if isinstance(msg, m.AggregateStatsRequest):
        body = _STATS_HEAD.pack(OFPST_AGGREGATE, 0) + pack_match(msg.match) + _FLOW_STATS_REQ_TAIL.pack(0xFF, OFPP_NONE)
        return _pack_header(OFPT_STATS_REQUEST, body, xid)
    if isinstance(msg, m.AggregateStatsReply):
        body = _STATS_HEAD.pack(OFPST_AGGREGATE, 0) + _AGG_REPLY.pack(msg.packet_count, msg.byte_count, msg.flow_count)
        return _pack_header(OFPT_STATS_REPLY, body, xid)
    raise CodecError(f"OpenFlow 1.0 cannot encode {type(msg).__name__}")


# -- decode ----------------------------------------------------------------------


def decode(data: bytes) -> tuple[m.Message, bytes]:
    """Parse one message from ``data``; returns (message, remaining bytes)."""
    if len(data) < _HEADER.size:
        raise CodecError("truncated OpenFlow header")
    version, msg_type, length, xid = _HEADER.unpack_from(data)
    if version != VERSION:
        raise CodecError(f"not an OpenFlow 1.0 message (version {version})")
    if length < _HEADER.size or len(data) < length:
        raise CodecError("truncated OpenFlow message")
    body = data[_HEADER.size : length]
    rest = data[length:]
    try:
        msg = _decode_body(msg_type, body)
    except (struct.error, IndexError) as exc:
        # A lying length field or corrupted body: fail like any other
        # malformed message rather than leaking struct internals.
        raise CodecError(f"truncated message body: {exc}") from exc
    msg.xid = xid
    return msg, rest


def _decode_body(msg_type: int, body: bytes) -> m.Message:
    if msg_type == OFPT_HELLO:
        return m.Hello(version=VERSION)
    if msg_type == OFPT_ECHO_REQUEST:
        return m.EchoRequest(payload=body)
    if msg_type == OFPT_ECHO_REPLY:
        return m.EchoReply(payload=body)
    if msg_type == OFPT_ERROR:
        err_type, err_code = struct.unpack_from("!HH", body)
        return m.ErrorMsg(err_type=err_type, err_code=err_code, data=body[4:])
    if msg_type == OFPT_FEATURES_REQUEST:
        return m.FeaturesRequest()
    if msg_type == OFPT_FEATURES_REPLY:
        dpid, n_buffers, n_tables, capabilities, _actions = _FEATURES_HEAD.unpack_from(body)
        ports = []
        offset = _FEATURES_HEAD.size
        while offset + _PHY_PORT.size <= len(body):
            ports.append(_unpack_port(body, offset))
            offset += _PHY_PORT.size
        return m.FeaturesReply(dpid=dpid, n_buffers=n_buffers, n_tables=n_tables, capabilities=capabilities, ports=ports)
    if msg_type == OFPT_PACKET_IN:
        buffer_id, total_len, in_port, reason = _PACKET_IN_HEAD.unpack_from(body)
        return m.PacketIn(
            buffer_id=buffer_id,
            total_len=total_len,
            in_port=in_port,
            reason=m.PacketInReasonWire(reason),
            data=body[_PACKET_IN_HEAD.size :],
        )
    if msg_type == OFPT_PACKET_OUT:
        buffer_id, in_port, actions_len = _PACKET_OUT_HEAD.unpack_from(body)
        offset = _PACKET_OUT_HEAD.size
        actions = unpack_actions(body[offset : offset + actions_len])
        return m.PacketOut(buffer_id=buffer_id, in_port=in_port, actions=actions, data=body[offset + actions_len :])
    if msg_type == OFPT_FLOW_MOD:
        match = unpack_match(body)
        offset = _MATCH.size
        cookie, command, idle, hard, priority, buffer_id, _out_port, flags = _FLOW_MOD_TAIL.unpack_from(body, offset)
        actions = unpack_actions(body[offset + _FLOW_MOD_TAIL.size :])
        return m.FlowMod(
            match=match,
            command=m.FlowModCommand(command),
            actions=actions,
            priority=priority,
            idle_timeout=idle,
            hard_timeout=hard,
            cookie=cookie,
            buffer_id=buffer_id,
            send_flow_rem=bool(flags & OFPFF_SEND_FLOW_REM),
        )
    if msg_type == OFPT_FLOW_REMOVED:
        match = unpack_match(body)
        cookie, priority, reason, dur_sec, _dur_nsec, idle, packets, octets = _FLOW_REMOVED_TAIL.unpack_from(body, _MATCH.size)
        return m.FlowRemoved(
            match=match,
            cookie=cookie,
            priority=priority,
            reason=m.FlowRemovedReasonWire(reason),
            duration_sec=dur_sec,
            idle_timeout=idle,
            packet_count=packets,
            byte_count=octets,
        )
    if msg_type == OFPT_PORT_STATUS:
        (reason,) = _PORT_STATUS_HEAD.unpack_from(body)
        port = _unpack_port(body, _PORT_STATUS_HEAD.size)
        return m.PortStatus(reason=m.PortStatusReason(reason), port=port)
    if msg_type == OFPT_PORT_MOD:
        port_no, hw_addr, config, mask, _advertise = _PORT_MOD.unpack_from(body)
        down = bool(config & OFPPC_PORT_DOWN) if mask & OFPPC_PORT_DOWN else False
        return m.PortMod(port_no=port_no, hw_addr=hw_addr, down=down)
    if msg_type == OFPT_BARRIER_REQUEST:
        return m.BarrierRequest()
    if msg_type == OFPT_BARRIER_REPLY:
        return m.BarrierReply()
    if msg_type in (OFPT_STATS_REQUEST, OFPT_STATS_REPLY):
        return _decode_stats(msg_type, body)
    raise CodecError(f"unknown OpenFlow 1.0 message type {msg_type}")


def _decode_stats(msg_type: int, body: bytes) -> m.Message:
    stats_type, _flags = _STATS_HEAD.unpack_from(body)
    payload = body[_STATS_HEAD.size :]
    if msg_type == OFPT_STATS_REQUEST:
        if stats_type == OFPST_PORT:
            (port_no,) = _PORT_STATS_REQ.unpack_from(payload)
            return m.PortStatsRequest(port_no=port_no)
        if stats_type == OFPST_FLOW:
            match = unpack_match(payload)
            table_id, _out_port = _FLOW_STATS_REQ_TAIL.unpack_from(payload, _MATCH.size)
            return m.FlowStatsRequest(match=match, table_id=table_id)
        if stats_type == OFPST_AGGREGATE:
            return m.AggregateStatsRequest(match=unpack_match(payload))
        raise CodecError(f"unknown stats request type {stats_type}")
    if stats_type == OFPST_PORT:
        entries = []
        offset = 0
        while offset + _PORT_STATS_ENTRY.size <= len(payload):
            values = _PORT_STATS_ENTRY.unpack_from(payload, offset)
            entries.append(
                m.PortStatsEntry(
                    port_no=values[0],
                    rx_packets=values[1],
                    tx_packets=values[2],
                    rx_bytes=values[3],
                    tx_bytes=values[4],
                    tx_dropped=values[5],
                )
            )
            offset += _PORT_STATS_ENTRY.size
        return m.PortStatsReply(entries=entries)
    if stats_type == OFPST_FLOW:
        entries = []
        offset = 0
        while offset + _FLOW_STATS_ENTRY_HEAD.size <= len(payload):
            length, _table = _FLOW_STATS_ENTRY_HEAD.unpack_from(payload, offset)
            if length < _FLOW_STATS_ENTRY_HEAD.size or offset + length > len(payload):
                raise CodecError("bad flow stats entry length")
            entry_match = unpack_match(payload, offset + _FLOW_STATS_ENTRY_HEAD.size)
            mid_offset = offset + _FLOW_STATS_ENTRY_HEAD.size + _MATCH.size
            dur_sec, _dur_nsec, priority, idle, hard, cookie, packets, octets = _FLOW_STATS_ENTRY_MID.unpack_from(payload, mid_offset)
            actions = unpack_actions(payload[mid_offset + _FLOW_STATS_ENTRY_MID.size : offset + length])
            entries.append(
                m.FlowStatsEntry(
                    match=entry_match,
                    priority=priority,
                    duration_sec=dur_sec,
                    idle_timeout=idle,
                    hard_timeout=hard,
                    cookie=cookie,
                    packet_count=packets,
                    byte_count=octets,
                    actions=actions,
                )
            )
            offset += length
        return m.FlowStatsReply(entries=entries)
    if stats_type == OFPST_AGGREGATE:
        packets, octets, flows = _AGG_REPLY.unpack_from(payload)
        return m.AggregateStatsReply(packet_count=packets, byte_count=octets, flow_count=flows)
    raise CodecError(f"unknown stats reply type {stats_type}")
