"""Version registry and negotiation helpers."""

from __future__ import annotations

from types import ModuleType

from repro.openflow import messages as m
from repro.openflow import of10, of13
from repro.openflow.of10 import CodecError

#: Wire version byte -> codec module (OF 1.0 = 0x01, OF 1.3 = 0x04).
CODECS: dict[int, ModuleType] = {of10.VERSION: of10, of13.VERSION: of13}

#: Human names for the supported versions.
VERSION_NAMES = {of10.VERSION: "OpenFlow 1.0", of13.VERSION: "OpenFlow 1.3"}


def peek_version(data: bytes) -> int:
    """The version byte of the next wire message."""
    if not data:
        raise CodecError("empty buffer")
    return data[0]


def codec_for(version: int) -> ModuleType:
    """The codec module for a wire version."""
    try:
        return CODECS[version]
    except KeyError:
        raise CodecError(f"unsupported OpenFlow version {version:#x}") from None


def negotiate(my_max: int, peer_hello_version: int) -> int:
    """OpenFlow hello negotiation: both sides settle on min(max, max).

    Raises CodecError when the agreed version is one we have no codec for.
    """
    agreed = min(my_max, peer_hello_version)
    if agreed not in CODECS:
        raise CodecError(f"no common OpenFlow version (agreed {agreed:#x})")
    return agreed


def decode_any(data: bytes) -> tuple[m.Message, int, bytes]:
    """Decode the next message of whatever supported version it is.

    Returns (message, version, remaining bytes).
    """
    version = peek_version(data)
    msg, rest = codec_for(version).decode(data)
    return msg, version, rest
