"""OpenFlow 1.3 wire codec (version byte 0x04).

The second driver protocol: TLV (OXM) matches with prefix masks,
instruction lists carrying actions, and the multipart stats family.  This
is the "newer protocol" a subset of the fleet is upgraded to live in the
paper's section 4.1 story.
"""

from __future__ import annotations

import struct
from ipaddress import IPv4Address, IPv4Network

from repro.dataplane.actions import (
    Action,
    Output,
    SetDlDst,
    SetDlSrc,
    SetNwDst,
    SetNwSrc,
    SetTpDst,
    SetTpSrc,
    SetVlan,
    StripVlan,
)
from repro.dataplane.match import Match
from repro.netpkt.addr import MacAddress
from repro.netpkt.ipv4 import IPPROTO_UDP
from repro.openflow import messages as m
from repro.openflow.of10 import CodecError

VERSION = 0x04

OFPT_HELLO = 0
OFPT_ERROR = 1
OFPT_ECHO_REQUEST = 2
OFPT_ECHO_REPLY = 3
OFPT_FEATURES_REQUEST = 5
OFPT_FEATURES_REPLY = 6
OFPT_PACKET_IN = 10
OFPT_FLOW_REMOVED = 11
OFPT_PORT_STATUS = 12
OFPT_PACKET_OUT = 13
OFPT_FLOW_MOD = 14
OFPT_PORT_MOD = 16
OFPT_MULTIPART_REQUEST = 18
OFPT_MULTIPART_REPLY = 19
OFPT_BARRIER_REQUEST = 20
OFPT_BARRIER_REPLY = 21

OFPMP_FLOW = 1
OFPMP_AGGREGATE = 2
OFPMP_PORT_STATS = 4
OFPMP_PORT_DESC = 13

# OXM: class openflow-basic, fields we support.
OXM_CLASS_BASIC = 0x8000
OXM_IN_PORT = 0
OXM_ETH_DST = 3
OXM_ETH_SRC = 4
OXM_ETH_TYPE = 5
OXM_VLAN_VID = 6
OXM_VLAN_PCP = 7
OXM_IP_DSCP = 8
OXM_IP_PROTO = 10
OXM_IPV4_SRC = 11
OXM_IPV4_DST = 12
OXM_TCP_SRC = 13
OXM_TCP_DST = 14
OXM_UDP_SRC = 15
OXM_UDP_DST = 16

OFPVID_PRESENT = 0x1000

OFPAT_OUTPUT = 0
OFPAT_POP_VLAN = 18
OFPAT_PUSH_VLAN = 17
OFPAT_SET_FIELD = 25

OFPIT_APPLY_ACTIONS = 4

OFPP_CONTROLLER = 0xFFFFFFFD
OFPP_FLOOD = 0xFFFFFFFB
OFPP_ALL = 0xFFFFFFFC
OFPP_IN_PORT = 0xFFFFFFF8
OFPP_ANY = 0xFFFFFFFF

# dataplane reserved ports (16-bit) <-> OF1.3 reserved ports (32-bit).
_PORT_TO_WIRE = {0xFFF8: OFPP_IN_PORT, 0xFFFB: OFPP_FLOOD, 0xFFFC: OFPP_ALL, 0xFFFD: OFPP_CONTROLLER}
_PORT_FROM_WIRE = {v: k for k, v in _PORT_TO_WIRE.items()}

OFPPC_PORT_DOWN = 1 << 0
OFPPS_LINK_DOWN = 1 << 0

OFPFF_SEND_FLOW_REM = 1 << 0

_HEADER = struct.Struct("!BBHI")
_FEATURES = struct.Struct("!QIBB2xII")
_PORT = struct.Struct("!I4x6s2x16sIIIIIIII")
_FLOW_MOD_HEAD = struct.Struct("!QQBBHHHIIIH2x")
_PACKET_IN_HEAD = struct.Struct("!IHBBQ")
_PACKET_OUT_HEAD = struct.Struct("!IIH6x")
_FLOW_REMOVED_HEAD = struct.Struct("!QHBBIIHHQQ")
_PORT_STATUS_HEAD = struct.Struct("!B7x")
_PORT_MOD = struct.Struct("!I4x6s2xIII4x")
_MULTIPART_HEAD = struct.Struct("!HH4x")
_PORT_STATS_REQ = struct.Struct("!I4x")
_PORT_STATS_ENTRY = struct.Struct("!I4xQQQQQQQQQQQQII")
_FLOW_STATS_REQ_HEAD = struct.Struct("!B3xII4xQQ")
_FLOW_STATS_ENTRY_HEAD = struct.Struct("!HBxIIHHHH4xQQQ")
_AGG_REPLY = struct.Struct("!QQI4x")


def _wire_port(port: int) -> int:
    return _PORT_TO_WIRE.get(port, port)


def _local_port(port: int) -> int:
    return _PORT_FROM_WIRE.get(port, port)


def _pack_header(msg_type: int, body: bytes, xid: int) -> bytes:
    return _HEADER.pack(VERSION, msg_type, _HEADER.size + len(body), xid) + body


def _pad8(data: bytes) -> bytes:
    remainder = len(data) % 8
    return data if not remainder else data + b"\x00" * (8 - remainder)


# -- OXM match ---------------------------------------------------------------------


def _oxm(field: int, value: bytes, mask: bytes | None = None) -> bytes:
    has_mask = mask is not None
    payload = value + (mask or b"")
    header = struct.pack("!HBB", OXM_CLASS_BASIC, field << 1 | int(has_mask), len(payload))
    return header + payload


def pack_match(match: Match) -> bytes:
    """Encode as an ofp_match TLV (type OXM), padded to 8 bytes."""
    tlvs = b""
    if match.in_port is not None:
        tlvs += _oxm(OXM_IN_PORT, struct.pack("!I", match.in_port))
    if match.dl_dst is not None:
        tlvs += _oxm(OXM_ETH_DST, match.dl_dst.packed)
    if match.dl_src is not None:
        tlvs += _oxm(OXM_ETH_SRC, match.dl_src.packed)
    if match.dl_type is not None:
        tlvs += _oxm(OXM_ETH_TYPE, struct.pack("!H", match.dl_type))
    if match.dl_vlan is not None:
        tlvs += _oxm(OXM_VLAN_VID, struct.pack("!H", match.dl_vlan | OFPVID_PRESENT))
    if match.dl_vlan_pcp is not None:
        tlvs += _oxm(OXM_VLAN_PCP, bytes([match.dl_vlan_pcp]))
    if match.nw_tos is not None:
        tlvs += _oxm(OXM_IP_DSCP, bytes([match.nw_tos >> 2]))
    if match.nw_proto is not None:
        tlvs += _oxm(OXM_IP_PROTO, bytes([match.nw_proto]))
    for field_id, network in ((OXM_IPV4_SRC, match.nw_src), (OXM_IPV4_DST, match.nw_dst)):
        if network is None:
            continue
        value = struct.pack("!I", int(network.network_address))
        if network.prefixlen == 32:
            tlvs += _oxm(field_id, value)
        else:
            tlvs += _oxm(field_id, value, struct.pack("!I", int(network.netmask)))
    if match.tp_src is not None or match.tp_dst is not None:
        src_field, dst_field = _tp_fields(match.nw_proto)
        if match.tp_src is not None:
            tlvs += _oxm(src_field, struct.pack("!H", match.tp_src))
        if match.tp_dst is not None:
            tlvs += _oxm(dst_field, struct.pack("!H", match.tp_dst))
    head = struct.pack("!HH", 1, 4 + len(tlvs))  # type OFPMT_OXM
    return _pad8(head + tlvs)


def _tp_fields(nw_proto: int | None) -> tuple[int, int]:
    if nw_proto == IPPROTO_UDP:
        return OXM_UDP_SRC, OXM_UDP_DST
    # TCP is the default carrier for port matches (including unspecified).
    return OXM_TCP_SRC, OXM_TCP_DST


def unpack_match(data: bytes, offset: int = 0) -> tuple[Match, int]:
    """Decode an OXM match; returns (match, bytes consumed incl. padding)."""
    if len(data) - offset < 4:
        raise CodecError("truncated ofp_match")
    match_type, length = struct.unpack_from("!HH", data, offset)
    if match_type != 1:
        raise CodecError(f"unsupported match type {match_type}")
    end = offset + length
    if end > len(data):
        raise CodecError("truncated OXM match body")
    kwargs: dict[str, object] = {}
    cursor = offset + 4
    while cursor + 4 <= end:
        oxm_class, type_byte, oxm_len = struct.unpack_from("!HBB", data, cursor)
        field_id, has_mask = type_byte >> 1, bool(type_byte & 1)
        cursor += 4
        if cursor + oxm_len > end:
            raise CodecError("OXM TLV overruns the match")
        payload = data[cursor : cursor + oxm_len]
        cursor += oxm_len
        if oxm_class != OXM_CLASS_BASIC:
            continue  # skip experimenter/unknown classes
        value_len = oxm_len // 2 if has_mask else oxm_len
        value, mask = payload[:value_len], payload[value_len:] if has_mask else None
        _apply_oxm(kwargs, field_id, value, mask)
    consumed = _pad8_len(length)
    return Match(**kwargs), consumed  # type: ignore[arg-type]


def _pad8_len(length: int) -> int:
    remainder = length % 8
    return length if not remainder else length + 8 - remainder


def _apply_oxm(kwargs: dict[str, object], field_id: int, value: bytes, mask: bytes | None) -> None:
    if field_id == OXM_IN_PORT:
        kwargs["in_port"] = _local_port(struct.unpack("!I", value)[0])
    elif field_id == OXM_ETH_DST:
        kwargs["dl_dst"] = MacAddress(value)
    elif field_id == OXM_ETH_SRC:
        kwargs["dl_src"] = MacAddress(value)
    elif field_id == OXM_ETH_TYPE:
        kwargs["dl_type"] = struct.unpack("!H", value)[0]
    elif field_id == OXM_VLAN_VID:
        kwargs["dl_vlan"] = struct.unpack("!H", value)[0] & ~OFPVID_PRESENT
    elif field_id == OXM_VLAN_PCP:
        kwargs["dl_vlan_pcp"] = value[0]
    elif field_id == OXM_IP_DSCP:
        kwargs["nw_tos"] = value[0] << 2
    elif field_id == OXM_IP_PROTO:
        kwargs["nw_proto"] = value[0]
    elif field_id in (OXM_IPV4_SRC, OXM_IPV4_DST):
        address = IPv4Address(struct.unpack("!I", value)[0])
        if mask is None:
            network = IPv4Network(f"{address}/32")
        else:
            prefix_len = bin(struct.unpack("!I", mask)[0]).count("1")
            network = IPv4Network(f"{address}/{prefix_len}", strict=False)
        kwargs["nw_src" if field_id == OXM_IPV4_SRC else "nw_dst"] = network
    elif field_id in (OXM_TCP_SRC, OXM_UDP_SRC):
        kwargs["tp_src"] = struct.unpack("!H", value)[0]
    elif field_id in (OXM_TCP_DST, OXM_UDP_DST):
        kwargs["tp_dst"] = struct.unpack("!H", value)[0]


# -- actions / instructions -----------------------------------------------------------


def pack_actions(actions: list[Action]) -> bytes:
    """Encode an action list (set-field based)."""
    out = b""
    for action in actions:
        if isinstance(action, Output):
            out += struct.pack("!HHIH6x", OFPAT_OUTPUT, 16, _wire_port(action.port), 0xFFFF)
        elif isinstance(action, StripVlan):
            out += struct.pack("!HH4x", OFPAT_POP_VLAN, 8)
        elif isinstance(action, SetVlan):
            out += _set_field(OXM_VLAN_VID, struct.pack("!H", action.vid | OFPVID_PRESENT))
        elif isinstance(action, SetDlSrc):
            out += _set_field(OXM_ETH_SRC, action.mac.packed)
        elif isinstance(action, SetDlDst):
            out += _set_field(OXM_ETH_DST, action.mac.packed)
        elif isinstance(action, SetNwSrc):
            out += _set_field(OXM_IPV4_SRC, struct.pack("!I", int(action.addr)))
        elif isinstance(action, SetNwDst):
            out += _set_field(OXM_IPV4_DST, struct.pack("!I", int(action.addr)))
        elif isinstance(action, SetTpSrc):
            out += _set_field(OXM_TCP_SRC, struct.pack("!H", action.port))
        elif isinstance(action, SetTpDst):
            out += _set_field(OXM_TCP_DST, struct.pack("!H", action.port))
        else:
            raise CodecError(f"OpenFlow 1.3 cannot encode {type(action).__name__}")
    return out


def _set_field(field_id: int, value: bytes) -> bytes:
    oxm = _oxm(field_id, value)
    body = struct.pack("!HH", OFPAT_SET_FIELD, _pad8_len(4 + len(oxm))) + oxm
    return _pad8(body)


def unpack_actions(data: bytes) -> list[Action]:
    """Decode an action list."""
    actions: list[Action] = []
    offset = 0
    while offset + 4 <= len(data):
        act_type, act_len = struct.unpack_from("!HH", data, offset)
        if act_len < 8 or offset + act_len > len(data):
            raise CodecError(f"bad action length {act_len}")
        body = data[offset + 4 : offset + act_len]
        if act_type == OFPAT_OUTPUT:
            port, _max_len = struct.unpack_from("!IH", body)
            actions.append(Output(_local_port(port)))
        elif act_type == OFPAT_POP_VLAN:
            actions.append(StripVlan())
        elif act_type == OFPAT_SET_FIELD:
            oxm_class, type_byte, oxm_len = struct.unpack_from("!HBB", body)
            field_id = type_byte >> 1
            value = body[4 : 4 + oxm_len]
            actions.append(_set_field_action(oxm_class, field_id, value))
        else:
            raise CodecError(f"unknown OpenFlow 1.3 action type {act_type}")
        offset += act_len
    return actions


def _set_field_action(oxm_class: int, field_id: int, value: bytes) -> Action:
    if oxm_class != OXM_CLASS_BASIC:
        raise CodecError(f"unsupported set-field class {oxm_class:#x}")
    if field_id == OXM_VLAN_VID:
        return SetVlan(struct.unpack("!H", value)[0] & ~OFPVID_PRESENT)
    if field_id == OXM_ETH_SRC:
        return SetDlSrc(MacAddress(value))
    if field_id == OXM_ETH_DST:
        return SetDlDst(MacAddress(value))
    if field_id == OXM_IPV4_SRC:
        return SetNwSrc(IPv4Address(struct.unpack("!I", value)[0]))
    if field_id == OXM_IPV4_DST:
        return SetNwDst(IPv4Address(struct.unpack("!I", value)[0]))
    if field_id in (OXM_TCP_SRC, OXM_UDP_SRC):
        return SetTpSrc(struct.unpack("!H", value)[0])
    if field_id in (OXM_TCP_DST, OXM_UDP_DST):
        return SetTpDst(struct.unpack("!H", value)[0])
    raise CodecError(f"unsupported set-field target {field_id}")


def _pack_instructions(actions: list[Action]) -> bytes:
    body = pack_actions(actions)
    return struct.pack("!HH4x", OFPIT_APPLY_ACTIONS, 8 + len(body)) + body


def _unpack_instructions(data: bytes) -> list[Action]:
    actions: list[Action] = []
    offset = 0
    while offset + 8 <= len(data):
        inst_type, inst_len = struct.unpack_from("!HH", data, offset)
        if inst_len < 8 or offset + inst_len > len(data):
            raise CodecError(f"bad instruction length {inst_len}")
        if inst_type == OFPIT_APPLY_ACTIONS:
            actions.extend(unpack_actions(data[offset + 8 : offset + inst_len]))
        offset += inst_len
    return actions


# -- ports ---------------------------------------------------------------------------


def _pack_port(port: m.PortDesc) -> bytes:
    config = OFPPC_PORT_DOWN if port.config_down else 0
    state = OFPPS_LINK_DOWN if port.link_down else 0
    return _PORT.pack(
        port.port_no,
        port.hw_addr,
        port.name.encode()[:16].ljust(16, b"\x00"),
        config,
        state,
        0,
        0,
        0,
        0,
        0,
        0,
    )


def _unpack_port(data: bytes, offset: int) -> m.PortDesc:
    values = _PORT.unpack_from(data, offset)
    return m.PortDesc(
        port_no=values[0],
        hw_addr=values[1],
        name=values[2].rstrip(b"\x00").decode(),
        config_down=bool(values[3] & OFPPC_PORT_DOWN),
        link_down=bool(values[4] & OFPPS_LINK_DOWN),
    )


# -- encode ----------------------------------------------------------------------------


def encode(msg: m.Message) -> bytes:
    """Serialize a message to OpenFlow 1.3 wire bytes."""
    xid = msg.xid
    if isinstance(msg, m.Hello):
        return _pack_header(OFPT_HELLO, b"", xid)
    if isinstance(msg, m.EchoRequest):
        return _pack_header(OFPT_ECHO_REQUEST, msg.payload, xid)
    if isinstance(msg, m.EchoReply):
        return _pack_header(OFPT_ECHO_REPLY, msg.payload, xid)
    if isinstance(msg, m.ErrorMsg):
        return _pack_header(OFPT_ERROR, struct.pack("!HH", msg.err_type, msg.err_code) + msg.data, xid)
    if isinstance(msg, m.FeaturesRequest):
        return _pack_header(OFPT_FEATURES_REQUEST, b"", xid)
    if isinstance(msg, m.FeaturesReply):
        body = _FEATURES.pack(msg.dpid, msg.n_buffers, msg.n_tables, 0, msg.capabilities, 0)
        return _pack_header(OFPT_FEATURES_REPLY, body, xid)
    if isinstance(msg, m.PortDescRequest):
        return _pack_header(OFPT_MULTIPART_REQUEST, _MULTIPART_HEAD.pack(OFPMP_PORT_DESC, 0), xid)
    if isinstance(msg, m.PortDescReply):
        body = _MULTIPART_HEAD.pack(OFPMP_PORT_DESC, 0)
        for port in msg.ports:
            body += _pack_port(port)
        return _pack_header(OFPT_MULTIPART_REPLY, body, xid)
    if isinstance(msg, m.PacketIn):
        match = pack_match(Match(in_port=msg.in_port))
        body = _PACKET_IN_HEAD.pack(msg.buffer_id, msg.total_len, msg.reason.value, 0, 0) + match + b"\x00\x00" + msg.data
        return _pack_header(OFPT_PACKET_IN, body, xid)
    if isinstance(msg, m.PacketOut):
        actions = pack_actions(msg.actions)
        body = _PACKET_OUT_HEAD.pack(msg.buffer_id, _wire_port(msg.in_port), len(actions)) + actions + msg.data
        return _pack_header(OFPT_PACKET_OUT, body, xid)
    if isinstance(msg, m.FlowMod):
        flags = OFPFF_SEND_FLOW_REM if msg.send_flow_rem else 0
        head = _FLOW_MOD_HEAD.pack(
            msg.cookie,
            0,
            msg.table_id,
            msg.command.value,
            msg.idle_timeout,
            msg.hard_timeout,
            msg.priority,
            msg.buffer_id,
            OFPP_ANY,
            0xFFFFFFFF,
            flags,
        )
        body = head + pack_match(msg.match) + _pack_instructions(msg.actions)
        return _pack_header(OFPT_FLOW_MOD, body, xid)
    if isinstance(msg, m.FlowRemoved):
        head = _FLOW_REMOVED_HEAD.pack(
            msg.cookie,
            msg.priority,
            msg.reason.value,
            0,
            msg.duration_sec,
            0,
            msg.idle_timeout,
            0,
            msg.packet_count,
            msg.byte_count,
        )
        return _pack_header(OFPT_FLOW_REMOVED, head + pack_match(msg.match), xid)
    if isinstance(msg, m.PortStatus):
        body = _PORT_STATUS_HEAD.pack(msg.reason.value) + _pack_port(msg.port)
        return _pack_header(OFPT_PORT_STATUS, body, xid)
    if isinstance(msg, m.PortMod):
        config = OFPPC_PORT_DOWN if msg.down else 0
        body = _PORT_MOD.pack(msg.port_no, msg.hw_addr, config, OFPPC_PORT_DOWN, 0)
        return _pack_header(OFPT_PORT_MOD, body, xid)
    if isinstance(msg, m.BarrierRequest):
        return _pack_header(OFPT_BARRIER_REQUEST, b"", xid)
    if isinstance(msg, m.BarrierReply):
        return _pack_header(OFPT_BARRIER_REPLY, b"", xid)
    if isinstance(msg, m.PortStatsRequest):
        port_no = OFPP_ANY if msg.port_no in (0xFFFF, OFPP_ANY) else msg.port_no
        body = _MULTIPART_HEAD.pack(OFPMP_PORT_STATS, 0) + _PORT_STATS_REQ.pack(port_no)
        return _pack_header(OFPT_MULTIPART_REQUEST, body, xid)
    if isinstance(msg, m.PortStatsReply):
        body = _MULTIPART_HEAD.pack(OFPMP_PORT_STATS, 0)
        for entry in msg.entries:
            body += _PORT_STATS_ENTRY.pack(
                entry.port_no,
                entry.rx_packets,
                entry.tx_packets,
                entry.rx_bytes,
                entry.tx_bytes,
                0,
                entry.tx_dropped,
                0,
                0,
                0,
                0,
                0,
                0,
                0,
                0,
            )
        return _pack_header(OFPT_MULTIPART_REPLY, body, xid)
    if isinstance(msg, m.FlowStatsRequest):
        head = _FLOW_STATS_REQ_HEAD.pack(msg.table_id, OFPP_ANY, 0xFFFFFFFF, 0, 0)
        body = _MULTIPART_HEAD.pack(OFPMP_FLOW, 0) + head + pack_match(msg.match)
        return _pack_header(OFPT_MULTIPART_REQUEST, body, xid)
    if isinstance(msg, m.FlowStatsReply):
        body = _MULTIPART_HEAD.pack(OFPMP_FLOW, 0)
        for entry in msg.entries:
            match = pack_match(entry.match)
            instructions = _pack_instructions(entry.actions)
            length = _FLOW_STATS_ENTRY_HEAD.size + len(match) + len(instructions)
            body += _FLOW_STATS_ENTRY_HEAD.pack(
                length,
                0,
                entry.duration_sec,
                0,
                entry.priority,
                entry.idle_timeout,
                entry.hard_timeout,
                0,
                entry.cookie,
                entry.packet_count,
                entry.byte_count,
            )
            body += match + instructions
        return _pack_header(OFPT_MULTIPART_REPLY, body, xid)
    if isinstance(msg, m.AggregateStatsRequest):
        head = _FLOW_STATS_REQ_HEAD.pack(0xFF, OFPP_ANY, 0xFFFFFFFF, 0, 0)
        body = _MULTIPART_HEAD.pack(OFPMP_AGGREGATE, 0) + head + pack_match(msg.match)
        return _pack_header(OFPT_MULTIPART_REQUEST, body, xid)
    if isinstance(msg, m.AggregateStatsReply):
        body = _MULTIPART_HEAD.pack(OFPMP_AGGREGATE, 0) + _AGG_REPLY.pack(msg.packet_count, msg.byte_count, msg.flow_count)
        return _pack_header(OFPT_MULTIPART_REPLY, body, xid)
    raise CodecError(f"OpenFlow 1.3 cannot encode {type(msg).__name__}")


# -- decode -------------------------------------------------------------------------------


def decode(data: bytes) -> tuple[m.Message, bytes]:
    """Parse one message; returns (message, remaining bytes)."""
    if len(data) < _HEADER.size:
        raise CodecError("truncated OpenFlow header")
    version, msg_type, length, xid = _HEADER.unpack_from(data)
    if version != VERSION:
        raise CodecError(f"not an OpenFlow 1.3 message (version {version})")
    if length < _HEADER.size or len(data) < length:
        raise CodecError("truncated OpenFlow message")
    body = data[_HEADER.size : length]
    rest = data[length:]
    try:
        msg = _decode_body(msg_type, body)
    except (struct.error, IndexError) as exc:
        raise CodecError(f"truncated message body: {exc}") from exc
    msg.xid = xid
    return msg, rest


def _decode_body(msg_type: int, body: bytes) -> m.Message:
    if msg_type == OFPT_HELLO:
        return m.Hello(version=VERSION)
    if msg_type == OFPT_ECHO_REQUEST:
        return m.EchoRequest(payload=body)
    if msg_type == OFPT_ECHO_REPLY:
        return m.EchoReply(payload=body)
    if msg_type == OFPT_ERROR:
        err_type, err_code = struct.unpack_from("!HH", body)
        return m.ErrorMsg(err_type=err_type, err_code=err_code, data=body[4:])
    if msg_type == OFPT_FEATURES_REQUEST:
        return m.FeaturesRequest()
    if msg_type == OFPT_FEATURES_REPLY:
        dpid, n_buffers, n_tables, _aux, capabilities, _reserved = _FEATURES.unpack_from(body)
        return m.FeaturesReply(dpid=dpid, n_buffers=n_buffers, n_tables=n_tables, capabilities=capabilities)
    if msg_type == OFPT_PACKET_IN:
        buffer_id, total_len, reason, _table, _cookie = _PACKET_IN_HEAD.unpack_from(body)
        match, consumed = unpack_match(body, _PACKET_IN_HEAD.size)
        data_start = _PACKET_IN_HEAD.size + consumed + 2
        return m.PacketIn(
            buffer_id=buffer_id,
            total_len=total_len,
            in_port=match.in_port or 0,
            reason=m.PacketInReasonWire(reason),
            data=body[data_start:],
        )
    if msg_type == OFPT_PACKET_OUT:
        buffer_id, in_port, actions_len = _PACKET_OUT_HEAD.unpack_from(body)
        offset = _PACKET_OUT_HEAD.size
        actions = unpack_actions(body[offset : offset + actions_len])
        return m.PacketOut(
            buffer_id=buffer_id,
            in_port=_local_port(in_port),
            actions=actions,
            data=body[offset + actions_len :],
        )
    if msg_type == OFPT_FLOW_MOD:
        (cookie, _cookie_mask, table_id, command, idle, hard, priority, buffer_id, _out_port, _out_group, flags) = _FLOW_MOD_HEAD.unpack_from(body)
        match, consumed = unpack_match(body, _FLOW_MOD_HEAD.size)
        actions = _unpack_instructions(body[_FLOW_MOD_HEAD.size + consumed :])
        return m.FlowMod(
            match=match,
            command=m.FlowModCommand(command),
            actions=actions,
            priority=priority,
            idle_timeout=idle,
            hard_timeout=hard,
            cookie=cookie,
            buffer_id=buffer_id,
            table_id=table_id,
            send_flow_rem=bool(flags & OFPFF_SEND_FLOW_REM),
        )
    if msg_type == OFPT_FLOW_REMOVED:
        (cookie, priority, reason, _table, dur_sec, _dur_nsec, idle, _hard, packets, octets) = _FLOW_REMOVED_HEAD.unpack_from(body)
        match, _consumed = unpack_match(body, _FLOW_REMOVED_HEAD.size)
        return m.FlowRemoved(
            match=match,
            cookie=cookie,
            priority=priority,
            reason=m.FlowRemovedReasonWire(reason),
            duration_sec=dur_sec,
            idle_timeout=idle,
            packet_count=packets,
            byte_count=octets,
        )
    if msg_type == OFPT_PORT_STATUS:
        (reason,) = _PORT_STATUS_HEAD.unpack_from(body)
        return m.PortStatus(reason=m.PortStatusReason(reason), port=_unpack_port(body, _PORT_STATUS_HEAD.size))
    if msg_type == OFPT_PORT_MOD:
        port_no, hw_addr, config, mask, _advertise = _PORT_MOD.unpack_from(body)
        down = bool(config & OFPPC_PORT_DOWN) if mask & OFPPC_PORT_DOWN else False
        return m.PortMod(port_no=port_no, hw_addr=hw_addr, down=down)
    if msg_type == OFPT_BARRIER_REQUEST:
        return m.BarrierRequest()
    if msg_type == OFPT_BARRIER_REPLY:
        return m.BarrierReply()
    if msg_type in (OFPT_MULTIPART_REQUEST, OFPT_MULTIPART_REPLY):
        return _decode_multipart(msg_type, body)
    raise CodecError(f"unknown OpenFlow 1.3 message type {msg_type}")


def _decode_multipart(msg_type: int, body: bytes) -> m.Message:
    mp_type, _flags = _MULTIPART_HEAD.unpack_from(body)
    payload = body[_MULTIPART_HEAD.size :]
    if msg_type == OFPT_MULTIPART_REQUEST:
        if mp_type == OFPMP_PORT_DESC:
            return m.PortDescRequest()
        if mp_type == OFPMP_PORT_STATS:
            (port_no,) = _PORT_STATS_REQ.unpack_from(payload)
            return m.PortStatsRequest(port_no=_local_port(port_no) if port_no != OFPP_ANY else 0xFFFF)
        if mp_type == OFPMP_FLOW:
            table_id, _out_port, _out_group, _cookie, _mask = _FLOW_STATS_REQ_HEAD.unpack_from(payload)
            match, _consumed = unpack_match(payload, _FLOW_STATS_REQ_HEAD.size)
            return m.FlowStatsRequest(match=match, table_id=table_id)
        if mp_type == OFPMP_AGGREGATE:
            match, _consumed = unpack_match(payload, _FLOW_STATS_REQ_HEAD.size)
            return m.AggregateStatsRequest(match=match)
        raise CodecError(f"unknown multipart request type {mp_type}")
    if mp_type == OFPMP_PORT_DESC:
        ports = []
        offset = 0
        while offset + _PORT.size <= len(payload):
            ports.append(_unpack_port(payload, offset))
            offset += _PORT.size
        return m.PortDescReply(ports=ports)
    if mp_type == OFPMP_PORT_STATS:
        entries = []
        offset = 0
        while offset + _PORT_STATS_ENTRY.size <= len(payload):
            values = _PORT_STATS_ENTRY.unpack_from(payload, offset)
            entries.append(
                m.PortStatsEntry(
                    port_no=values[0],
                    rx_packets=values[1],
                    tx_packets=values[2],
                    rx_bytes=values[3],
                    tx_bytes=values[4],
                    tx_dropped=values[6],
                )
            )
            offset += _PORT_STATS_ENTRY.size
        return m.PortStatsReply(entries=entries)
    if mp_type == OFPMP_FLOW:
        entries = []
        offset = 0
        while offset + _FLOW_STATS_ENTRY_HEAD.size <= len(payload):
            values = _FLOW_STATS_ENTRY_HEAD.unpack_from(payload, offset)
            length = values[0]
            if length < _FLOW_STATS_ENTRY_HEAD.size or offset + length > len(payload):
                raise CodecError("bad flow stats entry length")
            match, consumed = unpack_match(payload, offset + _FLOW_STATS_ENTRY_HEAD.size)
            inst_start = offset + _FLOW_STATS_ENTRY_HEAD.size + consumed
            actions = _unpack_instructions(payload[inst_start : offset + length])
            entries.append(
                m.FlowStatsEntry(
                    match=match,
                    priority=values[4],
                    duration_sec=values[2],
                    idle_timeout=values[5],
                    hard_timeout=values[6],
                    cookie=values[8],
                    packet_count=values[9],
                    byte_count=values[10],
                    actions=actions,
                )
            )
            offset += length
        return m.FlowStatsReply(entries=entries)
    if mp_type == OFPMP_AGGREGATE:
        packets, octets, flows = _AGG_REPLY.unpack_from(payload)
        return m.AggregateStatsReply(packet_count=packets, byte_count=octets, flow_count=flows)
    raise CodecError(f"unknown multipart reply type {mp_type}")
