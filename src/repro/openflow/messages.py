"""Version-independent OpenFlow messages.

Drivers and switch agents think in these dataclasses; the version codecs
(:mod:`repro.openflow.of10`, :mod:`repro.openflow.of13`) turn them into the
wire bytes of a concrete protocol version.  This split is what lets a yanc
deployment run OpenFlow 1.0 and 1.3 drivers side by side (paper section
4.1) with the same upper layers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.dataplane.actions import Action
from repro.dataplane.match import Match

#: "Not buffered" sentinel shared by both protocol versions.
NO_BUFFER = 0xFFFFFFFF


class FlowModCommand(enum.Enum):
    """flow-mod commands (same numeric values in 1.0 and 1.3)."""

    ADD = 0
    MODIFY = 1
    MODIFY_STRICT = 2
    DELETE = 3
    DELETE_STRICT = 4


class PacketInReasonWire(enum.Enum):
    """packet-in reasons."""

    NO_MATCH = 0
    ACTION = 1


class FlowRemovedReasonWire(enum.Enum):
    """flow-removed reasons."""

    IDLE_TIMEOUT = 0
    HARD_TIMEOUT = 1
    DELETE = 2


class PortStatusReason(enum.Enum):
    """port-status reasons."""

    ADD = 0
    DELETE = 1
    MODIFY = 2


class Message:
    """Base class for all protocol messages (carries the transaction id)."""

    xid: int = 0


@dataclass
class Hello(Message):
    """Version negotiation opener; ``version`` is the sender's maximum."""

    version: int
    xid: int = 0


@dataclass
class EchoRequest(Message):
    """Liveness probe."""

    payload: bytes = b""
    xid: int = 0


@dataclass
class EchoReply(Message):
    """Echo answer (payload mirrored)."""

    payload: bytes = b""
    xid: int = 0


@dataclass
class ErrorMsg(Message):
    """An error report; ``data`` holds the offending message prefix."""

    err_type: int = 0
    err_code: int = 0
    data: bytes = b""
    xid: int = 0


@dataclass
class FeaturesRequest(Message):
    """Ask the switch to describe itself."""

    xid: int = 0


@dataclass
class PortDesc:
    """One physical port in a features reply / port-status / port-desc."""

    port_no: int
    hw_addr: bytes
    name: str
    config_down: bool = False
    link_down: bool = False


@dataclass
class FeaturesReply(Message):
    """The switch description.

    OpenFlow 1.0 inlines the port list; 1.3 sends ports via a separate
    port-desc multipart exchange, so ``ports`` may be empty there.
    """

    dpid: int = 0
    n_buffers: int = 0
    n_tables: int = 1
    capabilities: int = 0
    ports: list[PortDesc] = field(default_factory=list)
    xid: int = 0


@dataclass
class PortDescRequest(Message):
    """OF 1.3 multipart port-desc request (no-op for 1.0 codecs)."""

    xid: int = 0


@dataclass
class PortDescReply(Message):
    """OF 1.3 multipart port-desc reply."""

    ports: list[PortDesc] = field(default_factory=list)
    xid: int = 0


@dataclass
class PacketIn(Message):
    """A punted packet."""

    buffer_id: int = NO_BUFFER
    total_len: int = 0
    in_port: int = 0
    reason: PacketInReasonWire = PacketInReasonWire.NO_MATCH
    data: bytes = b""
    xid: int = 0


@dataclass
class PacketOut(Message):
    """Inject a packet through an action list."""

    buffer_id: int = NO_BUFFER
    in_port: int = 0
    actions: list[Action] = field(default_factory=list)
    data: bytes = b""
    xid: int = 0


@dataclass
class FlowMod(Message):
    """Install / modify / delete flow entries."""

    match: Match = field(default_factory=Match)
    command: FlowModCommand = FlowModCommand.ADD
    actions: list[Action] = field(default_factory=list)
    priority: int = 0x8000
    idle_timeout: int = 0
    hard_timeout: int = 0
    cookie: int = 0
    buffer_id: int = NO_BUFFER
    table_id: int = 0
    send_flow_rem: bool = False
    xid: int = 0


@dataclass
class FlowRemoved(Message):
    """Notification that an entry left the table."""

    match: Match = field(default_factory=Match)
    cookie: int = 0
    priority: int = 0x8000
    reason: FlowRemovedReasonWire = FlowRemovedReasonWire.IDLE_TIMEOUT
    duration_sec: int = 0
    idle_timeout: int = 0
    packet_count: int = 0
    byte_count: int = 0
    xid: int = 0


@dataclass
class PortStatus(Message):
    """Notification of a port change."""

    reason: PortStatusReason = PortStatusReason.MODIFY
    port: PortDesc = field(default_factory=lambda: PortDesc(0, b"\x00" * 6, ""))
    xid: int = 0


@dataclass
class PortMod(Message):
    """Controller request to change port config (admin up/down)."""

    port_no: int = 0
    hw_addr: bytes = b"\x00" * 6
    down: bool = False
    xid: int = 0


@dataclass
class BarrierRequest(Message):
    """Fence: reply only after all earlier messages are processed."""

    xid: int = 0


@dataclass
class BarrierReply(Message):
    """Barrier acknowledgement."""

    xid: int = 0


@dataclass
class PortStatsRequest(Message):
    """Ask for counters of one port (or all with OFPP_NONE/ANY)."""

    port_no: int = 0xFFFF
    xid: int = 0


@dataclass
class PortStatsEntry:
    """Counters for one port."""

    port_no: int
    rx_packets: int = 0
    tx_packets: int = 0
    rx_bytes: int = 0
    tx_bytes: int = 0
    tx_dropped: int = 0


@dataclass
class PortStatsReply(Message):
    """Port counters."""

    entries: list[PortStatsEntry] = field(default_factory=list)
    xid: int = 0


@dataclass
class FlowStatsRequest(Message):
    """Ask for per-flow statistics for entries matching ``match``."""

    match: Match = field(default_factory=Match)
    table_id: int = 0xFF
    xid: int = 0


@dataclass
class FlowStatsEntry:
    """Statistics for one flow entry."""

    match: Match
    priority: int = 0x8000
    duration_sec: int = 0
    idle_timeout: int = 0
    hard_timeout: int = 0
    cookie: int = 0
    packet_count: int = 0
    byte_count: int = 0
    actions: list[Action] = field(default_factory=list)


@dataclass
class FlowStatsReply(Message):
    """Per-flow statistics."""

    entries: list[FlowStatsEntry] = field(default_factory=list)
    xid: int = 0


@dataclass
class AggregateStatsRequest(Message):
    """Ask for table-wide aggregate statistics."""

    match: Match = field(default_factory=Match)
    xid: int = 0


@dataclass
class AggregateStatsReply(Message):
    """Aggregate packet/byte/flow counts."""

    packet_count: int = 0
    byte_count: int = 0
    flow_count: int = 0
    xid: int = 0
