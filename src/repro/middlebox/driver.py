"""The middlebox driver: device state ⇄ the file system (§7.2).

"For a middlebox with fixed functionality, but exposing its state through
a standardized protocol, a driver can be written to populate and interact
with the file system and take immediate advantage of yanc."

One :class:`MiddleboxDriver` can manage several devices.  For each it
mirrors the connection table under ``/net/middleboxes/<name>/state/`` and
keeps the mapping bidirectional:

* device -> tree: new/removed bindings appear/disappear as state entry
  directories; counters sync periodically;
* tree -> device: a state entry created (``cp``), moved in (``mv``), or
  deleted under any managed middlebox is installed into / removed from
  that device — which is exactly how ``mv`` *migrates a live connection*
  between instances.
"""

from __future__ import annotations

from ipaddress import IPv4Address

from repro.middlebox.device import NatEntry, NatMiddlebox
from repro.netpkt.ipv4 import IPPROTO_TCP, IPPROTO_UDP
from repro.proc.process import Process
from repro.sim import Simulator
from repro.vfs.errors import FileExists, FsError
from repro.vfs.notify import EventMask
from repro.vfs.syscalls import Syscalls

_STATE_MASK = (
    EventMask.IN_CREATE
    | EventMask.IN_DELETE
    | EventMask.IN_MOVED_FROM
    | EventMask.IN_MOVED_TO
)
_ENTRY_MASK = EventMask.IN_CLOSE_WRITE

_PROTO_BY_NAME = {"tcp": IPPROTO_TCP, "udp": IPPROTO_UDP}
_NAME_BY_PROTO = {value: key for key, value in _PROTO_BY_NAME.items()}


class MiddleboxDriver(Process):
    """FS <-> device synchronization for stateful middleboxes.

    Runs as a process: the epoll run loop, watch bookkeeping, periodic
    tasks, and crash containment come from
    :class:`~repro.proc.process.Process`; live from construction.
    """

    def __init__(
        self,
        sc: "Syscalls | Process",
        sim: Simulator,
        *,
        root: str = "/net",
        counter_interval: float = 1.0,
    ) -> None:
        super().__init__(sc, sim, name="mbox-driver")
        self.root = root
        self.counter_interval = counter_interval
        self.devices: dict[str, NatMiddlebox] = {}
        self._counter_task = None
        self.migrations_in = 0
        self.migrations_out = 0
        self.start()

    # -- lifecycle ------------------------------------------------------------------

    def attach(self, device: NatMiddlebox) -> str:
        """Start managing ``device``; returns its tree path."""
        base = f"{self.root}/middleboxes"
        if not self.sc.exists(base):
            self.sc.mkdir(base)
        path = f"{base}/{device.name}"
        if not self.sc.exists(path):
            # Maildir publication, same as create_switch: assemble the
            # device directory under a dot-temp and rename it into place,
            # so no observer ever sees a middlebox with blank attributes.
            tmp = f"{base}/.{device.name}"
            self.sc.mkdir(tmp)
            self.sc.write_text(f"{tmp}/type", "nat")
            self.sc.write_text(f"{tmp}/public_ip", str(device.public_ip))
            self.sc.rename(tmp, path)
        else:
            self.sc.write_text(f"{path}/type", "nat")
            self.sc.write_text(f"{path}/public_ip", str(device.public_ip))
        self.devices[device.name] = device
        device.on_state_change = lambda kind, entry, name=device.name: self._on_device_change(name, kind, entry)
        self.watch(f"{path}/state", _STATE_MASK, ("state", device.name))
        for entry in device.entries():
            self._write_entry(device.name, entry)
        if self._counter_task is None and self.counter_interval > 0:
            self._counter_task = self.every(self.counter_interval, self._sync_counters)
        return path

    def stop(self) -> None:
        """Stop managing everything (tree state is left in place)."""
        for device in self.devices.values():
            device.on_state_change = None
        self.devices.clear()
        self._counter_task = None
        super().stop()

    # -- event dispatch ---------------------------------------------------------------

    def on_event(self, ctx: tuple, event) -> None:
        if ctx[0] == "state" and event.name is not None:
            mb_name = ctx[1]
            if event.mask & (EventMask.IN_CREATE | EventMask.IN_MOVED_TO):
                if event.mask & EventMask.IN_MOVED_TO:
                    self.migrations_in += 1
                self.watch(self._entry_path(mb_name, event.name), _ENTRY_MASK, ("entry", mb_name, event.name))
                self._sync_entry_to_device(mb_name, event.name)
            elif event.mask & (EventMask.IN_DELETE | EventMask.IN_MOVED_FROM):
                if event.mask & EventMask.IN_MOVED_FROM:
                    self.migrations_out += 1
                self.unwatch(("entry", mb_name, event.name))
                device = self.devices.get(mb_name)
                if device is not None:
                    device.remove_entry(event.name, notify=False)
        elif ctx[0] == "entry":
            self._sync_entry_to_device(ctx[1], ctx[2])

    # -- paths -----------------------------------------------------------------------

    def _mb_path(self, name: str) -> str:
        return f"{self.root}/middleboxes/{name}"

    def _entry_path(self, name: str, conn_id: str) -> str:
        return f"{self._mb_path(name)}/state/{conn_id}"

    # -- device -> tree --------------------------------------------------------------

    def _on_device_change(self, mb_name: str, kind: str, entry: NatEntry) -> None:
        if kind == "add":
            self._write_entry(mb_name, entry)
        elif kind == "remove":
            path = self._entry_path(mb_name, entry.conn_id)
            if self.sc.exists(path):
                self.sc.rmdir(path)
        # "update" (per-packet counters) is flushed periodically instead.

    def _write_entry(self, mb_name: str, entry: NatEntry) -> None:
        path = self._entry_path(mb_name, entry.conn_id)
        try:
            # Deliberately non-atomic: §7.2 state entries are plain files
            # so `cp`/`mv` can migrate them, and every reader (including
            # _sync_entry_to_device below) guards on the required file set
            # and completes via a later close event — a maildir rename here
            # would miscount the IN_MOVED_TO events used to track
            # migrations.
            self.sc.mkdir(path)  # yanccrash: disable=non-atomic-publish
        except FileExists:
            pass
        self.sc.write_text(f"{path}/proto", _NAME_BY_PROTO.get(entry.proto, str(entry.proto)))
        self.sc.write_text(f"{path}/client_ip", str(entry.client_ip))
        self.sc.write_text(f"{path}/client_port", str(entry.client_port))
        self.sc.write_text(f"{path}/public_port", str(entry.public_port))
        self.sc.write_text(f"{path}/packets", str(entry.packets))

    # -- tree -> device --------------------------------------------------------------

    def _sync_entry_to_device(self, mb_name: str, conn_id: str) -> None:
        device = self.devices.get(mb_name)
        if device is None:
            return
        path = self._entry_path(mb_name, conn_id)
        try:
            files = set(self.sc.listdir(path))
        except FsError:
            return
        required = {"proto", "client_ip", "client_port", "public_port"}
        if not required <= files:
            return  # cp in progress: a later close event completes it
        try:
            proto_text = self.sc.read_text(f"{path}/proto").strip()
            entry = NatEntry(
                proto=_PROTO_BY_NAME.get(proto_text, int(proto_text) if proto_text.isdigit() else 0),
                client_ip=IPv4Address(self.sc.read_text(f"{path}/client_ip").strip()),
                client_port=int(self.sc.read_text(f"{path}/client_port").strip()),
                public_port=int(self.sc.read_text(f"{path}/public_port").strip()),
                last_active=self.sim.now,
            )
        except (FsError, ValueError):
            return
        existing = device.lookup_conn(conn_id)
        if existing is not None and existing.public_port == entry.public_port:
            return  # idempotent: the device already holds this binding
        device.install_entry(entry, notify=False)

    # -- counters ----------------------------------------------------------------------

    def _sync_counters(self) -> None:
        for name, device in self.devices.items():
            base = f"{self._mb_path(name)}/counters"
            try:
                self.sc.write_text(f"{base}/translated", str(device.translated))
                self.sc.write_text(f"{base}/dropped", str(device.dropped))
                self.sc.write_text(f"{base}/connections", str(len(device.entries())))
            except FsError:
                continue
            for entry in device.entries():
                packets_path = f"{self._entry_path(name, entry.conn_id)}/packets"
                try:
                    if self.sc.exists(packets_path):
                        self.sc.write_text(packets_path, str(entry.packets))
                except FsError:
                    continue
