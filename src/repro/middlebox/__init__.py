"""Middleboxes under SDN principles (paper section 7.2).

A stateful NAT device whose connection table is exposed as state-entry
directories in the tree; ``cp`` and ``mv`` on those directories duplicate
and migrate live connections between instances — "we can use command line
utilities such as cp or mv to move state around rather than custom
protocols."
"""

from repro.middlebox.device import NatEntry, NatMiddlebox
from repro.middlebox.driver import MiddleboxDriver

__all__ = ["NatEntry", "NatMiddlebox", "MiddleboxDriver"]
