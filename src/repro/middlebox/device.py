"""A stateful middlebox device: NAT with an explicit connection table.

The §7.2 extension target: "For a middlebox with fixed functionality, but
exposing its state through a standardized protocol, a driver can be
written to populate and interact with the file system ... This interface
can be used to move the state around to elastically expand the middlebox."

The NAT sits inline between an *inside* and an *outside* attachment
point.  Its entire behaviour is a function of an inspectable, injectable
connection table — which is exactly what the driver mirrors into the tree
and what ``mv`` migrates between instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from ipaddress import IPv4Address
from typing import Callable

from repro.dataplane.link import Link
from repro.netpkt.addr import ip
from repro.netpkt.ipv4 import IPPROTO_TCP, IPPROTO_UDP
from repro.netpkt.packet import ParsedFrame, parse_frame
from repro.netpkt.transport import Tcp, Udp
from repro.sim import Simulator


@dataclass
class NatEntry:
    """One NAT binding: (client ip, client port, proto) <-> public port."""

    proto: int
    client_ip: IPv4Address
    client_port: int
    public_port: int
    packets: int = 0
    last_active: float = 0.0

    @property
    def conn_id(self) -> str:
        """The stable identifier used as the state directory name."""
        proto_name = {IPPROTO_TCP: "tcp", IPPROTO_UDP: "udp"}.get(self.proto, str(self.proto))
        return f"{proto_name}-{self.client_ip}-{self.client_port}"


class _Side:
    """One attachment point of the middlebox (a link endpoint)."""

    def __init__(self, box: "NatMiddlebox", name: str) -> None:
        self.box = box
        self.name = name
        self.link: Link | None = None

    @property
    def endpoint_name(self) -> str:
        return f"{self.box.name}:{self.name}"

    def handle_frame(self, raw: bytes) -> None:
        self.box.process(self.name, raw)

    def transmit(self, raw: bytes) -> None:
        if self.link is not None:
            self.link.transmit(self, raw)


class NatMiddlebox:
    """Source NAT between ``inside`` and ``outside``."""

    def __init__(
        self,
        name: str,
        public_ip: IPv4Address | str,
        sim: Simulator,
        *,
        port_range: tuple[int, int] = (20000, 29999),
    ) -> None:
        self.name = name
        self.public_ip = ip(public_ip)
        self.sim = sim
        self.inside = _Side(self, "inside")
        self.outside = _Side(self, "outside")
        self._port_low, self._port_high = port_range
        self._next_port = self._port_low
        #: (proto, client_ip, client_port) -> entry
        self._by_client: dict[tuple[int, IPv4Address, int], NatEntry] = {}
        #: (proto, public_port) -> entry
        self._by_public: dict[tuple[int, int], NatEntry] = {}
        self.translated = 0
        self.dropped = 0
        #: Hook the driver installs: called with ("add"|"update"|"remove", entry).
        self.on_state_change: Callable[[str, NatEntry], None] | None = None

    # -- state table -------------------------------------------------------------

    def entries(self) -> list[NatEntry]:
        """All live bindings."""
        return list(self._by_client.values())

    def lookup_conn(self, conn_id: str) -> NatEntry | None:
        """Find a binding by its connection id."""
        for entry in self._by_client.values():
            if entry.conn_id == conn_id:
                return entry
        return None

    def install_entry(self, entry: NatEntry, *, notify: bool = True) -> None:
        """Insert a binding (the migration entry point).

        A binding arriving from another instance keeps its public port,
        so established connections survive the move.
        """
        client_key = (entry.proto, entry.client_ip, entry.client_port)
        public_key = (entry.proto, entry.public_port)
        self._by_client[client_key] = entry
        self._by_public[public_key] = entry
        self._next_port = max(self._next_port, entry.public_port + 1)
        if notify and self.on_state_change is not None:
            self.on_state_change("add", entry)

    def remove_entry(self, conn_id: str, *, notify: bool = True) -> NatEntry | None:
        """Drop a binding (the other half of migration)."""
        entry = self.lookup_conn(conn_id)
        if entry is None:
            return None
        del self._by_client[(entry.proto, entry.client_ip, entry.client_port)]
        del self._by_public[(entry.proto, entry.public_port)]
        if notify and self.on_state_change is not None:
            self.on_state_change("remove", entry)
        return entry

    def _allocate(self, proto: int, client_ip: IPv4Address, client_port: int) -> NatEntry | None:
        if self._next_port > self._port_high:
            return None
        entry = NatEntry(
            proto=proto,
            client_ip=client_ip,
            client_port=client_port,
            public_port=self._next_port,
            last_active=self.sim.now,
        )
        self._next_port += 1
        self.install_entry(entry, notify=False)
        if self.on_state_change is not None:
            self.on_state_change("add", entry)
        return entry

    # -- the datapath ---------------------------------------------------------------

    def process(self, side: str, raw: bytes) -> None:
        """Translate and forward one frame."""
        try:
            frame = parse_frame(raw)
        except ValueError:
            self.dropped += 1
            return
        if frame.ipv4 is None or not isinstance(frame.inner, (Tcp, Udp)):
            # non-TCP/UDP traffic passes through untranslated
            (self.outside if side == "inside" else self.inside).transmit(raw)
            return
        if side == "inside":
            self._translate_out(frame)
        else:
            self._translate_in(frame)

    def _translate_out(self, frame: ParsedFrame) -> None:
        assert frame.ipv4 is not None
        transport = frame.inner
        assert isinstance(transport, (Tcp, Udp))
        key = (frame.ipv4.proto, frame.ipv4.src, transport.src_port)
        entry = self._by_client.get(key)
        if entry is None:
            entry = self._allocate(*key)
            if entry is None:
                self.dropped += 1
                return
        entry.packets += 1
        entry.last_active = self.sim.now
        if self.on_state_change is not None:
            self.on_state_change("update", entry)
        frame.ipv4.src = self.public_ip
        transport.src_port = entry.public_port
        self.translated += 1
        self.outside.transmit(frame.repack())

    def _translate_in(self, frame: ParsedFrame) -> None:
        assert frame.ipv4 is not None
        transport = frame.inner
        assert isinstance(transport, (Tcp, Udp))
        if frame.ipv4.dst != self.public_ip:
            self.inside.transmit(frame.raw)
            return
        entry = self._by_public.get((frame.ipv4.proto, transport.dst_port))
        if entry is None:
            self.dropped += 1
            return
        entry.packets += 1
        entry.last_active = self.sim.now
        if self.on_state_change is not None:
            self.on_state_change("update", entry)
        frame.ipv4.dst = entry.client_ip
        transport.dst_port = entry.client_port
        self.translated += 1
        self.inside.transmit(frame.repack())
