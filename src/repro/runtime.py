"""Assembly helpers: one call from "nothing" to a running yanc controller.

The pieces (VFS, yancfs, drivers, dataplane, apps) are deliberately
independent; this module wires the common shapes together so examples,
tests, and benchmarks stay short.
"""

from __future__ import annotations

from repro.analysis import race, sanitizer
from repro.dataplane.network import Network
from repro.drivers import OF10_VERSION, OpenFlowDriver
from repro.perf.meter import SyscallMeter
from repro.proc.process import Process, ProcessTable
from repro.sim import Simulator
from repro.vfs.cred import ROOT, Credentials, app_credentials, driver_credentials
from repro.vfs.syscalls import Syscalls
from repro.vfs.vfs import VirtualFileSystem
from repro.yancfs.client import YancClient, mount_yancfs
from repro.yancfs.schema import ACL_COLLAB_DIR, YancFs


class ControllerHost:
    """One controller machine: a VFS with yancfs at /net and procfs at /proc.

    Applications are *processes* on this host: spawn one with
    :meth:`process` and it gets a PID, its own credentials, fd table, and
    syscall meter, a cgroup slot, and a ``/proc/<pid>`` directory — all
    against the shared tree, exactly the multi-process, multi-language
    story of the paper (each process only needs file I/O).

    Least privilege is the default (§5.1): unless the caller passes an
    explicit ``cred``, every spawned process gets distinct non-root
    credentials (a stable per-name uid in the shared ``apps`` group) and a
    private home at ``/net/apps/<name>/`` stamped with a matching ACL.
    """

    def __init__(self, sim: Simulator | None = None, *, name: str = "ctl", mount_point: str = "/net") -> None:
        sanitizer.install_from_env()  # no-op unless YANCSAN=1
        race.install_from_env()  # no-op unless YANCRACE=1
        from repro.analysis.yancsec import monitor as secmon

        secmon.install_from_env()  # no-op unless YANCSEC=1
        self.sim = sim or Simulator()
        self.name = name
        self.vfs = VirtualFileSystem(clock=lambda: self.sim.now)
        self.root_sc = Syscalls(self.vfs, cred=ROOT)
        self.mount_point = mount_point
        self.fs: YancFs = mount_yancfs(self.root_sc, mount_point)
        self.procs = ProcessTable(self.root_sc, self.sim)
        self._anon_apps = 0
        with self.root_sc.meter.pause():  # host assembly, not app traffic
            self.root_sc.makedirs("/proc")
            self.root_sc.mount("/proc", self.procs.procfs, source="proc")
            # Standard writable spools, like an OS image would ship: apps
            # and drivers log/spool here without ambient root authority.
            for spool in ("/var", "/var/log", "/var/run", "/tmp"):
                self.root_sc.makedirs(spool)
                self.root_sc.set_acl(spool, ACL_COLLAB_DIR)
        # Fan out to every installed monitor, not just the env-driven one:
        # the CLI's --monitor pass installs its own observer.
        secmon.register_root(mount_point)

    def process(
        self,
        *,
        cred: Credentials | None = None,
        meter: SyscallMeter | None = None,
        name: str = "",
        role: str = "app",
    ) -> Process:
        """Spawn an application process on this host (PID assigned).

        Without an explicit ``cred`` the process runs under per-name
        non-root credentials; passing ``cred=ROOT`` marks an *admin*
        process (the reference monitor holds apps, not admins, to the
        no-uid-0 rule).
        """
        if cred is None:
            if not name:
                self._anon_apps += 1
                principal = f"{role}{self._anon_apps}"
            else:
                principal = name
            cred = driver_credentials(principal) if role == "driver" else app_credentials(principal)
            self._ensure_home(principal, cred)
        elif cred.is_root:
            role = "admin"
        proc = self.procs.spawn(cred=cred, meter=meter, name=name)
        proc.sc.role = role
        return proc

    def _ensure_home(self, principal: str, cred: Credentials) -> None:
        """Create ``/net/apps/<principal>/`` owned by the app's uid."""
        home = f"{self.mount_point}/apps/{principal}"
        with self.root_sc.meter.pause():
            if not self.root_sc.exists(home):
                self.root_sc.makedirs(home)
                self.root_sc.chown(home, cred.uid, cred.gid)

    def client(self, *, cred: Credentials | None = None, meter: SyscallMeter | None = None, name: str = "") -> YancClient:
        """Spawn a process and wrap it in a :class:`YancClient`."""
        return YancClient(self.process(cred=cred, meter=meter, name=name), self.mount_point)


class YancController:
    """A controller host plus drivers plus an attached dataplane."""

    def __init__(self, network: Network | None = None, *, sim: Simulator | None = None) -> None:
        self.sim = sim or (network.sim if network is not None else Simulator())
        self.net = network if network is not None else Network(self.sim)
        if network is not None and network.sim is not self.sim:
            raise ValueError("network and controller must share one simulator")
        self.host = ControllerHost(self.sim)
        self.drivers: list[OpenFlowDriver] = []

    def add_driver(self, *, version: int = OF10_VERSION, stats_interval: float = 1.0) -> OpenFlowDriver:
        """Start a driver process for one protocol version."""
        driver = OpenFlowDriver(
            self.host.process(name=f"of{version}d", role="driver"),
            self.sim,
            version=version,
            stats_interval=stats_interval,
        )
        self.drivers.append(driver)
        return driver

    def attach_all(self, driver: OpenFlowDriver | None = None) -> None:
        """Attach every dataplane switch to a driver (default: first)."""
        if driver is None:
            driver = self.drivers[0] if self.drivers else self.add_driver()
        for switch in self.net.switches.values():
            driver.attach_switch(switch)

    def start(self, *, settle: float = 0.05) -> "YancController":
        """Attach everything, start flow expiry, and let sessions settle."""
        if not self.drivers:
            self.add_driver()
        self.attach_all(self.drivers[0])
        for switch in self.net.switches.values():
            switch.start_expiry()
        self.sim.run_for(settle)
        return self

    def run(self, duration: float = 1.0) -> int:
        """Advance simulated time."""
        return self.sim.run_for(duration)

    def client(self, *, cred: Credentials | None = None, meter: SyscallMeter | None = None, name: str = "") -> YancClient:
        """An application-side client on the controller host."""
        return self.host.client(cred=cred, meter=meter, name=name)

    def fs_name_of(self, switch_name: str) -> str:
        """The FS directory name a dataplane switch appears under.

        Drivers only learn the dpid from the wire, so they name
        directories ``sw<dpid>`` (admins are free to rename them later,
        §3.2).
        """
        return f"sw{self.net.switches[switch_name].dpid}"

    def expected_topology(self) -> dict[tuple[str, int], tuple[str, int]]:
        """Ground-truth adjacency translated into FS switch names."""
        out = {}
        for (a, pa), (b, pb) in self.net.switch_port_peers().items():
            out[(self.fs_name_of(a), pa)] = (self.fs_name_of(b), pb)
        return out
