"""A network-wide firewall application.

Deny rules compile to high-priority drop flows (an empty action list) on
every switch; the app watches ``switches/`` so a switch that joins later
gets the same policy.  Rules live in a text config file on the root file
system — "likely with their own configuration files" (paper section 2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dataplane.match import Match
from repro.vfs.errors import FileExists, FsError
from repro.vfs.notify import EventMask
from repro.apps.base import YancApp
from repro.apps.flowpusher import parse_spec

#: Deny flows sit just under the LLDP punt priority.
DENY_PRIORITY = 0xFFF0

_DIR_MASK = EventMask.IN_CREATE | EventMask.IN_MOVED_TO


@dataclass(frozen=True)
class FirewallRule:
    """One deny rule: a name and a match."""

    name: str
    match: Match


class Firewall(YancApp):
    """Install deny-by-match drop flows fleet-wide."""

    app_name = "firewall"

    def __init__(self, sc, sim, *, root: str = "/net", config_path: str = "") -> None:
        super().__init__(sc, sim, root=root)
        self.config_path = config_path
        self.rules: list[FirewallRule] = []
        self.flows_installed = 0

    def on_start(self) -> None:
        if self.config_path:
            self.load_config(self.config_path)
        self.watch(f"{self.yc.root}/switches", _DIR_MASK, ("switches",))
        for switch in self._switches():
            self._apply_to(switch)

    def on_event(self, ctx, event) -> None:
        if ctx[0] == "switches" and event.name and event.mask & _DIR_MASK:
            self._apply_to(event.name)

    # -- rules ---------------------------------------------------------------------

    def add_rule(self, name: str, match: Match) -> None:
        """Add a deny rule and push it everywhere immediately."""
        rule = FirewallRule(name=name, match=match)
        self.rules.append(rule)
        if self.running:
            for switch in self._switches():
                self._install(switch, rule)

    def remove_rule(self, name: str) -> None:
        """Remove a rule and its flows from every switch."""
        self.rules = [rule for rule in self.rules if rule.name != name]
        for switch in self._switches():
            try:
                self.yc.delete_flow(switch, f"fw-{name}")
            except FsError:
                continue

    def load_config(self, path: str) -> int:
        """Parse a config file: blocks separated by ``[name]`` headers.

        Each block holds ``match.<field> = value`` lines (flow-spec
        syntax).  Returns the number of rules loaded.
        """
        text = self.sc.read_text(path)
        current_name = ""
        current_lines: list[str] = []
        blocks: list[tuple[str, str]] = []
        for line in text.splitlines():
            stripped = line.strip()
            if stripped.startswith("[") and stripped.endswith("]"):
                if current_name:
                    blocks.append((current_name, "\n".join(current_lines)))
                current_name = stripped[1:-1].strip()
                current_lines = []
            else:
                current_lines.append(line)
        if current_name:
            blocks.append((current_name, "\n".join(current_lines)))
        for name, body in blocks:
            files = parse_spec(body)
            self.rules.append(FirewallRule(name=name, match=Match.from_files(files)))
        return len(blocks)

    # -- application ----------------------------------------------------------------

    def _switches(self) -> list[str]:
        try:
            return self.yc.switches()
        except FsError:
            return []

    def _apply_to(self, switch: str) -> None:
        for rule in self.rules:
            self._install(switch, rule)

    def _install(self, switch: str, rule: FirewallRule) -> None:
        try:
            self.yc.create_flow(switch, f"fw-{rule.name}", rule.match, [], priority=DENY_PRIORITY)
            self.flows_installed += 1
        except (FileExists, FsError):
            pass
