"""Network applications: separate processes on file I/O (paper section 2).

Each module is one logically distinct task, deliberately independent of
the others — they cooperate only through the tree:

* :class:`TopologyDaemon` — LLDP discovery -> ``peer`` symlinks (§4.3).
* :class:`RouterDaemon` — reactive exact-match shortest paths (§8).
* :class:`StaticFlowPusher` — the "shell script" flow pusher (§8).
* :class:`LearningSwitchApp` — classic per-switch L2 learning.
* :class:`ArpResponder` / :class:`DhcpServer` — per-protocol daemons (§2).
* :class:`Firewall` — fleet-wide deny rules as drop flows.
* :class:`LoadBalancer` — VIP round-robin with rewrite flows.
* :class:`AccountingDaemon` — periodic counter sampling to a log (§2).
* :func:`run_audit` — the cron-style one-shot auditor (§2).
"""

from repro.apps.accounting import AccountingDaemon
from repro.apps.arp import ArpResponder
from repro.apps.auditor import AuditReport, run_audit
from repro.apps.base import PacketInApp, YancApp
from repro.apps.dhcp import DhcpServer, make_discover
from repro.apps.firewall import Firewall, FirewallRule
from repro.apps.flowpusher import StaticFlowPusher, parse_spec
from repro.apps.learning import LearningSwitchApp
from repro.apps.loadbalancer import Backend, LoadBalancer
from repro.apps.router import RouterDaemon
from repro.apps.topology import TopologyDaemon, read_topology

__all__ = [
    "AccountingDaemon",
    "ArpResponder",
    "AuditReport",
    "run_audit",
    "PacketInApp",
    "YancApp",
    "DhcpServer",
    "make_discover",
    "Firewall",
    "FirewallRule",
    "StaticFlowPusher",
    "parse_spec",
    "LearningSwitchApp",
    "Backend",
    "LoadBalancer",
    "RouterDaemon",
    "TopologyDaemon",
    "read_topology",
]
