"""The application base class: a process that lives on file I/O.

Every yanc application is an ordinary process (paper section 2): it gets a
:class:`~repro.vfs.Syscalls` context, watches parts of the tree with
inotify, and reacts.  :class:`YancApp` provides the event-loop plumbing —
watch bookkeeping, simulator-scheduled wakeups, periodic tasks — and
:class:`PacketInApp` adds the common pattern of subscribing a private
packet-in buffer on every switch (including ones that appear later).
"""

from __future__ import annotations

from typing import Callable

from repro.sim import Simulator
from repro.vfs.errors import FileNotFound, FsError
from repro.vfs.notify import EventMask, NotifyEvent
from repro.vfs.syscalls import Syscalls
from repro.yancfs.client import PacketInEvent, YancClient

_DIR_MASK = EventMask.IN_CREATE | EventMask.IN_DELETE | EventMask.IN_MOVED_FROM | EventMask.IN_MOVED_TO


class YancApp:
    """Event-driven application skeleton."""

    #: Override: the application's name (used for event buffers, logs).
    app_name = "app"

    def __init__(self, sc: Syscalls, sim: Simulator, *, root: str = "/net", name: str = "") -> None:
        if name:
            self.app_name = name
        self.sc = sc
        self.sim = sim
        self.yc = YancClient(sc, root)
        self.ino = sc.inotify_init()
        self.ino.wakeup = self._schedule_wake
        self._watch_ctx: dict[int, tuple] = {}
        self._wake_pending = False
        self._tasks = []
        self.running = False

    # -- lifecycle -----------------------------------------------------------------

    def start(self) -> "YancApp":
        """Begin watching/processing.  Subclasses extend via on_start()."""
        self.running = True
        self.on_start()
        return self

    def stop(self) -> None:
        """Stop all periodic work and drop every watch."""
        self.running = False
        for task in self._tasks:
            task.stop()
        self._tasks.clear()
        self.ino.close()
        self._watch_ctx.clear()
        self.on_stop()

    def on_start(self) -> None:
        """Subclass hook: set up watches and tasks."""

    def on_stop(self) -> None:
        """Subclass hook: final cleanup."""

    # -- plumbing -------------------------------------------------------------------

    def every(self, interval: float, fn: Callable[[], None], *, start_delay: float | None = None) -> None:
        """Run ``fn`` periodically until the app stops."""
        self._tasks.append(self.sim.every(interval, fn, start_delay=start_delay))

    def watch(self, path: str, mask: EventMask, ctx: tuple) -> bool:
        """Watch ``path``; True on success (False when it vanished)."""
        try:
            wd = self.sc.inotify_add_watch(self.ino, path, mask)
        except (FileNotFound, FsError):
            return False
        self._watch_ctx[wd] = ctx
        return True

    def _schedule_wake(self) -> None:
        if self._wake_pending or not self.running:
            return
        self._wake_pending = True
        self.sim.schedule(1e-5, self._drain)

    def _drain(self) -> None:
        self._wake_pending = False
        if not self.running:
            return
        for event in self.sc.inotify_read(self.ino):
            ctx = self._watch_ctx.get(event.wd)
            if ctx is None:
                continue
            try:
                self.on_event(ctx, event)
            except FsError:
                continue  # tree changed under us; later events resolve it

    def on_event(self, ctx: tuple, event: NotifyEvent) -> None:
        """Subclass hook: handle one inotify event."""


class PacketInApp(YancApp):
    """An app that consumes packet-ins from every switch (§3.5).

    On start it subscribes a private event buffer named after the app on
    each existing switch, watches ``switches/`` so later arrivals are
    subscribed too, and calls :meth:`handle_packet_in` for every event.
    """

    def on_start(self) -> None:
        self.watch(f"{self.yc.root}/switches", _DIR_MASK, ("switches",))
        for switch in self._safe_switches():
            self._subscribe(switch)

    def _safe_switches(self) -> list[str]:
        try:
            return self.yc.switches()
        except FsError:
            return []

    def _subscribe(self, switch: str) -> None:
        try:
            buffer_path = self.yc.subscribe_events(switch, self.app_name)
        except FsError:
            return
        self.watch(buffer_path, EventMask.IN_CREATE, ("buffer", switch))
        self.on_switch_added(switch)

    def on_event(self, ctx: tuple, event: NotifyEvent) -> None:
        kind = ctx[0]
        if kind == "switches":
            if event.mask & (EventMask.IN_CREATE | EventMask.IN_MOVED_TO) and event.name:
                self._subscribe(event.name)
            elif event.mask & (EventMask.IN_DELETE | EventMask.IN_MOVED_FROM) and event.name:
                self.on_switch_removed(event.name)
        elif kind == "buffer":
            switch = ctx[1]
            for pkt in self.yc.read_events(switch, self.app_name):
                self.handle_packet_in(pkt)
        else:
            self.on_other_event(ctx, event)

    # -- subclass hooks -----------------------------------------------------------------

    def handle_packet_in(self, event: PacketInEvent) -> None:
        """Subclass hook: one packet-in message."""

    def on_switch_added(self, switch: str) -> None:
        """Subclass hook: a switch appeared (buffer already subscribed)."""

    def on_switch_removed(self, switch: str) -> None:
        """Subclass hook: a switch directory went away."""

    def on_other_event(self, ctx: tuple, event: NotifyEvent) -> None:
        """Subclass hook: events from watches the subclass added."""
