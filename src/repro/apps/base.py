"""The application base class: a process that lives on file I/O.

Every yanc application is an ordinary process (paper section 2): it gets a
:class:`~repro.vfs.Syscalls` context, watches parts of the tree with
inotify, and reacts.  :class:`YancApp` is a thin skin over
:class:`~repro.proc.process.Process` — the run loop, epoll-batched
wakeups, watch bookkeeping, periodic tasks, and crash containment all
live there — adding only the yanc-specific client.  :class:`PacketInApp`
adds the common pattern of subscribing a private packet-in buffer on
every switch (including ones that appear later).
"""

from __future__ import annotations

from repro.proc.process import Process
from repro.sim import Simulator
from repro.vfs.errors import FsError
from repro.vfs.notify import EventMask, NotifyEvent
from repro.vfs.syscalls import Syscalls
from repro.yancfs.client import PacketInEvent, YancClient

_DIR_MASK = EventMask.IN_CREATE | EventMask.IN_DELETE | EventMask.IN_MOVED_FROM | EventMask.IN_MOVED_TO


class YancApp(Process):
    """Event-driven application skeleton (a supervised-capable process)."""

    #: Override: the application's name (used for event buffers, logs).
    app_name = "app"

    def __init__(self, sc: "Syscalls | Process", sim: Simulator, *, root: str = "/net", name: str = "") -> None:
        if name:
            self.app_name = name
        super().__init__(sc, sim, name=self.app_name)
        self.yc = YancClient(self.sc, root)


class PacketInApp(YancApp):
    """An app that consumes packet-ins from every switch (§3.5).

    On start it subscribes a private event buffer named after the app on
    each existing switch, watches ``switches/`` so later arrivals are
    subscribed too, and calls :meth:`handle_packet_in` for every event.
    """

    def on_start(self) -> None:
        self.watch(f"{self.yc.root}/switches", _DIR_MASK, ("switches",))
        for switch in self._safe_switches():
            self._subscribe(switch)

    def _safe_switches(self) -> list[str]:
        try:
            return self.yc.switches()
        except FsError:
            return []

    def _subscribe(self, switch: str) -> None:
        try:
            buffer_path = self.yc.subscribe_events(switch, self.app_name)
        except FsError:
            return
        # IN_MOVED_TO is the publication edge: events are assembled under
        # a dot-temp name and renamed into place (maildir).  IN_CREATE is
        # kept for directly-created events (tests, foreign drivers).
        self.watch(buffer_path, EventMask.IN_CREATE | EventMask.IN_MOVED_TO, ("buffer", switch))
        self.on_switch_added(switch)

    def on_event(self, ctx: tuple, event: NotifyEvent) -> None:
        kind = ctx[0]
        if kind == "switches":
            if event.mask & (EventMask.IN_CREATE | EventMask.IN_MOVED_TO) and event.name:
                self._subscribe(event.name)
            elif event.mask & (EventMask.IN_DELETE | EventMask.IN_MOVED_FROM) and event.name:
                # Drop the buffer watch with the switch, or the stale wd
                # (and its context entry) would leak for the app's lifetime.
                self.unwatch(("buffer", event.name))
                self.on_switch_removed(event.name)
        elif kind == "buffer":
            switch = ctx[1]
            for pkt in self.yc.read_events(switch, self.app_name):
                self.handle_packet_in(pkt)
        else:
            self.on_other_event(ctx, event)

    # -- subclass hooks -----------------------------------------------------------------

    def handle_packet_in(self, event: PacketInEvent) -> None:
        """Subclass hook: one packet-in message."""

    def on_switch_added(self, switch: str) -> None:
        """Subclass hook: a switch appeared (buffer already subscribed)."""

    def on_switch_removed(self, switch: str) -> None:
        """Subclass hook: a switch directory went away."""

    def on_other_event(self, ctx: tuple, event: NotifyEvent) -> None:
        """Subclass hook: events from watches the subclass added."""
