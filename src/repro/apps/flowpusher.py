"""The static flow pusher (paper section 8).

The paper demonstrates yanc with "a simple 'static flow pusher' shell
script" — flows are just files, so pushing one is a handful of ``echo``
commands.  This module is that script in library form: it parses a tiny
line-oriented spec (the same ``file=value`` pairs the tree stores) and
writes it through the ordinary file API.  A text spec like::

    # punt everything to the controller
    match.dl_type = 0x0800
    match.nw_dst  = 10.0.0.0/24
    action.out    = 2
    priority      = 100
    timeout       = 30

becomes one committed flow directory.
"""

from __future__ import annotations

from repro.vfs.syscalls import Syscalls
from repro.yancfs.client import YancClient


def parse_spec(text: str) -> dict[str, str]:
    """Parse ``name = value`` lines ('#' comments, blanks ignored)."""
    files: dict[str, str] = {}
    for line_no, line in enumerate(text.splitlines(), start=1):
        line = line.split("#", 1)[0].strip()
        if not line:
            continue
        if "=" not in line:
            raise ValueError(f"line {line_no}: expected 'name = value', got {line!r}")
        name, _, value = line.partition("=")
        files[name.strip()] = value.strip()
    return files


class StaticFlowPusher:
    """Push flow specs into the tree through plain file writes."""

    def __init__(self, sc: Syscalls, *, root: str = "/net") -> None:
        self.yc = YancClient(sc, root)
        self.sc = sc
        self.pushed = 0

    def push(self, switch: str, name: str, spec: str | dict[str, str], *, commit: bool = True) -> str:
        """Write one flow spec to ``switch`` as flow ``name``."""
        files = parse_spec(spec) if isinstance(spec, str) else dict(spec)
        path = self.yc.flow_path(switch, name)
        if not self.sc.exists(path):
            self.sc.mkdir(path)
        for filename, content in files.items():
            self.sc.write_text(f"{path}/{filename}", content)
        if commit:
            self.yc.commit_flow(switch, name)
        self.pushed += 1
        return path

    def push_everywhere(self, name: str, spec: str | dict[str, str]) -> int:
        """Push the same spec to every switch; returns how many."""
        switches = self.yc.switches()
        for switch in switches:
            self.push(switch, name, spec)
        return len(switches)

    def push_from_file(self, switch: str, name: str, spec_path: str) -> str:
        """Read a spec file from the file system and push it."""
        return self.push(switch, name, self.sc.read_text(spec_path))
