"""A layer-4 load balancer application.

A virtual IP fronts a pool of backends; the first packet of each client
flow punts to the controller, which picks a backend round-robin and
installs a pair of rewrite flows (VIP -> backend on the forward path,
backend -> VIP on the reverse path).  This is the "load balancing" class
of value-added application the paper's conclusion says yanc should free
researchers to focus on.
"""

from __future__ import annotations

from dataclasses import dataclass
from ipaddress import IPv4Address, IPv4Network

from repro.dataplane.actions import Output, SetDlDst, SetNwDst, SetNwSrc
from repro.dataplane.match import Match
from repro.netpkt.addr import MacAddress
from repro.netpkt.ethernet import ETH_TYPE_IPV4
from repro.netpkt.packet import parse_frame
from repro.vfs.errors import FileExists, FsError
from repro.yancfs.client import PacketInEvent
from repro.apps.base import PacketInApp

NO_BUFFER = 0xFFFFFFFF


@dataclass(frozen=True)
class Backend:
    """One real server behind the VIP."""

    ip: IPv4Address
    mac: MacAddress
    switch: str
    port: int


class LoadBalancer(PacketInApp):
    """Round-robin VIP load balancing with flow-level stickiness."""

    app_name = "lb"

    def __init__(self, sc, sim, *, vip: str, root: str = "/net", flow_idle_timeout: float = 30.0) -> None:
        super().__init__(sc, sim, root=root)
        self.vip = IPv4Address(vip)
        self.flow_idle_timeout = flow_idle_timeout
        self.backends: list[Backend] = []
        self._next_backend = 0
        #: client ip -> backend, for stickiness across flows.
        self.assignments: dict[IPv4Address, Backend] = {}
        self.connections_balanced = 0

    def add_backend(self, ip: str, mac: str, switch: str, port: int) -> None:
        """Register a backend server and where it attaches."""
        self.backends.append(Backend(ip=IPv4Address(ip), mac=MacAddress(mac), switch=switch, port=port))

    def _pick(self, client_ip: IPv4Address) -> Backend | None:
        if not self.backends:
            return None
        assigned = self.assignments.get(client_ip)
        if assigned is not None and assigned in self.backends:
            return assigned
        backend = self.backends[self._next_backend % len(self.backends)]
        self._next_backend += 1
        self.assignments[client_ip] = backend
        return backend

    def handle_packet_in(self, event: PacketInEvent) -> None:
        try:
            frame = parse_frame(event.data)
        except ValueError:
            return
        if frame.ipv4 is None or frame.ipv4.dst != self.vip:
            return
        backend = self._pick(frame.ipv4.src)
        if backend is None:
            return
        if backend.switch != event.switch:
            return  # only balance at the backend's own switch in this app
        client_ip = frame.ipv4.src
        tag = f"{client_ip}".replace(".", "-")
        try:
            # Forward: client -> VIP rewritten to the chosen backend.
            self.yc.create_flow(
                event.switch,
                f"lb-fwd-{tag}",
                Match(dl_type=ETH_TYPE_IPV4, nw_src=IPv4Network(f"{client_ip}/32"), nw_dst=IPv4Network(f"{self.vip}/32")),
                [SetNwDst(backend.ip), SetDlDst(backend.mac), Output(backend.port)],
                idle_timeout=self.flow_idle_timeout,
            )
            # Reverse: backend -> client rewritten back to the VIP.
            self.yc.create_flow(
                event.switch,
                f"lb-rev-{tag}",
                Match(dl_type=ETH_TYPE_IPV4, nw_src=IPv4Network(f"{backend.ip}/32"), nw_dst=IPv4Network(f"{client_ip}/32")),
                [SetNwSrc(self.vip), Output(event.in_port)],
                idle_timeout=self.flow_idle_timeout,
            )
        except (FileExists, FsError):
            pass
        self.connections_balanced += 1
        # Release the trigger packet through the rewrite.
        actions_path = [backend.port]
        if event.buffer_id != NO_BUFFER:
            # Buffered release cannot rewrite via the spool; resend payload.
            pass
        frame.ipv4.dst = backend.ip
        frame.eth.dst = backend.mac
        try:
            self.yc.packet_out(event.switch, actions_path, frame.repack(), tag=self.app_name)
        except FsError:
            pass
