"""The topology daemon (paper sections 4.3 and 8).

Sends LLDP beacons out every port of every switch, listens for them
arriving on neighbouring switches, and records each discovered adjacency
as the ``peer`` symbolic link of both ports — "yanc leverages symbolic
links ... rather than parsing some topology information file".  Stale
links (no beacon within ``link_ttl``) are pruned, so a cut cable
eventually disappears from the tree.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dataplane.actions import TO_CONTROLLER, Output
from repro.dataplane.match import Match
from repro.netpkt.addr import MacAddress
from repro.netpkt.ethernet import ETH_TYPE_LLDP, Ethernet
from repro.netpkt.lldp import LLDP_MULTICAST_MAC, Lldp
from repro.netpkt.packet import build_frame, parse_frame
from repro.vfs.errors import FsError
from repro.yancfs.client import PacketInEvent
from repro.apps.base import PacketInApp

#: Priority of the LLDP punt flow (must beat any forwarding entry).
LLDP_FLOW_PRIORITY = 0xFFFF


@dataclass
class DiscoveredLink:
    """One directed adjacency with its freshness timestamp."""

    src: tuple[str, int]
    dst: tuple[str, int]
    last_seen: float


class TopologyDaemon(PacketInApp):
    """LLDP discovery -> peer symlinks."""

    app_name = "topod"

    def __init__(self, sc, sim, *, root: str = "/net", beacon_interval: float = 0.5, link_ttl: float = 2.0) -> None:
        super().__init__(sc, sim, root=root)
        self.beacon_interval = beacon_interval
        self.link_ttl = link_ttl
        self.links: dict[tuple[str, int], DiscoveredLink] = {}
        self.beacons_sent = 0
        self.beacons_received = 0

    def on_start(self) -> None:
        super().on_start()
        self.every(self.beacon_interval, self.send_beacons, start_delay=0.0)
        self.every(self.link_ttl, self.prune_stale)

    def on_switch_added(self, switch: str) -> None:
        # Make sure LLDP always reaches us, whatever else is installed.
        try:
            self.yc.create_flow(
                switch,
                "lldp_punt",
                Match(dl_type=ETH_TYPE_LLDP),
                [Output(TO_CONTROLLER)],
                priority=LLDP_FLOW_PRIORITY,
            )
        except FsError:
            pass  # already present (e.g. daemon restart)

    # -- beaconing ---------------------------------------------------------------------

    def send_beacons(self) -> None:
        """One LLDP frame out of every known port of every switch."""
        for switch in self._safe_switches():
            try:
                ports = self.yc.ports(switch)
            except FsError:
                continue
            for port_name in ports:
                port_no = _port_no(port_name)
                if port_no is None:
                    continue
                frame = self._beacon(switch, port_no)
                try:
                    self.yc.packet_out(switch, [port_no], frame, tag=self.app_name)
                    self.beacons_sent += 1
                except FsError:
                    continue

    @staticmethod
    def _beacon(switch: str, port_no: int) -> bytes:
        lldp = Lldp(chassis_id=switch, port_id=str(port_no))
        eth = Ethernet(dst=LLDP_MULTICAST_MAC, src=MacAddress(0x02_00_5E_00_00_01), eth_type=ETH_TYPE_LLDP)
        return build_frame(eth, lldp)

    # -- learning -----------------------------------------------------------------------

    def handle_packet_in(self, event: PacketInEvent) -> None:
        try:
            frame = parse_frame(event.data)
        except ValueError:
            return
        if not isinstance(frame.inner, Lldp):
            return
        self.beacons_received += 1
        src = (frame.inner.chassis_id, int(frame.inner.port_id))
        dst = (event.switch, event.in_port)
        self._record(src, dst)
        self._record(dst, src)

    def _record(self, src: tuple[str, int], dst: tuple[str, int]) -> None:
        known = self.links.get(src)
        self.links[src] = DiscoveredLink(src=src, dst=dst, last_seen=self.sim.now)
        if known is not None and known.dst == dst:
            return
        try:
            self.yc.set_peer(src[0], src[1], dst[0], dst[1])
        except FsError:
            self.links.pop(src, None)

    def prune_stale(self) -> None:
        """Drop links that stopped beaconing (cable cut, port down)."""
        deadline = self.sim.now - self.link_ttl
        for src, link in list(self.links.items()):
            if link.last_seen >= deadline:
                continue
            del self.links[src]
            try:
                # EAFP: unlink resolves once; a missing link is already pruned.
                self.sc.unlink(f"{self.yc.port_path(src[0], src[1])}/peer")
            except FsError:
                continue

    # -- queries -------------------------------------------------------------------------

    def adjacency(self) -> dict[tuple[str, int], tuple[str, int]]:
        """The live adjacency map: (switch, port) -> (switch, port)."""
        return {src: link.dst for src, link in self.links.items()}


def _port_no(port_name: str) -> int | None:
    try:
        return int(port_name.rsplit("_", 1)[-1])
    except ValueError:
        return None


def read_topology(yc) -> dict[tuple[str, int], tuple[str, int]]:
    """Read the adjacency map straight from the peer symlinks.

    Any application can reconstruct the topology from the tree alone —
    this helper is what the router daemon uses.
    """
    adjacency: dict[tuple[str, int], tuple[str, int]] = {}
    for switch in yc.switches():
        for port_name in yc.ports(switch):
            port_no = _port_no(port_name)
            if port_no is None:
                continue
            target = yc.peer_of(switch, port_name)
            if target is None:
                continue
            parts = target.rstrip("/").split("/")
            # .../switches/<sw>/ports/port_<n>
            try:
                peer_switch = parts[-3]
                peer_port = _port_no(parts[-1])
            except IndexError:
                continue
            if peer_port is not None:
                adjacency[(switch, port_no)] = (peer_switch, peer_port)
    return adjacency
