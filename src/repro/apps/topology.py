"""The topology daemon (paper sections 4.3 and 8).

Sends LLDP beacons out every port of every switch, listens for them
arriving on neighbouring switches, and records each discovered adjacency
as the ``peer`` symbolic link of both ports — "yanc leverages symbolic
links ... rather than parsing some topology information file".  Stale
links (no beacon within ``link_ttl``) are pruned, so a cut cable
eventually disappears from the tree.

Alongside the symlinks the daemon publishes an *incremental delta
stream*: one small file per link add/remove, written maildir-style
(assembled under a dot-temp name, renamed into place) so watchers only
ever see complete deltas.  Consumers like the router daemon apply deltas
to a locally cached adjacency instead of re-walking every ``peer``
symlink in the tree — at fat-tree scale the full walk is thousands of
syscalls per refresh, the delta is one file read per change.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.dataplane.actions import TO_CONTROLLER, Output
from repro.dataplane.match import Match
from repro.netpkt.addr import MacAddress
from repro.netpkt.ethernet import ETH_TYPE_LLDP, Ethernet
from repro.netpkt.lldp import LLDP_MULTICAST_MAC, Lldp
from repro.netpkt.packet import build_frame, parse_frame
from repro.vfs.errors import FsError
from repro.vfs.notify import EventMask
from repro.yancfs.client import PacketInEvent, YancClient
from repro.yancfs.recovery import sweep_staging
from repro.apps.base import PacketInApp

#: Priority of the LLDP punt flow (must beat any forwarding entry).
LLDP_FLOW_PRIORITY = 0xFFFF

#: Where the incremental link add/remove delta files are published.
DEFAULT_DELTAS_PATH = "/var/run/topology"

#: Staged dot-temps under the delta spool are recovered at daemon start
#: (a publisher that crashed between write and rename leaks its temp).
YANCCRASH_RECOVERS = (DEFAULT_DELTAS_PATH,)

#: Delta files each publisher keeps before unlinking its oldest.
DELTA_BACKLOG = 256

_PORTS_MASK = EventMask.IN_CREATE | EventMask.IN_DELETE | EventMask.IN_MOVED_FROM | EventMask.IN_MOVED_TO


@dataclass
class DiscoveredLink:
    """One directed adjacency with its freshness timestamp."""

    src: tuple[str, int]
    dst: tuple[str, int]
    last_seen: float


@dataclass(frozen=True)
class TopologyDelta:
    """One parsed entry of the incremental delta stream."""

    kind: str  # "add" | "remove"
    src: tuple[str, int]
    dst: tuple[str, int] | None  # None for removes


def format_delta(delta: TopologyDelta) -> str:
    """Render a delta as its one-line file content."""
    if delta.kind == "add":
        assert delta.dst is not None
        return f"add {delta.src[0]} {delta.src[1]} {delta.dst[0]} {delta.dst[1]}\n"
    return f"remove {delta.src[0]} {delta.src[1]}\n"


def parse_delta(text: str) -> TopologyDelta | None:
    """Parse one delta file's content; None for malformed lines."""
    parts = text.split()
    try:
        if len(parts) == 5 and parts[0] == "add":
            return TopologyDelta("add", (parts[1], int(parts[2])), (parts[3], int(parts[4])))
        if len(parts) == 3 and parts[0] == "remove":
            return TopologyDelta("remove", (parts[1], int(parts[2])), None)
    except ValueError:
        return None
    return None


class PortCache:
    """Lazily cached port numbers per switch, invalidated by inotify.

    The beacon and flood loops used to ``listdir`` every switch's ports
    directory on every pass; port sets change only when the driver adds
    or removes a port directory, so one watch per switch replaces the
    per-round scan.
    """

    def __init__(self, yc: YancClient) -> None:
        self.yc = yc
        self._ports: dict[str, list[int]] = {}

    def ports(self, switch: str) -> list[int]:
        """The switch's port numbers (one listdir on first use)."""
        cached = self._ports.get(switch)
        if cached is None:
            try:
                names = self.yc.ports(switch)
            except FsError:
                return []
            cached = sorted(p for p in (_port_no(n) for n in names) if p is not None)
            self._ports[switch] = cached
        return cached

    def invalidate(self, switch: str) -> None:
        """Force a re-read on next use (a port appeared or vanished)."""
        self._ports.pop(switch, None)


class TopologyDaemon(PacketInApp):
    """LLDP discovery -> peer symlinks + incremental delta stream."""

    app_name = "topod"

    def __init__(
        self,
        sc,
        sim,
        *,
        root: str = "/net",
        beacon_interval: float = 0.5,
        link_ttl: float = 2.0,
        deltas_path: str = DEFAULT_DELTAS_PATH,
    ) -> None:
        super().__init__(sc, sim, root=root)
        self.beacon_interval = beacon_interval
        self.link_ttl = link_ttl
        self.deltas_path = deltas_path
        self.links: dict[tuple[str, int], DiscoveredLink] = {}
        self.beacons_sent = 0
        self.beacons_received = 0
        self.deltas_published = 0
        self.port_cache = PortCache(self.yc)
        self._delta_seq = 0
        self._backlog: deque[str] = deque()

    def on_start(self) -> None:
        if not self.sc.exists(self.deltas_path):
            self.sc.makedirs(self.deltas_path)
        # Recovery: a predecessor that crashed between the dot-temp write
        # and the rename left a temp no consumer will ever read; sweep it
        # before publishing anything new.
        sweep_staging(self.sc, self.deltas_path)
        super().on_start()
        self.every(self.beacon_interval, self.send_beacons, start_delay=0.0)
        self.every(self.link_ttl, self.prune_stale)

    def on_switch_added(self, switch: str) -> None:
        self.watch(f"{self.yc.switch_path(switch)}/ports", _PORTS_MASK, ("ports", switch))
        # Make sure LLDP always reaches us, whatever else is installed.
        try:
            self.yc.create_flow(
                switch,
                "lldp_punt",
                Match(dl_type=ETH_TYPE_LLDP),
                [Output(TO_CONTROLLER)],
                priority=LLDP_FLOW_PRIORITY,
            )
        except FsError:
            pass  # already present (e.g. daemon restart)

    def on_switch_removed(self, switch: str) -> None:
        self.unwatch(("ports", switch))
        self.port_cache.invalidate(switch)

    def on_other_event(self, ctx: tuple, event) -> None:
        if ctx[0] == "ports":
            self.port_cache.invalidate(ctx[1])

    # -- the delta stream ---------------------------------------------------------------

    def _publish_delta(self, delta: TopologyDelta) -> None:
        """Publish one delta file (maildir: dot-temp, then rename).

        File names carry the publisher's PID so two daemons (a restart
        overlap, a standby) never rename onto each other's deltas;
        consumers order by inotify delivery, not by name.
        """
        self._delta_seq += 1
        name = f"d_{self.pid}_{self._delta_seq}"
        tmp = f"{self.deltas_path}/.{name}"
        try:
            self.sc.write_text(tmp, format_delta(delta))
            self.sc.rename(tmp, f"{self.deltas_path}/{name}")
        except FsError:
            return
        self.deltas_published += 1
        self._backlog.append(name)
        while len(self._backlog) > DELTA_BACKLOG:
            stale = self._backlog.popleft()
            try:
                self.sc.unlink(f"{self.deltas_path}/{stale}")
            except FsError:
                pass

    # -- beaconing ---------------------------------------------------------------------

    def send_beacons(self) -> None:
        """One LLDP frame out of every known port of every switch."""
        for switch in self._safe_switches():
            for port_no in self.port_cache.ports(switch):
                frame = self._beacon(switch, port_no)
                try:
                    self.yc.packet_out(switch, [port_no], frame, tag=self.app_name)
                    self.beacons_sent += 1
                except FsError:
                    continue

    @staticmethod
    def _beacon(switch: str, port_no: int) -> bytes:
        lldp = Lldp(chassis_id=switch, port_id=str(port_no))
        eth = Ethernet(dst=LLDP_MULTICAST_MAC, src=MacAddress(0x02_00_5E_00_00_01), eth_type=ETH_TYPE_LLDP)
        return build_frame(eth, lldp)

    # -- learning -----------------------------------------------------------------------

    def handle_packet_in(self, event: PacketInEvent) -> None:
        try:
            frame = parse_frame(event.data)
        except ValueError:
            return
        if not isinstance(frame.inner, Lldp):
            return
        self.beacons_received += 1
        src = (frame.inner.chassis_id, int(frame.inner.port_id))
        dst = (event.switch, event.in_port)
        self._record(src, dst)
        self._record(dst, src)

    def _record(self, src: tuple[str, int], dst: tuple[str, int]) -> None:
        known = self.links.get(src)
        self.links[src] = DiscoveredLink(src=src, dst=dst, last_seen=self.sim.now)
        if known is not None and known.dst == dst:
            return
        try:
            self.yc.set_peer(src[0], src[1], dst[0], dst[1])
        except FsError:
            self.links.pop(src, None)
            return
        self._publish_delta(TopologyDelta("add", src, dst))

    def prune_stale(self) -> None:
        """Drop links that stopped beaconing (cable cut, port down)."""
        deadline = self.sim.now - self.link_ttl
        for src, link in list(self.links.items()):
            if link.last_seen >= deadline:
                continue
            del self.links[src]
            try:
                # EAFP: unlink resolves once; a missing link is already pruned.
                self.sc.unlink(f"{self.yc.port_path(src[0], src[1])}/peer")
            except FsError:
                continue
            self._publish_delta(TopologyDelta("remove", src, None))

    # -- queries -------------------------------------------------------------------------

    def adjacency(self) -> dict[tuple[str, int], tuple[str, int]]:
        """The live adjacency map: (switch, port) -> (switch, port)."""
        return {src: link.dst for src, link in self.links.items()}


def _port_no(port_name: str) -> int | None:
    try:
        return int(port_name.rsplit("_", 1)[-1])
    except ValueError:
        return None


def read_topology(yc) -> dict[tuple[str, int], tuple[str, int]]:
    """Read the adjacency map straight from the peer symlinks.

    Any application can reconstruct the topology from the tree alone —
    this full walk is what the router daemon does *once* at startup
    before switching to the incremental delta stream.
    """
    adjacency: dict[tuple[str, int], tuple[str, int]] = {}
    for switch in yc.switches():
        for port_name in yc.ports(switch):
            port_no = _port_no(port_name)
            if port_no is None:
                continue
            target = yc.peer_of(switch, port_name)
            if target is None:
                continue
            parts = target.rstrip("/").split("/")
            # .../switches/<sw>/ports/port_<n>
            try:
                peer_switch = parts[-3]
                peer_port = _port_no(parts[-1])
            except IndexError:
                continue
            if peer_port is not None:
                adjacency[(switch, port_no)] = (peer_switch, peer_port)
    return adjacency
