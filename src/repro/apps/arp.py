"""The ARP responder daemon.

"There should be a distinct application for each protocol the network
needs to support such as DHCP, ARP, and LLDP" (paper section 2).  This
daemon proxies ARP: it learns IP -> MAC bindings from traffic (and from
the ``/net/hosts`` records other daemons keep), answers requests directly
with a crafted reply via packet-out, and thereby suppresses network-wide
ARP floods.
"""

from __future__ import annotations

from ipaddress import IPv4Address

from repro.netpkt.addr import MacAddress
from repro.netpkt.arp import ARP_REQUEST, Arp
from repro.netpkt.ethernet import ETH_TYPE_ARP, Ethernet
from repro.netpkt.packet import build_frame, parse_frame
from repro.vfs.errors import FsError
from repro.yancfs.client import PacketInEvent
from repro.apps.base import PacketInApp


class ArpResponder(PacketInApp):
    """Proxy ARP from the controller."""

    app_name = "arpd"

    def __init__(self, sc, sim, *, root: str = "/net", record_hosts: bool = True) -> None:
        super().__init__(sc, sim, root=root)
        self.record_hosts = record_hosts
        self.bindings: dict[IPv4Address, MacAddress] = {}
        self.replies_sent = 0
        self.requests_seen = 0

    def on_start(self) -> None:
        super().on_start()
        self._load_recorded_hosts()

    def _load_recorded_hosts(self) -> None:
        try:
            names = self.yc.hosts()
        except FsError:
            return
        for name in names:
            base = f"{self.yc.root}/hosts/{name}"
            try:
                mac = self.sc.read_text(f"{base}/mac").strip()
                ip_text = self.sc.read_text(f"{base}/ip").strip()
                if mac and ip_text:
                    self.bindings[IPv4Address(ip_text)] = MacAddress(mac)
            except (FsError, ValueError):
                continue

    def handle_packet_in(self, event: PacketInEvent) -> None:
        try:
            frame = parse_frame(event.data)
        except ValueError:
            return
        if not isinstance(frame.inner, Arp):
            return
        arp = frame.inner
        self._learn(arp.sender_ip, arp.sender_mac)
        if arp.opcode != ARP_REQUEST:
            return
        self.requests_seen += 1
        target_mac = self.bindings.get(arp.target_ip)
        if target_mac is None:
            return  # unknown: let the router/learning app flood it
        reply = Arp(
            opcode=2,
            sender_mac=target_mac,
            sender_ip=arp.target_ip,
            target_mac=arp.sender_mac,
            target_ip=arp.sender_ip,
        )
        raw = build_frame(Ethernet(dst=arp.sender_mac, src=target_mac, eth_type=ETH_TYPE_ARP), reply)
        try:
            self.yc.packet_out(event.switch, [event.in_port], raw, tag=self.app_name)
            self.replies_sent += 1
        except FsError:
            pass

    def _learn(self, ip_addr: IPv4Address, mac: MacAddress) -> None:
        if mac.is_multicast or int(mac) == 0:
            return
        known = self.bindings.get(ip_addr)
        self.bindings[ip_addr] = mac
        if known == mac or not self.record_hosts:
            return
        try:
            name = str(mac)
            base = f"{self.yc.root}/hosts/{name}"
            if not self.sc.exists(base):
                self.yc.create_host(name, mac=name, ip_addr=str(ip_addr))
            else:
                self.sc.write_text(f"{base}/ip", str(ip_addr))
        except FsError:
            pass
