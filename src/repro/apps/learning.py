"""A classic per-switch L2 learning switch application.

Independent of the router daemon: each switch learns MAC -> port from
packet-ins and installs destination-MAC flows.  Useful on single-switch
networks and as the canonical "second application from another source"
(paper section 2: applications come from multiple sources and coexist).
"""

from __future__ import annotations

from repro.dataplane.actions import Output
from repro.dataplane.match import Match
from repro.netpkt.addr import MacAddress
from repro.netpkt.ethernet import ETH_TYPE_LLDP
from repro.netpkt.packet import parse_frame
from repro.vfs.errors import FileExists, FsError
from repro.yancfs.client import PacketInEvent
from repro.apps.base import PacketInApp

NO_BUFFER = 0xFFFFFFFF


class LearningSwitchApp(PacketInApp):
    """MAC learning + reactive flow installation, one table per switch."""

    app_name = "l2learn"

    def __init__(self, sc, sim, *, root: str = "/net", flow_idle_timeout: float = 30.0) -> None:
        super().__init__(sc, sim, root=root)
        self.flow_idle_timeout = flow_idle_timeout
        self.tables: dict[str, dict[MacAddress, int]] = {}
        self.flows_installed = 0

    def handle_packet_in(self, event: PacketInEvent) -> None:
        try:
            frame = parse_frame(event.data)
        except ValueError:
            return
        if frame.eth.eth_type == ETH_TYPE_LLDP:
            return
        table = self.tables.setdefault(event.switch, {})
        if not frame.eth.src.is_multicast:
            table[frame.eth.src] = event.in_port
        out_port = table.get(frame.eth.dst)
        if out_port is None or frame.eth.dst.is_broadcast or frame.eth.dst.is_multicast:
            self._send(event, "flood")
            return
        try:
            self.yc.create_flow(
                event.switch,
                f"l2-{frame.eth.dst}",
                Match(dl_dst=frame.eth.dst),
                [Output(out_port)],
                idle_timeout=self.flow_idle_timeout,
            )
            self.flows_installed += 1
        except (FileExists, FsError):
            pass
        self._send(event, out_port)

    def _send(self, event: PacketInEvent, port: int | str) -> None:
        if event.buffer_id != NO_BUFFER:
            self.yc.packet_out(event.switch, [port], b"", in_port=event.in_port, buffer_id=event.buffer_id, tag=self.app_name)
        else:
            self.yc.packet_out(event.switch, [port], event.data, in_port=event.in_port, tag=self.app_name)
