"""A DHCP address-assignment daemon.

The second of the paper's example per-protocol daemons (section 2).  The
wire format is a deliberately simplified DHCP-over-UDP (ports 67/68)
exchange — ``DISCOVER`` broadcast in, unicast ``OFFER`` out — because the
hosts in the dataplane simulator have no full DHCP client; what matters
for the reproduction is the yanc-side shape: a standalone daemon that owns
one protocol, consumes packet-ins, allocates from a pool, records leases
under ``/net/hosts``, and answers via packet-out.
"""

from __future__ import annotations

from ipaddress import IPv4Address, IPv4Network

from repro.netpkt.addr import MacAddress
from repro.netpkt.ethernet import ETH_TYPE_IPV4, Ethernet
from repro.netpkt.ipv4 import IPPROTO_UDP, IPv4
from repro.netpkt.packet import build_frame, parse_frame
from repro.netpkt.transport import Udp
from repro.vfs.errors import FsError
from repro.yancfs.client import PacketInEvent
from repro.apps.base import PacketInApp

DHCP_SERVER_PORT = 67
DHCP_CLIENT_PORT = 68

#: Simplified payloads: b"DHCPDISCOVER" in, b"DHCPOFFER <ip>" out.
DISCOVER = b"DHCPDISCOVER"
OFFER_PREFIX = b"DHCPOFFER "


def make_discover(mac: MacAddress, src_ip: str = "0.0.0.0") -> bytes:
    """Craft a client DISCOVER broadcast (test/bench helper)."""
    return build_frame(
        Ethernet(dst="ff:ff:ff:ff:ff:ff", src=mac, eth_type=ETH_TYPE_IPV4),
        IPv4(src=IPv4Address(src_ip), dst=IPv4Address("255.255.255.255"), proto=IPPROTO_UDP),
        Udp(src_port=DHCP_CLIENT_PORT, dst_port=DHCP_SERVER_PORT, payload=DISCOVER),
    )


class DhcpServer(PacketInApp):
    """Lease allocator: one pool, persistent leases in ``/net/hosts``."""

    app_name = "dhcpd"

    def __init__(
        self,
        sc,
        sim,
        *,
        root: str = "/net",
        pool: str = "10.1.0.0/24",
        server_mac: str = "02:dc:dc:00:00:01",
        server_ip: str = "10.1.0.1",
    ) -> None:
        super().__init__(sc, sim, root=root)
        self.pool = IPv4Network(pool)
        self.server_mac = MacAddress(server_mac)
        self.server_ip = IPv4Address(server_ip)
        self.leases: dict[MacAddress, IPv4Address] = {}
        self._allocator = (host for host in self.pool.hosts() if host != self.server_ip)
        self.offers_sent = 0

    def handle_packet_in(self, event: PacketInEvent) -> None:
        try:
            frame = parse_frame(event.data)
        except ValueError:
            return
        inner = frame.inner
        if not isinstance(inner, Udp) or inner.dst_port != DHCP_SERVER_PORT:
            return
        if not inner.payload.startswith(DISCOVER):
            return
        client_mac = frame.eth.src
        lease = self.leases.get(client_mac)
        if lease is None:
            try:
                lease = next(self._allocator)
            except StopIteration:
                return  # pool exhausted
            self.leases[client_mac] = lease
            self._record_lease(client_mac, lease)
        offer = build_frame(
            Ethernet(dst=client_mac, src=self.server_mac, eth_type=ETH_TYPE_IPV4),
            IPv4(src=self.server_ip, dst=lease, proto=IPPROTO_UDP),
            Udp(src_port=DHCP_SERVER_PORT, dst_port=DHCP_CLIENT_PORT, payload=OFFER_PREFIX + str(lease).encode()),
        )
        try:
            self.yc.packet_out(event.switch, [event.in_port], offer, tag=self.app_name)
            self.offers_sent += 1
        except FsError:
            pass

    def _record_lease(self, mac: MacAddress, lease: IPv4Address) -> None:
        try:
            name = str(mac)
            base = f"{self.yc.root}/hosts/{name}"
            if not self.sc.exists(base):
                self.yc.create_host(name, mac=name, ip_addr=str(lease))
            else:
                self.sc.write_text(f"{base}/ip", str(lease))
        except FsError:
            pass
