"""The auditor: a one-shot program run occasionally (e.g. from cron).

"An auditor might run periodically via a cron job" (paper section 2).
Unlike the daemons, this is a plain run-to-completion function: it sweeps
the tree, checks configuration invariants, and writes a report file.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.vfs.errors import FileNotFound, FsError
from repro.vfs.syscalls import Syscalls
from repro.yancfs.client import YancClient


@dataclass
class AuditReport:
    """The outcome of one audit sweep."""

    when: float
    switches_checked: int = 0
    flows_checked: int = 0
    findings: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when no findings were raised."""
        return not self.findings

    def render(self) -> str:
        """Human-readable report text."""
        lines = [
            f"yanc audit @ t={self.when:.3f}",
            f"switches: {self.switches_checked}  flows: {self.flows_checked}",
        ]
        if self.clean:
            lines.append("no findings")
        else:
            lines.extend(f"FINDING: {finding}" for finding in self.findings)
        return "\n".join(lines) + "\n"


def run_audit(sc: Syscalls, *, root: str = "/net", report_path: str = "", clock: float = 0.0) -> AuditReport:
    """Sweep the tree once and (optionally) write the report file.

    Checks:

    * every flow has at least one action file **or** is an explicit drop
      (priority >= 0xFFF0 convention used by the firewall);
    * committed flows (version > 0) have at least one match file;
    * no two committed flows on one switch share (match set, priority);
    * every ``peer`` symlink resolves to an existing port whose own
      ``peer`` points back (topology symmetry, §3.3).
    """
    yc = YancClient(sc, root)
    report = AuditReport(when=clock)
    try:
        switches = yc.switches()
    except FsError:
        return report
    for switch in switches:
        report.switches_checked += 1
        seen: dict[tuple, str] = {}
        try:
            flow_names = yc.flows(switch)
        except FsError:
            continue
        for flow_name in flow_names:
            report.flows_checked += 1
            try:
                files = sc.listdir(yc.flow_path(switch, flow_name))
                spec = yc.read_flow(switch, flow_name)
            except FsError:
                continue
            has_action = any(name.startswith("action.") for name in files)
            has_match = any(name.startswith("match.") for name in files)
            if spec.version > 0:
                if not has_action and spec.priority < 0xFFF0:
                    report.findings.append(f"{switch}/{flow_name}: committed flow with no actions (not a marked drop)")
                if not has_match:
                    report.findings.append(f"{switch}/{flow_name}: committed flow matches everything")
                key = (frozenset(spec.match.specified_fields().items()), spec.priority)
                if key in seen:
                    report.findings.append(f"{switch}/{flow_name}: duplicates {seen[key]} (same match and priority)")
                else:
                    seen[key] = flow_name
        # topology symmetry
        try:
            port_names = yc.ports(switch)
        except FsError:
            continue
        for port_name in port_names:
            target = yc.peer_of(switch, port_name)
            if target is None:
                continue
            if not sc.exists(target):
                report.findings.append(f"{switch}/{port_name}: dangling peer symlink -> {target}")
                continue
            try:
                back = sc.readlink(f"{target}/peer")  # EAFP: one resolution
            except FileNotFound:
                back = None
            if back != yc.port_path(switch, port_name):
                report.findings.append(f"{switch}/{port_name}: asymmetric peer link")
    if report_path:
        parent = report_path.rsplit("/", 1)[0]
        if parent and not sc.exists(parent):
            sc.makedirs(parent)
        sc.write_text(report_path, report.render())
    return report
