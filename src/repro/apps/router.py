"""The reactive router daemon (paper section 8).

"A router daemon handles all table misses and sets up paths based on exact
match through the network."  On every punted packet it either

* floods along a spanning tree (broadcast / unknown destination), or
* installs exact-match entries along the shortest path between the
  ingress switch and the destination host's learned location, then
  releases the buffered packet along the first hop.

Host locations are learned from packets entering at *edge* ports (ports
that appear in no discovered adjacency); the topology comes from the
topology daemon's incremental delta stream — two applications
cooperating through nothing but the file system.  The router walks the
peer symlinks exactly once, at startup, then keeps its adjacency (and
the spanning tree / shortest paths / edge-port sets derived from it)
cached in memory, invalidated by delta files rather than re-read per
packet.  In steady state, routing a packet costs zero topology syscalls.
"""

from __future__ import annotations

from collections import deque

from repro.dataplane.match import Match
from repro.dataplane.actions import Output
from repro.netpkt.addr import MacAddress
from repro.netpkt.ethernet import ETH_TYPE_LLDP
from repro.netpkt.packet import parse_frame
from repro.vfs.errors import FileExists, FsError
from repro.vfs.notify import EventMask
from repro.yancfs.client import PacketInEvent
from repro.apps.base import PacketInApp
from repro.apps.topology import DEFAULT_DELTAS_PATH, PortCache, parse_delta, read_topology

NO_BUFFER = 0xFFFFFFFF

_PORTS_MASK = EventMask.IN_CREATE | EventMask.IN_DELETE | EventMask.IN_MOVED_FROM | EventMask.IN_MOVED_TO


class RouterDaemon(PacketInApp):
    """Reactive exact-match shortest-path routing."""

    app_name = "router"

    def __init__(
        self,
        sc,
        sim,
        *,
        root: str = "/net",
        flow_idle_timeout: float = 10.0,
        deltas_path: str = DEFAULT_DELTAS_PATH,
        record_hosts: bool = True,
    ) -> None:
        super().__init__(sc, sim, root=root)
        self.flow_idle_timeout = flow_idle_timeout
        self.deltas_path = deltas_path
        self.record_hosts = record_hosts
        self.host_locations: dict[MacAddress, tuple[str, int]] = {}
        self.port_cache = PortCache(self.yc)
        self._topology: dict[tuple[str, int], tuple[str, int]] = {}
        self._linked_ports: dict[str, set[int]] = {}
        self._graph_cache: dict[str, dict[str, int]] | None = None
        self._tree_cache: set[frozenset[str]] | None = None
        self._tree_ports: dict[str, set[int]] = {}
        self._path_cache: dict[tuple[str, str], list[str] | None] = {}
        self._flow_seq = 0
        self.paths_installed = 0
        self.floods = 0
        self.full_topology_reads = 0
        self.deltas_applied = 0

    def on_start(self) -> None:
        super().on_start()
        # Watch first, resync second: a delta published while the full
        # walk is in flight is applied on top of it (adds/removes are
        # idempotent against the walked state), so no window is missed.
        if not self.sc.exists(self.deltas_path):
            try:
                self.sc.makedirs(self.deltas_path)
            except FsError:
                pass
        self.watch(self.deltas_path, EventMask.IN_CREATE | EventMask.IN_MOVED_TO, ("deltas",))
        self._resync()

    def on_switch_added(self, switch: str) -> None:
        self.watch(f"{self.yc.switch_path(switch)}/ports", _PORTS_MASK, ("ports", switch))

    def on_switch_removed(self, switch: str) -> None:
        self.unwatch(("ports", switch))
        self.port_cache.invalidate(switch)

    # -- topology ------------------------------------------------------------------------

    def topology(self) -> dict[tuple[str, int], tuple[str, int]]:
        """The cached adjacency map (maintained by deltas, not re-read)."""
        return self._topology

    def _resync(self) -> None:
        """Full walk of the peer symlinks (startup, or a missed delta)."""
        try:
            self._topology = read_topology(self.yc)
        except FsError:
            self._topology = {}
        self.full_topology_reads += 1
        self._linked_ports = {}
        for (src_sw, src_port) in self._topology:
            self._linked_ports.setdefault(src_sw, set()).add(src_port)
        self._invalidate_routes()

    def _invalidate_routes(self) -> None:
        self._graph_cache = None
        self._tree_cache = None
        self._tree_ports = {}
        self._path_cache = {}

    def on_other_event(self, ctx: tuple, event) -> None:
        if ctx[0] == "ports":
            self.port_cache.invalidate(ctx[1])
            return
        if ctx[0] != "deltas" or not event.name or event.name.startswith("."):
            return
        try:
            text = self.sc.read_text(f"{self.deltas_path}/{event.name}")
        except FsError:
            # The publisher already pruned this delta: we fell too far
            # behind the stream, so fall back to one full walk.
            self._resync()
            return
        delta = parse_delta(text)
        if delta is None:
            return
        self._apply_delta(delta)

    def _apply_delta(self, delta) -> None:
        if delta.kind == "add":
            if self._topology.get(delta.src) == delta.dst:
                return  # already known (e.g. seen by the startup walk)
            self._topology[delta.src] = delta.dst
            self._linked_ports.setdefault(delta.src[0], set()).add(delta.src[1])
            # A port just became inter-switch: any host "learned" there
            # was really traffic in transit, so forget it.
            for mac, location in list(self.host_locations.items()):
                if location == delta.src:
                    del self.host_locations[mac]
        else:
            if self._topology.pop(delta.src, None) is None:
                return
            self._linked_ports.get(delta.src[0], set()).discard(delta.src[1])
        self.deltas_applied += 1
        self._invalidate_routes()

    def _graph(self) -> dict[str, dict[str, int]]:
        """switch -> {neighbour switch -> local out-port} (cached)."""
        if self._graph_cache is None:
            graph: dict[str, dict[str, int]] = {}
            for (src_sw, src_port), (dst_sw, _dst_port) in self._topology.items():
                graph.setdefault(src_sw, {})[dst_sw] = src_port
                graph.setdefault(dst_sw, {})
            self._graph_cache = graph
        return self._graph_cache

    def _spanning_tree(self) -> set[frozenset[str]]:
        """BFS tree edges over the switch graph (loop-free flooding)."""
        if self._tree_cache is None:
            graph = self._graph()
            tree: set[frozenset[str]] = set()
            if graph:
                root = min(graph)
                seen = {root}
                queue = deque([root])
                while queue:
                    current = queue.popleft()
                    for neighbour in sorted(graph.get(current, {})):
                        if neighbour in seen:
                            continue
                        seen.add(neighbour)
                        tree.add(frozenset((current, neighbour)))
                        queue.append(neighbour)
            self._tree_cache = tree
            # Per-switch ports that sit on a tree edge, computed once per
            # topology generation instead of per flood.
            ports: dict[str, set[int]] = {}
            for (src_sw, src_port), (dst_sw, _dst_port) in self._topology.items():
                if frozenset((src_sw, dst_sw)) in tree:
                    ports.setdefault(src_sw, set()).add(src_port)
            self._tree_ports = ports
        return self._tree_cache

    def shortest_path(self, src_switch: str, dst_switch: str) -> list[str] | None:
        """BFS shortest switch path, inclusive of both ends (cached)."""
        cache_key = (src_switch, dst_switch)
        if cache_key in self._path_cache:
            return self._path_cache[cache_key]
        path = self._compute_path(src_switch, dst_switch)
        self._path_cache[cache_key] = path
        return path

    def _compute_path(self, src_switch: str, dst_switch: str) -> list[str] | None:
        if src_switch == dst_switch:
            return [src_switch]
        graph = self._graph()
        previous: dict[str, str] = {}
        seen = {src_switch}
        queue = deque([src_switch])
        while queue:
            current = queue.popleft()
            for neighbour in sorted(graph.get(current, {})):
                if neighbour in seen:
                    continue
                seen.add(neighbour)
                previous[neighbour] = current
                if neighbour == dst_switch:
                    path = [dst_switch]
                    while path[-1] != src_switch:
                        path.append(previous[path[-1]])
                    return path[::-1]
                queue.append(neighbour)
        return None

    # -- port classification ------------------------------------------------------------

    def _edge_ports(self, switch: str) -> list[int]:
        """Ports on no discovered link: where hosts live."""
        linked = self._linked_ports.get(switch, set())
        return [p for p in self.port_cache.ports(switch) if p not in linked]

    def _flood_ports(self, switch: str, in_port: int) -> list[int]:
        """Edge ports plus spanning-tree link ports, minus the ingress."""
        self._spanning_tree()  # ensures _tree_ports is current
        ports = set(self._edge_ports(switch))
        ports |= self._tree_ports.get(switch, set())
        ports.discard(in_port)
        return sorted(ports)

    # -- the reactive core -----------------------------------------------------------------

    def handle_packet_in(self, event: PacketInEvent) -> None:
        try:
            frame = parse_frame(event.data)
        except ValueError:
            return
        if frame.eth.eth_type == ETH_TYPE_LLDP:
            return  # the topology daemon's business
        self._learn(event, frame.eth.src)
        destination = frame.eth.dst
        if destination.is_broadcast or destination.is_multicast:
            self._flood(event)
            return
        location = self.host_locations.get(destination)
        if location is None:
            self._flood(event)
            return
        self._route(event, frame, location)

    def _learn(self, event: PacketInEvent, src_mac: MacAddress) -> None:
        if src_mac.is_multicast:
            return
        if (event.switch, event.in_port) in self._topology:
            return  # arrived over an inter-switch link: not the edge
        known = self.host_locations.get(src_mac)
        self.host_locations[src_mac] = (event.switch, event.in_port)
        if known != (event.switch, event.in_port) and self.record_hosts:
            try:
                name = str(src_mac)
                host_path = f"{self.yc.root}/hosts/{name}"
                if not self.sc.exists(host_path):
                    self.yc.create_host(name, mac=name, attached_to=f"{event.switch}:{event.in_port}")
                else:
                    self.sc.write_text(f"{host_path}/attached_to", f"{event.switch}:{event.in_port}")
            except FsError:
                pass

    def _flood(self, event: PacketInEvent) -> None:
        ports = self._flood_ports(event.switch, event.in_port)
        if not ports:
            return
        self.floods += 1
        if event.buffer_id != NO_BUFFER:
            self.yc.packet_out(
                event.switch, ports, b"", in_port=event.in_port, buffer_id=event.buffer_id, tag=self.app_name
            )
        else:
            self.yc.packet_out(event.switch, ports, event.data, in_port=event.in_port, tag=self.app_name)

    def _route(self, event: PacketInEvent, frame, location: tuple[str, int]) -> None:
        dst_switch, dst_port = location
        path = self.shortest_path(event.switch, dst_switch)
        if path is None:
            self._flood(event)
            return
        graph = self._graph()
        key = frame.key
        self._flow_seq += 1
        in_port = event.in_port
        first_out: int | None = None
        for index, switch in enumerate(path):
            if index + 1 < len(path):
                out_port = graph[switch][path[index + 1]]
            else:
                out_port = dst_port
            if first_out is None:
                first_out = out_port
            match = Match.exact(key, in_port=in_port)
            flow_name = f"rt-{key.dl_src}-{key.dl_dst}-{self._flow_seq}"
            try:
                self.yc.create_flow(
                    switch,
                    flow_name,
                    match,
                    [Output(out_port)],
                    idle_timeout=self.flow_idle_timeout,
                )
            except FileExists:
                pass
            if index + 1 < len(path):
                next_switch = path[index + 1]
                # The frame enters the next switch on the reverse port.
                in_port = self._topology.get((switch, out_port), (next_switch, 0))[1]
        self.paths_installed += 1
        if event.buffer_id != NO_BUFFER:
            self.yc.packet_out(
                event.switch, [first_out or dst_port], b"", in_port=event.in_port, buffer_id=event.buffer_id, tag=self.app_name
            )
        else:
            self.yc.packet_out(event.switch, [first_out or dst_port], event.data, in_port=event.in_port, tag=self.app_name)
