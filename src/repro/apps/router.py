"""The reactive router daemon (paper section 8).

"A router daemon handles all table misses and sets up paths based on exact
match through the network."  On every punted packet it either

* floods along a spanning tree (broadcast / unknown destination), or
* installs exact-match entries along the shortest path between the
  ingress switch and the destination host's learned location, then
  releases the buffered packet along the first hop.

Host locations are learned from packets entering at *edge* ports (ports
with no ``peer`` symlink); the topology comes straight from the peer
symlinks the topology daemon maintains — two applications cooperating
through nothing but the file system.
"""

from __future__ import annotations

from collections import deque

from repro.dataplane.match import Match
from repro.dataplane.actions import Output
from repro.netpkt.addr import MacAddress
from repro.netpkt.ethernet import ETH_TYPE_LLDP
from repro.netpkt.packet import parse_frame
from repro.vfs.errors import FileExists, FsError
from repro.yancfs.client import PacketInEvent
from repro.apps.base import PacketInApp
from repro.apps.topology import read_topology

NO_BUFFER = 0xFFFFFFFF


class RouterDaemon(PacketInApp):
    """Reactive exact-match shortest-path routing."""

    app_name = "router"

    def __init__(
        self,
        sc,
        sim,
        *,
        root: str = "/net",
        flow_idle_timeout: float = 10.0,
        topology_cache_ttl: float = 0.2,
        record_hosts: bool = True,
    ) -> None:
        super().__init__(sc, sim, root=root)
        self.flow_idle_timeout = flow_idle_timeout
        self.topology_cache_ttl = topology_cache_ttl
        self.record_hosts = record_hosts
        self.host_locations: dict[MacAddress, tuple[str, int]] = {}
        self._topology: dict[tuple[str, int], tuple[str, int]] = {}
        self._topology_read_at = -1.0
        self._flow_seq = 0
        self.paths_installed = 0
        self.floods = 0

    # -- topology ------------------------------------------------------------------------

    def topology(self) -> dict[tuple[str, int], tuple[str, int]]:
        """The adjacency map, re-read from peer symlinks with a short TTL."""
        if self.sim.now - self._topology_read_at > self.topology_cache_ttl:
            try:
                self._topology = read_topology(self.yc)
            except FsError:
                self._topology = {}
            self._topology_read_at = self.sim.now
        return self._topology

    def _graph(self) -> dict[str, dict[str, int]]:
        """switch -> {neighbour switch -> local out-port}."""
        graph: dict[str, dict[str, int]] = {}
        for (src_sw, src_port), (dst_sw, _dst_port) in self.topology().items():
            graph.setdefault(src_sw, {})[dst_sw] = src_port
            graph.setdefault(dst_sw, {})
        return graph

    def _spanning_tree(self) -> set[frozenset[str]]:
        """BFS tree edges over the switch graph (loop-free flooding)."""
        graph = self._graph()
        if not graph:
            return set()
        root = min(graph)
        seen = {root}
        tree: set[frozenset[str]] = set()
        queue = deque([root])
        while queue:
            current = queue.popleft()
            for neighbour in sorted(graph.get(current, {})):
                if neighbour in seen:
                    continue
                seen.add(neighbour)
                tree.add(frozenset((current, neighbour)))
                queue.append(neighbour)
        return tree

    def shortest_path(self, src_switch: str, dst_switch: str) -> list[str] | None:
        """BFS shortest switch path, inclusive of both ends."""
        if src_switch == dst_switch:
            return [src_switch]
        graph = self._graph()
        previous: dict[str, str] = {}
        seen = {src_switch}
        queue = deque([src_switch])
        while queue:
            current = queue.popleft()
            for neighbour in sorted(graph.get(current, {})):
                if neighbour in seen:
                    continue
                seen.add(neighbour)
                previous[neighbour] = current
                if neighbour == dst_switch:
                    path = [dst_switch]
                    while path[-1] != src_switch:
                        path.append(previous[path[-1]])
                    return path[::-1]
                queue.append(neighbour)
        return None

    # -- port classification ------------------------------------------------------------

    def _edge_ports(self, switch: str) -> list[int]:
        """Ports with no peer symlink: where hosts live."""
        linked = {src_port for (src_sw, src_port) in self.topology() if src_sw == switch}
        ports = []
        for port_name in self.yc.ports(switch):
            try:
                port_no = int(port_name.rsplit("_", 1)[-1])
            except ValueError:
                continue
            if port_no not in linked:
                ports.append(port_no)
        return ports

    def _flood_ports(self, switch: str, in_port: int) -> list[int]:
        """Edge ports plus spanning-tree link ports, minus the ingress."""
        tree = self._spanning_tree()
        ports = set(self._edge_ports(switch))
        for (src_sw, src_port), (dst_sw, _dst_port) in self.topology().items():
            if src_sw == switch and frozenset((src_sw, dst_sw)) in tree:
                ports.add(src_port)
        ports.discard(in_port)
        return sorted(ports)

    # -- the reactive core -----------------------------------------------------------------

    def handle_packet_in(self, event: PacketInEvent) -> None:
        try:
            frame = parse_frame(event.data)
        except ValueError:
            return
        if frame.eth.eth_type == ETH_TYPE_LLDP:
            return  # the topology daemon's business
        self._learn(event, frame.eth.src)
        destination = frame.eth.dst
        if destination.is_broadcast or destination.is_multicast:
            self._flood(event)
            return
        location = self.host_locations.get(destination)
        if location is None:
            self._flood(event)
            return
        self._route(event, frame, location)

    def _learn(self, event: PacketInEvent, src_mac: MacAddress) -> None:
        if src_mac.is_multicast:
            return
        try:
            if self.yc.peer_of(event.switch, event.in_port) is not None:
                return  # arrived over an inter-switch link: not the edge
        except FsError:
            return
        known = self.host_locations.get(src_mac)
        self.host_locations[src_mac] = (event.switch, event.in_port)
        if known != (event.switch, event.in_port) and self.record_hosts:
            try:
                name = str(src_mac)
                host_path = f"{self.yc.root}/hosts/{name}"
                if not self.sc.exists(host_path):
                    self.yc.create_host(name, mac=name, attached_to=f"{event.switch}:{event.in_port}")
                else:
                    self.sc.write_text(f"{host_path}/attached_to", f"{event.switch}:{event.in_port}")
            except FsError:
                pass

    def _flood(self, event: PacketInEvent) -> None:
        ports = self._flood_ports(event.switch, event.in_port)
        if not ports:
            return
        self.floods += 1
        if event.buffer_id != NO_BUFFER:
            self.yc.packet_out(
                event.switch, ports, b"", in_port=event.in_port, buffer_id=event.buffer_id, tag=self.app_name
            )
        else:
            self.yc.packet_out(event.switch, ports, event.data, in_port=event.in_port, tag=self.app_name)

    def _route(self, event: PacketInEvent, frame, location: tuple[str, int]) -> None:
        dst_switch, dst_port = location
        path = self.shortest_path(event.switch, dst_switch)
        if path is None:
            self._flood(event)
            return
        graph = self._graph()
        key = frame.key
        self._flow_seq += 1
        in_port = event.in_port
        first_out: int | None = None
        for index, switch in enumerate(path):
            if index + 1 < len(path):
                out_port = graph[switch][path[index + 1]]
            else:
                out_port = dst_port
            if first_out is None:
                first_out = out_port
            match = Match.exact(key, in_port=in_port)
            flow_name = f"rt-{key.dl_src}-{key.dl_dst}-{self._flow_seq}"
            try:
                self.yc.create_flow(
                    switch,
                    flow_name,
                    match,
                    [Output(out_port)],
                    idle_timeout=self.flow_idle_timeout,
                )
            except FileExists:
                pass
            if index + 1 < len(path):
                next_switch = path[index + 1]
                # The frame enters the next switch on the reverse port.
                in_port = self.topology().get((switch, out_port), (next_switch, 0))[1]
        self.paths_installed += 1
        if event.buffer_id != NO_BUFFER:
            self.yc.packet_out(
                event.switch, [first_out or dst_port], b"", in_port=event.in_port, buffer_id=event.buffer_id, tag=self.app_name
            )
        else:
            self.yc.packet_out(event.switch, [first_out or dst_port], event.data, in_port=event.in_port, tag=self.app_name)
