"""The accounting daemon: periodic usage records from tree counters.

One of the paper's "master applications" (figure 1 lists accounting next
to topology discovery).  It scans every switch's port and flow counters on
an interval and appends one line per sample to a log file on the *root*
file system — yanc state in, ordinary Unix log out.
"""

from __future__ import annotations

from repro.vfs.errors import FsError
from repro.apps.base import YancApp


class AccountingDaemon(YancApp):
    """Sample counters -> append usage records to a log file."""

    app_name = "acctd"

    def __init__(self, sc, sim, *, root: str = "/net", log_path: str = "/var/log/yanc-accounting.log", interval: float = 1.0) -> None:
        super().__init__(sc, sim, root=root)
        self.log_path = log_path
        self.interval = interval
        self.samples_taken = 0

    def on_start(self) -> None:
        log_dir = self.log_path.rsplit("/", 1)[0]
        if log_dir and not self.sc.exists(log_dir):
            self.sc.makedirs(log_dir)
        if not self.sc.exists(self.log_path):
            self.sc.write_text(self.log_path, "")
        self.every(self.interval, self.sample)

    def sample(self) -> None:
        """Take one fleet-wide counter sample."""
        lines = []
        now = self.sim.now
        try:
            switches = self.yc.switches()
        except FsError:
            return
        for switch in switches:
            try:
                for port_name in self.yc.ports(switch):
                    counters = self.yc.port_counters(switch, port_name)
                    lines.append(
                        f"{now:.3f} {switch} {port_name} "
                        f"rx={counters.get('rx_packets', 0)} tx={counters.get('tx_packets', 0)} "
                        f"rxb={counters.get('rx_bytes', 0)} txb={counters.get('tx_bytes', 0)}"
                    )
                for flow_name in self.yc.flows(switch):
                    counters = self.yc.flow_counters(switch, flow_name)
                    lines.append(
                        f"{now:.3f} {switch} flow:{flow_name} "
                        f"pkts={counters.get('packet_count', 0)} bytes={counters.get('byte_count', 0)}"
                    )
            except FsError:
                continue
        if lines:
            self.sc.write_text(self.log_path, "\n".join(lines) + "\n", append=True)
            self.samples_taken += 1

    def records(self) -> list[str]:
        """All usage records logged so far."""
        try:
            return [line for line in self.sc.read_text(self.log_path).splitlines() if line]
        except FsError:
            return []
