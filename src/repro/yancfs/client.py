"""High-level helpers over the yanc file tree.

Everything here is plain file I/O through a :class:`~repro.vfs.Syscalls`
facade — the helpers exist so applications, drivers, and tests compose the
same ``echo value > file`` sequences without repeating path arithmetic.
Every helper call costs exactly the system calls it issues; nothing
bypasses the file system (that is :mod:`repro.libyanc`'s job).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.dataplane.actions import Action, parse_action
from repro.dataplane.match import Match
from repro.vfs.errors import FileNotFound
from repro.vfs.path import clean
from repro.vfs.syscalls import O_WRONLY, Syscalls
from repro.yancfs.schema import YancFs

if TYPE_CHECKING:
    from repro.vfs.uring import IoUring


def mount_yancfs(sc: Syscalls, path: str = "/net", *, recover: bool = True) -> YancFs:
    """Create a yanc file system and mount it at ``path`` (default /net).

    Unless ``recover=False``, the mount runs the :func:`~repro.yancfs.recovery.fsck`
    sweep over the freshly mounted tree: stale dot-temps and half-staged
    (version-0) flow directories left by a crashed publisher are removed
    before any reader sees the namespace.  A brand-new mount is empty,
    so on the common path this costs a handful of ``scandir`` calls.
    """
    from repro.yancfs.recovery import fsck

    fs = YancFs(clock=sc.vfs.clock)
    if not sc.exists(path):
        sc.makedirs(path)
    sc.mount(path, fs, source="yanc")
    if recover:
        fsck(sc, path)
    return fs


@dataclass(frozen=True)
class FlowSpec:
    """Everything a committed flow directory describes."""

    match: Match
    actions: tuple[Action, ...]
    priority: int = 0x8000
    idle_timeout: float = 0.0
    hard_timeout: float = 0.0
    cookie: int = 0
    version: int = 0


@dataclass(frozen=True)
class PacketInEvent:
    """One packet-in message read from an event buffer (§3.5)."""

    switch: str
    seq: int
    in_port: int
    reason: str
    buffer_id: int
    total_len: int
    data: bytes


class YancClient:
    """Path helpers + composite operations over one mounted yanc tree."""

    def __init__(self, sc: Syscalls, root: str = "/net") -> None:
        self.sc = sc
        # One canonical spelling so derived paths hit one dentry-cache /
        # meter key instead of fanning out over //-and-dot variants.
        self.root = clean(root.rstrip("/") or "/net")

    # -- paths ----------------------------------------------------------------------

    def switch_path(self, switch: str) -> str:
        """``/net/switches/<switch>``."""
        return f"{self.root}/switches/{switch}"

    def flow_path(self, switch: str, flow: str) -> str:
        """``/net/switches/<switch>/flows/<flow>``."""
        return f"{self.switch_path(switch)}/flows/{flow}"

    def port_path(self, switch: str, port: int | str) -> str:
        """``/net/switches/<switch>/ports/port_<n>``."""
        name = port if isinstance(port, str) else f"port_{port}"
        return f"{self.switch_path(switch)}/ports/{name}"

    def events_path(self, switch: str, app: str) -> str:
        """``/net/switches/<switch>/events/<app>``."""
        return f"{self.switch_path(switch)}/events/{app}"

    def view_path(self, *names: str) -> str:
        """``/net/views/<a>/views/<b>/...`` for nested views."""
        path = self.root
        for name in names:
            path += f"/views/{name}"
        return path

    def in_view(self, *names: str) -> "YancClient":
        """A client rooted inside a (possibly nested) view subtree."""
        return YancClient(self.sc, self.view_path(*names))

    # -- switches -------------------------------------------------------------------

    def switches(self) -> list[str]:
        """All switch names (dot-prefixed maildir temps excluded)."""
        return sorted(n for n in self.sc.listdir(f"{self.root}/switches") if not n.startswith("."))

    def create_switch(self, name: str, *, dpid: int | None = None) -> str:
        """mkdir a switch (driver-side); returns its path.

        Maildir discipline: assemble under a dot-temp name, rename into
        place once the identity files exist — a concurrently scanning
        driver or app never observes a half-created switch.
        """
        path = self.switch_path(name)
        tmp = f"{self.root}/switches/.{name}"
        self.sc.mkdir(tmp)
        if dpid is not None:
            self.sc.write_text(f"{tmp}/id", str(dpid))
        self.sc.rename(tmp, path)
        return path

    def switch_dpid(self, name: str) -> int:
        """Read the ``id`` attribute file."""
        return int(self.sc.read_text(f"{self.switch_path(name)}/id").strip() or "0")

    def delete_switch(self, name: str) -> None:
        """rmdir a switch (recursive, §3.2)."""
        self.sc.rmdir(self.switch_path(name))

    # -- flows ----------------------------------------------------------------------

    def flows(self, switch: str) -> list[str]:
        """All flow names on a switch."""
        return sorted(self.sc.listdir(f"{self.switch_path(switch)}/flows"))

    def create_flow(
        self,
        switch: str,
        name: str,
        match: Match,
        actions: list[Action],
        *,
        priority: int | None = None,
        idle_timeout: float | None = None,
        hard_timeout: float | None = None,
        commit: bool = True,
    ) -> str:
        """Write a flow directory file by file, then commit it (§3.4).

        This is the slow-but-honest file path: one mkdir, one write per
        match field / action / attribute, and the final version increment
        that makes the whole thing visible to the driver atomically.
        """
        path = self.flow_path(switch, name)
        self.sc.mkdir(path)
        for filename, content in match.to_files().items():
            self.sc.write_text(f"{path}/{filename}", content)
        for index, action in enumerate(actions):
            filename, content = action.to_file()
            if index:
                filename = f"{filename}.{index}"
            self.sc.write_text(f"{path}/{filename}", content)
        if priority is not None:
            self.sc.write_text(f"{path}/priority", str(priority))
        if idle_timeout is not None:
            self.sc.write_text(f"{path}/timeout", str(idle_timeout))
        if hard_timeout is not None:
            self.sc.write_text(f"{path}/hard_timeout", str(hard_timeout))
        if commit:
            self.commit_flow(switch, name)
        return path

    def create_flows_batched(
        self,
        switch: str,
        entries: list[tuple[str, Match, list[Action]]],
        *,
        priority: int | None = None,
        idle_timeout: float | None = None,
        hard_timeout: float | None = None,
        uring: "IoUring | None" = None,
    ) -> int:
        """Install many flows through the ring: O(1) kernel crossings.

        Each flow becomes one linked chain — mkdir, then ``open → write →
        close`` per spec file, then the ``version`` write that is the §3.4
        visibility point — so a failed step cancels the rest of *that
        flow's* chain without touching its neighbours, and no flow becomes
        visible before its files exist.  The whole batch submits in
        ⌈entries/ring size⌉ crossings (one, for a dedicated ring).

        Returns the number of flows whose chain fully completed.
        """
        ring = uring or self.sc.io_uring_setup(entries=max(256, sum(4 + 3 * self._flow_file_count(m, a) for _n, m, a in entries)))
        created = 0
        for name, match, actions in entries:
            path = self.flow_path(switch, name)
            files = dict(match.to_files())
            for index, action in enumerate(actions):
                filename, content = action.to_file()
                if index:
                    filename = f"{filename}.{index}"
                files[filename] = content
            if priority is not None:
                files["priority"] = str(priority)
            if idle_timeout is not None:
                files["timeout"] = str(idle_timeout)
            if hard_timeout is not None:
                files["hard_timeout"] = str(hard_timeout)
            self._make_room(ring, 4 + 3 * len(files))
            ring.prep("mkdir", path, link=True)
            for filename, content in files.items():
                ring.prep_write_file(f"{path}/{filename}", content.encode(), link=True)
            # Fresh flows are born at version 0; this write is the commit.
            ring.prep_write_file(f"{path}/version", b"1", user_data=("flow", name))
        ring.submit()
        for cqe in ring.completions():
            if cqe.ok and cqe.user_data and cqe.user_data[0] == "flow" and cqe.op == "close":
                created += 1
        return created

    @staticmethod
    def _flow_file_count(match: Match, actions: list[Action]) -> int:
        return len(match.to_files()) + len(actions) + 4  # spec + version + attribute slack

    @staticmethod
    def _make_room(ring: "IoUring", need: int) -> None:
        # Chains must not straddle a submit; flush before starting one that
        # would not fit in the remaining submission-queue slots.
        if ring.sq_pending and ring.sq_pending + need > ring.entries:
            ring.submit()

    def commit_flow(self, switch: str, name: str) -> int:
        """Increment the flow's ``version`` file; returns the new version."""
        path = f"{self.flow_path(switch, name)}/version"
        current = int(self.sc.read_text(path).strip() or "0")
        # §3.4: versions only grow, so the decimal text never shrinks and
        # a full-width pwrite at offset 0 replaces the value in a single
        # durable op.  The obvious ``write_text`` would open with O_TRUNC,
        # and a crash between the truncating open and the write would
        # leave an empty version — read back as 0, so mount-time recovery
        # would sweep a *committed* flow as torn.
        fd = self.sc.open(path, O_WRONLY)
        try:
            self.sc.pwrite(fd, str(current + 1).encode(), 0)
        finally:
            self.sc.close(fd)
        return current + 1

    def read_flow(self, switch: str, name: str) -> FlowSpec:
        """Parse a flow directory back into a :class:`FlowSpec`."""
        path = self.flow_path(switch, name)
        files: dict[str, str] = {}
        action_files: list[tuple[str, str, str]] = []
        for entry in self.sc.listdir(path):
            if entry == "counters":
                continue
            content = self.sc.read_text(f"{path}/{entry}")
            files[entry] = content
            if entry.startswith("action."):
                base, _, suffix = entry.partition(".")
                del base
                kind, _, order = suffix.partition(".")
                action_files.append((order or "0", f"action.{kind}", content))
        actions = tuple(parse_action(fname, content) for _order, fname, content in sorted(action_files, key=lambda item: int(item[0])))
        return FlowSpec(
            match=Match.from_files(files),
            actions=actions,
            priority=int(files.get("priority", "32768").strip() or "32768"),
            idle_timeout=float(files.get("timeout", files.get("idle_timeout", "0")).strip() or "0"),
            hard_timeout=float(files.get("hard_timeout", "0").strip() or "0"),
            cookie=int(files.get("cookie", "0").strip() or "0"),
            version=int(files.get("version", "0").strip() or "0"),
        )

    def delete_flow(self, switch: str, name: str) -> None:
        """rmdir the flow (recursive)."""
        self.sc.rmdir(self.flow_path(switch, name))

    def flow_counters(self, switch: str, name: str) -> dict[str, int]:
        """Read the flow's counters directory."""
        return self._read_counters(f"{self.flow_path(switch, name)}/counters")

    # -- ports ----------------------------------------------------------------------

    def ports(self, switch: str) -> list[str]:
        """All port directory names on a switch."""
        return sorted(self.sc.listdir(f"{self.switch_path(switch)}/ports"))

    def create_port(self, switch: str, port_no: int) -> str:
        """mkdir a port directory (driver-side)."""
        path = self.port_path(switch, port_no)
        self.sc.mkdir(path)
        return path

    def set_port_down(self, switch: str, port: int | str, down: bool) -> None:
        """The paper's ``echo 1 > port_2/config.port_down``."""
        self.sc.write_text(f"{self.port_path(switch, port)}/config.port_down", "1" if down else "0")

    def port_is_down(self, switch: str, port: int | str) -> bool:
        """Read the admin-down flag."""
        return self.sc.read_text(f"{self.port_path(switch, port)}/config.port_down").strip() == "1"

    def set_peer(self, switch: str, port: int | str, peer_switch: str, peer_port: int | str) -> None:
        """Create/replace the topology symlink ``peer`` (§3.3)."""
        link = f"{self.port_path(switch, port)}/peer"
        try:
            self.sc.unlink(link)  # EAFP: one resolution, no exists() pre-flight
        except FileNotFound:
            pass
        self.sc.symlink(self.port_path(peer_switch, peer_port), link)

    def peer_of(self, switch: str, port: int | str) -> str | None:
        """The peer symlink target, or None when unlinked."""
        link = f"{self.port_path(switch, port)}/peer"
        try:
            return self.sc.readlink(link)
        except FileNotFound:
            return None

    def port_counters(self, switch: str, port: int | str) -> dict[str, int]:
        """Read a port's counters directory."""
        return self._read_counters(f"{self.port_path(switch, port)}/counters")

    # -- events ------------------------------------------------------------------------

    def subscribe_events(self, switch: str, app: str) -> str:
        """Create this app's private packet-in buffer on a switch (§3.5)."""
        path = self.events_path(switch, app)
        if not self.sc.exists(path):
            self.sc.mkdir(path)
        return path

    def unsubscribe_events(self, switch: str, app: str) -> None:
        """Remove the buffer (pending events are discarded)."""
        self.sc.rmdir(self.events_path(switch, app))

    def write_packet_in(
        self,
        switch: str,
        app: str,
        seq: int,
        *,
        in_port: int,
        reason: str,
        buffer_id: int,
        total_len: int,
        data: bytes,
    ) -> str:
        """Driver-side: materialize one packet-in into an app's buffer.

        Maildir discipline: the event is assembled under a dot-prefixed
        temp name (invisible to consumers) and atomically renamed into
        place once complete.  Publishing with a bare ``mkdir`` first would
        wake watchers on IN_CREATE *before* the field files exist — a torn
        multi-file write racing every reader (yancrace flags it).
        """
        base = self.events_path(switch, app)
        tmp = f"{base}/.pi_{seq}"
        path = f"{base}/pi_{seq}"
        self.sc.mkdir(tmp)
        self.sc.write_text(f"{tmp}/in_port", str(in_port))
        self.sc.write_text(f"{tmp}/reason", reason)
        self.sc.write_text(f"{tmp}/buffer_id", str(buffer_id))
        self.sc.write_text(f"{tmp}/total_len", str(total_len))
        self.sc.write_bytes(f"{tmp}/data", data)
        self.sc.rename(tmp, path)
        return path

    def write_packet_in_batched(
        self,
        switch: str,
        apps: list[str],
        seq: int,
        *,
        in_port: int,
        reason: str,
        buffer_id: int,
        total_len: int,
        data: bytes,
        uring: "IoUring | None" = None,
    ) -> int:
        """Fan one packet-in out to many app buffers through the ring.

        The unbatched :meth:`write_packet_in` pays 17 syscalls *per app*;
        here each app is one linked chain (mkdir temp → five file writes →
        the maildir rename that publishes) and the whole fan-out submits
        in one ``io_uring_enter``.  Watchers still see only the atomic
        IN_MOVED_TO — a canceled chain leaves at most an invisible
        dot-temp.  Drains the ring's completion queue; returns the number
        of apps whose event published.
        """
        ring = uring or self.sc.io_uring_setup(entries=max(256, 17 * len(apps)))
        fields = (
            ("in_port", str(in_port).encode()),
            ("reason", reason.encode()),
            ("buffer_id", str(buffer_id).encode()),
            ("total_len", str(total_len).encode()),
            ("data", data),
        )
        for app in apps:
            base = self.events_path(switch, app)
            tmp = f"{base}/.pi_{seq}"
            self._make_room(ring, 17)
            ring.prep("mkdir", tmp, link=True)
            for filename, content in fields:
                ring.prep_write_file(f"{tmp}/{filename}", content, link=True)
            ring.prep("rename", tmp, f"{base}/pi_{seq}", user_data=("pi", app))
        ring.submit()
        return sum(
            1
            for cqe in ring.completions()
            if cqe.ok and cqe.op == "rename" and cqe.user_data and cqe.user_data[0] == "pi"
        )

    def read_events(self, switch: str, app: str, *, consume: bool = True) -> list[PacketInEvent]:
        """Drain (or peek) an event buffer, oldest first."""
        base = self.events_path(switch, app)
        events = []
        for entry in sorted(self.sc.listdir(base), key=_event_order):
            if entry.startswith("."):
                continue  # maildir temp: still being assembled
            path = f"{base}/{entry}"
            events.append(
                PacketInEvent(
                    switch=switch,
                    seq=_event_order(entry),
                    in_port=int(self.sc.read_text(f"{path}/in_port").strip()),
                    reason=self.sc.read_text(f"{path}/reason").strip(),
                    buffer_id=int(self.sc.read_text(f"{path}/buffer_id").strip()),
                    total_len=int(self.sc.read_text(f"{path}/total_len").strip()),
                    data=self.sc.read_bytes(f"{path}/data"),
                )
            )
            if consume:
                self.sc.rmdir(path)
        return events

    def packet_out(
        self,
        switch: str,
        ports: list[int | str],
        data: bytes = b"",
        *,
        in_port: int | None = None,
        buffer_id: int | None = None,
        tag: str = "app",
    ) -> str:
        """Emit a packet by dropping a file into the switch's spool.

        ``ports`` entries are port numbers or ``"flood"``/``"all"``; pass
        ``buffer_id`` to release a switch-buffered packet instead of (or in
        addition to) raw ``data``.
        """
        self._pktout_seq = getattr(self, "_pktout_seq", 0) + 1
        tokens = []
        for port in ports:
            tokens.append(port if isinstance(port, str) else f"p{port}")
        if in_port is not None:
            tokens.append(f"in{in_port}")
        if buffer_id is not None:
            tokens.append(f"b{buffer_id}")
        tokens.append(tag)
        tokens.append(str(self._pktout_seq))
        path = f"{self.switch_path(switch)}/packet_out/{'.'.join(tokens)}"
        self.sc.write_bytes(path, data)
        return path

    # -- hosts -------------------------------------------------------------------------

    def hosts(self) -> list[str]:
        """All host names (dot-prefixed maildir temps excluded)."""
        return sorted(n for n in self.sc.listdir(f"{self.root}/hosts") if not n.startswith("."))

    def create_host(self, name: str, *, mac: str = "", ip_addr: str = "", attached_to: str = "") -> str:
        """Record an end host (topology/ARP daemons maintain these).

        Published maildir-style (assemble dot-temp, rename) so a scanner
        never sees a host with its mac written but its ip still missing.
        """
        path = f"{self.root}/hosts/{name}"
        tmp = f"{self.root}/hosts/.{name}"
        self.sc.mkdir(tmp)
        if mac:
            self.sc.write_text(f"{tmp}/mac", mac)
        if ip_addr:
            self.sc.write_text(f"{tmp}/ip", ip_addr)
        if attached_to:
            self.sc.write_text(f"{tmp}/attached_to", attached_to)
        self.sc.rename(tmp, path)
        return path

    # -- views -------------------------------------------------------------------------

    def views(self) -> list[str]:
        """Direct child view names."""
        return sorted(self.sc.listdir(f"{self.root}/views"))

    def create_view(self, name: str) -> "YancClient":
        """mkdir a view; returns a client rooted inside it."""
        self.sc.mkdir(f"{self.root}/views/{name}")
        return self.in_view(name)

    # -- internals ------------------------------------------------------------------------

    def _read_counters(self, path: str) -> dict[str, int]:
        out = {}
        for entry in self.sc.listdir(path):
            out[entry] = int(self.sc.read_text(f"{path}/{entry}").strip() or "0")
        return out


def _event_order(name: str) -> int:
    try:
        return int(name.rsplit("_", 1)[-1])
    except ValueError:
        return 0
