"""Content validators for yanc attribute files.

Attribute files validate on close (the natural boundary of the
``echo value > file`` idiom): a write whose content does not parse is
rejected with EINVAL and the previous content is restored, so the tree
never holds an unparseable configuration.
"""

from __future__ import annotations

from typing import Callable

from repro.dataplane.actions import parse_action
from repro.dataplane.match import MATCH_FIELD_NAMES
from repro.netpkt.addr import MacAddress, cidr, ip
from repro.vfs.errors import InvalidArgument

Validator = Callable[[str], None]


def _int_in_range(low: int, high: int) -> Validator:
    def check(text: str) -> None:
        try:
            value = int(text.strip() or "0", 0)
        except ValueError:
            raise InvalidArgument(detail=f"not an integer: {text!r}") from None
        if not low <= value <= high:
            raise InvalidArgument(detail=f"value {value} outside [{low}, {high}]")

    return check


def non_negative_float(text: str) -> None:
    """Timeout files: a non-negative number of seconds."""
    try:
        value = float(text.strip() or "0")
    except ValueError:
        raise InvalidArgument(detail=f"not a number: {text!r}") from None
    if value < 0:
        raise InvalidArgument(detail="timeout must be >= 0")


def version_number(text: str) -> None:
    """The flow ``version`` file: a non-negative integer."""
    _int_in_range(0, 2**63 - 1)(text)


def counter_value(text: str) -> None:
    """Counter files: a non-negative integer (decimal or 0x-hex)."""
    _int_in_range(0, 2**64 - 1)(text)


def port_status(text: str) -> None:
    """The ``config.port_status`` file: ``up`` or ``down``."""
    value = text.strip()
    if value not in ("up", "down", ""):
        raise InvalidArgument(detail=f"port status must be 'up' or 'down', got {text!r}")


def action_vocabulary(text: str) -> None:
    """The switch ``actions`` file: a comma-separated list of action kinds."""
    for token in text.strip().split(","):
        token = token.strip()
        if token and not token.replace("_", "").isalnum():
            raise InvalidArgument(detail=f"malformed action kind {token!r}")


def boolean_flag(text: str) -> None:
    """Config flags such as ``config.port_down``: 0 or 1."""
    value = text.strip()
    if value not in ("0", "1", ""):
        raise InvalidArgument(detail=f"flag must be 0 or 1, got {text!r}")


def mac_address(text: str) -> None:
    """A MAC address in colon notation."""
    try:
        MacAddress(text.strip())
    except ValueError as exc:
        raise InvalidArgument(detail=str(exc)) from None


def ipv4_address(text: str) -> None:
    """A dotted-quad IPv4 address."""
    try:
        ip(text.strip())
    except ValueError as exc:
        raise InvalidArgument(detail=str(exc)) from None


def match_field(name: str) -> Validator:
    """Validator for ``match.<name>`` file content."""
    field = name[len("match.") :]
    if field not in MATCH_FIELD_NAMES:
        raise InvalidArgument(name, "unknown match field")

    def check(text: str) -> None:
        text = text.strip()
        if not text:
            raise InvalidArgument(detail=f"empty {name}")
        try:
            if field in ("dl_src", "dl_dst"):
                MacAddress(text)
            elif field in ("nw_src", "nw_dst"):
                cidr(text)
            else:
                int(text, 0)
        except ValueError as exc:
            raise InvalidArgument(detail=f"{name}: {exc}") from None

    return check


def action_field(name: str) -> Validator:
    """Validator for ``action.<name>`` file content.

    A trailing numeric segment orders multiple actions of one flow
    (``action.out``, ``action.out.1``, ...) and is not part of the kind.
    """
    base, _, suffix = name.rpartition(".")
    if base and suffix.isdigit():
        name = base

    def check(text: str) -> None:
        try:
            parse_action(name, text)
        except ValueError as exc:
            raise InvalidArgument(detail=str(exc)) from None

    return check


#: Validators for the well-known flow attribute files.
FLOW_ATTRIBUTE_VALIDATORS: dict[str, Validator] = {
    "priority": _int_in_range(0, 0xFFFF),
    "timeout": non_negative_float,  # idle timeout (paper figure 3)
    "idle_timeout": non_negative_float,
    "hard_timeout": non_negative_float,
    "cookie": _int_in_range(0, 2**64 - 1),
    "version": version_number,
}

#: Validators for the well-known port attribute files.
PORT_ATTRIBUTE_VALIDATORS: dict[str, Validator] = {
    "config.port_down": boolean_flag,
    "config.port_status": port_status,
    "hw_addr": mac_address,
}

#: Validators for the switch attribute files (paper figure 3, left).
SWITCH_ATTRIBUTE_VALIDATORS: dict[str, Validator] = {
    "actions": action_vocabulary,
    "capabilities": _int_in_range(0, 2**32 - 1),
    "id": _int_in_range(0, 2**64 - 1),
    "num_buffers": _int_in_range(0, 2**32 - 1),
}

#: Attribute files that are deliberately free-form text.  The
#: ``schema-coverage`` lint rule requires every attribute file to either
#: carry a validator or appear here — so adding a schema file forces an
#: explicit decision about its vocabulary.
FREE_FORM_ATTRIBUTES = frozenset({"name", "type", "public_ip"})

#: Validators for host attribute files.
HOST_ATTRIBUTE_VALIDATORS: dict[str, Validator] = {
    "mac": mac_address,
    "ip": ipv4_address,
}


def flow_file_validator(name: str) -> Validator | None:
    """The validator for a file created inside a flow directory.

    Returns None for driver-written bookkeeping files; raises
    InvalidArgument for names no flow may contain.
    """
    if name in FLOW_ATTRIBUTE_VALIDATORS:
        return FLOW_ATTRIBUTE_VALIDATORS[name]
    if name.startswith("match."):
        return match_field(name)
    if name.startswith("action."):
        return action_field(name)
    if name.startswith("state."):
        return None  # driver-maintained status files are free-form
    raise InvalidArgument(name, "not a valid flow attribute file")
