"""yancfs: the paper's core contribution as a mountable file system.

* :class:`YancFs` — the semantic file system (mount it at ``/net``).
* :func:`mount_yancfs` — one-call create-and-mount.
* :class:`YancClient` — path helpers and composite file-I/O operations.
"""

from repro.yancfs.client import (
    FlowSpec,
    PacketInEvent,
    YancClient,
    mount_yancfs,
)
from repro.yancfs.recovery import FsckReport, fsck, sweep_staging
from repro.yancfs.schema import (
    AttributeFile,
    EventsDir,
    FlowNode,
    FlowsDir,
    HostNode,
    HostsDir,
    PortNode,
    PortsDir,
    SwitchNode,
    SwitchesDir,
    ViewNode,
    ViewsDir,
    YancFs,
    YancRootDir,
)

__all__ = [
    "FlowSpec",
    "FsckReport",
    "PacketInEvent",
    "YancClient",
    "fsck",
    "mount_yancfs",
    "sweep_staging",
    "AttributeFile",
    "EventsDir",
    "FlowNode",
    "FlowsDir",
    "HostNode",
    "HostsDir",
    "PortNode",
    "PortsDir",
    "SwitchNode",
    "SwitchesDir",
    "ViewNode",
    "ViewsDir",
    "YancFs",
    "YancRootDir",
]
