"""The yanc file system: schema node classes.

Implements the layout of paper figures 2 and 3 with the semantics of
section 3:

* **semantic mkdir** — creating an object directory auto-populates its
  children (``mkdir views/new_view`` also creates ``hosts``, ``switches``,
  ``views``; a new switch gets ``counters/ flows/ ports/ events/`` and its
  attribute files; a new flow gets ``counters/`` and ``version``);
* **recursive rmdir** — removing an object removes its subtree (§3.2);
* **validated attribute files** — ``match.*``, ``action.*``, ``priority``,
  ``timeout``, ``version``, ``config.port_down`` reject unparseable content
  at close and restore the previous value;
* **peer symlinks** — each port may carry exactly one symlink, ``peer``,
  and pointing it anywhere but a port is an error (§3.3);
* **views nest arbitrarily** — a view directory contains the same three
  top-level dirs as the root, so view subtrees are structurally identical
  to the master tree (§4.2).
"""

from __future__ import annotations

from repro.vfs.cred import Credentials
from repro.vfs.errors import InvalidArgument, NotPermitted
from repro.vfs.inode import DirInode, FileInode, Filesystem, Inode
from repro.vfs.stat import DEFAULT_DIR_MODE, DEFAULT_FILE_MODE, FileType
from repro.yancfs import validate

#: Files every switch directory carries (paper figure 3, left).
SWITCH_ATTRIBUTE_FILES = ("actions", "capabilities", "id", "num_buffers")

#: Subdirectories every switch directory carries.
SWITCH_SUBDIRS = ("counters", "flows", "ports", "events")

#: The three top-level directories (paper figure 2).
TOP_LEVEL_DIRS = ("hosts", "switches", "views")


class AttributeFile(FileInode):
    """A text attribute file validated (and rolled back) on close."""

    def __init__(self, fs: Filesystem, *, mode: int, uid: int, gid: int, validator: validate.Validator | None = None) -> None:
        super().__init__(fs, mode=mode, uid=uid, gid=gid)
        self.validator = validator
        self._last_valid = b""

    def on_close_write(self, cred: Credentials) -> None:
        text = self.read_all().decode(errors="replace")
        if self.validator is not None:
            try:
                self.validator(text)
            except InvalidArgument:
                self.set_content(self._last_valid)
                raise
        self._last_valid = self.read_all()

    def set_validated_content(self, text: str) -> None:
        """Validate and store ``text`` as the new committed content.

        The direct-store (libyanc) equivalent of write + close: the same
        validator runs, and on success the content becomes the rollback
        point a later failed close restores to.  Raises
        :class:`~repro.vfs.errors.InvalidArgument` — and changes nothing —
        when validation fails.
        """
        if self.validator is not None:
            self.validator(text)
        data = text.encode()
        self.set_content(data)
        self._last_valid = data


class ObjectDir(DirInode):
    """A yanc object directory: rmdir is automatically recursive (§3.2)."""

    def recursive_rmdir_ok(self) -> bool:
        return True


class CountersDir(ObjectDir):
    """Counters: numeric files maintained by the driver."""

    def may_create(self, name: str, ftype: FileType, cred: Credentials) -> None:
        if ftype is not FileType.REGULAR:
            raise NotPermitted(name, "counters hold plain files only")


def _make_attr(fs: Filesystem, parent: DirInode, name: str, content: str, *, validator: validate.Validator | None = None, mode: int = DEFAULT_FILE_MODE) -> AttributeFile:
    node = AttributeFile(fs, mode=mode, uid=parent.uid, gid=parent.gid, validator=validator)
    node.set_validated_content(content)
    parent.attach(name, node)
    return node


def _make_counters(fs: Filesystem, parent: DirInode, names: tuple[str, ...]) -> CountersDir:
    counters = CountersDir(fs, mode=DEFAULT_DIR_MODE, uid=parent.uid, gid=parent.gid)
    parent.attach("counters", counters)
    for name in names:
        _make_attr(fs, counters, name, "0", validator=validate.counter_value)
    return counters


class FlowNode(ObjectDir):
    """One flow entry: ``match.*``/``action.*`` files plus commit protocol."""

    def on_child_attached(self, name: str, node: Inode) -> None:
        # Wire validators onto files created empty via open(O_CREAT).
        if isinstance(node, AttributeFile) and node.validator is None and not name.startswith("state."):
            node.validator = validate.flow_file_validator(name)

    def may_create(self, name: str, ftype: FileType, cred: Credentials) -> None:
        if ftype is FileType.DIRECTORY:
            raise NotPermitted(name, "flows contain no subdirectories")
        if ftype is FileType.SYMLINK:
            raise NotPermitted(name, "flows contain no symlinks")
        validate.flow_file_validator(name)  # raises for unknown names

    def child_factory(self, name: str, ftype: FileType, cred: Credentials) -> Inode:
        validator = validate.flow_file_validator(name)
        return AttributeFile(self.fs, mode=DEFAULT_FILE_MODE, uid=cred.uid, gid=cred.gid, validator=validator)

    def populate(self) -> None:
        """Semantic mkdir: every flow is born with counters/ and version."""
        _make_counters(self.fs, self, ("packet_count", "byte_count"))
        _make_attr(self.fs, self, "version", "0", validator=validate.version_number)


class FlowsDir(ObjectDir):
    """``flows/``: mkdir creates a :class:`FlowNode`."""

    def may_create(self, name: str, ftype: FileType, cred: Credentials) -> None:
        if ftype is not FileType.DIRECTORY:
            raise NotPermitted(name, "flows/ holds flow directories only")

    def child_factory(self, name: str, ftype: FileType, cred: Credentials) -> Inode:
        return FlowNode(self.fs, mode=DEFAULT_DIR_MODE, uid=cred.uid, gid=cred.gid)

    def on_child_attached(self, name: str, node: Inode) -> None:
        if isinstance(node, FlowNode) and not node.has_child("version"):
            node.populate()


class PortNode(ObjectDir):
    """One port: counters, config/status files, and the ``peer`` symlink."""

    def may_create(self, name: str, ftype: FileType, cred: Credentials) -> None:
        if ftype is FileType.SYMLINK and name != "peer":
            raise NotPermitted(name, "the only port symlink is 'peer' (§3.3)")
        if ftype is FileType.DIRECTORY and name != "counters":
            raise NotPermitted(name, "ports contain no extra subdirectories")

    def child_factory(self, name: str, ftype: FileType, cred: Credentials) -> Inode:
        if ftype is FileType.REGULAR:
            validator = validate.PORT_ATTRIBUTE_VALIDATORS.get(name)
            return AttributeFile(self.fs, mode=DEFAULT_FILE_MODE, uid=cred.uid, gid=cred.gid, validator=validator)
        return super().child_factory(name, ftype, cred)

    def populate(self) -> None:
        """Semantic mkdir: counters plus the standard config/status files."""
        _make_counters(self.fs, self, ("rx_packets", "tx_packets", "rx_bytes", "tx_bytes", "tx_dropped"))
        _make_attr(self.fs, self, "config.port_down", "0", validator=validate.boolean_flag)
        _make_attr(self.fs, self, "config.port_status", "up", validator=validate.port_status)
        _make_attr(self.fs, self, "hw_addr", "00:00:00:00:00:00", validator=validate.mac_address)
        _make_attr(self.fs, self, "name", "")


class PortsDir(ObjectDir):
    """``ports/``: mkdir creates a :class:`PortNode`."""

    def may_create(self, name: str, ftype: FileType, cred: Credentials) -> None:
        if ftype is not FileType.DIRECTORY:
            raise NotPermitted(name, "ports/ holds port directories only")

    def child_factory(self, name: str, ftype: FileType, cred: Credentials) -> Inode:
        return PortNode(self.fs, mode=DEFAULT_DIR_MODE, uid=cred.uid, gid=cred.gid)

    def on_child_attached(self, name: str, node: Inode) -> None:
        if isinstance(node, PortNode) and not node.has_child("counters"):
            node.populate()


class EventBufferDir(ObjectDir):
    """One application's private packet-in buffer (§3.5).

    Message subdirectories are object directories so a consumer can
    ``rmdir`` one in a single call after reading it.
    """

    def child_factory(self, name: str, ftype: FileType, cred: Credentials) -> Inode:
        if ftype is FileType.DIRECTORY:
            return ObjectDir(self.fs, mode=DEFAULT_DIR_MODE, uid=cred.uid, gid=cred.gid)
        return super().child_factory(name, ftype, cred)


class EventsDir(ObjectDir):
    """``events/``: each application mkdirs its private buffer here."""

    def may_create(self, name: str, ftype: FileType, cred: Credentials) -> None:
        if ftype is not FileType.DIRECTORY:
            raise NotPermitted(name, "events/ holds per-application buffers")

    def child_factory(self, name: str, ftype: FileType, cred: Credentials) -> Inode:
        return EventBufferDir(self.fs, mode=DEFAULT_DIR_MODE, uid=cred.uid, gid=cred.gid)


class PacketOutDir(ObjectDir):
    """``packet_out/``: a spool for outbound packets (driver-consumed).

    An application emits a packet by creating a file here whose *name*
    encodes the output port (``<port>.<app>.<seq>``, where port is a
    number, ``flood``, or ``b<buffer_id>`` to release a buffered packet)
    and whose *content* is the raw frame.  The driver unlinks entries as
    it transmits them.  This is the inverse of the ``events/`` buffers and
    keeps packet transmission inside the file-system API.
    """

    def may_create(self, name: str, ftype: FileType, cred: Credentials) -> None:
        if ftype is not FileType.REGULAR:
            raise NotPermitted(name, "packet_out holds spool files only")


class SwitchNode(ObjectDir):
    """One switch (paper figure 3, left)."""

    def populate(self) -> None:
        """Semantic mkdir: the figure-3 children, all at once."""
        _make_counters(self.fs, self, ("rx_packets", "tx_packets", "rx_errors"))
        flows = FlowsDir(self.fs, mode=DEFAULT_DIR_MODE, uid=self.uid, gid=self.gid)
        self.attach("flows", flows)
        ports = PortsDir(self.fs, mode=DEFAULT_DIR_MODE, uid=self.uid, gid=self.gid)
        self.attach("ports", ports)
        events = EventsDir(self.fs, mode=DEFAULT_DIR_MODE, uid=self.uid, gid=self.gid)
        self.attach("events", events)
        spool = PacketOutDir(self.fs, mode=0o777, uid=self.uid, gid=self.gid)
        self.attach("packet_out", spool)
        for name in SWITCH_ATTRIBUTE_FILES:
            _make_attr(self.fs, self, name, "", validator=validate.SWITCH_ATTRIBUTE_VALIDATORS.get(name))

    def may_create(self, name: str, ftype: FileType, cred: Credentials) -> None:
        if ftype is FileType.SYMLINK:
            raise NotPermitted(name, "switches contain no symlinks")


class SwitchesDir(ObjectDir):
    """``switches/``: mkdir creates a fully-populated :class:`SwitchNode`."""

    def may_create(self, name: str, ftype: FileType, cred: Credentials) -> None:
        if ftype is not FileType.DIRECTORY:
            raise NotPermitted(name, "switches/ holds switch directories only")

    def child_factory(self, name: str, ftype: FileType, cred: Credentials) -> Inode:
        return SwitchNode(self.fs, mode=DEFAULT_DIR_MODE, uid=cred.uid, gid=cred.gid)

    def on_child_attached(self, name: str, node: Inode) -> None:
        if isinstance(node, SwitchNode) and not node.has_child("flows"):
            node.populate()


class HostNode(ObjectDir):
    """One end host: mac/ip/attachment files."""

    def child_factory(self, name: str, ftype: FileType, cred: Credentials) -> Inode:
        if ftype is FileType.REGULAR:
            validator = validate.HOST_ATTRIBUTE_VALIDATORS.get(name)
            return AttributeFile(self.fs, mode=DEFAULT_FILE_MODE, uid=cred.uid, gid=cred.gid, validator=validator)
        return super().child_factory(name, ftype, cred)


class HostsDir(ObjectDir):
    """``hosts/``: mkdir creates a :class:`HostNode`."""

    def may_create(self, name: str, ftype: FileType, cred: Credentials) -> None:
        if ftype is not FileType.DIRECTORY:
            raise NotPermitted(name, "hosts/ holds host directories only")

    def child_factory(self, name: str, ftype: FileType, cred: Credentials) -> Inode:
        return HostNode(self.fs, mode=DEFAULT_DIR_MODE, uid=cred.uid, gid=cred.gid)


class ViewNode(ObjectDir):
    """One network view: structurally identical to the root (§4.2)."""

    def populate(self) -> None:
        """Semantic mkdir: hosts/, switches/, views/ (paper §3.1)."""
        self.attach("hosts", HostsDir(self.fs, mode=DEFAULT_DIR_MODE, uid=self.uid, gid=self.gid))
        self.attach("switches", SwitchesDir(self.fs, mode=DEFAULT_DIR_MODE, uid=self.uid, gid=self.gid))
        self.attach("views", ViewsDir(self.fs, mode=DEFAULT_DIR_MODE, uid=self.uid, gid=self.gid))

    def may_remove(self, name: str, node: Inode, cred: Credentials) -> None:
        if name in TOP_LEVEL_DIRS:
            raise NotPermitted(name, "a view's structural directories are fixed")


class ViewsDir(ObjectDir):
    """``views/``: mkdir creates a nested, auto-populated :class:`ViewNode`."""

    def may_create(self, name: str, ftype: FileType, cred: Credentials) -> None:
        if ftype is not FileType.DIRECTORY:
            raise NotPermitted(name, "views/ holds view directories only")

    def child_factory(self, name: str, ftype: FileType, cred: Credentials) -> Inode:
        return ViewNode(self.fs, mode=DEFAULT_DIR_MODE, uid=cred.uid, gid=cred.gid)

    def on_child_attached(self, name: str, node: Inode) -> None:
        if isinstance(node, ViewNode) and not node.has_child("hosts"):
            node.populate()


class StateEntryDir(ObjectDir):
    """One piece of middlebox state (a NAT binding, a firewall session).

    Plain attribute files so `cp`/`mv` work on it — "we envision that we
    can use command line utilities such as cp or mv to move state around
    rather than custom protocols" (§7.2).
    """

    def may_create(self, name: str, ftype: FileType, cred: Credentials) -> None:
        if ftype is not FileType.REGULAR:
            raise NotPermitted(name, "state entries hold plain files only")


class StateDir(ObjectDir):
    """``state/``: a middlebox's migratable state entries."""

    def may_create(self, name: str, ftype: FileType, cred: Credentials) -> None:
        if ftype is not FileType.DIRECTORY:
            raise NotPermitted(name, "state/ holds state-entry directories")

    def child_factory(self, name: str, ftype: FileType, cred: Credentials) -> Inode:
        return StateEntryDir(self.fs, mode=DEFAULT_DIR_MODE, uid=cred.uid, gid=cred.gid)


class MiddleboxNode(ObjectDir):
    """One middlebox (§7.2): attribute files + counters/ + state/."""

    def populate(self) -> None:
        _make_counters(self.fs, self, ("translated", "dropped", "connections"))
        state = StateDir(self.fs, mode=DEFAULT_DIR_MODE, uid=self.uid, gid=self.gid)
        self.attach("state", state)
        _make_attr(self.fs, self, "type", "")
        _make_attr(self.fs, self, "public_ip", "")


class MiddleboxesDir(ObjectDir):
    """``middleboxes/``: created lazily by the first middlebox driver."""

    def may_create(self, name: str, ftype: FileType, cred: Credentials) -> None:
        if ftype is not FileType.DIRECTORY:
            raise NotPermitted(name, "middleboxes/ holds middlebox directories")

    def child_factory(self, name: str, ftype: FileType, cred: Credentials) -> Inode:
        return MiddleboxNode(self.fs, mode=DEFAULT_DIR_MODE, uid=cred.uid, gid=cred.gid)

    def on_child_attached(self, name: str, node: Inode) -> None:
        if isinstance(node, MiddleboxNode) and not node.has_child("state"):
            node.populate()


class YancRootDir(DirInode):
    """The fixed root: hosts/, switches/, views/ — plus, lazily,
    middleboxes/ when a middlebox driver starts (§7.2)."""

    def may_create(self, name: str, ftype: FileType, cred: Credentials) -> None:
        if name == "middleboxes" and ftype is FileType.DIRECTORY:
            return
        raise NotPermitted(name, "the yanc root holds only hosts/, switches/, views/")

    def child_factory(self, name: str, ftype: FileType, cred: Credentials) -> Inode:
        if name == "middleboxes":
            return MiddleboxesDir(self.fs, mode=DEFAULT_DIR_MODE, uid=cred.uid, gid=cred.gid)
        return super().child_factory(name, ftype, cred)

    def may_remove(self, name: str, node: Inode, cred: Credentials) -> None:
        if name != "middleboxes":
            raise NotPermitted(name, "the yanc root directories are fixed")

    def populate(self) -> None:
        self.attach("hosts", HostsDir(self.fs, mode=DEFAULT_DIR_MODE, uid=self.uid, gid=self.gid))
        self.attach("switches", SwitchesDir(self.fs, mode=DEFAULT_DIR_MODE, uid=self.uid, gid=self.gid))
        self.attach("views", ViewsDir(self.fs, mode=DEFAULT_DIR_MODE, uid=self.uid, gid=self.gid))


class YancFs(Filesystem):
    """The yanc file system, typically mounted on ``/net``."""

    fs_type = "yancfs"

    def make_root(self) -> DirInode:
        root = YancRootDir(self, mode=DEFAULT_DIR_MODE, uid=0, gid=0)
        root.populate()
        return root
