"""The yanc file system: schema node classes.

Implements the layout of paper figures 2 and 3 with the semantics of
section 3:

* **semantic mkdir** — creating an object directory auto-populates its
  children (``mkdir views/new_view`` also creates ``hosts``, ``switches``,
  ``views``; a new switch gets ``counters/ flows/ ports/ events/`` and its
  attribute files; a new flow gets ``counters/`` and ``version``);
* **recursive rmdir** — removing an object removes its subtree (§3.2);
* **validated attribute files** — ``match.*``, ``action.*``, ``priority``,
  ``timeout``, ``version``, ``config.port_down`` reject unparseable content
  at close and restore the previous value;
* **peer symlinks** — each port may carry exactly one symlink, ``peer``,
  and pointing it anywhere but a port is an error (§3.3);
* **views nest arbitrarily** — a view directory contains the same three
  top-level dirs as the root, so view subtrees are structurally identical
  to the master tree (§4.2).
"""

from __future__ import annotations

from repro.vfs.acl import Acl, AclEntry, AclTag
from repro.vfs.cred import APPS_GID, DRIVERS_GID, Credentials
from repro.vfs.errors import InvalidArgument, NotPermitted
from repro.vfs.inode import DirInode, FileInode, Filesystem, Inode
from repro.vfs.stat import DEFAULT_DIR_MODE, DEFAULT_FILE_MODE, FileType
from repro.yancfs import validate

#: Files every switch directory carries (paper figure 3, left).
SWITCH_ATTRIBUTE_FILES = ("actions", "capabilities", "id", "num_buffers")

#: Subdirectories every switch directory carries.
SWITCH_SUBDIRS = ("counters", "flows", "ports", "events")

#: The three top-level directories (paper figure 2).
TOP_LEVEL_DIRS = ("hosts", "switches", "views")


def schema_acl(*, owner: int = 7, apps: int | None = None, drivers: int | None = None, other: int = 5) -> Acl:
    """A schema default ACL: owner, optional apps/drivers grants, other.

    Section 5.1 puts access control on the file system, not in app code;
    these are the stock shapes the schema stamps on the nodes it creates
    so apps and drivers collaborate under distinct non-root uids.
    """
    entries = [AclEntry(AclTag.USER_OBJ, owner)]
    if apps is not None:
        entries.append(AclEntry(AclTag.GROUP, apps, APPS_GID))
    if drivers is not None:
        entries.append(AclEntry(AclTag.GROUP, drivers, DRIVERS_GID))
    entries.append(AclEntry(AclTag.OTHER, other))
    return Acl(entries=tuple(entries))


#: Surfaces both apps and drivers create/remove children in.
ACL_COLLAB_DIR = schema_acl(apps=7, drivers=7)

#: Surfaces only drivers populate (master switches/, counters/).
ACL_DRIVER_DIR = schema_acl(drivers=7)

#: Surfaces only apps populate (hosts/, views/).
ACL_APP_DIR = schema_acl(apps=7)

#: Private per-app buffers: the owner plus delivering drivers/apps, no one else.
ACL_PRIVATE_SPOOL = schema_acl(apps=7, drivers=7, other=0)

#: Counter files: the reporting driver updates (and slicers mirror copies
#: into tenant views), everyone reads.
ACL_COUNTER_FILE = schema_acl(owner=6, apps=6, drivers=6, other=4)

#: Hardware attribute files any driver may rewrite (live upgrade, §4.3
#: migration hands a switch dir to a successor driver with a new uid).
ACL_DRIVER_FILE = schema_acl(owner=6, drivers=6, other=4)

#: Attribute files several apps legitimately co-write (host ip, port_down).
ACL_APP_FILE = schema_acl(owner=6, apps=6, other=4)

#: Files both apps and drivers write (migratable middlebox state).
ACL_SHARED_FILE = schema_acl(owner=6, apps=6, drivers=6, other=4)

#: A per-app home directory: the owning uid only (plus root).
ACL_PRIVATE_HOME = schema_acl(other=0)


class AttributeFile(FileInode):
    """A text attribute file validated (and rolled back) on close."""

    def __init__(self, fs: Filesystem, *, mode: int, uid: int, gid: int, validator: validate.Validator | None = None) -> None:
        super().__init__(fs, mode=mode, uid=uid, gid=gid)
        self.validator = validator
        self._last_valid = b""

    def on_close_write(self, cred: Credentials) -> None:
        text = self.read_all().decode(errors="replace")
        if self.validator is not None:
            try:
                self.validator(text)
            except InvalidArgument:
                self.set_content(self._last_valid)
                raise
        self._last_valid = self.read_all()

    def set_validated_content(self, text: str) -> None:
        """Validate and store ``text`` as the new committed content.

        The direct-store (libyanc) equivalent of write + close: the same
        validator runs, and on success the content becomes the rollback
        point a later failed close restores to.  Raises
        :class:`~repro.vfs.errors.InvalidArgument` — and changes nothing —
        when validation fails.
        """
        if self.validator is not None:
            self.validator(text)
        data = text.encode()
        self.set_content(data)
        self._last_valid = data


class ObjectDir(DirInode):
    """A yanc object directory: rmdir is automatically recursive (§3.2)."""

    #: Stamped onto every instance at creation (None = plain mode bits).
    default_acl: Acl | None = None

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if self.default_acl is not None:
            self.acl = self.default_acl

    def recursive_rmdir_ok(self) -> bool:
        return True


class CountersDir(ObjectDir):
    """Counters: numeric files maintained by the driver."""

    default_acl = ACL_DRIVER_DIR

    def may_create(self, name: str, ftype: FileType, cred: Credentials) -> None:
        if ftype is not FileType.REGULAR:
            raise NotPermitted(name, "counters hold plain files only")


def _make_attr(fs: Filesystem, parent: DirInode, name: str, content: str, *, validator: validate.Validator | None = None, mode: int = DEFAULT_FILE_MODE, acl: Acl | None = None) -> AttributeFile:
    node = AttributeFile(fs, mode=mode, uid=parent.uid, gid=parent.gid, validator=validator)
    if acl is not None:
        node.acl = acl
    node.set_validated_content(content)
    parent.attach(name, node)
    return node


def _make_counters(fs: Filesystem, parent: DirInode, names: tuple[str, ...]) -> CountersDir:
    counters = CountersDir(fs, mode=DEFAULT_DIR_MODE, uid=parent.uid, gid=parent.gid)
    parent.attach("counters", counters)
    for name in names:
        _make_attr(fs, counters, name, "0", validator=validate.counter_value, acl=ACL_COUNTER_FILE)
    return counters


class FlowNode(ObjectDir):
    """One flow entry: ``match.*``/``action.*`` files plus commit protocol.

    Removal policy (``may_remove``): the collab ACL lets collaborators add
    and ack files in any flow, but retracting an entry is reserved to the
    file's creator, the flow's owner, the switch's servicing driver (who
    retires expired flows), or root — a foreign app cannot retract another
    principal's staged spec or committed version.
    """

    default_acl = ACL_COLLAB_DIR

    def may_remove(self, name: str, node: Inode, cred: Credentials) -> None:
        if cred.is_root or cred.uid in (node.uid, self.uid):
            return
        if cred.uid in {parent.uid for parent, _name in self.dentries}:
            return  # owner of flows/ itself: the switch's servicing driver
        raise NotPermitted(name, "flow entries are retracted by owner or driver only")

    def on_child_attached(self, name: str, node: Inode) -> None:
        # Wire validators onto files created empty via open(O_CREAT).
        if isinstance(node, AttributeFile) and node.validator is None and not name.startswith("state."):
            node.validator = validate.flow_file_validator(name)

    def may_create(self, name: str, ftype: FileType, cred: Credentials) -> None:
        if ftype is FileType.DIRECTORY:
            raise NotPermitted(name, "flows contain no subdirectories")
        if ftype is FileType.SYMLINK:
            raise NotPermitted(name, "flows contain no symlinks")
        validate.flow_file_validator(name)  # raises for unknown names

    def child_factory(self, name: str, ftype: FileType, cred: Credentials) -> Inode:
        validator = validate.flow_file_validator(name)
        return AttributeFile(self.fs, mode=DEFAULT_FILE_MODE, uid=cred.uid, gid=cred.gid, validator=validator)

    def populate(self) -> None:
        """Semantic mkdir: every flow is born with counters/ and version."""
        _make_counters(self.fs, self, ("packet_count", "byte_count"))
        _make_attr(self.fs, self, "version", "0", validator=validate.version_number)


class FlowsDir(ObjectDir):
    """``flows/``: mkdir creates a :class:`FlowNode`.

    Removal policy (``may_remove``, in the spirit of ``/tmp``'s sticky
    bit): the collab ACL lets every app *create* flows, but only the
    creating uid, the switch's servicing driver (``flows/``'s own uid),
    or root may remove one — commit authority over a flow entry belongs
    to whoever assembled it (§3.4/§5.1), while the driver must still be
    able to retire expired entries.
    """

    default_acl = ACL_COLLAB_DIR

    def may_create(self, name: str, ftype: FileType, cred: Credentials) -> None:
        if ftype is not FileType.DIRECTORY:
            raise NotPermitted(name, "flows/ holds flow directories only")

    def may_remove(self, name: str, node: Inode, cred: Credentials) -> None:
        if cred.is_root or cred.uid in (node.uid, self.uid):
            return
        raise NotPermitted(name, "flow retirement is owner-or-driver only")

    def child_factory(self, name: str, ftype: FileType, cred: Credentials) -> Inode:
        return FlowNode(self.fs, mode=DEFAULT_DIR_MODE, uid=cred.uid, gid=cred.gid)

    def on_child_attached(self, name: str, node: Inode) -> None:
        if isinstance(node, FlowNode):
            if not node.has_child("version"):
                node.populate()


class PortNode(ObjectDir):
    """One port: counters, config/status files, and the ``peer`` symlink."""

    default_acl = ACL_COLLAB_DIR

    def may_create(self, name: str, ftype: FileType, cred: Credentials) -> None:
        if ftype is FileType.SYMLINK and name != "peer":
            raise NotPermitted(name, "the only port symlink is 'peer' (§3.3)")
        if ftype is FileType.DIRECTORY and name != "counters":
            raise NotPermitted(name, "ports contain no extra subdirectories")

    def child_factory(self, name: str, ftype: FileType, cred: Credentials) -> Inode:
        if ftype is FileType.REGULAR:
            validator = validate.PORT_ATTRIBUTE_VALIDATORS.get(name)
            return AttributeFile(self.fs, mode=DEFAULT_FILE_MODE, uid=cred.uid, gid=cred.gid, validator=validator)
        return super().child_factory(name, ftype, cred)

    def populate(self) -> None:
        """Semantic mkdir: counters plus the standard config/status files."""
        _make_counters(self.fs, self, ("rx_packets", "tx_packets", "rx_bytes", "tx_bytes", "tx_dropped"))
        _make_attr(self.fs, self, "config.port_down", "0", validator=validate.boolean_flag, acl=ACL_APP_FILE)
        _make_attr(self.fs, self, "config.port_status", "up", validator=validate.port_status, acl=ACL_DRIVER_FILE)
        _make_attr(self.fs, self, "hw_addr", "00:00:00:00:00:00", validator=validate.mac_address, acl=ACL_DRIVER_FILE)
        _make_attr(self.fs, self, "name", "", acl=ACL_DRIVER_FILE)


class PortsDir(ObjectDir):
    """``ports/``: mkdir creates a :class:`PortNode`."""

    default_acl = ACL_DRIVER_DIR

    def may_create(self, name: str, ftype: FileType, cred: Credentials) -> None:
        if ftype is not FileType.DIRECTORY:
            raise NotPermitted(name, "ports/ holds port directories only")

    def child_factory(self, name: str, ftype: FileType, cred: Credentials) -> Inode:
        return PortNode(self.fs, mode=DEFAULT_DIR_MODE, uid=cred.uid, gid=cred.gid)

    def on_child_attached(self, name: str, node: Inode) -> None:
        if isinstance(node, PortNode) and not node.has_child("counters"):
            node.populate()


class EventBufferDir(ObjectDir):
    """One application's private packet-in buffer (§3.5).

    Message subdirectories are object directories so a consumer can
    ``rmdir`` one in a single call after reading it.
    """

    default_acl = ACL_PRIVATE_SPOOL

    def child_factory(self, name: str, ftype: FileType, cred: Credentials) -> Inode:
        if ftype is FileType.DIRECTORY:
            return ObjectDir(self.fs, mode=DEFAULT_DIR_MODE, uid=cred.uid, gid=cred.gid)
        return super().child_factory(name, ftype, cred)


class EventsDir(ObjectDir):
    """``events/``: each application mkdirs its private buffer here."""

    default_acl = ACL_COLLAB_DIR

    def may_create(self, name: str, ftype: FileType, cred: Credentials) -> None:
        if ftype is not FileType.DIRECTORY:
            raise NotPermitted(name, "events/ holds per-application buffers")

    def child_factory(self, name: str, ftype: FileType, cred: Credentials) -> Inode:
        return EventBufferDir(self.fs, mode=DEFAULT_DIR_MODE, uid=cred.uid, gid=cred.gid)


class PacketOutDir(ObjectDir):
    """``packet_out/``: a spool for outbound packets (driver-consumed).

    An application emits a packet by creating a file here whose *name*
    encodes the output port (``<port>.<app>.<seq>``, where port is a
    number, ``flood``, or ``b<buffer_id>`` to release a buffered packet)
    and whose *content* is the raw frame.  The driver unlinks entries as
    it transmits them.  This is the inverse of the ``events/`` buffers and
    keeps packet transmission inside the file-system API.
    """

    default_acl = ACL_COLLAB_DIR

    def may_create(self, name: str, ftype: FileType, cred: Credentials) -> None:
        if ftype is not FileType.REGULAR:
            raise NotPermitted(name, "packet_out holds spool files only")


class SwitchNode(ObjectDir):
    """One switch (paper figure 3, left)."""

    def populate(self) -> None:
        """Semantic mkdir: the figure-3 children, all at once."""
        _make_counters(self.fs, self, ("rx_packets", "tx_packets", "rx_errors"))
        flows = FlowsDir(self.fs, mode=DEFAULT_DIR_MODE, uid=self.uid, gid=self.gid)
        self.attach("flows", flows)
        ports = PortsDir(self.fs, mode=DEFAULT_DIR_MODE, uid=self.uid, gid=self.gid)
        self.attach("ports", ports)
        events = EventsDir(self.fs, mode=DEFAULT_DIR_MODE, uid=self.uid, gid=self.gid)
        self.attach("events", events)
        spool = PacketOutDir(self.fs, mode=0o777, uid=self.uid, gid=self.gid)
        self.attach("packet_out", spool)
        for name in SWITCH_ATTRIBUTE_FILES:
            _make_attr(self.fs, self, name, "", validator=validate.SWITCH_ATTRIBUTE_VALIDATORS.get(name), acl=ACL_DRIVER_FILE)

    def may_create(self, name: str, ftype: FileType, cred: Credentials) -> None:
        if ftype is FileType.SYMLINK:
            raise NotPermitted(name, "switches contain no symlinks")


class SwitchesDir(ObjectDir):
    """``switches/``: mkdir creates a fully-populated :class:`SwitchNode`.

    Inside views any app may assemble switches (slicers and virtualizers
    build their tenants' topologies); the *master* ``/net/switches`` is
    re-stamped driver-only by :meth:`YancRootDir.populate`.
    """

    default_acl = ACL_COLLAB_DIR

    def may_create(self, name: str, ftype: FileType, cred: Credentials) -> None:
        if ftype is not FileType.DIRECTORY:
            raise NotPermitted(name, "switches/ holds switch directories only")

    def child_factory(self, name: str, ftype: FileType, cred: Credentials) -> Inode:
        return SwitchNode(self.fs, mode=DEFAULT_DIR_MODE, uid=cred.uid, gid=cred.gid)

    def on_child_attached(self, name: str, node: Inode) -> None:
        if isinstance(node, SwitchNode) and not node.has_child("flows"):
            node.populate()


class HostNode(ObjectDir):
    """One end host: mac/ip/attachment files."""

    default_acl = ACL_APP_DIR

    def child_factory(self, name: str, ftype: FileType, cred: Credentials) -> Inode:
        if ftype is FileType.REGULAR:
            validator = validate.HOST_ATTRIBUTE_VALIDATORS.get(name)
            node = AttributeFile(self.fs, mode=DEFAULT_FILE_MODE, uid=cred.uid, gid=cred.gid, validator=validator)
            # Host attributes are co-written: discovery records the host,
            # ARP/DHCP later refresh its addresses under their own uids.
            node.acl = ACL_APP_FILE
            return node
        return super().child_factory(name, ftype, cred)


class HostsDir(ObjectDir):
    """``hosts/``: mkdir creates a :class:`HostNode`."""

    default_acl = ACL_APP_DIR

    def may_create(self, name: str, ftype: FileType, cred: Credentials) -> None:
        if ftype is not FileType.DIRECTORY:
            raise NotPermitted(name, "hosts/ holds host directories only")

    def child_factory(self, name: str, ftype: FileType, cred: Credentials) -> Inode:
        return HostNode(self.fs, mode=DEFAULT_DIR_MODE, uid=cred.uid, gid=cred.gid)


class ViewNode(ObjectDir):
    """One network view: structurally identical to the root (§4.2)."""

    def populate(self) -> None:
        """Semantic mkdir: hosts/, switches/, views/ (paper §3.1)."""
        self.attach("hosts", HostsDir(self.fs, mode=DEFAULT_DIR_MODE, uid=self.uid, gid=self.gid))
        self.attach("switches", SwitchesDir(self.fs, mode=DEFAULT_DIR_MODE, uid=self.uid, gid=self.gid))
        self.attach("views", ViewsDir(self.fs, mode=DEFAULT_DIR_MODE, uid=self.uid, gid=self.gid))

    def may_remove(self, name: str, node: Inode, cred: Credentials) -> None:
        if name in TOP_LEVEL_DIRS:
            raise NotPermitted(name, "a view's structural directories are fixed")


class ViewsDir(ObjectDir):
    """``views/``: mkdir creates a nested, auto-populated :class:`ViewNode`."""

    default_acl = ACL_APP_DIR

    def may_create(self, name: str, ftype: FileType, cred: Credentials) -> None:
        if ftype is not FileType.DIRECTORY:
            raise NotPermitted(name, "views/ holds view directories only")

    def child_factory(self, name: str, ftype: FileType, cred: Credentials) -> Inode:
        return ViewNode(self.fs, mode=DEFAULT_DIR_MODE, uid=cred.uid, gid=cred.gid)

    def on_child_attached(self, name: str, node: Inode) -> None:
        if isinstance(node, ViewNode) and not node.has_child("hosts"):
            node.populate()


class StateEntryDir(ObjectDir):
    """One piece of middlebox state (a NAT binding, a firewall session).

    Plain attribute files so `cp`/`mv` work on it — "we envision that we
    can use command line utilities such as cp or mv to move state around
    rather than custom protocols" (§7.2).
    """

    default_acl = ACL_COLLAB_DIR

    def may_create(self, name: str, ftype: FileType, cred: Credentials) -> None:
        if ftype is not FileType.REGULAR:
            raise NotPermitted(name, "state entries hold plain files only")

    def child_factory(self, name: str, ftype: FileType, cred: Credentials) -> Inode:
        node = super().child_factory(name, ftype, cred)
        # State entries move between middleboxes with cp/mv (§7.2): the
        # copying admin app and the adopting driver both touch the files.
        node.acl = ACL_SHARED_FILE
        return node


class StateDir(ObjectDir):
    """``state/``: a middlebox's migratable state entries."""

    default_acl = ACL_COLLAB_DIR

    def may_create(self, name: str, ftype: FileType, cred: Credentials) -> None:
        if ftype is not FileType.DIRECTORY:
            raise NotPermitted(name, "state/ holds state-entry directories")

    def child_factory(self, name: str, ftype: FileType, cred: Credentials) -> Inode:
        return StateEntryDir(self.fs, mode=DEFAULT_DIR_MODE, uid=cred.uid, gid=cred.gid)


class MiddleboxNode(ObjectDir):
    """One middlebox (§7.2): attribute files + counters/ + state/."""

    def populate(self) -> None:
        _make_counters(self.fs, self, ("translated", "dropped", "connections"))
        state = StateDir(self.fs, mode=DEFAULT_DIR_MODE, uid=self.uid, gid=self.gid)
        self.attach("state", state)
        _make_attr(self.fs, self, "type", "")
        _make_attr(self.fs, self, "public_ip", "")


class MiddleboxesDir(ObjectDir):
    """``middleboxes/``: created lazily by the first middlebox driver."""

    default_acl = ACL_DRIVER_DIR

    def may_create(self, name: str, ftype: FileType, cred: Credentials) -> None:
        if ftype is not FileType.DIRECTORY:
            raise NotPermitted(name, "middleboxes/ holds middlebox directories")

    def child_factory(self, name: str, ftype: FileType, cred: Credentials) -> Inode:
        return MiddleboxNode(self.fs, mode=DEFAULT_DIR_MODE, uid=cred.uid, gid=cred.gid)

    def on_child_attached(self, name: str, node: Inode) -> None:
        if isinstance(node, MiddleboxNode) and not node.has_child("state"):
            node.populate()


class AppNode(ObjectDir):
    """One application's private home under ``/net/apps/<name>/``.

    Scratch state, configs, logs — owned by the app's per-name uid with an
    ACL that shuts every other tenant out (the reference monitor treats a
    cross-uid read in here as a cross-tenant violation).
    """

    default_acl = ACL_PRIVATE_HOME


class AppsDir(ObjectDir):
    """``apps/``: per-application homes, created by the controller host."""

    default_acl = schema_acl()

    def may_create(self, name: str, ftype: FileType, cred: Credentials) -> None:
        if ftype is not FileType.DIRECTORY:
            raise NotPermitted(name, "apps/ holds per-application home directories")

    def child_factory(self, name: str, ftype: FileType, cred: Credentials) -> Inode:
        return AppNode(self.fs, mode=0o700, uid=cred.uid, gid=cred.gid)


class YancRootDir(DirInode):
    """The fixed root: hosts/, switches/, views/ — plus, lazily,
    middleboxes/ when a middlebox driver starts (§7.2) and apps/ when the
    controller host spawns its first named application."""

    def may_create(self, name: str, ftype: FileType, cred: Credentials) -> None:
        if name in ("middleboxes", "apps") and ftype is FileType.DIRECTORY:
            return
        raise NotPermitted(name, "the yanc root holds only hosts/, switches/, views/")

    def child_factory(self, name: str, ftype: FileType, cred: Credentials) -> Inode:
        if name == "middleboxes":
            return MiddleboxesDir(self.fs, mode=DEFAULT_DIR_MODE, uid=cred.uid, gid=cred.gid)
        if name == "apps":
            return AppsDir(self.fs, mode=DEFAULT_DIR_MODE, uid=cred.uid, gid=cred.gid)
        return super().child_factory(name, ftype, cred)

    def may_remove(self, name: str, node: Inode, cred: Credentials) -> None:
        if name not in ("middleboxes", "apps"):
            raise NotPermitted(name, "the yanc root directories are fixed")

    def populate(self) -> None:
        self.acl = ACL_DRIVER_DIR  # drivers may create middleboxes/ lazily
        self.attach("hosts", HostsDir(self.fs, mode=DEFAULT_DIR_MODE, uid=self.uid, gid=self.gid))
        switches = SwitchesDir(self.fs, mode=DEFAULT_DIR_MODE, uid=self.uid, gid=self.gid)
        # Master switches appear only through drivers; view subtrees keep
        # the class default that lets slicers assemble tenant topologies.
        switches.acl = ACL_DRIVER_DIR
        self.attach("switches", switches)
        self.attach("views", ViewsDir(self.fs, mode=DEFAULT_DIR_MODE, uid=self.uid, gid=self.gid))


class YancFs(Filesystem):
    """The yanc file system, typically mounted on ``/net``."""

    fs_type = "yancfs"

    def make_root(self) -> DirInode:
        root = YancRootDir(self, mode=DEFAULT_DIR_MODE, uid=0, gid=0)
        root.populate()
        return root
