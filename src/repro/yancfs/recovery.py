"""Mount-time crash recovery for the yanc tree (fsck for §3.4/§3.5 state).

Every publication protocol in the tree stages state before making it
visible: maildir publishers assemble entries under a dot-prefixed temp
name and ``rename()`` them into place, and flow creation writes spec
files into a flow directory whose ``version`` file still reads ``0``
(drivers ignore version-0 flows).  A crash between staging and
publication therefore leaves exactly two kinds of debris:

* **stale dot-entries** — a dot-temp the publisher never renamed.
  Readers skip them by convention, but nothing ever removes them: a
  crashed publisher leaks its temp forever.
* **half-staged flows** — a flow directory whose ``version`` never left
  ``0`` (or was never written / is unparseable).  The §3.4 contract says
  such a flow was never visible, so discarding it loses nothing.

:func:`fsck` sweeps both.  It runs from :func:`~repro.yancfs.client.mount_yancfs`
on every mount (a fresh mount is empty, so the sweep is a handful of
``scandir`` calls), and the yanccrash crash-point model checker replays
it — in ``dry_run`` mode — against every crash prefix to prove the
post-recovery invariants hold.

The sweep never touches committed state: an entry is removed only when
it is dot-prefixed or a version-0 flow directory, and every removal is
recorded in the returned :class:`FsckReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.vfs.errors import FsError
from repro.vfs.stat import FileType

#: Path prefixes whose staged dot-entries this module's sweep recovers.
#: The yanccrash static pass reads these declarations project-wide when
#: judging ``unrecovered-staging``.
YANCCRASH_RECOVERS = ("/net",)


@dataclass
class FsckReport:
    """What one recovery sweep found (and, unless ``dry_run``, removed)."""

    root: str
    dry_run: bool = False
    #: Stale dot-entries (files or whole directories), absolute paths.
    stale_entries: list[str] = field(default_factory=list)
    #: Flow directories discarded because their version never left 0.
    torn_flows: list[str] = field(default_factory=list)
    #: Paths the sweep wanted to remove but could not (FsError text).
    failures: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when the tree needed no recovery at all."""
        return not (self.stale_entries or self.torn_flows or self.failures)

    def removed(self) -> list[str]:
        """Everything the sweep removed (or would remove, in dry-run)."""
        return [*self.stale_entries, *self.torn_flows]


def flow_version(sc, flow_path: str) -> int:
    """A flow directory's committed version; 0 when missing/unparseable."""
    try:
        text = sc.read_text(f"{flow_path}/version")
    except FsError:
        return 0
    try:
        return int(text.strip() or "0", 0)
    except ValueError:
        return 0


def fsck(sc, root: str = "/net", *, dry_run: bool = False) -> FsckReport:
    """Sweep crash debris under ``root``; see the module docstring.

    ``dry_run`` reports what a recovery would remove without mutating
    the tree — the crash explorer uses it so one replayed tree can be
    judged at every crash prefix.
    """
    report = FsckReport(root=root, dry_run=dry_run)
    try:
        sc.stat(root)
    except FsError:
        return report  # nothing mounted here: vacuously recovered
    _sweep_dir(sc, root, report, in_flows=False)
    return report


def _sweep_dir(sc, path: str, report: FsckReport, *, in_flows: bool) -> None:
    try:
        entries = sc.scandir(path)
    except FsError:
        return
    for name, st in entries:  # yancperf: disable=syscall-in-loop (recovery IS a tree walk, once per mount)
        child = f"{path}/{name}"
        if name.startswith("."):
            report.stale_entries.append(child)
            _remove(sc, child, st.ftype is FileType.DIRECTORY, report)
            continue
        if st.ftype is not FileType.DIRECTORY:
            continue
        if in_flows and flow_version(sc, child) == 0:
            report.torn_flows.append(child)
            _remove(sc, child, True, report)
            continue
        _sweep_dir(sc, child, report, in_flows=(name == "flows"))


def _remove(sc, path: str, is_dir: bool, report: FsckReport) -> None:
    if report.dry_run:
        return
    try:
        if is_dir:
            sc.rmdir(path)
        else:
            sc.unlink(path)
    except FsError as exc:
        report.failures.append(f"{path}: {exc}")


def sweep_staging(sc, path: str) -> list[str]:
    """Remove stale dot-entries directly under a flat staging directory.

    The lighter sibling of :func:`fsck` for non-yancfs spool directories
    (the topology daemon's delta stream lives on a plain tmpfs): one
    ``scandir``, unlink every dot-entry.  Returns the removed paths.
    """
    removed: list[str] = []
    try:
        entries = sc.scandir(path)
    except FsError:
        return removed
    for name, st in entries:
        if not name.startswith("."):
            continue
        stale = f"{path}/{name}"
        try:
            if st.ftype is FileType.DIRECTORY:
                sc.rmdir(stale)
            else:
                sc.unlink(stale)
        except FsError:
            continue
        removed.append(stale)
    return removed


__all__ = ["FsckReport", "YANCCRASH_RECOVERS", "flow_version", "fsck", "sweep_staging"]
