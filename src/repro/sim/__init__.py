"""Discrete-event simulation kernel.

Everything time-dependent in the reproduction — link transit, control-channel
delivery, daemon wakeups, LLDP beacons, flow timeouts, cron jobs, distributed
file-system RPCs — is driven by one :class:`Simulator` so that runs are fully
deterministic and wall-clock independent.
"""

from repro.sim.clock import Event, Simulator

__all__ = ["Event", "Simulator"]
