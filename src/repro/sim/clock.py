"""The simulator clock: an ordered queue of timed callbacks."""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events order by ``(time, seq)``; ``seq`` is a creation counter so ties
    resolve in scheduling order, which keeps runs deterministic.
    """

    time: float
    seq: int
    fn: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    fired: bool = field(default=False, compare=False)
    _sim: "Simulator | None" = field(default=None, compare=False, repr=False)

    def cancel(self) -> None:
        """Prevent this event from firing (no-op if already fired)."""
        if self.cancelled or self.fired:
            return
        self.cancelled = True
        if self._sim is not None:
            self._sim._live -= 1


class Simulator:
    """A discrete-event simulator with a monotonically advancing clock."""

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        self._queue: list[Event] = []
        self._dispatched = 0
        #: Live (not cancelled, not yet fired) events in the queue; kept
        #: in step with schedule/cancel/dispatch so ``pending`` is O(1).
        self._live = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def dispatched(self) -> int:
        """Number of events that have fired so far."""
        return self._dispatched

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued.

        O(1): a counter maintained at schedule/cancel/dispatch time, not a
        scan of the heap — ``pending`` sits on monitoring paths that poll
        it per tick against queues holding thousands of events.
        """
        return self._live

    def schedule(self, delay: float, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` to run ``delay`` seconds from now.

        ``delay`` must be >= 0; a zero delay runs after all events already
        scheduled for the current instant.
        """
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        event = Event(time=self._now + delay, seq=self._seq, fn=fn, _sim=self)
        self._seq += 1
        self._live += 1
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(self, when: float, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` at absolute simulated time ``when`` (>= now)."""
        if when < self._now:
            raise ValueError(f"cannot schedule in the past ({when} < {self._now})")
        return self.schedule(when - self._now, fn)

    def step(self) -> bool:
        """Fire the single next event.  Returns False if the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue  # its cancel() already dropped the live counter
            event.fired = True
            self._live -= 1
            self._now = event.time
            self._dispatched += 1
            event.fn()
            return True
        return False

    def run(self, max_events: int = 1_000_000) -> int:
        """Run until the event queue drains.  Returns events dispatched.

        Raises RuntimeError if more than ``max_events`` fire, which almost
        always indicates a self-rescheduling loop that never terminates
        (e.g. a periodic daemon that was never stopped).
        """
        fired = 0
        while self.step():
            fired += 1
            if fired > max_events:
                raise RuntimeError(f"simulation exceeded {max_events} events; runaway loop?")
        return fired

    def run_until(self, deadline: float, max_events: int = 1_000_000) -> int:
        """Run events with time <= ``deadline``; advance the clock to it.

        Periodic tasks that re-schedule themselves keep a deadline-bounded
        run finite, unlike :meth:`run`.
        """
        fired = 0
        while self._queue:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if head.time > deadline:
                break
            self.step()
            fired += 1
            if fired > max_events:
                raise RuntimeError(f"simulation exceeded {max_events} events before {deadline}")
        self._now = max(self._now, deadline)
        return fired

    def run_for(self, duration: float, max_events: int = 1_000_000) -> int:
        """Run for ``duration`` simulated seconds from the current time."""
        return self.run_until(self._now + duration, max_events=max_events)

    def every(self, interval: float, fn: Callable[[], None], *, start_delay: float | None = None) -> "PeriodicTask":
        """Run ``fn`` every ``interval`` seconds until the task is stopped."""
        return PeriodicTask(self, interval, fn, start_delay=start_delay)


class PeriodicTask:
    """A self-rescheduling task created by :meth:`Simulator.every`."""

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        fn: Callable[[], None],
        *,
        start_delay: float | None = None,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        self._sim = sim
        self._interval = interval
        self._fn = fn
        self._stopped = False
        self._event = sim.schedule(interval if start_delay is None else start_delay, self._fire)

    def _fire(self) -> None:
        if self._stopped:
            return
        self._fn()
        if not self._stopped:
            self._event = self._sim.schedule(self._interval, self._fire)

    def stop(self) -> None:
        """Stop the task; any queued firing is cancelled."""
        self._stopped = True
        self._event.cancel()

    @property
    def stopped(self) -> bool:
        """True once :meth:`stop` has been called."""
        return self._stopped
