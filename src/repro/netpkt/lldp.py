"""LLDP (802.1AB) frames as used by topology discovery.

The topology daemon (paper section 4.3) sends an LLDP beacon out every
switch port and, when the beacon arrives on a neighbouring switch, learns
the (switch, port) <-> (switch, port) adjacency.  We implement the three
mandatory TLVs — Chassis ID, Port ID, TTL — which is exactly what discovery
needs; unknown TLVs are preserved opaquely so foreign beacons survive a
round trip.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.netpkt.addr import MacAddress

#: The LLDP destination address switches never forward (nearest-bridge group).
LLDP_MULTICAST_MAC = MacAddress("01:80:c2:00:00:0e")

_TLV_END = 0
_TLV_CHASSIS_ID = 1
_TLV_PORT_ID = 2
_TLV_TTL = 3

_CHASSIS_SUBTYPE_LOCAL = 7
_PORT_SUBTYPE_LOCAL = 7


def _tlv(tlv_type: int, value: bytes) -> bytes:
    if len(value) > 511:
        raise ValueError(f"TLV value too long: {len(value)} bytes")
    header = (tlv_type << 9) | len(value)
    return struct.pack("!H", header) + value


@dataclass
class Lldp:
    """An LLDP data unit with locally-assigned chassis and port ids."""

    chassis_id: str
    port_id: str
    ttl: int = 120
    extra_tlvs: list[tuple[int, bytes]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.chassis_id:
            raise ValueError("chassis_id must be non-empty")
        if not self.port_id:
            raise ValueError("port_id must be non-empty")
        if not 0 <= self.ttl <= 0xFFFF:
            raise ValueError(f"TTL out of range: {self.ttl}")

    def pack(self) -> bytes:
        """Serialize to the TLV wire format, ending with an End TLV."""
        out = _tlv(_TLV_CHASSIS_ID, bytes([_CHASSIS_SUBTYPE_LOCAL]) + self.chassis_id.encode())
        out += _tlv(_TLV_PORT_ID, bytes([_PORT_SUBTYPE_LOCAL]) + self.port_id.encode())
        out += _tlv(_TLV_TTL, struct.pack("!H", self.ttl))
        for tlv_type, value in self.extra_tlvs:
            out += _tlv(tlv_type, value)
        return out + _tlv(_TLV_END, b"")

    @classmethod
    def unpack(cls, data: bytes) -> "Lldp":
        """Parse; requires the three mandatory TLVs in standard order."""
        offset = 0
        chassis_id: str | None = None
        port_id: str | None = None
        ttl: int | None = None
        extra: list[tuple[int, bytes]] = []
        while offset + 2 <= len(data):
            (header,) = struct.unpack_from("!H", data, offset)
            tlv_type, length = header >> 9, header & 0x1FF
            offset += 2
            if offset + length > len(data):
                raise ValueError("truncated LLDP TLV")
            value = data[offset : offset + length]
            offset += length
            if tlv_type == _TLV_END:
                break
            if tlv_type == _TLV_CHASSIS_ID:
                if len(value) < 2 or value[0] != _CHASSIS_SUBTYPE_LOCAL:
                    raise ValueError("unsupported chassis-id subtype")
                chassis_id = value[1:].decode()
            elif tlv_type == _TLV_PORT_ID:
                if len(value) < 2 or value[0] != _PORT_SUBTYPE_LOCAL:
                    raise ValueError("unsupported port-id subtype")
                port_id = value[1:].decode()
            elif tlv_type == _TLV_TTL:
                if len(value) != 2:
                    raise ValueError("bad TTL TLV length")
                (ttl,) = struct.unpack("!H", value)
            else:
                extra.append((tlv_type, value))
        if chassis_id is None or port_id is None or ttl is None:
            raise ValueError("LLDPDU missing a mandatory TLV")
        return cls(chassis_id=chassis_id, port_id=port_id, ttl=ttl, extra_tlvs=extra)
