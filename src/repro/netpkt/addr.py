"""Link- and network-layer addresses.

IPv4 addressing reuses the standard library's :mod:`ipaddress` module (the
paper's match files take CIDR notation, which ``ip_network`` already
parses); MAC addresses get a small value type of their own.
"""

from __future__ import annotations

import ipaddress
import re
from functools import total_ordering

_MAC_RE = re.compile(r"^[0-9a-fA-F]{2}(:[0-9a-fA-F]{2}){5}$")


@total_ordering
class MacAddress:
    """A 48-bit IEEE MAC address.

    Accepts colon-separated strings, 6-byte sequences, integers, or another
    :class:`MacAddress`.  Instances are immutable, hashable, and ordered.
    """

    __slots__ = ("_value",)

    def __init__(self, value: "MacAddress | str | bytes | int") -> None:
        if isinstance(value, MacAddress):
            self._value = value._value
        elif isinstance(value, str):
            if not _MAC_RE.match(value):
                raise ValueError(f"malformed MAC address: {value!r}")
            self._value = int(value.replace(":", ""), 16)
        elif isinstance(value, (bytes, bytearray)):
            if len(value) != 6:
                raise ValueError(f"MAC address needs 6 bytes, got {len(value)}")
            self._value = int.from_bytes(value, "big")
        elif isinstance(value, int):
            if not 0 <= value < 1 << 48:
                raise ValueError(f"MAC address out of range: {value:#x}")
            self._value = value
        else:
            raise TypeError(f"cannot make a MAC address from {type(value).__name__}")

    @classmethod
    def from_int(cls, value: int) -> "MacAddress":
        """Build from a 48-bit integer."""
        return cls(value)

    @property
    def packed(self) -> bytes:
        """The 6 raw bytes, network order."""
        return self._value.to_bytes(6, "big")

    @property
    def is_broadcast(self) -> bool:
        """True for ff:ff:ff:ff:ff:ff."""
        return self._value == (1 << 48) - 1

    @property
    def is_multicast(self) -> bool:
        """True when the group bit (LSB of the first octet) is set."""
        return bool(self._value >> 40 & 0x01)

    def __int__(self) -> int:
        return self._value

    def __str__(self) -> str:
        raw = f"{self._value:012x}"
        return ":".join(raw[i : i + 2] for i in range(0, 12, 2))

    def __repr__(self) -> str:
        return f"MacAddress({str(self)!r})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, MacAddress):
            return self._value == other._value
        if isinstance(other, str):
            try:
                return self._value == MacAddress(other)._value
            except ValueError:
                return NotImplemented
        return NotImplemented

    def __lt__(self, other: "MacAddress") -> bool:
        if not isinstance(other, MacAddress):
            return NotImplemented
        return self._value < other._value

    def __hash__(self) -> int:
        return hash(("MacAddress", self._value))


#: The Ethernet broadcast address.
BROADCAST_MAC = MacAddress("ff:ff:ff:ff:ff:ff")


def ip(value: str | int | ipaddress.IPv4Address) -> ipaddress.IPv4Address:
    """Coerce ``value`` to an :class:`ipaddress.IPv4Address`."""
    return ipaddress.IPv4Address(value)


def cidr(value: str | ipaddress.IPv4Network) -> ipaddress.IPv4Network:
    """Parse CIDR notation (``10.0.0.0/8``; a bare address means /32).

    Host bits are rejected (``10.0.0.1/8`` is an error), matching how the
    yanc match files treat malformed CIDR as invalid input.
    """
    return ipaddress.IPv4Network(value)
