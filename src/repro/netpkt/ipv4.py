"""IPv4 and ICMP headers."""

from __future__ import annotations

import struct
from dataclasses import dataclass
from ipaddress import IPv4Address

from repro.netpkt.addr import ip

IPPROTO_ICMP = 1
IPPROTO_TCP = 6
IPPROTO_UDP = 17

_IPV4 = struct.Struct("!BBHHHBBH4s4s")
_ICMP = struct.Struct("!BBHHH")

ICMP_ECHO_REPLY = 0
ICMP_ECHO_REQUEST = 8


def internet_checksum(data: bytes) -> int:
    """RFC 1071 ones-complement checksum over ``data``."""
    if len(data) % 2:
        data += b"\x00"
    total = sum(struct.unpack(f"!{len(data) // 2}H", data))
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return ~total & 0xFFFF


@dataclass
class IPv4:
    """An IPv4 header (no options) plus payload."""

    src: IPv4Address
    dst: IPv4Address
    proto: int
    ttl: int = 64
    tos: int = 0
    ident: int = 0
    payload: bytes = b""

    def __post_init__(self) -> None:
        self.src = ip(self.src)
        self.dst = ip(self.dst)
        if not 0 <= self.proto <= 0xFF:
            raise ValueError(f"protocol out of range: {self.proto}")
        if not 0 <= self.ttl <= 0xFF:
            raise ValueError(f"TTL out of range: {self.ttl}")

    @property
    def total_length(self) -> int:
        """Header plus payload length in bytes."""
        return _IPV4.size + len(self.payload)

    def decremented(self) -> "IPv4":
        """Return a copy with TTL - 1; raises ValueError at TTL zero."""
        if self.ttl == 0:
            raise ValueError("TTL already zero")
        return IPv4(
            src=self.src,
            dst=self.dst,
            proto=self.proto,
            ttl=self.ttl - 1,
            tos=self.tos,
            ident=self.ident,
            payload=self.payload,
        )

    def pack(self) -> bytes:
        """Serialize with a correct header checksum."""
        head = _IPV4.pack(
            0x45,  # version 4, IHL 5
            self.tos,
            self.total_length,
            self.ident,
            0,  # flags/fragment offset: never fragmented in the simulator
            self.ttl,
            self.proto,
            0,  # checksum placeholder
            self.src.packed,
            self.dst.packed,
        )
        csum = internet_checksum(head)
        return head[:10] + struct.pack("!H", csum) + head[12:] + self.payload

    @classmethod
    def unpack(cls, data: bytes) -> "IPv4":
        """Parse; validates version, IHL, length, and header checksum."""
        if len(data) < _IPV4.size:
            raise ValueError(f"IPv4 header too short: {len(data)} bytes")
        ver_ihl, tos, total_len, ident, _frag, ttl, proto, _csum, src, dst = _IPV4.unpack_from(data)
        if ver_ihl >> 4 != 4:
            raise ValueError(f"not an IPv4 packet (version {ver_ihl >> 4})")
        ihl = (ver_ihl & 0xF) * 4
        if ihl != _IPV4.size:
            raise ValueError("IPv4 options are not supported")
        if total_len > len(data):
            raise ValueError(f"IPv4 total length {total_len} exceeds frame ({len(data)})")
        if internet_checksum(data[:ihl]) != 0:
            raise ValueError("bad IPv4 header checksum")
        return cls(
            src=IPv4Address(src),
            dst=IPv4Address(dst),
            proto=proto,
            ttl=ttl,
            tos=tos,
            ident=ident,
            payload=data[ihl:total_len],
        )


@dataclass
class Icmp:
    """An ICMP message (echo request/reply are what the examples use)."""

    icmp_type: int
    code: int = 0
    ident: int = 0
    seq: int = 0
    payload: bytes = b""

    @classmethod
    def echo_request(cls, ident: int, seq: int, payload: bytes = b"") -> "Icmp":
        """Build an echo request."""
        return cls(icmp_type=ICMP_ECHO_REQUEST, ident=ident, seq=seq, payload=payload)

    def echo_reply(self) -> "Icmp":
        """Build the reply to this echo request."""
        if self.icmp_type != ICMP_ECHO_REQUEST:
            raise ValueError("echo_reply() only applies to echo requests")
        return Icmp(icmp_type=ICMP_ECHO_REPLY, ident=self.ident, seq=self.seq, payload=self.payload)

    def pack(self) -> bytes:
        """Serialize with a correct checksum."""
        head = _ICMP.pack(self.icmp_type, self.code, 0, self.ident, self.seq)
        csum = internet_checksum(head + self.payload)
        return head[:2] + struct.pack("!H", csum) + head[4:] + self.payload

    @classmethod
    def unpack(cls, data: bytes) -> "Icmp":
        """Parse; validates the checksum."""
        if len(data) < _ICMP.size:
            raise ValueError(f"ICMP message too short: {len(data)} bytes")
        if internet_checksum(data) != 0:
            raise ValueError("bad ICMP checksum")
        icmp_type, code, _csum, ident, seq = _ICMP.unpack_from(data)
        return cls(icmp_type=icmp_type, code=code, ident=ident, seq=seq, payload=data[_ICMP.size :])
