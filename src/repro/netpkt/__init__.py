"""Packet headers and addressing.

Real wire formats, parsed from and serialized to bytes: the dataplane
simulator forwards actual frames, the OpenFlow codec embeds them in
packet-in/packet-out messages, and the yanc file system exposes their
fields as match files.

The public surface:

* :class:`MacAddress` / helpers in :mod:`repro.netpkt.addr` (IPv4 uses the
  standard-library :mod:`ipaddress` types).
* Header classes — :class:`Ethernet`, :class:`Vlan`, :class:`Arp`,
  :class:`IPv4`, :class:`Icmp`, :class:`Tcp`, :class:`Udp`, :class:`Lldp` —
  each with ``pack()`` and ``unpack()``.
* :func:`parse_frame` — parse a full frame into a :class:`ParsedFrame` with
  the header stack and the flow key used for table matching.
"""

from repro.netpkt.addr import BROADCAST_MAC, MacAddress, cidr, ip
from repro.netpkt.arp import Arp
from repro.netpkt.ethernet import (
    ETH_TYPE_ARP,
    ETH_TYPE_IPV4,
    ETH_TYPE_LLDP,
    ETH_TYPE_VLAN,
    Ethernet,
    Vlan,
)
from repro.netpkt.ipv4 import IPPROTO_ICMP, IPPROTO_TCP, IPPROTO_UDP, Icmp, IPv4
from repro.netpkt.lldp import Lldp, LLDP_MULTICAST_MAC
from repro.netpkt.packet import FlowKey, ParsedFrame, parse_frame
from repro.netpkt.transport import Tcp, Udp

__all__ = [
    "BROADCAST_MAC",
    "MacAddress",
    "cidr",
    "ip",
    "Arp",
    "ETH_TYPE_ARP",
    "ETH_TYPE_IPV4",
    "ETH_TYPE_LLDP",
    "ETH_TYPE_VLAN",
    "Ethernet",
    "Vlan",
    "IPv4",
    "Icmp",
    "IPPROTO_ICMP",
    "IPPROTO_TCP",
    "IPPROTO_UDP",
    "Lldp",
    "LLDP_MULTICAST_MAC",
    "FlowKey",
    "ParsedFrame",
    "parse_frame",
    "Tcp",
    "Udp",
]
