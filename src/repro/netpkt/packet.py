"""Full-frame parsing and the flow key used for table matching.

The :class:`FlowKey` mirrors the OpenFlow 1.0 12-tuple (minus ``in_port``,
which the switch knows from where the frame arrived): dl_src, dl_dst,
dl_type, dl_vlan, dl_vlan_pcp, nw_src, nw_dst, nw_proto, nw_tos, tp_src,
tp_dst.  The yanc flow files ``match.*`` use exactly these field names
(paper, figure 3 and section 3.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from ipaddress import IPv4Address

from repro.netpkt.addr import MacAddress
from repro.netpkt.arp import Arp
from repro.netpkt.ethernet import (
    ETH_TYPE_ARP,
    ETH_TYPE_IPV4,
    ETH_TYPE_LLDP,
    Ethernet,
)
from repro.netpkt.ipv4 import IPPROTO_ICMP, IPPROTO_TCP, IPPROTO_UDP, Icmp, IPv4
from repro.netpkt.lldp import Lldp
from repro.netpkt.transport import Tcp, Udp


@dataclass(frozen=True)
class FlowKey:
    """The header fields a flow entry can match (OpenFlow 1.0 tuple)."""

    dl_src: MacAddress
    dl_dst: MacAddress
    dl_type: int
    dl_vlan: int | None = None
    dl_vlan_pcp: int | None = None
    nw_src: IPv4Address | None = None
    nw_dst: IPv4Address | None = None
    nw_proto: int | None = None
    nw_tos: int | None = None
    tp_src: int | None = None
    tp_dst: int | None = None

    def field_values(self) -> dict[str, object]:
        """Return the non-None fields as a name -> value mapping."""
        values = {
            "dl_src": self.dl_src,
            "dl_dst": self.dl_dst,
            "dl_type": self.dl_type,
            "dl_vlan": self.dl_vlan,
            "dl_vlan_pcp": self.dl_vlan_pcp,
            "nw_src": self.nw_src,
            "nw_dst": self.nw_dst,
            "nw_proto": self.nw_proto,
            "nw_tos": self.nw_tos,
            "tp_src": self.tp_src,
            "tp_dst": self.tp_dst,
        }
        return {name: value for name, value in values.items() if value is not None}


@dataclass
class ParsedFrame:
    """A frame parsed through every layer we understand.

    ``inner`` is the deepest successfully parsed payload object (Arp, Lldp,
    Icmp, Tcp, Udp) or raw bytes for unknown protocols.
    """

    raw: bytes
    eth: Ethernet
    ipv4: IPv4 | None = None
    inner: object = None

    def repack(self) -> bytes:
        """Re-serialize after header modifications (set-field actions).

        Rebuilds from the deepest parsed layer outward so changed fields
        (and the IPv4 checksum) are freshly encoded, then refreshes
        ``raw``.
        """
        if self.ipv4 is not None:
            if isinstance(self.inner, (Tcp, Udp, Icmp)):
                self.ipv4.payload = self.inner.pack()
            self.eth.payload = self.ipv4.pack()
        elif isinstance(self.inner, (Arp, Lldp)):
            self.eth.payload = self.inner.pack()
        self.raw = self.eth.pack()
        return self.raw

    @property
    def key(self) -> FlowKey:
        """The flow key this frame presents to a flow table."""
        vlan = self.eth.vlan
        nw_src = nw_dst = nw_proto = nw_tos = None
        tp_src = tp_dst = None
        if self.ipv4 is not None:
            nw_src, nw_dst = self.ipv4.src, self.ipv4.dst
            nw_proto, nw_tos = self.ipv4.proto, self.ipv4.tos
            if isinstance(self.inner, (Tcp, Udp)):
                tp_src, tp_dst = self.inner.src_port, self.inner.dst_port
            elif isinstance(self.inner, Icmp):
                # OpenFlow 1.0 overloads tp_src/tp_dst with ICMP type/code.
                tp_src, tp_dst = self.inner.icmp_type, self.inner.code
        elif isinstance(self.inner, Arp):
            nw_src, nw_dst = self.inner.sender_ip, self.inner.target_ip
            nw_proto = self.inner.opcode
        return FlowKey(
            dl_src=self.eth.src,
            dl_dst=self.eth.dst,
            dl_type=self.eth.eth_type,
            dl_vlan=vlan.vid if vlan else None,
            dl_vlan_pcp=vlan.pcp if vlan else None,
            nw_src=nw_src,
            nw_dst=nw_dst,
            nw_proto=nw_proto,
            nw_tos=nw_tos,
            tp_src=tp_src,
            tp_dst=tp_dst,
        )


def parse_frame(raw: bytes) -> ParsedFrame:
    """Parse ``raw`` down as far as the protocol stack allows.

    Layer-2 parsing errors propagate (a frame the switch cannot even frame
    is a simulation bug); deeper-layer errors degrade gracefully, leaving
    ``inner`` as the unparsed bytes — real switches match what they can.
    """
    eth = Ethernet.unpack(raw)
    frame = ParsedFrame(raw=raw, eth=eth, inner=eth.payload)
    try:
        if eth.eth_type == ETH_TYPE_ARP:
            frame.inner = Arp.unpack(eth.payload)
        elif eth.eth_type == ETH_TYPE_LLDP:
            frame.inner = Lldp.unpack(eth.payload)
        elif eth.eth_type == ETH_TYPE_IPV4:
            ipv4 = IPv4.unpack(eth.payload)
            frame.ipv4 = ipv4
            frame.inner = ipv4.payload
            if ipv4.proto == IPPROTO_TCP:
                frame.inner = Tcp.unpack(ipv4.payload)
            elif ipv4.proto == IPPROTO_UDP:
                frame.inner = Udp.unpack(ipv4.payload)
            elif ipv4.proto == IPPROTO_ICMP:
                frame.inner = Icmp.unpack(ipv4.payload)
    except ValueError:
        pass
    return frame


def build_frame(eth: Ethernet, *layers: object) -> bytes:
    """Serialize ``eth`` with ``layers`` nested innermost-last as its payload.

    Example::

        raw = build_frame(Ethernet(dst, src, ETH_TYPE_IPV4),
                          IPv4(src_ip, dst_ip, IPPROTO_UDP),
                          Udp(5000, 53, payload=b"query"))
    """
    payload = b""
    for layer in reversed(layers):
        if isinstance(layer, bytes):
            payload = layer + payload
            continue
        if payload:
            layer.payload = payload  # type: ignore[attr-defined]
        payload = layer.pack()  # type: ignore[attr-defined]
    if payload:
        eth.payload = payload
    return eth.pack()
