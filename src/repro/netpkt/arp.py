"""ARP (RFC 826) over Ethernet/IPv4."""

from __future__ import annotations

import struct
from dataclasses import dataclass
from ipaddress import IPv4Address

from repro.netpkt.addr import MacAddress, ip

ARP_REQUEST = 1
ARP_REPLY = 2

_ARP = struct.Struct("!HHBBH6s4s6s4s")
_HW_ETHERNET = 1
_PROTO_IPV4 = 0x0800


@dataclass
class Arp:
    """An ARP packet for the Ethernet/IPv4 pairing the paper's apps use."""

    opcode: int
    sender_mac: MacAddress
    sender_ip: IPv4Address
    target_mac: MacAddress
    target_ip: IPv4Address

    def __post_init__(self) -> None:
        if self.opcode not in (ARP_REQUEST, ARP_REPLY):
            raise ValueError(f"unsupported ARP opcode: {self.opcode}")
        self.sender_mac = MacAddress(self.sender_mac)
        self.target_mac = MacAddress(self.target_mac)
        self.sender_ip = ip(self.sender_ip)
        self.target_ip = ip(self.target_ip)

    @classmethod
    def request(cls, sender_mac: MacAddress, sender_ip: IPv4Address, target_ip: IPv4Address) -> "Arp":
        """Build a who-has request (target MAC all-zero)."""
        return cls(
            opcode=ARP_REQUEST,
            sender_mac=sender_mac,
            sender_ip=sender_ip,
            target_mac=MacAddress(0),
            target_ip=target_ip,
        )

    def reply_from(self, mac: MacAddress) -> "Arp":
        """Build the is-at reply answering this request with ``mac``."""
        return Arp(
            opcode=ARP_REPLY,
            sender_mac=mac,
            sender_ip=self.target_ip,
            target_mac=self.sender_mac,
            target_ip=self.sender_ip,
        )

    def pack(self) -> bytes:
        """Serialize to the 28-byte wire format."""
        return _ARP.pack(
            _HW_ETHERNET,
            _PROTO_IPV4,
            6,
            4,
            self.opcode,
            self.sender_mac.packed,
            self.sender_ip.packed,
            self.target_mac.packed,
            self.target_ip.packed,
        )

    @classmethod
    def unpack(cls, data: bytes) -> "Arp":
        """Parse; rejects non-Ethernet/IPv4 ARP and truncation."""
        if len(data) < _ARP.size:
            raise ValueError(f"ARP packet too short: {len(data)} bytes")
        htype, ptype, hlen, plen, opcode, smac, sip, tmac, tip = _ARP.unpack_from(data)
        if (htype, ptype, hlen, plen) != (_HW_ETHERNET, _PROTO_IPV4, 6, 4):
            raise ValueError("only Ethernet/IPv4 ARP is supported")
        return cls(
            opcode=opcode,
            sender_mac=MacAddress(smac),
            sender_ip=IPv4Address(sip),
            target_mac=MacAddress(tmac),
            target_ip=IPv4Address(tip),
        )
