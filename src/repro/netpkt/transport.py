"""TCP and UDP headers.

Segments carry opaque payloads; the simulator does not run a TCP state
machine — the controller applications only ever match on ports, which is
all OpenFlow 1.0 sees of layer 4 anyway.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

_UDP = struct.Struct("!HHHH")
_TCP = struct.Struct("!HHIIBBHHH")

TCP_FLAG_FIN = 0x01
TCP_FLAG_SYN = 0x02
TCP_FLAG_RST = 0x04
TCP_FLAG_PSH = 0x08
TCP_FLAG_ACK = 0x10


def _check_port(value: int, what: str) -> int:
    if not 0 <= value <= 0xFFFF:
        raise ValueError(f"{what} out of range: {value}")
    return value


@dataclass
class Udp:
    """A UDP header plus payload."""

    src_port: int
    dst_port: int
    payload: bytes = b""

    def __post_init__(self) -> None:
        _check_port(self.src_port, "source port")
        _check_port(self.dst_port, "destination port")

    def pack(self) -> bytes:
        """Serialize (checksum 0 = unused, valid for IPv4)."""
        return _UDP.pack(self.src_port, self.dst_port, _UDP.size + len(self.payload), 0) + self.payload

    @classmethod
    def unpack(cls, data: bytes) -> "Udp":
        """Parse; validates the length field."""
        if len(data) < _UDP.size:
            raise ValueError(f"UDP datagram too short: {len(data)} bytes")
        src, dst, length, _csum = _UDP.unpack_from(data)
        if length < _UDP.size or length > len(data):
            raise ValueError(f"bad UDP length field: {length}")
        return cls(src_port=src, dst_port=dst, payload=data[_UDP.size : length])


@dataclass
class Tcp:
    """A TCP header (no options) plus payload."""

    src_port: int
    dst_port: int
    seq: int = 0
    ack: int = 0
    flags: int = TCP_FLAG_ACK
    window: int = 65535
    payload: bytes = b""

    def __post_init__(self) -> None:
        _check_port(self.src_port, "source port")
        _check_port(self.dst_port, "destination port")

    def pack(self) -> bytes:
        """Serialize with data offset 5 (no options)."""
        return (
            _TCP.pack(
                self.src_port,
                self.dst_port,
                self.seq,
                self.ack,
                5 << 4,  # data offset in 32-bit words
                self.flags,
                self.window,
                0,  # checksum: unused in the simulator
                0,  # urgent pointer
            )
            + self.payload
        )

    @classmethod
    def unpack(cls, data: bytes) -> "Tcp":
        """Parse; rejects truncated headers and bad data offsets."""
        if len(data) < _TCP.size:
            raise ValueError(f"TCP segment too short: {len(data)} bytes")
        src, dst, seq, ack, offs, flags, window, _csum, _urg = _TCP.unpack_from(data)
        header_len = (offs >> 4) * 4
        if header_len < _TCP.size or header_len > len(data):
            raise ValueError(f"bad TCP data offset: {offs >> 4}")
        return cls(
            src_port=src,
            dst_port=dst,
            seq=seq,
            ack=ack,
            flags=flags,
            window=window,
            payload=data[header_len:],
        )
