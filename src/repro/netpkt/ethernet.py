"""Ethernet II framing and 802.1Q VLAN tags."""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.netpkt.addr import MacAddress

ETH_TYPE_IPV4 = 0x0800
ETH_TYPE_ARP = 0x0806
ETH_TYPE_VLAN = 0x8100
ETH_TYPE_LLDP = 0x88CC

_ETH_HDR = struct.Struct("!6s6sH")
_VLAN_HDR = struct.Struct("!HH")


@dataclass
class Ethernet:
    """An Ethernet II header.

    ``payload`` holds the raw bytes that follow the header (and the VLAN
    tag, when present).
    """

    dst: MacAddress
    src: MacAddress
    eth_type: int
    vlan: "Vlan | None" = None
    payload: bytes = b""

    def __post_init__(self) -> None:
        self.dst = MacAddress(self.dst)
        self.src = MacAddress(self.src)
        if not 0 <= self.eth_type <= 0xFFFF:
            raise ValueError(f"eth_type out of range: {self.eth_type:#x}")

    def pack(self) -> bytes:
        """Serialize header (+ optional VLAN tag) + payload."""
        if self.vlan is None:
            head = _ETH_HDR.pack(self.dst.packed, self.src.packed, self.eth_type)
        else:
            head = _ETH_HDR.pack(self.dst.packed, self.src.packed, ETH_TYPE_VLAN)
            head += _VLAN_HDR.pack(self.vlan.tci, self.eth_type)
        return head + self.payload

    @classmethod
    def unpack(cls, data: bytes) -> "Ethernet":
        """Parse a frame; raises ValueError on truncation."""
        if len(data) < _ETH_HDR.size:
            raise ValueError(f"Ethernet frame too short: {len(data)} bytes")
        dst, src, eth_type = _ETH_HDR.unpack_from(data)
        offset = _ETH_HDR.size
        vlan = None
        if eth_type == ETH_TYPE_VLAN:
            if len(data) < offset + _VLAN_HDR.size:
                raise ValueError("truncated 802.1Q tag")
            tci, eth_type = _VLAN_HDR.unpack_from(data, offset)
            vlan = Vlan.from_tci(tci)
            offset += _VLAN_HDR.size
        return cls(
            dst=MacAddress(dst),
            src=MacAddress(src),
            eth_type=eth_type,
            vlan=vlan,
            payload=data[offset:],
        )


@dataclass
class Vlan:
    """An 802.1Q tag: priority (PCP), drop-eligible (DEI), VLAN id."""

    vid: int
    pcp: int = 0
    dei: bool = False

    def __post_init__(self) -> None:
        if not 0 <= self.vid < 4096:
            raise ValueError(f"VLAN id out of range: {self.vid}")
        if not 0 <= self.pcp < 8:
            raise ValueError(f"VLAN PCP out of range: {self.pcp}")

    @property
    def tci(self) -> int:
        """The 16-bit tag control information field."""
        return (self.pcp << 13) | (int(self.dei) << 12) | self.vid

    @classmethod
    def from_tci(cls, tci: int) -> "Vlan":
        """Decode a 16-bit TCI field."""
        return cls(vid=tci & 0x0FFF, pcp=tci >> 13 & 0x7, dei=bool(tci >> 12 & 0x1))
